/**
 * @file
 * Tests for oriented-footprint collision detection.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "geom/angle.h"
#include "grid/footprint.h"
#include "grid/map_gen.h"
#include "util/rng.h"

namespace rtr {
namespace {

OccupancyGrid2D
emptyWithBlock()
{
    OccupancyGrid2D grid(40, 40, 0.25);
    // Block covering world [5, 6] x [5, 6].
    for (int x = 20; x < 24; ++x) {
        for (int y = 20; y < 24; ++y)
            grid.setOccupied(x, y);
    }
    return grid;
}

TEST(Footprint, FreeSpaceDoesNotCollide)
{
    OccupancyGrid2D grid = emptyWithBlock();
    RectFootprint car(4.8, 1.8);
    EXPECT_FALSE(car.collides(grid, Pose2{2.5, 2.5, 0.0}));
    EXPECT_GT(car.lastCellsChecked(), 0u);
}

TEST(Footprint, OverlapDetected)
{
    OccupancyGrid2D grid = emptyWithBlock();
    RectFootprint car(4.8, 1.8);
    // Centered on the block.
    EXPECT_TRUE(car.collides(grid, Pose2{5.5, 5.5, 0.0}));
    // Nose of the car reaching into the block (center 2.5 m left of
    // the block, half-length 2.4 + conservative padding reaches in).
    EXPECT_TRUE(car.collides(grid, Pose2{2.8, 5.5, 0.0}));
}

TEST(Footprint, RotationMatters)
{
    OccupancyGrid2D grid = emptyWithBlock();
    RectFootprint long_thin(6.0, 0.5);
    // Placed below the block pointing along +x: clear.
    Pose2 horizontal{5.5, 3.0, 0.0};
    EXPECT_FALSE(long_thin.collides(grid, horizontal));
    // Same position pointing along +y: the nose reaches the block.
    Pose2 vertical{5.5, 3.0, kPi / 2.0};
    EXPECT_TRUE(long_thin.collides(grid, vertical));
}

TEST(Footprint, OutOfBoundsCollides)
{
    OccupancyGrid2D grid = emptyWithBlock();
    RectFootprint car(4.8, 1.8);
    // Nose beyond the map edge; out-of-bounds cells count as occupied.
    EXPECT_TRUE(car.collides(grid, Pose2{0.5, 5.0, kPi}));
}

TEST(Footprint, PointCollision)
{
    OccupancyGrid2D grid = emptyWithBlock();
    EXPECT_TRUE(pointCollides(grid, {5.5, 5.5}));
    EXPECT_FALSE(pointCollides(grid, {2.0, 2.0}));
    EXPECT_TRUE(pointCollides(grid, {-1.0, 2.0}));
}

/**
 * Property: the footprint check must agree with a dense point-sampling
 * oracle of the same oriented rectangle (up to the conservative padding
 * of half a cell diagonal).
 */
class FootprintOracle : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FootprintOracle, NeverMissesARealOverlap)
{
    Rng rng(GetParam());
    OccupancyGrid2D grid = makeRandomObstacleMap(64, 64, 0.1, GetParam());
    RectFootprint robot(3.0, 1.5);

    for (int trial = 0; trial < 120; ++trial) {
        Pose2 pose{rng.uniform(4.0, 60.0), rng.uniform(4.0, 60.0),
                   rng.uniform(-kPi, kPi)};
        bool reported = robot.collides(grid, pose);

        // Dense oracle: sample the rectangle interior.
        bool oracle = false;
        for (double l = -1.5; l <= 1.5 && !oracle; l += 0.1) {
            for (double w = -0.75; w <= 0.75 && !oracle; w += 0.1) {
                Vec2 p = pose.transform({l, w});
                oracle = grid.occupiedWorld(p);
            }
        }
        // The check is conservative: it may report collision when the
        // oracle does not (padding), but must never miss one.
        if (oracle)
            EXPECT_TRUE(reported)
                << "missed collision at (" << pose.x << "," << pose.y
                << "," << pose.theta << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FootprintOracle,
                         ::testing::Values(11, 22, 33, 44));

TEST(Footprint, BitboardFastPathProvesFreeBoxWithoutProbes)
{
    // A fully in-bounds AABB over free space is cleared by whole-word
    // scans of the bitboard: no per-cell membership test runs at all.
    OccupancyGrid2D grid = emptyWithBlock();
    RectFootprint car(1.0, 0.5);
    EXPECT_FALSE(car.collides(grid, Pose2{2.5, 2.5, 0.3}));
    EXPECT_EQ(car.lastCellsChecked(), 0u);
}

TEST(Footprint, FastPathAgreesWithDenseProbing)
{
    // Word-scan fast path and the dense per-cell loop must return the
    // same verdict for arbitrary poses, including occupied and edge
    // cases where the AABB leaves the map.
    Rng rng(55);
    OccupancyGrid2D grid = makeRandomObstacleMap(64, 64, 0.12, 9);
    RectFootprint robot(3.0, 1.5);
    for (int trial = 0; trial < 200; ++trial) {
        Pose2 pose{rng.uniform(-2.0, 66.0), rng.uniform(-2.0, 66.0),
                   rng.uniform(-kPi, kPi)};
        bool fast = robot.collides(grid, pose);
        // Dense reference: the pre-bitboard sweep — probe every AABB
        // cell, identical padding, extents, and membership arithmetic
        // to RectFootprint::collides.
        const double res = grid.resolution();
        const double half_l = 1.5, half_w = 0.75;
        const double pad = res * 0.5 * std::numbers::sqrt2_v<double>;
        const double cos_t = std::cos(pose.theta);
        const double sin_t = std::sin(pose.theta);
        const double ext_x =
            std::abs(cos_t) * half_l + std::abs(sin_t) * half_w;
        const double ext_y =
            std::abs(sin_t) * half_l + std::abs(cos_t) * half_w;
        Cell2 lo = grid.worldToCell(
            {pose.x - ext_x - res, pose.y - ext_y - res});
        Cell2 hi = grid.worldToCell(
            {pose.x + ext_x + res, pose.y + ext_y + res});
        bool dense = false;
        for (int cy = lo.y; cy <= hi.y && !dense; ++cy) {
            for (int cx = lo.x; cx <= hi.x && !dense; ++cx) {
                if (!grid.occupied(cx, cy))
                    continue;
                Vec2 center = grid.cellCenter({cx, cy});
                double dx = center.x - pose.x;
                double dy = center.y - pose.y;
                double local_l = dx * cos_t + dy * sin_t;
                double local_w = -dx * sin_t + dy * cos_t;
                dense = std::abs(local_l) <= half_l + pad &&
                        std::abs(local_w) <= half_w + pad;
            }
        }
        EXPECT_EQ(fast, dense)
            << "pose (" << pose.x << "," << pose.y << ","
            << pose.theta << ")";
    }
}

} // namespace
} // namespace rtr

/**
 * @file
 * Cross-module property tests: algebraic identities, generator
 * determinism, and admissibility-style invariants that tie modules
 * together.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "grid/map_gen.h"
#include "linalg/decomp.h"
#include "linalg/matrix.h"
#include "search/grid_planner2d.h"
#include "search/grid_planner3d.h"
#include "symbolic/blocks_world.h"
#include "symbolic/planner.h"
#include "util/rng.h"

namespace rtr {
namespace {

Matrix
randomMatrix(std::size_t rows, std::size_t cols, Rng &rng)
{
    Matrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = rng.uniform(-1, 1);
    }
    return m;
}

TEST(MatrixAlgebra, MultiplicationAssociative)
{
    Rng rng(1);
    Matrix a = randomMatrix(4, 6, rng);
    Matrix b = randomMatrix(6, 3, rng);
    Matrix c = randomMatrix(3, 5, rng);
    EXPECT_TRUE(((a * b) * c).approxEquals(a * (b * c), 1e-10));
}

TEST(MatrixAlgebra, MultiplicationDistributesOverAddition)
{
    Rng rng(2);
    Matrix a = randomMatrix(4, 4, rng);
    Matrix b = randomMatrix(4, 4, rng);
    Matrix c = randomMatrix(4, 4, rng);
    EXPECT_TRUE((a * (b + c)).approxEquals(a * b + a * c, 1e-10));
}

TEST(MatrixAlgebra, InverseOfProduct)
{
    Rng rng(3);
    Matrix a = randomMatrix(5, 5, rng);
    Matrix b = randomMatrix(5, 5, rng);
    for (std::size_t i = 0; i < 5; ++i) {
        a(i, i) += 3.0;
        b(i, i) += 3.0;
    }
    // (AB)^-1 = B^-1 A^-1.
    EXPECT_TRUE(inverse(a * b).approxEquals(inverse(b) * inverse(a),
                                            1e-7));
}

/** Generators must be bitwise deterministic per seed. */
class GeneratorSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GeneratorSeeds, CityMapDeterministic)
{
    OccupancyGrid2D a = makeCityMap(128, 0.5, GetParam());
    OccupancyGrid2D b = makeCityMap(128, 0.5, GetParam());
    EXPECT_EQ(a.cells(), b.cells());
}

TEST_P(GeneratorSeeds, CostFieldDeterministic)
{
    CostGrid2D a = makeCostField(48, 48, GetParam());
    CostGrid2D b = makeCostField(48, 48, GetParam());
    for (int y = 0; y < 48; ++y) {
        for (int x = 0; x < 48; ++x)
            ASSERT_DOUBLE_EQ(a.cost(x, y), b.cost(x, y));
    }
}

TEST_P(GeneratorSeeds, Campus3DDeterministic)
{
    OccupancyGrid3D a = makeCampus3D(48, 48, 12, 1.0, GetParam());
    OccupancyGrid3D b = makeCampus3D(48, 48, 12, 1.0, GetParam());
    EXPECT_EQ(a.freeCellCount(), b.freeCellCount());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeeds,
                         ::testing::Values(1, 7, 42));

TEST(PlannerInvariants, PathCostAtLeastEuclidean)
{
    // The straight line lower-bounds any grid path — the admissibility
    // fact the A* heuristic relies on.
    OccupancyGrid2D map = makeRandomObstacleMap(40, 40, 0.15, 5);
    GridPlanner2D planner(map);
    Rng rng(6);
    for (int trial = 0; trial < 10; ++trial) {
        Cell2 start{static_cast<int>(rng.intRange(1, 38)),
                    static_cast<int>(rng.intRange(1, 38))};
        Cell2 goal{static_cast<int>(rng.intRange(1, 38)),
                   static_cast<int>(rng.intRange(1, 38))};
        if (map.occupied(start.x, start.y) ||
            map.occupied(goal.x, goal.y))
            continue;
        GridPlan2D plan = planner.plan(start, goal);
        if (!plan.found)
            continue;
        double dx = goal.x - start.x, dy = goal.y - start.y;
        EXPECT_GE(plan.cost + 1e-9, std::sqrt(dx * dx + dy * dy));
    }
}

TEST(PlannerInvariants, MoreObstaclesNeverShortenPaths)
{
    OccupancyGrid2D sparse = makeRandomObstacleMap(40, 40, 0.05, 11);
    OccupancyGrid2D dense = sparse;
    // Add extra blocks to the dense copy.
    Rng rng(12);
    for (int i = 0; i < 30; ++i) {
        dense.setOccupied(static_cast<int>(rng.intRange(2, 37)),
                          static_cast<int>(rng.intRange(2, 37)));
    }
    GridPlanner2D sparse_planner(sparse);
    GridPlanner2D dense_planner(dense);
    for (int trial = 0; trial < 8; ++trial) {
        Cell2 start{static_cast<int>(rng.intRange(1, 38)),
                    static_cast<int>(rng.intRange(1, 38))};
        Cell2 goal{static_cast<int>(rng.intRange(1, 38)),
                   static_cast<int>(rng.intRange(1, 38))};
        GridPlan2D a = sparse_planner.plan(start, goal);
        GridPlan2D b = dense_planner.plan(start, goal);
        if (a.found && b.found)
            EXPECT_LE(a.cost, b.cost + 1e-9);
    }
}

TEST(PlannerInvariants, Planner3DCostAtLeastEuclidean)
{
    OccupancyGrid3D map = makeCampus3D(40, 40, 12, 1.0, 13);
    GridPlanner3D planner(map);
    GridPlan3D plan = planner.plan({2, 2, 2}, {37, 35, 4});
    if (plan.found) {
        double dx = 35.0, dy = 33.0, dz = 2.0;
        EXPECT_GE(plan.cost + 1e-9,
                  std::sqrt(dx * dx + dy * dy + dz * dz));
    }
}

TEST(SymbolicInvariants, PlanLengthLowerBoundedByMisplacedBlocks)
{
    // Each action moves one block, so at least one action per block
    // whose On() differs between initial and goal is required.
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        SymbolicProblem problem = makeBlocksWorld(5, seed);
        std::size_t misplaced = 0;
        for (const Atom &atom : problem.goal)
            misplaced += problem.initial.contains(atom) ? 0 : 1;
        SymbolicPlanResult result = SymbolicPlanner(problem).plan();
        ASSERT_TRUE(result.found);
        EXPECT_GE(result.plan.size(), misplaced);
    }
}

TEST(SymbolicInvariants, EpsilonOneFindsNoLongerPlansThanEpsilonThree)
{
    SymbolicProblem problem = makeBlocksWorld(6, 9);
    SymbolicPlannerConfig tight;
    tight.epsilon = 1.0;
    SymbolicPlannerConfig loose;
    loose.epsilon = 3.0;
    SymbolicPlanResult a = SymbolicPlanner(problem, tight).plan();
    SymbolicPlanResult b = SymbolicPlanner(problem, loose).plan();
    ASSERT_TRUE(a.found);
    ASSERT_TRUE(b.found);
    // hAdd is inadmissible so no strict guarantee, but heavier
    // inflation should never *shorten* the plan found.
    EXPECT_LE(a.cost, b.cost + 1e-9);
}

} // namespace
} // namespace rtr

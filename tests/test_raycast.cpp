/**
 * @file
 * Tests for the DDA ray-caster, including a property sweep against the
 * brute-force reference implementation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "geom/angle.h"
#include "grid/map_gen.h"
#include "grid/raycast.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/simd.h"

namespace rtr {
namespace {

OccupancyGrid2D
boxWorld()
{
    // 20 x 20 room with walls on the border and a block at x:10..12,
    // y:8..10.
    OccupancyGrid2D grid(20, 20, 1.0);
    for (int i = 0; i < 20; ++i) {
        grid.setOccupied(i, 0);
        grid.setOccupied(i, 19);
        grid.setOccupied(0, i);
        grid.setOccupied(19, i);
    }
    for (int x = 10; x <= 12; ++x) {
        for (int y = 8; y <= 10; ++y)
            grid.setOccupied(x, y);
    }
    return grid;
}

TEST(Raycast, AxisAlignedKnownDistances)
{
    OccupancyGrid2D grid = boxWorld();
    Vec2 origin{5.5, 9.5};
    // Ray along +x hits the block face at x = 10.
    EXPECT_NEAR(castRay(grid, origin, 0.0, 100.0), 4.5, 1e-9);
    // Ray along -x hits the left wall face at x = 1.
    EXPECT_NEAR(castRay(grid, origin, kPi, 100.0), 4.5, 1e-9);
    // Ray along +y hits the top wall face at y = 19.
    EXPECT_NEAR(castRay(grid, origin, kPi / 2.0, 100.0), 9.5, 1e-9);
}

TEST(Raycast, MaxRangeWhenNothingHit)
{
    OccupancyGrid2D grid = boxWorld();
    Vec2 origin{5.5, 5.5};
    EXPECT_DOUBLE_EQ(castRay(grid, origin, kPi / 4.0, 2.0), 2.0);
}

TEST(Raycast, OriginInsideObstacleIsZero)
{
    OccupancyGrid2D grid = boxWorld();
    EXPECT_DOUBLE_EQ(castRay(grid, {11.0, 9.0}, 0.3, 100.0), 0.0);
}

TEST(Raycast, DiagonalDistance)
{
    OccupancyGrid2D grid(10, 10, 1.0);
    grid.setOccupied(5, 5);
    // 45-degree ray from (3.5, 3.5) enters cell (5,5) at (5,5): the
    // distance is sqrt(2) * 1.5.
    double d = castRay(grid, {3.5, 3.5}, kPi / 4.0, 100.0);
    EXPECT_NEAR(d, std::sqrt(2.0) * 1.5, 1e-9);
}

TEST(Raycast, ScanProducesOneRangePerBeam)
{
    OccupancyGrid2D grid = boxWorld();
    std::vector<double> out;
    castScan(grid, {9.5, 4.5}, -kPi, kTwoPi, 36, 50.0, out);
    ASSERT_EQ(out.size(), 36u);
    for (double r : out) {
        EXPECT_GT(r, 0.0);
        EXPECT_LE(r, 50.0);
    }
}

TEST(Raycast, ResolutionIndependence)
{
    // The same world geometry at finer resolution gives the same
    // distances.
    OccupancyGrid2D coarse = boxWorld();
    OccupancyGrid2D fine = scaleMap(coarse, 4);
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        Vec2 origin{rng.uniform(1.5, 8.5), rng.uniform(1.5, 7.5)};
        double angle = rng.uniform(-kPi, kPi);
        double dc = castRay(coarse, origin, angle, 40.0);
        double df = castRay(fine, origin, angle, 40.0);
        EXPECT_NEAR(dc, df, 1e-9) << "origin (" << origin.x << ","
                                  << origin.y << ") angle " << angle;
    }
}

/** Property sweep: DDA matches the brute-force small-step reference. */
class RaycastVsReference : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RaycastVsReference, AgreesOnRandomMaps)
{
    Rng rng(GetParam());
    OccupancyGrid2D grid = makeRandomObstacleMap(48, 48, 0.15, GetParam());
    int tested = 0;
    while (tested < 60) {
        Vec2 origin{rng.uniform(1.0, 47.0), rng.uniform(1.0, 47.0)};
        if (grid.occupiedWorld(origin))
            continue;
        ++tested;
        double angle = rng.uniform(-kPi, kPi);
        double fast = castRay(grid, origin, angle, 30.0);
        double slow = castRayReference(grid, origin, angle, 30.0);
        // The reference steps at resolution/50, so tolerate that much.
        EXPECT_NEAR(fast, slow, grid.resolution() * 0.05)
            << "origin (" << origin.x << "," << origin.y << ") angle "
            << angle;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaycastVsReference,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/**
 * The bitwise-identity contract of the hierarchical engine: castRay
 * (pyramid empty-region skipping) must return the exact same double
 * as castRayScalar (probe every cell) for arbitrary maps, origins,
 * angles, and ranges — including rays starting inside occupied cells,
 * rays starting outside the map, and corner-grazing diagonals.
 */
class RaycastHierFuzz : public ::testing::TestWithParam<double>
{
};

TEST_P(RaycastHierFuzz, BitwiseIdenticalToScalarAcrossDensities)
{
    const double density = GetParam();
    Rng rng(static_cast<std::uint64_t>(density * 1000.0) + 3);
    for (std::uint64_t map_seed = 1; map_seed <= 4; ++map_seed) {
        OccupancyGrid2D grid =
            makeRandomObstacleMap(96, 64, density, map_seed);
        for (int i = 0; i < 250; ++i) {
            // Origins over (and slightly beyond) the whole map, free
            // or occupied alike.
            Vec2 origin{rng.uniform(-2.0, 98.0), rng.uniform(-2.0, 66.0)};
            double angle = rng.uniform(-kPi, kPi);
            double max_range = rng.uniform(0.5, 140.0);
            double hier = castRay(grid, origin, angle, max_range);
            double scalar = castRayScalar(grid, origin, angle, max_range);
            EXPECT_EQ(hier, scalar)
                << "origin (" << origin.x << "," << origin.y
                << ") angle " << angle << " range " << max_range
                << " density " << density << " seed " << map_seed;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Densities, RaycastHierFuzz,
                         ::testing::Values(0.0, 0.02, 0.15, 0.45));

TEST(RaycastHier, CornerGrazingAndAxisAlignedRaysMatchScalar)
{
    OccupancyGrid2D grid = boxWorld();
    // Cell-corner origins and axis/diagonal angles hit boundary ties
    // in the DDA; both engines must resolve them identically.
    const double angles[] = {0.0,       kPi / 4.0,  kPi / 2.0,
                             3 * kPi / 4.0, kPi,    -kPi / 4.0,
                             -kPi / 2.0, -3 * kPi / 4.0};
    for (int x = 1; x <= 18; x += 3) {
        for (int y = 1; y <= 18; y += 3) {
            for (double angle : angles) {
                Vec2 corner{static_cast<double>(x),
                            static_cast<double>(y)};
                EXPECT_EQ(castRay(grid, corner, angle, 50.0),
                          castRayScalar(grid, corner, angle, 50.0))
                    << "corner (" << x << "," << y << ") angle "
                    << angle;
            }
        }
    }
}

TEST(RaycastHier, MatchesReferenceOnIndoorMap)
{
    OccupancyGrid2D grid = makeIndoorMap(120, 80, 0.25, 3);
    Rng rng(9);
    int tested = 0;
    while (tested < 120) {
        Vec2 origin{rng.uniform(1.0, 29.0), rng.uniform(1.0, 19.0)};
        if (grid.occupiedWorld(origin))
            continue;
        ++tested;
        double angle = rng.uniform(-kPi, kPi);
        double fast = castRay(grid, origin, angle, 15.0);
        double slow = castRayReference(grid, origin, angle, 15.0);
        EXPECT_NEAR(fast, slow, grid.resolution() * 0.05);
    }
}

TEST(RaycastHier, SkipsProbesInOpenSpace)
{
    // A big empty room: the pyramid should cut probes by an order of
    // magnitude while the step count stays that of the scalar DDA.
    OccupancyGrid2D grid(512, 512, 0.05);
    for (int i = 0; i < 512; ++i) {
        grid.setOccupied(i, 0);
        grid.setOccupied(i, 511);
        grid.setOccupied(0, i);
        grid.setOccupied(511, i);
    }
    RayCastStats hier, scalar;
    Rng rng(4);
    for (int i = 0; i < 64; ++i) {
        double angle = rng.uniform(-kPi, kPi);
        Vec2 origin{12.8, 12.8};
        EXPECT_EQ(castRayCounted(grid, origin, angle, 30.0, hier),
                  castRayScalarCounted(grid, origin, angle, 30.0,
                                       scalar));
    }
    EXPECT_EQ(hier.steps, scalar.steps);
    EXPECT_LT(hier.probes * 10, scalar.probes)
        << "pyramid skipped too few probes: " << hier.probes << " vs "
        << scalar.probes;
}

TEST(RaycastHier, TracksDynamicEdits)
{
    // Incremental pyramid maintenance: occupy and free cells and check
    // the engines stay identical after every edit burst.
    OccupancyGrid2D grid(100, 70, 0.5);
    Rng rng(31);
    for (int round = 0; round < 40; ++round) {
        for (int e = 0; e < 25; ++e) {
            grid.setOccupied(static_cast<int>(rng.index(100)),
                             static_cast<int>(rng.index(70)),
                             rng.uniform() < 0.5);
        }
        for (int i = 0; i < 25; ++i) {
            Vec2 origin{rng.uniform(0.0, 50.0), rng.uniform(0.0, 35.0)};
            double angle = rng.uniform(-kPi, kPi);
            EXPECT_EQ(castRay(grid, origin, angle, 60.0),
                      castRayScalar(grid, origin, angle, 60.0))
                << "round " << round;
        }
    }
}

/**
 * Packet-engine contract: a castScan through RayEngine::Packet must be
 * bitwise identical (memcmp) to the scalar engine's scan for the same
 * inputs — fuzzed over the same densities as the hier suite, with
 * origins free, occupied, and outside the map.
 */
class RaycastPacketFuzz : public ::testing::TestWithParam<double>
{
};

TEST_P(RaycastPacketFuzz, ScanBitwiseIdenticalToScalarAcrossDensities)
{
    const double density = GetParam();
    Rng rng(static_cast<std::uint64_t>(density * 1000.0) + 17);
    std::vector<double> packet, scalar, hier;
    for (std::uint64_t map_seed = 1; map_seed <= 3; ++map_seed) {
        OccupancyGrid2D grid =
            makeRandomObstacleMap(96, 64, density, map_seed);
        for (int i = 0; i < 40; ++i) {
            Vec2 origin{rng.uniform(-2.0, 98.0), rng.uniform(-2.0, 66.0)};
            double start = rng.uniform(-kPi, kPi);
            double fov = rng.uniform(0.2, kTwoPi);
            double max_range = rng.uniform(0.5, 140.0);
            int n_rays = 1 + static_cast<int>(rng.index(96));
            castScan(grid, origin, start, fov, n_rays, max_range, packet,
                     RayEngine::Packet);
            castScan(grid, origin, start, fov, n_rays, max_range, scalar,
                     RayEngine::Scalar);
            castScan(grid, origin, start, fov, n_rays, max_range, hier,
                     RayEngine::Hierarchical);
            ASSERT_EQ(packet.size(), scalar.size());
            EXPECT_EQ(0, std::memcmp(packet.data(), scalar.data(),
                                     packet.size() * sizeof(double)))
                << "origin (" << origin.x << "," << origin.y
                << ") start " << start << " fov " << fov << " n_rays "
                << n_rays << " density " << density << " seed "
                << map_seed;
            EXPECT_EQ(0, std::memcmp(packet.data(), hier.data(),
                                     packet.size() * sizeof(double)));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Densities, RaycastPacketFuzz,
                         ::testing::Values(0.0, 0.02, 0.15, 0.45));

TEST(RaycastPacket, OctantBoundaryRaysMatchScalar)
{
    // Axis-aligned and exact-45° rays sit on the octant-binning
    // boundaries and on DDA tie-breaks; sweep scans whose beams land
    // exactly on those directions from cell corners and cell centers.
    OccupancyGrid2D grid = boxWorld();
    std::vector<double> packet, scalar;
    const double starts[] = {0.0, kPi / 4.0, kPi / 2.0, -3 * kPi / 4.0};
    for (double start : starts) {
        for (int n_rays : {4, 8, 16}) {
            // fov = 2*pi with n_rays dividing 8 puts every beam on an
            // axis or diagonal.
            for (Vec2 origin : {Vec2{5.0, 9.0}, Vec2{5.5, 9.5}}) {
                castScan(grid, origin, start, kTwoPi, n_rays, 50.0,
                         packet, RayEngine::Packet);
                castScan(grid, origin, start, kTwoPi, n_rays, 50.0,
                         scalar, RayEngine::Scalar);
                EXPECT_EQ(0, std::memcmp(packet.data(), scalar.data(),
                                         packet.size() * sizeof(double)))
                    << "start " << start << " n_rays " << n_rays;
            }
        }
    }
}

TEST(RaycastPacket, RemainderLaneScanSizesMatchScalar)
{
    // Scan sizes 1 .. 2*kWidth+1 exercise every packet/remainder split
    // around the lane width.
    OccupancyGrid2D grid = makeRandomObstacleMap(64, 48, 0.1, 21);
    std::vector<double> packet, scalar;
    constexpr int kW = static_cast<int>(simd::VecD::kWidth);
    Rng rng(77);
    for (int n_rays = 1; n_rays <= 2 * kW + 1; ++n_rays) {
        for (int rep = 0; rep < 8; ++rep) {
            Vec2 origin{rng.uniform(1.0, 63.0), rng.uniform(1.0, 47.0)};
            double start = rng.uniform(-kPi, kPi);
            castScan(grid, origin, start, 4.0, n_rays, 40.0, packet,
                     RayEngine::Packet);
            castScan(grid, origin, start, 4.0, n_rays, 40.0, scalar,
                     RayEngine::Scalar);
            ASSERT_EQ(packet.size(), static_cast<std::size_t>(n_rays));
            EXPECT_EQ(0, std::memcmp(packet.data(), scalar.data(),
                                     packet.size() * sizeof(double)))
                << "n_rays " << n_rays << " rep " << rep;
        }
    }
}

TEST(RaycastPacket, OccupiedAndOutOfBoundsOriginsRetireAtZero)
{
    OccupancyGrid2D grid = boxWorld();
    std::vector<double> packet, scalar;
    // Origins inside the block, inside walls, and outside the map: all
    // rays must come back 0.0 from both engines.
    for (Vec2 origin : {Vec2{11.0, 9.0}, Vec2{0.5, 0.5}, Vec2{-3.0, 5.0},
                        Vec2{25.0, 25.0}}) {
        castScan(grid, origin, -kPi, kTwoPi, 16, 30.0, packet,
                 RayEngine::Packet);
        castScan(grid, origin, -kPi, kTwoPi, 16, 30.0, scalar,
                 RayEngine::Scalar);
        EXPECT_EQ(0, std::memcmp(packet.data(), scalar.data(),
                                 packet.size() * sizeof(double)));
        for (double r : packet)
            EXPECT_EQ(r, 0.0);
    }
}

TEST(RaycastPacket, CountersMatchHierEngine)
{
    // The packet engine performs the hier engine's probes at the same
    // cells and the same per-ray step count, so the scan totals must
    // agree exactly.
    OccupancyGrid2D grid = makeIndoorMap(120, 80, 0.25, 3);
    RayCastStats packet_stats, hier_stats;
    std::vector<double> packet, hier;
    castScanCounted(grid, {15.0, 10.0}, -2.0, 4.0, 60, 20.0, packet,
                    RayEngine::Packet, packet_stats);
    castScanCounted(grid, {15.0, 10.0}, -2.0, 4.0, 60, 20.0, hier,
                    RayEngine::Hierarchical, hier_stats);
    EXPECT_EQ(0, std::memcmp(packet.data(), hier.data(),
                             packet.size() * sizeof(double)));
    EXPECT_EQ(packet_stats.steps, hier_stats.steps);
    EXPECT_EQ(packet_stats.probes, hier_stats.probes);
}

TEST(RaycastPacket, TracksInterleavedApplyEditsBatches)
{
    // Batched edits (applyEdits) interleaved with packet scans: after
    // every batch the packet engine must match the scalar engine on a
    // twin grid maintained by sequential setOccupied calls.
    OccupancyGrid2D grid(100, 70, 0.5);
    OccupancyGrid2D twin(100, 70, 0.5);
    Rng rng(53);
    std::vector<double> packet, scalar;
    std::vector<CellEdit> edits;
    for (int round = 0; round < 30; ++round) {
        edits.clear();
        for (int e = 0; e < 40; ++e) {
            // Cluster edits so batches hit repeated words/blocks, and
            // stray out of bounds sometimes (must be ignored).
            edits.push_back({static_cast<int>(rng.index(104)) - 2,
                             static_cast<int>(rng.index(74)) - 2,
                             rng.uniform() < 0.5});
        }
        grid.applyEdits(edits);
        for (const CellEdit &e : edits)
            twin.setOccupied(e.x, e.y, e.occupied);
        for (int i = 0; i < 10; ++i) {
            Vec2 origin{rng.uniform(0.0, 50.0), rng.uniform(0.0, 35.0)};
            double start = rng.uniform(-kPi, kPi);
            castScan(grid, origin, start, 3.0, 24, 60.0, packet,
                     RayEngine::Packet);
            castScan(twin, origin, start, 3.0, 24, 60.0, scalar,
                     RayEngine::Scalar);
            EXPECT_EQ(0, std::memcmp(packet.data(), scalar.data(),
                                     packet.size() * sizeof(double)))
                << "round " << round;
        }
    }
}

TEST(RaycastPacket, BatchBitwiseIdenticalAcrossThreadCountsAndEngines)
{
    OccupancyGrid2D grid = makeIndoorMap(120, 80, 0.25, 5);
    Rng rng(19);
    std::vector<Pose2> poses;
    while (poses.size() < 30) {
        Pose2 pose{rng.uniform(1.0, 29.0), rng.uniform(1.0, 19.0),
                   rng.uniform(-kPi, kPi)};
        if (!grid.occupiedWorld(pose.position()))
            poses.push_back(pose);
    }
    std::vector<double> reference;
    castScanBatch(grid, poses, -2.0, 4.0, 32, 12.0, reference,
                  RayEngine::Scalar);
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{0}}) {
        setParallelThreads(threads);
        std::vector<double> packet;
        castScanBatch(grid, poses, -2.0, 4.0, 32, 12.0, packet,
                      RayEngine::Packet);
        ASSERT_EQ(packet.size(), reference.size());
        EXPECT_EQ(0, std::memcmp(packet.data(), reference.data(),
                                 packet.size() * sizeof(double)))
            << "threads " << threads;
    }
    setParallelThreads(0);
}

TEST(RayEngineSelection, NamesRoundTripAndRejectUnknown)
{
    RayEngine engine;
    ASSERT_TRUE(parseRayEngine("packet", engine));
    EXPECT_EQ(engine, RayEngine::Packet);
    ASSERT_TRUE(parseRayEngine("hier", engine));
    EXPECT_EQ(engine, RayEngine::Hierarchical);
    ASSERT_TRUE(parseRayEngine("scalar", engine));
    EXPECT_EQ(engine, RayEngine::Scalar);
    EXPECT_FALSE(parseRayEngine("vector", engine));
    EXPECT_FALSE(parseRayEngine("", engine));
    EXPECT_STREQ(rayEngineName(RayEngine::Packet), "packet");
    EXPECT_STREQ(rayEngineName(RayEngine::Hierarchical), "hier");
    EXPECT_STREQ(rayEngineName(RayEngine::Scalar), "scalar");
}

TEST(CastScanBatch, MatchesPerPoseCastRay)
{
    OccupancyGrid2D grid = makeIndoorMap(120, 80, 0.25, 5);
    Rng rng(13);
    std::vector<Pose2> poses;
    while (poses.size() < 40) {
        Pose2 pose{rng.uniform(1.0, 29.0), rng.uniform(1.0, 19.0),
                   rng.uniform(-kPi, kPi)};
        if (!grid.occupiedWorld(pose.position()))
            poses.push_back(pose);
    }
    const int n_beams = 24;
    const double start_angle = -2.0, fov = 4.0, max_range = 12.0;
    std::vector<double> batch;
    castScanBatch(grid, poses, start_angle, fov, n_beams, max_range,
                  batch);
    std::vector<double> batch_scalar;
    castScanBatch(grid, poses, start_angle, fov, n_beams, max_range,
                  batch_scalar, RayEngine::Scalar);
    ASSERT_EQ(batch.size(), poses.size() * n_beams);
    ASSERT_EQ(batch_scalar.size(), batch.size());
    const double beam_step = fov / static_cast<double>(n_beams);
    for (std::size_t i = 0; i < poses.size(); ++i) {
        for (int b = 0; b < n_beams; ++b) {
            double angle = poses[i].theta + start_angle +
                           static_cast<double>(b) * beam_step;
            double expected = castRay(grid, poses[i].position(), angle,
                                      max_range);
            EXPECT_EQ(batch[i * n_beams + b], expected);
            EXPECT_EQ(batch_scalar[i * n_beams + b], expected);
        }
    }
}

} // namespace
} // namespace rtr

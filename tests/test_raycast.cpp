/**
 * @file
 * Tests for the DDA ray-caster, including a property sweep against the
 * brute-force reference implementation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "geom/angle.h"
#include "grid/map_gen.h"
#include "grid/raycast.h"
#include "util/rng.h"

namespace rtr {
namespace {

OccupancyGrid2D
boxWorld()
{
    // 20 x 20 room with walls on the border and a block at x:10..12,
    // y:8..10.
    OccupancyGrid2D grid(20, 20, 1.0);
    for (int i = 0; i < 20; ++i) {
        grid.setOccupied(i, 0);
        grid.setOccupied(i, 19);
        grid.setOccupied(0, i);
        grid.setOccupied(19, i);
    }
    for (int x = 10; x <= 12; ++x) {
        for (int y = 8; y <= 10; ++y)
            grid.setOccupied(x, y);
    }
    return grid;
}

TEST(Raycast, AxisAlignedKnownDistances)
{
    OccupancyGrid2D grid = boxWorld();
    Vec2 origin{5.5, 9.5};
    // Ray along +x hits the block face at x = 10.
    EXPECT_NEAR(castRay(grid, origin, 0.0, 100.0), 4.5, 1e-9);
    // Ray along -x hits the left wall face at x = 1.
    EXPECT_NEAR(castRay(grid, origin, kPi, 100.0), 4.5, 1e-9);
    // Ray along +y hits the top wall face at y = 19.
    EXPECT_NEAR(castRay(grid, origin, kPi / 2.0, 100.0), 9.5, 1e-9);
}

TEST(Raycast, MaxRangeWhenNothingHit)
{
    OccupancyGrid2D grid = boxWorld();
    Vec2 origin{5.5, 5.5};
    EXPECT_DOUBLE_EQ(castRay(grid, origin, kPi / 4.0, 2.0), 2.0);
}

TEST(Raycast, OriginInsideObstacleIsZero)
{
    OccupancyGrid2D grid = boxWorld();
    EXPECT_DOUBLE_EQ(castRay(grid, {11.0, 9.0}, 0.3, 100.0), 0.0);
}

TEST(Raycast, DiagonalDistance)
{
    OccupancyGrid2D grid(10, 10, 1.0);
    grid.setOccupied(5, 5);
    // 45-degree ray from (3.5, 3.5) enters cell (5,5) at (5,5): the
    // distance is sqrt(2) * 1.5.
    double d = castRay(grid, {3.5, 3.5}, kPi / 4.0, 100.0);
    EXPECT_NEAR(d, std::sqrt(2.0) * 1.5, 1e-9);
}

TEST(Raycast, ScanProducesOneRangePerBeam)
{
    OccupancyGrid2D grid = boxWorld();
    std::vector<double> out;
    castScan(grid, {9.5, 4.5}, -kPi, kTwoPi, 36, 50.0, out);
    ASSERT_EQ(out.size(), 36u);
    for (double r : out) {
        EXPECT_GT(r, 0.0);
        EXPECT_LE(r, 50.0);
    }
}

TEST(Raycast, ResolutionIndependence)
{
    // The same world geometry at finer resolution gives the same
    // distances.
    OccupancyGrid2D coarse = boxWorld();
    OccupancyGrid2D fine = scaleMap(coarse, 4);
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        Vec2 origin{rng.uniform(1.5, 8.5), rng.uniform(1.5, 7.5)};
        double angle = rng.uniform(-kPi, kPi);
        double dc = castRay(coarse, origin, angle, 40.0);
        double df = castRay(fine, origin, angle, 40.0);
        EXPECT_NEAR(dc, df, 1e-9) << "origin (" << origin.x << ","
                                  << origin.y << ") angle " << angle;
    }
}

/** Property sweep: DDA matches the brute-force small-step reference. */
class RaycastVsReference : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RaycastVsReference, AgreesOnRandomMaps)
{
    Rng rng(GetParam());
    OccupancyGrid2D grid = makeRandomObstacleMap(48, 48, 0.15, GetParam());
    int tested = 0;
    while (tested < 60) {
        Vec2 origin{rng.uniform(1.0, 47.0), rng.uniform(1.0, 47.0)};
        if (grid.occupiedWorld(origin))
            continue;
        ++tested;
        double angle = rng.uniform(-kPi, kPi);
        double fast = castRay(grid, origin, angle, 30.0);
        double slow = castRayReference(grid, origin, angle, 30.0);
        // The reference steps at resolution/50, so tolerate that much.
        EXPECT_NEAR(fast, slow, grid.resolution() * 0.05)
            << "origin (" << origin.x << "," << origin.y << ") angle "
            << angle;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaycastVsReference,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
} // namespace rtr

/**
 * @file
 * Bitwise-identity tests of the batched environments (DESIGN.md
 * "Batched environments"): the soa engine must reproduce the scalar
 * reference exactly — rewards, traces, state sequences, rollout costs,
 * particle poses and weights — at every environment count (including
 * non-multiple-of-kWidth remainders), thread count and seed, and
 * non-finite values must propagate through a lane exactly as through
 * the reference.
 */

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "control/ball_throw.h"
#include "control/batch_env.h"
#include "control/cem.h"
#include "control/gaussian_process.h"
#include "control/mpc.h"
#include "kernels/registry.h"
#include "perception/batch_pfl.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace rtr {
namespace {

/** Exact equality including NaN payloads and zero signs. */
::testing::AssertionResult
bitEqual(double a, double b)
{
    if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b))
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << a << " != " << b << " (bits differ)";
}

/** Env counts crossing every remainder class of kWidth in {1,2,4,8}. */
const std::vector<std::size_t> kCounts = {1,  2,  3,  4,  5,   7,  8,
                                          9,  15, 16, 17, 31,  63, 64,
                                          65, 127, 128, 129, 257};

TEST(BatchThrow, SoaMatchesScalarAndEnvAtEveryCount)
{
    BallThrowEnv env(5.0);
    Rng rng(11);
    for (std::size_t count : kCounts) {
        std::vector<double> t1(count), t2(count), sp(count);
        for (std::size_t e = 0; e < count; ++e) {
            t1[e] = rng.uniform(env.lowerBounds()[0],
                                env.upperBounds()[0]);
            t2[e] = rng.uniform(env.lowerBounds()[1],
                                env.upperBounds()[1]);
            sp[e] = rng.uniform(env.lowerBounds()[2],
                                env.upperBounds()[2]);
        }
        std::vector<double> r_soa(count), r_ref(count);
        std::vector<double> tr_soa(count * 64), tr_ref(count * 64);
        evaluateThrowBatch(env, t1.data(), t2.data(), sp.data(), count,
                           r_soa.data(), tr_soa.data(),
                           BatchEngine::Soa);
        evaluateThrowBatch(env, t1.data(), t2.data(), sp.data(), count,
                           r_ref.data(), tr_ref.data(),
                           BatchEngine::Scalar);
        for (std::size_t e = 0; e < count; ++e) {
            EXPECT_TRUE(bitEqual(r_soa[e], r_ref[e]))
                << "count " << count << " env " << e;
            // The scalar engine must itself be the env's own answer.
            const std::vector<double> params = {t1[e], t2[e], sp[e]};
            EXPECT_TRUE(bitEqual(r_ref[e], env.evaluate(params)));
            const auto trace = env.flightTrace(params);
            for (std::size_t i = 0; i < 64; ++i) {
                EXPECT_TRUE(bitEqual(tr_soa[e * 64 + i],
                                     tr_ref[e * 64 + i]));
                EXPECT_TRUE(bitEqual(tr_ref[e * 64 + i], trace[i]));
            }
        }
    }
}

TEST(BatchThrow, NonFiniteParamsPropagateIdentically)
{
    BallThrowEnv env(5.0);
    const std::size_t count = 9; // full lanes + remainder on every ISA
    std::vector<double> t1(count, 0.7), t2(count, -0.3), sp(count, 6.0);
    t1[2] = std::numeric_limits<double>::quiet_NaN();
    sp[5] = std::numeric_limits<double>::infinity();
    t2[6] = -std::numeric_limits<double>::infinity();

    std::vector<double> r_soa(count), r_ref(count);
    std::vector<double> tr_soa(count * 64), tr_ref(count * 64);
    evaluateThrowBatch(env, t1.data(), t2.data(), sp.data(), count,
                       r_soa.data(), tr_soa.data(), BatchEngine::Soa);
    evaluateThrowBatch(env, t1.data(), t2.data(), sp.data(), count,
                       r_ref.data(), tr_ref.data(), BatchEngine::Scalar);
    for (std::size_t e = 0; e < count; ++e) {
        EXPECT_TRUE(bitEqual(r_soa[e], r_ref[e])) << "env " << e;
        for (std::size_t i = 0; i < 64; ++i)
            EXPECT_TRUE(bitEqual(tr_soa[e * 64 + i], tr_ref[e * 64 + i]))
                << "env " << e << " slot " << i;
    }
    // The poisoned lanes really did degrade (and only those).
    EXPECT_TRUE(std::isnan(r_soa[2]));
    EXPECT_TRUE(bitEqual(r_soa[0], r_soa[1]));
}

TEST(BatchUnicycle, StepAndRolloutMatchScalarAtEveryCount)
{
    MpcConfig config;
    config.horizon = 12;
    const auto h = static_cast<std::size_t>(config.horizon);
    Rng rng(7);
    std::vector<Vec2> reference;
    for (std::size_t k = 0; k < h; ++k)
        reference.push_back(
            {0.2 * static_cast<double>(k), rng.uniform(-0.5, 0.5)});

    for (std::size_t count : kCounts) {
        std::vector<UnicycleState> starts(count);
        std::vector<double> v(h * count), w(h * count);
        for (std::size_t e = 0; e < count; ++e) {
            starts[e].x = rng.uniform(-1.0, 1.0);
            starts[e].y = rng.uniform(-1.0, 1.0);
            starts[e].theta = rng.uniform(-3.0, 3.0);
            starts[e].v = rng.uniform(0.0, 2.0);
        }
        for (double &x : v)
            x = rng.uniform(0.0, 2.0);
        for (double &x : w)
            x = rng.uniform(-1.5, 1.5);

        // Per-step state identity.
        UnicycleBatch soa, ref;
        soa.assign(count, starts[0]);
        ref.assign(count, starts[0]);
        for (std::size_t e = 0; e < count; ++e) {
            soa.x[e] = ref.x[e] = starts[e].x;
            soa.y[e] = ref.y[e] = starts[e].y;
            soa.theta[e] = ref.theta[e] = starts[e].theta;
            soa.v[e] = ref.v[e] = starts[e].v;
        }
        for (std::size_t k = 0; k < h; ++k) {
            stepUnicycleBatch(soa, v.data() + k * count,
                              w.data() + k * count, config.dt,
                              BatchEngine::Soa);
            stepUnicycleBatch(ref, v.data() + k * count,
                              w.data() + k * count, config.dt,
                              BatchEngine::Scalar);
            for (std::size_t e = 0; e < count; ++e) {
                ASSERT_TRUE(bitEqual(soa.x[e], ref.x[e]))
                    << count << "/" << k << "/" << e;
                ASSERT_TRUE(bitEqual(soa.y[e], ref.y[e]));
                ASSERT_TRUE(bitEqual(soa.theta[e], ref.theta[e]));
                ASSERT_TRUE(bitEqual(soa.v[e], ref.v[e]));
            }
        }

        // Rollout-cost identity, against the serial reference function.
        std::vector<double> c_soa(count), c_ref(count);
        unicycleRolloutCostBatch(config, starts.data(), reference,
                                 v.data(), w.data(), h, count,
                                 c_soa.data(), BatchEngine::Soa);
        unicycleRolloutCostBatch(config, starts.data(), reference,
                                 v.data(), w.data(), h, count,
                                 c_ref.data(), BatchEngine::Scalar);
        for (std::size_t e = 0; e < count; ++e) {
            EXPECT_TRUE(bitEqual(c_soa[e], c_ref[e]))
                << "count " << count << " env " << e;
            std::vector<double> ve(h), we(h);
            for (std::size_t k = 0; k < h; ++k) {
                ve[k] = v[k * count + e];
                we[k] = w[k * count + e];
            }
            EXPECT_TRUE(bitEqual(
                c_ref[e],
                unicycleRolloutCost(config, starts[e], reference, ve,
                                    we)));
        }
    }
}

TEST(BatchMpc, GradientIdenticalAcrossEnginesAndThreads)
{
    MpcConfig config;
    config.horizon = 15;
    const auto h = static_cast<std::size_t>(config.horizon);
    Rng rng(3);
    std::vector<Vec2> reference;
    for (std::size_t k = 0; k < h; ++k)
        reference.push_back({0.15 * static_cast<double>(k),
                             rng.uniform(-0.4, 0.4)});
    UnicycleState start;
    start.theta = 0.3;
    start.v = 1.0;
    std::vector<double> v(h), w(h);
    for (std::size_t k = 0; k < h; ++k) {
        v[k] = rng.uniform(0.0, 2.0);
        w[k] = rng.uniform(-1.5, 1.5);
    }

    std::vector<std::vector<double>> gv, gw;
    for (std::size_t threads : {std::size_t{1}, std::size_t{3},
                                std::size_t{0}}) {
        setParallelThreads(threads);
        for (BatchEngine engine :
             {BatchEngine::Soa, BatchEngine::Scalar}) {
            MpcConfig c = config;
            c.batch_engine = engine;
            std::vector<double> grad_v(h), grad_w(h);
            mpcCentralDiffGradient(c, start, reference, v, w, 1e-4,
                                   grad_v, grad_w);
            gv.push_back(grad_v);
            gw.push_back(grad_w);
        }
    }
    setParallelThreads(0);
    for (std::size_t i = 1; i < gv.size(); ++i)
        for (std::size_t k = 0; k < h; ++k) {
            EXPECT_TRUE(bitEqual(gv[i][k], gv[0][k]))
                << "variant " << i << " k " << k;
            EXPECT_TRUE(bitEqual(gw[i][k], gw[0][k]));
        }
}

TEST(BatchPfl, MotionModelAndBeamWeightsMatchScalar)
{
    Rng rng(19);
    OdometryReading odom;
    odom.rot1 = 0.2;
    odom.trans = 0.35;
    odom.rot2 = -0.1;
    BeamSensorModel model;
    const std::size_t n_beams = 13;

    for (std::size_t count : kCounts) {
        std::vector<double> x(count), y(count), th(count);
        std::vector<double> n1(count), n2(count), n3(count);
        for (std::size_t e = 0; e < count; ++e) {
            x[e] = rng.uniform(-5.0, 5.0);
            y[e] = rng.uniform(-5.0, 5.0);
            th[e] = rng.uniform(-3.1, 3.1);
            n1[e] = rng.normal(0.0, 0.05);
            n2[e] = rng.normal(0.0, 0.02);
            n3[e] = rng.normal(0.0, 0.05);
        }
        std::vector<double> xs = x, ys = y, ths = th;
        motionModelSoa(xs.data(), ys.data(), ths.data(), n1.data(),
                       n2.data(), n3.data(), odom, count);
        motionModelScalar(x.data(), y.data(), th.data(), n1.data(),
                          n2.data(), n3.data(), odom, count);
        for (std::size_t e = 0; e < count; ++e) {
            ASSERT_TRUE(bitEqual(xs[e], x[e])) << count << "/" << e;
            ASSERT_TRUE(bitEqual(ys[e], y[e]));
            ASSERT_TRUE(bitEqual(ths[e], th[e]));
        }

        std::vector<double> expected(count * n_beams), scan(n_beams);
        for (double &r : expected)
            r = rng.uniform(0.0, 10.0);
        for (double &r : scan)
            r = rng.uniform(0.0, 10.0);
        if (count > 2) // a zero-diff beam and a non-finite range
            expected[2 * n_beams + 4] = scan[4];
        if (count > 5)
            expected[5 * n_beams + 1] =
                std::numeric_limits<double>::quiet_NaN();
        std::vector<double> lw_soa(count), lw_ref(count);
        beamLogWeights(expected.data(), count, n_beams, scan.data(),
                       model, 10.0, lw_soa.data(), BatchEngine::Soa);
        beamLogWeights(expected.data(), count, n_beams, scan.data(),
                       model, 10.0, lw_ref.data(), BatchEngine::Scalar);
        for (std::size_t e = 0; e < count; ++e)
            EXPECT_TRUE(bitEqual(lw_soa[e], lw_ref[e]))
                << "count " << count << " particle " << e;
    }
}

TEST(BatchGp, PredictBatchBitwiseMatchesPredict)
{
    GaussianProcess gp;
    Rng rng(29);
    const std::size_t dims = 3;
    std::vector<std::vector<double>> inputs;
    std::vector<double> targets;
    for (int i = 0; i < 24; ++i) {
        std::vector<double> x(dims);
        for (double &v : x)
            v = rng.uniform(-2.0, 2.0);
        inputs.push_back(x);
        targets.push_back(rng.uniform(-1.0, 1.0));
    }
    gp.fit(inputs, targets);

    // 300 queries cross the 256-candidate tile boundary.
    const std::size_t n = 300;
    std::vector<double> queries(n * dims);
    for (double &q : queries)
        q = rng.uniform(-2.5, 2.5);
    std::vector<double> means(n), vars(n);
    gp.predictBatch(queries.data(), n, dims, means.data(), vars.data());
    for (std::size_t c = 0; c < n; ++c) {
        std::vector<double> q(queries.begin() +
                                  static_cast<std::ptrdiff_t>(c * dims),
                              queries.begin() +
                                  static_cast<std::ptrdiff_t>(
                                      (c + 1) * dims));
        GpPrediction pred = gp.predict(q);
        EXPECT_TRUE(bitEqual(means[c], pred.mean)) << "query " << c;
        EXPECT_TRUE(bitEqual(vars[c], pred.variance)) << "query " << c;
    }
}

TEST(BatchCem, EvaluatorEnginesAndFunctionalPathAgree)
{
    BallThrowEnv env(5.0);
    CemConfig config;
    CemOptimizer optimizer(config);
    auto reward = [&env](const std::vector<double> &p) {
        return env.evaluate(p);
    };
    auto trace = [&env](const std::vector<double> &p) {
        return env.flightTrace(p);
    };

    std::vector<CemResult> results;
    for (std::size_t threads : {std::size_t{1}, std::size_t{0}}) {
        setParallelThreads(threads);
        {
            Rng rng(5);
            results.push_back(optimizer.optimize(
                reward, env.lowerBounds(), env.upperBounds(), rng,
                nullptr, trace));
        }
        for (BatchEngine engine :
             {BatchEngine::Soa, BatchEngine::Scalar}) {
            Rng rng(5);
            ThrowSampleEvaluator evaluator(env, true, engine);
            results.push_back(optimizer.optimize(
                evaluator, env.lowerBounds(), env.upperBounds(), rng));
        }
    }
    setParallelThreads(0);
    for (std::size_t i = 1; i < results.size(); ++i) {
        EXPECT_TRUE(
            bitEqual(results[i].best_reward, results[0].best_reward))
            << "variant " << i;
        ASSERT_EQ(results[i].best_params.size(),
                  results[0].best_params.size());
        for (std::size_t d = 0; d < results[0].best_params.size(); ++d)
            EXPECT_TRUE(bitEqual(results[i].best_params[d],
                                 results[0].best_params[d]));
        ASSERT_EQ(results[i].reward_history.size(),
                  results[0].reward_history.size());
        for (std::size_t s = 0; s < results[0].reward_history.size();
             ++s)
            EXPECT_TRUE(bitEqual(results[i].reward_history[s],
                                 results[0].reward_history[s]));
    }
}

/** Non-timing kernel outputs that must be engine-independent. */
struct CrossEngineCase
{
    const char *kernel;
    std::vector<std::string> overrides;
    std::vector<const char *> metrics;
};

TEST(BatchKernels, CrossEngineOutputsIdentical)
{
    const std::vector<CrossEngineCase> cases = {
        {"cem",
         {"--repeats", "3"},
         {"best_reward", "evaluations_per_episode"}},
        {"mpc",
         {"--ref-points", "12", "--opt-iterations", "5"},
         {"avg_tracking_error_m", "max_tracking_error_m", "cost_evals"}},
        {"bo",
         {"--iterations", "3", "--candidates", "500"},
         {"best_reward", "acquisition_evals"}},
        {"pfl",
         {"--particles", "150", "--steps", "6"},
         {"final_error_m", "final_spread_m", "rays_cast"}},
    };
    for (const CrossEngineCase &c : cases) {
        std::vector<std::string> soa_args = c.overrides;
        soa_args.insert(soa_args.end(), {"--batch", "soa"});
        std::vector<std::string> scalar_args = c.overrides;
        scalar_args.insert(scalar_args.end(), {"--batch", "scalar"});
        KernelReport soa = makeKernel(c.kernel)->runWithDefaults(soa_args);
        KernelReport scalar =
            makeKernel(c.kernel)->runWithDefaults(scalar_args);
        for (const char *m : c.metrics) {
            ASSERT_TRUE(soa.metrics.count(m)) << c.kernel << " " << m;
            ASSERT_TRUE(scalar.metrics.count(m));
            EXPECT_TRUE(bitEqual(soa.metrics.at(m), scalar.metrics.at(m)))
                << c.kernel << " metric " << m;
        }
        for (const auto &[name, series] : soa.series) {
            ASSERT_TRUE(scalar.series.count(name));
            const auto &other = scalar.series.at(name);
            ASSERT_EQ(series.size(), other.size()) << c.kernel;
            for (std::size_t i = 0; i < series.size(); ++i)
                EXPECT_TRUE(bitEqual(series[i], other[i]))
                    << c.kernel << " series " << name << "[" << i << "]";
        }
    }
}

} // namespace
} // namespace rtr

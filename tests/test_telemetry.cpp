/**
 * @file
 * Tests for the telemetry subsystem: span recording and nesting,
 * bounded-buffer overflow accounting, Chrome trace-event JSON export
 * (validated by an in-test JSON parser and round-tripped), perf
 * counter graceful degradation, and the bench harness satellites
 * (strict warmup parsing, JsonWriter).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "../bench/bench_common.h"
#include "telemetry/perf_counters.h"
#include "telemetry/trace.h"
#include "telemetry/trace_export.h"
#include "util/parallel.h"
#include "util/profiler.h"
#include "util/roi.h"

namespace rtr {
namespace {

using telemetry::Category;
using telemetry::Tracer;
using telemetry::TraceEvent;

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser: enough to validate that the
// exporter emits well-formed trace-event JSON and to read values back.
// ---------------------------------------------------------------------------

struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> members;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : members) {
            if (k == key)
                return &v;
        }
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string text) : text_(std::move(text)) {}

    /** Parse the whole document; ok() reports success. */
    JsonValue
    parse()
    {
        JsonValue value = parseValue();
        skipWs();
        if (pos_ != text_.size())
            ok_ = false;
        return value;
    }

    bool ok() const { return ok_; }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                text_[pos_] == '\t' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) == 0) {
            pos_ += len;
            return true;
        }
        ok_ = false;
        return false;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            ok_ = false;
            return {};
        }
        JsonValue value;
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            value.kind = JsonValue::Kind::Object;
            skipWs();
            if (consume('}'))
                return value;
            do {
                skipWs();
                JsonValue key = parseString();
                if (!consume(':')) {
                    ok_ = false;
                    return value;
                }
                value.members.emplace_back(key.string, parseValue());
            } while (consume(','));
            if (!consume('}'))
                ok_ = false;
        } else if (c == '[') {
            ++pos_;
            value.kind = JsonValue::Kind::Array;
            skipWs();
            if (consume(']'))
                return value;
            do {
                value.items.push_back(parseValue());
            } while (consume(','));
            if (!consume(']'))
                ok_ = false;
        } else if (c == '"') {
            value = parseString();
        } else if (c == 't') {
            value.kind = JsonValue::Kind::Bool;
            value.boolean = true;
            literal("true");
        } else if (c == 'f') {
            value.kind = JsonValue::Kind::Bool;
            literal("false");
        } else if (c == 'n') {
            literal("null");
        } else {
            value.kind = JsonValue::Kind::Number;
            char *end = nullptr;
            value.number = std::strtod(text_.c_str() + pos_, &end);
            if (end == text_.c_str() + pos_) {
                ok_ = false;
            } else {
                pos_ = static_cast<std::size_t>(end - text_.c_str());
            }
        }
        return value;
    }

    JsonValue
    parseString()
    {
        JsonValue value;
        value.kind = JsonValue::Kind::String;
        if (!consume('"')) {
            ok_ = false;
            return value;
        }
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\' && pos_ < text_.size()) {
                const char esc = text_[pos_++];
                switch (esc) {
                  case 'n':
                    c = '\n';
                    break;
                  case 't':
                    c = '\t';
                    break;
                  case 'u':
                    // \u00xx only (what the exporter emits).
                    if (pos_ + 4 <= text_.size()) {
                        c = static_cast<char>(std::strtol(
                            text_.substr(pos_ + 2, 2).c_str(), nullptr,
                            16));
                        pos_ += 4;
                    }
                    break;
                  default:
                    c = esc;
                }
            }
            value.string += c;
        }
        if (!consume('"'))
            ok_ = false;
        return value;
    }

    // By value: callers hand in temporaries (ostringstream::str()).
    std::string text_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/** Fresh global tracer for each test (shared process-wide state). */
class TelemetryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Tracer::global().disable();
        Tracer::global().reset();
    }

    void
    TearDown() override
    {
        Tracer::global().disable();
        Tracer::global().setBufferCapacity(1 << 14);
        Tracer::global().reset();
    }
};

/** Export the global tracer and parse the result; asserts validity. */
JsonValue
exportAndParse()
{
    std::ostringstream out;
    telemetry::writeChromeTrace(Tracer::global(), out);
    JsonParser parser(out.str());
    JsonValue document = parser.parse();
    EXPECT_TRUE(parser.ok()) << out.str();
    EXPECT_EQ(document.kind, JsonValue::Kind::Object);
    return document;
}

/** All exported events with the given name. */
std::vector<const JsonValue *>
eventsNamed(const JsonValue &document, const std::string &name)
{
    std::vector<const JsonValue *> out;
    const JsonValue *events = document.find("traceEvents");
    if (!events)
        return out;
    for (const JsonValue &event : events->items) {
        const JsonValue *n = event.find("name");
        if (n && n->string == name)
            out.push_back(&event);
    }
    return out;
}

TEST_F(TelemetryTest, DisabledTracerRecordsNothing)
{
    telemetry::instant("ignored");
    {
        telemetry::TraceSpan span("also-ignored");
    }
    EXPECT_EQ(Tracer::global().totalEvents(), 0u);
    EXPECT_EQ(Tracer::global().totalDropped(), 0u);
}

TEST_F(TelemetryTest, NestedSpansRecordContainedIntervals)
{
    Tracer::global().enable();
    {
        telemetry::TraceSpan outer("outer", Category::User);
        {
            telemetry::TraceSpan inner("inner", Category::User);
        }
    }
    Tracer::global().disable();

    const telemetry::ThreadBuffer &buffer =
        Tracer::global().currentBuffer();
    ASSERT_EQ(buffer.size(), 2u);
    // Spans close innermost-first.
    const TraceEvent &inner = buffer.event(0);
    const TraceEvent &outer = buffer.event(1);
    EXPECT_STREQ(inner.name, "inner");
    EXPECT_STREQ(outer.name, "outer");
    EXPECT_EQ(inner.type, TraceEvent::Type::Complete);
    EXPECT_EQ(outer.type, TraceEvent::Type::Complete);
    // The inner interval nests inside the outer one.
    EXPECT_GE(inner.ts_ns, outer.ts_ns);
    EXPECT_LE(inner.ts_ns + inner.dur_ns, outer.ts_ns + outer.dur_ns);
    EXPECT_GE(inner.dur_ns, 0);
    EXPECT_GE(outer.dur_ns, inner.dur_ns);
}

TEST_F(TelemetryTest, PhaseProfilerMirrorsPhasesAsSpans)
{
    Tracer::global().enable();
    PhaseProfiler profiler;
    profiler.begin("alpha");
    profiler.begin("beta");
    profiler.end();
    profiler.end();
    Tracer::global().disable();

    const telemetry::ThreadBuffer &buffer =
        Tracer::global().currentBuffer();
    ASSERT_EQ(buffer.size(), 2u);
    EXPECT_STREQ(buffer.event(0).name, "beta");
    EXPECT_STREQ(buffer.event(1).name, "alpha");
    EXPECT_EQ(buffer.event(0).cat, Category::Phase);
    // Mirrored duration matches the profiler's accumulation exactly:
    // both come from the same timestamp pair.
    EXPECT_EQ(buffer.event(0).dur_ns, profiler.phaseNs("beta"));
    EXPECT_EQ(buffer.event(1).dur_ns, profiler.phaseNs("alpha"));
}

TEST_F(TelemetryTest, RoiHooksEmitInstantEvents)
{
    Tracer::global().enable();
    {
        ScopedRoi roi;
        EXPECT_TRUE(inRoi());
    }
    EXPECT_FALSE(inRoi());
    Tracer::global().disable();

    JsonValue document = exportAndParse();
    ASSERT_EQ(eventsNamed(document, "roi-begin").size(), 1u);
    ASSERT_EQ(eventsNamed(document, "roi-end").size(), 1u);
    const JsonValue *begin = eventsNamed(document, "roi-begin")[0];
    EXPECT_EQ(begin->find("ph")->string, "i");
    EXPECT_EQ(begin->find("cat")->string, "roi");
}

TEST_F(TelemetryTest, OverflowIncrementsDropCounterWithoutCorruption)
{
    Tracer::global().setBufferCapacity(8);
    Tracer::global().enable();
    for (int i = 0; i < 20; ++i)
        telemetry::instant("event-" + std::to_string(i));
    Tracer::global().disable();

    const telemetry::ThreadBuffer &buffer =
        Tracer::global().currentBuffer();
    EXPECT_EQ(buffer.size(), 8u);
    EXPECT_EQ(buffer.dropped(), 12u);
    // The first 8 events survive untouched; drops never overwrite.
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_STREQ(buffer.event(i).name,
                     ("event-" + std::to_string(i)).c_str());
    }
    // The exported trace stays valid and reports the drops.
    JsonValue document = exportAndParse();
    ASSERT_EQ(eventsNamed(document, "dropped_events").size(), 1u);
    EXPECT_EQ(eventsNamed(document, "dropped_events")[0]
                  ->find("args")
                  ->find("value")
                  ->number,
              12.0);
}

TEST_F(TelemetryTest, LongNamesAreTruncatedNotOverflowed)
{
    Tracer::global().enable();
    const std::string long_name(200, 'x');
    telemetry::instant(long_name);
    Tracer::global().disable();
    const telemetry::ThreadBuffer &buffer =
        Tracer::global().currentBuffer();
    ASSERT_EQ(buffer.size(), 1u);
    EXPECT_EQ(std::string(buffer.event(0).name),
              std::string(TraceEvent::kNameCapacity, 'x'));
}

TEST_F(TelemetryTest, ExportRoundTripsNamesAndTimestamps)
{
    Tracer::global().enable();
    const std::int64_t t0 = Tracer::global().timeOriginNs();
    // Deterministic timestamps (ns past the origin): the exported
    // microsecond strings are exact at nanosecond resolution.
    telemetry::completeSpan("span \"quoted\"", Category::Phase,
                            t0 + 1234567, 500);
    telemetry::completeSpan("span-two", Category::Bench, t0 + 2000000,
                            1500);
    telemetry::counterSample("particles", 800.0);
    Tracer::global().disable();

    JsonValue document = exportAndParse();
    const JsonValue *events = document.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, JsonValue::Kind::Array);

    auto spans = eventsNamed(document, "span \"quoted\"");
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0]->find("ph")->string, "X");
    EXPECT_EQ(spans[0]->find("cat")->string, "phase");
    // ts is µs relative to the origin: 1234567 ns -> 1234.567 µs.
    EXPECT_DOUBLE_EQ(spans[0]->find("ts")->number, 1234.567);
    EXPECT_DOUBLE_EQ(spans[0]->find("dur")->number, 0.5);

    auto second = eventsNamed(document, "span-two");
    ASSERT_EQ(second.size(), 1u);
    EXPECT_DOUBLE_EQ(second[0]->find("ts")->number, 2000.0);
    EXPECT_DOUBLE_EQ(second[0]->find("dur")->number, 1.5);

    auto counters = eventsNamed(document, "particles");
    ASSERT_EQ(counters.size(), 1u);
    EXPECT_EQ(counters[0]->find("ph")->string, "C");
    EXPECT_DOUBLE_EQ(
        counters[0]->find("args")->find("value")->number, 800.0);

    // Thread metadata is present for the recording thread.
    auto metadata = eventsNamed(document, "thread_name");
    ASSERT_GE(metadata.size(), 1u);
}

TEST_F(TelemetryTest, ParallelWorkersRegisterNamedBuffers)
{
    // Respawning the pool re-registers worker threads by name even
    // after a tracer reset (worker count change forces a respawn).
    setParallelThreads(3);
    parallelFor(0, 64, 1, [](std::size_t) {});
    // Registration happens at worker-thread entry, which may lag the
    // region that spawned the pool; poll briefly.
    bool found = false;
    for (int attempt = 0; attempt < 200 && !found; ++attempt) {
        for (const telemetry::ThreadBuffer *buffer :
             Tracer::global().buffers()) {
            if (buffer->threadName().rfind("rtr-worker-", 0) == 0)
                found = true;
        }
        if (!found)
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(found);
    setParallelThreads(1);
}

// ---------------------------------------------------------------------------
// Hardware counters: must degrade (skip, not fail) wherever
// perf_event_open is unavailable.
// ---------------------------------------------------------------------------

TEST(PerfCounters, DeniedSyscallDegradesGracefully)
{
    // RTR_NO_PERF forces the unsupported path deterministically (the
    // same path a denying container takes via EACCES).
    ::setenv("RTR_NO_PERF", "1", 1);
    telemetry::PerfCounterGroup group;
    EXPECT_FALSE(group.open());
    EXPECT_FALSE(group.supported());
    EXPECT_FALSE(group.unsupportedReason().empty());
    // Every method is inert, not fatal.
    group.reset();
    group.enable();
    group.disable();
    telemetry::PerfSample sample = group.read();
    for (std::size_t i = 0; i < telemetry::kPerfCounterCount; ++i)
        EXPECT_FALSE(
            sample.has(static_cast<telemetry::PerfCounter>(i)));
    EXPECT_FALSE(sample.ipc().has_value());
    EXPECT_FALSE(sample.l1dMissRatio().has_value());
    EXPECT_FALSE(
        sample.mpki(telemetry::PerfCounter::LlcMisses).has_value());
    // ROI arming with an unsupported group is a no-op, not a crash.
    telemetry::armRoiCounters(&group);
    {
        ScopedRoi roi;
    }
    telemetry::armRoiCounters(nullptr);
    ::unsetenv("RTR_NO_PERF");
}

TEST(PerfCounters, CountsRoiWorkWhereSupported)
{
    telemetry::PerfCounterGroup group;
    if (!group.open())
        GTEST_SKIP() << "perf_event_open unavailable: "
                     << group.unsupportedReason();

    telemetry::armRoiCounters(&group);
    double sink = 0.0;
    {
        ScopedRoi roi;
        for (int i = 0; i < 2000000; ++i)
            sink += static_cast<double>(i) * 1e-9;
    }
    telemetry::armRoiCounters(nullptr);
    EXPECT_GT(sink, 0.0);

    telemetry::PerfSample sample = group.read();
    ASSERT_TRUE(sample.has(telemetry::PerfCounter::Cycles));
    EXPECT_GT(sample.get(telemetry::PerfCounter::Cycles), 0.0);
    if (sample.has(telemetry::PerfCounter::Instructions)) {
        // The loop retires well over a million instructions.
        EXPECT_GT(sample.get(telemetry::PerfCounter::Instructions),
                  1e6);
        ASSERT_TRUE(sample.ipc().has_value());
        EXPECT_GT(*sample.ipc(), 0.0);
    }
}

// ---------------------------------------------------------------------------
// Harness satellites: strict warmup parsing and the shared JsonWriter.
// ---------------------------------------------------------------------------

TEST(WarmupRuns, StrictParsingFallsBackToDefault)
{
    ::unsetenv("RTR_BENCH_WARMUP");
    EXPECT_EQ(bench::warmupRuns(), 1);

    ::setenv("RTR_BENCH_WARMUP", "0", 1);
    EXPECT_EQ(bench::warmupRuns(), 0);
    ::setenv("RTR_BENCH_WARMUP", "3", 1);
    EXPECT_EQ(bench::warmupRuns(), 3);

    // Garbage must not silently disable warmup (atoi would return 0).
    ::setenv("RTR_BENCH_WARMUP", "abc", 1);
    EXPECT_EQ(bench::warmupRuns(), 1);
    ::setenv("RTR_BENCH_WARMUP", "2x", 1);
    EXPECT_EQ(bench::warmupRuns(), 1);
    ::setenv("RTR_BENCH_WARMUP", "", 1);
    EXPECT_EQ(bench::warmupRuns(), 1);
    ::setenv("RTR_BENCH_WARMUP", "-4", 1);
    EXPECT_EQ(bench::warmupRuns(), 1);
    ::setenv("RTR_BENCH_WARMUP", "99999999999999999999", 1);
    EXPECT_EQ(bench::warmupRuns(), 1);

    ::unsetenv("RTR_BENCH_WARMUP");
}

TEST(JsonWriter, EmitsParseableNestedDocument)
{
    std::ostringstream out;
    bench::JsonWriter json(out);
    json.beginObject();
    json.field("name", "bench \"quoted\"");
    json.field("count", 42);
    json.field("ratio", 0.25);
    json.field("bad", std::numeric_limits<double>::quiet_NaN());
    json.field("ok", true);
    json.beginObject("nested");
    json.field("inner", 1.5);
    json.endObject();
    json.beginArray("rows");
    json.beginObject();
    json.field("kernel", "pfl");
    json.endObject();
    json.beginObject();
    json.field("kernel", "mpc");
    json.endObject();
    json.endArray();
    json.beginArray("empty");
    json.endArray();
    json.endObject();

    JsonParser parser(out.str());
    JsonValue document = parser.parse();
    ASSERT_TRUE(parser.ok()) << out.str();
    EXPECT_EQ(document.find("name")->string, "bench \"quoted\"");
    EXPECT_DOUBLE_EQ(document.find("count")->number, 42.0);
    EXPECT_DOUBLE_EQ(document.find("ratio")->number, 0.25);
    EXPECT_EQ(document.find("bad")->kind, JsonValue::Kind::Null);
    EXPECT_TRUE(document.find("ok")->boolean);
    EXPECT_DOUBLE_EQ(document.find("nested")->find("inner")->number,
                     1.5);
    ASSERT_EQ(document.find("rows")->items.size(), 2u);
    EXPECT_EQ(document.find("rows")->items[1].find("kernel")->string,
              "mpc");
    EXPECT_EQ(document.find("empty")->items.size(), 0u);
}

} // namespace
} // namespace rtr

/**
 * @file
 * Tests for the Fig. 21 baseline: the educational-style A* must be
 * functionally identical to the production planner (same optimal
 * costs), only slower.
 */

#include <gtest/gtest.h>

#include "grid/map_gen.h"
#include "search/grid_planner2d.h"
#include "search/naive_astar.h"
#include "util/rng.h"

namespace rtr {
namespace {

TEST(NaiveAStar, SolvesPRobMap)
{
    OccupancyGrid2D map = makePRobMap();
    Cell2 start = map.worldToCell({10.0, 10.0});
    Cell2 goal = map.worldToCell({50.0, 50.0});
    baseline::NaivePlan plan = baseline::naiveAStar(map, start, goal);
    ASSERT_TRUE(plan.found);
    EXPECT_EQ(plan.path.front(), start);
    EXPECT_EQ(plan.path.back(), goal);
    EXPECT_GT(plan.expanded, 0u);
}

TEST(NaiveAStar, RejectsBlockedEndpoints)
{
    OccupancyGrid2D map(8, 8, 1.0);
    map.setOccupied(4, 4);
    EXPECT_FALSE(baseline::naiveAStar(map, {4, 4}, {1, 1}).found);
    EXPECT_FALSE(baseline::naiveAStar(map, {1, 1}, {4, 4}).found);
}

TEST(NaiveAStar, ReportsFailureWhenWalledOff)
{
    OccupancyGrid2D map(12, 12, 1.0);
    for (int y = 0; y < 12; ++y)
        map.setOccupied(6, y);
    EXPECT_FALSE(baseline::naiveAStar(map, {2, 6}, {10, 6}).found);
}

/** Property: same optimal costs as the production planner. */
class NaiveVsProduction : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(NaiveVsProduction, EqualOptimalCosts)
{
    OccupancyGrid2D map =
        makeRandomObstacleMap(32, 32, 0.15, GetParam());
    GridPlanner2D planner(map);
    Rng rng(GetParam() * 3 + 1);
    for (int trial = 0; trial < 3; ++trial) {
        Cell2 start{static_cast<int>(rng.intRange(1, 30)),
                    static_cast<int>(rng.intRange(1, 30))};
        Cell2 goal{static_cast<int>(rng.intRange(1, 30)),
                   static_cast<int>(rng.intRange(1, 30))};
        if (map.occupied(start.x, start.y) ||
            map.occupied(goal.x, goal.y))
            continue;

        GridPlan2D fast = planner.plan(start, goal);
        baseline::NaivePlan slow =
            baseline::naiveAStar(map, start, goal);
        ASSERT_EQ(fast.found, slow.found);
        if (fast.found)
            EXPECT_NEAR(fast.cost, slow.cost, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NaiveVsProduction,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(NaiveAStar, PathIsEightConnectedAndFree)
{
    OccupancyGrid2D map = makeRandomObstacleMap(24, 24, 0.1, 9);
    Cell2 start{1, 1}, goal{22, 22};
    while (map.occupied(start.x, start.y))
        ++start.x;
    while (map.occupied(goal.x, goal.y))
        --goal.x;
    baseline::NaivePlan plan = baseline::naiveAStar(map, start, goal);
    ASSERT_TRUE(plan.found);
    for (std::size_t i = 0; i + 1 < plan.path.size(); ++i) {
        EXPECT_LE(std::abs(plan.path[i + 1].x - plan.path[i].x), 1);
        EXPECT_LE(std::abs(plan.path[i + 1].y - plan.path[i].y), 1);
        EXPECT_FALSE(map.occupied(plan.path[i].x, plan.path[i].y));
    }
}

} // namespace
} // namespace rtr

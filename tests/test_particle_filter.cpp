/**
 * @file
 * Tests for particle filter localization.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "geom/angle.h"
#include "grid/map_gen.h"
#include "grid/raycast.h"
#include "perception/particle_filter.h"
#include "util/rng.h"

namespace rtr {
namespace {

TEST(Odometry, ExactRoundTrip)
{
    Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        Pose2 from{rng.uniform(-5, 5), rng.uniform(-5, 5),
                   rng.uniform(-kPi, kPi)};
        Pose2 to{from.x + rng.uniform(-1, 1), from.y + rng.uniform(-1, 1),
                 rng.uniform(-kPi, kPi)};
        OdometryReading odom = odometryBetween(from, to);
        // Re-applying the decomposition recovers the target pose.
        double heading = from.theta + odom.rot1;
        Pose2 replay{from.x + odom.trans * std::cos(heading),
                     from.y + odom.trans * std::sin(heading),
                     normalizeAngle(heading + odom.rot2)};
        EXPECT_NEAR(replay.x, to.x, 1e-9);
        EXPECT_NEAR(replay.y, to.y, 1e-9);
        EXPECT_NEAR(angleDiff(replay.theta, to.theta), 0.0, 1e-9);
    }
}

TEST(Odometry, PureRotation)
{
    Pose2 from{1, 1, 0.0};
    Pose2 to{1, 1, 1.0};
    OdometryReading odom = odometryBetween(from, to);
    EXPECT_NEAR(odom.trans, 0.0, 1e-12);
    EXPECT_NEAR(odom.rot1 + odom.rot2, 1.0, 1e-9);
}

TEST(SimulatedScan, MatchesRaycastWithoutNoise)
{
    OccupancyGrid2D map = makeIndoorMap(100, 60, 0.25, 2);
    Pose2 pose{map.origin().x + 12.0, map.origin().y + 7.5, 0.3};
    Rng rng(3);
    LaserScan scan = simulateScan(map, pose, 30, 10.0, 0.0, rng);
    ASSERT_EQ(scan.ranges.size(), 30u);
    double beam_step = scan.fov / 30;
    for (int b = 0; b < 30; ++b) {
        double angle = pose.theta + scan.start_angle + b * beam_step;
        double expected = castRay(map, pose.position(), angle, 10.0);
        EXPECT_NEAR(scan.ranges[static_cast<std::size_t>(b)], expected,
                    1e-9);
    }
}

class ParticleFilterTest : public ::testing::Test
{
  protected:
    ParticleFilterTest() : map_(makeIndoorMap(160, 100, 0.25, 4)) {}

    OccupancyGrid2D map_;
};

TEST_F(ParticleFilterTest, UniformInitCoversFreeSpace)
{
    ParticleFilter filter(map_, 500);
    Rng rng(1);
    filter.initializeUniform(rng);
    for (const Particle &p : filter.particles()) {
        EXPECT_FALSE(map_.occupiedWorld(p.pose.position()));
        EXPECT_NEAR(p.weight, 1.0 / 500.0, 1e-12);
    }
    EXPECT_GT(filter.spread(), 3.0);
}

TEST_F(ParticleFilterTest, RegionInitRespectsRadiusAndHeading)
{
    ParticleFilter filter(map_, 300);
    Rng rng(2);
    Pose2 guess{20.0, 12.5, 0.5};
    filter.initializeRegion(guess, 3.0, 0.2, rng);
    for (const Particle &p : filter.particles()) {
        EXPECT_LE(p.pose.position().distanceTo(guess.position()),
                  3.0 + 1e-9);
        EXPECT_LE(std::abs(angleDiff(p.pose.theta, guess.theta)),
                  0.2 + 1e-9);
    }
}

TEST_F(ParticleFilterTest, ResamplePreservesCountAndNormalizes)
{
    ParticleFilter filter(map_, 200);
    Rng rng(3);
    filter.initializeUniform(rng);
    filter.resample(rng);
    EXPECT_EQ(filter.particles().size(), 200u);
    double total = 0.0;
    for (const Particle &p : filter.particles())
        total += p.weight;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(ParticleFilterTest, MeasurementSharpensAroundTruth)
{
    // Particles spread around the truth; one scan should shift the
    // estimate towards it.
    Pose2 truth{20.0, 12.5, 0.0};
    ASSERT_FALSE(map_.occupiedWorld(truth.position()));

    ParticleFilter filter(map_, 800);
    filter.setRandomInjection(0.0);
    Rng rng(4);
    filter.initializeRegion(truth, 2.5, 0.4, rng);
    double spread_before = filter.spread();

    // Several identical observations of a static robot concentrate the
    // cloud (tempering makes a single update deliberately gentle).
    Rng scan_rng(5);
    for (int i = 0; i < 4; ++i) {
        LaserScan scan =
            simulateScan(map_, truth, 60, 10.0, 0.02, scan_rng);
        filter.measurementUpdate(scan);
        filter.resample(rng);
    }

    EXPECT_LT(filter.spread(), spread_before);
    Pose2 estimate = filter.estimate();
    EXPECT_LT(estimate.position().distanceTo(truth.position()), 1.0);
}

TEST_F(ParticleFilterTest, TrackingConvergesOverTrajectory)
{
    Rng world_rng(6);
    // Straight drive along the central corridor.
    std::vector<Pose2> truth;
    Pose2 pose{map_.origin().x + 6.0,
               map_.origin().y + map_.worldHeight() / 2.0, 0.0};
    for (int t = 0; t < 30; ++t) {
        truth.push_back(pose);
        Pose2 next{pose.x + 0.3, pose.y, 0.0};
        if (!map_.occupiedWorld(next.position()))
            pose = next;
    }

    ParticleFilter filter(map_, 600);
    Rng rng(7);
    filter.initializeGaussian(truth.front(), 0.5, 0.2, rng);
    for (std::size_t t = 0; t < truth.size(); ++t) {
        if (t > 0)
            filter.motionUpdate(odometryBetween(truth[t - 1], truth[t]),
                                rng);
        LaserScan scan =
            simulateScan(map_, truth[t], 40, 10.0, 0.05, world_rng);
        filter.measurementUpdate(scan);
        filter.resample(rng);
    }
    Pose2 estimate = filter.estimate();
    EXPECT_LT(estimate.position().distanceTo(truth.back().position()),
              0.6);
    EXPECT_GT(filter.raysCast(), 600u * 40u * 20u);
}

TEST_F(ParticleFilterTest, ProfilerSeparatesRaycastAndWeight)
{
    ParticleFilter filter(map_, 100);
    Rng rng(8);
    filter.initializeUniform(rng);
    PhaseProfiler profiler;
    LaserScan scan = simulateScan(
        map_, Pose2{15.0, 12.5, 0.0}, 30, 10.0, 0.0, rng);
    filter.measurementUpdate(scan, &profiler);
    EXPECT_GT(profiler.phaseNs("raycast"), 0);
    EXPECT_GT(profiler.phaseNs("weight"), 0);
    // Ray-casting runs as one batched pass over all particles, so each
    // measurement update enters the phase exactly once.
    EXPECT_EQ(profiler.phaseCount("raycast"), 1);
    EXPECT_EQ(profiler.phaseCount("weight"), 1);
}

TEST_F(ParticleFilterTest, MotionUpdateMovesParticles)
{
    ParticleFilter filter(map_, 50);
    Rng rng(9);
    filter.initializeGaussian(Pose2{15.0, 12.5, 0.0}, 0.1, 0.05, rng);
    Pose2 before = filter.estimate();
    OdometryReading odom;
    odom.trans = 1.0;
    filter.motionUpdate(odom, rng);
    Pose2 after = filter.estimate();
    EXPECT_NEAR(after.x - before.x, 1.0, 0.15);
    EXPECT_NEAR(after.y - before.y, 0.0, 0.15);
}

} // namespace
} // namespace rtr

/**
 * @file
 * Tests for the sampling-based planners: RRT, RRT*, shortcut
 * post-processing, PRM.
 */

#include <gtest/gtest.h>

#include <memory>

#include "arm/cspace.h"
#include "arm/workspace.h"
#include "geom/angle.h"
#include "plan/prm.h"
#include "plan/rrt.h"
#include "plan/rrt_star.h"
#include "plan/shortcut.h"
#include "util/rng.h"

namespace rtr {
namespace {

/** Shared fixture: 4-DoF arm in a cluttered workspace. */
class PlannersTest : public ::testing::Test
{
  protected:
    PlannersTest()
        : arm_(PlanarArm::uniform({0.25, 0.0}, 4, 0.45)),
          workspace_(makeMapC()),
          space_(4, -kPi, kPi),
          checker_(arm_, workspace_)
    {
        // Deterministic well-separated free endpoints.
        Rng rng(77);
        start_ = sampleFree(rng);
        do {
            goal_ = sampleFree(rng);
        } while (ConfigSpace::distance(start_, goal_) < 1.2);
    }

    ArmConfig
    sampleFree(Rng &rng)
    {
        while (true) {
            ArmConfig q = space_.sample(rng);
            if (!checker_.configCollides(q))
                return q;
        }
    }

    /** Assert a waypoint path is collision-free and connects A to B. */
    void
    checkPath(const std::vector<ArmConfig> &path, const ArmConfig &a,
              const ArmConfig &b)
    {
        ASSERT_GE(path.size(), 2u);
        EXPECT_EQ(path.front(), a);
        EXPECT_EQ(path.back(), b);
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            EXPECT_FALSE(
                checker_.motionCollides(path[i], path[i + 1], 0.02))
                << "segment " << i << " collides";
        }
    }

    PlanarArm arm_;
    Workspace workspace_;
    ConfigSpace space_;
    ArmCollisionChecker checker_;
    ArmConfig start_, goal_;
};

TEST_F(PlannersTest, RrtFindsValidPath)
{
    RrtPlanner planner(space_, checker_, {});
    Rng rng(1);
    MotionPlan plan = planner.plan(start_, goal_, rng);
    ASSERT_TRUE(plan.found);
    checkPath(plan.path, start_, goal_);
    EXPECT_GT(plan.samples_drawn, 0u);
    EXPECT_GT(plan.collision_checks, 0u);
    EXPECT_GE(plan.cost,
              ConfigSpace::distance(start_, goal_) - 1e-9);
}

TEST_F(PlannersTest, RrtDeterministicGivenSeed)
{
    RrtPlanner planner(space_, checker_, {});
    Rng rng_a(9), rng_b(9);
    MotionPlan a = planner.plan(start_, goal_, rng_a);
    MotionPlan b = planner.plan(start_, goal_, rng_b);
    ASSERT_EQ(a.found, b.found);
    EXPECT_EQ(a.samples_drawn, b.samples_drawn);
    EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST_F(PlannersTest, RrtBruteForceNnGivesSameTree)
{
    RrtConfig with_tree;
    RrtConfig brute;
    brute.use_kdtree = false;
    RrtPlanner planner_a(space_, checker_, with_tree);
    RrtPlanner planner_b(space_, checker_, brute);
    Rng rng_a(4), rng_b(4);
    MotionPlan a = planner_a.plan(start_, goal_, rng_a);
    MotionPlan b = planner_b.plan(start_, goal_, rng_b);
    // Identical NN answers => identical trees and plans.
    ASSERT_EQ(a.found, b.found);
    EXPECT_EQ(a.tree_size, b.tree_size);
    EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST_F(PlannersTest, RrtFailsWhenStartColliding)
{
    RrtPlanner planner(space_, checker_, {});
    Rng rng(2);
    ArmConfig colliding(4, -kPi / 2.0);  // straight down, out of bounds
    MotionPlan plan = planner.plan(colliding, goal_, rng);
    EXPECT_FALSE(plan.found);
}

TEST_F(PlannersTest, RrtStarValidAndNotWorseOverSeeds)
{
    RrtConfig rrt_config;
    RrtStarConfig star_config;
    star_config.max_samples = 2500;
    star_config.refine_factor = 1e18;  // full refinement budget
    RrtPlanner rrt(space_, checker_, rrt_config);
    RrtStarPlanner rrt_star(space_, checker_, star_config);

    double rrt_total = 0.0, star_total = 0.0;
    int both_found = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Rng rng_a(seed), rng_b(seed);
        MotionPlan plan_a = rrt.plan(start_, goal_, rng_a);
        RrtStarPlan plan_b = rrt_star.plan(start_, goal_, rng_b);
        if (plan_a.found && plan_b.found) {
            checkPath(plan_b.path, start_, goal_);
            rrt_total += plan_a.cost;
            star_total += plan_b.cost;
            ++both_found;
        }
    }
    ASSERT_GE(both_found, 3);
    // RRT* paths are shorter on average (the paper's 1.6x claim; we
    // only require improvement here).
    EXPECT_LT(star_total, rrt_total);
}

TEST_F(PlannersTest, RrtStarReportsRewires)
{
    RrtStarConfig config;
    config.max_samples = 3000;
    config.rewire_radius = 1.0;
    config.refine_factor = 1e18;
    RrtStarPlanner planner(space_, checker_, config);
    Rng rng(3);
    RrtStarPlan plan = planner.plan(start_, goal_, rng);
    ASSERT_TRUE(plan.found);
    EXPECT_GT(plan.rewires, 0u);
}

TEST_F(PlannersTest, ShortcutNeverIncreasesCostAndStaysValid)
{
    RrtPlanner planner(space_, checker_, {});
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Rng rng(seed);
        MotionPlan plan = planner.plan(start_, goal_, rng);
        if (!plan.found)
            continue;
        double before = plan.cost;
        ShortcutStats stats =
            shortcutPath(plan.path, checker_, {}, rng);
        EXPECT_DOUBLE_EQ(stats.cost_before, before);
        EXPECT_LE(stats.cost_after, before + 1e-9);
        checkPath(plan.path, start_, goal_);
    }
}

TEST_F(PlannersTest, ShortcutOnTwoPointPathIsNoop)
{
    std::vector<ArmConfig> path{start_, goal_};
    Rng rng(1);
    ShortcutStats stats = shortcutPath(path, checker_, {}, rng);
    EXPECT_EQ(stats.shortcuts_applied, 0u);
    EXPECT_EQ(path.size(), 2u);
}

TEST_F(PlannersTest, PrmBuildAndQuery)
{
    PrmConfig config;
    config.n_samples = 800;
    PrmPlanner planner(space_, checker_, config);
    Rng rng(5);
    PrmBuildStats build = planner.build(rng);
    EXPECT_EQ(build.nodes, 800u);
    EXPECT_GT(build.edges, 400u);
    EXPECT_GE(build.samples_drawn, build.nodes);

    MotionPlan plan = planner.query(start_, goal_);
    ASSERT_TRUE(plan.found);
    checkPath(plan.path, start_, goal_);
    EXPECT_GT(planner.lastHeuristicEvals(), 0u);
}

TEST_F(PlannersTest, PrmQueriesAreRepeatable)
{
    PrmConfig config;
    config.n_samples = 600;
    PrmPlanner planner(space_, checker_, config);
    Rng rng(6);
    planner.build(rng);
    MotionPlan a = planner.query(start_, goal_);
    MotionPlan b = planner.query(start_, goal_);
    EXPECT_EQ(a.found, b.found);
    if (a.found)
        EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST(PathCost, SumsSegmentLengths)
{
    std::vector<ArmConfig> path{{0.0, 0.0}, {3.0, 4.0}, {3.0, 7.0}};
    EXPECT_DOUBLE_EQ(pathCost(path), 8.0);
    EXPECT_DOUBLE_EQ(pathCost({}), 0.0);
    EXPECT_DOUBLE_EQ(pathCost({{1.0, 1.0}}), 0.0);
}

} // namespace
} // namespace rtr

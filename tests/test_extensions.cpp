/**
 * @file
 * Tests for the optional/extension features: informed RRT* sampling,
 * adaptive (ESS-based) resampling, report serialization, and
 * fuzz-style cross-checks of the heap against the standard library.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <queue>
#include <sstream>

#include "arm/cspace.h"
#include "arm/workspace.h"
#include "geom/angle.h"
#include "grid/map_gen.h"
#include "kernels/registry.h"
#include "perception/particle_filter.h"
#include "plan/rrt_star.h"
#include "search/min_heap.h"
#include "util/rng.h"

namespace rtr {
namespace {

TEST(InformedRrtStar, StillFindsValidPlansAndHelpsQuality)
{
    PlanarArm arm = PlanarArm::uniform({0.25, 0.0}, 4, 0.45);
    Workspace workspace = makeMapC();
    ConfigSpace space(4, -kPi, kPi);
    ArmCollisionChecker checker(arm, workspace);

    Rng endpoint_rng(5);
    auto sample_free = [&]() -> ArmConfig {
        while (true) {
            ArmConfig q = space.sample(endpoint_rng);
            if (!checker.configCollides(q))
                return q;
        }
    };
    ArmConfig start = sample_free();
    ArmConfig goal;
    do {
        goal = sample_free();
    } while (ConfigSpace::distance(start, goal) < 1.2);

    RrtStarConfig plain;
    plain.max_samples = 2000;
    plain.refine_factor = 1e18;
    RrtStarConfig informed = plain;
    informed.informed_sampling = true;

    double plain_total = 0.0, informed_total = 0.0;
    int both = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Rng rng_a(seed), rng_b(seed);
        RrtStarPlan a = RrtStarPlanner(space, checker, plain)
                            .plan(start, goal, rng_a);
        RrtStarPlan b = RrtStarPlanner(space, checker, informed)
                            .plan(start, goal, rng_b);
        if (!a.found || !b.found)
            continue;
        ++both;
        plain_total += a.cost;
        informed_total += b.cost;
        // Informed plans remain valid.
        for (std::size_t i = 0; i + 1 < b.path.size(); ++i)
            EXPECT_FALSE(
                checker.motionCollides(b.path[i], b.path[i + 1], 0.05));
    }
    ASSERT_GE(both, 3);
    // Focusing samples can only help (or tie) on average.
    EXPECT_LE(informed_total, plain_total * 1.05);
}

TEST(AdaptiveResampling, EssDetectsDegeneracy)
{
    OccupancyGrid2D map = makeIndoorMap(80, 60, 0.25, 1);
    ParticleFilter filter(map, 100);
    Rng rng(2);
    filter.initializeUniform(rng);
    // Fresh uniform weights: ESS == n.
    EXPECT_NEAR(filter.effectiveSampleSize(), 100.0, 1e-6);
    EXPECT_FALSE(filter.resampleIfNeeded(rng, 0.5));

    // After a measurement the weights skew and ESS drops.
    Pose2 pose{8.0, 7.5, 0.0};
    LaserScan scan = simulateScan(map, pose, 40, 10.0, 0.0, rng);
    filter.measurementUpdate(scan);
    double ess = filter.effectiveSampleSize();
    EXPECT_LT(ess, 100.0);
    if (ess < 50.0) {
        EXPECT_TRUE(filter.resampleIfNeeded(rng, 0.5));
        EXPECT_NEAR(filter.effectiveSampleSize(), 100.0, 1e-6);
    }
}

TEST(ReportFile, RoundTripsSections)
{
    KernelReport report =
        makeKernel("dmp")->runWithDefaults({"--rollouts", "5"});
    std::string path = ::testing::TempDir() + "/dmp_report.csv";
    writeReportFile(report, path);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(contents.find("section,key,value"), std::string::npos);
    EXPECT_NE(contents.find("run,success,1"), std::string::npos);
    EXPECT_NE(contents.find("metric,tracking_error_m"),
              std::string::npos);
    EXPECT_NE(contents.find("series,traj_x"), std::string::npos);
    EXPECT_NE(contents.find("phase_ns,rollout"), std::string::npos);
    std::remove(path.c_str());
}

TEST(MinHeapFuzz, MatchesStdPriorityQueue)
{
    Rng rng(3);
    MinHeap<std::uint32_t> ours;
    using Entry = std::pair<double, std::uint32_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>>
        reference;

    for (int op = 0; op < 20000; ++op) {
        bool push = reference.empty() || rng.chance(0.55);
        if (push) {
            double key = rng.uniform(0, 1000);
            auto id = static_cast<std::uint32_t>(rng.index(1 << 20));
            ours.push(key, id);
            reference.emplace(key, id);
        } else {
            auto [key, id] = ours.pop();
            ASSERT_DOUBLE_EQ(key, reference.top().first);
            reference.pop();
        }
        ASSERT_EQ(ours.size(), reference.size());
    }
}

TEST(RngEngineFuzz, IndexNeverOutOfRange)
{
    Rng rng(4);
    for (int i = 0; i < 10000; ++i) {
        std::size_t n = 1 + rng.index(50);
        EXPECT_LT(rng.index(n), n);
    }
}

} // namespace
} // namespace rtr

/**
 * @file
 * Tests for EKF-SLAM.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "geom/angle.h"
#include "perception/ekf_slam.h"
#include "util/rng.h"

namespace rtr {
namespace {

TEST(EkfSlam, StartsAtOriginWithNoLandmarks)
{
    EkfSlam slam(4);
    Pose2 pose = slam.robotEstimate();
    EXPECT_DOUBLE_EQ(pose.x, 0.0);
    EXPECT_DOUBLE_EQ(pose.y, 0.0);
    EXPECT_EQ(slam.landmarkCount(), 0);
    EXPECT_FALSE(slam.landmarkKnown(0));
}

TEST(EkfSlam, PredictMovesAlongHeading)
{
    EkfSlam slam(2);
    slam.predict(1.0, 0.0, 1.0);
    Pose2 pose = slam.robotEstimate();
    EXPECT_NEAR(pose.x, 1.0, 1e-9);
    EXPECT_NEAR(pose.y, 0.0, 1e-9);
    // Prediction without measurement grows uncertainty.
    double trace_one = slam.covarianceTrace();
    slam.predict(1.0, 0.0, 1.0);
    EXPECT_GT(slam.covarianceTrace(), trace_one);
}

TEST(EkfSlam, FirstObservationInitializesLandmark)
{
    EkfSlam slam(3);
    RangeBearing obs;
    obs.landmark_id = 1;
    obs.range = 5.0;
    obs.bearing = 0.0;
    slam.update({obs});
    ASSERT_TRUE(slam.landmarkKnown(1));
    Vec2 estimate = slam.landmarkEstimate(1);
    EXPECT_NEAR(estimate.x, 5.0, 0.2);
    EXPECT_NEAR(estimate.y, 0.0, 0.2);
    EXPECT_EQ(slam.landmarkCount(), 1);
}

TEST(EkfSlam, RepeatedObservationTightensEstimate)
{
    EkfSlam slam(1);
    RangeBearing obs;
    obs.landmark_id = 0;
    obs.range = 4.0;
    obs.bearing = 0.5;
    slam.update({obs});
    double trace_after_one = slam.covarianceTrace();
    for (int i = 0; i < 10; ++i)
        slam.update({obs});
    EXPECT_LT(slam.covarianceTrace(), trace_after_one);
}

TEST(EkfSlam, FullRunConvergesToGroundTruth)
{
    const int n_landmarks = 6;
    SlamWorld world = SlamWorld::make(n_landmarks, 3);
    EkfNoise noise;
    EkfSlam slam(n_landmarks, noise);
    Rng rng(4);

    // The filter frame equals the truth frame here: start at the
    // origin facing +x and drive a circle.
    Pose2 truth{0.0, 0.0, 0.0};
    const double v = 1.0, omega = 0.15, dt = 0.1;
    for (int t = 0; t < 500; ++t) {
        double v_noisy = v + rng.normal(0.0, 0.02);
        double w_noisy = omega + rng.normal(0.0, 0.005);
        truth.x += v * dt * std::cos(truth.theta);
        truth.y += v * dt * std::sin(truth.theta);
        truth.theta = normalizeAngle(truth.theta + omega * dt);
        slam.predict(v_noisy, w_noisy, dt);
        slam.update(world.observe(truth, noise, rng));
    }

    Pose2 estimate = slam.robotEstimate();
    EXPECT_LT(estimate.position().distanceTo(truth.position()), 0.5);

    int known = 0;
    for (int id = 0; id < n_landmarks; ++id) {
        if (!slam.landmarkKnown(id))
            continue;
        ++known;
        Vec2 est = slam.landmarkEstimate(id);
        EXPECT_LT(est.distanceTo(
                      world.landmarks[static_cast<std::size_t>(id)]),
                  0.6)
            << "landmark " << id;
    }
    EXPECT_GE(known, n_landmarks - 1);
}

TEST(EkfSlam, CovarianceStaysSymmetricPsd)
{
    SlamWorld world = SlamWorld::make(4, 5);
    EkfNoise noise;
    EkfSlam slam(4, noise);
    Rng rng(6);
    Pose2 truth{0.0, 0.0, 0.0};
    for (int t = 0; t < 50; ++t) {
        truth.x += 0.1;
        slam.predict(1.0, 0.0, 0.1);
        slam.update(world.observe(truth, noise, rng));
    }
    Matrix cov = slam.robotCovariance();
    EXPECT_NEAR(cov(0, 1), cov(1, 0), 1e-9);
    EXPECT_GT(cov(0, 0), 0.0);
    EXPECT_GT(cov(1, 1), 0.0);
    // 2x2 PSD: positive determinant.
    EXPECT_GT(cov(0, 0) * cov(1, 1) - cov(0, 1) * cov(1, 0), -1e-12);
}

TEST(EkfSlam, ProfilerAttributesMatrixOps)
{
    EkfSlam slam(2);
    PhaseProfiler profiler;
    slam.predict(1.0, 0.1, 0.1, &profiler);
    RangeBearing obs;
    obs.landmark_id = 0;
    obs.range = 3.0;
    slam.update({obs}, &profiler);
    EXPECT_GT(profiler.phaseNs("matrix-ops"), 0);
    EXPECT_GE(profiler.phaseCount("matrix-ops"), 3);
}

TEST(SlamWorld, ObservationGeometry)
{
    SlamWorld world;
    world.landmarks = {{3.0, 4.0}};
    world.sensor_range = 100.0;
    EkfNoise no_noise;
    no_noise.range = 0.0;
    no_noise.bearing = 0.0;
    Rng rng(7);
    auto observations =
        world.observe(Pose2{0.0, 0.0, 0.0}, no_noise, rng);
    ASSERT_EQ(observations.size(), 1u);
    EXPECT_NEAR(observations[0].range, 5.0, 1e-12);
    EXPECT_NEAR(observations[0].bearing, std::atan2(4.0, 3.0), 1e-12);
}

TEST(SlamWorld, SensorRangeFilters)
{
    SlamWorld world;
    world.landmarks = {{1.0, 0.0}, {100.0, 0.0}};
    world.sensor_range = 10.0;
    EkfNoise noise;
    Rng rng(8);
    auto observations =
        world.observe(Pose2{0.0, 0.0, 0.0}, noise, rng);
    ASSERT_EQ(observations.size(), 1u);
    EXPECT_EQ(observations[0].landmark_id, 0);
}

} // namespace
} // namespace rtr

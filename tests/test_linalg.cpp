/**
 * @file
 * Unit and property tests for the linalg library: Matrix, LU, Cholesky,
 * and the symmetric eigensolver.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/decomp.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "util/rng.h"

namespace rtr {
namespace {

Matrix
randomMatrix(std::size_t rows, std::size_t cols, Rng &rng)
{
    Matrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = rng.uniform(-1.0, 1.0);
    }
    return m;
}

Matrix
randomSpd(std::size_t n, Rng &rng)
{
    Matrix a = randomMatrix(n, n, rng);
    // A^T A + n I is symmetric positive definite.
    Matrix spd = a.transposed() * a;
    for (std::size_t i = 0; i < n; ++i)
        spd(i, i) += static_cast<double>(n);
    return spd;
}

TEST(Matrix, ConstructionAndAccess)
{
    Matrix m{{1, 2, 3}, {4, 5, 6}};
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
    m(0, 0) = 9.0;
    EXPECT_DOUBLE_EQ(m(0, 0), 9.0);
}

TEST(Matrix, IdentityAndDiagonal)
{
    Matrix id = Matrix::identity(3);
    EXPECT_DOUBLE_EQ(id.trace(), 3.0);
    Matrix d = Matrix::diagonal({1, 2, 3});
    EXPECT_DOUBLE_EQ(d(1, 1), 2.0);
    EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, MultiplicationAgainstKnownResult)
{
    Matrix a{{1, 2}, {3, 4}};
    Matrix b{{5, 6}, {7, 8}};
    Matrix c = a * b;
    EXPECT_TRUE(c.approxEquals(Matrix{{19, 22}, {43, 50}}));
}

TEST(Matrix, MultiplyByIdentityIsNoop)
{
    Rng rng(1);
    Matrix a = randomMatrix(4, 4, rng);
    EXPECT_TRUE((a * Matrix::identity(4)).approxEquals(a));
    EXPECT_TRUE((Matrix::identity(4) * a).approxEquals(a));
}

TEST(Matrix, TransposeInvolution)
{
    Rng rng(2);
    Matrix a = randomMatrix(3, 5, rng);
    EXPECT_TRUE(a.transposed().transposed().approxEquals(a));
    // (AB)^T = B^T A^T
    Matrix b = randomMatrix(5, 2, rng);
    EXPECT_TRUE((a * b).transposed().approxEquals(b.transposed() *
                                                  a.transposed()));
}

TEST(Matrix, BlockRoundTrip)
{
    Matrix m(4, 4);
    Matrix sub{{1, 2}, {3, 4}};
    m.setBlock(1, 2, sub);
    EXPECT_TRUE(m.block(1, 2, 2, 2).approxEquals(sub));
    EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, AddSubScale)
{
    Matrix a{{1, 2}, {3, 4}};
    Matrix b{{4, 3}, {2, 1}};
    EXPECT_TRUE((a + b).approxEquals(Matrix{{5, 5}, {5, 5}}));
    EXPECT_TRUE((a - a).approxEquals(Matrix(2, 2)));
    EXPECT_TRUE((a * 2.0).approxEquals(Matrix{{2, 4}, {6, 8}}));
}

TEST(Matrix, FrobeniusNorm)
{
    Matrix m{{3, 0}, {0, 4}};
    EXPECT_DOUBLE_EQ(m.frobeniusNorm(), 5.0);
}

/** LU inversion property over a range of sizes. */
class LuSizes : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(LuSizes, InverseTimesSelfIsIdentity)
{
    Rng rng(GetParam() * 31 + 1);
    std::size_t n = GetParam();
    Matrix a = randomMatrix(n, n, rng);
    for (std::size_t i = 0; i < n; ++i)
        a(i, i) += 2.0;  // keep it comfortably nonsingular
    Matrix inv = inverse(a);
    EXPECT_TRUE((a * inv).approxEquals(Matrix::identity(n), 1e-8));
    EXPECT_TRUE((inv * a).approxEquals(Matrix::identity(n), 1e-8));
}

TEST_P(LuSizes, SolveMatchesMultiplication)
{
    Rng rng(GetParam() * 17 + 5);
    std::size_t n = GetParam();
    Matrix a = randomMatrix(n, n, rng);
    for (std::size_t i = 0; i < n; ++i)
        a(i, i) += 2.0;
    Matrix x_true = randomMatrix(n, 2, rng);
    Matrix b = a * x_true;
    Matrix x = solve(a, b);
    EXPECT_TRUE(x.approxEquals(x_true, 1e-8));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSizes,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

TEST(Lu, DetectsSingularity)
{
    Matrix singular{{1, 2}, {2, 4}};
    LuDecomposition lu(singular);
    EXPECT_TRUE(lu.singular());
    EXPECT_DOUBLE_EQ(lu.determinant(), 0.0);
}

TEST(Lu, DeterminantKnownValues)
{
    LuDecomposition lu(Matrix{{2, 0}, {0, 3}});
    EXPECT_NEAR(lu.determinant(), 6.0, 1e-12);
    // Permutation-sensitive sign.
    LuDecomposition swapped(Matrix{{0, 1}, {1, 0}});
    EXPECT_NEAR(swapped.determinant(), -1.0, 1e-12);
}

TEST(Lu, DeterminantMultiplicative)
{
    Rng rng(23);
    Matrix a = randomMatrix(4, 4, rng);
    Matrix b = randomMatrix(4, 4, rng);
    double det_a = LuDecomposition(a).determinant();
    double det_b = LuDecomposition(b).determinant();
    double det_ab = LuDecomposition(a * b).determinant();
    EXPECT_NEAR(det_ab, det_a * det_b, 1e-8 * std::abs(det_ab) + 1e-10);
}

/** Cholesky property over sizes. */
class CholeskySizes : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(CholeskySizes, FactorReconstructs)
{
    Rng rng(GetParam() * 7 + 3);
    Matrix spd = randomSpd(GetParam(), rng);
    CholeskyDecomposition chol(spd);
    ASSERT_FALSE(chol.failed());
    const Matrix &l = chol.lower();
    EXPECT_TRUE((l * l.transposed()).approxEquals(spd, 1e-8));
}

TEST_P(CholeskySizes, SolveAgreesWithLu)
{
    Rng rng(GetParam() * 13 + 7);
    Matrix spd = randomSpd(GetParam(), rng);
    Matrix b = randomMatrix(GetParam(), 1, rng);
    CholeskyDecomposition chol(spd);
    ASSERT_FALSE(chol.failed());
    EXPECT_TRUE(chol.solve(b).approxEquals(solve(spd, b), 1e-7));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizes,
                         ::testing::Values(1, 2, 4, 9, 16));

TEST(Cholesky, RejectsIndefinite)
{
    Matrix indefinite{{1, 0}, {0, -1}};
    CholeskyDecomposition chol(indefinite);
    EXPECT_TRUE(chol.failed());
}

TEST(Cholesky, LogDeterminant)
{
    Matrix spd{{4, 0}, {0, 9}};
    CholeskyDecomposition chol(spd);
    ASSERT_FALSE(chol.failed());
    EXPECT_NEAR(chol.logDeterminant(), std::log(36.0), 1e-10);
}

TEST(Eigen, DiagonalMatrixEigenvaluesSorted)
{
    SymmetricEigen eig = symmetricEigen(Matrix::diagonal({1.0, 5.0, 3.0}));
    ASSERT_EQ(eig.values.size(), 3u);
    EXPECT_NEAR(eig.values[0], 5.0, 1e-10);
    EXPECT_NEAR(eig.values[1], 3.0, 1e-10);
    EXPECT_NEAR(eig.values[2], 1.0, 1e-10);
}

TEST(Eigen, ReconstructsMatrix)
{
    Rng rng(31);
    Matrix spd = randomSpd(6, rng);
    SymmetricEigen eig = symmetricEigen(spd);
    Matrix lambda = Matrix::diagonal(eig.values);
    Matrix reconstructed =
        eig.vectors * lambda * eig.vectors.transposed();
    EXPECT_TRUE(reconstructed.approxEquals(spd, 1e-7));
}

TEST(Eigen, VectorsAreOrthonormal)
{
    Rng rng(37);
    Matrix spd = randomSpd(5, rng);
    SymmetricEigen eig = symmetricEigen(spd);
    Matrix should_be_identity = eig.vectors.transposed() * eig.vectors;
    EXPECT_TRUE(should_be_identity.approxEquals(Matrix::identity(5),
                                                1e-8));
}

TEST(Eigen, EigenpairsSatisfyDefinition)
{
    Rng rng(41);
    Matrix spd = randomSpd(4, rng);
    SymmetricEigen eig = symmetricEigen(spd);
    for (std::size_t j = 0; j < 4; ++j) {
        Matrix v = eig.vectors.block(0, j, 4, 1);
        Matrix av = spd * v;
        Matrix lv = v * eig.values[j];
        EXPECT_TRUE(av.approxEquals(lv, 1e-7));
    }
}

} // namespace
} // namespace rtr

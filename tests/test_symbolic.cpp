/**
 * @file
 * Tests for the symbolic planning stack: states, grounding, the
 * planner, and the two domains. Found plans are validated by simulating
 * them action by action.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "symbolic/blocks_world.h"
#include "symbolic/domain.h"
#include "symbolic/firefight.h"
#include "symbolic/planner.h"
#include "symbolic/state.h"

namespace rtr {
namespace {

/** Execute a plan and verify every precondition along the way. */
void
validatePlan(const SymbolicProblem &problem,
             const std::vector<std::string> &plan)
{
    std::vector<GroundAction> actions = groundActions(problem);
    SymbolicState state = problem.initial;
    for (const std::string &step : plan) {
        auto it = std::find_if(actions.begin(), actions.end(),
                               [&](const GroundAction &a) {
                                   return a.name == step;
                               });
        ASSERT_NE(it, actions.end()) << "unknown action " << step;
        ASSERT_TRUE(it->applicable(state))
            << step << " not applicable in " << state.toString();
        state = it->apply(state);
    }
    EXPECT_TRUE(state.containsAll(problem.goal))
        << "plan does not reach the goal; final state "
        << state.toString();
}

TEST(Atom, Formatting)
{
    EXPECT_EQ(makeAtom("On", {"A", "B"}), "On(A,B)");
    EXPECT_EQ(makeAtom("Clear", {"A"}), "Clear(A)");
    EXPECT_EQ(makeAtom("Done", {}), "Done()");
}

TEST(SymbolicState, SetSemantics)
{
    SymbolicState state({"b", "a", "b", "c"});
    EXPECT_EQ(state.atoms().size(), 3u);  // deduplicated
    EXPECT_TRUE(state.contains("a"));
    EXPECT_FALSE(state.contains("d"));
    EXPECT_TRUE(state.containsAll({"a", "c"}));
    EXPECT_FALSE(state.containsAll({"a", "d"}));
    EXPECT_TRUE(state.containsNone({"x", "y"}));
    EXPECT_FALSE(state.containsNone({"x", "b"}));
    EXPECT_EQ(state.countMissing({"a", "d", "e"}), 2u);
}

TEST(SymbolicState, ApplyAddsAndDeletes)
{
    SymbolicState state({"p", "q"});
    SymbolicState next = state.apply({"r"}, {"p"});
    EXPECT_TRUE(next.contains("r"));
    EXPECT_TRUE(next.contains("q"));
    EXPECT_FALSE(next.contains("p"));
    // Original is immutable.
    EXPECT_TRUE(state.contains("p"));
}

TEST(SymbolicState, EqualityAndHash)
{
    SymbolicState a({"x", "y"});
    SymbolicState b({"y", "x"});
    SymbolicState c({"x"});
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_FALSE(a == c);
}

TEST(Grounding, EnumeratesAllBindings)
{
    SymbolicProblem problem;
    problem.symbols = {"A", "B", "C"};
    ActionSchema schema;
    schema.name = "Pick";
    schema.params = {"x", "y"};
    schema.pre_pos = {{"Free", {0}}};
    schema.eff_add = {{"Holding", {0, 1}}};
    problem.schemas.push_back(schema);
    auto actions = groundActions(problem);
    EXPECT_EQ(actions.size(), 9u);  // 3 x 3
}

TEST(Grounding, DistinctConstraintFilters)
{
    SymbolicProblem problem;
    problem.symbols = {"A", "B", "C"};
    ActionSchema schema;
    schema.name = "Swap";
    schema.params = {"x", "y"};
    schema.distinct = {{0, 1}};
    problem.schemas.push_back(schema);
    auto actions = groundActions(problem);
    EXPECT_EQ(actions.size(), 6u);  // 3 x 2
    for (const GroundAction &action : actions)
        EXPECT_EQ(action.name.find("A,A"), std::string::npos);
}

TEST(Grounding, ParamDomainsRestrict)
{
    SymbolicProblem problem;
    problem.symbols = {"A", "B", "C"};
    ActionSchema schema;
    schema.name = "Move";
    schema.params = {"x"};
    schema.param_domains = {{"B"}};
    problem.schemas.push_back(schema);
    auto actions = groundActions(problem);
    ASSERT_EQ(actions.size(), 1u);
    EXPECT_EQ(actions[0].name, "Move(B)");
}

TEST(Grounding, ConstantsSubstituted)
{
    SymbolicProblem problem;
    problem.symbols = {"A"};
    ActionSchema schema;
    schema.name = "Drop";
    schema.params = {"x"};
    schema.constants = {"Table"};
    schema.eff_add = {{"On", {0, ~0}}};
    problem.schemas.push_back(schema);
    auto actions = groundActions(problem);
    ASSERT_EQ(actions.size(), 1u);
    EXPECT_EQ(actions[0].eff_add[0], "On(A,Table)");
}

TEST(GroundAction, ApplicabilityRespectsNegativePreconditions)
{
    GroundAction action;
    action.pre_pos = {"p"};
    action.pre_neg = {"q"};
    EXPECT_TRUE(action.applicable(SymbolicState({"p"})));
    EXPECT_FALSE(action.applicable(SymbolicState({"p", "q"})));
    EXPECT_FALSE(action.applicable(SymbolicState{}));
}

TEST(BlocksWorld, ProblemShape)
{
    SymbolicProblem problem = makeBlocksWorld(4, 1);
    EXPECT_EQ(problem.symbols.size(), 5u);  // 4 blocks + Table
    // Every block sits on something initially.
    int on_atoms = 0;
    for (const Atom &atom : problem.initial.atoms())
        on_atoms += atom.rfind("On(", 0) == 0;
    EXPECT_EQ(on_atoms, 4);
    EXPECT_EQ(problem.goal.size(), 4u);
}

TEST(BlocksWorld, PlannerSolvesAndPlanValidates)
{
    SymbolicProblem problem = makeBlocksWorld(6, 3);
    SymbolicPlanner planner(problem);
    SymbolicPlanResult result = planner.plan();
    ASSERT_TRUE(result.found);
    EXPECT_EQ(result.plan.size(),
              static_cast<std::size_t>(result.cost));
    validatePlan(problem, result.plan);
    EXPECT_GT(result.avg_applicable_actions, 1.0);
}

TEST(BlocksWorld, GoalCountHeuristicAlsoSolves)
{
    SymbolicProblem problem = makeBlocksWorld(4, 5);
    SymbolicPlannerConfig config;
    config.heuristic = SymbolicPlannerConfig::Heuristic::GoalCount;
    SymbolicPlanner planner(problem, config);
    SymbolicPlanResult result = planner.plan();
    ASSERT_TRUE(result.found);
    validatePlan(problem, result.plan);
}

TEST(BlocksWorld, DifferentSeedsDifferentInstances)
{
    SymbolicProblem a = makeBlocksWorld(5, 1);
    SymbolicProblem b = makeBlocksWorld(5, 2);
    EXPECT_FALSE(a.initial == b.initial && a.goal == b.goal);
}

TEST(Firefight, PlannerSolvesAndPlanValidates)
{
    SymbolicProblem problem = makeFirefight(4);
    SymbolicPlanner planner(problem);
    SymbolicPlanResult result = planner.plan();
    ASSERT_TRUE(result.found);
    validatePlan(problem, result.plan);
    // The fire needs three pours; each pour needs a fill first.
    int pours = 0, fills = 0;
    for (const std::string &action : result.plan) {
        pours += action.rfind("PourWater", 0) == 0;
        fills += action.rfind("FillWater", 0) == 0;
    }
    EXPECT_EQ(pours, 3);
    EXPECT_EQ(fills, 3);
}

TEST(Firefight, MoreBranchingThanBlocksWorld)
{
    // The paper's sym-fext parallelism claim: more valid actions per
    // node than sym-blkw (~3.2x at the default configurations).
    SymbolicProblem blkw = makeBlocksWorld(6, 1);
    SymbolicProblem fext = makeFirefight(12);
    SymbolicPlanResult blkw_result = SymbolicPlanner(blkw).plan();
    SymbolicPlanResult fext_result = SymbolicPlanner(fext).plan();
    ASSERT_TRUE(blkw_result.found);
    ASSERT_TRUE(fext_result.found);
    EXPECT_GT(fext_result.avg_applicable_actions,
              2.0 * blkw_result.avg_applicable_actions);
}

TEST(Planner, ExpansionCapReturnsNotFound)
{
    SymbolicProblem problem = makeBlocksWorld(7, 2);
    SymbolicPlannerConfig config;
    config.max_expansions = 2;
    config.heuristic = SymbolicPlannerConfig::Heuristic::GoalCount;
    SymbolicPlanner planner(problem, config);
    SymbolicPlanResult result = planner.plan();
    EXPECT_FALSE(result.found);
}

TEST(Planner, TrivialGoalYieldsEmptyPlan)
{
    SymbolicProblem problem = makeBlocksWorld(3, 4);
    problem.goal = {problem.initial.atoms().front()};
    SymbolicPlanner planner(problem);
    SymbolicPlanResult result = planner.plan();
    ASSERT_TRUE(result.found);
    EXPECT_TRUE(result.plan.empty());
    EXPECT_DOUBLE_EQ(result.cost, 0.0);
}

} // namespace
} // namespace rtr

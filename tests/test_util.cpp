/**
 * @file
 * Unit tests for the util library: argument parsing, profiler,
 * statistics, table rendering, RNG determinism.
 */

#include <gtest/gtest.h>

#include <thread>

#include "util/args.h"
#include "util/profiler.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace rtr {
namespace {

TEST(ArgParser, DefaultsSurviveWithoutArguments)
{
    ArgParser parser("tool");
    parser.addOption("samples", "100", "sample count");
    parser.addFlag("verbose", "chatty output");
    parser.parse(std::vector<std::string>{});
    EXPECT_EQ(parser.get("samples"), "100");
    EXPECT_EQ(parser.getInt("samples"), 100);
    EXPECT_FALSE(parser.getFlag("verbose"));
    EXPECT_FALSE(parser.isSet("samples"));
}

TEST(ArgParser, ParsesSeparateAndInlineValues)
{
    ArgParser parser("tool");
    parser.addOption("epsilon", "1.0", "weight");
    parser.addOption("map", "C", "map name");
    parser.parse({"--epsilon", "2.5", "--map=F"});
    EXPECT_DOUBLE_EQ(parser.getDouble("epsilon"), 2.5);
    EXPECT_EQ(parser.get("map"), "F");
    EXPECT_TRUE(parser.isSet("epsilon"));
}

TEST(ArgParser, ParsesFlags)
{
    ArgParser parser("tool");
    parser.addFlag("global", "use global init");
    parser.parse({"--global"});
    EXPECT_TRUE(parser.getFlag("global"));
}

TEST(ArgParser, UsageMentionsEveryOption)
{
    ArgParser parser("rrt.out");
    parser.addOption("bias", "0.05", "Random number generation bias");
    parser.addOption("samples", "1000", "Maximum samples");
    parser.addFlag("quiet", "No output");
    std::string usage = parser.usage();
    EXPECT_NE(usage.find("--bias"), std::string::npos);
    EXPECT_NE(usage.find("--samples"), std::string::npos);
    EXPECT_NE(usage.find("--quiet"), std::string::npos);
    EXPECT_NE(usage.find("--help"), std::string::npos);
    EXPECT_NE(usage.find("USAGE"), std::string::npos);
}

TEST(ArgParser, NegativeNumbersParse)
{
    ArgParser parser("tool");
    parser.addOption("offset", "0", "signed value");
    parser.parse({"--offset", "-42"});
    EXPECT_EQ(parser.getInt("offset"), -42);
}

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 50; ++i)
        same += a.uniform() == b.uniform();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformRespectsRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniform(-3.0, 5.0);
        EXPECT_GE(v, -3.0);
        EXPECT_LT(v, 5.0);
    }
}

TEST(Rng, IntRangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.intRange(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalHasRequestedMoments)
{
    Rng rng(11);
    RunningStat stat;
    for (int i = 0; i < 20000; ++i)
        stat.add(rng.normal(5.0, 2.0));
    EXPECT_NEAR(stat.mean(), 5.0, 0.1);
    EXPECT_NEAR(stat.stddev(), 2.0, 0.1);
}

TEST(Profiler, AccumulatesPhases)
{
    PhaseProfiler profiler;
    profiler.begin("work");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    profiler.end();
    EXPECT_GT(profiler.phaseNs("work"), 1000000);
    EXPECT_EQ(profiler.phaseCount("work"), 1);
    EXPECT_EQ(profiler.phaseNs("absent"), 0);
}

TEST(Profiler, NestedPhasesBothAccumulate)
{
    PhaseProfiler profiler;
    profiler.begin("outer");
    profiler.begin("inner");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    profiler.end();
    profiler.end();
    EXPECT_GE(profiler.phaseNs("outer"), profiler.phaseNs("inner"));
    EXPECT_GT(profiler.phaseNs("inner"), 0);
}

TEST(Profiler, MergeAddsTotals)
{
    PhaseProfiler a, b;
    a.begin("x");
    a.end();
    b.begin("x");
    b.end();
    b.begin("y");
    b.end();
    a.merge(b);
    EXPECT_EQ(a.phaseCount("x"), 2);
    EXPECT_EQ(a.phaseCount("y"), 1);
}

TEST(Profiler, ScopedPhaseHandlesNull)
{
    // Must not crash when no profiler is attached.
    ScopedPhase phase(nullptr, "anything");
    SUCCEED();
}

TEST(Profiler, FractionOf)
{
    PhaseProfiler profiler;
    profiler.begin("p");
    profiler.end();
    EXPECT_GE(profiler.fractionOf("p", 1000000000), 0.0);
    EXPECT_EQ(profiler.fractionOf("p", 0), 0.0);
}

TEST(RunningStat, BasicMoments)
{
    RunningStat stat;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stat.add(v);
    EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
    EXPECT_NEAR(stat.stddev(), 2.138, 0.01);
    EXPECT_DOUBLE_EQ(stat.min(), 2.0);
    EXPECT_DOUBLE_EQ(stat.max(), 9.0);
    EXPECT_EQ(stat.count(), 8u);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat stat;
    EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
}

TEST(Quantile, MedianAndExtremes)
{
    std::vector<double> samples{5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(quantile(samples, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(quantile(samples, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(samples, 1.0), 5.0);
}

TEST(Quantile, InterpolatesBetweenSamples)
{
    std::vector<double> samples{0.0, 10.0};
    EXPECT_DOUBLE_EQ(quantile(samples, 0.25), 2.5);
}

TEST(Table, RendersAlignedColumns)
{
    Table table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"beta", "22"});
    std::string out = table.render();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("beta"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::pct(0.5, 1), "50.0%");
    EXPECT_EQ(Table::count(1234567), "1,234,567");
    EXPECT_EQ(Table::count(-1000), "-1,000");
    EXPECT_EQ(Table::count(7), "7");
}

TEST(Stopwatch, MeasuresElapsed)
{
    Stopwatch timer;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_GE(timer.elapsedNs(), 4000000);
    timer.restart();
    EXPECT_LT(timer.elapsedNs(), 4000000);
}

} // namespace
} // namespace rtr

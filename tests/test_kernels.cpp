/**
 * @file
 * Integration tests: every RTRBench kernel runs end-to-end at a
 * reduced configuration, succeeds, and reports the phases and metrics
 * its paper section promises.
 */

#include <gtest/gtest.h>

#include "kernels/registry.h"

namespace rtr {
namespace {

TEST(Registry, HasAllSixteenKernels)
{
    EXPECT_EQ(kernelNames().size(), 16u);
    auto kernels = makeAllKernels();
    ASSERT_EQ(kernels.size(), 16u);
    for (std::size_t i = 0; i < kernels.size(); ++i)
        EXPECT_EQ(kernels[i]->name(), kernelNames()[i]);
}

TEST(Registry, StagesMatchTableOne)
{
    EXPECT_EQ(makeKernel("pfl")->stage(), Stage::Perception);
    EXPECT_EQ(makeKernel("ekfslam")->stage(), Stage::Perception);
    EXPECT_EQ(makeKernel("srec")->stage(), Stage::Perception);
    for (const char *name : {"pp2d", "pp3d", "movtar", "prm", "rrt",
                             "rrtstar", "rrtpp", "sym-blkw", "sym-fext"})
        EXPECT_EQ(makeKernel(name)->stage(), Stage::Planning) << name;
    for (const char *name : {"dmp", "mpc", "cem", "bo"})
        EXPECT_EQ(makeKernel(name)->stage(), Stage::Control) << name;
}

TEST(Registry, EveryKernelDocumentsItsOptions)
{
    for (const std::string &name : kernelNames()) {
        auto kernel = makeKernel(name);
        ArgParser parser(name);
        kernel->addOptions(parser);
        std::string usage = parser.usage();
        EXPECT_NE(usage.find("--help"), std::string::npos) << name;
        EXPECT_FALSE(kernel->description().empty()) << name;
    }
}

/** Small-but-real configurations, one per kernel. */
std::vector<std::string>
smallConfig(const std::string &name)
{
    if (name == "pfl")
        return {"--particles", "300", "--steps", "25"};
    if (name == "ekfslam")
        return {"--steps", "200"};
    if (name == "srec")
        return {"--frames", "6", "--scan-width", "60",
                "--scan-height", "45"};
    if (name == "pp2d")
        return {"--map-size", "256"};
    if (name == "pp3d")
        return {"--map-size", "64", "--map-depth", "16"};
    if (name == "movtar")
        return {"--env-size", "64", "--trajectory-steps", "90"};
    if (name == "prm")
        return {"--samples", "1200"};
    if (name == "rrt" || name == "rrtpp")
        return {};
    if (name == "rrtstar")
        return {"--samples", "1500"};
    if (name == "sym-blkw")
        return {"--blocks", "5"};
    if (name == "sym-fext")
        return {"--waypoints", "5"};
    if (name == "dmp")
        return {"--rollouts", "20"};
    if (name == "mpc")
        return {"--ref-points", "40"};
    if (name == "cem")
        return {"--repeats", "50"};
    if (name == "bo")
        return {"--candidates", "2000", "--iterations", "20"};
    return {};
}

class KernelRuns : public ::testing::TestWithParam<std::string>
{
};

TEST_P(KernelRuns, SucceedsAtReducedScale)
{
    auto kernel = makeKernel(GetParam());
    KernelReport report = kernel->runWithDefaults(smallConfig(GetParam()));
    EXPECT_TRUE(report.success) << GetParam();
    EXPECT_GT(report.roi_seconds, 0.0);
    EXPECT_FALSE(report.metrics.empty());
    EXPECT_FALSE(report.profiler.phases().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelRuns,
    ::testing::Values("pfl", "ekfslam", "srec", "pp2d", "pp3d", "movtar",
                      "prm", "rrt", "rrtstar", "rrtpp", "sym-blkw",
                      "sym-fext", "dmp", "mpc", "cem", "bo"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(KernelMetrics, BottlenecksMatchTableOne)
{
    // Spot-check that each kernel's dominant phase metric exists and is
    // a meaningful fraction, per Table I.
    auto expect_metric = [](const std::string &kernel,
                            const std::string &metric, double min_value,
                            std::vector<std::string> config) {
        KernelReport report =
            makeKernel(kernel)->runWithDefaults(std::move(config));
        ASSERT_TRUE(report.metrics.count(metric))
            << kernel << " lacks " << metric;
        EXPECT_GE(report.metrics.at(metric), min_value)
            << kernel << "." << metric;
    };

    // The Table-I profile was measured probing every traversed cell, so
    // reproduce it with the scalar ray-cast engine; the hierarchical
    // engine exists precisely to shrink this fraction.
    expect_metric("pfl", "raycast_fraction", 0.5,
                  {"--particles", "300", "--steps", "20", "--raycast",
                   "scalar"});
    expect_metric("ekfslam", "matrix_ops_fraction", 0.7,
                  {"--steps", "150"});
    expect_metric("pp2d", "collision_fraction", 0.5,
                  {"--map-size", "256"});
    expect_metric("rrt", "collision_fraction", 0.3, {});
    expect_metric("mpc", "optimize_fraction", 0.8,
                  {"--ref-points", "30"});
}

TEST(KernelSeries, FigureDataIsEmitted)
{
    // Fig. 2: pfl spread series shrinks.
    KernelReport pfl = makeKernel("pfl")->runWithDefaults(
        {"--particles", "300", "--steps", "25"});
    ASSERT_TRUE(pfl.series.count("spread"));
    const auto &spread = pfl.series.at("spread");
    ASSERT_GE(spread.size(), 10u);
    EXPECT_LT(spread.back(), spread.front());

    // Fig. 18: cem reward series exists and improves.
    KernelReport cem =
        makeKernel("cem")->runWithDefaults({"--repeats", "5"});
    ASSERT_TRUE(cem.series.count("reward"));
    EXPECT_EQ(cem.series.at("reward").size(), 75u);
}

TEST(KernelDeterminism, SameSeedSameMetrics)
{
    auto run = [] {
        return makeKernel("rrt")->runWithDefaults({"--seed", "5"});
    };
    KernelReport a = run();
    KernelReport b = run();
    EXPECT_DOUBLE_EQ(a.metrics.at("path_cost_rad"),
                     b.metrics.at("path_cost_rad"));
    EXPECT_DOUBLE_EQ(a.metrics.at("samples"), b.metrics.at("samples"));
}

} // namespace
} // namespace rtr

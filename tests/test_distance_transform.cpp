/**
 * @file
 * Tests for the chamfer distance transform and obstacle inflation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "grid/distance_transform.h"
#include "grid/map_gen.h"
#include "util/rng.h"

namespace rtr {
namespace {

/** Exact brute-force nearest-occupied distance in world units. */
double
bruteDistance(const OccupancyGrid2D &grid, int cx, int cy)
{
    double best = std::numeric_limits<double>::max();
    for (int y = 0; y < grid.height(); ++y) {
        for (int x = 0; x < grid.width(); ++x) {
            if (!grid.occupiedUnchecked(x, y))
                continue;
            double dx = (x - cx) * grid.resolution();
            double dy = (y - cy) * grid.resolution();
            best = std::min(best, std::sqrt(dx * dx + dy * dy));
        }
    }
    return best;
}

TEST(DistanceTransform, ZeroAtObstacles)
{
    OccupancyGrid2D grid(16, 16);
    grid.setOccupied(8, 8);
    std::vector<double> dist = distanceTransform(grid);
    EXPECT_DOUBLE_EQ(dist[8 * 16 + 8], 0.0);
    EXPECT_GT(dist[0], 0.0);
}

TEST(DistanceTransform, ApproximatesEuclidean)
{
    // Chamfer 3-4 error bound is ~8% of the true distance.
    Rng rng(13);
    OccupancyGrid2D grid = makeRandomObstacleMap(40, 40, 0.08, 13);
    std::vector<double> dist = distanceTransform(grid);
    for (int trial = 0; trial < 80; ++trial) {
        int x = static_cast<int>(rng.index(40));
        int y = static_cast<int>(rng.index(40));
        double exact = bruteDistance(grid, x, y);
        double approx = dist[static_cast<std::size_t>(y) * 40 + x];
        EXPECT_LE(std::abs(approx - exact), 0.09 * exact + 1e-9)
            << "cell (" << x << "," << y << ")";
    }
}

TEST(DistanceTransform, MonotoneUnderAddedObstacles)
{
    OccupancyGrid2D sparse(32, 32);
    sparse.setOccupied(5, 5);
    OccupancyGrid2D dense = sparse;
    dense.setOccupied(20, 20);
    std::vector<double> d_sparse = distanceTransform(sparse);
    std::vector<double> d_dense = distanceTransform(dense);
    for (std::size_t i = 0; i < d_sparse.size(); ++i)
        EXPECT_LE(d_dense[i], d_sparse[i] + 1e-12);
}

TEST(Inflate, GrowsObstacles)
{
    OccupancyGrid2D grid(21, 21);
    grid.setOccupied(10, 10);
    OccupancyGrid2D inflated = inflate(grid, 2.0);
    // Original obstacle persists.
    EXPECT_TRUE(inflated.occupied(10, 10));
    // Neighbors within the radius are now occupied.
    EXPECT_TRUE(inflated.occupied(12, 10));
    EXPECT_TRUE(inflated.occupied(10, 8));
    // Far cells stay free.
    EXPECT_FALSE(inflated.occupied(16, 10));
    EXPECT_FALSE(inflated.occupied(0, 0));
}

TEST(Inflate, ZeroRadiusKeepsOnlyObstacles)
{
    Rng rng(3);
    OccupancyGrid2D grid = makeRandomObstacleMap(24, 24, 0.1, 3);
    OccupancyGrid2D same = inflate(grid, 0.0);
    for (int y = 0; y < 24; ++y) {
        for (int x = 0; x < 24; ++x)
            EXPECT_EQ(same.occupied(x, y), grid.occupied(x, y));
    }
}

TEST(Inflate, SupersetProperty)
{
    OccupancyGrid2D grid = makeRandomObstacleMap(32, 32, 0.12, 21);
    OccupancyGrid2D inflated = inflate(grid, 1.5);
    for (int y = 0; y < 32; ++y) {
        for (int x = 0; x < 32; ++x) {
            if (grid.occupied(x, y))
                EXPECT_TRUE(inflated.occupied(x, y));
        }
    }
    EXPECT_GE(inflated.occupancyRatio(), grid.occupancyRatio());
}

} // namespace
} // namespace rtr

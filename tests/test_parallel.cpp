/**
 * @file
 * Tests for the deterministic parallel runtime (util/parallel.h) and
 * for the bitwise thread-count invariance of the parallelized kernels.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

#include "control/cem.h"
#include "kernels/registry.h"
#include "perception/particle_filter.h"
#include "pointcloud/icp.h"
#include "pointcloud/scene_gen.h"
#include "grid/map_gen.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace rtr {
namespace {

/** RAII guard: run a test at a thread count, restore the old one. */
class ThreadGuard
{
  public:
    explicit ThreadGuard(std::size_t n) : saved_(parallelThreads())
    {
        setParallelThreads(n);
    }
    ~ThreadGuard() { setParallelThreads(saved_); }

  private:
    std::size_t saved_;
};

/** Thread counts the determinism tests sweep: 1, 2, and "many". */
std::vector<std::size_t>
sweepCounts()
{
    return {1, 2, std::max<std::size_t>(4, hardwareThreads())};
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    for (std::size_t threads : sweepCounts()) {
        ThreadGuard guard(threads);
        std::vector<std::atomic<int>> hits(1000);
        parallelFor(0, hits.size(), 7, [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(ParallelFor, ZeroLengthAndSingleElementRangesAreSafe)
{
    ThreadGuard guard(std::max<std::size_t>(2, hardwareThreads()));
    int calls = 0;
    parallelFor(0, 0, 4, [&](std::size_t) { ++calls; });
    parallelFor(5, 5, 0, [&](std::size_t) { ++calls; });
    parallelFor(10, 3, 1, [&](std::size_t) { ++calls; });  // inverted
    EXPECT_EQ(calls, 0);
    parallelFor(41, 42, 16, [&](std::size_t i) {
        EXPECT_EQ(i, 41u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, NestedCallsRunInlineAndStaySafe)
{
    ThreadGuard guard(std::max<std::size_t>(2, hardwareThreads()));
    std::vector<std::atomic<int>> hits(64 * 32);
    parallelFor(0, 64, 1, [&](std::size_t outer) {
        parallelFor(0, 32, 4, [&](std::size_t inner) {
            hits[outer * 32 + inner].fetch_add(
                1, std::memory_order_relaxed);
        });
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ChunkDecompositionIgnoresThreadCount)
{
    // Chunk boundaries and indices must be a pure function of
    // (range, grain); record them at several thread counts.
    auto chunksAt = [](std::size_t threads) {
        ThreadGuard guard(threads);
        std::vector<ChunkRange> seen(chunkCount(3, 250, 11));
        parallelForChunks(3, 250, 11, [&](const ChunkRange &chunk) {
            seen[chunk.index] = chunk;
        });
        return seen;
    };
    const std::vector<ChunkRange> reference = chunksAt(1);
    ASSERT_FALSE(reference.empty());
    EXPECT_EQ(reference.front().begin, 3u);
    EXPECT_EQ(reference.back().end, 250u);
    for (std::size_t threads : sweepCounts()) {
        std::vector<ChunkRange> got = chunksAt(threads);
        ASSERT_EQ(got.size(), reference.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].begin, reference[i].begin);
            EXPECT_EQ(got[i].end, reference[i].end);
            EXPECT_EQ(got[i].index, reference[i].index);
        }
    }
}

TEST(ParallelReduce, FoldsInChunkOrderAtEveryThreadCount)
{
    // Floating-point sum: the fold order (chunk order) is fixed, so
    // the rounded result must be bitwise-identical across counts.
    std::vector<double> values(10007);
    Rng rng(99);
    for (double &v : values)
        v = rng.uniform(-1.0, 1.0);

    auto sumAt = [&](std::size_t threads) {
        ThreadGuard guard(threads);
        return parallelReduce(
            0, values.size(), 64, 0.0,
            [&](std::size_t b, std::size_t e) {
                double s = 0.0;
                for (std::size_t i = b; i < e; ++i)
                    s += values[i];
                return s;
            },
            [](double a, double b) { return a + b; });
    };
    const double reference = sumAt(1);
    for (std::size_t threads : sweepCounts())
        EXPECT_EQ(sumAt(threads), reference);
}

TEST(ParallelRng, SubStreamsDependOnChunkIndexNotThreads)
{
    auto drawsAt = [](std::size_t threads) {
        ThreadGuard guard(threads);
        std::vector<double> draws(chunkCount(0, 96, 8));
        parallelForRng(0, 96, 8, Rng(1234),
                       [&](const ChunkRange &chunk, Rng &rng) {
                           draws[chunk.index] = rng.uniform();
                       });
        return draws;
    };
    const std::vector<double> reference = drawsAt(1);
    for (std::size_t threads : sweepCounts())
        EXPECT_EQ(drawsAt(threads), reference);
    // Distinct chunks really do get distinct streams.
    EXPECT_NE(reference[0], reference[1]);
}

TEST(SeedSplitting, IsDeterministicAndSpreads)
{
    EXPECT_EQ(splitSeed(7, 0), splitSeed(7, 0));
    EXPECT_NE(splitSeed(7, 0), splitSeed(7, 1));
    EXPECT_NE(splitSeed(7, 0), splitSeed(8, 0));
    Rng base(42);
    Rng a = base.split(3);
    Rng b = base.split(3);
    EXPECT_EQ(a.uniform(), b.uniform());
}

// ---- Bitwise kernel invariance across thread counts ----

/** Particle-filter weights after one sensor update. */
std::vector<double>
pflWeightsAt(std::size_t threads)
{
    ThreadGuard guard(threads);
    OccupancyGrid2D map = makeIndoorMap(120, 80, 0.25, 3);
    ParticleFilter filter(map, 200);
    Rng rng(5);
    filter.initializeUniform(rng);
    Rng scan_rng(11);
    Pose2 truth{map.origin().x + 8.0, map.origin().y + 6.0, 0.3};
    LaserScan scan = simulateScan(map, truth, 30, 10.0, 0.05, scan_rng);
    filter.measurementUpdate(scan, nullptr);
    std::vector<double> weights;
    for (const Particle &p : filter.particles())
        weights.push_back(p.weight);
    return weights;
}

TEST(DeterministicKernels, PflWeightsAreBitwiseIdentical)
{
    const std::vector<double> reference = pflWeightsAt(1);
    ASSERT_EQ(reference.size(), 200u);
    for (std::size_t threads : sweepCounts()) {
        std::vector<double> got = pflWeightsAt(threads);
        ASSERT_EQ(got.size(), reference.size());
        for (std::size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i], reference[i]) << "particle " << i;
    }
}

/** Full ICP registration transform for a synthetic pair of clouds. */
RigidTransform3
icpTransformAt(std::size_t threads)
{
    ThreadGuard guard(threads);
    IndoorScene scene = IndoorScene::livingRoom(2);
    DepthCamera camera;
    camera.width = 60;
    camera.height = 45;
    std::vector<CameraPose> trajectory = makeTrajectory(scene, 2);
    Rng rng(17);
    PointCloud target = simulateScan(scene, trajectory[0], camera, rng);
    PointCloud source = simulateScan(scene, trajectory[1], camera, rng);
    IcpConfig config;
    config.max_correspondence_distance = 0.5;
    return icpRegister(source, target, config, nullptr).transform;
}

TEST(DeterministicKernels, IcpTransformIsBitwiseIdentical)
{
    const RigidTransform3 reference = icpTransformAt(1);
    for (std::size_t threads : sweepCounts()) {
        RigidTransform3 got = icpTransformAt(threads);
        for (std::size_t r = 0; r < 3; ++r) {
            for (std::size_t c = 0; c < 3; ++c)
                EXPECT_EQ(got.rotation(r, c), reference.rotation(r, c));
        }
        EXPECT_EQ(got.translation.x, reference.translation.x);
        EXPECT_EQ(got.translation.y, reference.translation.y);
        EXPECT_EQ(got.translation.z, reference.translation.z);
    }
}

/** CEM optimum (elite-refit result) for the standard ball throw. */
CemResult
cemResultAt(std::size_t threads)
{
    ThreadGuard guard(threads);
    CemConfig config;
    config.iterations = 6;
    config.samples_per_iteration = 20;
    config.elites = 5;
    CemOptimizer optimizer(config);
    // Quadratic bowl with a known optimum; rewards are exercised off
    // the main thread when threads > 1.
    auto reward = [](const std::vector<double> &p) {
        double r = 0.0;
        for (std::size_t d = 0; d < p.size(); ++d) {
            double diff = p[d] - 0.1 * static_cast<double>(d + 1);
            r -= diff * diff;
        }
        return r;
    };
    Rng rng(21);
    return optimizer.optimize(reward, {-1.0, -1.0, -1.0},
                              {1.0, 1.0, 1.0}, rng, nullptr);
}

TEST(DeterministicKernels, CemElitesAreBitwiseIdentical)
{
    const CemResult reference = cemResultAt(1);
    for (std::size_t threads : sweepCounts()) {
        CemResult got = cemResultAt(threads);
        EXPECT_EQ(got.best_reward, reference.best_reward);
        ASSERT_EQ(got.best_params.size(), reference.best_params.size());
        for (std::size_t d = 0; d < got.best_params.size(); ++d)
            EXPECT_EQ(got.best_params[d], reference.best_params[d]);
        ASSERT_EQ(got.reward_history.size(),
                  reference.reward_history.size());
        for (std::size_t i = 0; i < got.reward_history.size(); ++i)
            EXPECT_EQ(got.reward_history[i], reference.reward_history[i]);
    }
}

/** End-to-end kernel runs: every deterministic metric must agree. */
TEST(DeterministicKernels, KernelMetricsMatchAcrossThreadCounts)
{
    struct Case
    {
        const char *kernel;
        std::vector<std::string> overrides;
        std::vector<std::string> metrics;
    };
    const std::vector<Case> cases = {
        {"pfl",
         {"--particles", "150", "--beams", "24", "--steps", "8"},
         {"final_error_m", "final_spread_m", "rays_cast"}},
        {"mpc",
         {"--ref-points", "40", "--opt-iterations", "8"},
         {"avg_tracking_error_m", "max_tracking_error_m", "cost_evals"}},
        {"cem",
         {"--repeats", "5"},
         {"best_reward", "evaluations_per_episode"}},
        {"prm",
         {"--samples", "250"},
         {"path_cost_rad", "roadmap_nodes", "roadmap_edges",
          "offline_collision_checks"}},
    };
    for (const Case &c : cases) {
        std::vector<std::string> base = c.overrides;
        base.push_back("--threads");
        base.push_back("1");
        KernelReport reference =
            makeKernel(c.kernel)->runWithDefaults(base);
        for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
            std::vector<std::string> overrides = c.overrides;
            overrides.push_back("--threads");
            overrides.push_back(std::to_string(threads));
            KernelReport got =
                makeKernel(c.kernel)->runWithDefaults(overrides);
            for (const std::string &metric : c.metrics) {
                ASSERT_TRUE(got.metrics.count(metric))
                    << c.kernel << " " << metric;
                EXPECT_EQ(got.metrics.at(metric),
                          reference.metrics.at(metric))
                    << c.kernel << " --threads " << threads << " "
                    << metric;
            }
        }
    }
    setParallelThreads(0);
}

} // namespace
} // namespace rtr

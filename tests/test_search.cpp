/**
 * @file
 * Tests for the min-heap, the generic A*, and explicit-graph search.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "search/astar.h"
#include "search/graph_search.h"
#include "search/min_heap.h"
#include "util/rng.h"

namespace rtr {
namespace {

TEST(MinHeap, PopsInKeyOrder)
{
    MinHeap<std::uint32_t> heap;
    Rng rng(1);
    std::vector<double> keys;
    for (int i = 0; i < 500; ++i) {
        double key = rng.uniform(0, 100);
        keys.push_back(key);
        heap.push(key, static_cast<std::uint32_t>(i));
    }
    std::sort(keys.begin(), keys.end());
    for (double expected : keys) {
        auto [key, id] = heap.pop();
        EXPECT_DOUBLE_EQ(key, expected);
    }
    EXPECT_TRUE(heap.empty());
}

TEST(MinHeap, DuplicateIdsAllowed)
{
    MinHeap<std::uint32_t> heap;
    heap.push(3.0, 7);
    heap.push(1.0, 7);
    EXPECT_DOUBLE_EQ(heap.pop().key, 1.0);
    EXPECT_DOUBLE_EQ(heap.pop().key, 3.0);
}

TEST(MinHeap, TopDoesNotRemove)
{
    MinHeap<std::uint64_t> heap;
    heap.push(5.0, 1);
    heap.push(2.0, 2);
    EXPECT_EQ(heap.top().id, 2u);
    EXPECT_EQ(heap.size(), 2u);
}

/** Implicit 1-D chain: 0 - 1 - 2 - ... - n. */
AStarProblem<int>
chainProblem(int goal)
{
    AStarProblem<int> problem;
    problem.successors = [](const int &s,
                            std::vector<std::pair<int, double>> &out) {
        out.emplace_back(s + 1, 1.0);
        if (s > 0)
            out.emplace_back(s - 1, 1.0);
    };
    problem.heuristic = [goal](const int &s) {
        return static_cast<double>(std::abs(goal - s));
    };
    problem.isGoal = [goal](const int &s) { return s == goal; };
    return problem;
}

TEST(AStar, SolvesChain)
{
    auto result = astarSearch(0, chainProblem(10));
    ASSERT_TRUE(result.found);
    EXPECT_DOUBLE_EQ(result.cost, 10.0);
    ASSERT_EQ(result.path.size(), 11u);
    EXPECT_EQ(result.path.front(), 0);
    EXPECT_EQ(result.path.back(), 10);
}

TEST(AStar, StartIsGoal)
{
    auto result = astarSearch(5, chainProblem(5));
    ASSERT_TRUE(result.found);
    EXPECT_DOUBLE_EQ(result.cost, 0.0);
    EXPECT_EQ(result.path.size(), 1u);
}

TEST(AStar, RespectsExpansionCap)
{
    AStarProblem<int> problem = chainProblem(1000000);
    problem.max_expansions = 100;
    auto result = astarSearch(0, problem);
    EXPECT_FALSE(result.found);
    EXPECT_LE(result.expanded, 101u);
}

TEST(AStar, UnreachableGoalExhaustsSpace)
{
    // Bounded chain 0..5 with goal outside.
    AStarProblem<int> problem;
    problem.successors = [](const int &s,
                            std::vector<std::pair<int, double>> &out) {
        if (s < 5)
            out.emplace_back(s + 1, 1.0);
        if (s > 0)
            out.emplace_back(s - 1, 1.0);
    };
    problem.heuristic = [](const int &) { return 0.0; };
    problem.isGoal = [](const int &s) { return s == 99; };
    auto result = astarSearch(0, problem);
    EXPECT_FALSE(result.found);
    EXPECT_EQ(result.expanded, 6u);
}

TEST(AStar, HeuristicReducesExpansions)
{
    // Bidirectional chain: the blind search wastes expansions on the
    // negative side, the informed one does not.
    auto two_way = [](int goal) {
        AStarProblem<int> problem;
        problem.successors =
            [](const int &s, std::vector<std::pair<int, double>> &out) {
                out.emplace_back(s + 1, 1.0);
                out.emplace_back(s - 1, 1.0);
            };
        problem.heuristic = [goal](const int &s) {
            return static_cast<double>(std::abs(goal - s));
        };
        problem.isGoal = [goal](const int &s) { return s == goal; };
        return problem;
    };
    auto with_h = astarSearch(0, two_way(50));
    AStarProblem<int> blind = two_way(50);
    blind.heuristic = [](const int &) { return 0.0; };
    auto without_h = astarSearch(0, blind);
    EXPECT_TRUE(with_h.found);
    EXPECT_TRUE(without_h.found);
    EXPECT_DOUBLE_EQ(with_h.cost, without_h.cost);
    EXPECT_LT(with_h.expanded, without_h.expanded);
}

/** Random explicit graphs: A* must match Dijkstra's optimal cost. */
class GraphSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GraphSeeds, AStarMatchesDijkstra)
{
    Rng rng(GetParam());
    ExplicitGraph graph;
    const std::uint32_t n = 60;
    std::vector<std::pair<double, double>> coords;
    for (std::uint32_t i = 0; i < n; ++i) {
        graph.addNode();
        coords.emplace_back(rng.uniform(0, 10), rng.uniform(0, 10));
    }
    // Random geometric edges with Euclidean costs (keeps the straight-
    // line heuristic admissible).
    for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t j = i + 1; j < n; ++j) {
            double dx = coords[i].first - coords[j].first;
            double dy = coords[i].second - coords[j].second;
            double dist = std::sqrt(dx * dx + dy * dy);
            if (dist < 2.5)
                graph.addEdge(i, j, dist);
        }
    }

    auto heuristic = [&](std::uint32_t node) {
        double dx = coords[node].first - coords[n - 1].first;
        double dy = coords[node].second - coords[n - 1].second;
        return std::sqrt(dx * dx + dy * dy);
    };
    auto zero = [](std::uint32_t) { return 0.0; };

    GraphSearchResult astar = graphAStar(graph, 0, n - 1, heuristic);
    GraphSearchResult dijkstra = graphAStar(graph, 0, n - 1, zero);
    EXPECT_EQ(astar.found, dijkstra.found);
    if (astar.found) {
        EXPECT_NEAR(astar.cost, dijkstra.cost, 1e-9);
        EXPECT_LE(astar.expanded, dijkstra.expanded);
        // Path endpoints and edge continuity.
        EXPECT_EQ(astar.path.front(), 0u);
        EXPECT_EQ(astar.path.back(), n - 1);
        double walked = 0.0;
        for (std::size_t k = 0; k + 1 < astar.path.size(); ++k) {
            bool edge_exists = false;
            for (const auto &edge : graph.neighbors(astar.path[k])) {
                if (edge.to == astar.path[k + 1]) {
                    edge_exists = true;
                    walked += edge.cost;
                    break;
                }
            }
            EXPECT_TRUE(edge_exists);
        }
        EXPECT_NEAR(walked, astar.cost, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(ExplicitGraph, EdgeCount)
{
    ExplicitGraph graph;
    graph.addNode();
    graph.addNode();
    graph.addNode();
    graph.addEdge(0, 1, 1.0);
    graph.addEdge(1, 2, 1.0);
    EXPECT_EQ(graph.size(), 3u);
    EXPECT_EQ(graph.edgeCount(), 2u);
    EXPECT_EQ(graph.neighbors(1).size(), 2u);
}

TEST(GraphAStar, CountsHeuristicEvals)
{
    ExplicitGraph graph;
    for (int i = 0; i < 3; ++i)
        graph.addNode();
    graph.addEdge(0, 1, 1.0);
    graph.addEdge(1, 2, 1.0);
    auto result =
        graphAStar(graph, 0, 2, [](std::uint32_t) { return 0.0; });
    EXPECT_TRUE(result.found);
    EXPECT_GE(result.heuristic_evals, 3u);
}

} // namespace
} // namespace rtr

/**
 * @file
 * Tests for the planar arm: forward kinematics, workspace collision
 * checking, configuration-space helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arm/cspace.h"
#include "arm/planar_arm.h"
#include "arm/workspace.h"
#include "geom/angle.h"
#include "util/rng.h"

namespace rtr {
namespace {

TEST(PlanarArm, StraightArmReachesFullExtension)
{
    PlanarArm arm({0.0, 0.0}, {1.0, 1.0, 1.0});
    EXPECT_EQ(arm.dof(), 3u);
    EXPECT_DOUBLE_EQ(arm.reach(), 3.0);
    Vec2 tip = arm.endEffector({0.0, 0.0, 0.0});
    EXPECT_NEAR(tip.x, 3.0, 1e-12);
    EXPECT_NEAR(tip.y, 0.0, 1e-12);
}

TEST(PlanarArm, RightAngleElbow)
{
    PlanarArm arm({0.0, 0.0}, {1.0, 1.0});
    // First link along +x, second bent 90 degrees up.
    Vec2 tip = arm.endEffector({0.0, kPi / 2.0});
    EXPECT_NEAR(tip.x, 1.0, 1e-12);
    EXPECT_NEAR(tip.y, 1.0, 1e-12);
}

TEST(PlanarArm, JointPositionsChainCorrectly)
{
    PlanarArm arm({1.0, 2.0}, {0.5, 0.5});
    std::vector<Vec2> joints;
    arm.forwardKinematics({kPi / 2.0, 0.0}, joints);
    ASSERT_EQ(joints.size(), 3u);
    EXPECT_EQ(joints[0], (Vec2{1.0, 2.0}));
    EXPECT_NEAR(joints[1].x, 1.0, 1e-12);
    EXPECT_NEAR(joints[1].y, 2.5, 1e-12);
    EXPECT_NEAR(joints[2].y, 3.0, 1e-12);
    // Link lengths are preserved by FK.
    EXPECT_NEAR(joints[0].distanceTo(joints[1]), 0.5, 1e-12);
    EXPECT_NEAR(joints[1].distanceTo(joints[2]), 0.5, 1e-12);
}

TEST(PlanarArm, UniformFactory)
{
    PlanarArm arm = PlanarArm::uniform({0.25, 0.0}, 5, 0.45);
    EXPECT_EQ(arm.dof(), 5u);
    EXPECT_NEAR(arm.reach(), 0.45, 1e-12);
    for (double len : arm.linkLengths())
        EXPECT_NEAR(len, 0.09, 1e-12);
}

TEST(Workspace, MapFIsFree)
{
    Workspace ws = makeMapF();
    EXPECT_TRUE(ws.obstacles.empty());
    EXPECT_DOUBLE_EQ(ws.bounds.width(), 0.5);
}

TEST(Workspace, MapCHasClutter)
{
    Workspace ws = makeMapC();
    EXPECT_GE(ws.obstacles.size(), 3u);
    for (const Aabb2 &box : ws.obstacles) {
        EXPECT_TRUE(ws.bounds.contains(box.lo));
        EXPECT_TRUE(ws.bounds.contains(box.hi));
    }
}

TEST(CollisionChecker, FoldedArmFreeInMapC)
{
    PlanarArm arm = PlanarArm::uniform({0.25, 0.0}, 5, 0.45);
    Workspace ws = makeMapC();
    ArmCollisionChecker checker(arm, ws);
    // Arm folded low, zig-zagging below Map-C's clutter band.
    ArmConfig folded{kPi / 2.0, kPi / 2.0, -kPi / 2.0, -kPi / 2.0, 0.0};
    EXPECT_FALSE(checker.configCollides(folded));
    EXPECT_EQ(checker.checksPerformed(), 1u);
    // Straight up runs into the (0.20..0.30, 0.42..0.48) obstacle.
    ArmConfig up{kPi / 2.0, 0.0, 0.0, 0.0, 0.0};
    EXPECT_TRUE(checker.configCollides(up));
}

TEST(CollisionChecker, OutOfBoundsCollides)
{
    PlanarArm arm = PlanarArm::uniform({0.25, 0.0}, 3, 0.45);
    Workspace ws = makeMapF();
    ArmCollisionChecker checker(arm, ws);
    // Pointing straight down leaves the workspace (y < 0).
    EXPECT_TRUE(checker.configCollides({-kPi / 2.0, 0.0, 0.0}));
    // Pointing along +x from (0.25, 0): tip at 0.7 > 0.5 bound.
    EXPECT_TRUE(checker.configCollides({0.0, 0.0, 0.0}));
}

TEST(CollisionChecker, ObstacleHitDetected)
{
    PlanarArm arm = PlanarArm::uniform({0.25, 0.0}, 2, 0.4);
    Workspace ws = makeMapF();
    // Obstacle above the base, in the upper half of the reach.
    ws.obstacles.push_back(Aabb2{{0.2, 0.3}, {0.3, 0.4}});
    ArmCollisionChecker checker(arm, ws);
    // Straight up passes through the obstacle.
    EXPECT_TRUE(checker.configCollides({kPi / 2.0, 0.0}));
    // Up then bent left stays below it.
    EXPECT_FALSE(checker.configCollides({kPi / 2.0, kPi / 2.0}));
}

TEST(CollisionChecker, MotionDetectsMidpointCollision)
{
    PlanarArm arm = PlanarArm::uniform({0.25, 0.0}, 2, 0.4);
    Workspace ws = makeMapF();
    // Thin pillar straight above the base.
    ws.obstacles.push_back(Aabb2{{0.24, 0.3}, {0.26, 0.4}});
    ArmCollisionChecker checker(arm, ws);
    // ~126 and ~54 degrees: tilted enough to clear the pillar while
    // keeping the whole arm inside the 0.5 m workspace.
    ArmConfig left{2.2, 0.0};
    ArmConfig right{0.94, 0.0};
    ASSERT_FALSE(checker.configCollides(left));
    ASSERT_FALSE(checker.configCollides(right));
    // Sweeping between them passes straight up, through the pillar.
    EXPECT_TRUE(checker.motionCollides(left, right, 0.02));
}

TEST(CollisionChecker, MotionFreeWhenNothingInTheWay)
{
    PlanarArm arm = PlanarArm::uniform({0.25, 0.0}, 2, 0.3);
    Workspace ws = makeMapF();
    ArmCollisionChecker checker(arm, ws);
    EXPECT_FALSE(checker.motionCollides({2.2, 0.0}, {0.94, 0.0}, 0.02));
}

TEST(ConfigSpace, SampleWithinBounds)
{
    ConfigSpace space(5, -kPi, kPi);
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        ArmConfig q = space.sample(rng);
        ASSERT_EQ(q.size(), 5u);
        EXPECT_TRUE(space.inBounds(q));
    }
}

TEST(ConfigSpace, DistanceProperties)
{
    ArmConfig a{0.0, 0.0, 0.0};
    ArmConfig b{1.0, 2.0, 2.0};
    EXPECT_DOUBLE_EQ(ConfigSpace::distance(a, b), 3.0);
    EXPECT_DOUBLE_EQ(ConfigSpace::squaredDistance(a, b), 9.0);
    EXPECT_DOUBLE_EQ(ConfigSpace::distance(a, a), 0.0);
    // Symmetry and triangle inequality on random triples.
    Rng rng(5);
    ConfigSpace space(4, -1.0, 1.0);
    for (int i = 0; i < 50; ++i) {
        ArmConfig x = space.sample(rng);
        ArmConfig y = space.sample(rng);
        ArmConfig z = space.sample(rng);
        EXPECT_DOUBLE_EQ(ConfigSpace::distance(x, y),
                         ConfigSpace::distance(y, x));
        EXPECT_LE(ConfigSpace::distance(x, z),
                  ConfigSpace::distance(x, y) +
                      ConfigSpace::distance(y, z) + 1e-12);
    }
}

TEST(ConfigSpace, InterpolateEndpoints)
{
    ArmConfig a{0.0, 1.0};
    ArmConfig b{2.0, -1.0};
    EXPECT_EQ(ConfigSpace::interpolate(a, b, 0.0), a);
    EXPECT_EQ(ConfigSpace::interpolate(a, b, 1.0), b);
    ArmConfig mid = ConfigSpace::interpolate(a, b, 0.5);
    EXPECT_DOUBLE_EQ(mid[0], 1.0);
    EXPECT_DOUBLE_EQ(mid[1], 0.0);
}

TEST(ConfigSpace, SteerLimitsStepLength)
{
    ArmConfig from{0.0, 0.0};
    ArmConfig to{3.0, 4.0};  // distance 5
    ArmConfig stepped = ConfigSpace::steer(from, to, 1.0);
    EXPECT_NEAR(ConfigSpace::distance(from, stepped), 1.0, 1e-12);
    // Direction preserved.
    EXPECT_NEAR(stepped[0] / stepped[1], 3.0 / 4.0, 1e-12);
    // Within range: returns the target itself.
    ArmConfig direct = ConfigSpace::steer(from, to, 10.0);
    EXPECT_EQ(direct, to);
}

TEST(ConfigSpace, InBoundsRejectsWrongSizeAndRange)
{
    ConfigSpace space(3, -1.0, 1.0);
    EXPECT_FALSE(space.inBounds({0.0, 0.0}));
    EXPECT_FALSE(space.inBounds({0.0, 0.0, 1.5}));
    EXPECT_TRUE(space.inBounds({0.0, -1.0, 1.0}));
}

TEST(RandomWorkspace, Deterministic)
{
    Workspace a = makeRandomWorkspace(5, 42);
    Workspace b = makeRandomWorkspace(5, 42);
    ASSERT_EQ(a.obstacles.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(a.obstacles[i].lo, b.obstacles[i].lo);
        EXPECT_EQ(a.obstacles[i].hi, b.obstacles[i].hi);
    }
}

} // namespace
} // namespace rtr

/**
 * @file
 * Tests for incremental scene reconstruction.
 */

#include <gtest/gtest.h>

#include "perception/scene_reconstruction.h"
#include "pointcloud/scene_gen.h"
#include "util/rng.h"

namespace rtr {
namespace {

TEST(SceneRec, FirstScanDefinesFrame)
{
    SceneReconstructor rec;
    PointCloud scan({{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}});
    RigidTransform3 pose = rec.addScan(scan);
    EXPECT_TRUE(pose.rotation.approxEquals(Matrix::identity(3)));
    EXPECT_NEAR(pose.translation.norm(), 0.0, 1e-12);
    EXPECT_EQ(rec.model().size(), 4u);
    EXPECT_EQ(rec.scanCount(), 1u);
}

TEST(SceneRec, RecoversCameraTrajectory)
{
    IndoorScene scene = IndoorScene::livingRoom(1);
    DepthCamera camera;
    camera.width = 80;
    camera.height = 60;
    const int frames = 8;
    std::vector<CameraPose> trajectory = makeTrajectory(scene, frames);
    Rng rng(2);

    SceneReconstructor rec;
    for (const CameraPose &pose : trajectory)
        rec.addScan(simulateScan(scene, pose, camera, rng));

    ASSERT_EQ(rec.poses().size(), static_cast<std::size_t>(frames));
    RigidTransform3 world_from_first =
        trajectory.front().worldFromCamera();
    double total_error = 0.0;
    for (int f = 0; f < frames; ++f) {
        RigidTransform3 gt = world_from_first.inverted().compose(
            trajectory[static_cast<std::size_t>(f)].worldFromCamera());
        total_error += (rec.poses()[static_cast<std::size_t>(f)]
                            .translation -
                        gt.translation)
                           .norm();
    }
    EXPECT_LT(total_error / frames, 0.08);
    EXPECT_LT(rec.lastRmse(), 0.1);
}

TEST(SceneRec, ModelGrowthBoundedByDownsampling)
{
    IndoorScene scene = IndoorScene::livingRoom(3);
    DepthCamera camera;
    camera.width = 60;
    camera.height = 45;
    Rng rng(4);
    SceneRecConfig config;
    config.downsample_interval = 2;
    config.voxel_size = 0.08;
    SceneReconstructor rec(config);

    std::vector<CameraPose> trajectory = makeTrajectory(scene, 6);
    std::size_t raw_total = 0;
    for (const CameraPose &pose : trajectory) {
        PointCloud scan = simulateScan(scene, pose, camera, rng);
        raw_total += scan.size();
        rec.addScan(scan);
    }
    // Fusion keeps the model far smaller than the raw concatenation.
    EXPECT_LT(rec.model().size(), raw_total / 2);
    EXPECT_GT(rec.model().size(), 1000u);
}

TEST(SceneRec, ProfilerCoversPipelinePhases)
{
    IndoorScene scene = IndoorScene::livingRoom(5);
    DepthCamera camera;
    camera.width = 40;
    camera.height = 30;
    Rng rng(6);
    SceneReconstructor rec;
    PhaseProfiler profiler;
    auto trajectory = makeTrajectory(scene, 3);
    for (const CameraPose &pose : trajectory)
        rec.addScan(simulateScan(scene, pose, camera, rng),
                    &profiler);
    EXPECT_GT(profiler.phaseNs("icp-nn"), 0);
    EXPECT_GT(profiler.phaseNs("icp-solve"), 0);
    EXPECT_GT(profiler.phaseNs("merge"), 0);
    EXPECT_GT(profiler.phaseNs("normals-nn"), 0);
    EXPECT_GT(profiler.phaseNs("normals-eigen"), 0);
}

} // namespace
} // namespace rtr

/**
 * @file
 * Property suite for the SIMD dense-linalg micro-kernels.
 *
 * The contract (DESIGN.md "Dense linear algebra"): the SIMD paths of
 * the GEMM family and the Cholesky/LU factor+solve are BITWISE
 * identical to the preserved scalar reference paths, for every shape —
 * including sizes that are not multiples of the vector width. These
 * tests sweep sizes 1..17, compare with memcmp (not a tolerance), and
 * additionally pin the aliasing traps and IEEE NaN/Inf propagation.
 *
 * Both dispatch paths run in-process via the runtime flag
 * (ScopedSimdKernels); under -DRTR_FORCE_SCALAR_SIMD=ON both paths
 * compile to scalar code and the suite degenerates to self-consistency,
 * which is exactly what the scalar CI leg is for.
 */

#include <cmath>
#include <cstring>
#include <random>

#include <gtest/gtest.h>

#include "linalg/decomp.h"
#include "linalg/matrix.h"
#include "util/simd.h"

namespace rtr {
namespace {

bool
bitwiseEqual(const Matrix &a, const Matrix &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return false;
    return std::memcmp(a.data(), b.data(),
                       sizeof(double) * a.rows() * a.cols()) == 0;
}

Matrix
randomMatrix(std::size_t rows, std::size_t cols, std::mt19937 &rng)
{
    std::uniform_real_distribution<double> dist(-2.0, 2.0);
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < rows * cols; ++i)
        m.data()[i] = dist(rng);
    return m;
}

Matrix
randomSpd(std::size_t n, std::mt19937 &rng)
{
    Matrix a = randomMatrix(n, n, rng);
    Matrix spd = multiplyTransposed(a, a);
    for (std::size_t i = 0; i < n; ++i)
        spd(i, i) += static_cast<double>(n);
    return spd;
}

TEST(LinalgSimd, BackendReportsSaneWidth)
{
    const std::size_t w = simd::VecD::kWidth;
    EXPECT_TRUE(w == 1 || w == 2 || w == 4);
#if defined(RTR_FORCE_SCALAR_SIMD)
    EXPECT_EQ(w, 1u);
    EXPECT_STREQ(simd::kBackendName, "scalar");
#endif
}

TEST(LinalgSimd, RuntimeFlagRoundTrips)
{
    const bool before = simdKernelsEnabled();
    {
        ScopedSimdKernels off(false);
        EXPECT_FALSE(simdKernelsEnabled());
        {
            ScopedSimdKernels on(true);
            EXPECT_TRUE(simdKernelsEnabled());
        }
        EXPECT_FALSE(simdKernelsEnabled());
    }
    EXPECT_EQ(simdKernelsEnabled(), before);
}

TEST(LinalgSimd, MultiplyBitwiseMatchesScalarAcrossSizes)
{
    std::mt19937 rng(7);
    for (std::size_t m = 1; m <= 17; ++m) {
        for (std::size_t k : {1u, 2u, 3u, 5u, 8u, 13u, 17u}) {
            for (std::size_t n = 1; n <= 17; ++n) {
                Matrix a = randomMatrix(m, k, rng);
                Matrix b = randomMatrix(k, n, rng);
                const Matrix ref = a.multiplyScalar(b);
                ScopedSimdKernels on(true);
                const Matrix simd = a * b;
                ASSERT_TRUE(bitwiseEqual(ref, simd))
                    << "simd product differs at " << m << "x" << k << "x"
                    << n;
            }
        }
    }
}

TEST(LinalgSimd, GemmAlphaBetaBitwiseMatchesScalar)
{
    std::mt19937 rng(11);
    for (std::size_t n = 1; n <= 17; n += 2) {
        for (double alpha : {1.0, 0.75}) {
            for (double beta : {0.0, 1.0, -0.5}) {
                Matrix a = randomMatrix(n, n + 1, rng);
                Matrix b = randomMatrix(n + 1, n + 2, rng);
                Matrix c0 = randomMatrix(n, n + 2, rng);

                Matrix c_scalar = c0;
                {
                    ScopedSimdKernels off(false);
                    gemm(a, b, c_scalar, alpha, beta);
                }
                Matrix c_simd = c0;
                {
                    ScopedSimdKernels on(true);
                    gemm(a, b, c_simd, alpha, beta);
                }
                ASSERT_TRUE(bitwiseEqual(c_scalar, c_simd))
                    << "gemm differs at n=" << n << " alpha=" << alpha
                    << " beta=" << beta;
            }
        }
    }
}

TEST(LinalgSimd, MultiplyTransposedBitwiseMatchesMaterializedTranspose)
{
    std::mt19937 rng(13);
    for (std::size_t m = 1; m <= 17; m += 3) {
        for (std::size_t k = 1; k <= 17; k += 2) {
            for (std::size_t n = 1; n <= 17; n += 3) {
                Matrix a = randomMatrix(m, k, rng);
                Matrix b = randomMatrix(n, k, rng);
                const Matrix ref = a.multiplyScalar(b.transposed());
                ScopedSimdKernels on(true);
                const Matrix fused = multiplyTransposed(a, b);
                ASSERT_TRUE(bitwiseEqual(ref, fused))
                    << "multiplyTransposed differs at " << m << "x" << k
                    << "x" << n;
            }
        }
    }
}

TEST(LinalgSimd, SymmetricSandwichBitwiseMatchesComposition)
{
    std::mt19937 rng(17);
    for (std::size_t n = 1; n <= 17; ++n) {
        Matrix h = randomMatrix(2, n, rng);
        Matrix p = randomSpd(n, rng);
        const Matrix ref =
            h.multiplyScalar(p).multiplyScalar(h.transposed());
        ScopedSimdKernels on(true);
        Matrix out, work;
        symmetricSandwich(h, p, out, work);
        ASSERT_TRUE(bitwiseEqual(ref, out)) << "sandwich differs at n=" << n;
    }
}

TEST(LinalgSimd, AddScaledOuterBitwiseMatchesScalar)
{
    std::mt19937 rng(19);
    for (std::size_t m = 1; m <= 17; m += 2) {
        for (std::size_t n = 1; n <= 17; n += 3) {
            Matrix x = randomMatrix(m, 1, rng);
            Matrix y = randomMatrix(n, 1, rng);
            Matrix c0 = randomMatrix(m, n, rng);
            Matrix c_scalar = c0;
            {
                ScopedSimdKernels off(false);
                addScaledOuter(c_scalar, 1.25, x, y);
            }
            Matrix c_simd = c0;
            {
                ScopedSimdKernels on(true);
                addScaledOuter(c_simd, 1.25, x, y);
            }
            ASSERT_TRUE(bitwiseEqual(c_scalar, c_simd))
                << "addScaledOuter differs at " << m << "x" << n;
        }
    }
}

TEST(LinalgSimd, CholeskyFactorAndLogDetBitwiseAcrossSizes)
{
    std::mt19937 rng(23);
    for (std::size_t n = 1; n <= 17; ++n) {
        Matrix spd = randomSpd(n, rng);
        ScopedSimdKernels off(false);
        CholeskyDecomposition ref(spd);
        setSimdKernelsEnabled(true);
        CholeskyDecomposition simd(spd);
        ASSERT_FALSE(ref.failed());
        ASSERT_FALSE(simd.failed());
        ASSERT_TRUE(bitwiseEqual(ref.lower(), simd.lower()))
            << "Cholesky factor differs at n=" << n;
        // Bitwise-equal factors make logDeterminant bitwise equal too.
        const double ld_ref = ref.logDeterminant();
        const double ld_simd = simd.logDeterminant();
        ASSERT_EQ(std::memcmp(&ld_ref, &ld_simd, sizeof(double)), 0);
    }
}

TEST(LinalgSimd, CholeskySolveBitwiseAcrossSizesAndRhsWidths)
{
    std::mt19937 rng(29);
    for (std::size_t n = 1; n <= 17; ++n) {
        Matrix spd = randomSpd(n, rng);
        // One decomposition per flag setting: factor AND solve must
        // both be flag-independent.
        ScopedSimdKernels off(false);
        CholeskyDecomposition ref(spd);
        setSimdKernelsEnabled(true);
        CholeskyDecomposition simd(spd);
        for (std::size_t m : {1u, 2u, 3u, 5u}) {
            Matrix b = randomMatrix(n, m, rng);
            setSimdKernelsEnabled(false);
            const Matrix x_ref = ref.solve(b);
            setSimdKernelsEnabled(true);
            const Matrix x_simd = simd.solve(b);
            ASSERT_TRUE(bitwiseEqual(x_ref, x_simd))
                << "Cholesky solve differs at n=" << n << " rhs=" << m;
        }
    }
}

TEST(LinalgSimd, CholeskySolveIntoMatchesSolve)
{
    std::mt19937 rng(31);
    Matrix spd = randomSpd(13, rng);
    CholeskyDecomposition chol(spd);
    Matrix b = randomMatrix(13, 1, rng);
    const Matrix x = chol.solve(b);
    Matrix into;
    chol.solveInto(b, into);
    EXPECT_TRUE(bitwiseEqual(x, into));
    // In-place: x aliasing b is supported for solveInto.
    Matrix b2 = b;
    chol.solveInto(b2, b2);
    EXPECT_TRUE(bitwiseEqual(x, b2));
}

TEST(LinalgSimd, CholeskyFailureFlagAgreesOnNonSpd)
{
    Matrix not_spd{{1.0, 2.0}, {2.0, 1.0}}; // eigenvalues 3, -1
    ScopedSimdKernels off(false);
    CholeskyDecomposition ref(not_spd);
    setSimdKernelsEnabled(true);
    CholeskyDecomposition simd(not_spd);
    EXPECT_TRUE(ref.failed());
    EXPECT_TRUE(simd.failed());
}

TEST(LinalgSimd, LuSolveAndInverseBitwiseAcrossSizes)
{
    std::mt19937 rng(37);
    for (std::size_t n : {1u, 2u, 3u, 5u, 8u, 13u, 17u}) {
        Matrix a = randomMatrix(n, n, rng);
        for (std::size_t i = 0; i < n; ++i)
            a(i, i) += 3.0; // keep it comfortably non-singular
        Matrix b = randomMatrix(n, 3, rng);
        ScopedSimdKernels off(false);
        LuDecomposition lu_ref(a);
        const Matrix x_ref = lu_ref.solve(b);
        const Matrix inv_ref = lu_ref.inverse();
        setSimdKernelsEnabled(true);
        LuDecomposition lu_simd(a);
        const Matrix x_simd = lu_simd.solve(b);
        const Matrix inv_simd = lu_simd.inverse();
        ASSERT_TRUE(bitwiseEqual(x_ref, x_simd)) << "LU solve n=" << n;
        ASSERT_TRUE(bitwiseEqual(inv_ref, inv_simd)) << "LU inverse n=" << n;
    }
}

TEST(LinalgSimdDeathTest, GemmOutputAliasingInputTraps)
{
    Matrix a = Matrix::identity(4);
    Matrix b = Matrix::identity(4);
    EXPECT_DEATH(gemm(a, b, a, 1.0, 0.0), "aliases");
    EXPECT_DEATH(gemm(a, b, b, 1.0, 1.0), "aliases");
}

TEST(LinalgSimdDeathTest, MultiplyTransposedAliasingTraps)
{
    Matrix a = Matrix::identity(4);
    Matrix b = Matrix::identity(4);
    EXPECT_DEATH(multiplyTransposed(a, b, a), "aliases");
    EXPECT_DEATH(multiplyTransposed(a, b, b), "aliases");
}

TEST(LinalgSimdDeathTest, SymmetricSandwichAliasingTraps)
{
    Matrix h = Matrix::identity(3);
    Matrix p = Matrix::identity(3);
    Matrix out, work;
    EXPECT_DEATH(symmetricSandwich(h, p, h, work), "aliases");
    EXPECT_DEATH(symmetricSandwich(h, p, out, p), "aliases");
    Matrix shared = Matrix::identity(3);
    EXPECT_DEATH(symmetricSandwich(h, p, shared, shared), "aliases");
}

TEST(LinalgSimdDeathTest, AddScaledOuterAliasingTraps)
{
    // 1x1 so the shape checks pass and the aliasing trap is what fires.
    Matrix x(1, 1), y(1, 1);
    EXPECT_DEATH(addScaledOuter(x, 1.0, x, y), "aliases");
    EXPECT_DEATH(addScaledOuter(y, 1.0, x, y), "aliases");
}

TEST(LinalgSimd, NanPropagatesThroughZeroWeightedRows)
{
    // The seed's zero-skip branch turned 0 * NaN into 0. IEEE says NaN;
    // both paths must now agree on that.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    Matrix a(2, 2); // all zeros
    Matrix b = Matrix::identity(2);
    b(0, 0) = nan;
    const Matrix ref = a.multiplyScalar(b);
    ScopedSimdKernels on(true);
    const Matrix simd = a * b;
    EXPECT_TRUE(std::isnan(ref(0, 0)));
    EXPECT_TRUE(std::isnan(simd(0, 0)));
    EXPECT_TRUE(bitwiseEqual(ref, simd));
}

TEST(LinalgSimd, InfAndNanPropagationBitwiseAgrees)
{
    std::mt19937 rng(41);
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t n : {3u, 7u, 11u}) {
        Matrix a = randomMatrix(n, n, rng);
        Matrix b = randomMatrix(n, n, rng);
        a(0, n / 2) = inf;
        b(n / 2, n - 1) = -inf; // inf * -inf and inf * finite mix
        a(n - 1, 0) = nan;
        const Matrix ref = a.multiplyScalar(b);
        ScopedSimdKernels on(true);
        const Matrix simd = a * b;
        ASSERT_TRUE(bitwiseEqual(ref, simd)) << "NaN/Inf differs n=" << n;
        EXPECT_TRUE(std::isnan(simd(n - 1, 0)));
    }
}

TEST(LinalgSimd, GemmBetaZeroNeverReadsPoisonedOutput)
{
    // With beta == 0, C's prior contents (even NaN) must not leak.
    Matrix a = Matrix::identity(5);
    Matrix b = Matrix::constant(5, 5, 2.0);
    Matrix c = Matrix::constant(5, 5,
                                std::numeric_limits<double>::quiet_NaN());
    ScopedSimdKernels on(true);
    gemm(a, b, c, 1.0, 0.0);
    EXPECT_TRUE(c.approxEquals(b, 0.0));
    Matrix c2 = Matrix::constant(5, 5,
                                 std::numeric_limits<double>::quiet_NaN());
    ScopedSimdKernels off(false);
    gemm(a, b, c2, 1.0, 0.0);
    EXPECT_TRUE(c2.approxEquals(b, 0.0));
}

TEST(LinalgSimd, EmptyAndDegenerateShapes)
{
    Matrix empty;
    ScopedSimdKernels on(true);
    Matrix out = empty * empty;
    EXPECT_EQ(out.rows(), 0u);
    EXPECT_EQ(out.cols(), 0u);
    // Inner dimension 0: product is the zero matrix.
    Matrix a(3, 0), b(0, 4);
    Matrix z = a * b;
    EXPECT_TRUE(z.approxEquals(Matrix(3, 4), 0.0));
    EXPECT_TRUE(z.approxEquals(a.multiplyScalar(b), 0.0));
}

} // namespace
} // namespace rtr

/**
 * @file
 * The planning service: MPMC queue correctness under producer/consumer
 * stress, bounded-queue backpressure, shutdown-while-draining ticket
 * accounting, and the determinism contract (responses are pure
 * functions of the request — never of submission order or worker
 * count), verified by canonical-byte replay.
 */

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/service.h"
#include "util/mpmc_queue.h"
#include "util/rng.h"

namespace {

using namespace rtr;
using namespace rtr::service;

TEST(MpmcQueueTest, FifoWhenSingleThreaded)
{
    MpmcQueue<int> queue(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(queue.tryPush(i));
    EXPECT_FALSE(queue.tryPush(99)) << "bounded queue must reject";
    int value = -1;
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(queue.tryPop(value));
        EXPECT_EQ(value, i);
    }
    EXPECT_FALSE(queue.tryPop(value));
}

TEST(MpmcQueueTest, CapacityRoundsUpToPowerOfTwo)
{
    MpmcQueue<int> queue(5); // rounds to 8
    int pushed = 0;
    while (queue.tryPush(pushed))
        ++pushed;
    EXPECT_EQ(pushed, 8);
}

/**
 * Multi-producer/multi-consumer stress: every pushed value is popped
 * exactly once. This is the test the TSAN leg of check.sh runs to
 * vet the queue's memory ordering.
 */
TEST(MpmcQueueTest, MpmcStressLosesNothing)
{
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr int kPerProducer = 5000;
    constexpr int kTotal = kProducers * kPerProducer;

    MpmcQueue<int> queue(256); // much smaller than kTotal: wraps a lot
    std::atomic<int> popped{0};
    std::vector<std::vector<int>> consumed(kConsumers);

    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back([&queue, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                const int value = p * kPerProducer + i;
                while (!queue.tryPush(value))
                    std::this_thread::yield();
            }
        });
    }
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&queue, &popped, &consumed, c] {
            int value = -1;
            while (popped.load(std::memory_order_acquire) < kTotal) {
                if (queue.tryPop(value)) {
                    consumed[c].push_back(value);
                    popped.fetch_add(1, std::memory_order_acq_rel);
                } else {
                    std::this_thread::yield();
                }
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    std::vector<int> seen(kTotal, 0);
    std::size_t total = 0;
    for (const std::vector<int> &values : consumed) {
        total += values.size();
        for (int value : values) {
            ASSERT_GE(value, 0);
            ASSERT_LT(value, kTotal);
            ++seen[static_cast<std::size_t>(value)];
        }
    }
    EXPECT_EQ(total, static_cast<std::size_t>(kTotal));
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                            [](int count) { return count == 1; }))
        << "every value must be popped exactly once";
}

/** Shared small world: tests exercise the engine, not asset sizes. */
const World &
testWorld()
{
    static const World *world = [] {
        WorldConfig config;
        config.grid_size = 64;
        config.prm_samples = 150;
        config.nn_points = 1024;
        return new World(config);
    }();
    return *world;
}

/** A deterministic mixed request stream over all four types. */
std::vector<Request>
mixedStream(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Request> stream;
    stream.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        stream.push_back(testWorld().randomRequest(
            static_cast<RequestType>(i % 4), rng));
    return stream;
}

TEST(ServiceTest, DrainCompletesEveryTicket)
{
    PlanningService svc(testWorld());
    std::vector<Ticket> tickets;
    std::vector<Request> stream = mixedStream(64, 11);
    for (const Request &request : stream)
        tickets.push_back(svc.submit(request));
    svc.start();
    EXPECT_TRUE(svc.running());
    svc.shutdown();
    EXPECT_FALSE(svc.running());

    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.submitted, 64u);
    EXPECT_EQ(stats.completed, 64u);
    EXPECT_EQ(stats.cancelled, 0u);
    for (Ticket ticket : tickets) {
        EXPECT_EQ(svc.poll(ticket), TicketStatus::Done);
        const Completion done = svc.collect(ticket);
        EXPECT_EQ(done.status, TicketStatus::Done);
        EXPECT_LE(done.timing.submit_ns, done.timing.start_ns);
        EXPECT_LE(done.timing.start_ns, done.timing.done_ns);
        // Collected tickets leave the registry.
        EXPECT_EQ(svc.poll(ticket), TicketStatus::Unknown);
    }
}

TEST(ServiceTest, BackpressureRejectsWhenFull)
{
    ServiceConfig config;
    config.workers = 1;
    config.queue_capacity = 8;
    PlanningService svc(testWorld(), config); // not started: queue fills
    NnBatchRequest tiny;
    tiny.queries.push_back({1.0, 2.0, 3.0});
    tiny.k = 1;

    std::vector<Ticket> tickets;
    for (int i = 0; i < 8; ++i) {
        Ticket ticket = svc.trySubmit(tiny);
        EXPECT_NE(ticket.id, 0u);
        tickets.push_back(ticket);
    }
    const Ticket rejected = svc.trySubmit(tiny);
    EXPECT_EQ(rejected.id, 0u) << "9th submit must hit the bound";
    EXPECT_EQ(svc.stats().rejected_full, 1u);
    EXPECT_EQ(svc.poll(rejected), TicketStatus::Unknown);

    svc.start();
    svc.shutdown();
    for (Ticket ticket : tickets)
        EXPECT_EQ(svc.collect(ticket).status, TicketStatus::Done);
    EXPECT_EQ(svc.stats().completed, 8u);
}

TEST(ServiceTest, NeverStartedServiceCancelsQueuedTickets)
{
    PlanningService svc(testWorld());
    std::vector<Ticket> tickets;
    std::vector<Request> stream = mixedStream(12, 13);
    for (const Request &request : stream)
        tickets.push_back(svc.submit(request));
    svc.shutdown(PlanningService::Shutdown::Abort);

    EXPECT_EQ(svc.stats().cancelled, 12u);
    for (Ticket ticket : tickets) {
        const Completion done = svc.collect(ticket);
        EXPECT_EQ(done.status, TicketStatus::Cancelled);
    }
}

/**
 * Abort while workers are mid-drain: every issued ticket must end
 * Done or Cancelled — none lost, none double-counted.
 */
TEST(ServiceTest, AbortWhileDrainingLosesNoTicket)
{
    ServiceConfig config;
    config.workers = 1;
    PlanningService svc(testWorld(), config);
    std::vector<Ticket> tickets;
    std::vector<Request> stream = mixedStream(96, 17);
    for (const Request &request : stream)
        tickets.push_back(svc.submit(request));
    svc.start();
    svc.shutdown(PlanningService::Shutdown::Abort);

    std::size_t done_count = 0, cancelled_count = 0;
    for (Ticket ticket : tickets) {
        const Completion done = svc.collect(ticket);
        if (done.status == TicketStatus::Done)
            ++done_count;
        else if (done.status == TicketStatus::Cancelled)
            ++cancelled_count;
        else
            FAIL() << "ticket in state "
                   << static_cast<int>(done.status);
    }
    EXPECT_EQ(done_count + cancelled_count, 96u);
    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.completed, done_count);
    EXPECT_EQ(stats.cancelled, cancelled_count);
}

TEST(ServiceTest, UnknownTicketsAreHandledGracefully)
{
    PlanningService svc(testWorld());
    EXPECT_EQ(svc.poll(Ticket{0}), TicketStatus::Unknown);
    EXPECT_EQ(svc.poll(Ticket{12345}), TicketStatus::Unknown);
    EXPECT_EQ(svc.wait(Ticket{12345}), TicketStatus::Unknown);
    EXPECT_EQ(svc.collect(Ticket{12345}).status, TicketStatus::Unknown);
}

/** Canonical bytes of every response, indexed like the stream. */
std::vector<std::vector<std::uint8_t>>
runOnce(const std::vector<Request> &stream,
        const std::vector<std::size_t> &order, std::size_t workers)
{
    ServiceConfig config;
    config.workers = workers;
    config.queue_capacity = 2 * stream.size();
    PlanningService svc(testWorld(), config);
    svc.start();
    std::vector<Ticket> tickets(stream.size());
    for (std::size_t idx : order)
        tickets[idx] = svc.submit(stream[idx]);
    svc.shutdown();

    std::vector<std::vector<std::uint8_t>> bytes(stream.size());
    for (std::size_t i = 0; i < stream.size(); ++i) {
        const Completion done = svc.collect(tickets[i]);
        EXPECT_EQ(done.status, TicketStatus::Done);
        appendCanonicalBytes(done.response, bytes[i]);
    }
    return bytes;
}

/**
 * The determinism contract: responses are bitwise identical across
 * submission orders and worker counts.
 */
TEST(ServiceTest, ReplayIsBitwiseDeterministic)
{
    const std::vector<Request> stream = mixedStream(48, 23);
    std::vector<std::size_t> forward(stream.size());
    std::iota(forward.begin(), forward.end(), std::size_t(0));
    std::vector<std::size_t> reversed(forward.rbegin(), forward.rend());
    std::vector<std::size_t> shuffled = forward;
    Rng rng(24);
    std::shuffle(shuffled.begin(), shuffled.end(), rng.engine());

    const auto baseline = runOnce(stream, forward, 1);

    // The baseline must not be trivially empty: at least one planner
    // response actually found something.
    std::size_t nonempty = 0;
    for (const std::vector<std::uint8_t> &bytes : baseline)
        nonempty += bytes.size() > 16 ? 1 : 0;
    EXPECT_GT(nonempty, stream.size() / 2);

    for (std::size_t workers : {std::size_t(1), std::size_t(2)}) {
        for (const auto *order : {&forward, &reversed, &shuffled}) {
            const auto replay = runOnce(stream, *order, workers);
            ASSERT_EQ(replay.size(), baseline.size());
            for (std::size_t i = 0; i < baseline.size(); ++i)
                EXPECT_EQ(replay[i], baseline[i])
                    << "request " << i << " diverged (workers="
                    << workers << ")";
        }
    }
}

/** wait() from another thread wakes when the worker finishes. */
TEST(ServiceTest, WaitBlocksUntilCompletion)
{
    PlanningService svc(testWorld());
    Rng rng(31);
    Ticket ticket = svc.submit(testWorld().randomPp2d(rng));
    std::atomic<bool> woke{false};
    std::thread waiter([&] {
        const TicketStatus status = svc.wait(ticket);
        EXPECT_EQ(status, TicketStatus::Done);
        woke.store(true, std::memory_order_release);
    });
    svc.start();
    waiter.join();
    EXPECT_TRUE(woke.load(std::memory_order_acquire));
    svc.shutdown();
    EXPECT_EQ(svc.collect(ticket).status, TicketStatus::Done);
}

} // namespace

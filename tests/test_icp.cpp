/**
 * @file
 * Tests for ICP registration (Horn's method, point-to-point,
 * point-to-plane) and the synthetic depth-scan generator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "geom/angle.h"
#include "pointcloud/icp.h"
#include "pointcloud/scene_gen.h"
#include "util/rng.h"

namespace rtr {
namespace {

PointCloud
randomCloud(std::size_t n, Rng &rng, double extent = 1.0)
{
    PointCloud cloud;
    for (std::size_t i = 0; i < n; ++i)
        cloud.add({rng.uniform(-extent, extent),
                   rng.uniform(-extent, extent),
                   rng.uniform(-extent, extent)});
    return cloud;
}

TEST(Horn, RecoversExactTransform)
{
    Rng rng(2);
    for (int trial = 0; trial < 20; ++trial) {
        PointCloud src = randomCloud(50, rng);
        RigidTransform3 gt;
        gt.rotation = rotationZ(rng.uniform(-kPi, kPi));
        gt.translation = {rng.uniform(-3, 3), rng.uniform(-3, 3),
                          rng.uniform(-3, 3)};
        std::vector<Vec3> dst;
        for (const Vec3 &p : src.points())
            dst.push_back(gt.apply(p));

        RigidTransform3 est = bestRigidTransform(src.points(), dst);
        EXPECT_NEAR((est.rotation - gt.rotation).frobeniusNorm(), 0.0,
                    1e-9);
        EXPECT_NEAR((est.translation - gt.translation).norm(), 0.0,
                    1e-9);
    }
}

TEST(Horn, ReturnsProperRotation)
{
    Rng rng(3);
    PointCloud src = randomCloud(30, rng);
    std::vector<Vec3> dst;
    RigidTransform3 gt;
    gt.rotation = rotationZ(0.7);
    for (const Vec3 &p : src.points())
        dst.push_back(gt.apply(p));
    RigidTransform3 est = bestRigidTransform(src.points(), dst);
    // R^T R = I and det R = +1.
    EXPECT_TRUE((est.rotation.transposed() * est.rotation)
                    .approxEquals(Matrix::identity(3), 1e-9));
}

TEST(IcpPointToPoint, ConvergesFromSmallOffset)
{
    Rng rng(4);
    PointCloud target = randomCloud(300, rng, 2.0);
    RigidTransform3 offset;
    offset.rotation = rotationZ(0.1);
    offset.translation = {0.05, -0.08, 0.02};
    PointCloud source = target.transformed(offset.inverted());

    IcpConfig config;
    config.max_iterations = 50;
    IcpResult result = icpRegister(source, target, config);
    EXPECT_TRUE(result.converged);
    EXPECT_LT(result.rmse, 1e-4);
    EXPECT_NEAR((result.transform.rotation - offset.rotation)
                    .frobeniusNorm(),
                0.0, 1e-3);
}

TEST(IcpPointToPoint, ProfilerPhasesPopulated)
{
    Rng rng(5);
    PointCloud target = randomCloud(100, rng);
    PointCloud source = target;
    PhaseProfiler profiler;
    icpRegister(source, target, {}, &profiler);
    EXPECT_GT(profiler.phaseNs("icp-nn"), 0);
}

TEST(IcpPointToPoint, TrimmedVariantStillConverges)
{
    Rng rng(6);
    PointCloud target = randomCloud(300, rng, 2.0);
    RigidTransform3 offset;
    offset.translation = {0.1, 0.05, -0.03};
    PointCloud source = target.transformed(offset.inverted());

    IcpConfig config;
    config.max_iterations = 60;
    config.trim_fraction = 0.8;
    IcpResult result = icpRegister(source, target, config);
    EXPECT_LT(result.rmse, 1e-3);
}

TEST(IcpPointToPlane, RecoversTransformOnStructuredScene)
{
    // A synthetic corner: three orthogonal planes pin all 6 DoF.
    PointCloud target;
    Rng rng(7);
    for (int i = 0; i < 400; ++i) {
        double u = rng.uniform(0.0, 2.0), v = rng.uniform(0.0, 2.0);
        int plane = i % 3;
        if (plane == 0)
            target.add({u, v, 0.0});
        else if (plane == 1)
            target.add({u, 0.0, v});
        else
            target.add({0.0, u, v});
    }
    std::vector<Vec3> normals = estimateNormals(target, 10, {1.0, 1.0, 1.0});

    RigidTransform3 offset;
    offset.rotation = rotationZ(0.05);
    offset.translation = {0.03, -0.04, 0.05};
    PointCloud source = target.transformed(offset.inverted());

    IcpConfig config;
    config.max_iterations = 40;
    IcpResult result = icpPointToPlane(source, target, normals, config);
    EXPECT_LT(result.rmse, 1e-3);
    EXPECT_NEAR((result.transform.translation - offset.translation).norm(),
                0.0, 0.02);
}

TEST(IcpPointToPlane, DoesNotSlideOnPlaneWithFeatures)
{
    // A plane with a ridge: point-to-plane must recover in-plane
    // translation thanks to the ridge.
    PointCloud target;
    Rng rng(8);
    for (int i = 0; i < 500; ++i) {
        double x = rng.uniform(0.0, 4.0), y = rng.uniform(0.0, 4.0);
        double z = (x > 1.9 && x < 2.1) ? 0.3 : 0.0;
        target.add({x, y, z});
    }
    std::vector<Vec3> normals =
        estimateNormals(target, 10, {2.0, 2.0, 5.0});

    RigidTransform3 offset;
    offset.translation = {0.08, 0.0, 0.0};  // tangential shift
    PointCloud source = target.transformed(offset.inverted());

    IcpConfig config;
    config.max_iterations = 40;
    IcpResult result = icpPointToPlane(source, target, normals, config);
    EXPECT_NEAR(result.transform.translation.x, 0.08, 0.03);
}

TEST(SceneGen, LivingRoomIsDeterministic)
{
    IndoorScene a = IndoorScene::livingRoom(9);
    IndoorScene b = IndoorScene::livingRoom(9);
    ASSERT_EQ(a.furniture().size(), b.furniture().size());
    EXPECT_GT(a.furniture().size(), 3u);
}

TEST(SceneGen, RaycastHitsRoomShell)
{
    IndoorScene scene = IndoorScene::livingRoom(1);
    Vec3 center = scene.room().center();
    // Straight up must hit the ceiling.
    double up = scene.raycast(center, {0, 0, 1}, 100.0);
    EXPECT_NEAR(up, scene.room().hi.z - center.z, 1e-9);
    // Distance is capped at max range.
    EXPECT_DOUBLE_EQ(scene.raycast(center, {0, 0, 1}, 0.5), 0.5);
}

TEST(SceneGen, ScanPointsMatchSceneGeometry)
{
    IndoorScene scene = IndoorScene::livingRoom(2);
    DepthCamera camera;
    camera.noise_stddev = 0.0;
    CameraPose pose;
    pose.position = scene.room().center();
    pose.yaw = 0.4;
    Rng rng(3);
    PointCloud scan = simulateScan(scene, pose, camera, rng);
    ASSERT_GT(scan.size(), 100u);

    // Every camera-frame point, mapped to world, must lie on a surface:
    // re-raycasting towards it gives (almost) its distance.
    RigidTransform3 world_from_cam = pose.worldFromCamera();
    for (std::size_t i = 0; i < scan.size(); i += 97) {
        Vec3 world = world_from_cam.apply(scan[i]);
        Vec3 dir = (world - pose.position).normalized();
        double dist = scene.raycast(pose.position, dir, 100.0);
        EXPECT_NEAR(dist, (world - pose.position).norm(), 1e-6);
    }
}

TEST(SceneGen, TrajectoryStaysInsideRoom)
{
    IndoorScene scene = IndoorScene::livingRoom(4);
    auto poses = makeTrajectory(scene, 20);
    ASSERT_EQ(poses.size(), 20u);
    for (const CameraPose &pose : poses)
        EXPECT_TRUE(scene.room().contains(pose.position));
}

} // namespace
} // namespace rtr

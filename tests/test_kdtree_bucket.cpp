/**
 * @file
 * Randomized fuzz suite for the leaf-bucketed ("bucket") NN engine.
 *
 * The engine's contract is exactness: hits identical (ids AND dist2,
 * under the documented (dist2, id) tie-break) to both a brute-force
 * oracle and the preserved one-point-per-node reference engine, for
 * nearest / kNearest / radiusSearch, across bulk builds, interleaved
 * incremental inserts, duplicate points, and runtime dimensions.
 * Every comparison below is therefore EXPECT_EQ, never near.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "pointcloud/bucket_kdtree.h"
#include "pointcloud/dyn_kdtree.h"
#include "pointcloud/kdtree.h"
#include "pointcloud/nn_index.h"
#include "util/rng.h"

namespace rtr {
namespace {

/** Brute-force oracle under the (dist2, id) order: all hits sorted. */
std::vector<KdHit>
oracleAllHits(const std::vector<std::vector<double>> &points,
              const std::vector<double> &query)
{
    std::vector<KdHit> hits;
    hits.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        double d2 = 0.0;
        for (std::size_t d = 0; d < query.size(); ++d) {
            double diff = points[i][d] - query[d];
            d2 += diff * diff;
        }
        hits.push_back(KdHit{static_cast<std::uint32_t>(i), d2});
    }
    std::sort(hits.begin(), hits.end(), kdHitLess);
    return hits;
}

void
expectSameHits(const std::vector<KdHit> &got,
               const std::vector<KdHit> &want, const char *what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].id, want[i].id) << what << " hit " << i;
        EXPECT_EQ(got[i].dist2, want[i].dist2) << what << " hit " << i;
    }
}

std::vector<double>
randomPoint(std::size_t dim, Rng &rng, double lo, double hi)
{
    std::vector<double> p(dim);
    for (double &v : p)
        v = rng.uniform(lo, hi);
    return p;
}

/**
 * The core fuzz driver: grow a point set (bulk seed + incremental
 * inserts, optionally with exact duplicates), and after every growth
 * step check a few queries through all three implementations.
 */
void
fuzzDynTrees(std::size_t dim, std::uint64_t seed, bool with_duplicates)
{
    Rng rng(seed);
    DynBucketKdTree bucket(dim);
    DynKdTree node(dim);
    std::vector<std::vector<double>> points;

    // Seed with a bulk build (ids are indices, as the consumers use).
    const std::size_t n_seed = 64 + static_cast<std::size_t>(
                                        rng.uniform(0.0, 64.0));
    for (std::size_t i = 0; i < n_seed; ++i)
        points.push_back(randomPoint(dim, rng, -5.0, 5.0));
    bucket.build(points);
    for (std::size_t i = 0; i < points.size(); ++i)
        node.insert(points[i], static_cast<std::uint32_t>(i));

    std::vector<KdHit> bucket_buf, node_buf;
    for (int round = 0; round < 12; ++round) {
        // Interleave inserts (crossing the pending-flush and the
        // binary-counter merge boundaries as the set grows).
        const int n_insert = 1 + static_cast<int>(rng.uniform(0.0, 40.0));
        for (int i = 0; i < n_insert; ++i) {
            std::vector<double> p;
            if (with_duplicates && !points.empty() &&
                rng.uniform(0.0, 1.0) < 0.5) {
                const auto src = static_cast<std::size_t>(
                    rng.uniform(0.0, static_cast<double>(points.size())));
                p = points[std::min(src, points.size() - 1)];
            } else {
                p = randomPoint(dim, rng, -5.0, 5.0);
            }
            const auto id = static_cast<std::uint32_t>(points.size());
            bucket.insert(p, id);
            node.insert(p, id);
            points.push_back(std::move(p));
        }
        ASSERT_EQ(bucket.size(), points.size());

        for (int q = 0; q < 8; ++q) {
            std::vector<double> query;
            if (with_duplicates && rng.uniform(0.0, 1.0) < 0.3) {
                // Query exactly on a stored point: dist2 == 0 ties.
                const auto src = static_cast<std::size_t>(rng.uniform(
                    0.0, static_cast<double>(points.size())));
                query = points[std::min(src, points.size() - 1)];
            } else {
                query = randomPoint(dim, rng, -6.0, 6.0);
            }
            const auto oracle = oracleAllHits(points, query);

            // nearest
            const KdHit bn = bucket.nearest(query);
            const KdHit nn = node.nearest(query);
            EXPECT_EQ(bn.id, oracle.front().id);
            EXPECT_EQ(bn.dist2, oracle.front().dist2);
            EXPECT_EQ(nn.id, bn.id);
            EXPECT_EQ(nn.dist2, bn.dist2);

            // kNearest (spans smaller-than-k and larger-than-leaf)
            const std::size_t k = 1 + static_cast<std::size_t>(
                                          rng.uniform(0.0, 48.0));
            bucket.kNearestInto(query, k, bucket_buf);
            node.kNearestInto(query, k, node_buf);
            std::vector<KdHit> want(
                oracle.begin(),
                oracle.begin() + static_cast<std::ptrdiff_t>(
                                     std::min(k, oracle.size())));
            expectSameHits(bucket_buf, want, "bucket kNearest");
            expectSameHits(node_buf, want, "node kNearest");

            // radiusSearch (radius drawn to cover empty..most hits)
            const double radius = rng.uniform(0.0, 6.0);
            bucket.radiusSearchInto(query, radius, bucket_buf);
            node.radiusSearchInto(query, radius, node_buf);
            std::vector<KdHit> in_radius;
            for (const KdHit &h : oracle) {
                if (h.dist2 <= radius * radius)
                    in_radius.push_back(h);
            }
            expectSameHits(bucket_buf, in_radius, "bucket radius");
            expectSameHits(node_buf, in_radius, "node radius");
        }
    }
}

class BucketFuzzDims : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(BucketFuzzDims, RandomPoints)
{
    fuzzDynTrees(GetParam(), GetParam() * 7919 + 13, false);
}

TEST_P(BucketFuzzDims, DuplicatePointsAndOnPointQueries)
{
    fuzzDynTrees(GetParam(), GetParam() * 104729 + 101, true);
}

INSTANTIATE_TEST_SUITE_P(Dims, BucketFuzzDims,
                         ::testing::Values(1, 2, 3, 5, 7));

TEST(BucketKdTree, EmptyAndClear)
{
    BucketKdTree<3> tree;
    EXPECT_TRUE(tree.empty());
    tree.insert({1, 2, 3}, 7);
    EXPECT_EQ(tree.size(), 1u);
    KdHit hit = tree.nearest({1, 2, 3});
    EXPECT_EQ(hit.id, 7u);
    EXPECT_EQ(hit.dist2, 0.0);
    tree.clear();
    EXPECT_TRUE(tree.empty());
}

TEST(BucketKdTree, BulkBuildMatchesReference)
{
    Rng rng(42);
    std::vector<std::array<double, 3>> points(3000);
    for (auto &p : points)
        for (double &v : p)
            v = rng.uniform(-10.0, 10.0);

    BucketKdTree<3> bucket;
    bucket.build(points);
    KdTree<3> node;
    node.build(points);

    for (int q = 0; q < 300; ++q) {
        std::array<double, 3> query{rng.uniform(-12, 12),
                                    rng.uniform(-12, 12),
                                    rng.uniform(-12, 12)};
        const KdHit b = bucket.nearest(query);
        const KdHit n = node.nearest(query);
        EXPECT_EQ(b.id, n.id);
        EXPECT_EQ(b.dist2, n.dist2);

        auto bk = bucket.kNearest(query, 12);
        auto nk = node.kNearest(query, 12);
        expectSameHits(bk, nk, "kNearest");

        auto br = bucket.radiusSearch(query, 2.5);
        auto nr = node.radiusSearch(query, 2.5);
        expectSameHits(br, nr, "radius");
    }
}

TEST(BucketKdTree, BatchedQueriesMatchScalarLoop)
{
    Rng rng(77);
    std::vector<std::array<double, 3>> points(5000);
    for (auto &p : points)
        for (double &v : p)
            v = rng.uniform(-10.0, 10.0);
    std::vector<std::array<double, 3>> queries(600);
    for (auto &q : queries)
        for (double &v : q)
            v = rng.uniform(-11.0, 11.0);

    BucketKdTree<3> tree;
    tree.build(points);

    std::vector<KdHit> batch;
    tree.nearestBatch(queries, batch);
    ASSERT_EQ(batch.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
        const KdHit one = tree.nearest(queries[i]);
        EXPECT_EQ(batch[i].id, one.id);
        EXPECT_EQ(batch[i].dist2, one.dist2);
    }

    const std::size_t k = 9;
    std::vector<KdHit> kbatch;
    tree.kNearestBatch(queries, k, kbatch);
    ASSERT_EQ(kbatch.size(), queries.size() * k);
    std::vector<KdHit> one;
    for (std::size_t i = 0; i < queries.size(); ++i) {
        tree.kNearestInto(queries[i], k, one);
        ASSERT_EQ(one.size(), k);
        for (std::size_t j = 0; j < k; ++j) {
            EXPECT_EQ(kbatch[i * k + j].id, one[j].id);
            EXPECT_EQ(kbatch[i * k + j].dist2, one[j].dist2);
        }
    }
}

TEST(BucketKdTree, KNearestBatchPadsWhenTreeSmallerThanK)
{
    BucketKdTree<2> tree;
    tree.insert({0.0, 0.0}, 0);
    tree.insert({1.0, 0.0}, 1);
    std::vector<std::array<double, 2>> queries{{0.1, 0.0}, {0.9, 0.0}};
    std::vector<KdHit> out;
    tree.kNearestBatch(queries, 4, out);
    ASSERT_EQ(out.size(), 8u);
    // Query 0: hits are id 0 then id 1; slots 2..3 repeat the last.
    EXPECT_EQ(out[0].id, 0u);
    EXPECT_EQ(out[1].id, 1u);
    EXPECT_EQ(out[2].id, 1u);
    EXPECT_EQ(out[3].id, 1u);
    // Query 1: nearest is id 1.
    EXPECT_EQ(out[4].id, 1u);
    EXPECT_EQ(out[5].id, 0u);
}

TEST(BucketKdTree, AllDuplicatePointsTieBreakBySmallestId)
{
    // Fully degenerate input: every point identical. The (dist2, id)
    // order makes results well-defined anyway: ids ascending.
    BucketKdTree<3> bucket;
    KdTree<3> node;
    std::vector<std::array<double, 3>> points(200, {1.0, 2.0, 3.0});
    bucket.build(points);
    node.build(points);

    const std::array<double, 3> query{1.0, 2.0, 3.0};
    EXPECT_EQ(bucket.nearest(query).id, 0u);
    EXPECT_EQ(node.nearest(query).id, 0u);

    auto bk = bucket.kNearest(query, 5);
    auto nk = node.kNearest(query, 5);
    ASSERT_EQ(bk.size(), 5u);
    for (std::uint32_t i = 0; i < 5; ++i) {
        EXPECT_EQ(bk[i].id, i);
        EXPECT_EQ(nk[i].id, i);
    }

    auto br = bucket.radiusSearch(query, 0.5);
    ASSERT_EQ(br.size(), 200u);
    for (std::uint32_t i = 0; i < 200; ++i)
        EXPECT_EQ(br[i].id, i);
}

TEST(DynNnIndex, EnginesAgreeThroughDispatch)
{
    Rng rng(11);
    DynNnIndex bucket(4, NnEngine::Bucket);
    DynNnIndex node(4, NnEngine::Node);
    EXPECT_EQ(bucket.engine(), NnEngine::Bucket);
    EXPECT_EQ(node.engine(), NnEngine::Node);

    std::vector<std::vector<double>> points;
    for (int i = 0; i < 500; ++i) {
        auto p = randomPoint(4, rng, -3.0, 3.0);
        bucket.insert(p, static_cast<std::uint32_t>(i));
        node.insert(p, static_cast<std::uint32_t>(i));
        points.push_back(std::move(p));
    }
    std::vector<KdHit> b_buf, n_buf;
    for (int q = 0; q < 100; ++q) {
        const auto query = randomPoint(4, rng, -4.0, 4.0);
        const KdHit b = bucket.nearest(query);
        const KdHit n = node.nearest(query);
        EXPECT_EQ(b.id, n.id);
        EXPECT_EQ(b.dist2, n.dist2);

        bucket.radiusSearchInto(query, 1.5, b_buf);
        node.radiusSearchInto(query, 1.5, n_buf);
        expectSameHits(b_buf, n_buf, "dispatch radius");
    }
}

TEST(NnEngine, ParseAndName)
{
    NnEngine engine = NnEngine::Node;
    EXPECT_TRUE(parseNnEngine("bucket", engine));
    EXPECT_EQ(engine, NnEngine::Bucket);
    EXPECT_TRUE(parseNnEngine("node", engine));
    EXPECT_EQ(engine, NnEngine::Node);
    EXPECT_FALSE(parseNnEngine("octree", engine));
    EXPECT_EQ(engine, NnEngine::Node); // unchanged on failure
    EXPECT_STREQ(nnEngineName(NnEngine::Bucket), "bucket");
    EXPECT_STREQ(nnEngineName(NnEngine::Node), "node");
}

} // namespace
} // namespace rtr

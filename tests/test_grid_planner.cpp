/**
 * @file
 * Tests for the 2-D and 3-D grid planners: optimality, path validity,
 * WA* suboptimality bounds.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "grid/map_gen.h"
#include "search/grid_planner2d.h"
#include "search/grid_planner3d.h"
#include "util/rng.h"

namespace rtr {
namespace {

/** Assert every step of a 2-D path is 8-connected and collision-free. */
void
checkPath2D(const GridPlan2D &plan, const OccupancyGrid2D &grid,
            const Cell2 &start, const Cell2 &goal)
{
    ASSERT_TRUE(plan.found);
    ASSERT_GE(plan.path.size(), 1u);
    EXPECT_EQ(plan.path.front(), start);
    EXPECT_EQ(plan.path.back(), goal);
    for (std::size_t i = 0; i + 1 < plan.path.size(); ++i) {
        int dx = plan.path[i + 1].x - plan.path[i].x;
        int dy = plan.path[i + 1].y - plan.path[i].y;
        EXPECT_LE(std::abs(dx), 1);
        EXPECT_LE(std::abs(dy), 1);
        EXPECT_TRUE(std::abs(dx) + std::abs(dy) > 0);
        EXPECT_FALSE(grid.occupied(plan.path[i].x, plan.path[i].y));
    }
}

TEST(GridPlanner2D, StraightLineOnEmptyMap)
{
    OccupancyGrid2D grid(32, 32, 1.0);
    GridPlanner2D planner(grid);
    GridPlan2D plan = planner.plan({2, 2}, {12, 2});
    checkPath2D(plan, grid, {2, 2}, {12, 2});
    EXPECT_DOUBLE_EQ(plan.cost, 10.0);
}

TEST(GridPlanner2D, DiagonalCostsSqrt2)
{
    OccupancyGrid2D grid(16, 16, 1.0);
    GridPlanner2D planner(grid);
    GridPlan2D plan = planner.plan({1, 1}, {5, 5});
    ASSERT_TRUE(plan.found);
    EXPECT_NEAR(plan.cost, 4.0 * std::sqrt(2.0), 1e-9);
}

TEST(GridPlanner2D, ResolutionScalesCost)
{
    OccupancyGrid2D grid(32, 32, 0.5);
    GridPlanner2D planner(grid);
    GridPlan2D plan = planner.plan({0, 0}, {10, 0});
    ASSERT_TRUE(plan.found);
    EXPECT_DOUBLE_EQ(plan.cost, 5.0);
}

TEST(GridPlanner2D, ReportsFailureWhenWalledOff)
{
    OccupancyGrid2D grid(16, 16, 1.0);
    for (int y = 0; y < 16; ++y)
        grid.setOccupied(8, y);
    GridPlanner2D planner(grid);
    GridPlan2D plan = planner.plan({2, 2}, {14, 2});
    EXPECT_FALSE(plan.found);
    EXPECT_GT(plan.expanded, 0u);
}

TEST(GridPlanner2D, InvalidEndpointsFailFast)
{
    OccupancyGrid2D grid(8, 8, 1.0);
    grid.setOccupied(4, 4);
    GridPlanner2D planner(grid);
    EXPECT_FALSE(planner.plan({4, 4}, {1, 1}).found);
    EXPECT_FALSE(planner.plan({1, 1}, {4, 4}).found);
    EXPECT_FALSE(planner.plan({-1, 0}, {1, 1}).found);
}

TEST(GridPlanner2D, FootprintBlocksNarrowGap)
{
    OccupancyGrid2D grid(40, 40, 0.5);
    // A wall with a 1-cell (0.5 m) gap: a point robot fits, a 2 m wide
    // footprint does not.
    for (int y = 0; y < 40; ++y) {
        if (y != 20)
            grid.setOccupied(20, y);
    }
    GridPlanner2D point_planner(grid);
    EXPECT_TRUE(point_planner.plan({5, 20}, {35, 20}).found);

    RectFootprint wide(2.0, 2.0);
    GridPlanner2D wide_planner(grid, &wide);
    EXPECT_FALSE(wide_planner.plan({5, 20}, {35, 20}).found);
}

/** Property sweep over random maps. */
class Planner2DSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(Planner2DSeeds, AStarMatchesDijkstraCost)
{
    OccupancyGrid2D grid = makeRandomObstacleMap(48, 48, 0.15, GetParam());
    GridPlanner2D planner(grid);
    Rng rng(GetParam() * 7);

    for (int trial = 0; trial < 4; ++trial) {
        Cell2 start{static_cast<int>(rng.intRange(1, 46)),
                    static_cast<int>(rng.intRange(1, 46))};
        Cell2 goal{static_cast<int>(rng.intRange(1, 46)),
                   static_cast<int>(rng.intRange(1, 46))};
        if (grid.occupied(start.x, start.y) ||
            grid.occupied(goal.x, goal.y))
            continue;

        GridPlan2D astar = planner.plan(start, goal, 1.0);
        GridPlan2D dijkstra = planner.plan(start, goal, 0.0);
        EXPECT_EQ(astar.found, dijkstra.found);
        if (astar.found) {
            EXPECT_NEAR(astar.cost, dijkstra.cost, 1e-9);
            EXPECT_LE(astar.expanded, dijkstra.expanded);
            checkPath2D(astar, grid, start, goal);
        }
    }
}

TEST_P(Planner2DSeeds, WeightedAStarBoundedSuboptimality)
{
    OccupancyGrid2D grid = makeRandomObstacleMap(48, 48, 0.15, GetParam());
    GridPlanner2D planner(grid);
    Rng rng(GetParam() * 13);
    const double epsilon = 2.5;

    for (int trial = 0; trial < 4; ++trial) {
        Cell2 start{static_cast<int>(rng.intRange(1, 46)),
                    static_cast<int>(rng.intRange(1, 46))};
        Cell2 goal{static_cast<int>(rng.intRange(1, 46)),
                   static_cast<int>(rng.intRange(1, 46))};
        if (grid.occupied(start.x, start.y) ||
            grid.occupied(goal.x, goal.y))
            continue;

        GridPlan2D optimal = planner.plan(start, goal, 1.0);
        GridPlan2D weighted = planner.plan(start, goal, epsilon);
        EXPECT_EQ(optimal.found, weighted.found);
        if (optimal.found) {
            EXPECT_LE(weighted.cost, epsilon * optimal.cost + 1e-9);
            EXPECT_GE(weighted.cost, optimal.cost - 1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Planner2DSeeds,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(GridPlanner3D, StraightLine)
{
    OccupancyGrid3D grid(16, 16, 8, 1.0);
    GridPlanner3D planner(grid);
    GridPlan3D plan = planner.plan({1, 1, 1}, {10, 1, 1});
    ASSERT_TRUE(plan.found);
    EXPECT_DOUBLE_EQ(plan.cost, 9.0);
    EXPECT_EQ(plan.path.front(), (Cell3{1, 1, 1}));
    EXPECT_EQ(plan.path.back(), (Cell3{10, 1, 1}));
}

TEST(GridPlanner3D, FliesOverWall)
{
    OccupancyGrid3D grid(16, 16, 8, 1.0);
    // Wall across x = 8 up to z = 5: path must climb to z >= 6.
    for (int y = 0; y < 16; ++y) {
        for (int z = 0; z <= 5; ++z)
            grid.setOccupied(8, y, z);
    }
    GridPlanner3D planner(grid);
    GridPlan3D plan = planner.plan({2, 8, 1}, {14, 8, 1});
    ASSERT_TRUE(plan.found);
    int max_z = 0;
    for (const Cell3 &cell : plan.path) {
        max_z = std::max(max_z, cell.z);
        EXPECT_FALSE(grid.occupied(cell.x, cell.y, cell.z));
    }
    EXPECT_GE(max_z, 6);
}

TEST(GridPlanner3D, PathIs26Connected)
{
    OccupancyGrid3D grid = makeCampus3D(48, 48, 12, 1.0, 5);
    GridPlanner3D planner(grid);
    GridPlan3D plan = planner.plan({2, 2, 2}, {45, 45, 2});
    ASSERT_TRUE(plan.found);
    for (std::size_t i = 0; i + 1 < plan.path.size(); ++i) {
        EXPECT_LE(std::abs(plan.path[i + 1].x - plan.path[i].x), 1);
        EXPECT_LE(std::abs(plan.path[i + 1].y - plan.path[i].y), 1);
        EXPECT_LE(std::abs(plan.path[i + 1].z - plan.path[i].z), 1);
    }
}

TEST(GridPlanner3D, AStarMatchesDijkstra)
{
    OccupancyGrid3D grid = makeCampus3D(32, 32, 10, 1.0, 8);
    GridPlanner3D planner(grid);
    GridPlan3D astar = planner.plan({2, 2, 3}, {29, 29, 3}, 1.0);
    GridPlan3D dijkstra = planner.plan({2, 2, 3}, {29, 29, 3}, 0.0);
    ASSERT_EQ(astar.found, dijkstra.found);
    if (astar.found) {
        EXPECT_NEAR(astar.cost, dijkstra.cost, 1e-9);
        EXPECT_LE(astar.expanded, dijkstra.expanded);
    }
}

} // namespace
} // namespace rtr

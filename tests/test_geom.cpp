/**
 * @file
 * Unit and property tests for the geom library.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "geom/aabb.h"
#include "geom/angle.h"
#include "geom/pose.h"
#include "geom/segment.h"
#include "geom/vec2.h"
#include "geom/vec3.h"
#include "util/rng.h"

namespace rtr {
namespace {

TEST(Vec2, Arithmetic)
{
    Vec2 a{1.0, 2.0}, b{3.0, -1.0};
    EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
    EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
    EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
    EXPECT_EQ(2.0 * a, a * 2.0);
    EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
    EXPECT_DOUBLE_EQ(a.cross(b), -7.0);
}

TEST(Vec2, NormAndDistance)
{
    Vec2 v{3.0, 4.0};
    EXPECT_DOUBLE_EQ(v.norm(), 5.0);
    EXPECT_DOUBLE_EQ(v.squaredNorm(), 25.0);
    EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ((Vec2{0, 0}).distanceTo(v), 5.0);
}

TEST(Vec2, RotationPreservesNorm)
{
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        Vec2 v{rng.uniform(-5, 5), rng.uniform(-5, 5)};
        double angle = rng.uniform(-kPi, kPi);
        EXPECT_NEAR(v.rotated(angle).norm(), v.norm(), 1e-9);
    }
}

TEST(Vec2, QuarterRotation)
{
    Vec2 v{1.0, 0.0};
    Vec2 r = v.rotated(kPi / 2.0);
    EXPECT_NEAR(r.x, 0.0, 1e-12);
    EXPECT_NEAR(r.y, 1.0, 1e-12);
}

TEST(Vec3, CrossProductProperties)
{
    Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
    EXPECT_EQ(x.cross(y), z);
    EXPECT_EQ(y.cross(z), x);
    EXPECT_EQ(z.cross(x), y);
    Rng rng(5);
    for (int i = 0; i < 20; ++i) {
        Vec3 a{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
        Vec3 b{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
        Vec3 c = a.cross(b);
        EXPECT_NEAR(c.dot(a), 0.0, 1e-12);
        EXPECT_NEAR(c.dot(b), 0.0, 1e-12);
    }
}

TEST(Angle, NormalizeIntoHalfOpenInterval)
{
    EXPECT_NEAR(normalizeAngle(3.0 * kPi), kPi, 1e-12);
    EXPECT_NEAR(normalizeAngle(-3.0 * kPi), kPi, 1e-12);
    EXPECT_NEAR(normalizeAngle(0.5), 0.5, 1e-12);
    Rng rng(9);
    for (int i = 0; i < 200; ++i) {
        double a = normalizeAngle(rng.uniform(-50.0, 50.0));
        EXPECT_GT(a, -kPi - 1e-12);
        EXPECT_LE(a, kPi + 1e-12);
    }
}

TEST(Angle, DiffIsShortestSignedPath)
{
    EXPECT_NEAR(angleDiff(0.1, -0.1), 0.2, 1e-12);
    EXPECT_NEAR(angleDiff(-kPi + 0.05, kPi - 0.05), 0.1, 1e-12);
    EXPECT_NEAR(deg2rad(180.0), kPi, 1e-12);
    EXPECT_NEAR(rad2deg(kPi / 2.0), 90.0, 1e-12);
}

TEST(Pose2, TransformComposesRotationAndTranslation)
{
    Pose2 pose{1.0, 2.0, kPi / 2.0};
    Vec2 world = pose.transform({1.0, 0.0});
    EXPECT_NEAR(world.x, 1.0, 1e-12);
    EXPECT_NEAR(world.y, 3.0, 1e-12);
    EXPECT_NEAR(pose.heading().x, 0.0, 1e-12);
    EXPECT_NEAR(pose.heading().y, 1.0, 1e-12);
}

TEST(Segment, ObviousIntersections)
{
    Segment2 a{{0, 0}, {2, 2}};
    Segment2 b{{0, 2}, {2, 0}};
    EXPECT_TRUE(segmentsIntersect(a, b));

    Segment2 c{{0, 0}, {1, 0}};
    Segment2 d{{0, 1}, {1, 1}};
    EXPECT_FALSE(segmentsIntersect(c, d));
}

TEST(Segment, SharedEndpointCounts)
{
    Segment2 a{{0, 0}, {1, 1}};
    Segment2 b{{1, 1}, {2, 0}};
    EXPECT_TRUE(segmentsIntersect(a, b));
}

TEST(Segment, ColinearOverlapDetected)
{
    Segment2 a{{0, 0}, {2, 0}};
    Segment2 b{{1, 0}, {3, 0}};
    EXPECT_TRUE(segmentsIntersect(a, b));
    Segment2 c{{3, 0}, {4, 0}};
    EXPECT_FALSE(segmentsIntersect(a, c));
}

TEST(Segment, IntersectionIsSymmetric)
{
    Rng rng(12);
    for (int i = 0; i < 200; ++i) {
        Segment2 a{{rng.uniform(0, 10), rng.uniform(0, 10)},
                   {rng.uniform(0, 10), rng.uniform(0, 10)}};
        Segment2 b{{rng.uniform(0, 10), rng.uniform(0, 10)},
                   {rng.uniform(0, 10), rng.uniform(0, 10)}};
        EXPECT_EQ(segmentsIntersect(a, b), segmentsIntersect(b, a));
    }
}

TEST(Segment, PointDistance)
{
    Segment2 s{{0, 0}, {10, 0}};
    EXPECT_DOUBLE_EQ(pointSegmentDistance({5, 3}, s), 3.0);
    EXPECT_DOUBLE_EQ(pointSegmentDistance({-3, 4}, s), 5.0);
    EXPECT_DOUBLE_EQ(pointSegmentDistance({12, 0}, s), 2.0);
}

TEST(Segment, AabbIntersection)
{
    Aabb2 box{{1, 1}, {3, 3}};
    // Fully inside.
    EXPECT_TRUE(segmentIntersectsAabb({{1.5, 1.5}, {2.5, 2.5}}, box));
    // Crossing through.
    EXPECT_TRUE(segmentIntersectsAabb({{0, 2}, {4, 2}}, box));
    // Missing entirely.
    EXPECT_FALSE(segmentIntersectsAabb({{0, 0}, {0.5, 4}}, box));
    // Touching a corner.
    EXPECT_TRUE(segmentIntersectsAabb({{0, 2}, {1, 1}}, box));
}

TEST(Aabb2, ContainsAndOverlaps)
{
    Aabb2 a{{0, 0}, {2, 2}};
    Aabb2 b{{1, 1}, {3, 3}};
    Aabb2 c{{2.5, 2.5}, {4, 4}};
    EXPECT_TRUE(a.contains({1, 1}));
    EXPECT_FALSE(a.contains({2.1, 1}));
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_FALSE(a.overlaps(c));
    EXPECT_EQ(a.center(), (Vec2{1, 1}));
    EXPECT_DOUBLE_EQ(b.width(), 2.0);
}

TEST(Aabb3, RayIntersection)
{
    Aabb3 box{{1, -1, -1}, {2, 1, 1}};
    double t = 0.0;
    EXPECT_TRUE(box.intersectRay({0, 0, 0}, {1, 0, 0}, &t));
    EXPECT_DOUBLE_EQ(t, 1.0);
    EXPECT_FALSE(box.intersectRay({0, 0, 0}, {-1, 0, 0}, &t));
    EXPECT_FALSE(box.intersectRay({0, 5, 0}, {1, 0, 0}, &t));
    // Diagonal hit.
    EXPECT_TRUE(box.intersectRay({0, 0, 0}, {1, 0.1, 0.1}, &t));
}

TEST(Aabb3, RayFromInside)
{
    Aabb3 box{{0, 0, 0}, {2, 2, 2}};
    double t = -1.0;
    EXPECT_TRUE(box.intersectRay({1, 1, 1}, {1, 0, 0}, &t));
    EXPECT_DOUBLE_EQ(t, 0.0);
}

} // namespace
} // namespace rtr

/**
 * @file
 * Tests for the MPC controller.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "control/mpc.h"
#include "geom/angle.h"

namespace rtr {
namespace {

TEST(UnicycleModel, StepIntegratesPose)
{
    UnicycleState state;
    state.theta = 0.0;
    UnicycleState next = MpcController::step(state, 1.0, 0.0, 0.5);
    EXPECT_NEAR(next.x, 0.5, 1e-12);
    EXPECT_NEAR(next.y, 0.0, 1e-12);
    EXPECT_DOUBLE_EQ(next.v, 1.0);

    UnicycleState turned = MpcController::step(state, 0.0, 1.0, 0.5);
    EXPECT_NEAR(turned.theta, 0.5, 1e-12);
}

TEST(MpcSolve, DrivesTowardsReference)
{
    MpcConfig config;
    MpcController controller(config);
    UnicycleState state;
    state.v = 1.0;
    // Reference directly ahead.
    std::vector<Vec2> reference;
    for (int i = 0; i < config.horizon; ++i)
        reference.push_back({0.1 * (i + 1), 0.0});
    MpcSolution solution = controller.solve(state, reference);
    ASSERT_EQ(solution.v.size(),
              static_cast<std::size_t>(config.horizon));
    // The first command moves forward, not backward.
    EXPECT_GT(solution.v[0], 0.0);
    EXPECT_GT(solution.cost_evals, 0u);
}

TEST(MpcSolve, RespectsVelocityBounds)
{
    MpcConfig config;
    config.v_max = 1.5;
    MpcController controller(config);
    UnicycleState state;
    // Reference racing away: optimizer would love v > v_max.
    std::vector<Vec2> reference;
    for (int i = 0; i < config.horizon; ++i)
        reference.push_back({1.0 * (i + 1), 0.0});
    MpcSolution solution = controller.solve(state, reference);
    for (double v : solution.v) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, config.v_max + 1e-12);
    }
    for (double omega : solution.omega)
        EXPECT_LE(std::abs(omega), config.omega_max + 1e-12);
}

TEST(MpcSolve, OptimizationImprovesOnZeroControls)
{
    MpcConfig config;
    MpcController controller(config);
    UnicycleState state;
    state.v = 1.0;
    std::vector<Vec2> reference;
    for (int i = 0; i < config.horizon; ++i)
        reference.push_back({0.1 * (i + 1), 0.05 * (i + 1)});
    MpcSolution solution = controller.solve(state, reference);

    // Cost of doing nothing (v = omega = 0): every step pays the full
    // tracking deviation.
    double idle_cost = 0.0;
    UnicycleState idle = state;
    for (int k = 0; k < config.horizon; ++k) {
        idle = MpcController::step(idle, 0.0, 0.0, config.dt);
        double dx = idle.x - reference[static_cast<std::size_t>(k)].x;
        double dy = idle.y - reference[static_cast<std::size_t>(k)].y;
        idle_cost += config.w_tracking * (dx * dx + dy * dy);
        // Plus the smoothness penalty of the braking step.
        if (k == 0)
            idle_cost += config.w_smooth * state.v * state.v;
    }
    EXPECT_LT(solution.cost, idle_cost);
}

TEST(TrackTrajectory, FollowsStraightLineClosely)
{
    MpcConfig config;
    MpcController controller(config);
    std::vector<Vec2> reference;
    for (int i = 0; i < 60; ++i)
        reference.push_back({0.12 * i, 0.0});
    UnicycleState start;
    start.v = 1.2;
    TrackingResult result =
        trackTrajectory(controller, reference, start);
    EXPECT_LT(result.avg_error, 0.1);
    EXPECT_LE(result.max_velocity, config.v_max + 1e-9);
    EXPECT_EQ(result.states.size(), reference.size());
}

TEST(TrackTrajectory, FollowsCurvedReference)
{
    MpcConfig config;
    MpcController controller(config);
    std::vector<Vec2> reference = makeReferenceTrajectory(80, 0.12);
    UnicycleState start;
    start.x = reference.front().x;
    start.y = reference.front().y;
    Vec2 dir = reference[1] - reference[0];
    start.theta = std::atan2(dir.y, dir.x);
    start.v = 1.2;
    TrackingResult result =
        trackTrajectory(controller, reference, start);
    EXPECT_LT(result.avg_error, 0.15);
    EXPECT_LT(result.max_error, 0.5);
}

TEST(TrackTrajectory, ProfilerDominatedByOptimize)
{
    MpcConfig config;
    config.opt_iterations = 20;
    MpcController controller(config);
    std::vector<Vec2> reference = makeReferenceTrajectory(30, 0.12);
    PhaseProfiler profiler;
    UnicycleState start;
    start.x = reference.front().x;
    start.y = reference.front().y;
    trackTrajectory(controller, reference, start, &profiler);
    EXPECT_GT(profiler.phaseNs("optimize"),
              profiler.phaseNs("simulate") * 10);
}

TEST(ReferenceTrajectory, SpacingRoughlyUniform)
{
    std::vector<Vec2> reference = makeReferenceTrajectory(100, 0.2);
    ASSERT_EQ(reference.size(), 100u);
    for (std::size_t i = 1; i < reference.size(); ++i) {
        double step = reference[i].distanceTo(reference[i - 1]);
        EXPECT_NEAR(step, 0.2, 1e-9);
    }
}

} // namespace
} // namespace rtr

/**
 * @file
 * Tests for the backward-Dijkstra heuristic and the moving-target
 * space-time planner.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "search/dijkstra_heuristic.h"
#include "search/spacetime_planner.h"
#include "util/rng.h"

namespace rtr {
namespace {

TEST(DijkstraHeuristic, ZeroAtSourcesMonotoneOutward)
{
    CostGrid2D field(16, 16, 1.0);
    DijkstraHeuristic heuristic(field, {{8, 8}});
    EXPECT_DOUBLE_EQ(heuristic.costToSource({8, 8}), 0.0);
    EXPECT_GT(heuristic.costToSource({9, 8}), 0.0);
    EXPECT_GT(heuristic.costToSource({12, 8}),
              heuristic.costToSource({10, 8}));
}

TEST(DijkstraHeuristic, UniformFieldMatchesOctileDistance)
{
    CostGrid2D field(32, 32, 1.0);
    DijkstraHeuristic heuristic(field, {{0, 0}});
    // Octile distance on a unit-cost field.
    for (int x = 0; x < 8; ++x) {
        for (int y = 0; y < 8; ++y) {
            int dmax = std::max(x, y), dmin = std::min(x, y);
            double expected = (dmax - dmin) + std::sqrt(2.0) * dmin;
            EXPECT_NEAR(heuristic.costToSource({x, y}), expected, 1e-9);
        }
    }
}

TEST(DijkstraHeuristic, RespectsImpassableCells)
{
    CostGrid2D field(16, 3, 1.0);
    // Full-height wall at x = 8.
    for (int y = 0; y < 3; ++y)
        field.set(8, y, CostGrid2D::kImpassable);
    DijkstraHeuristic heuristic(field, {{0, 1}});
    EXPECT_FALSE(heuristic.reachable({12, 1}));
    EXPECT_TRUE(heuristic.reachable({7, 1}));
}

TEST(DijkstraHeuristic, MultiSourceTakesNearest)
{
    CostGrid2D field(32, 32, 1.0);
    DijkstraHeuristic multi(field, {{0, 0}, {31, 0}});
    DijkstraHeuristic left(field, {{0, 0}});
    DijkstraHeuristic right(field, {{31, 0}});
    for (int x = 0; x < 32; x += 5) {
        Cell2 c{x, 3};
        EXPECT_NEAR(multi.costToSource(c),
                    std::min(left.costToSource(c),
                             right.costToSource(c)),
                    1e-9);
    }
}

TEST(DijkstraHeuristic, CostsWeightEdges)
{
    CostGrid2D field(8, 1, 1.0);
    field.set(3, 0, 9.0);  // expensive cell on the only path
    DijkstraHeuristic heuristic(field, {{0, 0}});
    // Cost through cells: edges average adjacent cell costs.
    double expected = 0.5 * (1 + 1) + 0.5 * (1 + 1) + 0.5 * (1 + 9) +
                      0.5 * (9 + 1) + 0.5 * (1 + 1);
    EXPECT_NEAR(heuristic.costToSource({5, 0}), expected, 1e-9);
}

TEST(Movtar, CatchesStationaryTarget)
{
    CostGrid2D field(24, 24, 1.0);
    MovingTargetProblem problem;
    problem.field = &field;
    problem.target_trajectory.assign(5, Cell2{20, 20});
    problem.robot_start = {2, 2};
    SpacetimePlan plan = planMovingTarget(problem);
    ASSERT_TRUE(plan.found);
    EXPECT_EQ(plan.path.back().cell, (Cell2{20, 20}));
    // 8-connected meet: 18 diagonal steps needed.
    EXPECT_GE(plan.catch_time, 18);
}

TEST(Movtar, PathIsTimeConsistent)
{
    CostGrid2D field = makeCostField(32, 32, 3);
    Cell2 target_start{25, 25};
    while (!field.passable(target_start.x, target_start.y))
        target_start.x -= 1;
    MovingTargetProblem problem;
    problem.field = &field;
    problem.target_trajectory =
        makeTargetTrajectory(field, target_start, 60, 4);
    Cell2 robot{3, 3};
    while (!field.passable(robot.x, robot.y))
        robot.x += 1;
    problem.robot_start = robot;

    SpacetimePlan plan = planMovingTarget(problem);
    ASSERT_TRUE(plan.found);
    // Time increases by exactly 1 per step; moves are 8-connected (or
    // waiting); every visited cell is passable.
    for (std::size_t i = 0; i + 1 < plan.path.size(); ++i) {
        EXPECT_EQ(plan.path[i + 1].time, plan.path[i].time + 1);
        EXPECT_LE(std::abs(plan.path[i + 1].cell.x - plan.path[i].cell.x),
                  1);
        EXPECT_LE(std::abs(plan.path[i + 1].cell.y - plan.path[i].cell.y),
                  1);
        EXPECT_TRUE(field.passable(plan.path[i].cell.x,
                                   plan.path[i].cell.y));
    }
    // The catch is real: robot and target coincide at catch time.
    const auto &traj = problem.target_trajectory;
    Cell2 target_at_catch =
        plan.catch_time < static_cast<int>(traj.size())
            ? traj[static_cast<std::size_t>(plan.catch_time)]
            : traj.back();
    EXPECT_EQ(plan.path.back().cell, target_at_catch);
}

TEST(Movtar, LowerEpsilonNeverCostsMore)
{
    CostGrid2D field = makeCostField(40, 40, 7);
    Cell2 target_start{32, 32};
    while (!field.passable(target_start.x, target_start.y))
        target_start.x -= 1;
    Cell2 robot{4, 4};
    while (!field.passable(robot.x, robot.y))
        robot.x += 1;

    MovingTargetProblem problem;
    problem.field = &field;
    problem.target_trajectory =
        makeTargetTrajectory(field, target_start, 80, 9);
    problem.robot_start = robot;

    problem.epsilon = 1.0;
    SpacetimePlan tight = planMovingTarget(problem);
    problem.epsilon = 3.0;
    SpacetimePlan loose = planMovingTarget(problem);
    ASSERT_TRUE(tight.found);
    ASSERT_TRUE(loose.found);
    EXPECT_LE(tight.cost, loose.cost + 1e-9);
    // The inflated search typically expands fewer nodes.
    EXPECT_LE(loose.expanded, tight.expanded * 2);
}

TEST(Movtar, ImpossibleWhenRobotSealedOff)
{
    CostGrid2D field(16, 16, 1.0);
    for (int x = 0; x < 16; ++x)
        field.set(x, 8, CostGrid2D::kImpassable);
    MovingTargetProblem problem;
    problem.field = &field;
    problem.target_trajectory.assign(4, Cell2{8, 14});
    problem.robot_start = {8, 2};
    problem.time_slack = 64;
    SpacetimePlan plan = planMovingTarget(problem);
    EXPECT_FALSE(plan.found);
}

TEST(TargetTrajectory, StaysPassableAndConnected)
{
    CostGrid2D field = makeCostField(48, 48, 11);
    Cell2 start{24, 24};
    while (!field.passable(start.x, start.y))
        start.x += 1;
    auto traj = makeTargetTrajectory(field, start, 100, 13);
    ASSERT_EQ(traj.size(), 100u);
    EXPECT_EQ(traj.front(), start);
    for (std::size_t i = 0; i < traj.size(); ++i) {
        EXPECT_TRUE(field.passable(traj[i].x, traj[i].y));
        if (i > 0) {
            EXPECT_LE(std::abs(traj[i].x - traj[i - 1].x), 1);
            EXPECT_LE(std::abs(traj[i].y - traj[i - 1].y), 1);
        }
    }
}

} // namespace
} // namespace rtr

/**
 * @file
 * Tests for the second batch of extensions: RRT-Connect, line-of-sight
 * grid-path smoothing, and DMP temporal scaling.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arm/cspace.h"
#include "arm/workspace.h"
#include "control/dmp.h"
#include "geom/angle.h"
#include "grid/map_gen.h"
#include "plan/rrt.h"
#include "plan/rrt_connect.h"
#include "search/grid_planner2d.h"
#include "search/path_smoothing.h"
#include "util/rng.h"

namespace rtr {
namespace {

class RrtConnectTest : public ::testing::Test
{
  protected:
    RrtConnectTest()
        : arm_(PlanarArm::uniform({0.25, 0.0}, 4, 0.45)),
          workspace_(makeMapC()),
          space_(4, -kPi, kPi),
          checker_(arm_, workspace_)
    {
        Rng rng(77);
        start_ = sampleFree(rng);
        do {
            goal_ = sampleFree(rng);
        } while (ConfigSpace::distance(start_, goal_) < 1.2);
    }

    ArmConfig
    sampleFree(Rng &rng)
    {
        while (true) {
            ArmConfig q = space_.sample(rng);
            if (!checker_.configCollides(q))
                return q;
        }
    }

    PlanarArm arm_;
    Workspace workspace_;
    ConfigSpace space_;
    ArmCollisionChecker checker_;
    ArmConfig start_, goal_;
};

TEST_F(RrtConnectTest, FindsValidPath)
{
    RrtConnectPlanner planner(space_, checker_, {});
    Rng rng(1);
    MotionPlan plan = planner.plan(start_, goal_, rng);
    ASSERT_TRUE(plan.found);
    EXPECT_EQ(plan.path.front(), start_);
    EXPECT_EQ(plan.path.back(), goal_);
    for (std::size_t i = 0; i + 1 < plan.path.size(); ++i) {
        EXPECT_FALSE(
            checker_.motionCollides(plan.path[i], plan.path[i + 1],
                                    0.05))
            << "segment " << i;
    }
}

TEST_F(RrtConnectTest, UsesFewerSamplesThanRrtOnAverage)
{
    RrtPlanner rrt(space_, checker_, {});
    RrtConnectPlanner connect(space_, checker_, {});
    double rrt_samples = 0.0, connect_samples = 0.0;
    int both = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        Rng rng_a(seed), rng_b(seed);
        MotionPlan a = rrt.plan(start_, goal_, rng_a);
        MotionPlan b = connect.plan(start_, goal_, rng_b);
        if (!a.found || !b.found)
            continue;
        ++both;
        rrt_samples += static_cast<double>(a.samples_drawn);
        connect_samples += static_cast<double>(b.samples_drawn);
    }
    ASSERT_GE(both, 4);
    EXPECT_LT(connect_samples, rrt_samples);
}

TEST_F(RrtConnectTest, DeterministicGivenSeed)
{
    RrtConnectPlanner planner(space_, checker_, {});
    Rng rng_a(3), rng_b(3);
    MotionPlan a = planner.plan(start_, goal_, rng_a);
    MotionPlan b = planner.plan(start_, goal_, rng_b);
    ASSERT_EQ(a.found, b.found);
    EXPECT_DOUBLE_EQ(a.cost, b.cost);
    EXPECT_EQ(a.samples_drawn, b.samples_drawn);
}

TEST_F(RrtConnectTest, FailsOnCollidingEndpoint)
{
    RrtConnectPlanner planner(space_, checker_, {});
    Rng rng(4);
    ArmConfig bad(4, -kPi / 2.0);
    EXPECT_FALSE(planner.plan(bad, goal_, rng).found);
}

TEST(PathSmoothing, LineOfSightDetectsBlockers)
{
    OccupancyGrid2D grid(16, 16, 1.0);
    EXPECT_TRUE(hasLineOfSight(grid, {1, 1}, {14, 9}));
    grid.setOccupied(8, 5);
    EXPECT_FALSE(hasLineOfSight(grid, {1, 1}, {14, 9}));
    // A path around it still sees its own segments.
    EXPECT_TRUE(hasLineOfSight(grid, {1, 1}, {1, 14}));
}

TEST(PathSmoothing, NeverLengthensAndPreservesEndpoints)
{
    Rng rng(5);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        OccupancyGrid2D grid = makeRandomObstacleMap(48, 48, 0.12, seed);
        GridPlanner2D planner(grid);
        Cell2 start{2, 2}, goal{45, 44};
        while (grid.occupied(start.x, start.y))
            ++start.x;
        while (grid.occupied(goal.x, goal.y))
            --goal.x;
        GridPlan2D plan = planner.plan(start, goal);
        if (!plan.found)
            continue;

        std::vector<Cell2> smooth = smoothGridPath(grid, plan.path);
        EXPECT_EQ(smooth.front(), plan.path.front());
        EXPECT_EQ(smooth.back(), plan.path.back());
        EXPECT_LE(smooth.size(), plan.path.size());
        EXPECT_LE(gridPathLength(grid, smooth),
                  gridPathLength(grid, plan.path) + 1e-9);
        // Every smoothed segment is actually traversable.
        for (std::size_t i = 0; i + 1 < smooth.size(); ++i)
            EXPECT_TRUE(hasLineOfSight(grid, smooth[i], smooth[i + 1]));
    }
}

TEST(PathSmoothing, StraightCorridorCollapsesToTwoPoints)
{
    OccupancyGrid2D grid(20, 5, 1.0);
    std::vector<Cell2> path;
    for (int x = 1; x < 19; ++x)
        path.push_back({x, 2});
    std::vector<Cell2> smooth = smoothGridPath(grid, path);
    EXPECT_EQ(smooth.size(), 2u);
}

TEST(DmpTemporalScaling, SlowerRolloutSameShape)
{
    const int n = 200;
    const double dt = 0.005;
    std::vector<double> demo(n);
    for (int i = 0; i < n; ++i) {
        double t = static_cast<double>(i) / (n - 1);
        demo[static_cast<std::size_t>(i)] =
            t + 0.2 * std::sin(2.0 * kPi * t);
    }
    Dmp1D dmp;
    dmp.fit(demo, dt);

    DmpTrajectory normal = dmp.rollout(n, dt);
    DmpTrajectory slow =
        dmp.rolloutScaled(2 * n, dt, dmp.demoStart(), dmp.demoGoal(),
                          2.0);

    // Same spatial trajectory at half speed: slow[2k] ~= normal[k].
    double max_err = 0.0;
    for (int k = 0; k < n; k += 5) {
        max_err = std::max(
            max_err,
            std::abs(slow.position[static_cast<std::size_t>(2 * k)] -
                     normal.position[static_cast<std::size_t>(k)]));
    }
    EXPECT_LT(max_err, 0.05);

    // Velocities shrink by ~the time scale.
    double peak_normal = 0.0, peak_slow = 0.0;
    for (double v : normal.velocity)
        peak_normal = std::max(peak_normal, std::abs(v));
    for (double v : slow.velocity)
        peak_slow = std::max(peak_slow, std::abs(v));
    EXPECT_NEAR(peak_slow, peak_normal / 2.0, 0.15 * peak_normal);
}

TEST(DmpTemporalScaling, FasterRolloutStillReachesGoal)
{
    const int n = 200;
    const double dt = 0.005;
    std::vector<double> demo(n);
    for (int i = 0; i < n; ++i) {
        double t = static_cast<double>(i) / (n - 1);
        demo[static_cast<std::size_t>(i)] = 2.0 * t * t * (3 - 2 * t);
    }
    Dmp1D dmp;
    dmp.fit(demo, dt);
    DmpTrajectory fast =
        dmp.rolloutScaled(n, dt, 0.0, 2.0, 0.5);
    // At half the duration, the goal is reached well before the end.
    EXPECT_NEAR(fast.position.back(), 2.0, 0.1);
}

} // namespace
} // namespace rtr

/**
 * @file
 * Tests for occupancy grids, map I/O, and the synthetic map generators.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <sstream>

#include "grid/map_gen.h"
#include "grid/map_io.h"
#include "grid/occupancy_grid2d.h"
#include "grid/occupancy_grid3d.h"
#include "util/rng.h"

namespace rtr {
namespace {

TEST(OccupancyGrid2D, SetAndGet)
{
    OccupancyGrid2D grid(10, 8);
    EXPECT_FALSE(grid.occupied(3, 3));
    grid.setOccupied(3, 3);
    EXPECT_TRUE(grid.occupied(3, 3));
    grid.setOccupied(3, 3, false);
    EXPECT_FALSE(grid.occupied(3, 3));
}

TEST(OccupancyGrid2D, OutOfBoundsIsOccupied)
{
    OccupancyGrid2D grid(4, 4);
    EXPECT_TRUE(grid.occupied(-1, 0));
    EXPECT_TRUE(grid.occupied(0, -1));
    EXPECT_TRUE(grid.occupied(4, 0));
    EXPECT_TRUE(grid.occupied(0, 4));
    // Writes outside are ignored, not UB.
    grid.setOccupied(-5, -5);
    SUCCEED();
}

TEST(OccupancyGrid2D, WorldCellRoundTrip)
{
    OccupancyGrid2D grid(10, 10, 0.5, Vec2{-2.0, 3.0});
    Cell2 cell = grid.worldToCell({-1.9, 3.1});
    EXPECT_EQ(cell, (Cell2{0, 0}));
    Vec2 center = grid.cellCenter({0, 0});
    EXPECT_DOUBLE_EQ(center.x, -1.75);
    EXPECT_DOUBLE_EQ(center.y, 3.25);
    // Cell centers map back to their own cell.
    for (int x = 0; x < 10; ++x) {
        for (int y = 0; y < 10; ++y) {
            EXPECT_EQ(grid.worldToCell(grid.cellCenter({x, y})),
                      (Cell2{x, y}));
        }
    }
}

TEST(OccupancyGrid2D, Counters)
{
    OccupancyGrid2D grid(4, 4);
    EXPECT_EQ(grid.freeCellCount(), 16u);
    grid.setOccupied(0, 0);
    grid.setOccupied(1, 1);
    EXPECT_EQ(grid.freeCellCount(), 14u);
    EXPECT_DOUBLE_EQ(grid.occupancyRatio(), 2.0 / 16.0);
}

TEST(OccupancyGrid2D, PopcountCountersMatchByteSweep)
{
    // Popcount-derived counters must agree with a brute-force sweep of
    // the byte mirror after arbitrary edits (sets, clears, redundant
    // writes, out-of-bounds writes). Width 70 exercises a partial
    // trailing word; the padding bits must never leak into the count.
    OccupancyGrid2D grid(70, 41);
    Rng rng(17);
    for (int round = 0; round < 50; ++round) {
        for (int e = 0; e < 40; ++e) {
            grid.setOccupied(static_cast<int>(rng.index(80)) - 5,
                             static_cast<int>(rng.index(50)) - 5,
                             rng.uniform() < 0.6);
        }
        std::size_t occupied = 0;
        for (std::uint8_t cell : grid.cells())
            occupied += cell != 0;
        EXPECT_EQ(grid.freeCellCount(), 70u * 41u - occupied)
            << "round " << round;
        EXPECT_NEAR(grid.occupancyRatio(),
                    static_cast<double>(occupied) / (70.0 * 41.0), 1e-15)
            << "round " << round;
    }
}

TEST(OccupancyGrid2D, BitboardMirrorsByteArray)
{
    OccupancyGrid2D grid(130, 67);
    Rng rng(23);
    for (int e = 0; e < 3000; ++e) {
        grid.setOccupied(static_cast<int>(rng.index(130)),
                         static_cast<int>(rng.index(67)),
                         rng.uniform() < 0.5);
    }
    for (int y = 0; y < grid.height(); ++y) {
        for (int x = 0; x < grid.width(); ++x) {
            EXPECT_EQ(grid.bits().test(x, y),
                      grid.cells()[static_cast<std::size_t>(y) * 130 + x] !=
                          0)
                << "(" << x << "," << y << ")";
        }
    }
}

TEST(OccupancyGrid2D, PyramidTracksEdits)
{
    // emptyBlockLevel(x, y) == k promises every cell of the aligned
    // 8^k-block containing (x, y) is free. Validate against brute force
    // after random set/clear churn.
    OccupancyGrid2D grid(100, 90);
    ASSERT_GE(grid.pyramidLevels(), 1);
    Rng rng(29);
    for (int e = 0; e < 2000; ++e) {
        grid.setOccupied(static_cast<int>(rng.index(100)),
                         static_cast<int>(rng.index(90)),
                         rng.uniform() < 0.5);
    }
    for (int probe = 0; probe < 400; ++probe) {
        int x = static_cast<int>(rng.index(100));
        int y = static_cast<int>(rng.index(90));
        int level = grid.emptyBlockLevel(x, y);
        if (level > 0) {
            int shift = OccupancyGrid2D::kBlockShift * level;
            int x0 = (x >> shift) << shift, y0 = (y >> shift) << shift;
            for (int cy = y0; cy < y0 + (1 << shift); ++cy) {
                for (int cx = x0; cx < x0 + (1 << shift); ++cx) {
                    if (grid.inBounds(cx, cy))
                        EXPECT_FALSE(grid.occupied(cx, cy))
                            << "level " << level << " block at (" << x0
                            << "," << y0 << ") cell (" << cx << ","
                            << cy << ")";
                }
            }
        } else {
            // Level 0 means the level-1 block has at least one
            // occupied cell.
            int x0 = (x >> 3) << 3, y0 = (y >> 3) << 3;
            bool any = false;
            for (int cy = y0; cy < y0 + 8 && !any; ++cy) {
                for (int cx = x0; cx < x0 + 8 && !any; ++cx)
                    any = grid.inBounds(cx, cy) && grid.occupied(cx, cy);
            }
            EXPECT_TRUE(any) << "block at (" << x0 << "," << y0 << ")";
        }
    }
}

TEST(OccupancyGrid3D, PopcountCountersMatchBruteForce)
{
    OccupancyGrid3D grid(33, 9, 7);
    Rng rng(41);
    for (int e = 0; e < 800; ++e) {
        grid.setOccupied(static_cast<int>(rng.index(33)),
                         static_cast<int>(rng.index(9)),
                         static_cast<int>(rng.index(7)),
                         rng.uniform() < 0.5);
    }
    std::size_t occupied = 0;
    for (int z = 0; z < 7; ++z) {
        for (int y = 0; y < 9; ++y) {
            for (int x = 0; x < 33; ++x)
                occupied += grid.occupied(x, y, z);
        }
    }
    EXPECT_EQ(grid.freeCellCount(), 33u * 9u * 7u - occupied);
}

TEST(OccupancyGrid3D, BasicOps)
{
    OccupancyGrid3D grid(4, 5, 6);
    EXPECT_FALSE(grid.occupied(1, 2, 3));
    grid.setOccupied(1, 2, 3);
    EXPECT_TRUE(grid.occupied(1, 2, 3));
    EXPECT_TRUE(grid.occupied(-1, 0, 0));
    EXPECT_TRUE(grid.occupied(0, 0, 6));
}

TEST(OccupancyGrid3D, FillBox)
{
    OccupancyGrid3D grid(8, 8, 8);
    grid.fillBox({1, 1, 1}, {3, 3, 3});
    EXPECT_TRUE(grid.occupied(2, 2, 2));
    EXPECT_TRUE(grid.occupied(1, 1, 1));
    EXPECT_TRUE(grid.occupied(3, 3, 3));
    EXPECT_FALSE(grid.occupied(4, 3, 3));
    EXPECT_EQ(grid.freeCellCount(), 512u - 27u);
    // Clamping against bounds must not crash.
    grid.fillBox({-5, -5, -5}, {20, 20, 20}, false);
    EXPECT_EQ(grid.freeCellCount(), 512u);
}

TEST(MapIo, RoundTrip)
{
    OccupancyGrid2D grid(5, 4);
    grid.setOccupied(1, 2);
    grid.setOccupied(4, 0);

    std::stringstream stream;
    saveMovingAiMap(grid, stream);
    OccupancyGrid2D loaded = loadMovingAiMap(stream);

    ASSERT_EQ(loaded.width(), 5);
    ASSERT_EQ(loaded.height(), 4);
    for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 5; ++x)
            EXPECT_EQ(loaded.occupied(x, y), grid.occupied(x, y))
                << "(" << x << "," << y << ")";
    }
}

TEST(MapIo, ParsesMovingAiFormat)
{
    std::stringstream stream(
        "type octile\nheight 2\nwidth 3\nmap\n.@T\nG.S\n");
    OccupancyGrid2D grid = loadMovingAiMap(stream);
    ASSERT_EQ(grid.width(), 3);
    ASSERT_EQ(grid.height(), 2);
    // File row 0 is the top (y = 1): ". @ T".
    EXPECT_FALSE(grid.occupied(0, 1));
    EXPECT_TRUE(grid.occupied(1, 1));
    EXPECT_TRUE(grid.occupied(2, 1));
    // File row 1 is the bottom (y = 0): "G . S" (all passable).
    EXPECT_FALSE(grid.occupied(0, 0));
    EXPECT_FALSE(grid.occupied(1, 0));
    EXPECT_FALSE(grid.occupied(2, 0));
}

TEST(MapGen, IndoorMapDeterministicAndWalled)
{
    OccupancyGrid2D a = makeIndoorMap(120, 80, 0.25, 7);
    OccupancyGrid2D b = makeIndoorMap(120, 80, 0.25, 7);
    EXPECT_EQ(a.cells(), b.cells());
    OccupancyGrid2D c = makeIndoorMap(120, 80, 0.25, 8);
    EXPECT_NE(a.cells(), c.cells());
    // Perimeter walls.
    for (int x = 0; x < a.width(); ++x) {
        EXPECT_TRUE(a.occupied(x, 0));
        EXPECT_TRUE(a.occupied(x, a.height() - 1));
    }
    // The map is neither empty nor full.
    double ratio = a.occupancyRatio();
    EXPECT_GT(ratio, 0.05);
    EXPECT_LT(ratio, 0.6);
}

TEST(MapGen, CityMapHasStreetsAndBuildings)
{
    OccupancyGrid2D city = makeCityMap(256, 0.5, 3);
    double ratio = city.occupancyRatio();
    EXPECT_GT(ratio, 0.15);
    EXPECT_LT(ratio, 0.9);
}

TEST(MapGen, PRobMapStructure)
{
    OccupancyGrid2D map = makePRobMap();
    EXPECT_EQ(map.width(), 71);
    EXPECT_EQ(map.height(), 71);
    // World origin is (-10, -10).
    EXPECT_TRUE(map.occupiedWorld({-10.0, 0.0}));   // left border
    EXPECT_TRUE(map.occupiedWorld({20.0, 0.0}));    // first wall
    EXPECT_FALSE(map.occupiedWorld({20.0, 50.0}));  // above first wall
    EXPECT_TRUE(map.occupiedWorld({40.0, 50.0}));   // second wall
    EXPECT_FALSE(map.occupiedWorld({40.0, 0.0}));   // below second wall
    EXPECT_FALSE(map.occupiedWorld({10.0, 10.0}));  // start is free
    EXPECT_FALSE(map.occupiedWorld({50.0, 50.0}));  // goal is free
}

TEST(MapGen, ScaleMapPreservesStructure)
{
    OccupancyGrid2D base = makeRandomObstacleMap(32, 32, 0.2, 5);
    OccupancyGrid2D scaled = scaleMap(base, 4);
    EXPECT_EQ(scaled.width(), 128);
    EXPECT_EQ(scaled.height(), 128);
    EXPECT_DOUBLE_EQ(scaled.resolution(), base.resolution() / 4.0);
    // Same occupancy ratio and same world-space occupancy.
    EXPECT_NEAR(scaled.occupancyRatio(), base.occupancyRatio(), 1e-12);
    for (int y = 0; y < base.height(); ++y) {
        for (int x = 0; x < base.width(); ++x) {
            EXPECT_EQ(scaled.occupied(4 * x + 1, 4 * y + 2),
                      base.occupied(x, y));
        }
    }
}

TEST(MapGen, Campus3DHasGroundAndAir)
{
    OccupancyGrid3D campus = makeCampus3D(64, 64, 16, 1.0, 11);
    // The ground plane is solid.
    for (int x = 0; x < 64; x += 7)
        EXPECT_TRUE(campus.occupied(x, x % 64, 0));
    // High altitude is mostly free.
    std::size_t free_at_top = 0;
    for (int x = 0; x < 64; ++x) {
        for (int y = 0; y < 64; ++y)
            free_at_top += !campus.occupied(x, y, 15);
    }
    EXPECT_GT(free_at_top, 64u * 64u / 2);
}

/**
 * Every mirror (byte array, bitboard, every pyramid plane) of a grid
 * maintained by batch APIs must be byte-identical to a twin maintained
 * by the equivalent sequence of setOccupied calls.
 */
void
expectGridsByteIdentical(const OccupancyGrid2D &a, const OccupancyGrid2D &b,
                         const char *what)
{
    ASSERT_EQ(a.cells(), b.cells()) << what << ": byte mirror differs";
    ASSERT_EQ(a.bits().words(), b.bits().words())
        << what << ": bitboard differs";
    ASSERT_EQ(a.pyramidLevels(), b.pyramidLevels());
    for (int level = 1; level <= a.pyramidLevels(); ++level) {
        ASSERT_EQ(a.pyramidLevel(level).words(),
                  b.pyramidLevel(level).words())
            << what << ": pyramid level " << level << " differs";
    }
}

TEST(OccupancyGrid2D, ApplyEditsMatchesSequentialSetOccupied)
{
    OccupancyGrid2D batch(200, 130, 0.5);
    OccupancyGrid2D twin(200, 130, 0.5);
    Rng rng(101);
    std::vector<CellEdit> edits;
    for (int round = 0; round < 50; ++round) {
        edits.clear();
        const int n = 1 + static_cast<int>(rng.index(120));
        for (int e = 0; e < n; ++e) {
            // Mix clustered and scattered edits, duplicates of the
            // same cell (later writes must win), and out-of-bounds
            // writes (must be ignored).
            int x = static_cast<int>(rng.index(208)) - 4;
            int y = static_cast<int>(rng.index(138)) - 4;
            edits.push_back({x, y, rng.uniform() < 0.5});
            if (rng.uniform() < 0.2)
                edits.push_back({x, y, rng.uniform() < 0.5});
        }
        batch.applyEdits(edits);
        for (const CellEdit &e : edits)
            twin.setOccupied(e.x, e.y, e.occupied);
        expectGridsByteIdentical(batch, twin, "applyEdits");
    }
}

TEST(OccupancyGrid2D, ApplyEditsEmptyAndAllOutOfBoundsAreNoOps)
{
    OccupancyGrid2D grid(40, 40);
    grid.setOccupied(5, 5);
    OccupancyGrid2D twin(40, 40);
    twin.setOccupied(5, 5);
    grid.applyEdits({});
    std::vector<CellEdit> oob{{-1, 0, true}, {40, 39, true}, {0, -7, false}};
    grid.applyEdits(oob);
    expectGridsByteIdentical(grid, twin, "no-op applyEdits");
}

TEST(OccupancyGrid2D, SetRectMatchesSequentialSetOccupied)
{
    OccupancyGrid2D batch(150, 90, 1.0);
    OccupancyGrid2D twin(150, 90, 1.0);
    Rng rng(77);
    for (int round = 0; round < 60; ++round) {
        // Rects of every shape: cells, rows, columns, blocks spanning
        // word and pyramid boundaries, partly out of bounds.
        int x0 = static_cast<int>(rng.index(160)) - 5;
        int y0 = static_cast<int>(rng.index(100)) - 5;
        int x1 = x0 + static_cast<int>(rng.index(70));
        int y1 = y0 + static_cast<int>(rng.index(40));
        bool value = rng.uniform() < 0.6;
        batch.setRect(x0, y0, x1, y1, value);
        for (int y = y0; y <= y1; ++y)
            for (int x = x0; x <= x1; ++x)
                twin.setOccupied(x, y, value);
        expectGridsByteIdentical(batch, twin, "setRect");
    }
}

TEST(OccupancyGrid2D, ClearPathPyramidRepairStaysConsistent)
{
    // Dense fill then cell-by-cell clears: the clear path's per-level
    // early-exit block rescan must keep every pyramid bit equal to the
    // OR of its child block (checked via emptyBlockLevel agreeing with
    // a from-scratch grid).
    OccupancyGrid2D grid(64, 64);
    grid.setRect(0, 0, 63, 63, true);
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        grid.setOccupied(static_cast<int>(rng.index(64)),
                         static_cast<int>(rng.index(64)), false);
    }
    OccupancyGrid2D rebuilt(64, 64);
    for (int y = 0; y < 64; ++y)
        for (int x = 0; x < 64; ++x)
            if (grid.occupiedUnchecked(x, y))
                rebuilt.setOccupied(x, y, true);
    expectGridsByteIdentical(grid, rebuilt, "clear-path repair");
}

TEST(CostGrid, FieldProperties)
{
    CostGrid2D field = makeCostField(64, 64, 9, 1.0, 10.0, 0.05);
    int impassable = 0;
    for (int y = 0; y < 64; ++y) {
        for (int x = 0; x < 64; ++x) {
            double c = field.cost(x, y);
            if (c >= CostGrid2D::kImpassable) {
                ++impassable;
            } else {
                EXPECT_GE(c, 1.0);
                EXPECT_LE(c, 10.0);
            }
        }
    }
    EXPECT_GT(impassable, 0);
    EXPECT_LT(impassable, 64 * 64 / 4);
    // Out of bounds is impassable.
    EXPECT_FALSE(field.passable(-1, 0));
    EXPECT_FALSE(field.passable(0, 64));
}

TEST(CostGrid, SetAndGet)
{
    CostGrid2D field(4, 4, 2.0);
    EXPECT_DOUBLE_EQ(field.cost(1, 1), 2.0);
    field.set(1, 1, 7.5);
    EXPECT_DOUBLE_EQ(field.cost(1, 1), 7.5);
    EXPECT_TRUE(field.passable(1, 1));
    field.set(1, 1, CostGrid2D::kImpassable);
    EXPECT_FALSE(field.passable(1, 1));
}

} // namespace
} // namespace rtr

/**
 * @file
 * Failure-injection tests: user errors must die through fatal() with a
 * diagnostic (exit code 1), and internal contract violations through
 * panic() (abort). Uses gtest death tests.
 */

#include <gtest/gtest.h>

#include "grid/map_io.h"
#include "kernels/registry.h"
#include "linalg/decomp.h"
#include "util/args.h"
#include "util/stats.h"

namespace rtr {
namespace {

using FailuresDeathTest = ::testing::Test;

TEST(FailuresDeathTest, UnknownOptionIsFatal)
{
    ArgParser parser("tool");
    parser.addOption("known", "1", "a known option");
    EXPECT_EXIT(parser.parse({"--unknown", "3"}),
                ::testing::ExitedWithCode(1), "unknown argument");
}

TEST(FailuresDeathTest, MissingOptionValueIsFatal)
{
    ArgParser parser("tool");
    parser.addOption("samples", "1", "sample count");
    EXPECT_EXIT(parser.parse({"--samples"}),
                ::testing::ExitedWithCode(1), "expects a value");
}

TEST(FailuresDeathTest, NonNumericValueIsFatal)
{
    ArgParser parser("tool");
    parser.addOption("epsilon", "1.0", "weight");
    parser.parse({"--epsilon", "fast"});
    EXPECT_EXIT(parser.getDouble("epsilon"),
                ::testing::ExitedWithCode(1), "expects a number");
}

TEST(FailuresDeathTest, FlagWithValueIsFatal)
{
    ArgParser parser("tool");
    parser.addFlag("verbose", "chatty");
    EXPECT_EXIT(parser.parse({"--verbose=1"}),
                ::testing::ExitedWithCode(1), "does not take a value");
}

TEST(FailuresDeathTest, MissingMapFileIsFatal)
{
    EXPECT_EXIT(loadMovingAiMapFile("/nonexistent/path/boston.map"),
                ::testing::ExitedWithCode(1), "cannot open map file");
}

TEST(FailuresDeathTest, MalformedMapHeaderIsFatal)
{
    std::stringstream stream("type octile\nbananas 7\nmap\n");
    EXPECT_EXIT(loadMovingAiMap(stream), ::testing::ExitedWithCode(1),
                "unexpected token");
}

TEST(FailuresDeathTest, TruncatedMapBodyIsFatal)
{
    std::stringstream stream("height 3\nwidth 3\nmap\n...\n");
    EXPECT_EXIT(loadMovingAiMap(stream), ::testing::ExitedWithCode(1),
                "truncated");
}

TEST(FailuresDeathTest, SingularInverseIsFatal)
{
    Matrix singular{{1, 2}, {2, 4}};
    EXPECT_EXIT(inverse(singular), ::testing::ExitedWithCode(1),
                "singular");
}

TEST(FailuresDeathTest, UnknownKernelIsFatal)
{
    EXPECT_EXIT(makeKernel("warp-drive"), ::testing::ExitedWithCode(1),
                "unknown kernel");
}

TEST(FailuresDeathTest, QuantileOfEmptySetPanics)
{
    EXPECT_DEATH(quantile({}, 0.5), "empty sample set");
}

TEST(FailuresDeathTest, MatrixShapeMismatchPanics)
{
    Matrix a(2, 3), b(2, 3);
    EXPECT_DEATH(a * b, "matmul shape mismatch");
}

TEST(FailuresDeathTest, ReportFileToUnwritablePathIsFatal)
{
    KernelReport report;
    EXPECT_EXIT(writeReportFile(report, "/nonexistent/dir/report.csv"),
                ::testing::ExitedWithCode(1), "cannot write report");
}

} // namespace
} // namespace rtr

/**
 * @file
 * Tests for the fixed- and runtime-dimension k-d trees, verified
 * against brute-force oracles.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "pointcloud/dyn_kdtree.h"
#include "pointcloud/kdtree.h"
#include "util/rng.h"

namespace rtr {
namespace {

template <std::size_t Dim>
std::vector<std::array<double, Dim>>
randomPoints(std::size_t n, Rng &rng)
{
    std::vector<std::array<double, Dim>> points(n);
    for (auto &p : points) {
        for (std::size_t d = 0; d < Dim; ++d)
            p[d] = rng.uniform(-10.0, 10.0);
    }
    return points;
}

TEST(KdTree, EmptyAndSize)
{
    KdTree<3> tree;
    EXPECT_TRUE(tree.empty());
    tree.insert({1, 2, 3}, 0);
    EXPECT_EQ(tree.size(), 1u);
    tree.clear();
    EXPECT_TRUE(tree.empty());
}

TEST(KdTree, SinglePointNearest)
{
    KdTree<2> tree;
    tree.insert({1.0, 1.0}, 42);
    KdHit hit = tree.nearest({0.0, 0.0});
    EXPECT_EQ(hit.id, 42u);
    EXPECT_DOUBLE_EQ(hit.dist2, 2.0);
}

TEST(KdTree, BulkBuildNearestMatchesBruteForce)
{
    Rng rng(5);
    auto points = randomPoints<3>(500, rng);
    KdTree<3> tree;
    tree.build(points);
    for (int q = 0; q < 200; ++q) {
        std::array<double, 3> query{rng.uniform(-12, 12),
                                    rng.uniform(-12, 12),
                                    rng.uniform(-12, 12)};
        KdHit fast = tree.nearest(query);
        KdHit slow = bruteForceNearest<3>(points, query);
        EXPECT_DOUBLE_EQ(fast.dist2, slow.dist2);
    }
}

TEST(KdTree, IncrementalInsertNearestMatchesBruteForce)
{
    Rng rng(6);
    auto points = randomPoints<2>(300, rng);
    KdTree<2> tree;
    for (std::size_t i = 0; i < points.size(); ++i)
        tree.insert(points[i], static_cast<std::uint32_t>(i));
    for (int q = 0; q < 150; ++q) {
        std::array<double, 2> query{rng.uniform(-12, 12),
                                    rng.uniform(-12, 12)};
        KdHit fast = tree.nearest(query);
        KdHit slow = bruteForceNearest<2>(points, query);
        EXPECT_DOUBLE_EQ(fast.dist2, slow.dist2);
    }
}

TEST(KdTree, KNearestSortedAndComplete)
{
    Rng rng(7);
    auto points = randomPoints<3>(200, rng);
    KdTree<3> tree;
    tree.build(points);

    std::array<double, 3> query{0.0, 0.0, 0.0};
    auto hits = tree.kNearest(query, 10);
    ASSERT_EQ(hits.size(), 10u);
    EXPECT_TRUE(std::is_sorted(hits.begin(), hits.end(),
                               [](const KdHit &a, const KdHit &b) {
                                   return a.dist2 < b.dist2;
                               }));

    // Compare against sorted brute-force distances.
    std::vector<double> all;
    for (const auto &p : points) {
        double d2 = 0.0;
        for (int d = 0; d < 3; ++d)
            d2 += p[static_cast<std::size_t>(d)] * p[static_cast<std::size_t>(d)];
        all.push_back(d2);
    }
    std::sort(all.begin(), all.end());
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(hits[i].dist2, all[i]);
}

TEST(KdTree, KNearestWithSmallTree)
{
    KdTree<2> tree;
    tree.insert({0, 0}, 0);
    tree.insert({1, 0}, 1);
    auto hits = tree.kNearest({0, 0}, 5);
    EXPECT_EQ(hits.size(), 2u);
}

TEST(KdTree, RadiusSearchExact)
{
    Rng rng(8);
    auto points = randomPoints<2>(400, rng);
    KdTree<2> tree;
    tree.build(points);

    std::array<double, 2> query{1.0, -2.0};
    double radius = 4.0;
    auto hits = tree.radiusSearch(query, radius);

    std::size_t expected = 0;
    for (const auto &p : points) {
        double dx = p[0] - query[0], dy = p[1] - query[1];
        expected += (dx * dx + dy * dy) <= radius * radius;
    }
    EXPECT_EQ(hits.size(), expected);
    for (const KdHit &hit : hits)
        EXPECT_LE(hit.dist2, radius * radius);
}

/** DynKdTree must agree with brute force across dimensions. */
class DynKdTreeDims : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(DynKdTreeDims, NearestMatchesBruteForce)
{
    const std::size_t dim = GetParam();
    Rng rng(dim * 97 + 1);
    DynKdTree tree(dim);
    std::vector<std::vector<double>> points;
    for (int i = 0; i < 400; ++i) {
        std::vector<double> p(dim);
        for (double &v : p)
            v = rng.uniform(-3.0, 3.0);
        tree.insert(p, static_cast<std::uint32_t>(i));
        points.push_back(std::move(p));
    }
    for (int q = 0; q < 100; ++q) {
        std::vector<double> query(dim);
        for (double &v : query)
            v = rng.uniform(-4.0, 4.0);
        KdHit fast = tree.nearest(query);

        double best = 1e300;
        std::uint32_t best_id = 0;
        for (std::size_t i = 0; i < points.size(); ++i) {
            double d2 = 0.0;
            for (std::size_t d = 0; d < dim; ++d) {
                double diff = points[i][d] - query[d];
                d2 += diff * diff;
            }
            if (d2 < best) {
                best = d2;
                best_id = static_cast<std::uint32_t>(i);
            }
        }
        EXPECT_DOUBLE_EQ(fast.dist2, best);
        EXPECT_EQ(fast.id, best_id);
    }
}

TEST_P(DynKdTreeDims, RadiusMatchesBruteForce)
{
    const std::size_t dim = GetParam();
    Rng rng(dim * 131 + 7);
    DynKdTree tree(dim);
    std::vector<std::vector<double>> points;
    for (int i = 0; i < 300; ++i) {
        std::vector<double> p(dim);
        for (double &v : p)
            v = rng.uniform(-2.0, 2.0);
        tree.insert(p, static_cast<std::uint32_t>(i));
        points.push_back(std::move(p));
    }
    std::vector<double> query(dim, 0.5);
    double radius = 1.2;
    auto hits = tree.radiusSearch(query, radius);
    std::size_t expected = 0;
    for (const auto &p : points) {
        double d2 = 0.0;
        for (std::size_t d = 0; d < dim; ++d) {
            double diff = p[d] - query[d];
            d2 += diff * diff;
        }
        expected += d2 <= radius * radius;
    }
    EXPECT_EQ(hits.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Dims, DynKdTreeDims,
                         ::testing::Values(1, 2, 3, 5, 7));

} // namespace
} // namespace rtr

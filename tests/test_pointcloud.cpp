/**
 * @file
 * Tests for PointCloud, rigid transforms, voxel downsampling, and
 * normal estimation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "geom/angle.h"
#include "pointcloud/icp.h"
#include "pointcloud/point_cloud.h"
#include "util/rng.h"

namespace rtr {
namespace {

RigidTransform3
randomTransform(Rng &rng)
{
    RigidTransform3 t;
    t.rotation = rotationZ(rng.uniform(-kPi, kPi));
    t.translation = {rng.uniform(-2, 2), rng.uniform(-2, 2),
                     rng.uniform(-2, 2)};
    return t;
}

TEST(RigidTransform, IdentityByDefault)
{
    RigidTransform3 t;
    Vec3 p{1, 2, 3};
    EXPECT_EQ(t.apply(p), p);
}

TEST(RigidTransform, ComposeMatchesSequentialApplication)
{
    Rng rng(3);
    for (int i = 0; i < 30; ++i) {
        RigidTransform3 a = randomTransform(rng);
        RigidTransform3 b = randomTransform(rng);
        Vec3 p{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
        Vec3 via_compose = a.compose(b).apply(p);
        Vec3 sequential = a.apply(b.apply(p));
        EXPECT_NEAR((via_compose - sequential).norm(), 0.0, 1e-10);
    }
}

TEST(RigidTransform, InverseUndoes)
{
    Rng rng(4);
    for (int i = 0; i < 30; ++i) {
        RigidTransform3 t = randomTransform(rng);
        Vec3 p{rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3)};
        Vec3 back = t.inverted().apply(t.apply(p));
        EXPECT_NEAR((back - p).norm(), 0.0, 1e-10);
    }
}

TEST(RotationZ, KnownValues)
{
    Matrix r = rotationZ(kPi / 2.0);
    RigidTransform3 t{r, Vec3{}};
    Vec3 rotated = t.apply({1, 0, 0});
    EXPECT_NEAR(rotated.x, 0.0, 1e-12);
    EXPECT_NEAR(rotated.y, 1.0, 1e-12);
    EXPECT_NEAR(rotated.z, 0.0, 1e-12);
}

TEST(Quaternion, IdentityAndKnownRotation)
{
    EXPECT_TRUE(rotationFromQuaternion(1, 0, 0, 0)
                    .approxEquals(Matrix::identity(3)));
    // Quaternion for 90 degrees about z: (cos45, 0, 0, sin45).
    double c = std::cos(kPi / 4.0), s = std::sin(kPi / 4.0);
    EXPECT_TRUE(rotationFromQuaternion(c, 0, 0, s)
                    .approxEquals(rotationZ(kPi / 2.0), 1e-12));
}

TEST(Quaternion, UnnormalizedInputIsNormalized)
{
    Matrix a = rotationFromQuaternion(2, 0, 0, 0);
    EXPECT_TRUE(a.approxEquals(Matrix::identity(3)));
}

TEST(PointCloud, CentroidAndTransform)
{
    PointCloud cloud({{0, 0, 0}, {2, 0, 0}, {0, 2, 0}, {2, 2, 0}});
    EXPECT_EQ(cloud.centroid(), (Vec3{1, 1, 0}));

    RigidTransform3 shift;
    shift.translation = {1, 2, 3};
    PointCloud moved = cloud.transformed(shift);
    EXPECT_EQ(moved.centroid(), (Vec3{2, 3, 3}));
    // Original untouched.
    EXPECT_EQ(cloud.centroid(), (Vec3{1, 1, 0}));
}

TEST(PointCloud, AppendGrows)
{
    PointCloud a({{0, 0, 0}});
    PointCloud b({{1, 1, 1}, {2, 2, 2}});
    a.append(b);
    EXPECT_EQ(a.size(), 3u);
}

TEST(PointCloud, VoxelDownsampleMergesCoLocatedPoints)
{
    PointCloud cloud;
    // 100 points inside one 1.0-voxel.
    Rng rng(5);
    for (int i = 0; i < 100; ++i)
        cloud.add({rng.uniform(0.0, 0.9), rng.uniform(0.0, 0.9),
                   rng.uniform(0.0, 0.9)});
    // And one far away.
    cloud.add({10.0, 10.0, 10.0});
    PointCloud down = cloud.voxelDownsampled(1.0);
    EXPECT_EQ(down.size(), 2u);
}

TEST(PointCloud, VoxelDownsamplePreservesIsolatedPoints)
{
    PointCloud cloud({{0, 0, 0}, {5, 0, 0}, {0, 5, 0}, {-5, -5, -5}});
    PointCloud down = cloud.voxelDownsampled(0.5);
    EXPECT_EQ(down.size(), 4u);
}

TEST(Normals, FlatPlaneHasVerticalNormals)
{
    // Grid of points on z = 0, viewed from above.
    PointCloud cloud;
    for (int x = 0; x < 10; ++x) {
        for (int y = 0; y < 10; ++y)
            cloud.add({0.1 * x, 0.1 * y, 0.0});
    }
    std::vector<Vec3> normals = estimateNormals(cloud, 8, {0.5, 0.5, 5.0});
    ASSERT_EQ(normals.size(), cloud.size());
    for (const Vec3 &n : normals) {
        EXPECT_NEAR(std::abs(n.z), 1.0, 1e-6);
        EXPECT_GT(n.z, 0.0);  // oriented towards the viewpoint
        EXPECT_NEAR(n.norm(), 1.0, 1e-9);
    }
}

TEST(Normals, VerticalWallHasHorizontalNormals)
{
    PointCloud cloud;
    for (int y = 0; y < 10; ++y) {
        for (int z = 0; z < 10; ++z)
            cloud.add({2.0, 0.1 * y, 0.1 * z});
    }
    std::vector<Vec3> normals =
        estimateNormals(cloud, 8, {0.0, 0.5, 0.5});
    for (const Vec3 &n : normals) {
        EXPECT_NEAR(std::abs(n.x), 1.0, 1e-6);
        EXPECT_LT(n.x, 0.0);  // towards the viewpoint at x = 0
    }
}

} // namespace
} // namespace rtr

/**
 * @file
 * Tests for dynamic movement primitives.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "control/dmp.h"
#include "geom/angle.h"

namespace rtr {
namespace {

std::vector<double>
minimumJerk(double start, double goal, int n, double /*dt*/)
{
    std::vector<double> demo(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        double t = static_cast<double>(i) / (n - 1);
        double s = 10 * t * t * t - 15 * t * t * t * t +
                   6 * t * t * t * t * t;
        demo[static_cast<std::size_t>(i)] = start + (goal - start) * s;
    }
    return demo;
}

TEST(Dmp1D, ReachesGoalOfDemonstration)
{
    const int n = 200;
    const double dt = 0.005;
    Dmp1D dmp;
    dmp.fit(minimumJerk(0.0, 2.0, n, dt), dt);
    DmpTrajectory traj = dmp.rollout(n, dt);
    ASSERT_EQ(traj.position.size(), static_cast<std::size_t>(n));
    EXPECT_NEAR(traj.position.back(), 2.0, 0.05);
    EXPECT_NEAR(traj.velocity.back(), 0.0, 0.4);
}

TEST(Dmp1D, TracksDemonstrationShape)
{
    const int n = 200;
    const double dt = 0.005;
    std::vector<double> demo = minimumJerk(1.0, -1.5, n, dt);
    Dmp1D dmp;
    dmp.fit(demo, dt);
    DmpTrajectory traj = dmp.rollout(n, dt);
    double max_err = 0.0;
    for (int i = 0; i < n; ++i)
        max_err = std::max(max_err,
                           std::abs(traj.position[static_cast<std::size_t>(i)] -
                                    demo[static_cast<std::size_t>(i)]));
    EXPECT_LT(max_err, 0.12);
}

TEST(Dmp1D, GeneralizesToNewGoal)
{
    const int n = 200;
    const double dt = 0.005;
    Dmp1D dmp;
    dmp.fit(minimumJerk(0.0, 1.0, n, dt), dt);
    // Same shape, different endpoint: the spring attractor shifts.
    DmpTrajectory traj = dmp.rollout(n, dt, 0.0, 3.0);
    EXPECT_NEAR(traj.position.back(), 3.0, 0.1);
    DmpTrajectory shifted = dmp.rollout(n, dt, 5.0, 6.0);
    EXPECT_NEAR(shifted.position.front(), 5.0, 1e-9);
    EXPECT_NEAR(shifted.position.back(), 6.0, 0.1);
}

TEST(Dmp1D, VelocityIsDerivativeOfPosition)
{
    const int n = 150;
    const double dt = 0.01;
    Dmp1D dmp;
    dmp.fit(minimumJerk(0.0, 1.0, n, dt), dt);
    DmpTrajectory traj = dmp.rollout(n, dt);
    // Forward-Euler consistency: y[t+1] = y[t] + yd[t] * dt.
    for (int t = 0; t + 1 < n; ++t) {
        double predicted = traj.position[static_cast<std::size_t>(t)] +
                           traj.velocity[static_cast<std::size_t>(t)] * dt;
        EXPECT_NEAR(traj.position[static_cast<std::size_t>(t + 1)],
                    predicted, 1e-9);
    }
}

TEST(Dmp1D, MoreBasisFunctionsTrackBetter)
{
    const int n = 250;
    const double dt = 0.004;
    // A wavy demonstration that needs the forcing term.
    std::vector<double> demo(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        double t = static_cast<double>(i) / (n - 1);
        demo[static_cast<std::size_t>(i)] =
            t + 0.3 * std::sin(2.0 * kPi * t);
    }
    auto track_error = [&](int n_basis) {
        DmpConfig config;
        config.n_basis = n_basis;
        Dmp1D dmp(config);
        dmp.fit(demo, dt);
        DmpTrajectory traj = dmp.rollout(n, dt);
        double err = 0.0;
        for (int i = 0; i < n; ++i)
            err += std::abs(traj.position[static_cast<std::size_t>(i)] -
                            demo[static_cast<std::size_t>(i)]);
        return err / n;
    };
    EXPECT_LT(track_error(30), track_error(4));
}

TEST(DmpND, FitsEachDimension)
{
    const int n = 180;
    const double dt = 0.005;
    std::vector<std::vector<double>> demo = makeDemoTrajectory(n, dt);
    ASSERT_EQ(demo.size(), 2u);
    DmpND dmp(2);
    dmp.fit(demo, dt);
    auto trajs = dmp.rollout(n, dt);
    ASSERT_EQ(trajs.size(), 2u);
    for (std::size_t d = 0; d < 2; ++d)
        EXPECT_NEAR(trajs[d].position.back(), demo[d].back(), 0.8);
}

TEST(DmpND, ProfilerPhases)
{
    const int n = 100;
    const double dt = 0.01;
    DmpND dmp(2);
    PhaseProfiler profiler;
    dmp.fit(makeDemoTrajectory(n, dt), dt, &profiler);
    dmp.rollout(n, dt, &profiler);
    EXPECT_GT(profiler.phaseNs("fit"), 0);
    EXPECT_GT(profiler.phaseNs("rollout"), 0);
}

TEST(DemoTrajectory, SmoothAndSized)
{
    auto demo = makeDemoTrajectory(120, 0.01);
    ASSERT_EQ(demo.size(), 2u);
    ASSERT_EQ(demo[0].size(), 120u);
    // No jumps: consecutive samples close together.
    for (std::size_t i = 1; i < demo[0].size(); ++i) {
        EXPECT_LT(std::abs(demo[0][i] - demo[0][i - 1]), 0.6);
        EXPECT_LT(std::abs(demo[1][i] - demo[1][i - 1]), 0.6);
    }
}

} // namespace
} // namespace rtr

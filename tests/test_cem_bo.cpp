/**
 * @file
 * Tests for the learning kernels' substrates: the ball-throw
 * environment, CEM, the Gaussian process, and Bayesian optimization.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "control/ball_throw.h"
#include "control/bayes_opt.h"
#include "control/cem.h"
#include "control/gaussian_process.h"
#include "geom/angle.h"
#include "util/rng.h"

namespace rtr {
namespace {

TEST(BallThrow, ClosedFormProjectileCheck)
{
    BallThrowEnv env(5.0);
    // Straight horizontal arm (theta1 = theta2 = 0): release at
    // (0.9, 1.0) throwing horizontally at 4 m/s; flight time
    // sqrt(2 h / g), landing x = 0.9 + 4 t.
    double landing = env.landingPoint({0.0, 0.0, 4.0});
    double t = std::sqrt(2.0 * 1.0 / 9.81);
    EXPECT_NEAR(landing, 0.9 + 4.0 * t, 1e-9);
}

TEST(BallThrow, RewardPeaksAtGoal)
{
    BallThrowEnv env(5.0);
    // A 45-degree throw overshooting vs a good throw.
    std::vector<double> good{0.3, 0.2, 6.2};
    double landing = env.landingPoint(good);
    std::vector<double> adjusted = good;
    // Reward is exactly negative distance.
    EXPECT_DOUBLE_EQ(env.evaluate(good), -std::abs(landing - 5.0));
    EXPECT_LE(env.evaluate(adjusted), 0.0);
}

TEST(BallThrow, HarderThrowFliesFarther)
{
    BallThrowEnv env(5.0);
    double slow = env.landingPoint({0.4, 0.2, 3.0});
    double fast = env.landingPoint({0.4, 0.2, 9.0});
    EXPECT_GT(fast, slow);
}

TEST(BallThrow, FlightTraceEndsNearGround)
{
    BallThrowEnv env(5.0);
    std::vector<double> params{0.4, 0.1, 5.0};
    auto trace = env.flightTrace(params);
    // Last (x, y) sample: y ~ 0 (landing), x ~ landing point.
    EXPECT_NEAR(trace[63], 0.0, 1e-6);
    EXPECT_NEAR(trace[62], env.landingPoint(params), 1e-6);
}

TEST(Cem, OptimizesSimpleQuadratic)
{
    CemConfig config;
    config.iterations = 20;
    config.samples_per_iteration = 30;
    config.elites = 6;
    CemOptimizer optimizer(config);
    Rng rng(1);
    auto reward = [](const std::vector<double> &x) {
        double dx = x[0] - 1.5, dy = x[1] + 0.5;
        return -(dx * dx + dy * dy);
    };
    CemResult result =
        optimizer.optimize(reward, {-5, -5}, {5, 5}, rng);
    EXPECT_GT(result.best_reward, -0.05);
    EXPECT_NEAR(result.best_params[0], 1.5, 0.3);
    EXPECT_NEAR(result.best_params[1], -0.5, 0.3);
    EXPECT_EQ(result.evaluations, 600u);
    EXPECT_EQ(result.reward_history.size(), 600u);
}

TEST(Cem, LearnsBallThrow)
{
    BallThrowEnv env(5.0);
    CemConfig config;  // paper defaults: 5 x 15
    CemOptimizer optimizer(config);
    Rng rng(2);
    CemResult result = optimizer.optimize(
        [&](const std::vector<double> &p) { return env.evaluate(p); },
        env.lowerBounds(), env.upperBounds(), rng);
    // Within 60 cm of the goal after 75 evaluations.
    EXPECT_GT(result.best_reward, -0.6);
}

TEST(Cem, RewardTrendImproves)
{
    BallThrowEnv env(5.0);
    CemOptimizer optimizer{CemConfig{}};
    Rng rng(3);
    CemResult result = optimizer.optimize(
        [&](const std::vector<double> &p) { return env.evaluate(p); },
        env.lowerBounds(), env.upperBounds(), rng);
    // Mean reward of the last iteration beats the first (Fig. 18).
    double first = 0.0, last = 0.0;
    for (int s = 0; s < 15; ++s) {
        first += result.reward_history[static_cast<std::size_t>(s)];
        last += result.reward_history[result.reward_history.size() - 1 -
                                      static_cast<std::size_t>(s)];
    }
    EXPECT_GT(last, first);
}

TEST(Cem, DeterministicGivenSeed)
{
    BallThrowEnv env(4.0);
    CemOptimizer optimizer{CemConfig{}};
    Rng rng_a(9), rng_b(9);
    auto reward = [&](const std::vector<double> &p) {
        return env.evaluate(p);
    };
    CemResult a = optimizer.optimize(reward, env.lowerBounds(),
                                     env.upperBounds(), rng_a);
    CemResult b = optimizer.optimize(reward, env.lowerBounds(),
                                     env.upperBounds(), rng_b);
    EXPECT_DOUBLE_EQ(a.best_reward, b.best_reward);
    EXPECT_EQ(a.reward_history, b.reward_history);
}

TEST(Gp, InterpolatesTrainingPoints)
{
    GaussianProcess gp;
    std::vector<std::vector<double>> xs{{0.0}, {1.0}, {2.0}};
    std::vector<double> ys{1.0, 3.0, 2.0};
    gp.fit(xs, ys);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        GpPrediction pred = gp.predict(xs[i]);
        EXPECT_NEAR(pred.mean, ys[i], 0.05);
        EXPECT_LT(pred.variance, 0.01);
    }
}

TEST(Gp, UncertaintyGrowsAwayFromData)
{
    GaussianProcess gp;
    gp.fit({{0.0}, {1.0}}, {0.0, 1.0});
    GpPrediction near = gp.predict({0.5});
    GpPrediction far = gp.predict({10.0});
    EXPECT_LT(near.variance, far.variance);
    // Far from data the mean reverts to the prior (training mean).
    EXPECT_NEAR(far.mean, 0.5, 0.05);
}

TEST(Gp, SmoothInterpolationBetweenPoints)
{
    GpConfig config;
    config.length_scale = 1.0;
    GaussianProcess gp(config);
    gp.fit({{0.0}, {2.0}}, {0.0, 2.0});
    GpPrediction mid = gp.predict({1.0});
    EXPECT_GT(mid.mean, 0.3);
    EXPECT_LT(mid.mean, 1.7);
}

TEST(Bo, OptimizesSimpleQuadratic)
{
    BoConfig config;
    config.iterations = 25;
    config.candidates_per_iteration = 2000;
    BayesOpt optimizer(config);
    Rng rng(4);
    auto reward = [](const std::vector<double> &x) {
        double d = x[0] - 0.7;
        return -d * d;
    };
    BoResult result = optimizer.optimize(reward, {-3}, {3}, rng);
    EXPECT_GT(result.best_reward, -0.01);
    EXPECT_NEAR(result.best_params[0], 0.7, 0.15);
    EXPECT_EQ(result.acquisition_evals, 25u * 2000u);
}

TEST(Bo, LearnsBallThrow)
{
    BallThrowEnv env(5.0);
    BoConfig config;
    config.iterations = 30;
    config.candidates_per_iteration = 3000;
    BayesOpt optimizer(config);
    Rng rng(5);
    auto trace = [&](const std::vector<double> &p) {
        return env.flightTrace(p);
    };
    BoResult result = optimizer.optimize(
        [&](const std::vector<double> &p) { return env.evaluate(p); },
        env.lowerBounds(), env.upperBounds(), rng, nullptr, trace);
    EXPECT_GT(result.best_reward, -0.5);
    EXPECT_EQ(result.reward_history.size(),
              static_cast<std::size_t>(config.iterations +
                                       config.seed_observations));
}

TEST(Bo, BeatsRandomSearchOnSameBudget)
{
    BallThrowEnv env(6.5);
    auto reward = [&](const std::vector<double> &p) {
        return env.evaluate(p);
    };
    BoConfig config;
    config.iterations = 20;
    config.candidates_per_iteration = 2000;
    double bo_total = 0.0, random_total = 0.0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        Rng rng(seed);
        BayesOpt optimizer(config);
        BoResult bo = optimizer.optimize(reward, env.lowerBounds(),
                                         env.upperBounds(), rng);
        bo_total += bo.best_reward;

        // Random search with the same number of true evaluations.
        Rng rand_rng(seed + 100);
        double best = -1e18;
        for (int i = 0;
             i < config.iterations + config.seed_observations; ++i) {
            std::vector<double> x(3);
            auto lo = env.lowerBounds(), hi = env.upperBounds();
            for (std::size_t d = 0; d < 3; ++d)
                x[d] = rand_rng.uniform(lo[d], hi[d]);
            best = std::max(best, reward(x));
        }
        random_total += best;
    }
    EXPECT_GE(bo_total, random_total);
}

} // namespace
} // namespace rtr

/**
 * @file
 * Task-level planning example (paper Figs. 13-14): symbolic planning
 * for a warehouse robot that must restack pallets, demonstrating how
 * one declarative planner solves different problems — here a
 * blocks-world-style restacking task and the firefighting scenario.
 */

#include <iostream>

#include "symbolic/blocks_world.h"
#include "symbolic/firefight.h"
#include "symbolic/planner.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace {

void
solve(const rtr::SymbolicProblem &problem, bool print_plan)
{
    using namespace rtr;

    SymbolicPlanner planner(problem);
    Stopwatch timer;
    SymbolicPlanResult result = planner.plan();
    double ms = timer.elapsedSec() * 1e3;

    std::cout << problem.name << ": "
              << (result.found ? "solved" : "NO PLAN") << " in "
              << Table::num(ms, 1) << " ms, " << result.expanded
              << " states expanded, plan length "
              << static_cast<int>(result.cost) << ", branching "
              << Table::num(result.avg_applicable_actions, 1) << "\n";
    if (print_plan && result.found) {
        int step = 1;
        for (const std::string &action : result.plan)
            std::cout << "    " << step++ << ". " << action << "\n";
    }
    std::cout << "\n";
}

} // namespace

int
main()
{
    using namespace rtr;

    std::cout << "=== symbolic task planning ===\n\n";

    // Restacking task: 5 pallets ("blocks") must be rearranged. The
    // planner reads the same declarative schema style as the paper's
    // Fig. 13 and emits an executable action sequence.
    SymbolicProblem restack = makeBlocksWorld(5, 2024);
    std::cout << "initial state: " << restack.initial.toString()
              << "\n";
    std::cout << "goal atoms:    ";
    for (const Atom &atom : restack.goal)
        std::cout << atom << " ";
    std::cout << "\n\n";
    solve(restack, true);

    // The firefighting scenario (Fig. 14): a rover ferries a
    // quadcopter between the water source and the fire.
    solve(makeFirefight(5), true);

    // Scaling: the same planner, larger instances.
    std::cout << "scaling (no plans printed):\n";
    for (int blocks : {6, 7, 8})
        solve(makeBlocksWorld(blocks, 7), false);
    return 0;
}

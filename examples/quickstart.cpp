/**
 * @file
 * Quickstart: run one RTRBench kernel through the public API and read
 * its report.
 *
 *   $ ./quickstart [kernel-name]
 *
 * Every kernel is created from the registry, configured through the
 * same --option mechanism the command-line tools use, and returns a
 * KernelReport with timing phases and algorithm metrics.
 */

#include <iostream>
#include <string>

#include "kernels/registry.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace rtr;

    const std::string name = argc > 1 ? argv[1] : "pfl";

    std::cout << "RTRBench quickstart\n";
    std::cout << "available kernels:";
    for (const std::string &kernel : kernelNames())
        std::cout << " " << kernel;
    std::cout << "\n\n";

    // 1. Instantiate a kernel from the registry.
    auto kernel = makeKernel(name);
    std::cout << "running " << kernel->name() << " ("
              << stageName(kernel->stage()) << "): "
              << kernel->description() << "\n\n";

    // 2. Run it. Options not overridden here use the defaults the
    //    paper's evaluation uses; pass e.g. {"--seed", "7"} to change.
    KernelReport report = kernel->runWithDefaults();

    // 3. Read the report.
    std::cout << "success: " << (report.success ? "yes" : "no")
              << ", region of interest: "
              << Table::num(report.roi_seconds * 1e3, 2) << " ms\n\n";

    Table phases({"phase", "share of ROI"});
    for (const auto &phase : report.profiler.phases())
        phases.addRow({phase.name,
                       Table::pct(report.phaseFraction(phase.name))});
    phases.print();

    std::cout << "\n";
    Table metrics({"metric", "value"});
    for (const auto &[key, value] : report.metrics)
        metrics.addRow({key, Table::num(value, 4)});
    metrics.print();
    return report.success ? 0 : 1;
}

/**
 * @file
 * Manipulator planning example (paper Figs. 8-12): a 5-DoF arm in the
 * cluttered Map-C workspace, planned three ways — PRM (static world,
 * offline roadmap), RRT (dynamic world, online), and RRT + shortcut —
 * and compared on time and path quality.
 */

#include <iostream>

#include "arm/cspace.h"
#include "arm/workspace.h"
#include "geom/angle.h"
#include "plan/prm.h"
#include "plan/rrt.h"
#include "plan/rrt_star.h"
#include "plan/shortcut.h"
#include "util/stopwatch.h"
#include "util/table.h"

int
main()
{
    using namespace rtr;

    std::cout << "=== 5-DoF arm manipulation in Map-C ===\n\n";

    PlanarArm arm = PlanarArm::uniform({0.25, 0.0}, 5, 0.45);
    Workspace workspace = makeMapC();
    ConfigSpace space(5, -kPi, kPi);
    ArmCollisionChecker checker(arm, workspace);

    // Pick well-separated collision-free start/goal configurations.
    Rng rng(11);
    auto sample_free = [&] {
        while (true) {
            ArmConfig q = space.sample(rng);
            if (!checker.configCollides(q))
                return q;
        }
    };
    ArmConfig start = sample_free();
    ArmConfig goal;
    do {
        goal = sample_free();
    } while (ConfigSpace::distance(start, goal) < 1.5);

    Vec2 start_tip = arm.endEffector(start);
    Vec2 goal_tip = arm.endEffector(goal);
    std::cout << "end-effector: (" << Table::num(start_tip.x, 2) << ", "
              << Table::num(start_tip.y, 2) << ") -> ("
              << Table::num(goal_tip.x, 2) << ", "
              << Table::num(goal_tip.y, 2) << ") m\n\n";

    Table table({"planner", "time (ms)", "path (rad)", "waypoints",
                 "collision checks"});

    // PRM: pay the roadmap once, query instantly afterwards.
    {
        PrmPlanner prm(space, checker);
        Rng build_rng(1);
        Stopwatch build_timer;
        prm.build(build_rng);
        double build_ms = build_timer.elapsedSec() * 1e3;
        checker.resetCounter();
        Stopwatch query_timer;
        MotionPlan plan = prm.query(start, goal);
        table.addRow({"prm (query only)",
                      Table::num(query_timer.elapsedSec() * 1e3, 2),
                      plan.found ? Table::num(plan.cost, 2) : "-",
                      std::to_string(plan.path.size()),
                      Table::count(static_cast<long long>(
                          plan.collision_checks))});
        std::cout << "(prm offline build took "
                  << Table::num(build_ms, 0) << " ms)\n";
    }

    // RRT: everything online.
    std::vector<ArmConfig> rrt_path;
    {
        RrtPlanner rrt(space, checker, {});
        Rng plan_rng(2);
        Stopwatch timer;
        MotionPlan plan = rrt.plan(start, goal, plan_rng);
        rrt_path = plan.path;
        table.addRow({"rrt", Table::num(timer.elapsedSec() * 1e3, 2),
                      plan.found ? Table::num(plan.cost, 2) : "-",
                      std::to_string(plan.path.size()),
                      Table::count(static_cast<long long>(
                          plan.collision_checks))});
    }

    // RRT + shortcut post-processing.
    if (!rrt_path.empty()) {
        Rng shortcut_rng(3);
        Stopwatch timer;
        std::vector<ArmConfig> path = rrt_path;
        ShortcutStats stats =
            shortcutPath(path, checker, {}, shortcut_rng);
        table.addRow({"rrt + shortcut",
                      Table::num(timer.elapsedSec() * 1e3, 2),
                      Table::num(stats.cost_after, 2),
                      std::to_string(path.size()),
                      Table::count(static_cast<long long>(
                          stats.collision_checks))});
    }

    // RRT*: pays its sample budget for near-optimal paths.
    {
        RrtStarConfig config;
        config.max_samples = 3000;
        config.refine_factor = 1e18;  // spend the budget on quality
        RrtStarPlanner rrt_star(space, checker, config);
        Rng plan_rng(2);
        Stopwatch timer;
        RrtStarPlan plan = rrt_star.plan(start, goal, plan_rng);
        table.addRow({"rrt*", Table::num(timer.elapsedSec() * 1e3, 2),
                      plan.found ? Table::num(plan.cost, 2) : "-",
                      std::to_string(plan.path.size()),
                      Table::count(static_cast<long long>(
                          plan.collision_checks))});
    }

    table.print();
    std::cout << "\n(prm wins on query latency in static worlds; rrt "
                 "family works without the offline phase; shortcutting "
                 "recovers much of rrt*'s quality for a fraction of its "
                 "time)\n";
    return 0;
}

/**
 * @file
 * Learning-control example (paper Figs. 17-19): the ball-throwing
 * robot learns its throw two ways — cross-entropy search and Bayesian
 * optimization — and the example compares their sample efficiency.
 */

#include <iostream>

#include "control/ball_throw.h"
#include "control/bayes_opt.h"
#include "control/cem.h"
#include "util/table.h"

int
main()
{
    using namespace rtr;

    std::cout << "=== ball-throwing robot: CEM vs Bayesian "
                 "optimization ===\n\n";

    const double goal = 5.0;
    BallThrowEnv env(goal);
    auto reward = [&](const std::vector<double> &p) {
        return env.evaluate(p);
    };
    std::cout << "task: land the ball " << goal
              << " m from the robot; reward = -|landing - goal|\n\n";

    // CEM: 5 iterations x 15 samples (the paper's configuration).
    CemOptimizer cem{CemConfig{}};
    Rng cem_rng(1);
    CemResult cem_result = cem.optimize(reward, env.lowerBounds(),
                                        env.upperBounds(), cem_rng);

    // BO: 45 iterations (the paper's configuration), smaller candidate
    // batches to keep the example quick.
    BoConfig bo_config;
    bo_config.candidates_per_iteration = 4000;
    BayesOpt bo(bo_config);
    Rng bo_rng(1);
    BoResult bo_result = bo.optimize(reward, env.lowerBounds(),
                                     env.upperBounds(), bo_rng);

    Table table({"learner", "true evals", "best miss (m)",
                 "landing (m)", "shoulder (rad)", "elbow (rad)",
                 "speed (m/s)"});
    table.addRow({"cem", std::to_string(cem_result.evaluations),
                  Table::num(-cem_result.best_reward, 3),
                  Table::num(env.landingPoint(cem_result.best_params), 2),
                  Table::num(cem_result.best_params[0], 2),
                  Table::num(cem_result.best_params[1], 2),
                  Table::num(cem_result.best_params[2], 2)});
    table.addRow({"bo", std::to_string(bo_result.reward_evals),
                  Table::num(-bo_result.best_reward, 3),
                  Table::num(env.landingPoint(bo_result.best_params), 2),
                  Table::num(bo_result.best_params[0], 2),
                  Table::num(bo_result.best_params[1], 2),
                  Table::num(bo_result.best_params[2], 2)});
    table.print();

    // Reward trajectories (Figs. 18 and 19).
    auto print_series = [](const std::string &label,
                           const std::vector<double> &series) {
        std::cout << label;
        for (std::size_t i = 0; i < series.size();
             i += std::max<std::size_t>(1, series.size() / 10))
            std::cout << " " << Table::num(series[i], 2);
        std::cout << "\n";
    };
    std::cout << "\n";
    print_series("cem reward over samples (Fig. 18):",
                 cem_result.reward_history);
    print_series("bo reward over iterations (Fig. 19):",
                 bo_result.reward_history);

    std::cout << "\n(bo reaches a comparable miss with fewer true "
                 "throws but far more internal computation — the "
                 "trade-off the paper's §V.16 discusses)\n";
    return 0;
}

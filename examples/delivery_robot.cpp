/**
 * @file
 * End-to-end pipeline example (paper Fig. 1): a delivery robot senses,
 * plans, and acts in one loop built entirely from RTRBench substrates.
 *
 *   Perception: particle filter localization on a known building map.
 *   Planning:   A* with an inflated obstacle map to the delivery goal.
 *   Control:    MPC tracking of the planned path under velocity limits.
 */

#include <cmath>
#include <iostream>

#include "control/mpc.h"
#include "geom/angle.h"
#include "grid/distance_transform.h"
#include "grid/map_gen.h"
#include "perception/particle_filter.h"
#include "search/grid_planner2d.h"
#include "search/path_smoothing.h"
#include "util/rng.h"
#include "util/table.h"

int
main()
{
    using namespace rtr;

    std::cout << "=== delivery robot: perception -> planning -> control "
                 "===\n\n";

    // The world: an indoor building at 0.25 m resolution.
    OccupancyGrid2D map = makeIndoorMap(240, 160, 0.25, 42);
    Rng rng(7);

    // ---------------- Perception ----------------
    // The robot wakes up near the west corridor entrance and localizes
    // with a particle filter before doing anything else.
    Pose2 truth{map.origin().x + 8.0,
                map.origin().y + map.worldHeight() / 2.0, 0.0};
    ParticleFilter filter(map, 800);
    filter.initializeRegion(truth, 4.0, 0.5, rng);

    Rng sensor_rng(3);
    for (int scan_round = 0; scan_round < 6; ++scan_round) {
        LaserScan scan =
            simulateScan(map, truth, 60, 10.0, 0.05, sensor_rng);
        filter.measurementUpdate(scan);
        filter.resample(rng);
    }
    Pose2 estimate = filter.estimate();
    double localization_error =
        estimate.position().distanceTo(truth.position());
    std::cout << "perception: localized to ("
              << Table::num(estimate.x, 2) << ", "
              << Table::num(estimate.y, 2) << ") m, error "
              << Table::num(localization_error, 2) << " m, spread "
              << Table::num(filter.spread(), 2) << " m\n";

    // ---------------- Planning ----------------
    // Inflate obstacles by the robot's radius and plan to the east
    // delivery point with A*.
    OccupancyGrid2D inflated = inflate(map, 0.3);
    GridPlanner2D planner(inflated);
    Cell2 start = map.worldToCell(estimate.position());
    Cell2 goal{map.width() - 12, map.height() / 2};
    while (inflated.occupied(goal.x, goal.y))
        --goal.x;
    GridPlan2D plan = planner.plan(start, goal);
    if (!plan.found) {
        std::cout << "planning failed!\n";
        return 1;
    }
    std::cout << "planning: " << plan.path.size()
              << " waypoints, length " << Table::num(plan.cost, 1)
              << " m, " << plan.expanded << " expansions\n";

    // ---------------- Control ----------------
    // Smooth the jagged lattice path with line-of-sight shortcuts,
    // densify it at uniform spacing, and track it with MPC under the
    // platform's 1.2 m/s limit.
    std::vector<Cell2> smooth = smoothGridPath(inflated, plan.path);
    std::cout << "smoothing: " << plan.path.size() << " -> "
              << smooth.size() << " waypoints, "
              << Table::num(gridPathLength(map, plan.path), 1) << " -> "
              << Table::num(gridPathLength(map, smooth), 1) << " m\n";

    const double spacing = 0.2;
    std::vector<Vec2> reference;
    for (std::size_t i = 0; i + 1 < smooth.size(); ++i) {
        Vec2 a = map.cellCenter(smooth[i]);
        Vec2 b = map.cellCenter(smooth[i + 1]);
        double seg_len = a.distanceTo(b);
        int pieces = std::max(1, static_cast<int>(seg_len / spacing));
        for (int p = 0; p < pieces; ++p)
            reference.push_back(a + (b - a) * (static_cast<double>(p) /
                                               pieces));
    }
    reference.push_back(map.cellCenter(smooth.back()));

    MpcConfig mpc_config;
    mpc_config.v_max = 1.2;
    mpc_config.dt = 0.2;
    MpcController controller(mpc_config);
    UnicycleState state;
    state.x = reference.front().x;
    state.y = reference.front().y;
    if (reference.size() > 1) {
        Vec2 dir = reference[1] - reference[0];
        state.theta = std::atan2(dir.y, dir.x);
    }
    TrackingResult tracking =
        trackTrajectory(controller, reference, state);

    std::cout << "control: tracked the plan with mean error "
              << Table::num(tracking.avg_error, 2) << " m, max speed "
              << Table::num(tracking.max_velocity, 2) << " m/s (limit "
              << Table::num(mpc_config.v_max, 1) << ")\n\n";

    bool delivered =
        tracking.states.back().x - reference.back().x < 1.0 &&
        localization_error < 1.0 && tracking.max_velocity <= 1.2 + 1e-9;
    std::cout << (delivered ? "delivery complete."
                            : "delivery failed.")
              << "\n";
    return delivered ? 0 : 1;
}

/**
 * @file
 * Joint-angle configuration space: sampling, distance, interpolation.
 *
 * The sampling-based planners (PRM/RRT family) operate on this space;
 * its L2 distance is the "frequent L2-norm calculations" bottleneck the
 * paper attributes to prm (§V.07).
 */

#ifndef RTR_ARM_CSPACE_H
#define RTR_ARM_CSPACE_H

#include <cstddef>

#include "arm/planar_arm.h"
#include "util/rng.h"

namespace rtr {

/** Box-bounded joint-angle space. */
class ConfigSpace
{
  public:
    /**
     * @param dof Dimensions.
     * @param lo Lower joint limit (same for every joint).
     * @param hi Upper joint limit.
     */
    ConfigSpace(std::size_t dof, double lo, double hi);

    std::size_t dof() const { return dof_; }
    double lo() const { return lo_; }
    double hi() const { return hi_; }

    /** Uniform random configuration within the limits. */
    ArmConfig sample(Rng &rng) const;

    /** Whether a configuration respects the joint limits. */
    bool inBounds(const ArmConfig &q) const;

    /** Euclidean (L2) distance between two configurations. */
    static double distance(const ArmConfig &a, const ArmConfig &b);

    /** Squared L2 distance (avoids the sqrt in hot loops). */
    static double squaredDistance(const ArmConfig &a, const ArmConfig &b);

    /** Linear interpolation at t in [0,1]. */
    static ArmConfig interpolate(const ArmConfig &a, const ArmConfig &b,
                                 double t);

    /**
     * Step from @p from towards @p to by at most @p max_step (L2 norm);
     * returns @p to itself when it is closer than the step.
     */
    static ArmConfig steer(const ArmConfig &from, const ArmConfig &to,
                           double max_step);

  private:
    std::size_t dof_;
    double lo_;
    double hi_;
};

} // namespace rtr

#endif // RTR_ARM_CSPACE_H

#include "arm/cspace.h"

#include <cmath>

#include "util/logging.h"

namespace rtr {

ConfigSpace::ConfigSpace(std::size_t dof, double lo, double hi)
    : dof_(dof), lo_(lo), hi_(hi)
{
    RTR_ASSERT(dof >= 1, "config space needs >= 1 dimension");
    RTR_ASSERT(lo < hi, "joint limits must satisfy lo < hi");
}

ArmConfig
ConfigSpace::sample(Rng &rng) const
{
    ArmConfig q(dof_);
    for (double &angle : q)
        angle = rng.uniform(lo_, hi_);
    return q;
}

bool
ConfigSpace::inBounds(const ArmConfig &q) const
{
    if (q.size() != dof_)
        return false;
    for (double angle : q) {
        if (angle < lo_ || angle > hi_)
            return false;
    }
    return true;
}

double
ConfigSpace::distance(const ArmConfig &a, const ArmConfig &b)
{
    return std::sqrt(squaredDistance(a, b));
}

double
ConfigSpace::squaredDistance(const ArmConfig &a, const ArmConfig &b)
{
    RTR_ASSERT(a.size() == b.size(), "config size mismatch");
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double diff = a[i] - b[i];
        sum += diff * diff;
    }
    return sum;
}

ArmConfig
ConfigSpace::interpolate(const ArmConfig &a, const ArmConfig &b, double t)
{
    RTR_ASSERT(a.size() == b.size(), "config size mismatch");
    ArmConfig q(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        q[i] = a[i] + (b[i] - a[i]) * t;
    return q;
}

ArmConfig
ConfigSpace::steer(const ArmConfig &from, const ArmConfig &to,
                   double max_step)
{
    double dist = distance(from, to);
    if (dist <= max_step)
        return to;
    return interpolate(from, to, max_step / dist);
}

} // namespace rtr

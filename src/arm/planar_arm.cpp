#include "arm/planar_arm.h"

#include <cmath>

#include "util/logging.h"

namespace rtr {

PlanarArm::PlanarArm(Vec2 base, std::vector<double> link_lengths)
    : base_(base), link_lengths_(std::move(link_lengths)), reach_(0.0)
{
    RTR_ASSERT(!link_lengths_.empty(), "arm needs >= 1 link");
    for (double len : link_lengths_) {
        RTR_ASSERT(len > 0.0, "link lengths must be positive");
        reach_ += len;
    }
}

PlanarArm
PlanarArm::uniform(Vec2 base, std::size_t dof, double total_reach)
{
    RTR_ASSERT(dof >= 1, "arm needs >= 1 link");
    return PlanarArm(base, std::vector<double>(
                               dof, total_reach / static_cast<double>(dof)));
}

void
PlanarArm::forwardKinematics(const ArmConfig &q,
                             std::vector<Vec2> &joints_out) const
{
    RTR_ASSERT(q.size() == dof(), "config size ", q.size(), " != dof ",
               dof());
    joints_out.clear();
    joints_out.reserve(dof() + 1);
    joints_out.push_back(base_);

    double heading = 0.0;
    Vec2 pos = base_;
    for (std::size_t i = 0; i < dof(); ++i) {
        heading += q[i];
        pos += Vec2{std::cos(heading), std::sin(heading)} *
               link_lengths_[i];
        joints_out.push_back(pos);
    }
}

Vec2
PlanarArm::endEffector(const ArmConfig &q) const
{
    RTR_ASSERT(q.size() == dof(), "config size mismatch");
    double heading = 0.0;
    Vec2 pos = base_;
    for (std::size_t i = 0; i < dof(); ++i) {
        heading += q[i];
        pos += Vec2{std::cos(heading), std::sin(heading)} *
               link_lengths_[i];
    }
    return pos;
}

} // namespace rtr

/**
 * @file
 * Arm workspaces and the link-vs-obstacle collision checker.
 *
 * Provides the paper's two synthetic evaluation environments (Fig. 9):
 * Map-F, a free 50 cm x 50 cm workspace, and Map-C, a cluttered one.
 */

#ifndef RTR_ARM_WORKSPACE_H
#define RTR_ARM_WORKSPACE_H

#include <cstdint>
#include <vector>

#include "arm/planar_arm.h"
#include "geom/aabb.h"
#include "util/profiler.h"

namespace rtr {

/** A bounded planar workspace with rectangular obstacles. */
struct Workspace
{
    /** Workspace bounds; the arm must stay inside. */
    Aabb2 bounds;
    /** Obstacle rectangles. */
    std::vector<Aabb2> obstacles;
};

/** The paper's free map (Fig. 9, Map-F): 50 cm square, no obstacles. */
Workspace makeMapF();

/** The paper's cluttered map (Fig. 9, Map-C): 50 cm square, obstacles. */
Workspace makeMapC();

/** Randomized workspace for property tests. */
Workspace makeRandomWorkspace(int n_obstacles, std::uint64_t seed);

/**
 * Collision checker for an arm in a workspace.
 *
 * This is the paper's collision-detection bottleneck for the sampling-
 * based planners (up to 62% of RRT's execution time): every candidate
 * configuration is validated by forward kinematics plus link-segment vs
 * obstacle tests.
 */
class ArmCollisionChecker
{
  public:
    /** Both referents must outlive the checker. */
    ArmCollisionChecker(const PlanarArm &arm, const Workspace &workspace);

    /** Whether a configuration collides (obstacles or out of bounds). */
    bool configCollides(const ArmConfig &q) const;

    /**
     * Whether the straight joint-space motion between two configs
     * collides, tested by interpolation at @p step_size resolution
     * (radians of maximum joint motion per step).
     */
    bool motionCollides(const ArmConfig &from, const ArmConfig &to,
                        double step_size = 0.05) const;

    /** Total configuration checks since construction. */
    std::size_t checksPerformed() const { return checks_; }

    /** Reset the check counter. */
    void resetCounter() { checks_ = 0; }

    /**
     * Fold checks performed by per-thread clones of this checker back
     * into the counter. The checker itself is not thread-safe (mutable
     * FK scratch); parallel loops give every chunk its own
     * ArmCollisionChecker over the same arm/workspace and report the
     * clone counts here after joining.
     */
    void recordExternalChecks(std::size_t n) const { checks_ += n; }

    const PlanarArm &arm() const { return arm_; }
    const Workspace &workspace() const { return workspace_; }

  private:
    const PlanarArm &arm_;
    const Workspace &workspace_;
    mutable std::vector<Vec2> joints_;  // FK scratch, avoids reallocation
    mutable std::size_t checks_ = 0;
};

} // namespace rtr

#endif // RTR_ARM_WORKSPACE_H

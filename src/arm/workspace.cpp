#include "arm/workspace.h"

#include <algorithm>
#include <cmath>

#include "geom/segment.h"
#include "util/logging.h"
#include "util/rng.h"

namespace rtr {

Workspace
makeMapF()
{
    // 50 cm x 50 cm (paper Fig. 9), origin at the bottom-left; the arm
    // base sits at the bottom-center.
    Workspace ws;
    ws.bounds = Aabb2{{0.0, 0.0}, {0.5, 0.5}};
    return ws;
}

Workspace
makeMapC()
{
    Workspace ws;
    ws.bounds = Aabb2{{0.0, 0.0}, {0.5, 0.5}};
    // Clutter arranged around the arm's base at (0.25, 0), leaving
    // passages between the obstacles (mirroring Fig. 9's Map-C sketch).
    ws.obstacles = {
        Aabb2{{0.05, 0.30}, {0.15, 0.40}},
        Aabb2{{0.35, 0.30}, {0.45, 0.40}},
        Aabb2{{0.20, 0.42}, {0.30, 0.48}},
        Aabb2{{0.02, 0.10}, {0.08, 0.20}},
        Aabb2{{0.42, 0.10}, {0.48, 0.20}},
    };
    return ws;
}

Workspace
makeRandomWorkspace(int n_obstacles, std::uint64_t seed)
{
    Workspace ws;
    ws.bounds = Aabb2{{0.0, 0.0}, {0.5, 0.5}};
    Rng rng(seed);
    for (int i = 0; i < n_obstacles; ++i) {
        double w = rng.uniform(0.03, 0.1);
        double h = rng.uniform(0.03, 0.1);
        double x = rng.uniform(0.0, 0.5 - w);
        // Keep a clear band near the base so the arm is not born in
        // collision.
        double y = rng.uniform(0.12, 0.5 - h);
        ws.obstacles.push_back(Aabb2{{x, y}, {x + w, y + h}});
    }
    return ws;
}

ArmCollisionChecker::ArmCollisionChecker(const PlanarArm &arm,
                                         const Workspace &workspace)
    : arm_(arm), workspace_(workspace)
{
}

bool
ArmCollisionChecker::configCollides(const ArmConfig &q) const
{
    ++checks_;
    arm_.forwardKinematics(q, joints_);

    // Bounds: every joint position must stay inside the workspace.
    for (const Vec2 &joint : joints_) {
        if (!workspace_.bounds.contains(joint))
            return true;
    }
    // Obstacles: every link segment vs every obstacle rectangle.
    for (std::size_t i = 0; i + 1 < joints_.size(); ++i) {
        Segment2 link{joints_[i], joints_[i + 1]};
        for (const Aabb2 &obstacle : workspace_.obstacles) {
            if (segmentIntersectsAabb(link, obstacle))
                return true;
        }
    }
    return false;
}

bool
ArmCollisionChecker::motionCollides(const ArmConfig &from,
                                    const ArmConfig &to,
                                    double step_size) const
{
    RTR_ASSERT(from.size() == to.size(), "config size mismatch");
    RTR_ASSERT(step_size > 0.0, "step size must be positive");

    double max_delta = 0.0;
    for (std::size_t i = 0; i < from.size(); ++i)
        max_delta = std::max(max_delta, std::abs(to[i] - from[i]));
    int steps = std::max(1, static_cast<int>(std::ceil(max_delta /
                                                       step_size)));

    ArmConfig q(from.size());
    for (int s = 0; s <= steps; ++s) {
        double t = static_cast<double>(s) / steps;
        for (std::size_t i = 0; i < from.size(); ++i)
            q[i] = from[i] + (to[i] - from[i]) * t;
        if (configCollides(q))
            return true;
    }
    return false;
}

} // namespace rtr

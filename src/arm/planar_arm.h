/**
 * @file
 * Planar n-DoF arm manipulator kinematics.
 *
 * The robot model behind kernels 07-10 (prm, rrt, rrtstar, rrtpp): a
 * chain of revolute joints in the plane, as in the paper's Fig. 8. A
 * configuration is the vector of joint angles; planning happens in that
 * joint-angle space.
 */

#ifndef RTR_ARM_PLANAR_ARM_H
#define RTR_ARM_PLANAR_ARM_H

#include <vector>

#include "geom/vec2.h"

namespace rtr {

/** A joint-space configuration: one angle (radians) per joint. */
using ArmConfig = std::vector<double>;

/** Kinematic chain of revolute joints in the plane. */
class PlanarArm
{
  public:
    /**
     * @param base World position of the arm's base joint.
     * @param link_lengths One entry per link; defines the DoF count.
     */
    PlanarArm(Vec2 base, std::vector<double> link_lengths);

    /** Convenience: n equal links summing to @p total_reach. */
    static PlanarArm uniform(Vec2 base, std::size_t dof,
                             double total_reach);

    /** Degrees of freedom (= number of links). */
    std::size_t dof() const { return link_lengths_.size(); }

    /** Base position. */
    Vec2 base() const { return base_; }

    /** Link lengths. */
    const std::vector<double> &linkLengths() const { return link_lengths_; }

    /** Sum of link lengths (maximum reach). */
    double reach() const { return reach_; }

    /**
     * Forward kinematics. Angles are relative to the previous link
     * (angle 0 = continuing straight). Writes dof()+1 joint positions
     * (base first, end-effector last) into @p joints_out, which is
     * cleared first.
     */
    void forwardKinematics(const ArmConfig &q,
                           std::vector<Vec2> &joints_out) const;

    /** End-effector position only. */
    Vec2 endEffector(const ArmConfig &q) const;

  private:
    Vec2 base_;
    std::vector<double> link_lengths_;
    double reach_;
};

} // namespace rtr

#endif // RTR_ARM_PLANAR_ARM_H

#include "control/mpc.h"

#include <algorithm>
#include <cmath>

#include "control/batch_env.h"
#include "geom/angle.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/simd.h"

namespace rtr {

namespace {

/**
 * trial[k] = clamp(base[k] - step * grad[k] / norm, lo, hi) — the
 * normalized-descent trial step fused with the box projection, SIMD
 * across the horizon. Runs once per backtracking probe.
 */
inline void
descendClamped(double *trial, const double *base, const double *grad,
               double step, double norm, double lo, double hi,
               std::size_t n)
{
    using simd::VecD;
    const VecD vstep = VecD::broadcast(step);
    const VecD vnorm = VecD::broadcast(norm);
    const VecD vlo = VecD::broadcast(lo);
    const VecD vhi = VecD::broadcast(hi);
    std::size_t k = 0;
    for (; k + VecD::kWidth <= n; k += VecD::kWidth) {
        const VecD t = VecD::load(base + k) -
                       vstep * VecD::load(grad + k) / vnorm;
        VecD::min(VecD::max(t, vlo), vhi).store(trial + k);
    }
    for (; k < n; ++k) {
        double t = base[k] - step * grad[k] / norm;
        trial[k] = std::clamp(t, lo, hi);
    }
}

} // namespace

MpcController::MpcController(const MpcConfig &config) : config_(config)
{
    RTR_ASSERT(config.horizon >= 1, "horizon must be >= 1");
    reset();
}

void
MpcController::reset()
{
    warm_v_.assign(static_cast<std::size_t>(config_.horizon), 0.0);
    warm_omega_.assign(static_cast<std::size_t>(config_.horizon), 0.0);
}

UnicycleState
MpcController::step(const UnicycleState &state, double v, double omega,
                    double dt)
{
    UnicycleState next;
    next.x = state.x + v * dt * std::cos(state.theta);
    next.y = state.y + v * dt * std::sin(state.theta);
    next.theta = normalizeAngle(state.theta + omega * dt);
    next.v = v;
    return next;
}

MpcSolution
MpcController::solve(const UnicycleState &current,
                     const std::vector<Vec2> &reference,
                     PhaseProfiler *profiler)
{
    ScopedPhase phase(profiler, "optimize");
    RTR_ASSERT(!reference.empty(), "MPC needs a reference");
    const auto h = static_cast<std::size_t>(config_.horizon);

    MpcSolution solution;
    // Warm start: shift the previous solution forward one step.
    solution.v = warm_v_;
    solution.omega = warm_omega_;
    if (h > 1) {
        std::rotate(solution.v.begin(), solution.v.begin() + 1,
                    solution.v.end());
        std::rotate(solution.omega.begin(), solution.omega.begin() + 1,
                    solution.omega.end());
    }

    auto project = [&](std::vector<double> &v, std::vector<double> &omega) {
        for (std::size_t k = 0; k < h; ++k) {
            v[k] = std::clamp(v[k], 0.0, config_.v_max);
            omega[k] = std::clamp(omega[k], -config_.omega_max,
                                  config_.omega_max);
        }
    };
    project(solution.v, solution.omega);

    const double fd_eps = 1e-4;
    std::vector<double> grad_v(h), grad_omega(h);
    std::vector<double> trial_v(h), trial_omega(h);
    double cost = unicycleRolloutCost(config_, current, reference,
                                      solution.v, solution.omega);
    ++solution.cost_evals;
    double step = config_.learning_rate;

    for (int iter = 0; iter < config_.opt_iterations; ++iter) {
        // Numerical gradient by central differences. The four rollouts
        // behind each horizon step are independent environments; the
        // batch engine advances them in SIMD lanes (or one at a time
        // under the preserved scalar reference), with chunks of steps
        // evaluating concurrently — bitwise the same gradient either
        // way, at any thread count (batch_env.h).
        mpcCentralDiffGradient(config_, current, reference, solution.v,
                               solution.omega, fd_eps, grad_v,
                               grad_omega);
        solution.cost_evals += 4 * static_cast<int>(h);
        double grad_norm2 = 0.0;
        for (std::size_t k = 0; k < h; ++k) {
            grad_norm2 += grad_v[k] * grad_v[k] +
                          grad_omega[k] * grad_omega[k];
        }
        if (grad_norm2 < 1e-16)
            break;
        // Normalized descent direction + backtracking line search:
        // robust regardless of the cost surface's scale.
        double grad_norm = std::sqrt(grad_norm2);
        bool improved = false;
        for (int backtrack = 0; backtrack < 12; ++backtrack) {
            descendClamped(trial_v.data(), solution.v.data(),
                           grad_v.data(), step, grad_norm, 0.0,
                           config_.v_max, h);
            descendClamped(trial_omega.data(), solution.omega.data(),
                           grad_omega.data(), step, grad_norm,
                           -config_.omega_max, config_.omega_max, h);
            double trial_cost = unicycleRolloutCost(
                config_, current, reference, trial_v, trial_omega);
            ++solution.cost_evals;
            if (trial_cost < cost) {
                solution.v = trial_v;
                solution.omega = trial_omega;
                cost = trial_cost;
                step *= 1.5;
                improved = true;
                break;
            }
            step *= 0.5;
        }
        if (!improved)
            break;
    }

    solution.cost = cost;
    warm_v_ = solution.v;
    warm_omega_ = solution.omega;
    return solution;
}

TrackingResult
trackTrajectory(MpcController &controller,
                const std::vector<Vec2> &reference,
                const UnicycleState &start, PhaseProfiler *profiler)
{
    TrackingResult result;
    RTR_ASSERT(reference.size() >= 2, "reference needs >= 2 points");
    controller.reset();

    const auto h =
        static_cast<std::size_t>(controller.config().horizon);
    UnicycleState state = start;
    result.states.push_back(state);

    for (std::size_t step = 0; step + 1 < reference.size(); ++step) {
        // Window of upcoming reference points for this solve.
        std::vector<Vec2> window;
        window.reserve(h);
        for (std::size_t k = 0; k < h; ++k)
            window.push_back(
                reference[std::min(step + 1 + k, reference.size() - 1)]);

        MpcSolution solution = controller.solve(state, window, profiler);
        result.cost_evals += solution.cost_evals;

        {
            ScopedPhase phase(profiler, "simulate");
            state = MpcController::step(state, solution.v[0],
                                        solution.omega[0],
                                        controller.config().dt);
            result.states.push_back(state);
        }

        double dx = state.x - reference[step + 1].x;
        double dy = state.y - reference[step + 1].y;
        double err = std::sqrt(dx * dx + dy * dy);
        result.avg_error += err;
        result.max_error = std::max(result.max_error, err);
        result.max_velocity = std::max(result.max_velocity, state.v);
    }
    result.avg_error /= static_cast<double>(reference.size() - 1);
    return result;
}

std::vector<Vec2>
makeReferenceTrajectory(int n_points, double spacing)
{
    // A long winding path: forward progress with two superimposed
    // curvature frequencies.
    std::vector<Vec2> path;
    path.reserve(static_cast<std::size_t>(n_points));
    // Curvature is kept within what a unicycle with omega_max ~1.5
    // rad/s can follow at cruise speed.
    double x = 0.0, y = 0.0, heading = 0.0;
    for (int i = 0; i < n_points; ++i) {
        double s = static_cast<double>(i) / n_points;
        heading = 0.6 * std::sin(2.0 * kPi * s * 2.0) +
                  0.25 * std::sin(2.0 * kPi * s * 5.0);
        x += spacing * std::cos(heading);
        y += spacing * std::sin(heading);
        path.push_back(Vec2{x, y});
    }
    return path;
}

} // namespace rtr

/**
 * @file
 * Gaussian process regression (the BO kernel's surrogate model).
 *
 * Squared-exponential kernel, Cholesky-factored training, closed-form
 * predictive mean/variance — "training and testing are done using a
 * Gaussian process" (paper §V.16).
 */

#ifndef RTR_CONTROL_GAUSSIAN_PROCESS_H
#define RTR_CONTROL_GAUSSIAN_PROCESS_H

#include <vector>

#include "linalg/decomp.h"
#include "linalg/matrix.h"
#include "util/profiler.h"

namespace rtr {

/** GP hyperparameters. */
struct GpConfig
{
    /** Squared-exponential length scale. */
    double length_scale = 1.0;
    /** Signal variance (kernel amplitude). */
    double signal_variance = 1.0;
    /** Observation noise variance (also conditions the Cholesky). */
    double noise_variance = 1e-4;
};

/** A predictive distribution at one query point. */
struct GpPrediction
{
    double mean = 0.0;
    double variance = 0.0;
};

/** GP regressor over R^d inputs. */
class GaussianProcess
{
  public:
    explicit GaussianProcess(const GpConfig &config = {});

    /**
     * Fit to observations (Cholesky of the kernel matrix). Replaces any
     * previous data. Profiled as "gp-fit".
     */
    void fit(const std::vector<std::vector<double>> &inputs,
             const std::vector<double> &targets,
             PhaseProfiler *profiler = nullptr);

    /** Predictive mean and variance at a query point. */
    GpPrediction predict(const std::vector<double> &query) const;

    /**
     * Batched predict(): fills means[c] and variances[c] for @p count
     * query points stored row-major (count x dims). Bitwise-identical
     * per query to predict(): the candidate k* vectors become columns
     * of one K* matrix so the triangular solve runs once per tile
     * (each column of the multi-RHS solve is bitwise the single-column
     * solve), and the mean/variance reductions run in simd::VecD lanes
     * across candidates with per-candidate accumulation order
     * unchanged. Safe to call concurrently (thread-local workspaces).
     */
    void predictBatch(const double *queries, std::size_t count,
                      std::size_t dims, double *means,
                      double *variances) const;

    /** Number of training points. */
    std::size_t trainingSize() const { return inputs_.size(); }

    /** Whether fit() has been called with data. */
    bool trained() const { return !inputs_.empty(); }

  private:
    double kernel(const std::vector<double> &a,
                  const std::vector<double> &b) const;

    GpConfig config_;
    std::vector<std::vector<double>> inputs_;
    std::vector<double> targets_;
    double target_mean_ = 0.0;
    Matrix alpha_;  // K^-1 (y - mean)
    CholeskyDecomposition chol_{Matrix::identity(1)};
};

} // namespace rtr

#endif // RTR_CONTROL_GAUSSIAN_PROCESS_H

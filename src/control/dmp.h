/**
 * @file
 * Dynamic Movement Primitives (kernel 13.dmp).
 *
 * A virtual spring-damper system shaped by Gaussian basis functions
 * whose weights are acquired from a single demonstration (imitation
 * learning + linear regression, paper §V.13). Rollout integrates the
 * system step by step — the fine-grained serial dependency chain the
 * paper identifies as the kernel's bottleneck.
 */

#ifndef RTR_CONTROL_DMP_H
#define RTR_CONTROL_DMP_H

#include <vector>

#include "util/profiler.h"

namespace rtr {

/** DMP hyperparameters. */
struct DmpConfig
{
    /** Number of Gaussian basis functions. */
    int n_basis = 25;
    /** Spring constant K; damping is critical (D = 2 sqrt(K)). */
    double spring_k = 150.0;
    /** Canonical system decay rate. */
    double alpha_x = 4.0;
};

/** A rolled-out trajectory: position, velocity, acceleration series. */
struct DmpTrajectory
{
    std::vector<double> position;
    std::vector<double> velocity;
    std::vector<double> acceleration;
};

/** One-dimensional DMP. */
class Dmp1D
{
  public:
    explicit Dmp1D(const DmpConfig &config = {});

    /**
     * Learn the forcing term from a demonstrated position series
     * sampled at @p dt (locally weighted regression on the basis).
     */
    void fit(const std::vector<double> &demo, double dt,
             PhaseProfiler *profiler = nullptr);

    /**
     * Roll the system out for @p n_steps of @p dt towards the trained
     * goal, optionally from a new start/goal pair (DMPs generalize by
     * shifting the spring attractor).
     */
    DmpTrajectory rollout(int n_steps, double dt,
                          PhaseProfiler *profiler = nullptr) const;

    /** Rollout with new endpoint conditions. */
    DmpTrajectory rollout(int n_steps, double dt, double start,
                          double goal,
                          PhaseProfiler *profiler = nullptr) const;

    /**
     * Rollout with temporal scaling (the paper's reference [53]):
     * time_scale > 1 executes the same spatial trajectory more slowly
     * (velocities shrink by ~1/time_scale), < 1 faster.
     */
    DmpTrajectory rolloutScaled(int n_steps, double dt, double start,
                                double goal, double time_scale,
                                PhaseProfiler *profiler = nullptr) const;

    /** Learned basis weights. */
    const std::vector<double> &weights() const { return weights_; }

    /** Demonstrated start / goal / duration. */
    double demoStart() const { return y0_; }
    double demoGoal() const { return goal_; }
    double tau() const { return tau_; }

  private:
    double forcingTerm(double x) const;

    DmpConfig config_;
    std::vector<double> centers_;
    std::vector<double> widths_;
    std::vector<double> weights_;
    double y0_ = 0.0;
    double goal_ = 1.0;
    double tau_ = 1.0;
    bool trained_ = false;
};

/** Multi-dimensional DMP: one Dmp1D per output dimension. */
class DmpND
{
  public:
    /** @param dims Output dimensionality (e.g. 2 for planar motion). */
    DmpND(std::size_t dims, const DmpConfig &config = {});

    /** Fit every dimension from a demo (demo[d] is dimension d). */
    void fit(const std::vector<std::vector<double>> &demo, double dt,
             PhaseProfiler *profiler = nullptr);

    /** Roll out every dimension. */
    std::vector<DmpTrajectory> rollout(int n_steps, double dt,
                                       PhaseProfiler *profiler =
                                           nullptr) const;

    std::size_t dims() const { return dmps_.size(); }

    const Dmp1D &dimension(std::size_t d) const { return dmps_[d]; }

  private:
    std::vector<Dmp1D> dmps_;
};

/**
 * Synthetic wheeled-robot demonstration (stands in for the paper's
 * in-house demo data): a smooth planar S-curve sampled at dt, returned
 * as {x series, y series}.
 */
std::vector<std::vector<double>> makeDemoTrajectory(int n_samples,
                                                    double dt);

} // namespace rtr

#endif // RTR_CONTROL_DMP_H

#include "control/dmp.h"

#include <cmath>

#include "geom/angle.h"
#include "util/logging.h"
#include "util/simd.h"

namespace rtr {

namespace {

/** out[t] = (in[t+1] - in[t-1]) / denom for t in [1, n-2], SIMD. */
inline void
centralDifference(double *out, const double *in, std::size_t n,
                  double denom)
{
    using simd::VecD;
    const VecD vd = VecD::broadcast(denom);
    std::size_t t = 1;
    for (; t + VecD::kWidth <= n - 1; t += VecD::kWidth)
        ((VecD::load(in + t + 1) - VecD::load(in + t - 1)) / vd)
            .store(out + t);
    for (; t + 1 < n; ++t)
        out[t] = (in[t + 1] - in[t - 1]) / denom;
}

} // namespace

Dmp1D::Dmp1D(const DmpConfig &config) : config_(config)
{
    RTR_ASSERT(config.n_basis >= 2, "DMP needs >= 2 basis functions");
    // Basis centers are spaced evenly in canonical time, i.e.
    // exponentially in x; widths overlap adjacent centers.
    centers_.resize(static_cast<std::size_t>(config.n_basis));
    widths_.resize(static_cast<std::size_t>(config.n_basis));
    for (int i = 0; i < config.n_basis; ++i) {
        double t_frac = static_cast<double>(i) / (config.n_basis - 1);
        centers_[static_cast<std::size_t>(i)] =
            std::exp(-config.alpha_x * t_frac);
    }
    for (int i = 0; i < config.n_basis; ++i) {
        double neighbor = i + 1 < config.n_basis
                              ? centers_[static_cast<std::size_t>(i + 1)]
                              : centers_[static_cast<std::size_t>(i)] * 0.5;
        double delta = centers_[static_cast<std::size_t>(i)] - neighbor;
        widths_[static_cast<std::size_t>(i)] = 1.0 / (delta * delta + 1e-9);
    }
    weights_.assign(static_cast<std::size_t>(config.n_basis), 0.0);
}

void
Dmp1D::fit(const std::vector<double> &demo, double dt,
           PhaseProfiler *profiler)
{
    ScopedPhase phase(profiler, "fit");
    RTR_ASSERT(demo.size() >= 3, "demo needs >= 3 samples");
    const std::size_t n = demo.size();
    const double k = config_.spring_k;
    const double d = 2.0 * std::sqrt(k);

    y0_ = demo.front();
    goal_ = demo.back();
    tau_ = dt * static_cast<double>(n - 1);
    double scale = goal_ - y0_;
    if (std::abs(scale) < 1e-9)
        scale = 1e-9;

    // Finite-difference velocity/acceleration of the demonstration
    // (SIMD central differences over the interior samples).
    std::vector<double> vel(n, 0.0), acc(n, 0.0);
    centralDifference(vel.data(), demo.data(), n, 2.0 * dt);
    vel[0] = (demo[1] - demo[0]) / dt;
    vel[n - 1] = (demo[n - 1] - demo[n - 2]) / dt;
    centralDifference(acc.data(), vel.data(), n, 2.0 * dt);

    // Target forcing term from inverting the transformation system:
    //   tau^2 ydd = K (g - y) - D tau yd + (g - y0) f(x)
    // Locally weighted regression per basis:
    //   w_i = sum_t psi_i(x_t) x_t f_t / sum_t psi_i(x_t) x_t^2
    std::vector<double> numerator(weights_.size(), 0.0);
    std::vector<double> denominator(weights_.size(), 1e-10);
    for (std::size_t t = 0; t < n; ++t) {
        double time = dt * static_cast<double>(t);
        double x = std::exp(-config_.alpha_x * time / tau_);
        double f_target = (tau_ * tau_ * acc[t] - k * (goal_ - demo[t]) +
                           d * tau_ * vel[t]) /
                          scale;
        for (std::size_t i = 0; i < weights_.size(); ++i) {
            double diff = x - centers_[i];
            double psi = std::exp(-widths_[i] * diff * diff);
            numerator[i] += psi * x * f_target;
            denominator[i] += psi * x * x;
        }
    }
    for (std::size_t i = 0; i < weights_.size(); ++i)
        weights_[i] = numerator[i] / denominator[i];
    trained_ = true;
}

double
Dmp1D::forcingTerm(double x) const
{
    double weighted = 0.0, total = 1e-10;
    for (std::size_t i = 0; i < weights_.size(); ++i) {
        double diff = x - centers_[i];
        double psi = std::exp(-widths_[i] * diff * diff);
        weighted += psi * weights_[i];
        total += psi;
    }
    return weighted / total * x;
}

DmpTrajectory
Dmp1D::rollout(int n_steps, double dt, PhaseProfiler *profiler) const
{
    return rollout(n_steps, dt, y0_, goal_, profiler);
}

DmpTrajectory
Dmp1D::rollout(int n_steps, double dt, double start, double goal,
               PhaseProfiler *profiler) const
{
    return rolloutScaled(n_steps, dt, start, goal, 1.0, profiler);
}

DmpTrajectory
Dmp1D::rolloutScaled(int n_steps, double dt, double start, double goal,
                     double time_scale, PhaseProfiler *profiler) const
{
    ScopedPhase phase(profiler, "rollout");
    RTR_ASSERT(trained_, "rollout before fit()");
    RTR_ASSERT(time_scale > 0.0, "time scale must be positive");
    DmpTrajectory traj;
    traj.position.reserve(static_cast<std::size_t>(n_steps));
    traj.velocity.reserve(static_cast<std::size_t>(n_steps));
    traj.acceleration.reserve(static_cast<std::size_t>(n_steps));

    const double k = config_.spring_k;
    const double d = 2.0 * std::sqrt(k);
    const double scale = goal - start;
    // Temporal scaling stretches the system clock: the same spatial
    // trajectory unfolds over time_scale x the demonstrated duration.
    const double tau = tau_ * time_scale;

    // The integration is inherently serial: every step depends on the
    // previous position, velocity, and canonical phase (the paper's
    // IPC < 1 observation).
    double y = start;
    double v = 0.0;  // scaled velocity: v = tau * yd
    double x = 1.0;
    for (int step = 0; step < n_steps; ++step) {
        double f = forcingTerm(x);
        double vd = (k * (goal - y) - d * v + scale * f) / tau;
        double yd = v / tau;
        traj.position.push_back(y);
        traj.velocity.push_back(yd);
        traj.acceleration.push_back(vd / tau);
        v += vd * dt;
        y += yd * dt;
        x += -config_.alpha_x * x / tau * dt;
    }
    return traj;
}

DmpND::DmpND(std::size_t dims, const DmpConfig &config)
{
    RTR_ASSERT(dims >= 1, "DMP needs >= 1 dimension");
    dmps_.assign(dims, Dmp1D(config));
}

void
DmpND::fit(const std::vector<std::vector<double>> &demo, double dt,
           PhaseProfiler *profiler)
{
    RTR_ASSERT(demo.size() == dmps_.size(), "demo dimensionality mismatch");
    for (std::size_t d = 0; d < dmps_.size(); ++d)
        dmps_[d].fit(demo[d], dt, profiler);
}

std::vector<DmpTrajectory>
DmpND::rollout(int n_steps, double dt, PhaseProfiler *profiler) const
{
    std::vector<DmpTrajectory> out;
    out.reserve(dmps_.size());
    for (const Dmp1D &dmp : dmps_)
        out.push_back(dmp.rollout(n_steps, dt, profiler));
    return out;
}

std::vector<std::vector<double>>
makeDemoTrajectory(int n_samples, double dt)
{
    // A smooth S-curve with a velocity profile resembling the paper's
    // Fig. 15 demonstration: forward motion with lateral oscillation.
    std::vector<double> xs, ys;
    xs.reserve(static_cast<std::size_t>(n_samples));
    ys.reserve(static_cast<std::size_t>(n_samples));
    double duration = dt * (n_samples - 1);
    for (int i = 0; i < n_samples; ++i) {
        double t = dt * i / duration;  // normalized [0, 1]
        // Minimum-jerk-like forward progress.
        double s = 10.0 * t * t * t - 15.0 * t * t * t * t +
                   6.0 * t * t * t * t * t;
        xs.push_back(15.0 * s);
        ys.push_back(3.0 * std::sin(2.0 * kPi * t) * (1.0 - t) +
                     8.0 * s * t);
    }
    return {xs, ys};
}

} // namespace rtr

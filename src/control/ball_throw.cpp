#include "control/ball_throw.h"

#include <cmath>

#include "geom/angle.h"
#include "util/logging.h"

namespace rtr {

BallThrowEnv::BallThrowEnv(double goal_distance)
    : goal_distance_(goal_distance)
{
    RTR_ASSERT(goal_distance > 0.0, "goal must be in front of the robot");
}

double
BallThrowEnv::landingPoint(const std::vector<double> &params) const
{
    RTR_ASSERT(params.size() == kParamCount, "expected ",
               kParamCount, " parameters");
    const double theta1 = params[0];
    const double theta2 = params[1];
    const double speed = params[2];

    // Release position: forward kinematics of the two links from the
    // shoulder.
    double rx = l1_ * std::cos(theta1) +
                l2_ * std::cos(theta1 + theta2);
    double ry = shoulder_height_ + l1_ * std::sin(theta1) +
                l2_ * std::sin(theta1 + theta2);

    // Release velocity along the forearm direction.
    double phi = theta1 + theta2;
    double vx = speed * std::cos(phi);
    double vy = speed * std::sin(phi);

    if (ry <= 0.0)
        return rx;  // released underground: lands where it is

    // Projectile flight to y = 0.
    double disc = vy * vy + 2.0 * gravity_ * ry;
    double t_land = (vy + std::sqrt(disc)) / gravity_;
    return rx + vx * t_land;
}

double
BallThrowEnv::evaluate(const std::vector<double> &params) const
{
    return -std::abs(landingPoint(params) - goal_distance_);
}

std::array<double, 64>
BallThrowEnv::flightTrace(const std::vector<double> &params) const
{
    RTR_ASSERT(params.size() == kParamCount, "expected ",
               kParamCount, " parameters");
    const double theta1 = params[0];
    const double theta2 = params[1];
    const double speed = params[2];

    double rx = l1_ * std::cos(theta1) + l2_ * std::cos(theta1 + theta2);
    double ry = shoulder_height_ + l1_ * std::sin(theta1) +
                l2_ * std::sin(theta1 + theta2);
    double phi = theta1 + theta2;
    double vx = speed * std::cos(phi);
    double vy = speed * std::sin(phi);

    double t_land = 0.0;
    if (ry > 0.0) {
        double disc = vy * vy + 2.0 * gravity_ * ry;
        t_land = (vy + std::sqrt(disc)) / gravity_;
    }

    std::array<double, 64> trace{};
    for (int i = 0; i < 32; ++i) {
        double t = t_land * static_cast<double>(i) / 31.0;
        trace[static_cast<std::size_t>(2 * i)] = rx + vx * t;
        trace[static_cast<std::size_t>(2 * i + 1)] =
            ry + vy * t - 0.5 * gravity_ * t * t;
    }
    return trace;
}

std::vector<double>
BallThrowEnv::lowerBounds() const
{
    return {-kPi / 2.0, -kPi / 2.0, 0.5};
}

std::vector<double>
BallThrowEnv::upperBounds() const
{
    return {kPi / 2.0, kPi / 2.0, 12.0};
}

} // namespace rtr

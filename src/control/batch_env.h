/**
 * @file
 * Batched environments for the control-stage Monte-Carlo kernels
 * (DESIGN.md "Batched environments").
 *
 * The cem, mpc and bo kernels all simulate many *independent*
 * environments whose per-step dynamics form an irreducibly serial
 * dependency chain. The batch engine runs kWidth environments in
 * lockstep instead: state lives in structure-of-arrays form (one
 * contiguous array per state component), and each model step advances
 * one simd::VecD lane of environments per instruction. Transcendental
 * calls (cos/sin/exp/log and normalizeAngle's fmod) stay scalar libm
 * calls per lane element — only the pure arithmetic chain vectorizes —
 * which is exactly what keeps the soa engine bitwise-identical to the
 * preserved scalar reference (util/batch_engine.h):
 *
 *  - every VecD op is one IEEE-754 double op per lane, never an FMA;
 *  - each environment's accumulations happen in the reference order;
 *  - expression shapes mirror the scalar source parenthesization;
 *  - branches vectorize as select(cmpGT(...)) blends of the untouched
 *    accumulator, never as arithmetic with masked zeros.
 *
 * Batches with a non-multiple-of-kWidth remainder finish on the scalar
 * reference path, so every environment count is exact by construction.
 */

#ifndef RTR_CONTROL_BATCH_ENV_H
#define RTR_CONTROL_BATCH_ENV_H

#include <cstddef>
#include <vector>

#include "control/ball_throw.h"
#include "control/cem.h"
#include "control/mpc.h"
#include "util/batch_engine.h"

namespace rtr {

// ---------------------------------------------------------------------
// Ball-throw batch (cem / bo reward + 32-sample flight trace)
// ---------------------------------------------------------------------

/**
 * Evaluate @p count throws with parameters in SoA form (theta1[i],
 * theta2[i], speed[i]). rewards[i] receives env.evaluate()'s value;
 * when @p traces is non-null, traces[i*64 .. i*64+63] receives
 * env.flightTrace()'s 32 (x, y) pairs. Both engines are bitwise
 * identical per environment.
 */
void evaluateThrowBatch(const BallThrowEnv &env, const double *theta1,
                        const double *theta2, const double *speed,
                        std::size_t count, double *rewards,
                        double *traces, BatchEngine engine);

/**
 * CemSampleEvaluator over BallThrowEnv: each chunk of samples the
 * optimizer hands over becomes one SoA batch (soa engine), or is
 * scored one call to env.evaluate()/flightTrace() at a time (scalar
 * engine, the preserved reference).
 */
class ThrowSampleEvaluator final : public CemSampleEvaluator
{
  public:
    ThrowSampleEvaluator(const BallThrowEnv &env, bool with_trace,
                         BatchEngine engine = defaultBatchEngine())
        : env_(env), with_trace_(with_trace), engine_(engine)
    {
    }

    void evaluate(CemSample *samples, std::size_t count) const override;

    BatchEngine engine() const { return engine_; }

  private:
    const BallThrowEnv &env_;
    bool with_trace_;
    BatchEngine engine_;
};

// ---------------------------------------------------------------------
// Unicycle MPC batch (forward simulation + rollout cost + gradient)
// ---------------------------------------------------------------------

/** SoA state of @c size() unicycle environments advanced in lockstep. */
struct UnicycleBatch
{
    std::vector<double> x;
    std::vector<double> y;
    std::vector<double> theta;
    std::vector<double> v;

    /** Reset to @p count copies of @p state. */
    void assign(std::size_t count, const UnicycleState &state);

    std::size_t size() const { return x.size(); }
};

/**
 * Advance every environment one model step with per-env controls
 * (MpcController::step applied element-wise). Bitwise identical under
 * both engines.
 */
void stepUnicycleBatch(UnicycleBatch &state, const double *v_cmd,
                       const double *omega_cmd, double dt,
                       BatchEngine engine);

/**
 * MpcController's horizon cost as a free function — the preserved
 * scalar reference the batched rollouts are verified against.
 */
double unicycleRolloutCost(const MpcConfig &config,
                           const UnicycleState &start,
                           const std::vector<Vec2> &reference,
                           const std::vector<double> &v,
                           const std::vector<double> &omega);

/**
 * Horizon rollout cost for @p count environments in lockstep: env e
 * starts at starts[e] and applies controls v[k*count+e],
 * omega[k*count+e] (step-major SoA). costs[e] is bitwise
 * unicycleRolloutCost() for that environment under both engines.
 */
void unicycleRolloutCostBatch(const MpcConfig &config,
                              const UnicycleState *starts,
                              const std::vector<Vec2> &reference,
                              const double *v, const double *omega,
                              std::size_t horizon, std::size_t count,
                              double *costs, BatchEngine engine);

/**
 * Central-difference gradient of the rollout cost over the control
 * sequence — the inner loop of MpcController::solve. Under the soa
 * engine the four perturbed rollouts of each horizon coordinate
 * (v+eps, v-eps, omega+eps, omega-eps) run as one four-environment SoA
 * batch; the scalar engine evaluates them one rolloutCost call at a
 * time (the preserved reference). Chunks of coordinates run on the
 * parallel runtime either way; the gradient is bitwise identical at
 * every thread count under both engines.
 */
void mpcCentralDiffGradient(const MpcConfig &config,
                            const UnicycleState &start,
                            const std::vector<Vec2> &reference,
                            const std::vector<double> &v,
                            const std::vector<double> &omega,
                            double fd_eps, std::vector<double> &grad_v,
                            std::vector<double> &grad_omega);

} // namespace rtr

#endif // RTR_CONTROL_BATCH_ENV_H

/**
 * @file
 * Bayesian optimization with a GP surrogate and UCB acquisition
 * (kernel 16.bo).
 *
 * Each learning iteration refits the Gaussian process on all
 * observations, scores a large batch of random candidates with the
 * upper-confidence-bound acquisition, sorts them (with their metadata —
 * the paper notes BO's sort is ~6x costlier than CEM's), and evaluates
 * the true reward at the best candidate.
 */

#ifndef RTR_CONTROL_BAYES_OPT_H
#define RTR_CONTROL_BAYES_OPT_H

#include <array>
#include <functional>
#include <vector>

#include "control/gaussian_process.h"
#include "util/batch_engine.h"
#include "util/profiler.h"
#include "util/rng.h"

namespace rtr {

/** BO knobs (paper: 45 learning iterations). */
struct BoConfig
{
    /** Learning iterations (true-reward evaluations after seeding). */
    int iterations = 45;
    /** Random candidates scored by the acquisition per iteration. */
    int candidates_per_iteration = 25000;
    /** Exploration weight of UCB = mean + kappa * stddev. */
    double ucb_kappa = 2.0;
    /** Random seed observations before the GP loop starts. */
    int seed_observations = 5;
    /**
     * How candidates are scored: soa evaluates whole chunks through
     * GaussianProcess::predictBatch (SIMD across candidates), scalar
     * one predict() call at a time — identical UCB argmax either way.
     * Candidate draws are staged from the caller's stream in scalar
     * order before scoring under both engines (the RNG staging
     * contract, DESIGN.md "Batched environments").
     */
    BatchEngine batch_engine = defaultBatchEngine();
    /** GP hyperparameters. */
    GpConfig gp;
};

/**
 * One true-reward observation with its GP metadata and episode trace —
 * the record BO keeps per sample. The paper notes BO's sort is ~6x
 * costlier than CEM's because "more metadata is kept with BO".
 */
struct BoObservation
{
    std::vector<double> params;
    double reward = 0.0;
    double predicted_mean = 0.0;
    double predicted_variance = 0.0;
    double acquisition = 0.0;
    int iteration = 0;
    /** Inline episode trace, as in CemSample. */
    std::array<double, 64> trace{};
    /** GP kernel-row cache against every prior observation. */
    std::array<double, 64> kernel_row{};
};

/** Optional episode-trace generator attached to each observation. */
using BoTraceFn = std::function<std::array<double, 64>(
    const std::vector<double> &)>;

/** BO outcome. */
struct BoResult
{
    /** Best parameters observed. */
    std::vector<double> best_params;
    /** Their true reward. */
    double best_reward = 0.0;
    /** True reward per learning iteration (paper Fig. 19 series). */
    std::vector<double> reward_history;
    /** Acquisition-function evaluations (the "iterations" the paper
     *  compares against cem: ~15000x more). */
    std::size_t acquisition_evals = 0;
    /** True reward-function evaluations. */
    std::size_t reward_evals = 0;
};

/** GP-UCB Bayesian optimizer over a box-bounded parameter space. */
class BayesOpt
{
  public:
    explicit BayesOpt(const BoConfig &config = {});

    /**
     * Maximize @p reward over [lo, hi]^n.
     *
     * Profiled phases: "gp-fit", "acquisition", "sort", "evaluate".
     */
    BoResult optimize(const std::function<double(
                          const std::vector<double> &)> &reward,
                      const std::vector<double> &lo,
                      const std::vector<double> &hi, Rng &rng,
                      PhaseProfiler *profiler = nullptr,
                      const BoTraceFn &trace = {}) const;

  private:
    BoConfig config_;
};

} // namespace rtr

#endif // RTR_CONTROL_BAYES_OPT_H

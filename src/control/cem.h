/**
 * @file
 * Cross-Entropy Method optimizer (kernel 15.cem).
 *
 * Monte Carlo policy search: repeatedly sample parameter vectors from a
 * Gaussian, collect rewards, sort, and refit the Gaussian to the elite
 * fraction (paper §V.15: five iterations of fifteen samples; the sort —
 * carrying each sample's full parameter vector and metadata — is the
 * non-trivial bottleneck the paper calls out).
 */

#ifndef RTR_CONTROL_CEM_H
#define RTR_CONTROL_CEM_H

#include <array>
#include <functional>
#include <vector>

#include "util/profiler.h"
#include "util/rng.h"

namespace rtr {

/** CEM knobs (paper defaults: 5 iterations x 15 samples). */
struct CemConfig
{
    /** Learning iterations. */
    int iterations = 5;
    /** Samples drawn per iteration. */
    int samples_per_iteration = 15;
    /** Elite samples kept for the refit. */
    int elites = 4;
    /** Initial stddev as a fraction of each bound's range. */
    double init_std_fraction = 0.3;
    /** Stddev floor to avoid premature collapse. */
    double min_std = 1e-3;
};

/** One evaluated sample, as carried through the sort. */
struct CemSample
{
    std::vector<double> params;
    double reward = 0.0;
    /** Metadata a learning system would carry (iteration, sample id). */
    int iteration = 0;
    int index = 0;
    /**
     * Inline episode trace (e.g. the ball's sampled flight path). Kept
     * by-value so sorting samples moves real data, as in a learner that
     * retains episode rollouts with each record.
     */
    std::array<double, 64> trace{};
};

/** Optional episode-trace generator attached to each sample. */
using CemTraceFn = std::function<std::array<double, 64>(
    const std::vector<double> &)>;

/**
 * Batched sample evaluator: fills the reward (and, when it produces
 * one, the trace) of a contiguous block of drawn samples. Each call
 * receives one chunk of the parallel runtime's decomposition, so
 * implementations may vectorize across the samples of a block (SoA
 * batching, batch_env.h) but must write only the records they were
 * handed. evaluate() runs concurrently from several threads when
 * parallelThreads() > 1 and must be a pure function of the params.
 */
class CemSampleEvaluator
{
  public:
    virtual ~CemSampleEvaluator() = default;

    /** Score samples[0..count): set reward (and possibly trace). */
    virtual void evaluate(CemSample *samples,
                          std::size_t count) const = 0;
};

/** CEM outcome. */
struct CemResult
{
    /** Best parameters seen across all iterations. */
    std::vector<double> best_params;
    /** Their reward. */
    double best_reward = 0.0;
    /** Reward of every sample in draw order (paper Fig. 18 series). */
    std::vector<double> reward_history;
    /** Total reward-function evaluations. */
    std::size_t evaluations = 0;
};

/** Cross-entropy optimizer over a box-bounded parameter space. */
class CemOptimizer
{
  public:
    explicit CemOptimizer(const CemConfig &config = {});

    /**
     * Maximize @p reward over [lo, hi]^n.
     *
     * Sample evaluation runs through the parallel runtime, so @p reward
     * and @p trace must be safe to call concurrently from several
     * threads when parallelThreads() > 1 (pure functions of the
     * parameters are ideal). Results are bitwise-identical at any
     * thread count.
     *
     * Profiled phases: "sample", "evaluate", "sort", "refit".
     */
    CemResult optimize(const std::function<double(
                           const std::vector<double> &)> &reward,
                       const std::vector<double> &lo,
                       const std::vector<double> &hi, Rng &rng,
                       PhaseProfiler *profiler = nullptr,
                       const CemTraceFn &trace = {}) const;

    /**
     * Batched overload: sample evaluation hands whole chunks of the
     * sample pool to @p evaluator, so one chunk can be advanced as a
     * SIMD-across-environments batch. Bitwise-identical to the
     * functional overload when the evaluator computes the same
     * reward/trace per sample.
     */
    CemResult optimize(const CemSampleEvaluator &evaluator,
                       const std::vector<double> &lo,
                       const std::vector<double> &hi, Rng &rng,
                       PhaseProfiler *profiler = nullptr) const;

  private:
    CemConfig config_;
};

} // namespace rtr

#endif // RTR_CONTROL_CEM_H

#include "control/bayes_opt.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "telemetry/trace.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace rtr {

BayesOpt::BayesOpt(const BoConfig &config) : config_(config)
{
    RTR_ASSERT(config.iterations >= 1, "BO needs >= 1 iteration");
    RTR_ASSERT(config.seed_observations >= 2,
               "BO needs >= 2 seed observations");
}

BoResult
BayesOpt::optimize(
    const std::function<double(const std::vector<double> &)> &reward,
    const std::vector<double> &lo, const std::vector<double> &hi, Rng &rng,
    PhaseProfiler *profiler, const BoTraceFn &trace) const
{
    RTR_ASSERT(lo.size() == hi.size() && !lo.empty(),
               "bad parameter bounds");
    const std::size_t dims = lo.size();

    BoResult result;
    result.best_reward = -std::numeric_limits<double>::max();

    std::vector<BoObservation> observations;
    std::vector<std::vector<double>> observed_x;
    std::vector<double> observed_y;

    auto sample_uniform = [&] {
        std::vector<double> x(dims);
        for (std::size_t d = 0; d < dims; ++d)
            x[d] = rng.uniform(lo[d], hi[d]);
        return x;
    };
    auto record = [&](BoObservation obs) {
        obs.reward = reward(obs.params);
        if (trace)
            obs.trace = trace(obs.params);
        observed_x.push_back(obs.params);
        observed_y.push_back(obs.reward);
        result.reward_history.push_back(obs.reward);
        ++result.reward_evals;
        if (obs.reward > result.best_reward) {
            result.best_reward = obs.reward;
            result.best_params = obs.params;
        }
        observations.push_back(std::move(obs));
    };

    // Seed observations.
    {
        ScopedPhase phase(profiler, "evaluate");
        for (int s = 0; s < config_.seed_observations; ++s) {
            BoObservation obs;
            obs.params = sample_uniform();
            obs.iteration = -1;
            record(std::move(obs));
        }
    }

    GaussianProcess gp(config_.gp);
    for (int iter = 0; iter < config_.iterations; ++iter) {
        gp.fit(observed_x, observed_y, profiler);

        // Acquisition maximization: scan a large random candidate batch
        // and keep the UCB argmax. These scans are the "~15000x more
        // iterations" the paper compares against cem.
        BoObservation best;
        best.acquisition = -std::numeric_limits<double>::max();
        {
            ScopedPhase phase(profiler, "acquisition");
            telemetry::TraceSpan span("batch-acquisition");
            const auto n_cand = static_cast<std::size_t>(
                config_.candidates_per_iteration);

            // Stage every candidate draw from the caller's stream in
            // the scalar evaluation order (candidate-major, dimension-
            // minor) before any scoring, so the stream position after
            // this phase is engine-independent — the RNG staging
            // contract (DESIGN.md "Batched environments").
            thread_local std::vector<double> cand, mean_buf, var_buf;
            cand.resize(n_cand * dims);
            mean_buf.resize(n_cand);
            var_buf.resize(n_cand);
            for (std::size_t c = 0; c < n_cand; ++c)
                for (std::size_t d = 0; d < dims; ++d)
                    cand[c * dims + d] = rng.uniform(lo[d], hi[d]);

            // Score chunks of candidates on the parallel runtime: each
            // chunk is one predictBatch SoA batch (soa engine) or a
            // run of predict() calls (scalar reference); both write
            // disjoint mean/variance slots. The buffers' data pointers
            // are captured by value: the vectors are thread_local,
            // which a lambda does not capture — workers would resolve
            // the names to their own (empty) instances.
            const BatchEngine engine = config_.batch_engine;
            const double *const cand_p = cand.data();
            double *const mean_p = mean_buf.data();
            double *const var_p = var_buf.data();
            parallelForChunks(0, n_cand, 0, [&, cand_p, mean_p, var_p,
                                             engine, dims](
                                                const ChunkRange &chunk) {
                if (engine == BatchEngine::Soa) {
                    gp.predictBatch(cand_p + chunk.begin * dims,
                                    chunk.end - chunk.begin, dims,
                                    mean_p + chunk.begin,
                                    var_p + chunk.begin);
                    return;
                }
                thread_local std::vector<double> query;
                query.resize(dims);
                for (std::size_t c = chunk.begin; c < chunk.end; ++c) {
                    for (std::size_t d = 0; d < dims; ++d)
                        query[d] = cand_p[c * dims + d];
                    GpPrediction pred = gp.predict(query);
                    mean_p[c] = pred.mean;
                    var_p[c] = pred.variance;
                }
            });

            // Serial first-strict-max argmax in candidate order: ties
            // resolve exactly as the sequential scan did.
            std::size_t best_c = 0;
            for (std::size_t c = 0; c < n_cand; ++c) {
                double ucb = mean_buf[c] +
                             config_.ucb_kappa * std::sqrt(var_buf[c]);
                ++result.acquisition_evals;
                if (ucb > best.acquisition) {
                    best.acquisition = ucb;
                    best_c = c;
                    best.predicted_mean = mean_buf[c];
                    best.predicted_variance = var_buf[c];
                }
            }
            best.params.assign(cand.begin() +
                                   static_cast<std::ptrdiff_t>(best_c *
                                                               dims),
                               cand.begin() +
                                   static_cast<std::ptrdiff_t>(
                                       (best_c + 1) * dims));
            best.iteration = iter;
            // Kernel-row cache against the existing observations (part
            // of the per-record GP metadata).
            for (std::size_t i = 0;
                 i < observations.size() && i < best.kernel_row.size();
                 ++i) {
                double d2 = 0.0;
                for (std::size_t d = 0; d < dims; ++d) {
                    double diff =
                        best.params[d] - observations[i].params[d];
                    d2 += diff * diff;
                }
                best.kernel_row[i] = std::exp(
                    -0.5 * d2 /
                    (config_.gp.length_scale * config_.gp.length_scale));
            }
        }

        {
            ScopedPhase phase(profiler, "evaluate");
            record(std::move(best));
        }

        {
            // The paper's BO sort: order the observation records —
            // parameters, GP metadata, traces — by reward after every
            // learning iteration.
            ScopedPhase phase(profiler, "sort");
            std::sort(observations.begin(), observations.end(),
                      [](const BoObservation &a, const BoObservation &b) {
                          return a.reward > b.reward;
                      });
        }
    }
    return result;
}

} // namespace rtr

#include "control/bayes_opt.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace rtr {

BayesOpt::BayesOpt(const BoConfig &config) : config_(config)
{
    RTR_ASSERT(config.iterations >= 1, "BO needs >= 1 iteration");
    RTR_ASSERT(config.seed_observations >= 2,
               "BO needs >= 2 seed observations");
}

BoResult
BayesOpt::optimize(
    const std::function<double(const std::vector<double> &)> &reward,
    const std::vector<double> &lo, const std::vector<double> &hi, Rng &rng,
    PhaseProfiler *profiler, const BoTraceFn &trace) const
{
    RTR_ASSERT(lo.size() == hi.size() && !lo.empty(),
               "bad parameter bounds");
    const std::size_t dims = lo.size();

    BoResult result;
    result.best_reward = -std::numeric_limits<double>::max();

    std::vector<BoObservation> observations;
    std::vector<std::vector<double>> observed_x;
    std::vector<double> observed_y;

    auto sample_uniform = [&] {
        std::vector<double> x(dims);
        for (std::size_t d = 0; d < dims; ++d)
            x[d] = rng.uniform(lo[d], hi[d]);
        return x;
    };
    auto record = [&](BoObservation obs) {
        obs.reward = reward(obs.params);
        if (trace)
            obs.trace = trace(obs.params);
        observed_x.push_back(obs.params);
        observed_y.push_back(obs.reward);
        result.reward_history.push_back(obs.reward);
        ++result.reward_evals;
        if (obs.reward > result.best_reward) {
            result.best_reward = obs.reward;
            result.best_params = obs.params;
        }
        observations.push_back(std::move(obs));
    };

    // Seed observations.
    {
        ScopedPhase phase(profiler, "evaluate");
        for (int s = 0; s < config_.seed_observations; ++s) {
            BoObservation obs;
            obs.params = sample_uniform();
            obs.iteration = -1;
            record(std::move(obs));
        }
    }

    GaussianProcess gp(config_.gp);
    for (int iter = 0; iter < config_.iterations; ++iter) {
        gp.fit(observed_x, observed_y, profiler);

        // Acquisition maximization: scan a large random candidate batch
        // and keep the UCB argmax. These scans are the "~15000x more
        // iterations" the paper compares against cem.
        BoObservation best;
        best.acquisition = -std::numeric_limits<double>::max();
        {
            ScopedPhase phase(profiler, "acquisition");
            std::vector<double> candidate(dims);
            for (int c = 0; c < config_.candidates_per_iteration; ++c) {
                for (std::size_t d = 0; d < dims; ++d)
                    candidate[d] = rng.uniform(lo[d], hi[d]);
                GpPrediction pred = gp.predict(candidate);
                double ucb = pred.mean +
                             config_.ucb_kappa * std::sqrt(pred.variance);
                ++result.acquisition_evals;
                if (ucb > best.acquisition) {
                    best.acquisition = ucb;
                    best.params = candidate;
                    best.predicted_mean = pred.mean;
                    best.predicted_variance = pred.variance;
                }
            }
            best.iteration = iter;
            // Kernel-row cache against the existing observations (part
            // of the per-record GP metadata).
            for (std::size_t i = 0;
                 i < observations.size() && i < best.kernel_row.size();
                 ++i) {
                double d2 = 0.0;
                for (std::size_t d = 0; d < dims; ++d) {
                    double diff =
                        best.params[d] - observations[i].params[d];
                    d2 += diff * diff;
                }
                best.kernel_row[i] = std::exp(
                    -0.5 * d2 /
                    (config_.gp.length_scale * config_.gp.length_scale));
            }
        }

        {
            ScopedPhase phase(profiler, "evaluate");
            record(std::move(best));
        }

        {
            // The paper's BO sort: order the observation records —
            // parameters, GP metadata, traces — by reward after every
            // learning iteration.
            ScopedPhase phase(profiler, "sort");
            std::sort(observations.begin(), observations.end(),
                      [](const BoObservation &a, const BoObservation &b) {
                          return a.reward > b.reward;
                      });
        }
    }
    return result;
}

} // namespace rtr

/**
 * @file
 * Ball-throwing robot environment (kernels 15.cem / 16.bo).
 *
 * Replaces the paper's V-REP simulation with an analytic model that
 * exercises the same learning loop: a 2-DoF arm (paper Fig. 17)
 * releases a ball with a parameterized configuration and speed; the
 * reward is how close the ball lands to the goal.
 */

#ifndef RTR_CONTROL_BALL_THROW_H
#define RTR_CONTROL_BALL_THROW_H

#include <array>
#include <vector>

namespace rtr {

/** Analytic 2-DoF throwing environment. */
class BallThrowEnv
{
  public:
    /** Learnable parameters: shoulder angle, elbow angle, release speed. */
    static constexpr std::size_t kParamCount = 3;

    /**
     * @param goal_distance Where (along x) the ball should land.
     */
    explicit BallThrowEnv(double goal_distance = 5.0);

    /**
     * Reward of a throw (higher is better): negative distance between
     * the landing point and the goal.
     */
    double evaluate(const std::vector<double> &params) const;

    /** Landing x-coordinate of a throw. */
    double landingPoint(const std::vector<double> &params) const;

    /**
     * Sampled flight path of the ball: 32 (x, y) pairs from release to
     * landing, packed into a fixed array (the episode trace a learner
     * stores with each sample).
     */
    std::array<double, 64> flightTrace(
        const std::vector<double> &params) const;

    /** Lower parameter bounds (angles in radians, speed in m/s). */
    std::vector<double> lowerBounds() const;

    /** Upper parameter bounds. */
    std::vector<double> upperBounds() const;

    double goalDistance() const { return goal_distance_; }

    /** Model constants (the batched evaluator mirrors the kinematics). */
    double shoulderHeight() const { return shoulder_height_; }
    double upperArmLength() const { return l1_; }
    double forearmLength() const { return l2_; }
    double gravity() const { return gravity_; }

  private:
    double goal_distance_;
    double shoulder_height_ = 1.0;
    double l1_ = 0.5;
    double l2_ = 0.4;
    double gravity_ = 9.81;
};

} // namespace rtr

#endif // RTR_CONTROL_BALL_THROW_H

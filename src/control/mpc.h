/**
 * @file
 * Model Predictive Control for trajectory tracking (kernel 14.mpc).
 *
 * A kinematic unicycle follows a long reference trajectory under
 * velocity/acceleration constraints (paper Fig. 16). Each control step
 * solves a finite-horizon optimization — projected gradient descent
 * with numerical gradients over the control sequence — which is the
 * >80% "optimization" bottleneck the paper reports.
 */

#ifndef RTR_CONTROL_MPC_H
#define RTR_CONTROL_MPC_H

#include <vector>

#include "geom/vec2.h"
#include "util/batch_engine.h"
#include "util/profiler.h"

namespace rtr {

/** Unicycle model state. */
struct UnicycleState
{
    double x = 0.0;
    double y = 0.0;
    double theta = 0.0;
    /** Current linear velocity (for acceleration limits). */
    double v = 0.0;
};

/** MPC knobs. */
struct MpcConfig
{
    /** Lookahead steps. */
    int horizon = 15;
    /** Model timestep. */
    double dt = 0.1;
    /** Velocity limit (the paper's "not exceeding predefined velocity"). */
    double v_max = 2.0;
    /** Acceleration limit. */
    double a_max = 1.5;
    /** Turn-rate limit. */
    double omega_max = 1.5;
    /** Gradient-descent iterations per solve. */
    int opt_iterations = 40;
    /** Gradient-descent step size. */
    double learning_rate = 0.08;
    /** Cost weight: squared deviation from the reference. */
    double w_tracking = 10.0;
    /** Cost weight: control effort. */
    double w_effort = 0.05;
    /** Cost weight: control smoothness (state change along the path). */
    double w_smooth = 0.5;
    /**
     * How the gradient's perturbed rollouts run: soa batches the four
     * rollouts of each horizon coordinate into SIMD lanes, scalar runs
     * them one at a time (bitwise-identical solutions either way).
     */
    BatchEngine batch_engine = defaultBatchEngine();
};

/** One MPC solve's outcome. */
struct MpcSolution
{
    /** Optimized linear velocities over the horizon. */
    std::vector<double> v;
    /** Optimized angular velocities over the horizon. */
    std::vector<double> omega;
    /** Final optimization cost. */
    double cost = 0.0;
    /** Cost-function evaluations spent (2 per gradient coordinate). */
    std::size_t cost_evals = 0;
};

/** Receding-horizon controller. */
class MpcController
{
  public:
    explicit MpcController(const MpcConfig &config = {});

    /**
     * Solve the horizon problem from the current state against the next
     * horizon() reference points. Profiled as "optimize".
     *
     * Warm-starts from the previous solution (shifted by one step).
     */
    MpcSolution solve(const UnicycleState &current,
                      const std::vector<Vec2> &reference,
                      PhaseProfiler *profiler = nullptr);

    /** Forward-simulate one control on the model ("simulate" phase). */
    static UnicycleState step(const UnicycleState &state, double v,
                              double omega, double dt);

    const MpcConfig &config() const { return config_; }

    /** Reset the warm start (e.g. when tracking a new trajectory). */
    void reset();

  private:
    MpcConfig config_;
    std::vector<double> warm_v_;
    std::vector<double> warm_omega_;
};

/** Whole-trajectory tracking statistics. */
struct TrackingResult
{
    /** Realized states, one per control step. */
    std::vector<UnicycleState> states;
    /** Mean distance to the reference. */
    double avg_error = 0.0;
    /** Peak distance to the reference. */
    double max_error = 0.0;
    /** Peak realized velocity (to verify the constraint held). */
    double max_velocity = 0.0;
    /** Total optimization cost-function evaluations. */
    std::size_t cost_evals = 0;
};

/**
 * Drive the unicycle along a long reference polyline with receding-
 * horizon MPC. "optimize" and "simulate" phases accumulate into the
 * profiler.
 */
TrackingResult trackTrajectory(MpcController &controller,
                               const std::vector<Vec2> &reference,
                               const UnicycleState &start,
                               PhaseProfiler *profiler = nullptr);

/** Long smooth reference trajectory (Fig. 16 stand-in). */
std::vector<Vec2> makeReferenceTrajectory(int n_points, double spacing);

} // namespace rtr

#endif // RTR_CONTROL_MPC_H

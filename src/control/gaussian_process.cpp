#include "control/gaussian_process.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/simd.h"

namespace rtr {

GaussianProcess::GaussianProcess(const GpConfig &config) : config_(config) {}

double
GaussianProcess::kernel(const std::vector<double> &a,
                        const std::vector<double> &b) const
{
    double d2 = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double diff = a[i] - b[i];
        d2 += diff * diff;
    }
    return config_.signal_variance *
           std::exp(-0.5 * d2 /
                    (config_.length_scale * config_.length_scale));
}

void
GaussianProcess::fit(const std::vector<std::vector<double>> &inputs,
                     const std::vector<double> &targets,
                     PhaseProfiler *profiler)
{
    ScopedPhase phase(profiler, "gp-fit");
    RTR_ASSERT(inputs.size() == targets.size() && !inputs.empty(),
               "GP fit needs matching, non-empty data");
    inputs_ = inputs;
    targets_ = targets;

    const std::size_t n = inputs_.size();
    target_mean_ = 0.0;
    for (double t : targets_)
        target_mean_ += t;
    target_mean_ /= static_cast<double>(n);

    Matrix k(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            double v = kernel(inputs_[i], inputs_[j]);
            k(i, j) = v;
            k(j, i) = v;
        }
        k(i, i) += config_.noise_variance;
    }

    chol_ = CholeskyDecomposition(k);
    RTR_ASSERT(!chol_.failed(), "GP kernel matrix not positive-definite");

    Matrix centered(n, 1);
    for (std::size_t i = 0; i < n; ++i)
        centered(i, 0) = targets_[i] - target_mean_;
    alpha_ = chol_.solve(centered);
}

GpPrediction
GaussianProcess::predict(const std::vector<double> &query) const
{
    RTR_ASSERT(trained(), "predict before fit");
    const std::size_t n = inputs_.size();

    // The BO acquisition loop calls predict() ~10^6 times per run; the
    // k* vector and the solve output live in thread-local workspaces so
    // the hot path performs no heap allocation after warm-up.
    thread_local Matrix k_star;
    thread_local Matrix v;
    k_star.resize(n, 1);
    const double *alpha = alpha_.data();
    double *ks = k_star.data();
    for (std::size_t i = 0; i < n; ++i)
        ks[i] = kernel(inputs_[i], query);

    GpPrediction out;
    out.mean = target_mean_;
    for (std::size_t i = 0; i < n; ++i)
        out.mean += ks[i] * alpha[i];

    // Predictive variance: k(x,x) - k*^T K^-1 k*.
    chol_.solveInto(k_star, v);
    const double *vp = v.data();
    double reduction = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        reduction += ks[i] * vp[i];
    out.variance = std::max(0.0, kernel(query, query) - reduction);
    return out;
}

void
GaussianProcess::predictBatch(const double *queries, std::size_t count,
                              std::size_t dims, double *means,
                              double *variances) const
{
    RTR_ASSERT(trained(), "predict before fit");
    RTR_ASSERT(dims > 0, "queries need >= 1 dimension");
    using simd::VecD;
    const std::size_t n = inputs_.size();
    // Same single multiply kernel() performs for the denominator.
    const double ls2 = config_.length_scale * config_.length_scale;
    const double sv = config_.signal_variance;
    const double *alpha = alpha_.data();

    thread_local Matrix k_star; // n x m: k(x_i, q_c), candidates as cols
    thread_local Matrix sol;

    // Candidate tiling bounds the workspace; 256 columns keep one K*
    // row within a few cache lines while amortizing the solve.
    constexpr std::size_t kTile = 256;
    for (std::size_t base = 0; base < count; base += kTile) {
        const std::size_t m = std::min(kTile, count - base);
        k_star.resize(n, m);
        double *ks = k_star.data();
        for (std::size_t i = 0; i < n; ++i) {
            const std::vector<double> &xi = inputs_[i];
            double *row = ks + i * m;
            for (std::size_t c = 0; c < m; ++c) {
                const double *q = queries + (base + c) * dims;
                double d2 = 0.0;
                for (std::size_t d = 0; d < dims; ++d) {
                    double diff = xi[d] - q[d];
                    d2 += diff * diff;
                }
                row[c] = sv * std::exp(-0.5 * d2 / ls2);
            }
        }

        chol_.solveInto(k_star, sol);
        const double *sp = sol.data();

        // k(q,q) mirrored as the zero-distance loop so non-finite
        // queries degrade exactly as kernel(query, query) does.
        auto kxxOf = [&](std::size_t c) {
            const double *q = queries + c * dims;
            double d2 = 0.0;
            for (std::size_t d = 0; d < dims; ++d) {
                double diff = q[d] - q[d];
                d2 += diff * diff;
            }
            return sv * std::exp(-0.5 * d2 / ls2);
        };

        std::size_t c = 0;
        for (; c + VecD::kWidth <= m; c += VecD::kWidth) {
            VecD meanv = VecD::broadcast(target_mean_);
            VecD redv = VecD::zero();
            for (std::size_t i = 0; i < n; ++i) {
                const VecD ksv = VecD::load(ks + i * m + c);
                meanv = VecD::mulAdd(meanv, ksv,
                                     VecD::broadcast(alpha[i]));
                redv = VecD::mulAdd(redv, ksv,
                                    VecD::load(sp + i * m + c));
            }
            double ml[VecD::kWidth], rl[VecD::kWidth];
            meanv.store(ml);
            redv.store(rl);
            for (std::size_t l = 0; l < VecD::kWidth; ++l) {
                const std::size_t cc = base + c + l;
                means[cc] = ml[l];
                variances[cc] = std::max(0.0, kxxOf(cc) - rl[l]);
            }
        }
        for (; c < m; ++c) { // remainder candidates: scalar reference
            double mean = target_mean_;
            double red = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                mean += ks[i * m + c] * alpha[i];
                red += ks[i * m + c] * sp[i * m + c];
            }
            const std::size_t cc = base + c;
            means[cc] = mean;
            variances[cc] = std::max(0.0, kxxOf(cc) - red);
        }
    }
}

} // namespace rtr

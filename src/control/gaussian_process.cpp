#include "control/gaussian_process.h"

#include <cmath>

#include "util/logging.h"

namespace rtr {

GaussianProcess::GaussianProcess(const GpConfig &config) : config_(config) {}

double
GaussianProcess::kernel(const std::vector<double> &a,
                        const std::vector<double> &b) const
{
    double d2 = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double diff = a[i] - b[i];
        d2 += diff * diff;
    }
    return config_.signal_variance *
           std::exp(-0.5 * d2 /
                    (config_.length_scale * config_.length_scale));
}

void
GaussianProcess::fit(const std::vector<std::vector<double>> &inputs,
                     const std::vector<double> &targets,
                     PhaseProfiler *profiler)
{
    ScopedPhase phase(profiler, "gp-fit");
    RTR_ASSERT(inputs.size() == targets.size() && !inputs.empty(),
               "GP fit needs matching, non-empty data");
    inputs_ = inputs;
    targets_ = targets;

    const std::size_t n = inputs_.size();
    target_mean_ = 0.0;
    for (double t : targets_)
        target_mean_ += t;
    target_mean_ /= static_cast<double>(n);

    Matrix k(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            double v = kernel(inputs_[i], inputs_[j]);
            k(i, j) = v;
            k(j, i) = v;
        }
        k(i, i) += config_.noise_variance;
    }

    chol_ = CholeskyDecomposition(k);
    RTR_ASSERT(!chol_.failed(), "GP kernel matrix not positive-definite");

    Matrix centered(n, 1);
    for (std::size_t i = 0; i < n; ++i)
        centered(i, 0) = targets_[i] - target_mean_;
    alpha_ = chol_.solve(centered);
}

GpPrediction
GaussianProcess::predict(const std::vector<double> &query) const
{
    RTR_ASSERT(trained(), "predict before fit");
    const std::size_t n = inputs_.size();

    // The BO acquisition loop calls predict() ~10^6 times per run; the
    // k* vector and the solve output live in thread-local workspaces so
    // the hot path performs no heap allocation after warm-up.
    thread_local Matrix k_star;
    thread_local Matrix v;
    k_star.resize(n, 1);
    const double *alpha = alpha_.data();
    double *ks = k_star.data();
    for (std::size_t i = 0; i < n; ++i)
        ks[i] = kernel(inputs_[i], query);

    GpPrediction out;
    out.mean = target_mean_;
    for (std::size_t i = 0; i < n; ++i)
        out.mean += ks[i] * alpha[i];

    // Predictive variance: k(x,x) - k*^T K^-1 k*.
    chol_.solveInto(k_star, v);
    const double *vp = v.data();
    double reduction = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        reduction += ks[i] * vp[i];
    out.variance = std::max(0.0, kernel(query, query) - reduction);
    return out;
}

} // namespace rtr

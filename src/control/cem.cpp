#include "control/cem.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/parallel.h"

namespace rtr {

CemOptimizer::CemOptimizer(const CemConfig &config) : config_(config)
{
    RTR_ASSERT(config.elites >= 1 &&
                   config.elites <= config.samples_per_iteration,
               "elites must be in [1, samples_per_iteration]");
}

CemResult
CemOptimizer::optimize(
    const std::function<double(const std::vector<double> &)> &reward,
    const std::vector<double> &lo, const std::vector<double> &hi, Rng &rng,
    PhaseProfiler *profiler, const CemTraceFn &trace) const
{
    RTR_ASSERT(lo.size() == hi.size() && !lo.empty(),
               "bad parameter bounds");
    const std::size_t dims = lo.size();

    CemResult result;
    result.best_reward = -std::numeric_limits<double>::max();

    // Initial Gaussian: centered in the box.
    std::vector<double> mean(dims), stddev(dims);
    for (std::size_t d = 0; d < dims; ++d) {
        mean[d] = 0.5 * (lo[d] + hi[d]);
        stddev[d] = config_.init_std_fraction * (hi[d] - lo[d]);
    }

    std::vector<CemSample> samples(
        static_cast<std::size_t>(config_.samples_per_iteration));

    for (int iter = 0; iter < config_.iterations; ++iter) {
        {
            ScopedPhase phase(profiler, "sample");
            for (int s = 0; s < config_.samples_per_iteration; ++s) {
                CemSample &sample = samples[static_cast<std::size_t>(s)];
                sample.params.resize(dims);
                for (std::size_t d = 0; d < dims; ++d) {
                    double value = rng.normal(mean[d], stddev[d]);
                    sample.params[d] = std::clamp(value, lo[d], hi[d]);
                }
                sample.iteration = iter;
                sample.index = s;
            }
        }

        {
            ScopedPhase phase(profiler, "evaluate");
            // Rollout scoring is the parallel phase: each sample's
            // reward/trace writes only its own record. The best-so-far
            // bookkeeping runs serially in sample order below, so ties
            // resolve exactly as in sequential execution.
            parallelFor(0, samples.size(), 1, [&](std::size_t s) {
                CemSample &sample = samples[s];
                sample.reward = reward(sample.params);
                if (trace)
                    sample.trace = trace(sample.params);
            });
            for (CemSample &sample : samples) {
                ++result.evaluations;
                result.reward_history.push_back(sample.reward);
                if (sample.reward > result.best_reward) {
                    result.best_reward = sample.reward;
                    result.best_params = sample.params;
                }
            }
        }

        {
            // The paper's sort bottleneck: order the full sample
            // records (parameters + metadata) by reward, descending.
            ScopedPhase phase(profiler, "sort");
            std::sort(samples.begin(), samples.end(),
                      [](const CemSample &a, const CemSample &b) {
                          return a.reward > b.reward;
                      });
        }

        {
            ScopedPhase phase(profiler, "refit");
            const auto n_elite = static_cast<std::size_t>(config_.elites);
            for (std::size_t d = 0; d < dims; ++d) {
                double sum = 0.0;
                for (std::size_t e = 0; e < n_elite; ++e)
                    sum += samples[e].params[d];
                double new_mean = sum / static_cast<double>(n_elite);
                double var = 0.0;
                for (std::size_t e = 0; e < n_elite; ++e) {
                    double diff = samples[e].params[d] - new_mean;
                    var += diff * diff;
                }
                mean[d] = new_mean;
                stddev[d] = std::max(
                    config_.min_std,
                    std::sqrt(var / static_cast<double>(n_elite)));
            }
        }
    }
    return result;
}

} // namespace rtr

#include "control/cem.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/parallel.h"
#include "util/simd.h"

namespace rtr {

namespace {

/** Adapts the per-sample reward/trace closures to the batched API. */
class FnSampleEvaluator final : public CemSampleEvaluator
{
  public:
    FnSampleEvaluator(
        const std::function<double(const std::vector<double> &)> &reward,
        const CemTraceFn &trace)
        : reward_(reward), trace_(trace)
    {
    }

    void
    evaluate(CemSample *samples, std::size_t count) const override
    {
        for (std::size_t s = 0; s < count; ++s) {
            samples[s].reward = reward_(samples[s].params);
            if (trace_)
                samples[s].trace = trace_(samples[s].params);
        }
    }

  private:
    const std::function<double(const std::vector<double> &)> &reward_;
    const CemTraceFn &trace_;
};

} // namespace

CemOptimizer::CemOptimizer(const CemConfig &config) : config_(config)
{
    RTR_ASSERT(config.elites >= 1 &&
                   config.elites <= config.samples_per_iteration,
               "elites must be in [1, samples_per_iteration]");
}

CemResult
CemOptimizer::optimize(
    const std::function<double(const std::vector<double> &)> &reward,
    const std::vector<double> &lo, const std::vector<double> &hi, Rng &rng,
    PhaseProfiler *profiler, const CemTraceFn &trace) const
{
    FnSampleEvaluator evaluator(reward, trace);
    return optimize(evaluator, lo, hi, rng, profiler);
}

CemResult
CemOptimizer::optimize(const CemSampleEvaluator &evaluator,
                       const std::vector<double> &lo,
                       const std::vector<double> &hi, Rng &rng,
                       PhaseProfiler *profiler) const
{
    RTR_ASSERT(lo.size() == hi.size() && !lo.empty(),
               "bad parameter bounds");
    const std::size_t dims = lo.size();

    CemResult result;
    result.best_reward = -std::numeric_limits<double>::max();

    // Initial Gaussian: centered in the box.
    std::vector<double> mean(dims), stddev(dims);
    for (std::size_t d = 0; d < dims; ++d) {
        mean[d] = 0.5 * (lo[d] + hi[d]);
        stddev[d] = config_.init_std_fraction * (hi[d] - lo[d]);
    }

    // The sample pool is thread_local: one learning episode is only a
    // few dozen evaluations and the kernels re-run thousands of them,
    // so a per-episode pool (and the per-sample params vectors inside
    // it) would be reallocated constantly. The pool keeps its capacity
    // across optimize() calls; every field read below is overwritten
    // first.
    thread_local std::vector<CemSample> pool;
    const auto n_samples =
        static_cast<std::size_t>(config_.samples_per_iteration);
    if (pool.size() < n_samples)
        pool.resize(n_samples);

    for (int iter = 0; iter < config_.iterations; ++iter) {
        {
            ScopedPhase phase(profiler, "sample");
            for (int s = 0; s < config_.samples_per_iteration; ++s) {
                CemSample &sample = pool[static_cast<std::size_t>(s)];
                sample.params.resize(dims);
                for (std::size_t d = 0; d < dims; ++d) {
                    double value = rng.normal(mean[d], stddev[d]);
                    sample.params[d] = std::clamp(value, lo[d], hi[d]);
                }
                sample.iteration = iter;
                sample.index = s;
            }
        }

        {
            ScopedPhase phase(profiler, "evaluate");
            // Rollout scoring is the parallel phase: a chunk of samples
            // is the batch handed to the evaluator, which writes only
            // its own records (SIMD lanes advance the environments of a
            // chunk together under the soa engine). The best-so-far
            // bookkeeping runs serially in sample order below, so ties
            // resolve exactly as in sequential execution. The pool's
            // data pointer is captured by value: `pool` is thread_local,
            // which a lambda does not capture — workers would resolve
            // the name to their own (empty) instance.
            CemSample *const records = pool.data();
            parallelForChunks(
                0, n_samples, simd::VecD::kWidth,
                [records, &evaluator](const ChunkRange &chunk) {
                    evaluator.evaluate(records + chunk.begin,
                                       chunk.end - chunk.begin);
                });
            for (std::size_t s = 0; s < n_samples; ++s) {
                CemSample &sample = pool[s];
                ++result.evaluations;
                result.reward_history.push_back(sample.reward);
                if (sample.reward > result.best_reward) {
                    result.best_reward = sample.reward;
                    result.best_params = sample.params;
                }
            }
        }

        {
            // The paper's sort bottleneck: order the full sample
            // records (parameters + metadata) by reward, descending.
            ScopedPhase phase(profiler, "sort");
            std::sort(pool.begin(),
                      pool.begin() + static_cast<std::ptrdiff_t>(n_samples),
                      [](const CemSample &a, const CemSample &b) {
                          return a.reward > b.reward;
                      });
        }

        {
            ScopedPhase phase(profiler, "refit");
            const auto n_elite = static_cast<std::size_t>(config_.elites);
            for (std::size_t d = 0; d < dims; ++d) {
                double sum = 0.0;
                for (std::size_t e = 0; e < n_elite; ++e)
                    sum += pool[e].params[d];
                double new_mean = sum / static_cast<double>(n_elite);
                double var = 0.0;
                for (std::size_t e = 0; e < n_elite; ++e) {
                    double diff = pool[e].params[d] - new_mean;
                    var += diff * diff;
                }
                mean[d] = new_mean;
                stddev[d] = std::max(
                    config_.min_std,
                    std::sqrt(var / static_cast<double>(n_elite)));
            }
        }
    }
    return result;
}

} // namespace rtr

#include "control/batch_env.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "geom/angle.h"
#include "telemetry/trace.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/simd.h"

namespace rtr {

using simd::VecD;

namespace {

constexpr std::size_t kW = VecD::kWidth;

/** Scalar-reference throw evaluation of one environment. */
void
evaluateThrowOne(const BallThrowEnv &env, double theta1, double theta2,
                 double speed, double *reward, double *trace64)
{
    thread_local std::vector<double> params;
    params.assign({theta1, theta2, speed});
    *reward = env.evaluate(params);
    if (trace64) {
        const std::array<double, 64> t = env.flightTrace(params);
        std::memcpy(trace64, t.data(), sizeof(double) * t.size());
    }
}

/**
 * One full-width throw tile: mirrors BallThrowEnv::landingPoint /
 * evaluate / flightTrace expression-for-expression (the comments in
 * ball_throw.cpp are the reference). cos/sin are scalar libm calls per
 * lane; the projectile arithmetic runs in VecD lanes. Lanes released
 * underground (ry <= 0) are patched to the scalar branch's values
 * before the reward/trace are produced.
 */
void
throwTileSoa(const BallThrowEnv &env, const double *theta1,
             const double *theta2, const double *speed, double *rewards,
             double *traces)
{
    const double goal = env.goalDistance();
    const VecD l1 = VecD::broadcast(env.upperArmLength());
    const VecD l2 = VecD::broadcast(env.forearmLength());
    const VecD sh = VecD::broadcast(env.shoulderHeight());
    const VecD g = VecD::broadcast(env.gravity());
    const VecD two_g = VecD::broadcast(2.0 * env.gravity());
    const VecD half_g = VecD::broadcast(0.5 * env.gravity());

    double c1[kW], s1[kW], c12[kW], s12[kW];
    for (std::size_t e = 0; e < kW; ++e) {
        const double phi = theta1[e] + theta2[e];
        c1[e] = std::cos(theta1[e]);
        s1[e] = std::sin(theta1[e]);
        c12[e] = std::cos(phi);
        s12[e] = std::sin(phi);
    }

    const VecD sp = VecD::load(speed);
    const VecD c12v = VecD::load(c12);
    const VecD s12v = VecD::load(s12);
    // rx = l1*cos(t1) + l2*cos(t1+t2); ry = sh + l1*sin(t1) + l2*sin(..).
    const VecD rx = VecD::mulAdd(l1 * VecD::load(c1), l2, c12v);
    const VecD ry =
        VecD::mulAdd(VecD::mulAdd(sh, l1, VecD::load(s1)), l2, s12v);
    const VecD vx = sp * c12v;
    const VecD vy = sp * s12v;
    // disc = vy*vy + 2*g*ry; t_land = (vy + sqrt(disc)) / g.
    const VecD disc = VecD::mulAdd(vy * vy, two_g, ry);
    const VecD t_land = (vy + VecD::sqrt(disc)) / g;
    const VecD land = VecD::mulAdd(rx, vx, t_land);

    double rx_a[kW], ry_a[kW], land_a[kW], tl_a[kW];
    rx.store(rx_a);
    ry.store(ry_a);
    land.store(land_a);
    t_land.store(tl_a);
    for (std::size_t e = 0; e < kW; ++e) {
        if (ry_a[e] <= 0.0) {
            land_a[e] = rx_a[e]; // released underground: lands in place
            tl_a[e] = 0.0;
        }
        rewards[e] = -std::abs(land_a[e] - goal);
    }

    if (!traces) {
        return;
    }
    const VecD tl = VecD::load(tl_a);
    const VecD c31 = VecD::broadcast(31.0);
    double lane[kW];
    for (int i = 0; i < 32; ++i) {
        // t = t_land * i / 31; x = rx + vx*t; y = ry + vy*t - 0.5*g*t*t.
        const VecD t =
            tl * VecD::broadcast(static_cast<double>(i)) / c31;
        const VecD px = VecD::mulAdd(rx, vx, t);
        const VecD py = VecD::mulSub(VecD::mulAdd(ry, vy, t), half_g * t, t);
        px.store(lane);
        for (std::size_t e = 0; e < kW; ++e)
            traces[e * 64 + static_cast<std::size_t>(2 * i)] = lane[e];
        py.store(lane);
        for (std::size_t e = 0; e < kW; ++e)
            traces[e * 64 + static_cast<std::size_t>(2 * i + 1)] = lane[e];
    }
}

/** Scalar-reference unicycle step applied in place to SoA slot e. */
inline void
stepOneEnv(UnicycleBatch &state, std::size_t e, double v_cmd,
           double omega_cmd, double dt)
{
    UnicycleState s;
    s.x = state.x[e];
    s.y = state.y[e];
    s.theta = state.theta[e];
    s.v = state.v[e];
    s = MpcController::step(s, v_cmd, omega_cmd, dt);
    state.x[e] = s.x;
    state.y[e] = s.y;
    state.theta[e] = s.theta;
    state.v[e] = s.v;
}

} // namespace

void
evaluateThrowBatch(const BallThrowEnv &env, const double *theta1,
                   const double *theta2, const double *speed,
                   std::size_t count, double *rewards, double *traces,
                   BatchEngine engine)
{
    std::size_t i = 0;
    if (engine == BatchEngine::Soa) {
        for (; i + kW <= count; i += kW)
            throwTileSoa(env, theta1 + i, theta2 + i, speed + i,
                         rewards + i, traces ? traces + i * 64 : nullptr);
    }
    // Scalar engine, and the soa engine's remainder lanes.
    for (; i < count; ++i)
        evaluateThrowOne(env, theta1[i], theta2[i], speed[i], rewards + i,
                         traces ? traces + i * 64 : nullptr);
}

void
ThrowSampleEvaluator::evaluate(CemSample *samples, std::size_t count) const
{
    if (engine_ == BatchEngine::Scalar) {
        for (std::size_t s = 0; s < count; ++s) {
            samples[s].reward = env_.evaluate(samples[s].params);
            if (with_trace_)
                samples[s].trace = env_.flightTrace(samples[s].params);
        }
        return;
    }

    telemetry::TraceSpan span("batch-rollout");
    thread_local std::vector<double> t1, t2, sp, rewards, traces;
    t1.resize(count);
    t2.resize(count);
    sp.resize(count);
    rewards.resize(count);
    if (with_trace_)
        traces.resize(count * 64);
    for (std::size_t s = 0; s < count; ++s) {
        RTR_ASSERT(samples[s].params.size() == BallThrowEnv::kParamCount,
                   "throw samples carry 3 parameters");
        t1[s] = samples[s].params[0];
        t2[s] = samples[s].params[1];
        sp[s] = samples[s].params[2];
    }
    evaluateThrowBatch(env_, t1.data(), t2.data(), sp.data(), count,
                       rewards.data(),
                       with_trace_ ? traces.data() : nullptr,
                       BatchEngine::Soa);
    for (std::size_t s = 0; s < count; ++s) {
        samples[s].reward = rewards[s];
        if (with_trace_)
            std::memcpy(samples[s].trace.data(), traces.data() + s * 64,
                        sizeof(double) * 64);
    }
}

void
UnicycleBatch::assign(std::size_t count, const UnicycleState &state)
{
    x.assign(count, state.x);
    y.assign(count, state.y);
    theta.assign(count, state.theta);
    v.assign(count, state.v);
}

void
stepUnicycleBatch(UnicycleBatch &state, const double *v_cmd,
                  const double *omega_cmd, double dt, BatchEngine engine)
{
    const std::size_t n = state.size();
    std::size_t e = 0;
    if (engine == BatchEngine::Soa) {
        const VecD dtv = VecD::broadcast(dt);
        double c[kW], s[kW];
        for (; e + kW <= n; e += kW) {
            for (std::size_t l = 0; l < kW; ++l) {
                c[l] = std::cos(state.theta[e + l]);
                s[l] = std::sin(state.theta[e + l]);
            }
            // x += v*dt*cos(theta); y += v*dt*sin(theta).
            const VecD vdt = VecD::load(v_cmd + e) * dtv;
            VecD::mulAdd(VecD::load(state.x.data() + e), vdt,
                         VecD::load(c))
                .store(state.x.data() + e);
            VecD::mulAdd(VecD::load(state.y.data() + e), vdt,
                         VecD::load(s))
                .store(state.y.data() + e);
            for (std::size_t l = 0; l < kW; ++l)
                state.theta[e + l] = normalizeAngle(state.theta[e + l] +
                                                    omega_cmd[e + l] * dt);
            std::memcpy(state.v.data() + e, v_cmd + e,
                        sizeof(double) * kW);
        }
    }
    // Scalar engine, and the soa engine's remainder lanes.
    for (; e < n; ++e)
        stepOneEnv(state, e, v_cmd[e], omega_cmd[e], dt);
}

double
unicycleRolloutCost(const MpcConfig &config, const UnicycleState &start,
                    const std::vector<Vec2> &reference,
                    const std::vector<double> &v,
                    const std::vector<double> &omega)
{
    double cost = 0.0;
    UnicycleState state = start;
    double prev_v = start.v;
    for (std::size_t k = 0; k < v.size(); ++k) {
        state = MpcController::step(state, v[k], omega[k], config.dt);
        const Vec2 &ref = reference[std::min(k, reference.size() - 1)];
        double dx = state.x - ref.x;
        double dy = state.y - ref.y;
        cost += config.w_tracking * (dx * dx + dy * dy);
        cost += config.w_effort * (v[k] * v[k] + omega[k] * omega[k]);
        double dv = v[k] - prev_v;
        cost += config.w_smooth * dv * dv;
        // Soft acceleration-limit penalty (velocity/turn-rate limits
        // are enforced by projection).
        double acc = std::abs(dv) / config.dt;
        if (acc > config.a_max)
            cost += 50.0 * (acc - config.a_max) * (acc - config.a_max);
        prev_v = v[k];
    }
    return cost;
}

void
unicycleRolloutCostBatch(const MpcConfig &config,
                         const UnicycleState *starts,
                         const std::vector<Vec2> &reference,
                         const double *v, const double *omega,
                         std::size_t horizon, std::size_t count,
                         double *costs, BatchEngine engine)
{
    RTR_ASSERT(!reference.empty(), "rollout needs a reference");
    thread_local std::vector<double> env_v, env_omega;
    auto rolloutOne = [&](std::size_t e) {
        env_v.resize(horizon);
        env_omega.resize(horizon);
        for (std::size_t k = 0; k < horizon; ++k) {
            env_v[k] = v[k * count + e];
            env_omega[k] = omega[k * count + e];
        }
        costs[e] = unicycleRolloutCost(config, starts[e], reference,
                                       env_v, env_omega);
    };

    std::size_t done = 0;
    if (engine == BatchEngine::Soa) {
        const VecD dtv = VecD::broadcast(config.dt);
        const VecD wtv = VecD::broadcast(config.w_tracking);
        const VecD wev = VecD::broadcast(config.w_effort);
        const VecD wsv = VecD::broadcast(config.w_smooth);
        const VecD amaxv = VecD::broadcast(config.a_max);
        const VecD fiftyv = VecD::broadcast(50.0);
        for (std::size_t o = 0; o + kW <= count; o += kW) {
            double xb[kW], yb[kW], th[kW], pv[kW], cb[kW], sb[kW];
            for (std::size_t l = 0; l < kW; ++l) {
                xb[l] = starts[o + l].x;
                yb[l] = starts[o + l].y;
                th[l] = starts[o + l].theta;
                pv[l] = starts[o + l].v;
            }
            VecD xv = VecD::load(xb);
            VecD yv = VecD::load(yb);
            VecD prevv = VecD::load(pv);
            VecD costv = VecD::zero();
            for (std::size_t k = 0; k < horizon; ++k) {
                const double *vk = v + k * count + o;
                const double *wk = omega + k * count + o;
                for (std::size_t l = 0; l < kW; ++l) {
                    cb[l] = std::cos(th[l]);
                    sb[l] = std::sin(th[l]);
                }
                const VecD vkv = VecD::load(vk);
                const VecD vdt = vkv * dtv;
                xv = VecD::mulAdd(xv, vdt, VecD::load(cb));
                yv = VecD::mulAdd(yv, vdt, VecD::load(sb));
                for (std::size_t l = 0; l < kW; ++l)
                    th[l] = normalizeAngle(th[l] + wk[l] * config.dt);

                const Vec2 &ref =
                    reference[std::min(k, reference.size() - 1)];
                // cost += w_tracking * (dx*dx + dy*dy)
                const VecD dxv = xv - VecD::broadcast(ref.x);
                const VecD dyv = yv - VecD::broadcast(ref.y);
                costv = VecD::mulAdd(costv, wtv,
                                     VecD::mulAdd(dxv * dxv, dyv, dyv));
                // cost += w_effort * (v*v + omega*omega)
                const VecD wkv = VecD::load(wk);
                costv = VecD::mulAdd(costv, wev,
                                     VecD::mulAdd(vkv * vkv, wkv, wkv));
                // cost += w_smooth * dv * dv
                const VecD dvv = vkv - prevv;
                costv = costv + (wsv * dvv) * dvv;
                // if (|dv|/dt > a_max) cost += 50*(acc-a_max)^2 — the
                // blend keeps unpenalized lanes' accumulators bitwise
                // untouched, and NaN accelerations fail cmpGT exactly
                // like the scalar `if`.
                const VecD accv = VecD::abs(dvv) / dtv;
                const VecD dav = accv - amaxv;
                const VecD penv = VecD::mulAdd(costv, fiftyv * dav, dav);
                costv = VecD::select(VecD::cmpGT(accv, amaxv), penv,
                                     costv);
                prevv = vkv;
            }
            costv.store(costs + o);
        }
        done = count - count % kW;
    }
    // Scalar engine, and the soa engine's remainder lanes.
    for (std::size_t e = done; e < count; ++e)
        rolloutOne(e);
}

void
mpcCentralDiffGradient(const MpcConfig &config, const UnicycleState &start,
                       const std::vector<Vec2> &reference,
                       const std::vector<double> &v,
                       const std::vector<double> &omega, double fd_eps,
                       std::vector<double> &grad_v,
                       std::vector<double> &grad_omega)
{
    const std::size_t h = v.size();
    telemetry::TraceSpan span("batch-rollout");

    if (config.batch_engine == BatchEngine::Scalar) {
        // Preserved reference: the four rollouts behind each horizon
        // step run one at a time on copies of the nominal controls;
        // every chunk perturbs exactly one entry at a time, giving the
        // same rollouts (and bitwise the same gradient) as sequential
        // in-place perturbation.
        parallelForChunks(0, h, 1, [&](const ChunkRange &chunk) {
            std::vector<double> pv = v;
            std::vector<double> pomega = omega;
            for (std::size_t k = chunk.begin; k < chunk.end; ++k) {
                double saved = pv[k];
                pv[k] = saved + fd_eps;
                double up = unicycleRolloutCost(config, start, reference,
                                                pv, pomega);
                pv[k] = saved - fd_eps;
                double down = unicycleRolloutCost(config, start,
                                                  reference, pv, pomega);
                pv[k] = saved;
                grad_v[k] = (up - down) / (2.0 * fd_eps);

                saved = pomega[k];
                pomega[k] = saved + fd_eps;
                up = unicycleRolloutCost(config, start, reference, pv,
                                         pomega);
                pomega[k] = saved - fd_eps;
                down = unicycleRolloutCost(config, start, reference, pv,
                                           pomega);
                pomega[k] = saved;
                grad_omega[k] = (up - down) / (2.0 * fd_eps);
            }
        });
        return;
    }

    // Soa: the four perturbed rollouts of a coordinate are four
    // independent environments — one SoA batch whose lanes are
    // (v+eps, v-eps, omega+eps, omega-eps), each seeing the nominal
    // controls everywhere except its own coordinate.
    parallelForChunks(0, h, 1, [&](const ChunkRange &chunk) {
        thread_local std::vector<double> vbuf, wbuf;
        vbuf.resize(h * 4);
        wbuf.resize(h * 4);
        const UnicycleState starts[4] = {start, start, start, start};
        double costs[4];
        for (std::size_t k = chunk.begin; k < chunk.end; ++k) {
            for (std::size_t j = 0; j < h; ++j) {
                for (std::size_t l = 0; l < 4; ++l) {
                    vbuf[j * 4 + l] = v[j];
                    wbuf[j * 4 + l] = omega[j];
                }
            }
            vbuf[k * 4 + 0] = v[k] + fd_eps;
            vbuf[k * 4 + 1] = v[k] - fd_eps;
            wbuf[k * 4 + 2] = omega[k] + fd_eps;
            wbuf[k * 4 + 3] = omega[k] - fd_eps;
            unicycleRolloutCostBatch(config, starts, reference,
                                     vbuf.data(), wbuf.data(), h, 4,
                                     costs, BatchEngine::Soa);
            grad_v[k] = (costs[0] - costs[1]) / (2.0 * fd_eps);
            grad_omega[k] = (costs[2] - costs[3]) / (2.0 * fd_eps);
        }
    });
}

} // namespace rtr

#include "symbolic/domain.h"

#include "util/logging.h"

namespace rtr {

namespace {

/** Instantiate one atom template under a parameter binding. */
Atom
instantiate(const AtomTemplate &tmpl,
            const std::vector<std::string> &binding,
            const std::vector<std::string> &constants)
{
    std::vector<std::string> args;
    args.reserve(tmpl.args.size());
    for (int slot : tmpl.args) {
        if (slot >= 0) {
            RTR_ASSERT(static_cast<std::size_t>(slot) < binding.size(),
                       "schema arg slot out of range");
            args.push_back(binding[static_cast<std::size_t>(slot)]);
        } else {
            std::size_t idx = static_cast<std::size_t>(~slot);
            RTR_ASSERT(idx < constants.size(),
                       "schema constant slot out of range");
            args.push_back(constants[idx]);
        }
    }
    return makeAtom(tmpl.predicate, args);
}

/** Recursive enumeration of parameter bindings. */
void
enumerate(const ActionSchema &schema,
          const std::vector<std::string> &symbols, std::size_t param,
          std::vector<std::string> &binding,
          std::vector<GroundAction> &out)
{
    if (param == schema.params.size()) {
        GroundAction action;
        action.name = makeAtom(schema.name, binding);
        for (const AtomTemplate &t : schema.pre_pos)
            action.pre_pos.push_back(
                instantiate(t, binding, schema.constants));
        for (const AtomTemplate &t : schema.pre_neg)
            action.pre_neg.push_back(
                instantiate(t, binding, schema.constants));
        for (const AtomTemplate &t : schema.eff_add)
            action.eff_add.push_back(
                instantiate(t, binding, schema.constants));
        for (const AtomTemplate &t : schema.eff_del)
            action.eff_del.push_back(
                instantiate(t, binding, schema.constants));
        out.push_back(std::move(action));
        return;
    }

    const std::vector<std::string> &candidates =
        (param < schema.param_domains.size() &&
         !schema.param_domains[param].empty())
            ? schema.param_domains[param]
            : symbols;
    for (const std::string &symbol : candidates) {
        bool ok = true;
        for (const auto &[a, b] : schema.distinct) {
            // Enforce constraints between this parameter and any
            // already-bound one.
            std::size_t other;
            if (a == param) {
                other = b;
            } else if (b == param) {
                other = a;
            } else {
                continue;
            }
            if (other < param && binding[other] == symbol) {
                ok = false;
                break;
            }
        }
        if (!ok)
            continue;
        binding.push_back(symbol);
        enumerate(schema, symbols, param + 1, binding, out);
        binding.pop_back();
    }
}

} // namespace

std::vector<GroundAction>
groundActions(const SymbolicProblem &problem)
{
    std::vector<GroundAction> actions;
    for (const ActionSchema &schema : problem.schemas) {
        std::vector<std::string> binding;
        binding.reserve(schema.params.size());
        enumerate(schema, problem.symbols, 0, binding, actions);
    }
    return actions;
}

} // namespace rtr

/**
 * @file
 * STRIPS-style domains: action schemas, grounding, ground actions.
 *
 * Mirrors the paper's Fig. 13/14 problem descriptions: a domain lists
 * symbols, an initial state, goal conditions, and parameterized actions
 * with preconditions and effects; grounding instantiates every schema
 * over the symbol set.
 */

#ifndef RTR_SYMBOLIC_DOMAIN_H
#define RTR_SYMBOLIC_DOMAIN_H

#include <cstddef>
#include <string>
#include <vector>

#include "symbolic/state.h"

namespace rtr {

/**
 * An atom template inside a schema: predicate plus argument slots.
 * An argument is either a parameter index (>= 0) or, when negative,
 * ~index into the constants table.
 */
struct AtomTemplate
{
    std::string predicate;
    std::vector<int> args;
};

/** A parameterized action schema. */
struct ActionSchema
{
    std::string name;
    /** Parameter names (documentation only; arity = size). */
    std::vector<std::string> params;
    /** Per-parameter allowed symbols (empty list = any symbol). */
    std::vector<std::vector<std::string>> param_domains;
    /** Pairs of parameter indices that must bind distinct symbols. */
    std::vector<std::pair<std::size_t, std::size_t>> distinct;
    /** Positive preconditions. */
    std::vector<AtomTemplate> pre_pos;
    /** Negative preconditions. */
    std::vector<AtomTemplate> pre_neg;
    /** Add effects. */
    std::vector<AtomTemplate> eff_add;
    /** Delete effects. */
    std::vector<AtomTemplate> eff_del;
    /** Constants referenced by negative arg slots. */
    std::vector<std::string> constants;
};

/** A fully-instantiated action. */
struct GroundAction
{
    /** Canonical name, e.g. "Move(A,B,Table)". */
    std::string name;
    std::vector<Atom> pre_pos;
    std::vector<Atom> pre_neg;
    std::vector<Atom> eff_add;
    std::vector<Atom> eff_del;

    /** Whether the action is applicable in a state. */
    bool
    applicable(const SymbolicState &state) const
    {
        return state.containsAll(pre_pos) && state.containsNone(pre_neg);
    }

    /** Successor state (caller must have checked applicability). */
    SymbolicState
    apply(const SymbolicState &state) const
    {
        return state.apply(eff_add, eff_del);
    }
};

/** A complete planning problem. */
struct SymbolicProblem
{
    /** Problem name (for reports). */
    std::string name;
    /** Object symbols. */
    std::vector<std::string> symbols;
    /** Action schemas. */
    std::vector<ActionSchema> schemas;
    /** Initial state. */
    SymbolicState initial;
    /** Atoms that must hold in a goal state. */
    std::vector<Atom> goal;
};

/**
 * Instantiate every schema over the problem's symbols, honoring
 * param_domains and distinct constraints.
 */
std::vector<GroundAction> groundActions(const SymbolicProblem &problem);

} // namespace rtr

#endif // RTR_SYMBOLIC_DOMAIN_H

#include "symbolic/planner.h"

#include <limits>
#include <unordered_map>

#include "search/min_heap.h"
#include "util/logging.h"

namespace rtr {

SymbolicPlanner::SymbolicPlanner(const SymbolicProblem &problem,
                                 const SymbolicPlannerConfig &config)
    : problem_(problem), config_(config), actions_(groundActions(problem))
{
}

double
SymbolicPlanner::heuristicValue(const SymbolicState &state) const
{
    if (config_.heuristic == SymbolicPlannerConfig::Heuristic::GoalCount)
        return static_cast<double>(state.countMissing(problem_.goal));

    // hAdd: delete-relaxation fixpoint. Atom costs start at 0 for atoms
    // in the state; each action whose positive preconditions are all
    // reached makes its add effects reachable at (sum of precondition
    // costs) + 1.
    constexpr double kInf = std::numeric_limits<double>::max() / 4.0;
    std::unordered_map<Atom, double> cost;
    cost.reserve(state.atoms().size() * 2);
    for (const Atom &atom : state.atoms())
        cost[atom] = 0.0;

    bool changed = true;
    while (changed) {
        changed = false;
        for (const GroundAction &action : actions_) {
            double pre_sum = 0.0;
            bool reachable = true;
            for (const Atom &pre : action.pre_pos) {
                auto it = cost.find(pre);
                if (it == cost.end()) {
                    reachable = false;
                    break;
                }
                pre_sum += it->second;
            }
            if (!reachable)
                continue;
            double action_cost = pre_sum + 1.0;
            for (const Atom &eff : action.eff_add) {
                auto [it, inserted] = cost.emplace(eff, action_cost);
                if (!inserted && action_cost < it->second) {
                    it->second = action_cost;
                    changed = true;
                } else if (inserted) {
                    changed = true;
                }
            }
        }
    }

    double h = 0.0;
    for (const Atom &goal_atom : problem_.goal) {
        auto it = cost.find(goal_atom);
        if (it == cost.end())
            return kInf;
        h += it->second;
    }
    return h;
}

SymbolicPlanResult
SymbolicPlanner::plan(PhaseProfiler *profiler) const
{
    SymbolicPlanResult result;
    result.ground_action_count = actions_.size();

    constexpr std::uint32_t kNone = 0xFFFFFFFF;
    struct NodeInfo
    {
        double g = 0.0;
        std::uint32_t parent = 0xFFFFFFFF;
        std::uint32_t via_action = 0xFFFFFFFF;
        bool closed = false;
    };

    std::vector<SymbolicState> states;
    std::unordered_map<SymbolicState, std::uint32_t, SymbolicStateHash> ids;
    std::vector<NodeInfo> info;
    auto intern = [&](const SymbolicState &s) {
        auto [it, inserted] =
            ids.emplace(s, static_cast<std::uint32_t>(states.size()));
        if (inserted) {
            states.push_back(s);
            info.push_back(NodeInfo{});
        }
        return it->second;
    };

    MinHeap<std::uint32_t> open;
    std::uint32_t start_id = intern(problem_.initial);
    {
        ScopedPhase phase(profiler, "heuristic");
        open.push(config_.epsilon * heuristicValue(problem_.initial),
                  start_id);
    }

    std::size_t applicable_total = 0;

    while (!open.empty()) {
        auto [key, id] = open.pop();
        if (info[id].closed)
            continue;
        info[id].closed = true;
        ++result.expanded;
        if (result.expanded > config_.max_expansions)
            return result;

        // Copy: interning successors may grow `states`.
        const SymbolicState state = states[id];
        const double g_cur = info[id].g;

        if (state.containsAll(problem_.goal)) {
            result.found = true;
            result.cost = g_cur;
            std::vector<std::string> reversed;
            for (std::uint32_t cur = id; info[cur].parent != kNone;
                 cur = info[cur].parent) {
                reversed.push_back(actions_[info[cur].via_action].name);
            }
            result.plan.assign(reversed.rbegin(), reversed.rend());
            if (result.expanded)
                result.avg_applicable_actions =
                    static_cast<double>(applicable_total) /
                    static_cast<double>(result.expanded);
            return result;
        }

        // Successor generation: applicability tests + effect
        // application, all string manipulation over the node.
        ScopedPhase expand_phase(profiler, "expand");
        for (std::size_t a = 0; a < actions_.size(); ++a) {
            if (!actions_[a].applicable(state))
                continue;
            ++applicable_total;
            SymbolicState next = actions_[a].apply(state);
            ++result.generated;
            std::uint32_t next_id = intern(next);
            NodeInfo &ni = info[next_id];
            double candidate = g_cur + 1.0;
            bool fresh =
                ni.parent == kNone && next_id != start_id;
            if (fresh || (!ni.closed && candidate < ni.g)) {
                ni.g = candidate;
                ni.parent = id;
                ni.via_action = static_cast<std::uint32_t>(a);
                double h;
                {
                    ScopedPhase h_phase(profiler, "heuristic");
                    h = heuristicValue(next);
                }
                open.push(candidate + config_.epsilon * h, next_id);
            }
        }
    }
    if (result.expanded)
        result.avg_applicable_actions =
            static_cast<double>(applicable_total) /
            static_cast<double>(result.expanded);
    return result;
}

} // namespace rtr

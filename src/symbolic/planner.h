/**
 * @file
 * Forward state-space symbolic planner (kernels 11-12).
 *
 * Weighted A* over the ground STRIPS state space with either a
 * goal-count or an additive delete-relaxation (hAdd) heuristic. Per the
 * paper, the dominant operations are the graph search itself and the
 * string manipulation inside nodes (applicability tests, effect
 * application, state hashing).
 */

#ifndef RTR_SYMBOLIC_PLANNER_H
#define RTR_SYMBOLIC_PLANNER_H

#include <string>
#include <vector>

#include "symbolic/domain.h"
#include "util/profiler.h"

namespace rtr {

/** Planner configuration. */
struct SymbolicPlannerConfig
{
    /** Heuristic choice. */
    enum class Heuristic
    {
        /** Number of unsatisfied goal atoms. */
        GoalCount,
        /** Additive delete-relaxation estimate (informative, default). */
        HAdd,
    };

    Heuristic heuristic = Heuristic::HAdd;
    /** Heuristic inflation (WA*). */
    double epsilon = 1.5;
    /** Expansion cap before giving up. */
    std::size_t max_expansions = 500000;
};

/** Result of a symbolic plan. */
struct SymbolicPlanResult
{
    /** Whether a plan was found. */
    bool found = false;
    /** Ground action names from initial state to goal. */
    std::vector<std::string> plan;
    /** Plan length (every action costs 1). */
    double cost = 0.0;
    /** States expanded. */
    std::size_t expanded = 0;
    /** Successor states generated. */
    std::size_t generated = 0;
    /** Ground actions in the instantiated problem. */
    std::size_t ground_action_count = 0;
    /**
     * Mean number of applicable actions per expanded state — the
     * graph's branching factor, i.e. the per-node parallelism the paper
     * compares between sym-fext and sym-blkw (~3.2x).
     */
    double avg_applicable_actions = 0.0;
};

/** Forward-search planner bound to one problem instance. */
class SymbolicPlanner
{
  public:
    /** Grounds the problem's schemas immediately. */
    explicit SymbolicPlanner(const SymbolicProblem &problem,
                             const SymbolicPlannerConfig &config = {});

    /**
     * Search for a plan.
     *
     * @param profiler Optional; accumulates "heuristic" (hAdd /
     *        goal-count evaluations) and "expand" (applicability tests
     *        and effect application — the string-manipulation phase).
     */
    SymbolicPlanResult plan(PhaseProfiler *profiler = nullptr) const;

    /** The instantiated ground actions. */
    const std::vector<GroundAction> &actions() const { return actions_; }

  private:
    double heuristicValue(const SymbolicState &state) const;

    const SymbolicProblem &problem_;
    SymbolicPlannerConfig config_;
    std::vector<GroundAction> actions_;
};

} // namespace rtr

#endif // RTR_SYMBOLIC_PLANNER_H

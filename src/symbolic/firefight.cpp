#include "symbolic/firefight.h"

#include "util/logging.h"

namespace rtr {

SymbolicProblem
makeFirefight(int n_waypoints)
{
    RTR_ASSERT(n_waypoints >= 2, "firefight needs >= 2 waypoints");
    SymbolicProblem problem;
    problem.name = "firefight-" + std::to_string(n_waypoints);

    // Locations: waypoints L1..Ln, the water source W, the fire F.
    std::vector<std::string> locations;
    for (int i = 1; i <= n_waypoints; ++i)
        locations.push_back("L" + std::to_string(i));
    locations.push_back("W");
    locations.push_back("F");
    problem.symbols = locations;

    auto rq_constants = std::vector<std::string>{"R", "Q", "F"};
    constexpr int kR = ~0;  // constants[0]
    constexpr int kQ = ~1;  // constants[1]
    constexpr int kF = ~2;  // constants[2]

    // MoveRob(x, y): the rover drives alone (quadcopter airborne).
    {
        ActionSchema schema;
        schema.name = "MoveRob";
        schema.params = {"x", "y"};
        schema.distinct = {{0, 1}};
        schema.constants = rq_constants;
        schema.pre_pos = {{"At", {kR, 0}}, {"InAir", {kQ}}};
        schema.eff_add = {{"At", {kR, 1}}};
        schema.eff_del = {{"At", {kR, 0}}};
        problem.schemas.push_back(schema);
    }
    // MoveRobCarry(x, y): the rover drives carrying the quadcopter.
    {
        ActionSchema schema;
        schema.name = "MoveRobCarry";
        schema.params = {"x", "y"};
        schema.distinct = {{0, 1}};
        schema.constants = rq_constants;
        schema.pre_pos = {{"At", {kR, 0}},
                          {"At", {kQ, 0}},
                          {"OnRob", {kQ}}};
        schema.eff_add = {{"At", {kR, 1}}, {"At", {kQ, 1}}};
        schema.eff_del = {{"At", {kR, 0}}, {"At", {kQ, 0}}};
        problem.schemas.push_back(schema);
    }
    // FlyQuad(x, y): airborne flight, drains the battery.
    {
        ActionSchema schema;
        schema.name = "FlyQuad";
        schema.params = {"x", "y"};
        schema.distinct = {{0, 1}};
        schema.constants = rq_constants;
        schema.pre_pos = {{"At", {kQ, 0}},
                          {"InAir", {kQ}},
                          {"BatFull", {kQ}}};
        schema.eff_add = {{"At", {kQ, 1}}, {"BatLow", {kQ}}};
        schema.eff_del = {{"At", {kQ, 0}}, {"BatFull", {kQ}}};
        problem.schemas.push_back(schema);
    }
    // Land(x): the quadcopter lands on the co-located rover.
    {
        ActionSchema schema;
        schema.name = "Land";
        schema.params = {"x"};
        schema.constants = rq_constants;
        schema.pre_pos = {{"At", {kR, 0}},
                          {"At", {kQ, 0}},
                          {"InAir", {kQ}}};
        schema.eff_add = {{"OnRob", {kQ}}};
        schema.eff_del = {{"InAir", {kQ}}};
        problem.schemas.push_back(schema);
    }
    // TakeOff(x).
    {
        ActionSchema schema;
        schema.name = "TakeOff";
        schema.params = {"x"};
        schema.constants = rq_constants;
        schema.pre_pos = {{"At", {kR, 0}},
                          {"At", {kQ, 0}},
                          {"OnRob", {kQ}}};
        schema.eff_add = {{"InAir", {kQ}}};
        schema.eff_del = {{"OnRob", {kQ}}};
        problem.schemas.push_back(schema);
    }
    // ChargeBattery(x): only while docked on the rover.
    {
        ActionSchema schema;
        schema.name = "ChargeBattery";
        schema.params = {"x"};
        schema.constants = rq_constants;
        schema.pre_pos = {{"At", {kQ, 0}},
                          {"OnRob", {kQ}},
                          {"BatLow", {kQ}}};
        schema.eff_add = {{"BatFull", {kQ}}};
        schema.eff_del = {{"BatLow", {kQ}}};
        problem.schemas.push_back(schema);
    }
    // FillWater: dock at the water source and refill the tank.
    {
        ActionSchema schema;
        schema.name = "FillWater";
        schema.constants = {"R", "Q", "W"};
        schema.pre_pos = {{"At", {~0, ~2}},
                          {"At", {~1, ~2}},
                          {"OnRob", {~1}},
                          {"EmptyTank", {~1}}};
        schema.eff_add = {{"FullTank", {~1}}};
        schema.eff_del = {{"EmptyTank", {~1}}};
        problem.schemas.push_back(schema);
    }
    // PourWater stages: ExtZero -> ExtOne -> ExtTwo -> ExtThree.
    const char *stages[3][2] = {
        {"ExtZero", "ExtOne"},
        {"ExtOne", "ExtTwo"},
        {"ExtTwo", "ExtThree"},
    };
    for (int stage = 0; stage < 3; ++stage) {
        ActionSchema schema;
        schema.name = std::string("PourWater") + std::to_string(stage + 1);
        schema.constants = rq_constants;
        schema.pre_pos = {{"At", {kQ, kF}},
                          {"InAir", {kQ}},
                          {"FullTank", {kQ}},
                          {stages[stage][0], {kF}}};
        schema.eff_add = {{stages[stage][1], {kF}},
                          {"EmptyTank", {kQ}}};
        schema.eff_del = {{stages[stage][0], {kF}},
                          {"FullTank", {kQ}}};
        problem.schemas.push_back(schema);
    }

    // Initial state (paper Fig. 14): rover at L1, quadcopter airborne at
    // L2, tank empty, battery low, fire burning.
    problem.initial = SymbolicState({
        makeAtom("At", {"R", "L1"}),
        makeAtom("At", {"Q", "L2"}),
        makeAtom("InAir", {"Q"}),
        makeAtom("EmptyTank", {"Q"}),
        makeAtom("BatLow", {"Q"}),
        makeAtom("ExtZero", {"F"}),
    });
    problem.goal = {makeAtom("ExtThree", {"F"})};
    return problem;
}

} // namespace rtr

/**
 * @file
 * Blocks-world problem builder (kernel 11.sym-blkw, paper Fig. 13).
 */

#ifndef RTR_SYMBOLIC_BLOCKS_WORLD_H
#define RTR_SYMBOLIC_BLOCKS_WORLD_H

#include <cstdint>

#include "symbolic/domain.h"

namespace rtr {

/**
 * Build an n-block blocks-world instance with seed-controlled random
 * initial and goal stackings (guaranteed to differ).
 *
 * Blocks are named "B1".."Bn"; the table symbol is "Table". Actions are
 * Move(b, x, y) between blocks and MoveToTable(b, x), in the style of
 * the paper's Fig. 13 symbolic description.
 */
SymbolicProblem makeBlocksWorld(int n_blocks, std::uint64_t seed);

} // namespace rtr

#endif // RTR_SYMBOLIC_BLOCKS_WORLD_H

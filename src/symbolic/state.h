/**
 * @file
 * Symbolic planning states.
 *
 * Following the paper's characterization of the symbolic kernels (graph
 * search + "string manipulation inside nodes"), atoms are canonical
 * strings like "On(A,B)" and a state is a sorted set of them. All the
 * applicability/effect work is string comparison and set manipulation —
 * deliberately, because that *is* the workload being benchmarked.
 */

#ifndef RTR_SYMBOLIC_STATE_H
#define RTR_SYMBOLIC_STATE_H

#include <cstddef>
#include <string>
#include <vector>

namespace rtr {

/** A ground atom, e.g. "On(A,B)". */
using Atom = std::string;

/** Build an atom string from a predicate name and arguments. */
Atom makeAtom(const std::string &predicate,
              const std::vector<std::string> &args);

/** An immutable sorted set of atoms. */
class SymbolicState
{
  public:
    SymbolicState() = default;

    /** Construct from atoms (sorted and deduplicated internally). */
    explicit SymbolicState(std::vector<Atom> atoms);

    /** Whether the atom holds in this state. */
    bool contains(const Atom &atom) const;

    /** Whether every atom of @p atoms holds. */
    bool containsAll(const std::vector<Atom> &atoms) const;

    /** Whether no atom of @p atoms holds. */
    bool containsNone(const std::vector<Atom> &atoms) const;

    /** State with @p add inserted and @p del removed. */
    SymbolicState apply(const std::vector<Atom> &add,
                        const std::vector<Atom> &del) const;

    /** Number of atoms in @p atoms that do NOT hold here. */
    std::size_t countMissing(const std::vector<Atom> &atoms) const;

    /** Atoms in sorted order. */
    const std::vector<Atom> &atoms() const { return atoms_; }

    bool operator==(const SymbolicState &o) const
    {
        return atoms_ == o.atoms_;
    }

    /** FNV-1a hash over the atom strings. */
    std::size_t hash() const;

    /** Human-readable "{atom, atom, ...}". */
    std::string toString() const;

  private:
    std::vector<Atom> atoms_;
};

/** Hash functor for unordered containers. */
struct SymbolicStateHash
{
    std::size_t operator()(const SymbolicState &s) const { return s.hash(); }
};

} // namespace rtr

#endif // RTR_SYMBOLIC_STATE_H

#include "symbolic/blocks_world.h"

#include <algorithm>

#include "util/logging.h"
#include "util/rng.h"

namespace rtr {

namespace {

/**
 * Random stacking: a permutation of blocks cut into stacks. Returns,
 * for each block index, the name of what it sits on.
 */
std::vector<std::string>
randomStacking(const std::vector<std::string> &blocks, Rng &rng)
{
    std::vector<std::size_t> perm(blocks.size());
    for (std::size_t i = 0; i < perm.size(); ++i)
        perm[i] = i;
    std::shuffle(perm.begin(), perm.end(), rng.engine());

    std::vector<std::string> under(blocks.size(), "Table");
    for (std::size_t i = 1; i < perm.size(); ++i) {
        // With probability 0.6, continue the current stack.
        if (rng.chance(0.6))
            under[perm[i]] = blocks[perm[i - 1]];
    }
    return under;
}

/** Atoms of a stacking: On(...) for every block, Clear(...) for tops. */
std::vector<Atom>
stackingAtoms(const std::vector<std::string> &blocks,
              const std::vector<std::string> &under, bool with_clear)
{
    std::vector<Atom> atoms;
    for (std::size_t i = 0; i < blocks.size(); ++i)
        atoms.push_back(makeAtom("On", {blocks[i], under[i]}));
    if (with_clear) {
        for (std::size_t i = 0; i < blocks.size(); ++i) {
            bool covered = false;
            for (std::size_t j = 0; j < blocks.size(); ++j)
                covered = covered || under[j] == blocks[i];
            if (!covered)
                atoms.push_back(makeAtom("Clear", {blocks[i]}));
        }
    }
    return atoms;
}

} // namespace

SymbolicProblem
makeBlocksWorld(int n_blocks, std::uint64_t seed)
{
    RTR_ASSERT(n_blocks >= 2, "blocks world needs >= 2 blocks");
    SymbolicProblem problem;
    problem.name = "blocks-world-" + std::to_string(n_blocks);

    std::vector<std::string> blocks;
    for (int i = 1; i <= n_blocks; ++i)
        blocks.push_back("B" + std::to_string(i));
    problem.symbols = blocks;
    problem.symbols.push_back("Table");

    std::vector<std::string> from_anywhere = blocks;
    from_anywhere.push_back("Table");

    // Move(b, x, y): move block b from x (block or table) onto block y.
    ActionSchema move;
    move.name = "Move";
    move.params = {"b", "x", "y"};
    move.param_domains = {blocks, from_anywhere, blocks};
    move.distinct = {{0, 1}, {0, 2}, {1, 2}};
    move.pre_pos = {{"On", {0, 1}}, {"Clear", {0}}, {"Clear", {2}}};
    move.eff_add = {{"On", {0, 2}}, {"Clear", {1}}};
    move.eff_del = {{"On", {0, 1}}, {"Clear", {2}}};
    problem.schemas.push_back(move);

    // MoveToTable(b, x): move block b from block x down to the table.
    ActionSchema to_table;
    to_table.name = "MoveToTable";
    to_table.params = {"b", "x"};
    to_table.param_domains = {blocks, blocks};
    to_table.distinct = {{0, 1}};
    to_table.constants = {"Table"};
    to_table.pre_pos = {{"On", {0, 1}}, {"Clear", {0}}};
    to_table.eff_add = {{"On", {0, ~0}}, {"Clear", {1}}};
    to_table.eff_del = {{"On", {0, 1}}};
    problem.schemas.push_back(to_table);

    Rng rng(seed);
    std::vector<std::string> init_under = randomStacking(blocks, rng);
    std::vector<std::string> goal_under = randomStacking(blocks, rng);
    int guard = 0;
    while (goal_under == init_under && guard++ < 64)
        goal_under = randomStacking(blocks, rng);
    RTR_ASSERT(goal_under != init_under,
               "could not generate distinct goal stacking");

    problem.initial =
        SymbolicState(stackingAtoms(blocks, init_under, true));
    problem.goal = stackingAtoms(blocks, goal_under, false);
    return problem;
}

} // namespace rtr

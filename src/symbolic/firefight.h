/**
 * @file
 * Firefighting-robots problem builder (kernel 12.sym-fext, paper
 * Fig. 14): a mobile robot R carries a quadcopter Q between locations;
 * the quadcopter refills its tank at the water source and pours water
 * on the fire three times to extinguish it, recharging its battery on
 * the rover as needed.
 */

#ifndef RTR_SYMBOLIC_FIREFIGHT_H
#define RTR_SYMBOLIC_FIREFIGHT_H

#include "symbolic/domain.h"

namespace rtr {

/**
 * Build the firefighting instance.
 *
 * @param n_waypoints Plain waypoint locations beyond the water source
 *        "W" and the fire "F" (>= 2; the first is the rover's start,
 *        the second the quadcopter's).
 */
SymbolicProblem makeFirefight(int n_waypoints = 12);

} // namespace rtr

#endif // RTR_SYMBOLIC_FIREFIGHT_H

#include "symbolic/state.h"

#include <algorithm>

namespace rtr {

Atom
makeAtom(const std::string &predicate, const std::vector<std::string> &args)
{
    std::string atom = predicate;
    atom.push_back('(');
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (i)
            atom.push_back(',');
        atom += args[i];
    }
    atom.push_back(')');
    return atom;
}

SymbolicState::SymbolicState(std::vector<Atom> atoms)
    : atoms_(std::move(atoms))
{
    std::sort(atoms_.begin(), atoms_.end());
    atoms_.erase(std::unique(atoms_.begin(), atoms_.end()), atoms_.end());
}

bool
SymbolicState::contains(const Atom &atom) const
{
    return std::binary_search(atoms_.begin(), atoms_.end(), atom);
}

bool
SymbolicState::containsAll(const std::vector<Atom> &atoms) const
{
    for (const Atom &atom : atoms) {
        if (!contains(atom))
            return false;
    }
    return true;
}

bool
SymbolicState::containsNone(const std::vector<Atom> &atoms) const
{
    for (const Atom &atom : atoms) {
        if (contains(atom))
            return false;
    }
    return true;
}

SymbolicState
SymbolicState::apply(const std::vector<Atom> &add,
                     const std::vector<Atom> &del) const
{
    std::vector<Atom> next;
    next.reserve(atoms_.size() + add.size());
    for (const Atom &atom : atoms_) {
        if (std::find(del.begin(), del.end(), atom) == del.end())
            next.push_back(atom);
    }
    next.insert(next.end(), add.begin(), add.end());
    return SymbolicState(std::move(next));
}

std::size_t
SymbolicState::countMissing(const std::vector<Atom> &atoms) const
{
    std::size_t missing = 0;
    for (const Atom &atom : atoms)
        missing += contains(atom) ? 0 : 1;
    return missing;
}

std::size_t
SymbolicState::hash() const
{
    std::size_t h = 14695981039346656037ULL;
    for (const Atom &atom : atoms_) {
        for (char c : atom) {
            h ^= static_cast<unsigned char>(c);
            h *= 1099511628211ULL;
        }
        h ^= 0xFF;
        h *= 1099511628211ULL;
    }
    return h;
}

std::string
SymbolicState::toString() const
{
    std::string out = "{";
    for (std::size_t i = 0; i < atoms_.size(); ++i) {
        if (i)
            out += ", ";
        out += atoms_[i];
    }
    out += "}";
    return out;
}

} // namespace rtr

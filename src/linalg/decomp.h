/**
 * @file
 * Matrix decompositions and solvers: LU with partial pivoting and
 * Cholesky for symmetric positive-definite systems.
 */

#ifndef RTR_LINALG_DECOMP_H
#define RTR_LINALG_DECOMP_H

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace rtr {

/**
 * LU decomposition with partial pivoting (PA = LU).
 *
 * Construction factors the matrix once; solve()/inverse() reuse the
 * factorization.
 */
class LuDecomposition
{
  public:
    /** Factor a square matrix. Singular inputs set singular() true. */
    explicit LuDecomposition(const Matrix &a);

    /** Whether the matrix was detected as (numerically) singular. */
    bool singular() const { return singular_; }

    /** Solve A x = b for a matrix of right-hand sides. */
    Matrix solve(const Matrix &b) const;

    /** A^-1 via n solves against the identity. */
    Matrix inverse() const;

    /** Determinant of A. */
    double determinant() const;

  private:
    std::size_t n_;
    Matrix lu_;
    std::vector<std::size_t> pivot_;
    int pivot_sign_ = 1;
    bool singular_ = false;
};

/**
 * Cholesky decomposition (A = L L^T) of a symmetric positive-definite
 * matrix. Used by the Gaussian-process substrate of the BO kernel.
 *
 * The factorization and both substitution passes have SIMD and scalar
 * implementations selected at runtime by simdKernelsEnabled(); the two
 * are bitwise identical by contract (see DESIGN.md "Dense linear
 * algebra"). Both substitution passes are right-looking so they
 * vectorize for single-column right-hand sides; the backward pass
 * therefore accumulates its per-element terms in descending k order,
 * which differs from the historical ascending order by ordinary
 * floating-point rounding only.
 */
class CholeskyDecomposition
{
  public:
    /** Factor an SPD matrix. Non-SPD inputs set failed() true. */
    explicit CholeskyDecomposition(const Matrix &a);

    /** Whether factorization failed (matrix not positive-definite). */
    bool failed() const { return failed_; }

    /** Lower-triangular factor L. */
    const Matrix &lower() const { return l_; }

    /** Solve A x = b via forward/backward substitution. */
    Matrix solve(const Matrix &b) const;

    /**
     * solve() into a caller-owned output (capacity reuse for per-call
     * hot paths such as GP predict). x may be the same object as b.
     */
    void solveInto(const Matrix &b, Matrix &x) const;

    /** log(det(A)) computed stably from the factor. */
    double logDeterminant() const;

  private:
    void factorScalar(const Matrix &a);
    void factorSimd(const Matrix &a);

    std::size_t n_;
    Matrix l_;
    Matrix lt_; // Lᵀ, kept for contiguous single-RHS forward solves
    bool failed_ = false;
};

/** Convenience: A^-1 via LU; calls fatal() on singular input. */
Matrix inverse(const Matrix &a);

/** Convenience: solve A x = b via LU; calls fatal() on singular input. */
Matrix solve(const Matrix &a, const Matrix &b);

} // namespace rtr

#endif // RTR_LINALG_DECOMP_H

#include "linalg/decomp.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.h"
#include "util/simd.h"

namespace rtr {

namespace {

using simd::VecD;

constexpr std::size_t kW = VecD::kWidth;

// Row helpers shared by the LU/Cholesky substitution passes. Each maps
// to one multiply and one add/sub per element in both branches, and the
// vector lanes are independent, so per-element results are bitwise
// identical whichever branch runs (src/linalg is built with
// -ffp-contract=off, so the scalar branch cannot fuse either).

/** dst[0..m) -= f * src[0..m). */
inline void
subScaledRow(double *dst, const double *src, double f, std::size_t m,
             bool use_simd)
{
    std::size_t i = 0;
    if (use_simd) {
        const VecD vf = VecD::broadcast(f);
        for (; i + kW <= m; i += kW)
            VecD::mulSub(VecD::load(dst + i), vf, VecD::load(src + i))
                .store(dst + i);
    }
    for (; i < m; ++i)
        dst[i] -= f * src[i];
}

/** dst[0..m) -= coef[0..m) * x. */
inline void
subScaledVec(double *dst, const double *coef, double x, std::size_t m,
             bool use_simd)
{
    std::size_t i = 0;
    if (use_simd) {
        const VecD vx = VecD::broadcast(x);
        for (; i + kW <= m; i += kW)
            VecD::mulSub(VecD::load(dst + i), VecD::load(coef + i), vx)
                .store(dst + i);
    }
    for (; i < m; ++i)
        dst[i] -= coef[i] * x;
}

/** dst[0..m) *= s. */
inline void
scaleRow(double *dst, double s, std::size_t m, bool use_simd)
{
    std::size_t i = 0;
    if (use_simd) {
        const VecD vs = VecD::broadcast(s);
        for (; i + kW <= m; i += kW)
            (VecD::load(dst + i) * vs).store(dst + i);
    }
    for (; i < m; ++i)
        dst[i] *= s;
}

} // namespace

LuDecomposition::LuDecomposition(const Matrix &a)
    : n_(a.rows()), lu_(a), pivot_(a.rows())
{
    RTR_ASSERT(a.rows() == a.cols(), "LU of non-square matrix");
    for (std::size_t i = 0; i < n_; ++i)
        pivot_[i] = i;

    for (std::size_t col = 0; col < n_; ++col) {
        // Find pivot row.
        std::size_t best = col;
        double best_abs = std::abs(lu_(col, col));
        for (std::size_t r = col + 1; r < n_; ++r) {
            double v = std::abs(lu_(r, col));
            if (v > best_abs) {
                best_abs = v;
                best = r;
            }
        }
        if (best_abs < 1e-13) {
            singular_ = true;
            continue;
        }
        if (best != col) {
            for (std::size_t c = 0; c < n_; ++c)
                std::swap(lu_(best, c), lu_(col, c));
            std::swap(pivot_[best], pivot_[col]);
            pivot_sign_ = -pivot_sign_;
        }
        // Eliminate below the pivot. The row update vectorizes across
        // the contiguous trailing columns with unchanged per-element
        // arithmetic, so results match the historical scalar loop
        // bitwise. The whole-row zero-skip is kept: it fires for
        // structured inputs (block-diagonal normal equations) and
        // skipping a row is exact.
        const bool use_simd = simdKernelsEnabled();
        double inv_pivot = 1.0 / lu_(col, col);
        const double *pivot_row = lu_.data() + col * n_ + col + 1;
        for (std::size_t r = col + 1; r < n_; ++r) {
            double factor = lu_(r, col) * inv_pivot;
            lu_(r, col) = factor;
            if (factor == 0.0)
                continue;
            subScaledRow(lu_.data() + r * n_ + col + 1, pivot_row, factor,
                         n_ - col - 1, use_simd);
        }
    }
}

Matrix
LuDecomposition::solve(const Matrix &b) const
{
    RTR_ASSERT(b.rows() == n_, "solve rhs row mismatch");
    RTR_ASSERT(!singular_, "solve with singular matrix");
    const std::size_t m = b.cols();
    const bool use_simd = simdKernelsEnabled();
    Matrix x(n_, m);
    // Apply row permutation.
    for (std::size_t r = 0; r < n_; ++r) {
        const double *brow = b.data() + pivot_[r] * m;
        std::copy(brow, brow + m, x.data() + r * m);
    }
    // Forward substitution with unit-diagonal L. Row updates vectorize
    // across the contiguous right-hand-side columns; per-element term
    // order is unchanged from the historical loops.
    for (std::size_t r = 1; r < n_; ++r) {
        for (std::size_t k = 0; k < r; ++k) {
            double factor = lu_(r, k);
            if (factor == 0.0)
                continue;
            subScaledRow(x.data() + r * m, x.data() + k * m, factor, m,
                         use_simd);
        }
    }
    // Backward substitution with U.
    for (std::size_t ri = n_; ri-- > 0;) {
        for (std::size_t k = ri + 1; k < n_; ++k) {
            double factor = lu_(ri, k);
            if (factor == 0.0)
                continue;
            subScaledRow(x.data() + ri * m, x.data() + k * m, factor, m,
                         use_simd);
        }
        double inv = 1.0 / lu_(ri, ri);
        scaleRow(x.data() + ri * m, inv, m, use_simd);
    }
    return x;
}

Matrix
LuDecomposition::inverse() const
{
    return solve(Matrix::identity(n_));
}

double
LuDecomposition::determinant() const
{
    if (singular_)
        return 0.0;
    double det = pivot_sign_;
    for (std::size_t i = 0; i < n_; ++i)
        det *= lu_(i, i);
    return det;
}

CholeskyDecomposition::CholeskyDecomposition(const Matrix &a)
    : n_(a.rows()), l_(a.rows(), a.rows())
{
    RTR_ASSERT(a.rows() == a.cols(), "Cholesky of non-square matrix");
    if (simdKernelsEnabled())
        factorSimd(a);
    else
        factorScalar(a);
    if (!failed_) {
        // Keep Lᵀ as well: the single-RHS forward solve walks rows of
        // Lᵀ (columns of L) and needs them contiguous to vectorize.
        lt_ = Matrix(n_, n_);
        for (std::size_t r = 0; r < n_; ++r) {
            for (std::size_t c = 0; c <= r; ++c)
                lt_.data()[c * n_ + r] = l_.data()[r * n_ + c];
        }
    }
}

/**
 * The preserved scalar reference: the seed's left-looking dot-product
 * form. Element (r,c) accumulates -l(r,k)*l(c,k) for k ascending, then
 * takes sqrt (diagonal) or divides by l(c,c).
 */
void
CholeskyDecomposition::factorScalar(const Matrix &a)
{
    for (std::size_t r = 0; r < n_; ++r) {
        for (std::size_t c = 0; c <= r; ++c) {
            double sum = a(r, c);
            for (std::size_t k = 0; k < c; ++k)
                sum -= l_(r, k) * l_(c, k);
            if (r == c) {
                if (sum <= 0.0) {
                    failed_ = true;
                    return;
                }
                l_(r, c) = std::sqrt(sum);
            } else {
                l_(r, c) = sum / l_(c, c);
            }
        }
    }
}

/**
 * Right-looking, column-blocked factorization. Each element still
 * receives exactly the same subtraction sequence as the left-looking
 * scalar path — one multiply and one subtract per k, k ascending, with
 * identical operand values (l(·,k) is final before block k's trailing
 * update runs) — so the factor is bitwise identical to factorScalar.
 * The blocking win: a kNB-column panel's contribution to the trailing
 * matrix is applied with the output row loaded once per kW-wide chunk
 * instead of once per k.
 */
void
CholeskyDecomposition::factorSimd(const Matrix &a)
{
    const std::size_t n = n_;
    double *l = l_.data();
    const double *ap = a.data();
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c <= r; ++c)
            l[r * n + c] = ap[r * n + c];
    }
    constexpr std::size_t kNB = 8;
    // colbuf holds the panel's columns contiguously (column j of L is
    // strided in row-major storage); buf[r] == l(r, j) once scaled.
    std::vector<double> colbuf(kNB * n, 0.0);
    for (std::size_t j0 = 0; j0 < n; j0 += kNB) {
        const std::size_t jb = std::min(kNB, n - j0);
        const std::size_t pend = j0 + jb;
        // Factor the panel columns in order.
        for (std::size_t j = j0; j < pend; ++j) {
            const double d = l[j * n + j];
            if (d <= 0.0) {
                failed_ = true;
                return;
            }
            const double ljj = std::sqrt(d);
            l[j * n + j] = ljj;
            double *buf = colbuf.data() + (j - j0) * n;
            for (std::size_t r = j + 1; r < n; ++r) {
                const double v = l[r * n + j] / ljj;
                l[r * n + j] = v;
                buf[r] = v;
            }
            // Rank-1 update restricted to the remaining panel columns
            // (at most kNB-1 wide; scalar, same mul+sub per element).
            for (std::size_t r = j + 1; r < n; ++r) {
                const double lrj = buf[r];
                double *lrow = l + r * n;
                const std::size_t cend = std::min(pend, r + 1);
                for (std::size_t c = j + 1; c < cend; ++c)
                    lrow[c] -= lrj * buf[c];
            }
        }
        // Trailing update: columns >= pend, rows r >= c. For each
        // kW-wide chunk of a row, subtract the whole panel (k = j0..
        // pend-1, ascending) while the chunk stays in registers.
        for (std::size_t r = pend; r < n; ++r) {
            double *lrow = l + r * n;
            const std::size_t cend = r + 1;
            std::size_t c = pend;
            for (; c + kW <= cend; c += kW) {
                VecD acc = VecD::load(lrow + c);
                for (std::size_t j = 0; j < jb; ++j) {
                    const double *buf = colbuf.data() + j * n;
                    acc = VecD::mulSub(acc, VecD::broadcast(buf[r]),
                                       VecD::load(buf + c));
                }
                acc.store(lrow + c);
            }
            for (; c < cend; ++c) {
                double acc = lrow[c];
                for (std::size_t j = 0; j < jb; ++j) {
                    const double *buf = colbuf.data() + j * n;
                    acc -= buf[r] * buf[c];
                }
                lrow[c] = acc;
            }
        }
    }
}

Matrix
CholeskyDecomposition::solve(const Matrix &b) const
{
    Matrix x;
    solveInto(b, x);
    return x;
}

void
CholeskyDecomposition::solveInto(const Matrix &b, Matrix &x) const
{
    RTR_ASSERT(!failed_, "solve with failed Cholesky factorization");
    RTR_ASSERT(b.rows() == n_, "solve rhs row mismatch");
    if (&x != &b)
        x = b;
    const std::size_t m = x.cols();
    const bool use_simd = simdKernelsEnabled();
    double *xp = x.data();
    const double *l = l_.data();
    if (m == 1) {
        // Single right-hand side (the GP-predict shape): vectorize
        // across rows of x. Forward walks row k of Lᵀ (contiguous),
        // backward walks row k of L (contiguous).
        const double *lt = lt_.data();
        // Forward: L y = b, right-looking.
        for (std::size_t k = 0; k < n_; ++k) {
            xp[k] *= 1.0 / l[k * n_ + k];
            subScaledVec(xp + k + 1, lt + k * n_ + k + 1, xp[k],
                         n_ - k - 1, use_simd);
        }
        // Backward: Lᵀ x = y, right-looking (k descending).
        for (std::size_t k = n_; k-- > 0;) {
            xp[k] *= 1.0 / l[k * n_ + k];
            subScaledVec(xp, l + k * n_, xp[k], k, use_simd);
        }
    } else {
        // Matrix right-hand side: vectorize across the contiguous
        // columns of each row.
        // Forward: L y = b, right-looking.
        for (std::size_t k = 0; k < n_; ++k) {
            scaleRow(xp + k * m, 1.0 / l[k * n_ + k], m, use_simd);
            for (std::size_t r = k + 1; r < n_; ++r)
                subScaledRow(xp + r * m, xp + k * m, l[r * n_ + k], m,
                             use_simd);
        }
        // Backward: Lᵀ x = y, right-looking (k descending).
        for (std::size_t k = n_; k-- > 0;) {
            scaleRow(xp + k * m, 1.0 / l[k * n_ + k], m, use_simd);
            for (std::size_t r = 0; r < k; ++r)
                subScaledRow(xp + r * m, xp + k * m, l[k * n_ + r], m,
                             use_simd);
        }
    }
}

double
CholeskyDecomposition::logDeterminant() const
{
    RTR_ASSERT(!failed_, "logDeterminant of failed factorization");
    double sum = 0.0;
    for (std::size_t i = 0; i < n_; ++i)
        sum += std::log(l_(i, i));
    return 2.0 * sum;
}

Matrix
inverse(const Matrix &a)
{
    LuDecomposition lu(a);
    if (lu.singular())
        fatal("inverse of a singular ", a.rows(), "x", a.cols(), " matrix");
    return lu.inverse();
}

Matrix
solve(const Matrix &a, const Matrix &b)
{
    LuDecomposition lu(a);
    if (lu.singular())
        fatal("solve with a singular ", a.rows(), "x", a.cols(), " matrix");
    return lu.solve(b);
}

} // namespace rtr

#include "linalg/decomp.h"

#include <cmath>

#include "util/logging.h"

namespace rtr {

LuDecomposition::LuDecomposition(const Matrix &a)
    : n_(a.rows()), lu_(a), pivot_(a.rows())
{
    RTR_ASSERT(a.rows() == a.cols(), "LU of non-square matrix");
    for (std::size_t i = 0; i < n_; ++i)
        pivot_[i] = i;

    for (std::size_t col = 0; col < n_; ++col) {
        // Find pivot row.
        std::size_t best = col;
        double best_abs = std::abs(lu_(col, col));
        for (std::size_t r = col + 1; r < n_; ++r) {
            double v = std::abs(lu_(r, col));
            if (v > best_abs) {
                best_abs = v;
                best = r;
            }
        }
        if (best_abs < 1e-13) {
            singular_ = true;
            continue;
        }
        if (best != col) {
            for (std::size_t c = 0; c < n_; ++c)
                std::swap(lu_(best, c), lu_(col, c));
            std::swap(pivot_[best], pivot_[col]);
            pivot_sign_ = -pivot_sign_;
        }
        // Eliminate below the pivot.
        double inv_pivot = 1.0 / lu_(col, col);
        for (std::size_t r = col + 1; r < n_; ++r) {
            double factor = lu_(r, col) * inv_pivot;
            lu_(r, col) = factor;
            if (factor == 0.0)
                continue;
            for (std::size_t c = col + 1; c < n_; ++c)
                lu_(r, c) -= factor * lu_(col, c);
        }
    }
}

Matrix
LuDecomposition::solve(const Matrix &b) const
{
    RTR_ASSERT(b.rows() == n_, "solve rhs row mismatch");
    RTR_ASSERT(!singular_, "solve with singular matrix");
    Matrix x(n_, b.cols());
    // Apply row permutation.
    for (std::size_t r = 0; r < n_; ++r) {
        for (std::size_t c = 0; c < b.cols(); ++c)
            x(r, c) = b(pivot_[r], c);
    }
    // Forward substitution with unit-diagonal L.
    for (std::size_t r = 1; r < n_; ++r) {
        for (std::size_t k = 0; k < r; ++k) {
            double factor = lu_(r, k);
            if (factor == 0.0)
                continue;
            for (std::size_t c = 0; c < b.cols(); ++c)
                x(r, c) -= factor * x(k, c);
        }
    }
    // Backward substitution with U.
    for (std::size_t ri = n_; ri-- > 0;) {
        for (std::size_t k = ri + 1; k < n_; ++k) {
            double factor = lu_(ri, k);
            if (factor == 0.0)
                continue;
            for (std::size_t c = 0; c < b.cols(); ++c)
                x(ri, c) -= factor * x(k, c);
        }
        double inv = 1.0 / lu_(ri, ri);
        for (std::size_t c = 0; c < b.cols(); ++c)
            x(ri, c) *= inv;
    }
    return x;
}

Matrix
LuDecomposition::inverse() const
{
    return solve(Matrix::identity(n_));
}

double
LuDecomposition::determinant() const
{
    if (singular_)
        return 0.0;
    double det = pivot_sign_;
    for (std::size_t i = 0; i < n_; ++i)
        det *= lu_(i, i);
    return det;
}

CholeskyDecomposition::CholeskyDecomposition(const Matrix &a)
    : n_(a.rows()), l_(a.rows(), a.rows())
{
    RTR_ASSERT(a.rows() == a.cols(), "Cholesky of non-square matrix");
    for (std::size_t r = 0; r < n_; ++r) {
        for (std::size_t c = 0; c <= r; ++c) {
            double sum = a(r, c);
            for (std::size_t k = 0; k < c; ++k)
                sum -= l_(r, k) * l_(c, k);
            if (r == c) {
                if (sum <= 0.0) {
                    failed_ = true;
                    return;
                }
                l_(r, c) = std::sqrt(sum);
            } else {
                l_(r, c) = sum / l_(c, c);
            }
        }
    }
}

Matrix
CholeskyDecomposition::solve(const Matrix &b) const
{
    RTR_ASSERT(!failed_, "solve with failed Cholesky factorization");
    RTR_ASSERT(b.rows() == n_, "solve rhs row mismatch");
    Matrix x = b;
    // Forward: L y = b.
    for (std::size_t r = 0; r < n_; ++r) {
        for (std::size_t k = 0; k < r; ++k) {
            double factor = l_(r, k);
            for (std::size_t c = 0; c < b.cols(); ++c)
                x(r, c) -= factor * x(k, c);
        }
        double inv = 1.0 / l_(r, r);
        for (std::size_t c = 0; c < b.cols(); ++c)
            x(r, c) *= inv;
    }
    // Backward: L^T x = y.
    for (std::size_t ri = n_; ri-- > 0;) {
        for (std::size_t k = ri + 1; k < n_; ++k) {
            double factor = l_(k, ri);
            for (std::size_t c = 0; c < b.cols(); ++c)
                x(ri, c) -= factor * x(k, c);
        }
        double inv = 1.0 / l_(ri, ri);
        for (std::size_t c = 0; c < b.cols(); ++c)
            x(ri, c) *= inv;
    }
    return x;
}

double
CholeskyDecomposition::logDeterminant() const
{
    RTR_ASSERT(!failed_, "logDeterminant of failed factorization");
    double sum = 0.0;
    for (std::size_t i = 0; i < n_; ++i)
        sum += std::log(l_(i, i));
    return 2.0 * sum;
}

Matrix
inverse(const Matrix &a)
{
    LuDecomposition lu(a);
    if (lu.singular())
        fatal("inverse of a singular ", a.rows(), "x", a.cols(), " matrix");
    return lu.inverse();
}

Matrix
solve(const Matrix &a, const Matrix &b)
{
    LuDecomposition lu(a);
    if (lu.singular())
        fatal("solve with a singular ", a.rows(), "x", a.cols(), " matrix");
    return lu.solve(b);
}

} // namespace rtr

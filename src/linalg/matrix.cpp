#include "linalg/matrix.h"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/logging.h"

namespace rtr {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
{
    rows_ = rows.size();
    cols_ = rows_ ? rows.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto &row : rows) {
        RTR_ASSERT(row.size() == cols_, "ragged initializer list");
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Matrix
Matrix::constant(std::size_t rows, std::size_t cols, double value)
{
    Matrix m(rows, cols);
    for (double &x : m.data_)
        x = value;
    return m;
}

Matrix
Matrix::diagonal(const std::vector<double> &entries)
{
    Matrix m(entries.size(), entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i)
        m(i, i) = entries[i];
    return m;
}

Matrix
Matrix::columnVector(const std::vector<double> &entries)
{
    Matrix m(entries.size(), 1);
    for (std::size_t i = 0; i < entries.size(); ++i)
        m(i, 0) = entries[i];
    return m;
}

double &
Matrix::operator()(std::size_t r, std::size_t c)
{
    RTR_ASSERT(r < rows_ && c < cols_, "matrix index (", r, ",", c,
               ") out of ", rows_, "x", cols_);
    return data_[r * cols_ + c];
}

double
Matrix::operator()(std::size_t r, std::size_t c) const
{
    RTR_ASSERT(r < rows_ && c < cols_, "matrix index (", r, ",", c,
               ") out of ", rows_, "x", cols_);
    return data_[r * cols_ + c];
}

Matrix
Matrix::operator+(const Matrix &o) const
{
    Matrix out = *this;
    out += o;
    return out;
}

Matrix
Matrix::operator-(const Matrix &o) const
{
    Matrix out = *this;
    out -= o;
    return out;
}

Matrix
Matrix::operator*(const Matrix &o) const
{
    RTR_ASSERT(cols_ == o.rows_, "matmul shape mismatch: ", rows_, "x",
               cols_, " * ", o.rows_, "x", o.cols_);
    Matrix out(rows_, o.cols_);
    // i-k-j loop order keeps the innermost accesses sequential in both
    // the output row and the right operand's row.
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            double lhs = data_[i * cols_ + k];
            if (lhs == 0.0)
                continue;
            const double *rhs_row = &o.data_[k * o.cols_];
            double *out_row = &out.data_[i * o.cols_];
            for (std::size_t j = 0; j < o.cols_; ++j)
                out_row[j] += lhs * rhs_row[j];
        }
    }
    return out;
}

Matrix
Matrix::operator*(double s) const
{
    Matrix out = *this;
    out *= s;
    return out;
}

Matrix &
Matrix::operator+=(const Matrix &o)
{
    RTR_ASSERT(rows_ == o.rows_ && cols_ == o.cols_, "add shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += o.data_[i];
    return *this;
}

Matrix &
Matrix::operator-=(const Matrix &o)
{
    RTR_ASSERT(rows_ == o.rows_ && cols_ == o.cols_, "sub shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] -= o.data_[i];
    return *this;
}

Matrix &
Matrix::operator*=(double s)
{
    for (double &x : data_)
        x *= s;
    return *this;
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c)
            out(c, r) = data_[r * cols_ + c];
    }
    return out;
}

double
Matrix::frobeniusNorm() const
{
    double sum = 0.0;
    for (double x : data_)
        sum += x * x;
    return std::sqrt(sum);
}

double
Matrix::trace() const
{
    RTR_ASSERT(rows_ == cols_, "trace of non-square matrix");
    double sum = 0.0;
    for (std::size_t i = 0; i < rows_; ++i)
        sum += data_[i * cols_ + i];
    return sum;
}

bool
Matrix::approxEquals(const Matrix &o, double eps) const
{
    if (rows_ != o.rows_ || cols_ != o.cols_)
        return false;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        if (std::abs(data_[i] - o.data_[i]) > eps)
            return false;
    }
    return true;
}

void
Matrix::setBlock(std::size_t row, std::size_t col, const Matrix &src)
{
    RTR_ASSERT(row + src.rows_ <= rows_ && col + src.cols_ <= cols_,
               "setBlock out of bounds");
    for (std::size_t r = 0; r < src.rows_; ++r) {
        for (std::size_t c = 0; c < src.cols_; ++c)
            data_[(row + r) * cols_ + (col + c)] = src(r, c);
    }
}

Matrix
Matrix::block(std::size_t row, std::size_t col, std::size_t h,
              std::size_t w) const
{
    RTR_ASSERT(row + h <= rows_ && col + w <= cols_, "block out of bounds");
    Matrix out(h, w);
    for (std::size_t r = 0; r < h; ++r) {
        for (std::size_t c = 0; c < w; ++c)
            out(r, c) = data_[(row + r) * cols_ + (col + c)];
    }
    return out;
}

std::string
Matrix::toString(int precision) const
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision);
    for (std::size_t r = 0; r < rows_; ++r) {
        oss << "[";
        for (std::size_t c = 0; c < cols_; ++c) {
            oss << data_[r * cols_ + c];
            if (c + 1 < cols_)
                oss << ", ";
        }
        oss << "]\n";
    }
    return oss.str();
}

Matrix
operator*(double s, const Matrix &m)
{
    return m * s;
}

} // namespace rtr

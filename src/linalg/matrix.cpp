#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <vector>

#include "util/logging.h"
#include "util/simd.h"

namespace rtr {

namespace {

using simd::VecD;

// Register tile shape of the GEMM micro-kernel: kMR rows of A are
// broadcast against kNR (= two vectors) output columns, so a full tile
// holds kMR * 2 accumulators in registers. 4 x 8 on AVX2, 4 x 4 on
// SSE2/NEON, 4 x 2 in the scalar-fallback build.
constexpr std::size_t kW = VecD::kWidth;
constexpr std::size_t kMR = 4;
constexpr std::size_t kNR = 2 * kW;

bool g_simd_enabled = std::getenv("RTR_LINALG_SCALAR") == nullptr;

// Per-element epilogue c = alpha*acc + beta*c. The special cases pin
// the exact operation sequence of the two hot configurations: plain
// product (beta == 0, store) and accumulate (alpha == beta == 1,
// c + acc). With beta == 0 the old value is never used, so C may hold
// NaN or garbage without poisoning the result. combineVec must mirror
// this ladder exactly — the bitwise-identity contract is per element.
inline double
combineScalar(double acc, double cold, double alpha, double beta)
{
    if (beta == 0.0)
        return alpha == 1.0 ? acc : alpha * acc;
    if (alpha == 1.0 && beta == 1.0)
        return cold + acc;
    double scaled_acc = alpha * acc;
    double scaled_old = beta * cold;
    return scaled_acc + scaled_old;
}

inline VecD
combineVec(VecD acc, const double *cp, double alpha, double beta)
{
    if (beta == 0.0)
        return alpha == 1.0 ? acc : VecD::broadcast(alpha) * acc;
    const VecD cold = VecD::load(cp);
    if (alpha == 1.0 && beta == 1.0)
        return cold + acc;
    return VecD::broadcast(alpha) * acc + VecD::broadcast(beta) * cold;
}

/**
 * Full register tile: Rows x kNR outputs. Accumulates over k in
 * ascending order with one multiply and one add per element per step
 * (VecD::mulAdd never fuses), which keeps every output element bitwise
 * identical to the scalar i-k-j loop.
 */
template <int Rows>
inline void
tileFull(const double *a, std::size_t lda, const double *b, std::size_t ldb,
         double *c, std::size_t ldc, std::size_t kdim, double alpha,
         double beta)
{
    VecD acc0[Rows], acc1[Rows];
    for (int r = 0; r < Rows; ++r) {
        acc0[r] = VecD::zero();
        acc1[r] = VecD::zero();
    }
    for (std::size_t k = 0; k < kdim; ++k) {
        const double *brow = b + k * ldb;
        const VecD b0 = VecD::load(brow);
        const VecD b1 = VecD::load(brow + kW);
        for (int r = 0; r < Rows; ++r) {
            const VecD av = VecD::broadcast(a[r * lda + k]);
            acc0[r] = VecD::mulAdd(acc0[r], av, b0);
            acc1[r] = VecD::mulAdd(acc1[r], av, b1);
        }
    }
    for (int r = 0; r < Rows; ++r) {
        double *cp = c + r * ldc;
        combineVec(acc0[r], cp, alpha, beta).store(cp);
        combineVec(acc1[r], cp + kW, alpha, beta).store(cp + kW);
    }
}

/**
 * Right-edge tile with ncols < kNR live columns. B must be a packed
 * panel (leading dimension kNR, zero-padded), so the full-width loads
 * stay in bounds; the dead lanes compute zeros that are never stored.
 */
template <int Rows>
inline void
tilePartial(const double *a, std::size_t lda, const double *b, double *c,
            std::size_t ldc, std::size_t kdim, std::size_t ncols,
            double alpha, double beta)
{
    VecD acc0[Rows], acc1[Rows];
    for (int r = 0; r < Rows; ++r) {
        acc0[r] = VecD::zero();
        acc1[r] = VecD::zero();
    }
    for (std::size_t k = 0; k < kdim; ++k) {
        const double *brow = b + k * kNR;
        const VecD b0 = VecD::load(brow);
        const VecD b1 = VecD::load(brow + kW);
        for (int r = 0; r < Rows; ++r) {
            const VecD av = VecD::broadcast(a[r * lda + k]);
            acc0[r] = VecD::mulAdd(acc0[r], av, b0);
            acc1[r] = VecD::mulAdd(acc1[r], av, b1);
        }
    }
    double tmp[kNR];
    for (int r = 0; r < Rows; ++r) {
        acc0[r].store(tmp);
        acc1[r].store(tmp + kW);
        double *cp = c + r * ldc;
        for (std::size_t j = 0; j < ncols; ++j)
            cp[j] = combineScalar(tmp[j], cp[j], alpha, beta);
    }
}

/**
 * Blocked SIMD GEMM driver: C = alpha*op(B-product) + beta*C where the
 * product is A*B (b_transposed == false) or A*Bᵀ (true). Strided Bᵀ
 * panels and right-edge partial panels are packed into a zero-padded
 * thread-local scratch so the micro-kernel always sees contiguous,
 * full-width rows.
 */
void
gemmSimd(std::size_t m, std::size_t kdim, std::size_t n, const double *a,
         std::size_t lda, const double *b, std::size_t ldb,
         bool b_transposed, double *c, std::size_t ldc, double alpha,
         double beta)
{
    thread_local std::vector<double> pack;
    for (std::size_t j0 = 0; j0 < n; j0 += kNR) {
        const std::size_t nr = std::min(kNR, n - j0);
        const double *bp = b + j0;
        std::size_t bld = ldb;
        if (b_transposed || nr < kNR) {
            pack.assign(kNR * std::max<std::size_t>(kdim, 1), 0.0);
            if (b_transposed) {
                for (std::size_t jj = 0; jj < nr; ++jj) {
                    const double *brow = b + (j0 + jj) * ldb;
                    for (std::size_t k = 0; k < kdim; ++k)
                        pack[k * kNR + jj] = brow[k];
                }
            } else {
                for (std::size_t k = 0; k < kdim; ++k) {
                    const double *brow = b + k * ldb + j0;
                    for (std::size_t jj = 0; jj < nr; ++jj)
                        pack[k * kNR + jj] = brow[jj];
                }
            }
            bp = pack.data();
            bld = kNR;
        }
        for (std::size_t i0 = 0; i0 < m; i0 += kMR) {
            const std::size_t mr = std::min(kMR, m - i0);
            const double *ap = a + i0 * lda;
            double *cp = c + i0 * ldc + j0;
            if (nr == kNR) {
                switch (mr) {
                case 4:
                    tileFull<4>(ap, lda, bp, bld, cp, ldc, kdim, alpha, beta);
                    break;
                case 3:
                    tileFull<3>(ap, lda, bp, bld, cp, ldc, kdim, alpha, beta);
                    break;
                case 2:
                    tileFull<2>(ap, lda, bp, bld, cp, ldc, kdim, alpha, beta);
                    break;
                default:
                    tileFull<1>(ap, lda, bp, bld, cp, ldc, kdim, alpha, beta);
                    break;
                }
            } else {
                switch (mr) {
                case 4:
                    tilePartial<4>(ap, lda, bp, cp, ldc, kdim, nr, alpha,
                                   beta);
                    break;
                case 3:
                    tilePartial<3>(ap, lda, bp, cp, ldc, kdim, nr, alpha,
                                   beta);
                    break;
                case 2:
                    tilePartial<2>(ap, lda, bp, cp, ldc, kdim, nr, alpha,
                                   beta);
                    break;
                default:
                    tilePartial<1>(ap, lda, bp, cp, ldc, kdim, nr, alpha,
                                   beta);
                    break;
                }
            }
        }
    }
}

/**
 * Scalar reference for the GEMM family: the historical i-k-j loop with
 * a row accumulator, followed by the same per-element epilogue as the
 * SIMD path. src/linalg is compiled with -ffp-contract=off, so the
 * compiler cannot fuse the multiply-add here and break the bitwise
 * contract against the explicit-intrinsic path.
 */
void
gemmScalar(std::size_t m, std::size_t kdim, std::size_t n, const double *a,
           std::size_t lda, const double *b, std::size_t ldb,
           bool b_transposed, double *c, std::size_t ldc, double alpha,
           double beta)
{
    thread_local std::vector<double> rowacc;
    rowacc.assign(n, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
        std::fill(rowacc.begin(), rowacc.end(), 0.0);
        for (std::size_t k = 0; k < kdim; ++k) {
            const double av = a[i * lda + k];
            if (b_transposed) {
                for (std::size_t j = 0; j < n; ++j)
                    rowacc[j] += av * b[j * ldb + k];
            } else {
                const double *brow = b + k * ldb;
                for (std::size_t j = 0; j < n; ++j)
                    rowacc[j] += av * brow[j];
            }
        }
        double *crow = c + i * ldc;
        for (std::size_t j = 0; j < n; ++j)
            crow[j] = combineScalar(rowacc[j], crow[j], alpha, beta);
    }
}

void
gemmDispatch(std::size_t m, std::size_t kdim, std::size_t n, const double *a,
             std::size_t lda, const double *b, std::size_t ldb,
             bool b_transposed, double *c, std::size_t ldc, double alpha,
             double beta)
{
    if (g_simd_enabled)
        gemmSimd(m, kdim, n, a, lda, b, ldb, b_transposed, c, ldc, alpha,
                 beta);
    else
        gemmScalar(m, kdim, n, a, lda, b, ldb, b_transposed, c, ldc, alpha,
                   beta);
}

inline bool
sameBuffer(const Matrix &x, const Matrix &y)
{
    return x.data() != nullptr && x.data() == y.data();
}

} // namespace

bool
simdKernelsEnabled()
{
    return g_simd_enabled;
}

void
setSimdKernelsEnabled(bool enabled)
{
    g_simd_enabled = enabled;
}

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
{
    rows_ = rows.size();
    cols_ = rows_ ? rows.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto &row : rows) {
        RTR_ASSERT(row.size() == cols_, "ragged initializer list");
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Matrix
Matrix::constant(std::size_t rows, std::size_t cols, double value)
{
    Matrix m(rows, cols);
    for (double &x : m.data_)
        x = value;
    return m;
}

Matrix
Matrix::diagonal(const std::vector<double> &entries)
{
    Matrix m(entries.size(), entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i)
        m(i, i) = entries[i];
    return m;
}

Matrix
Matrix::columnVector(const std::vector<double> &entries)
{
    Matrix m(entries.size(), 1);
    for (std::size_t i = 0; i < entries.size(); ++i)
        m(i, 0) = entries[i];
    return m;
}

void
Matrix::resize(std::size_t rows, std::size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
}

double &
Matrix::operator()(std::size_t r, std::size_t c)
{
    RTR_ASSERT(r < rows_ && c < cols_, "matrix index (", r, ",", c,
               ") out of ", rows_, "x", cols_);
    return data_[r * cols_ + c];
}

double
Matrix::operator()(std::size_t r, std::size_t c) const
{
    RTR_ASSERT(r < rows_ && c < cols_, "matrix index (", r, ",", c,
               ") out of ", rows_, "x", cols_);
    return data_[r * cols_ + c];
}

Matrix
Matrix::operator+(const Matrix &o) const
{
    Matrix out = *this;
    out += o;
    return out;
}

Matrix
Matrix::operator-(const Matrix &o) const
{
    Matrix out = *this;
    out -= o;
    return out;
}

Matrix
Matrix::operator*(const Matrix &o) const
{
    RTR_ASSERT(cols_ == o.rows_, "matmul shape mismatch: ", rows_, "x",
               cols_, " * ", o.rows_, "x", o.cols_);
    Matrix out(rows_, o.cols_);
    if (g_simd_enabled)
        gemmSimd(rows_, cols_, o.cols_, data_.data(), cols_,
                 o.data_.data(), o.cols_, false, out.data_.data(), o.cols_,
                 1.0, 0.0);
    else
        gemmScalar(rows_, cols_, o.cols_, data_.data(), cols_,
                   o.data_.data(), o.cols_, false, out.data_.data(),
                   o.cols_, 1.0, 0.0);
    return out;
}

Matrix
Matrix::multiplyScalar(const Matrix &o) const
{
    RTR_ASSERT(cols_ == o.rows_, "matmul shape mismatch: ", rows_, "x",
               cols_, " * ", o.rows_, "x", o.cols_);
    Matrix out(rows_, o.cols_);
    // The reference path: i-k-j loop order keeps the innermost accesses
    // sequential in both the output row and the right operand's row.
    // The zero-skip branch the seed carried here is gone — on dense EKF
    // covariances it was a never-taken compare in the hottest loop, and
    // it broke IEEE semantics (0-weighted NaN rows produced 0, the SIMD
    // path produces NaN). EXPERIMENTS.md has the measurement.
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            double lhs = data_[i * cols_ + k];
            const double *rhs_row = &o.data_[k * o.cols_];
            double *out_row = &out.data_[i * o.cols_];
            for (std::size_t j = 0; j < o.cols_; ++j)
                out_row[j] += lhs * rhs_row[j];
        }
    }
    return out;
}

Matrix
Matrix::operator*(double s) const
{
    Matrix out = *this;
    out *= s;
    return out;
}

Matrix &
Matrix::operator+=(const Matrix &o)
{
    RTR_ASSERT(rows_ == o.rows_ && cols_ == o.cols_, "add shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += o.data_[i];
    return *this;
}

Matrix &
Matrix::operator-=(const Matrix &o)
{
    RTR_ASSERT(rows_ == o.rows_ && cols_ == o.cols_, "sub shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] -= o.data_[i];
    return *this;
}

Matrix &
Matrix::operator*=(double s)
{
    for (double &x : data_)
        x *= s;
    return *this;
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c)
            out(c, r) = data_[r * cols_ + c];
    }
    return out;
}

double
Matrix::frobeniusNorm() const
{
    double sum = 0.0;
    for (double x : data_)
        sum += x * x;
    return std::sqrt(sum);
}

double
Matrix::trace() const
{
    RTR_ASSERT(rows_ == cols_, "trace of non-square matrix");
    double sum = 0.0;
    for (std::size_t i = 0; i < rows_; ++i)
        sum += data_[i * cols_ + i];
    return sum;
}

bool
Matrix::approxEquals(const Matrix &o, double eps) const
{
    if (rows_ != o.rows_ || cols_ != o.cols_)
        return false;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        if (std::abs(data_[i] - o.data_[i]) > eps)
            return false;
    }
    return true;
}

void
Matrix::setBlock(std::size_t row, std::size_t col, const Matrix &src)
{
    RTR_ASSERT(row + src.rows_ <= rows_ && col + src.cols_ <= cols_,
               "setBlock out of bounds");
    for (std::size_t r = 0; r < src.rows_; ++r) {
        for (std::size_t c = 0; c < src.cols_; ++c)
            data_[(row + r) * cols_ + (col + c)] = src(r, c);
    }
}

Matrix
Matrix::block(std::size_t row, std::size_t col, std::size_t h,
              std::size_t w) const
{
    RTR_ASSERT(row + h <= rows_ && col + w <= cols_, "block out of bounds");
    Matrix out(h, w);
    for (std::size_t r = 0; r < h; ++r) {
        for (std::size_t c = 0; c < w; ++c)
            out(r, c) = data_[(row + r) * cols_ + (col + c)];
    }
    return out;
}

std::string
Matrix::toString(int precision) const
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision);
    for (std::size_t r = 0; r < rows_; ++r) {
        oss << "[";
        for (std::size_t c = 0; c < cols_; ++c) {
            oss << data_[r * cols_ + c];
            if (c + 1 < cols_)
                oss << ", ";
        }
        oss << "]\n";
    }
    return oss.str();
}

Matrix
operator*(double s, const Matrix &m)
{
    return m * s;
}

void
gemm(const Matrix &a, const Matrix &b, Matrix &c, double alpha, double beta)
{
    RTR_ASSERT(a.cols() == b.rows(), "gemm shape mismatch: ", a.rows(), "x",
               a.cols(), " * ", b.rows(), "x", b.cols());
    RTR_ASSERT(!sameBuffer(c, a) && !sameBuffer(c, b),
               "gemm output aliases an input");
    if (beta == 0.0) {
        if (c.rows() != a.rows() || c.cols() != b.cols())
            c.resize(a.rows(), b.cols());
    } else {
        RTR_ASSERT(c.rows() == a.rows() && c.cols() == b.cols(),
                   "gemm accumulate shape mismatch: C is ", c.rows(), "x",
                   c.cols(), ", product is ", a.rows(), "x", b.cols());
    }
    gemmDispatch(a.rows(), a.cols(), b.cols(), a.data(), a.cols(), b.data(),
                 b.cols(), false, c.data(), c.cols(), alpha, beta);
}

void
multiplyTransposed(const Matrix &a, const Matrix &b, Matrix &out)
{
    RTR_ASSERT(a.cols() == b.cols(),
               "multiplyTransposed shape mismatch: ", a.rows(), "x",
               a.cols(), " * (", b.rows(), "x", b.cols(), ")^T");
    RTR_ASSERT(!sameBuffer(out, a) && !sameBuffer(out, b),
               "multiplyTransposed output aliases an input");
    if (out.rows() != a.rows() || out.cols() != b.rows())
        out.resize(a.rows(), b.rows());
    gemmDispatch(a.rows(), a.cols(), b.rows(), a.data(), a.cols(), b.data(),
                 b.cols(), true, out.data(), out.cols(), 1.0, 0.0);
}

Matrix
multiplyTransposed(const Matrix &a, const Matrix &b)
{
    Matrix out;
    multiplyTransposed(a, b, out);
    return out;
}

void
symmetricSandwich(const Matrix &h, const Matrix &p, Matrix &out, Matrix &work)
{
    RTR_ASSERT(p.rows() == p.cols(), "symmetricSandwich: P must be square");
    RTR_ASSERT(h.cols() == p.rows(),
               "symmetricSandwich shape mismatch: H is ", h.rows(), "x",
               h.cols(), ", P is ", p.rows(), "x", p.cols());
    RTR_ASSERT(!sameBuffer(out, h) && !sameBuffer(out, p) &&
                   !sameBuffer(work, h) && !sameBuffer(work, p) &&
                   !sameBuffer(out, work),
               "symmetricSandwich output/workspace aliases an input");
    gemm(h, p, work, 1.0, 0.0);          // work = H P
    multiplyTransposed(work, h, out);    // out  = (H P) Hᵀ
}

void
addScaledOuter(Matrix &c, double alpha, const Matrix &x, const Matrix &y)
{
    RTR_ASSERT(x.cols() == 1 && y.cols() == 1,
               "addScaledOuter expects column vectors");
    RTR_ASSERT(c.rows() == x.rows() && c.cols() == y.rows(),
               "addScaledOuter shape mismatch: C is ", c.rows(), "x",
               c.cols(), ", outer product is ", x.rows(), "x", y.rows());
    RTR_ASSERT(!sameBuffer(c, x) && !sameBuffer(c, y),
               "addScaledOuter output aliases an input");
    const std::size_t m = c.rows();
    const std::size_t n = c.cols();
    const double *xp = x.data();
    const double *yp = y.data();
    for (std::size_t i = 0; i < m; ++i) {
        const double s = alpha * xp[i];
        double *crow = c.data() + i * n;
        std::size_t j = 0;
        if (g_simd_enabled) {
            const VecD vs = VecD::broadcast(s);
            for (; j + kW <= n; j += kW) {
                VecD::mulAdd(VecD::load(crow + j), vs, VecD::load(yp + j))
                    .store(crow + j);
            }
        }
        for (; j < n; ++j)
            crow[j] += s * yp[j];
    }
}

} // namespace rtr

/**
 * @file
 * Dense row-major double matrix.
 *
 * This is the linear-algebra substrate of the EKF-SLAM, scene
 * reconstruction, MPC, and Bayesian-optimization kernels. The paper
 * identifies "frequent matrix operations (multiplication, inversion)" as
 * the dominant cost of 02.ekfslam; all such operations route through this
 * class so the benchmark harness can attribute time to them.
 */

#ifndef RTR_LINALG_MATRIX_H
#define RTR_LINALG_MATRIX_H

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace rtr {

/** Dense matrix of doubles with value semantics. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** rows x cols matrix, zero-initialized. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Build from nested initializer list (rows of equal length). */
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    /** n x n identity. */
    static Matrix identity(std::size_t n);

    /** rows x cols matrix filled with a constant. */
    static Matrix constant(std::size_t rows, std::size_t cols, double value);

    /** Diagonal matrix from a vector of diagonal entries. */
    static Matrix diagonal(const std::vector<double> &entries);

    /** Column vector from entries. */
    static Matrix columnVector(const std::vector<double> &entries);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** Element access (row, col); bounds-checked in debug builds. */
    double &operator()(std::size_t r, std::size_t c);
    double operator()(std::size_t r, std::size_t c) const;

    /** Raw storage pointer (row-major). */
    double *data() { return data_.data(); }
    const double *data() const { return data_.data(); }

    Matrix operator+(const Matrix &o) const;
    Matrix operator-(const Matrix &o) const;
    Matrix operator*(const Matrix &o) const;
    Matrix operator*(double s) const;
    Matrix &operator+=(const Matrix &o);
    Matrix &operator-=(const Matrix &o);
    Matrix &operator*=(double s);

    /** Transposed copy. */
    Matrix transposed() const;

    /** Frobenius norm. */
    double frobeniusNorm() const;

    /** Trace (sum of diagonal entries; matrix must be square). */
    double trace() const;

    /** Whether shapes and all entries match within eps. */
    bool approxEquals(const Matrix &o, double eps = 1e-9) const;

    /**
     * Copy block src into this matrix with its top-left corner at
     * (row, col). The block must fit.
     */
    void setBlock(std::size_t row, std::size_t col, const Matrix &src);

    /** Extract an h x w block whose top-left corner is at (row, col). */
    Matrix block(std::size_t row, std::size_t col, std::size_t h,
                 std::size_t w) const;

    /** Human-readable multi-line rendering (for diagnostics). */
    std::string toString(int precision = 4) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/** Scalar-on-the-left multiplication. */
Matrix operator*(double s, const Matrix &m);

} // namespace rtr

#endif // RTR_LINALG_MATRIX_H

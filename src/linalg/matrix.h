/**
 * @file
 * Dense row-major double matrix.
 *
 * This is the linear-algebra substrate of the EKF-SLAM, scene
 * reconstruction, MPC, and Bayesian-optimization kernels. The paper
 * identifies "frequent matrix operations (multiplication, inversion)" as
 * the dominant cost of 02.ekfslam; all such operations route through this
 * class so the benchmark harness can attribute time to them.
 */

#ifndef RTR_LINALG_MATRIX_H
#define RTR_LINALG_MATRIX_H

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace rtr {

/** Dense matrix of doubles with value semantics. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** rows x cols matrix, zero-initialized. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Build from nested initializer list (rows of equal length). */
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    /** n x n identity. */
    static Matrix identity(std::size_t n);

    /** rows x cols matrix filled with a constant. */
    static Matrix constant(std::size_t rows, std::size_t cols, double value);

    /** Diagonal matrix from a vector of diagonal entries. */
    static Matrix diagonal(const std::vector<double> &entries);

    /** Column vector from entries. */
    static Matrix columnVector(const std::vector<double> &entries);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /**
     * Reshape to rows x cols and zero-fill. Reuses the existing heap
     * allocation when capacity suffices — this is the workspace-reuse
     * primitive behind the no-temporary entry points below.
     */
    void resize(std::size_t rows, std::size_t cols);

    /** Element access (row, col); bounds-checked in debug builds. */
    double &operator()(std::size_t r, std::size_t c);
    double operator()(std::size_t r, std::size_t c) const;

    /** Raw storage pointer (row-major). */
    double *data() { return data_.data(); }
    const double *data() const { return data_.data(); }

    Matrix operator+(const Matrix &o) const;
    Matrix operator-(const Matrix &o) const;
    Matrix operator*(const Matrix &o) const;
    Matrix operator*(double s) const;
    Matrix &operator+=(const Matrix &o);
    Matrix &operator-=(const Matrix &o);
    Matrix &operator*=(double s);

    /**
     * Matrix product through the preserved scalar reference path (the
     * plain i-k-j triple loop), regardless of the runtime SIMD-dispatch
     * flag. The SIMD path of operator* is bitwise identical to this by
     * contract; tests/test_linalg_simd.cpp cross-checks the two.
     */
    Matrix multiplyScalar(const Matrix &o) const;

    /** Transposed copy. */
    Matrix transposed() const;

    /** Frobenius norm. */
    double frobeniusNorm() const;

    /** Trace (sum of diagonal entries; matrix must be square). */
    double trace() const;

    /** Whether shapes and all entries match within eps. */
    bool approxEquals(const Matrix &o, double eps = 1e-9) const;

    /**
     * Copy block src into this matrix with its top-left corner at
     * (row, col). The block must fit.
     */
    void setBlock(std::size_t row, std::size_t col, const Matrix &src);

    /** Extract an h x w block whose top-left corner is at (row, col). */
    Matrix block(std::size_t row, std::size_t col, std::size_t h,
                 std::size_t w) const;

    /** Human-readable multi-line rendering (for diagnostics). */
    std::string toString(int precision = 4) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/** Scalar-on-the-left multiplication. */
Matrix operator*(double s, const Matrix &m);

/**
 * Runtime dispatch between the SIMD micro-kernels and the preserved
 * scalar reference paths for everything in linalg (GEMM family,
 * Cholesky/LU factor + solve). Defaults to enabled; set the environment
 * variable RTR_LINALG_SCALAR (any value) to start disabled. The two
 * paths are bitwise identical by contract, so flipping this mid-run
 * changes performance, never results. Not thread-safe: set it before
 * entering parallel regions.
 */
bool simdKernelsEnabled();
void setSimdKernelsEnabled(bool enabled);

/** RAII toggle for simdKernelsEnabled (tests, scalar/SIMD A/B runs). */
class ScopedSimdKernels
{
  public:
    explicit ScopedSimdKernels(bool enabled) : prev_(simdKernelsEnabled())
    {
        setSimdKernelsEnabled(enabled);
    }
    ~ScopedSimdKernels() { setSimdKernelsEnabled(prev_); }
    ScopedSimdKernels(const ScopedSimdKernels &) = delete;
    ScopedSimdKernels &operator=(const ScopedSimdKernels &) = delete;

  private:
    bool prev_;
};

/**
 * Fused no-temporary entry points. All of them trap (RTR_ASSERT, which
 * is active in release builds) when an output matrix aliases an input —
 * the blocked kernels would silently corrupt otherwise.
 *
 * gemm: C = alpha*A*B + beta*C. With beta == 0, C is never read (so it
 * may hold NaN/garbage) and is reshaped to A.rows x B.cols; otherwise
 * its shape must already match.
 */
void gemm(const Matrix &a, const Matrix &b, Matrix &c, double alpha,
          double beta);

/**
 * out = A * Bᵀ without materialising the transpose. A is m x k, B is
 * n x k, out becomes m x n. Bitwise identical to
 * a.multiplyScalar(b.transposed()).
 */
void multiplyTransposed(const Matrix &a, const Matrix &b, Matrix &out);

/** Convenience allocating form of the above. */
Matrix multiplyTransposed(const Matrix &a, const Matrix &b);

/**
 * out = H * P * Hᵀ (the EKF innovation-covariance sandwich) with the
 * intermediate H*P kept in the caller-provided workspace `work` — no
 * hidden allocations once the workspaces have grown to size. H is
 * m x n, P is n x n, out becomes m x m and work m x n.
 */
void symmetricSandwich(const Matrix &h, const Matrix &p, Matrix &out,
                       Matrix &work);

/**
 * Rank-1 update C += alpha * x * yᵀ for column vectors x (m x 1) and
 * y (n x 1); C must be m x n.
 */
void addScaledOuter(Matrix &c, double alpha, const Matrix &x,
                    const Matrix &y);

} // namespace rtr

#endif // RTR_LINALG_MATRIX_H

#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/simd.h"

namespace rtr {

namespace {

/**
 * Plane rotation of two contiguous rows: x'[k] = c*x[k] - s*y[k],
 * y'[k] = s*x[k] + c*y[k]. Per-element arithmetic is unchanged from
 * the scalar loop (two multiplies and an add/sub per output), so the
 * vectorized form is bitwise identical to it.
 */
inline void
rotateRows(double *x, double *y, double c, double s, std::size_t n,
           bool use_simd)
{
    using simd::VecD;
    std::size_t k = 0;
    if (use_simd) {
        const VecD vc = VecD::broadcast(c);
        const VecD vs = VecD::broadcast(s);
        for (; k + VecD::kWidth <= n; k += VecD::kWidth) {
            const VecD xv = VecD::load(x + k);
            const VecD yv = VecD::load(y + k);
            (vc * xv - vs * yv).store(x + k);
            (vs * xv + vc * yv).store(y + k);
        }
    }
    for (; k < n; ++k) {
        const double xk = x[k], yk = y[k];
        x[k] = c * xk - s * yk;
        y[k] = s * xk + c * yk;
    }
}

} // namespace

SymmetricEigen
symmetricEigen(const Matrix &input, int max_sweeps)
{
    RTR_ASSERT(input.rows() == input.cols(), "eigen of non-square matrix");
    const std::size_t n = input.rows();
    Matrix a = input;
    Matrix v = Matrix::identity(n);

    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        // Sum of squared off-diagonal magnitudes decides convergence.
        double off = 0.0;
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t c = r + 1; c < n; ++c)
                off += a(r, c) * a(r, c);
        }
        if (off < 1e-24)
            break;

        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                if (std::abs(a(p, q)) < 1e-300)
                    continue;
                // Compute the Jacobi rotation that zeroes a(p,q).
                double theta = (a(q, q) - a(p, p)) / (2.0 * a(p, q));
                double t = (theta >= 0 ? 1.0 : -1.0) /
                           (std::abs(theta) +
                            std::sqrt(theta * theta + 1.0));
                double c = 1.0 / std::sqrt(t * t + 1.0);
                double s = t * c;

                for (std::size_t k = 0; k < n; ++k) {
                    double akp = a(k, p), akq = a(k, q);
                    a(k, p) = c * akp - s * akq;
                    a(k, q) = s * akp + c * akq;
                }
                // Rows p and q are contiguous; the column updates above
                // and the eigenvector update below are strided and stay
                // scalar.
                rotateRows(a.data() + p * n, a.data() + q * n, c, s, n,
                           simdKernelsEnabled());
                for (std::size_t k = 0; k < n; ++k) {
                    double vkp = v(k, p), vkq = v(k, q);
                    v(k, p) = c * vkp - s * vkq;
                    v(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort eigenpairs by descending eigenvalue.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
        return a(i, i) > a(j, j);
    });

    SymmetricEigen result;
    result.values.resize(n);
    result.vectors = Matrix(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        result.values[j] = a(order[j], order[j]);
        for (std::size_t i = 0; i < n; ++i)
            result.vectors(i, j) = v(i, order[j]);
    }
    return result;
}

} // namespace rtr

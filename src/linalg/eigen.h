/**
 * @file
 * Symmetric eigen decomposition (cyclic Jacobi).
 *
 * Used by the ICP substrate: the optimal rotation between point-cloud
 * correspondences is recovered from the dominant eigenvector of Horn's
 * 4x4 symmetric quaternion matrix.
 */

#ifndef RTR_LINALG_EIGEN_H
#define RTR_LINALG_EIGEN_H

#include <vector>

#include "linalg/matrix.h"

namespace rtr {

/** Result of a symmetric eigen decomposition. */
struct SymmetricEigen
{
    /** Eigenvalues in descending order. */
    std::vector<double> values;
    /** Matching eigenvectors as matrix columns. */
    Matrix vectors;
};

/**
 * Eigen decomposition of a symmetric matrix by the cyclic Jacobi method.
 * The input must be symmetric; asymmetry beyond roundoff is a caller bug.
 */
SymmetricEigen symmetricEigen(const Matrix &a, int max_sweeps = 64);

} // namespace rtr

#endif // RTR_LINALG_EIGEN_H

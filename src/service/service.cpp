#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <type_traits>
#include <utility>

#include "grid/footprint.h"
#include "search/grid_planner2d.h"
#include "telemetry/trace.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace rtr {
namespace service {

/** One submitted request: queue payload and registry entry. */
struct PlanningService::Slot
{
    std::uint64_t id = 0;
    Request request;
    Response response;
    std::atomic<TicketStatus> status{TicketStatus::Pending};
    ResponseTiming timing;
};

/** One stripe of the ticket registry (id % kShards). */
struct PlanningService::Shard
{
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, std::unique_ptr<Slot>> slots;
};

/**
 * Per-worker clones of everything with mutable scratch. The World's
 * own footprint/checker prototypes are never touched by workers, so
 * any worker count reads the same immutable state.
 */
struct PlanningService::WorkerContext
{
    RectFootprint footprint;
    GridPlanner2D planner;
    ArmCollisionChecker checker;

    explicit WorkerContext(const World &world)
        : footprint(world.footprint()),
          planner(world.grid(), &footprint),
          checker(world.arm(), world.workspace())
    {
    }
};

namespace {

/** Deterministic synthetic scan: a perturbed noisy subset of the
 *  target model, all randomness drawn from the request seed. */
PointCloud
makeIcpSource(const World &world, const IcpRegisterRequest &request)
{
    Rng rng(request.seed);
    const PointCloud &model = world.icpModel();
    std::vector<Vec3> points;
    points.reserve(request.n_points);
    for (std::uint32_t i = 0; i < request.n_points; ++i)
        points.push_back(model[rng.index(model.size())]);
    PointCloud source{std::move(points)};

    RigidTransform3 perturb;
    perturb.rotation = rotationZ(rng.uniform(-0.12, 0.12));
    perturb.translation = Vec3{rng.uniform(-0.08, 0.08),
                               rng.uniform(-0.08, 0.08),
                               rng.uniform(-0.04, 0.04)};
    source.transform(perturb);
    for (std::size_t i = 0; i < source.size(); ++i) {
        source[i].x += rng.normal(0.0, 0.002);
        source[i].y += rng.normal(0.0, 0.002);
        source[i].z += rng.normal(0.0, 0.002);
    }
    return source;
}

} // namespace

PlanningService::PlanningService(const World &world,
                                 const ServiceConfig &config)
    : world_(world), config_(config),
      worker_count_(config.workers > 0 ? config.workers
                                       : parallelThreads()),
      queue_(config.queue_capacity), shards_(new Shard[kShards])
{
    accepting_.store(true, std::memory_order_release);
}

PlanningService::~PlanningService()
{
    if (running())
        shutdown(Shutdown::Abort);
    else
        cancelRemaining();
}

PlanningService::Shard &
PlanningService::shardOf(std::uint64_t id) const
{
    return shards_[id % kShards];
}

void
PlanningService::start()
{
    RTR_ASSERT(!running_.load(std::memory_order_acquire),
               "start() on a running service");
    RTR_ASSERT(!stop_.load(std::memory_order_acquire),
               "start() after shutdown()");
    running_.store(true, std::memory_order_release);
    // One long parallel region whose chunks are the worker loops: the
    // service occupies the single-client rtr::parallel pool for its
    // whole lifetime, and handler-internal parallel calls run inline
    // on the worker (the nested-region rule), which is what keeps
    // responses independent of the worker count.
    dispatcher_ = std::thread([this] {
        parallelForChunks(0, worker_count_, 1,
                          [this](const ChunkRange &chunk) {
                              workerLoop(chunk.index);
                          });
    });
}

void
PlanningService::shutdown(Shutdown mode)
{
    // Callers must quiesce submissions before shutting down: a submit
    // racing this accepting_ store may still enqueue, and in Abort
    // mode could land after the cancel sweep (a permanently Pending
    // ticket).
    accepting_.store(false, std::memory_order_release);
    if (running_.load(std::memory_order_acquire)) {
        if (mode == Shutdown::Drain) {
            while (inflight_.load(std::memory_order_acquire) > 0) {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
            }
        } else {
            abort_.store(true, std::memory_order_release);
        }
        stop_.store(true, std::memory_order_release);
        dispatcher_.join();
        running_.store(false, std::memory_order_release);
    }
    // Whatever is still queued (Abort, or submitted before start() on
    // a service that never ran) becomes Cancelled — every issued
    // ticket ends Done or Cancelled, none are lost.
    cancelRemaining();
}

void
PlanningService::cancelRemaining()
{
    Slot *slot = nullptr;
    while (queue_.tryPop(slot))
        finishSlot(*slot, TicketStatus::Cancelled);
}

Ticket
PlanningService::submit(Request request)
{
    if (!accepting_.load(std::memory_order_acquire))
        fatal("PlanningService::submit on a stopped service");
    const std::uint64_t id =
        next_id_.fetch_add(1, std::memory_order_relaxed);
    auto slot = std::make_unique<Slot>();
    slot->id = id;
    slot->request = std::move(request);
    slot->timing.submit_ns = telemetry::nowNs();

    inflight_.fetch_add(1, std::memory_order_acq_rel);
    // Blocking backpressure: spin, then yield, then sleep until the
    // bounded queue accepts the slot.
    int attempts = 0;
    while (!queue_.tryPush(slot.get())) {
        if (++attempts < 128)
            continue;
        if (attempts < 1024)
            std::this_thread::yield();
        else
            std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
    submitted_.fetch_add(1, std::memory_order_relaxed);

    // Register after the push: workers never touch the registry, so
    // the only lookups that matter (poll/wait/collect by this id)
    // happen after we return the ticket.
    {
        Shard &shard = shardOf(id);
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.slots.emplace(id, std::move(slot));
    }
    return Ticket{id};
}

Ticket
PlanningService::trySubmit(Request request)
{
    if (!accepting_.load(std::memory_order_acquire))
        return Ticket{0};
    const std::uint64_t id =
        next_id_.fetch_add(1, std::memory_order_relaxed);
    auto slot = std::make_unique<Slot>();
    slot->id = id;
    slot->request = std::move(request);
    slot->timing.submit_ns = telemetry::nowNs();

    inflight_.fetch_add(1, std::memory_order_acq_rel);
    if (!queue_.tryPush(slot.get())) {
        inflight_.fetch_sub(1, std::memory_order_acq_rel);
        rejected_full_.fetch_add(1, std::memory_order_relaxed);
        return Ticket{0}; // slot frees on scope exit; id is burned
    }
    submitted_.fetch_add(1, std::memory_order_relaxed);
    {
        Shard &shard = shardOf(id);
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.slots.emplace(id, std::move(slot));
    }
    return Ticket{id};
}

PlanningService::Slot *
PlanningService::findSlot(std::uint64_t id) const
{
    if (id == 0)
        return nullptr;
    Shard &shard = shardOf(id);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.slots.find(id);
    return it == shard.slots.end() ? nullptr : it->second.get();
}

TicketStatus
PlanningService::poll(Ticket ticket) const
{
    const Slot *slot = findSlot(ticket.id);
    if (slot == nullptr)
        return TicketStatus::Unknown;
    return slot->status.load(std::memory_order_acquire);
}

TicketStatus
PlanningService::wait(Ticket ticket)
{
    Slot *slot = findSlot(ticket.id);
    if (slot == nullptr)
        return TicketStatus::Unknown;
    auto finished = [](TicketStatus s) {
        return s == TicketStatus::Done || s == TicketStatus::Cancelled;
    };
    TicketStatus s = slot->status.load(std::memory_order_seq_cst);
    if (finished(s))
        return s;
    // seq_cst handshake with finishSlot(): either the finisher sees
    // our waiter registration (and notifies under the mutex), or our
    // status re-read below sees its Done/Cancelled store.
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    {
        std::unique_lock<std::mutex> lock(completion_mutex_);
        completion_cv_.wait(lock, [&] {
            return finished(slot->status.load(std::memory_order_seq_cst));
        });
    }
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
    return slot->status.load(std::memory_order_acquire);
}

Completion
PlanningService::collect(Ticket ticket)
{
    Completion out;
    out.status = wait(ticket);
    if (out.status == TicketStatus::Unknown)
        return out;

    std::unique_ptr<Slot> slot;
    {
        Shard &shard = shardOf(ticket.id);
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.slots.find(ticket.id);
        if (it == shard.slots.end()) {
            out.status = TicketStatus::Unknown; // collected concurrently
            return out;
        }
        slot = std::move(it->second);
        shard.slots.erase(it);
    }
    out.status = slot->status.load(std::memory_order_acquire);
    out.response = std::move(slot->response);
    out.timing = slot->timing;
    return out;
}

ServiceStats
PlanningService::stats() const
{
    ServiceStats out;
    out.submitted = submitted_.load(std::memory_order_relaxed);
    out.completed = completed_.load(std::memory_order_relaxed);
    out.cancelled = cancelled_.load(std::memory_order_relaxed);
    out.rejected_full = rejected_full_.load(std::memory_order_relaxed);
    out.queue_depth = queue_.sizeApprox();
    return out;
}

void
PlanningService::workerLoop(std::size_t /*worker_id*/)
{
    WorkerContext ctx(world_);
    Slot *slot = nullptr;
    int idle = 0;
    for (;;) {
        if (abort_.load(std::memory_order_acquire))
            break;
        if (queue_.tryPop(slot)) {
            idle = 0;
            execute(*slot, ctx);
            finishSlot(*slot, TicketStatus::Done);
            continue;
        }
        // stop_ is only set once the queue can no longer refill
        // (drain waited for inflight == 0; abort is checked above),
        // so empty-queue + stop_ means this worker is finished.
        if (stop_.load(std::memory_order_acquire))
            break;
        if (++idle < 64)
            continue;
        if (idle < 256)
            std::this_thread::yield();
        else
            std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
}

void
PlanningService::execute(Slot &slot, WorkerContext &ctx) const
{
    slot.status.store(TicketStatus::Running,
                      std::memory_order_relaxed);
    slot.timing.start_ns = telemetry::nowNs();

    slot.response = std::visit(
        [&](const auto &request) -> Response {
            using R = std::decay_t<decltype(request)>;
            if constexpr (std::is_same_v<R, Pp2dPlanRequest>) {
                GridPlan2D plan = ctx.planner.plan(
                    request.start, request.goal, request.epsilon);
                Pp2dPlanResponse response;
                response.found = plan.found;
                response.cost = plan.cost;
                response.expanded = plan.expanded;
                response.path = std::move(plan.path);
                return response;
            } else if constexpr (std::is_same_v<R, PrmQueryRequest>) {
                std::size_t heuristic_evals = 0;
                MotionPlan plan = world_.prm().query(
                    request.start, request.goal, ctx.checker, nullptr,
                    &heuristic_evals);
                PrmQueryResponse response;
                response.found = plan.found;
                response.cost = plan.cost;
                response.heuristic_evals = heuristic_evals;
                response.path = std::move(plan.path);
                return response;
            } else if constexpr (std::is_same_v<R, NnBatchRequest>) {
                NnBatchResponse response;
                if (!request.queries.empty()) {
                    world_.nnIndex().kNearestBatch(
                        request.queries,
                        std::max<std::uint32_t>(request.k, 1),
                        response.hits);
                }
                return response;
            } else {
                static_assert(std::is_same_v<R, IcpRegisterRequest>);
                PointCloud source = makeIcpSource(world_, request);
                IcpConfig config;
                config.max_iterations = request.max_iterations;
                config.max_correspondence_distance = 1.0;
                IcpResult icp =
                    icpRegister(source, world_.icpTarget(), config);
                IcpRegisterResponse response;
                response.rmse = icp.rmse;
                response.iterations = icp.iterations;
                response.converged = icp.converged;
                for (std::size_t r = 0; r < 3; ++r) {
                    for (std::size_t c = 0; c < 3; ++c)
                        response.transform[r * 3 + c] =
                            icp.transform.rotation(r, c);
                }
                response.transform[9] = icp.transform.translation.x;
                response.transform[10] = icp.transform.translation.y;
                response.transform[11] = icp.transform.translation.z;
                return response;
            }
        },
        slot.request);

    slot.timing.done_ns = telemetry::nowNs();
    telemetry::completeSpan("service-queue", telemetry::Category::User,
                            slot.timing.submit_ns,
                            slot.timing.start_ns - slot.timing.submit_ns);
    telemetry::completeSpan("service-exec", telemetry::Category::User,
                            slot.timing.start_ns,
                            slot.timing.done_ns - slot.timing.start_ns);
}

void
PlanningService::finishSlot(Slot &slot, TicketStatus status)
{
    slot.status.store(status, std::memory_order_seq_cst);
    if (status == TicketStatus::Cancelled)
        cancelled_.fetch_add(1, std::memory_order_relaxed);
    else
        completed_.fetch_add(1, std::memory_order_relaxed);
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    if (waiters_.load(std::memory_order_seq_cst) > 0) {
        // Empty critical section: a waiter between its predicate check
        // and its sleep holds the mutex, so this lock orders the
        // notify after it starts waiting.
        { std::lock_guard<std::mutex> lock(completion_mutex_); }
        completion_cv_.notify_all();
    }
}

} // namespace service
} // namespace rtr

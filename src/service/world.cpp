#include "service/world.h"

#include <array>
#include <utility>
#include <vector>

#include "geom/angle.h"
#include "grid/map_gen.h"
#include "pointcloud/scene_gen.h"
#include "search/grid_planner2d.h"
#include "util/logging.h"

namespace rtr {
namespace service {

namespace {

PrmConfig
prmConfigOf(const WorldConfig &config)
{
    PrmConfig prm;
    prm.n_samples = config.prm_samples;
    prm.k_neighbors = config.prm_k;
    prm.max_edge_length = config.prm_max_edge;
    prm.collision_step = config.prm_collision_step;
    return prm;
}

/** Uniform points in a 10 m cube — the NnBatch search space. */
PointCloud
makeNnCloud(const WorldConfig &config)
{
    Rng rng(splitSeed(config.seed, 3));
    std::vector<Vec3> points;
    points.reserve(config.nn_points);
    for (std::size_t i = 0; i < config.nn_points; ++i) {
        points.push_back(Vec3{rng.uniform(0.0, 10.0),
                              rng.uniform(0.0, 10.0),
                              rng.uniform(0.0, 10.0)});
    }
    return PointCloud(std::move(points));
}

/**
 * The ICP target model: one simulated depth scan of the living-room
 * scene. A reduced ray grid keeps per-request registration in the
 * sub-millisecond class the serving workload targets.
 */
PointCloud
makeIcpModel(const WorldConfig &config)
{
    IndoorScene scene = IndoorScene::livingRoom(config.icp_scene_seed);
    std::vector<CameraPose> poses = makeTrajectory(scene, 8);
    DepthCamera camera;
    camera.width = 48;
    camera.height = 36;
    Rng rng(splitSeed(config.seed, 4));
    return simulateScan(scene, poses.front(), camera, rng);
}

} // namespace

World::World(const WorldConfig &config)
    : config_(config),
      grid_(makeCityMap(config.grid_size, config.grid_resolution,
                        splitSeed(config.seed, 1))),
      footprint_(config.footprint_length, config.footprint_width),
      arm_(PlanarArm::uniform(Vec2{0.25, 0.0}, config.arm_dof, 0.45)),
      workspace_(makeMapC()),
      space_(config.arm_dof, -kPi, kPi),
      checker_(arm_, workspace_),
      prm_(space_, checker_, prmConfigOf(config)),
      nn_cloud_(makeNnCloud(config)),
      icp_target_(makeIcpModel(config))
{
    Rng prm_rng(splitSeed(config.seed, 2));
    prm_.build(prm_rng);

    std::vector<std::array<double, 3>> points;
    points.reserve(nn_cloud_.size());
    for (const Vec3 &p : nn_cloud_.points())
        points.push_back({p.x, p.y, p.z});
    nn_index_.build(points);
}

Pp2dPlanRequest
World::randomPp2d(Rng &rng) const
{
    // Sample footprint-valid cells so most plans are non-trivial; the
    // planner handles unreachable goals by returning found = false,
    // which is still a deterministic response.
    GridPlanner2D planner(grid_, &footprint_);
    auto free_cell = [&] {
        for (int attempt = 0; attempt < 10000; ++attempt) {
            Cell2 cell{static_cast<int>(rng.index(
                           static_cast<std::size_t>(grid_.width()))),
                       static_cast<int>(rng.index(
                           static_cast<std::size_t>(grid_.height())))};
            if (planner.stateValid(cell, 0.0))
                return cell;
        }
        fatal("service world: no footprint-valid cells found");
    };
    Pp2dPlanRequest request;
    request.start = free_cell();
    request.goal = free_cell();
    request.epsilon = config_.pp2d_epsilon;
    return request;
}

PrmQueryRequest
World::randomPrm(Rng &rng) const
{
    auto free_config = [&] {
        for (int attempt = 0; attempt < 10000; ++attempt) {
            ArmConfig q = space_.sample(rng);
            if (!checker_.configCollides(q))
                return q;
        }
        fatal("service world: no free arm configurations found");
    };
    PrmQueryRequest request;
    request.start = free_config();
    request.goal = free_config();
    return request;
}

NnBatchRequest
World::randomNnBatch(Rng &rng, std::size_t n_queries,
                     std::uint32_t k) const
{
    NnBatchRequest request;
    request.k = k;
    request.queries.reserve(n_queries);
    for (std::size_t i = 0; i < n_queries; ++i) {
        request.queries.push_back({rng.uniform(0.0, 10.0),
                                   rng.uniform(0.0, 10.0),
                                   rng.uniform(0.0, 10.0)});
    }
    return request;
}

IcpRegisterRequest
World::randomIcp(Rng &rng) const
{
    IcpRegisterRequest request;
    request.seed = rng.engine()();
    request.n_points = config_.icp_points;
    request.max_iterations = config_.icp_iterations;
    return request;
}

Request
World::randomRequest(RequestType type, Rng &rng) const
{
    switch (type) {
    case RequestType::Pp2dPlan:
        return randomPp2d(rng);
    case RequestType::PrmQuery:
        return randomPrm(rng);
    case RequestType::NnBatch:
        return randomNnBatch(rng);
    case RequestType::IcpRegister:
        return randomIcp(rng);
    }
    fatal("unknown request type");
}

} // namespace service
} // namespace rtr

/**
 * @file
 * The planning-as-a-service engine.
 *
 * Long-lived runtime that accepts planning requests from any thread,
 * queues them through a bounded lock-free MPMC ring, executes them on
 * workers dispatched over the rtr::parallel pool, and hands results
 * back through ticketed response handles:
 *
 *     PlanningService svc(world);
 *     svc.start();
 *     Ticket t = svc.submit(world.randomPp2d(rng));
 *     ... do other work ...
 *     auto done = svc.collect(t);   // waits, returns response+timing
 *     svc.shutdown();               // drains, then stops workers
 *
 * Ticket lifecycle: submit() registers a slot (Pending), a worker pops
 * it (Running), finishes it (Done), and collect() removes it from the
 * registry — after which the ticket is Unknown. shutdown(Abort) marks
 * still-queued slots Cancelled instead of executing them; cancelled
 * tickets are collectable (empty response) so no ticket is ever lost.
 *
 * Determinism contract: every response is a pure function of the
 * request and the immutable World — never of arrival order, queue
 * depth, or worker count. Handlers use per-worker clones of anything
 * with mutable scratch and derive all randomness from seeds carried in
 * the request. tests/test_service.cpp replays permuted submission
 * orders across worker counts and memcmps the canonical response
 * bytes.
 *
 * Pool interaction (the one sharp edge): the rtr::parallel pool is
 * single-client, and a running service *is* that client — a dedicated
 * dispatcher thread occupies the pool with one long parallel region
 * whose chunks are the worker loops. While the service is running, no
 * other thread may enter a parallel region (parallelFor and friends,
 * or kernels that use them). Handlers themselves may call parallel
 * code freely: nested regions run inline on the worker, which is
 * exactly what the determinism contract needs. setParallelThreads()
 * must not be called while the service runs.
 */

#ifndef RTR_SERVICE_SERVICE_H
#define RTR_SERVICE_SERVICE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "service/request.h"
#include "service/world.h"
#include "util/mpmc_queue.h"

namespace rtr {
namespace service {

/** Engine tuning knobs. */
struct ServiceConfig
{
    /**
     * Worker loops to dispatch; 0 uses parallelThreads(). More workers
     * than pool threads is allowed (excess loops run after earlier
     * ones exit) but buys nothing.
     */
    std::size_t workers = 0;
    /** Request-queue bound (rounded up to a power of two). */
    std::size_t queue_capacity = 1 << 14;
};

/** Response handle; value 0 is never issued. */
struct Ticket
{
    std::uint64_t id = 0;
};

/** Where a ticket is in its lifecycle. */
enum class TicketStatus : std::uint8_t
{
    Pending,   ///< Queued, not yet picked up.
    Running,   ///< A worker is executing it.
    Done,      ///< Response ready; collect() will not block.
    Cancelled, ///< Aborted before execution; empty response.
    Unknown,   ///< Never issued, or already collected.
};

/** Per-request wall-clock stamps (steady-clock ns). */
struct ResponseTiming
{
    std::int64_t submit_ns = 0; ///< submit() registered the slot.
    std::int64_t start_ns = 0;  ///< A worker began executing.
    std::int64_t done_ns = 0;   ///< The response was published.
};

/** A collected ticket: the response plus its queue/exec timeline. */
struct Completion
{
    TicketStatus status = TicketStatus::Unknown;
    Response response;
    ResponseTiming timing;
};

/** Engine counters (monotonic since construction). */
struct ServiceStats
{
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t cancelled = 0;
    /** trySubmit() calls rejected by a full queue (backpressure). */
    std::uint64_t rejected_full = 0;
    /** Approximate current queue depth. */
    std::size_t queue_depth = 0;
};

/** The engine. One instance serves one World. */
class PlanningService
{
  public:
    /** @param world Must outlive the service. */
    explicit PlanningService(const World &world,
                             const ServiceConfig &config = {});
    ~PlanningService();

    PlanningService(const PlanningService &) = delete;
    PlanningService &operator=(const PlanningService &) = delete;

    /**
     * Launch the dispatcher thread and its worker loops. Requests
     * submitted before start() are queued and execute once workers
     * run. Must not be called on a running service.
     */
    void start();

    /** How shutdown() treats still-queued requests. */
    enum class Shutdown
    {
        Drain, ///< Execute everything queued, then stop.
        Abort, ///< Stop now; queued requests become Cancelled.
    };

    /**
     * Stop accepting submissions, dispose of the queue per @p mode,
     * and join the workers. Tickets already issued remain collectable
     * (Done or Cancelled) afterwards. Idempotent.
     */
    void shutdown(Shutdown mode = Shutdown::Drain);

    /** Whether start() has run and shutdown() has not. */
    bool running() const { return running_.load(std::memory_order_acquire); }

    /**
     * Enqueue a request; blocks (spin/yield) while the queue is full.
     * Fatal on a service that is shutting down.
     */
    Ticket submit(Request request);

    /**
     * Non-blocking submit: Ticket with id 0 when the queue is full
     * (counted in ServiceStats::rejected_full) or the service is
     * shutting down.
     */
    Ticket trySubmit(Request request);

    /** Current status of a ticket (non-blocking). */
    TicketStatus poll(Ticket ticket) const;

    /** Block until the ticket is Done or Cancelled; returns which. */
    TicketStatus wait(Ticket ticket);

    /**
     * wait() and remove the ticket from the registry, returning its
     * response and timing. A ticket can be collected exactly once;
     * collecting an Unknown ticket returns status Unknown.
     */
    Completion collect(Ticket ticket);

    /** Worker loops the dispatcher runs. */
    std::size_t workerCount() const { return worker_count_; }

    /** Counter snapshot. */
    ServiceStats stats() const;

  private:
    struct Slot;
    struct Shard;
    struct WorkerContext;

    Slot *registerSlot(Request request, std::uint64_t id);
    Slot *findSlot(std::uint64_t id) const;
    void workerLoop(std::size_t worker_id);
    void execute(Slot &slot, WorkerContext &ctx) const;
    void finishSlot(Slot &slot, TicketStatus status);
    void cancelRemaining();
    Shard &shardOf(std::uint64_t id) const;

    const World &world_;
    ServiceConfig config_;
    std::size_t worker_count_;

    MpmcQueue<Slot *> queue_;
    static constexpr std::size_t kShards = 16;
    std::unique_ptr<Shard[]> shards_;

    std::thread dispatcher_;
    std::atomic<bool> running_{false};
    std::atomic<bool> accepting_{false};
    std::atomic<bool> stop_{false};   ///< Workers exit when queue empty.
    std::atomic<bool> abort_{false};  ///< Workers exit immediately.

    std::atomic<std::uint64_t> next_id_{1};
    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> cancelled_{0};
    std::atomic<std::uint64_t> rejected_full_{0};
    /** Submitted but not yet Done/Cancelled (drain barrier). */
    std::atomic<std::uint64_t> inflight_{0};

    /** Completion wakeups: seq_cst gate so wait() never sleeps past
     *  its notification (see wait()/finishSlot()). */
    std::atomic<std::uint64_t> waiters_{0};
    mutable std::mutex completion_mutex_;
    std::condition_variable completion_cv_;
};

} // namespace service
} // namespace rtr

#endif // RTR_SERVICE_SERVICE_H

/**
 * @file
 * The service's shared world state.
 *
 * A World is everything expensive the service builds once and serves
 * to thousands of requests: the city occupancy grid (pp2d), the PRM
 * roadmap (prm), the bucket k-d point index (NnBatch), and the ICP
 * target model with its prebuilt nearest-neighbor index (srec). The
 * paper benchmarks these kernels one query at a time; the ROADMAP
 * north-star is serving concurrent traffic, and roadmap/index reuse
 * across queries is where that throughput comes from.
 *
 * Immutability rules (the service's thread-safety foundation):
 *  - After the constructor returns, nothing in a World changes. All
 *    accessors return const references; any number of worker threads
 *    may query the grid, roadmap, and indices concurrently.
 *  - Objects with mutable scratch (the footprint's probe counter, the
 *    collision checker's FK scratch) are *prototypes*: workers clone
 *    them per-thread (see PlanningService's WorkerContext) and never
 *    touch the World's own copies.
 *  - The random request generators below are the one exception: they
 *    use the prototypes directly, so they are single-thread-only (call
 *    them from the load generator, not from workers).
 */

#ifndef RTR_SERVICE_WORLD_H
#define RTR_SERVICE_WORLD_H

#include <cstdint>

#include "arm/cspace.h"
#include "arm/planar_arm.h"
#include "arm/workspace.h"
#include "grid/footprint.h"
#include "grid/occupancy_grid2d.h"
#include "plan/prm.h"
#include "pointcloud/bucket_kdtree.h"
#include "pointcloud/icp.h"
#include "pointcloud/point_cloud.h"
#include "service/request.h"
#include "util/rng.h"

namespace rtr {
namespace service {

/**
 * World sizing knobs. The defaults are deliberately small: the target
 * is a *serving* workload — tens of thousands of sub-millisecond
 * requests — not the paper's single-ROI problem sizes.
 */
struct WorldConfig
{
    /** Master seed; every generated asset derives from it. */
    std::uint64_t seed = 42;

    /** City grid side (cells) and metric resolution (pp2d). */
    int grid_size = 64;
    double grid_resolution = 0.25;
    /** Robot footprint (m); small relative to street widths. */
    double footprint_length = 0.6;
    double footprint_width = 0.4;
    /**
     * WA* weight stamped on generated pp2d requests (1 = A*). The
     * serving workload wants bounded-suboptimal latency, not optimal
     * paths — see the bench_abl_wastar expansion/cost trade.
     */
    double pp2d_epsilon = 1.8;

    /** PRM roadmap: samples, neighbor count, max edge length (rad). */
    std::size_t prm_samples = 500;
    std::size_t prm_k = 5;
    double prm_max_edge = 1.2;
    /**
     * Interpolation resolution of edge collision checks (rad). The
     * serving profile trades check density for query latency; the
     * paper-fidelity kernels keep the planner default.
     */
    double prm_collision_step = 0.1;
    /** Arm degrees of freedom (Map-C workspace). */
    std::size_t arm_dof = 4;

    /** Uniformly scattered points behind the NnBatch index. */
    std::size_t nn_points = 4096;

    /** ICP target model: one simulated depth scan of the living room. */
    std::uint64_t icp_scene_seed = 7;
    /** Generated ICP request shape: source-scan size, iteration cap. */
    std::uint32_t icp_points = 48;
    int icp_iterations = 5;
};

/** Immutable shared state; build once, serve forever. */
class World
{
  public:
    explicit World(const WorldConfig &config = {});

    World(const World &) = delete;
    World &operator=(const World &) = delete;

    const WorldConfig &config() const { return config_; }

    /// @name pp2d assets
    ///@{
    const OccupancyGrid2D &grid() const { return grid_; }
    /** Footprint prototype (mutable probe counter — clone per thread). */
    const RectFootprint &footprint() const { return footprint_; }
    ///@}

    /// @name prm assets
    ///@{
    const PlanarArm &arm() const { return arm_; }
    const Workspace &workspace() const { return workspace_; }
    const ConfigSpace &space() const { return space_; }
    /** Checker prototype (mutable FK scratch — clone per thread). */
    const ArmCollisionChecker &checkerPrototype() const { return checker_; }
    /** The built roadmap; query through the thread-safe overload. */
    const PrmPlanner &prm() const { return prm_; }
    ///@}

    /// @name NnBatch assets
    ///@{
    const PointCloud &nnCloud() const { return nn_cloud_; }
    const BucketKdTree<3> &nnIndex() const { return nn_index_; }
    ///@}

    /// @name IcpRegister assets
    ///@{
    /** The target model cloud (what icpTarget() indexes). */
    const PointCloud &icpModel() const { return icp_target_.target(); }
    const IcpTargetIndex &icpTarget() const { return icp_target_; }
    ///@}

    /// @name Deterministic request generators (single-thread-only)
    ///@{
    Pp2dPlanRequest randomPp2d(Rng &rng) const;
    PrmQueryRequest randomPrm(Rng &rng) const;
    NnBatchRequest randomNnBatch(Rng &rng, std::size_t n_queries = 16,
                                 std::uint32_t k = 4) const;
    IcpRegisterRequest randomIcp(Rng &rng) const;
    /** A request of the given type (dispatches to the above). */
    Request randomRequest(RequestType type, Rng &rng) const;
    ///@}

  private:
    WorldConfig config_;

    // pp2d
    OccupancyGrid2D grid_;
    RectFootprint footprint_;

    // prm (declaration order is lifetime order: the checker references
    // arm_/workspace_, the planner references space_/checker_)
    PlanarArm arm_;
    Workspace workspace_;
    ConfigSpace space_;
    ArmCollisionChecker checker_;
    PrmPlanner prm_;

    // NnBatch
    PointCloud nn_cloud_;
    BucketKdTree<3> nn_index_;

    // IcpRegister
    IcpTargetIndex icp_target_;
};

} // namespace service
} // namespace rtr

#endif // RTR_SERVICE_WORLD_H

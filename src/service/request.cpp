#include "service/request.h"

#include <cstring>
#include <type_traits>

namespace rtr {
namespace service {

const char *
requestTypeName(RequestType type)
{
    switch (type) {
    case RequestType::Pp2dPlan:
        return "pp2d";
    case RequestType::PrmQuery:
        return "prm";
    case RequestType::NnBatch:
        return "nn";
    case RequestType::IcpRegister:
        return "icp";
    }
    return "?";
}

RequestType
requestTypeOf(const Request &request)
{
    return static_cast<RequestType>(request.index());
}

namespace {

/** Append the value bytes of a trivially-copyable scalar. */
template <typename T>
void
appendScalar(std::vector<std::uint8_t> &out, const T &value)
{
    static_assert(std::is_trivially_copyable_v<T>);
    const auto *bytes = reinterpret_cast<const std::uint8_t *>(&value);
    out.insert(out.end(), bytes, bytes + sizeof(T));
}

void
appendLength(std::vector<std::uint8_t> &out, std::size_t n)
{
    appendScalar(out, static_cast<std::uint64_t>(n));
}

} // namespace

void
appendCanonicalBytes(const Response &response,
                     std::vector<std::uint8_t> &out)
{
    // One byte of type tag keeps responses of different types unequal
    // even if their field bytes happened to coincide.
    appendScalar(out, static_cast<std::uint8_t>(response.index()));

    std::visit(
        [&](const auto &r) {
            using R = std::decay_t<decltype(r)>;
            if constexpr (std::is_same_v<R, Pp2dPlanResponse>) {
                appendScalar(out, static_cast<std::uint8_t>(r.found));
                appendScalar(out, r.cost);
                appendScalar(out, r.expanded);
                appendLength(out, r.path.size());
                for (const Cell2 &cell : r.path) {
                    appendScalar(out, static_cast<std::int32_t>(cell.x));
                    appendScalar(out, static_cast<std::int32_t>(cell.y));
                }
            } else if constexpr (std::is_same_v<R, PrmQueryResponse>) {
                appendScalar(out, static_cast<std::uint8_t>(r.found));
                appendScalar(out, r.cost);
                appendScalar(out, r.heuristic_evals);
                appendLength(out, r.path.size());
                for (const ArmConfig &q : r.path) {
                    appendLength(out, q.size());
                    for (double v : q)
                        appendScalar(out, v);
                }
            } else if constexpr (std::is_same_v<R, NnBatchResponse>) {
                appendLength(out, r.hits.size());
                // Field-by-field: KdHit has padding between id and
                // dist2 that memcpy of the struct would leak into the
                // canonical form.
                for (const KdHit &hit : r.hits) {
                    appendScalar(out, hit.id);
                    appendScalar(out, hit.dist2);
                }
            } else if constexpr (std::is_same_v<R, IcpRegisterResponse>) {
                appendScalar(out, r.rmse);
                appendScalar(out, static_cast<std::int32_t>(r.iterations));
                appendScalar(out, static_cast<std::uint8_t>(r.converged));
                for (double v : r.transform)
                    appendScalar(out, v);
            }
        },
        response);
}

} // namespace service
} // namespace rtr

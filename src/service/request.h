/**
 * @file
 * Request/response vocabulary of the planning service.
 *
 * A request is a small, self-contained description of one planning
 * problem against the service's shared World — never a pointer into
 * mutable state. The determinism contract of the whole subsystem
 * starts here: a response must be a pure function of (request, world),
 * so every stochastic request type (IcpRegister) carries its own seed
 * and every handler derives all randomness from it. Nothing in a
 * request or response may depend on arrival order, queue depth, or
 * worker count.
 *
 * Responses are plain value structs; canonicalBytes() flattens one
 * into a padding-free byte string so the determinism replay tests and
 * bench_service can memcmp responses across submission orders and
 * thread counts.
 */

#ifndef RTR_SERVICE_REQUEST_H
#define RTR_SERVICE_REQUEST_H

#include <cstdint>
#include <variant>
#include <vector>

#include "arm/planar_arm.h"
#include "grid/occupancy_grid2d.h"
#include "pointcloud/kdtree.h"
#include "pointcloud/point_cloud.h"

namespace rtr {
namespace service {

/** The planning operations the service can execute. */
enum class RequestType : std::uint8_t
{
    Pp2dPlan,    ///< Footprint-checked A* on the shared city grid.
    PrmQuery,    ///< Online query against the shared PRM roadmap.
    NnBatch,     ///< Batched k-NN against the shared bucket k-d index.
    IcpRegister, ///< Register a seed-generated scan onto the shared model.
};

/** Display name of a request type ("pp2d", "prm", "nn", "icp"). */
const char *requestTypeName(RequestType type);

/** Plan start -> goal on the World's city grid with its footprint. */
struct Pp2dPlanRequest
{
    Cell2 start{0, 0};
    Cell2 goal{0, 0};
    /** Heuristic weight: 1 = A*, > 1 = WA*. */
    double epsilon = 1.0;
};

/** Query the World's PRM roadmap between two arm configurations. */
struct PrmQueryRequest
{
    ArmConfig start;
    ArmConfig goal;
};

/** k nearest neighbors for each query point in the World's cloud. */
struct NnBatchRequest
{
    std::vector<std::array<double, 3>> queries;
    std::uint32_t k = 4;
};

/**
 * Register a synthetic scan onto the World's prebuilt ICP target.
 * The source cloud is generated *inside the handler* from @p seed (a
 * perturbed, noisy subset of the target), so the request stays small
 * and the response stays a pure function of the request.
 */
struct IcpRegisterRequest
{
    /** Sole source of randomness for scan generation. */
    std::uint64_t seed = 1;
    /** Source-scan size (points sampled from the target model). */
    std::uint32_t n_points = 96;
    /** Outer ICP iteration cap. */
    int max_iterations = 8;
};

/** Any request the service accepts. */
using Request = std::variant<Pp2dPlanRequest, PrmQueryRequest,
                             NnBatchRequest, IcpRegisterRequest>;

/** The type tag of a request. */
RequestType requestTypeOf(const Request &request);

/** Outcome of a Pp2dPlanRequest. */
struct Pp2dPlanResponse
{
    bool found = false;
    double cost = 0.0;
    std::uint64_t expanded = 0;
    std::vector<Cell2> path;
};

/** Outcome of a PrmQueryRequest. */
struct PrmQueryResponse
{
    bool found = false;
    double cost = 0.0;
    std::uint64_t heuristic_evals = 0;
    std::vector<ArmConfig> path;
};

/** Outcome of an NnBatchRequest: k hits per query, query-major. */
struct NnBatchResponse
{
    std::vector<KdHit> hits;
};

/** Outcome of an IcpRegisterRequest. */
struct IcpRegisterResponse
{
    double rmse = 0.0;
    int iterations = 0;
    bool converged = false;
    /** Estimated transform: rotation row-major (9) then translation (3). */
    std::array<double, 12> transform{};
};

/** Any response the service produces (same alternative order). */
using Response = std::variant<Pp2dPlanResponse, PrmQueryResponse,
                              NnBatchResponse, IcpRegisterResponse>;

/**
 * Append a padding-free canonical flattening of @p response to
 * @p out: a type tag, then every field in declaration order (scalars
 * by value bytes, vectors as a u64 length followed by elements). Two
 * responses are equal iff their canonical bytes are — this is the
 * memcmp the determinism replay runs across submission orders and
 * worker counts.
 */
void appendCanonicalBytes(const Response &response,
                          std::vector<std::uint8_t> &out);

} // namespace service
} // namespace rtr

#endif // RTR_SERVICE_REQUEST_H

/**
 * @file
 * Generic (weighted) A* over implicit graphs.
 *
 * Shared by the symbolic planner and any search whose states are not
 * dense integers. Dense grid searches use the specialized planners in
 * grid_planner2d/3d.h instead.
 */

#ifndef RTR_SEARCH_ASTAR_H
#define RTR_SEARCH_ASTAR_H

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "search/min_heap.h"

namespace rtr {

/** Statistics and result of a generic A* run. */
template <typename State>
struct AStarResult
{
    /** Whether a path to a goal state was found. */
    bool found = false;
    /** States from start to goal (empty when !found). */
    std::vector<State> path;
    /** Path cost (g-value of the goal). */
    double cost = 0.0;
    /** Number of expansions performed. */
    std::size_t expanded = 0;
    /** Number of successor states generated. */
    std::size_t generated = 0;
    /** Largest open-list size reached (includes stale lazy entries). */
    std::size_t peak_open = 0;
};

/** Problem definition for the generic A*. */
template <typename State>
struct AStarProblem
{
    /** Append (successor, edge_cost) pairs of a state to @p out. */
    std::function<void(const State &,
                       std::vector<std::pair<State, double>> &)>
        successors;
    /** Admissible (or, with epsilon > 1, inflatable) goal estimate. */
    std::function<double(const State &)> heuristic;
    /** Goal predicate. */
    std::function<bool(const State &)> isGoal;
    /** Heuristic inflation (1 = A*, > 1 = Weighted A*). */
    double epsilon = 1.0;
    /** Safety cap on expansions (0 = unbounded). */
    std::size_t max_expansions = 0;
};

/**
 * Run (weighted) A* from @p start. States must be hashable and
 * equality-comparable.
 */
template <typename State, typename Hash = std::hash<State>>
AStarResult<State>
astarSearch(const State &start, const AStarProblem<State> &problem)
{
    constexpr std::uint32_t kNoParent = 0xFFFFFFFF;
    struct NodeInfo
    {
        double g = 0.0;
        std::uint32_t parent = 0xFFFFFFFF;
        bool closed = false;
    };

    AStarResult<State> result;

    // States are interned into a dense id space as discovered.
    std::vector<State> states;
    std::unordered_map<State, std::uint32_t, Hash> ids;
    std::vector<NodeInfo> info;
    auto intern = [&](const State &s) -> std::uint32_t {
        auto [it, inserted] =
            ids.emplace(s, static_cast<std::uint32_t>(states.size()));
        if (inserted) {
            states.push_back(s);
            info.push_back(NodeInfo{});
        }
        return it->second;
    };

    MinHeap<std::uint32_t> open;
    open.reserve(1024);
    std::uint32_t start_id = intern(start);
    info[start_id].g = 0.0;
    open.push(problem.epsilon * problem.heuristic(start), start_id);
    result.peak_open = open.size();

    std::vector<std::pair<State, double>> succ;
    while (!open.empty()) {
        auto [key, id] = open.pop();
        if (info[id].closed)
            continue;
        info[id].closed = true;
        ++result.expanded;
        if (problem.max_expansions &&
            result.expanded > problem.max_expansions)
            return result;

        if (problem.isGoal(states[id])) {
            result.found = true;
            result.cost = info[id].g;
            // Reconstruct the path by walking parents.
            std::vector<std::uint32_t> chain;
            for (std::uint32_t cur = id; cur != kNoParent;
                 cur = info[cur].parent)
                chain.push_back(cur);
            for (auto it = chain.rbegin(); it != chain.rend(); ++it)
                result.path.push_back(states[*it]);
            return result;
        }

        succ.clear();
        problem.successors(states[id], succ);
        result.generated += succ.size();
        double g = info[id].g;
        for (const auto &[next, edge_cost] : succ) {
            std::uint32_t next_id = intern(next);
            NodeInfo &ni = info[next_id];
            double candidate = g + edge_cost;
            bool fresh = ni.parent == kNoParent && next_id != start_id;
            if (fresh || (!ni.closed && candidate < ni.g)) {
                ni.g = candidate;
                ni.parent = id;
                open.push(candidate +
                              problem.epsilon *
                                  problem.heuristic(states[next_id]),
                          next_id);
            }
        }
        // The heap only grows inside the successor loop, so sampling
        // once per expansion captures the true peak.
        if (open.size() > result.peak_open)
            result.peak_open = open.size();
    }
    return result;
}

} // namespace rtr

#endif // RTR_SEARCH_ASTAR_H

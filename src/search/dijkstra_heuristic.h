/**
 * @file
 * Multi-source backward Dijkstra over a cost field.
 *
 * The movtar kernel's environment-aware heuristic (paper §V.06): "before
 * starting planning, the backward Dijkstra algorithm is executed to
 * calculate the heuristic values in an environment-aware manner (e.g.,
 * accounting for obstacles)". Seeding every cell the target's trajectory
 * visits makes the table a lower bound on the cost-to-catch from any
 * cell, for any catch time.
 */

#ifndef RTR_SEARCH_DIJKSTRA_HEURISTIC_H
#define RTR_SEARCH_DIJKSTRA_HEURISTIC_H

#include <vector>

#include "grid/map_gen.h"
#include "grid/occupancy_grid2d.h"
#include "util/profiler.h"

namespace rtr {

/**
 * Cost-to-source table over a cost field.
 *
 * Edge cost between adjacent cells is the mean of their cell costs
 * scaled by the step length; impassable cells never relax.
 */
class DijkstraHeuristic
{
  public:
    /**
     * Run backward Dijkstra from a set of seed cells.
     *
     * @param field Traversal-cost field.
     * @param sources Seed cells (cost 0); typically the target's
     *        trajectory.
     * @param profiler Optional; the run is one "heuristic" phase.
     */
    DijkstraHeuristic(const CostGrid2D &field,
                      const std::vector<Cell2> &sources,
                      PhaseProfiler *profiler = nullptr);

    /** Optimal traversal cost from the cell to the nearest source. */
    double
    costToSource(const Cell2 &c) const
    {
        if (c.x < 0 || c.x >= width_ || c.y < 0 || c.y >= height_)
            return kUnreachable;
        return table_[static_cast<std::size_t>(c.y) * width_ + c.x];
    }

    /** Whether a cell can reach any source. */
    bool
    reachable(const Cell2 &c) const
    {
        return costToSource(c) < kUnreachable;
    }

    /** Sentinel for unreachable cells. */
    static constexpr double kUnreachable = 1e17;

  private:
    int width_;
    int height_;
    std::vector<double> table_;
};

} // namespace rtr

#endif // RTR_SEARCH_DIJKSTRA_HEURISTIC_H

#include "search/path_smoothing.h"

#include <algorithm>
#include <cmath>

namespace rtr {

bool
hasLineOfSight(const OccupancyGrid2D &grid, const Cell2 &a, const Cell2 &b)
{
    Vec2 from = grid.cellCenter(a);
    Vec2 to = grid.cellCenter(b);
    double dist = from.distanceTo(to);
    if (dist < 1e-12)
        return !grid.occupied(a.x, a.y);
    int steps =
        std::max(1, static_cast<int>(std::ceil(dist /
                                               (grid.resolution() *
                                                0.25))));
    // Sample points inside a pyramid-certified empty block need no
    // occupancy probe; the region is clamped to the grid so
    // out-of-bounds samples (which count as blocked) always get
    // probed. Identical verdict to probing every sample. The two
    // summary planes are hoisted (like castRay's probe path) so each
    // non-skipped sample touches cached fields instead of re-walking
    // the pyramid vector; levels past 2 are ignored — a 512-cell-wide
    // certified block exceeds any smoothing segment worth skipping.
    const BitPlane *l1 = nullptr;
    const BitPlane *l2 = nullptr;
    if (grid.pyramidLevels() >= 1)
        l1 = &grid.pyramidLevel(1);
    if (grid.pyramidLevels() >= 2)
        l2 = &grid.pyramidLevel(2);
    int skip_x0 = 0, skip_x1 = -1;
    int skip_y0 = 0, skip_y1 = -1;
    for (int s = 0; s <= steps; ++s) {
        double t = static_cast<double>(s) / steps;
        Vec2 p = from + (to - from) * t;
        Cell2 c = grid.worldToCell(p);
        if (c.x >= skip_x0 && c.x <= skip_x1 && c.y >= skip_y0 &&
            c.y <= skip_y1)
            continue;
        if (!grid.inBounds(c.x, c.y))
            return false;
        int shift = 0;
        if (l1 && !l1->test(c.x >> 3, c.y >> 3))
            shift = (l2 && !l2->test(c.x >> 6, c.y >> 6)) ? 6 : 3;
        if (shift > 0) {
            skip_x0 = (c.x >> shift) << shift;
            skip_y0 = (c.y >> shift) << shift;
            skip_x1 = std::min(skip_x0 + (1 << shift) - 1,
                               grid.width() - 1);
            skip_y1 = std::min(skip_y0 + (1 << shift) - 1,
                               grid.height() - 1);
            continue;
        }
        if (grid.occupiedUnchecked(c.x, c.y))
            return false;
    }
    return true;
}

std::vector<Cell2>
smoothGridPath(const OccupancyGrid2D &grid, const std::vector<Cell2> &path)
{
    if (path.size() < 3)
        return path;
    std::vector<Cell2> out;
    out.push_back(path.front());
    std::size_t i = 0;
    while (i + 1 < path.size()) {
        // Farthest visible successor of i.
        std::size_t jump = i + 1;
        for (std::size_t j = path.size() - 1; j > i + 1; --j) {
            if (hasLineOfSight(grid, path[i], path[j])) {
                jump = j;
                break;
            }
        }
        out.push_back(path[jump]);
        i = jump;
    }
    return out;
}

double
gridPathLength(const OccupancyGrid2D &grid, const std::vector<Cell2> &path)
{
    double length = 0.0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        length += grid.cellCenter(path[i])
                      .distanceTo(grid.cellCenter(path[i + 1]));
    }
    return length;
}

} // namespace rtr

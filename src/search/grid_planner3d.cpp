#include "search/grid_planner3d.h"

#include <cmath>
#include <limits>

#include "search/min_heap.h"

namespace rtr {

namespace {

/** 26-connected move table built once. */
struct Move3
{
    int dx, dy, dz;
    double len;
};

std::vector<Move3>
makeMoves()
{
    std::vector<Move3> moves;
    for (int dz = -1; dz <= 1; ++dz) {
        for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
                if (dx == 0 && dy == 0 && dz == 0)
                    continue;
                moves.push_back(Move3{
                    dx, dy, dz,
                    std::sqrt(static_cast<double>(dx * dx + dy * dy +
                                                  dz * dz))});
            }
        }
    }
    return moves;
}

const std::vector<Move3> kMoves = makeMoves();

} // namespace

GridPlanner3D::GridPlanner3D(const OccupancyGrid3D &grid) : grid_(grid) {}

GridPlan3D
GridPlanner3D::plan(const Cell3 &start, const Cell3 &goal, double epsilon,
                    PhaseProfiler *profiler) const
{
    GridPlan3D result;
    const int w = grid_.width();
    const int h = grid_.height();
    const int d = grid_.depth();
    const double res = grid_.resolution();
    auto index = [w, h](const Cell3 &c) {
        return (static_cast<std::size_t>(c.z) * h + c.y) * w + c.x;
    };

    if (grid_.occupied(start.x, start.y, start.z) ||
        grid_.occupied(goal.x, goal.y, goal.z))
        return result;

    const double inf = std::numeric_limits<double>::max();
    const std::size_t n = static_cast<std::size_t>(w) * h * d;
    std::vector<double> g(n, inf);
    std::vector<std::int32_t> parent(n, -1);
    std::vector<std::uint8_t> closed(n, 0);

    auto heuristic = [&](const Cell3 &c) {
        double dx = (c.x - goal.x) * res;
        double dy = (c.y - goal.y) * res;
        double dz = (c.z - goal.z) * res;
        return std::sqrt(dx * dx + dy * dy + dz * dz);
    };
    auto unpack = [w, h](std::uint32_t id) {
        int x = static_cast<int>(id % w);
        int y = static_cast<int>((id / w) % h);
        int z = static_cast<int>(id / (static_cast<std::size_t>(w) * h));
        return Cell3{x, y, z};
    };

    MinHeap<std::uint32_t> open;
    open.reserve(4096);
    g[index(start)] = 0.0;
    open.push(epsilon * heuristic(start),
              static_cast<std::uint32_t>(index(start)));
    result.peak_open = open.size();

    while (!open.empty()) {
        auto [key, id] = open.pop();
        if (closed[id])
            continue;
        closed[id] = 1;
        ++result.expanded;
        Cell3 cell = unpack(id);

        if (cell == goal) {
            result.found = true;
            result.cost = g[id];
            std::vector<Cell3> reversed;
            for (std::int32_t cur = static_cast<std::int32_t>(id); cur >= 0;
                 cur = parent[static_cast<std::size_t>(cur)]) {
                reversed.push_back(
                    unpack(static_cast<std::uint32_t>(cur)));
            }
            result.path.assign(reversed.rbegin(), reversed.rend());
            return result;
        }

        bool valid[26];
        {
            ScopedPhase phase(profiler, "collision");
            for (std::size_t m = 0; m < kMoves.size(); ++m) {
                Cell3 next{cell.x + kMoves[m].dx, cell.y + kMoves[m].dy,
                           cell.z + kMoves[m].dz};
                ++result.collision_checks;
                valid[m] = !grid_.occupied(next.x, next.y, next.z);
            }
        }

        double g_cur = g[id];
        for (std::size_t m = 0; m < kMoves.size(); ++m) {
            if (!valid[m])
                continue;
            Cell3 next{cell.x + kMoves[m].dx, cell.y + kMoves[m].dy,
                       cell.z + kMoves[m].dz};
            std::size_t next_id = index(next);
            if (closed[next_id])
                continue;
            double candidate = g_cur + kMoves[m].len * res;
            if (candidate < g[next_id]) {
                g[next_id] = candidate;
                parent[next_id] = static_cast<std::int32_t>(id);
                open.push(candidate + epsilon * heuristic(next),
                          static_cast<std::uint32_t>(next_id));
            }
        }
        // The heap only grows inside the successor loop, so sampling
        // once per expansion captures the true peak.
        if (open.size() > result.peak_open)
            result.peak_open = open.size();
    }
    return result;
}

} // namespace rtr

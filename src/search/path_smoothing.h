/**
 * @file
 * Line-of-sight smoothing for grid paths.
 *
 * The grid-planning analog of the rrtpp kernel's shortcut pass: A*
 * paths zig-zag along the 8-connected lattice; greedily replacing
 * waypoint runs with direct segments (when the straight line stays in
 * free space) shortens and straightens them for the controller.
 */

#ifndef RTR_SEARCH_PATH_SMOOTHING_H
#define RTR_SEARCH_PATH_SMOOTHING_H

#include <vector>

#include "grid/occupancy_grid2d.h"

namespace rtr {

/**
 * Whether the straight segment between two cell centers stays in free
 * cells (sampled at quarter-resolution steps).
 */
bool hasLineOfSight(const OccupancyGrid2D &grid, const Cell2 &a,
                    const Cell2 &b);

/**
 * Greedy line-of-sight smoothing: from each kept waypoint, jump to the
 * farthest later waypoint that is directly visible. Endpoints are
 * preserved; the result's world-space length never exceeds the input's.
 */
std::vector<Cell2> smoothGridPath(const OccupancyGrid2D &grid,
                                  const std::vector<Cell2> &path);

/** World-space length of a cell path (segment lengths between centers). */
double gridPathLength(const OccupancyGrid2D &grid,
                      const std::vector<Cell2> &path);

} // namespace rtr

#endif // RTR_SEARCH_PATH_SMOOTHING_H

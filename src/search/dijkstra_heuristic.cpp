#include "search/dijkstra_heuristic.h"

#include <cmath>

#include "search/min_heap.h"
#include "util/logging.h"

namespace rtr {

DijkstraHeuristic::DijkstraHeuristic(const CostGrid2D &field,
                                     const std::vector<Cell2> &sources,
                                     PhaseProfiler *profiler)
    : width_(field.width()),
      height_(field.height()),
      table_(static_cast<std::size_t>(field.width()) * field.height(),
             kUnreachable)
{
    ScopedPhase phase(profiler, "heuristic");
    RTR_ASSERT(!sources.empty(), "backward Dijkstra needs >= 1 source");

    MinHeap<std::uint32_t> open;
    auto index = [this](int x, int y) {
        return static_cast<std::size_t>(y) * width_ + x;
    };

    for (const Cell2 &s : sources) {
        if (s.x < 0 || s.x >= width_ || s.y < 0 || s.y >= height_)
            continue;
        if (!field.passable(s.x, s.y))
            continue;
        std::size_t id = index(s.x, s.y);
        if (table_[id] > 0.0) {
            table_[id] = 0.0;
            open.push(0.0, static_cast<std::uint32_t>(id));
        }
    }

    const double kSqrt2 = std::sqrt(2.0);
    std::vector<std::uint8_t> closed(table_.size(), 0);
    while (!open.empty()) {
        auto [dist, id] = open.pop();
        if (closed[id])
            continue;
        closed[id] = 1;
        int x = static_cast<int>(id % width_);
        int y = static_cast<int>(id / width_);
        double from_cost = field.cost(x, y);

        for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
                if (dx == 0 && dy == 0)
                    continue;
                int nx = x + dx, ny = y + dy;
                if (nx < 0 || nx >= width_ || ny < 0 || ny >= height_)
                    continue;
                if (!field.passable(nx, ny))
                    continue;
                std::size_t nid = index(nx, ny);
                if (closed[nid])
                    continue;
                double step = (dx != 0 && dy != 0) ? kSqrt2 : 1.0;
                double edge =
                    0.5 * (from_cost + field.cost(nx, ny)) * step;
                double candidate = dist + edge;
                if (candidate < table_[nid]) {
                    table_[nid] = candidate;
                    open.push(candidate, static_cast<std::uint32_t>(nid));
                }
            }
        }
    }
}

} // namespace rtr

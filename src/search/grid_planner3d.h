/**
 * @file
 * A* planner on 3-D occupancy grids (the pp3d UAV kernel).
 *
 * The vehicle "is small and fits in one resolution unit" (paper §V.05),
 * so collision checking is per-cell; graph search over the 26-connected
 * lattice is the other dominant cost.
 */

#ifndef RTR_SEARCH_GRID_PLANNER3D_H
#define RTR_SEARCH_GRID_PLANNER3D_H

#include <cstdint>
#include <vector>

#include "grid/occupancy_grid3d.h"
#include "util/profiler.h"

namespace rtr {

/** Result of a 3-D grid plan. */
struct GridPlan3D
{
    /** Whether a path was found. */
    bool found = false;
    /** Cells from start to goal (inclusive). */
    std::vector<Cell3> path;
    /** Path cost in world units. */
    double cost = 0.0;
    /** Nodes expanded. */
    std::size_t expanded = 0;
    /** Cell collision queries performed. */
    std::size_t collision_checks = 0;
    /** Largest open-list size reached (includes stale lazy entries). */
    std::size_t peak_open = 0;
};

/** 26-connected point-robot planner over a 3-D occupancy grid. */
class GridPlanner3D
{
  public:
    /** @param grid World to plan in (must outlive the planner). */
    explicit GridPlanner3D(const OccupancyGrid3D &grid);

    /**
     * Plan from start to goal.
     *
     * @param epsilon Heuristic weight: 0 = Dijkstra, 1 = A*, > 1 = WA*.
     * @param profiler Optional profiler; accumulates "collision" and
     *        implicit search phases.
     */
    GridPlan3D plan(const Cell3 &start, const Cell3 &goal,
                    double epsilon = 1.0,
                    PhaseProfiler *profiler = nullptr) const;

  private:
    const OccupancyGrid3D &grid_;
};

} // namespace rtr

#endif // RTR_SEARCH_GRID_PLANNER3D_H

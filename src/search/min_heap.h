/**
 * @file
 * Binary min-heap with lazy deletion, the open list of every graph
 * search in the suite.
 *
 * decrease-key is realized by pushing a duplicate entry and discarding
 * stale pops against the caller's current g-values — the standard
 * high-performance choice for A* open lists, trading a little heap slack
 * for pointer-free array storage.
 */

#ifndef RTR_SEARCH_MIN_HEAP_H
#define RTR_SEARCH_MIN_HEAP_H

#include <cstdint>
#include <vector>

namespace rtr {

/** Min-heap of (key, id) pairs ordered by key. */
template <typename Id = std::uint32_t>
class MinHeap
{
  public:
    /** One heap entry. */
    struct Entry
    {
        double key;
        Id id;
    };

    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }

    /** Reserve storage for n entries. */
    void reserve(std::size_t n) { entries_.reserve(n); }

    /** Drop everything. */
    void clear() { entries_.clear(); }

    /** Insert an entry (duplicates allowed; see class comment). */
    void
    push(double key, Id id)
    {
        entries_.push_back(Entry{key, id});
        siftUp(entries_.size() - 1);
    }

    /** Smallest entry. */
    const Entry &top() const { return entries_.front(); }

    /** Remove and return the smallest entry. */
    Entry
    pop()
    {
        Entry out = entries_.front();
        entries_.front() = entries_.back();
        entries_.pop_back();
        if (!entries_.empty())
            siftDown(0);
        return out;
    }

  private:
    void
    siftUp(std::size_t i)
    {
        Entry e = entries_[i];
        while (i > 0) {
            std::size_t parent = (i - 1) / 2;
            if (entries_[parent].key <= e.key)
                break;
            entries_[i] = entries_[parent];
            i = parent;
        }
        entries_[i] = e;
    }

    void
    siftDown(std::size_t i)
    {
        Entry e = entries_[i];
        const std::size_t n = entries_.size();
        while (true) {
            std::size_t left = 2 * i + 1;
            if (left >= n)
                break;
            std::size_t smallest = left;
            std::size_t right = left + 1;
            if (right < n && entries_[right].key < entries_[left].key)
                smallest = right;
            if (e.key <= entries_[smallest].key)
                break;
            entries_[i] = entries_[smallest];
            i = smallest;
        }
        entries_[i] = e;
    }

    std::vector<Entry> entries_;
};

} // namespace rtr

#endif // RTR_SEARCH_MIN_HEAP_H

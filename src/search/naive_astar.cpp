#include "search/naive_astar.h"

#include <algorithm>
#include <cmath>

namespace rtr {
namespace baseline {

namespace {

/** Heap-allocated search node, linked to its parent. */
struct Node
{
    Cell2 cell;
    double g = 0.0;
    double f = 0.0;
    std::shared_ptr<Node> parent;
};

using NodeMap = std::map<std::pair<int, int>, std::shared_ptr<Node>>;

/** Grid copied into nested vectors — the "large structure" that the
 *  baseline then passes around by value. */
using NaiveGrid = std::vector<std::vector<int>>;

NaiveGrid
toNested(const OccupancyGrid2D &grid)
{
    NaiveGrid nested(static_cast<std::size_t>(grid.height()),
                     std::vector<int>(static_cast<std::size_t>(
                         grid.width())));
    for (int y = 0; y < grid.height(); ++y) {
        for (int x = 0; x < grid.width(); ++x)
            nested[static_cast<std::size_t>(y)]
                  [static_cast<std::size_t>(x)] =
                      grid.occupied(x, y) ? 1 : 0;
    }
    return nested;
}

// NOTE: by-value grid parameter is intentional — it reproduces the
// performance bug the paper found in CppRobotics.
bool
cellFree(NaiveGrid grid, int x, int y)  // NOLINT: intentional copy
{
    if (y < 0 || y >= static_cast<int>(grid.size()))
        return false;
    if (x < 0 || x >= static_cast<int>(grid[0].size()))
        return false;
    return grid[static_cast<std::size_t>(y)]
               [static_cast<std::size_t>(x)] == 0;
}

double
heuristic(Cell2 a, Cell2 b)
{
    double dx = a.x - b.x, dy = a.y - b.y;
    return std::sqrt(dx * dx + dy * dy);
}

} // namespace

NaivePlan
naiveAStar(const OccupancyGrid2D &grid, Cell2 start, Cell2 goal)
{
    NaivePlan result;
    NaiveGrid nested = toNested(grid);
    if (!cellFree(nested, start.x, start.y) ||
        !cellFree(nested, goal.x, goal.y))
        return result;

    const int moves[8][2] = {{1, 0},  {-1, 0}, {0, 1},  {0, -1},
                             {1, 1},  {1, -1}, {-1, 1}, {-1, -1}};

    NodeMap open, closed;
    auto start_node = std::make_shared<Node>();
    start_node->cell = start;
    start_node->f = heuristic(start, goal);
    open[{start.x, start.y}] = start_node;

    while (!open.empty()) {
        // Linear scan of the open map for the smallest f (the
        // educational implementations do exactly this).
        auto best = open.begin();
        for (auto it = open.begin(); it != open.end(); ++it) {
            if (it->second->f < best->second->f)
                best = it;
        }
        std::shared_ptr<Node> current = best->second;
        open.erase(best);
        closed[{current->cell.x, current->cell.y}] = current;
        ++result.expanded;

        if (current->cell == goal) {
            result.found = true;
            result.cost = current->g * grid.resolution();
            for (std::shared_ptr<Node> walk = current; walk;
                 walk = walk->parent)
                result.path.push_back(walk->cell);
            std::reverse(result.path.begin(), result.path.end());
            return result;
        }

        for (const auto &move : moves) {
            Cell2 next{current->cell.x + move[0],
                       current->cell.y + move[1]};
            if (!cellFree(nested, next.x, next.y))  // grid copied here
                continue;
            if (closed.count({next.x, next.y}))
                continue;
            double step =
                (move[0] != 0 && move[1] != 0) ? std::sqrt(2.0) : 1.0;
            double g = current->g + step;

            auto it = open.find({next.x, next.y});
            if (it == open.end() || g < it->second->g) {
                auto node = std::make_shared<Node>();
                node->cell = next;
                node->g = g;
                node->f = g + heuristic(next, goal);
                node->parent = current;
                open[{next.x, next.y}] = node;
            }
        }
    }
    return result;
}

} // namespace baseline
} // namespace rtr

#include "search/spacetime_planner.h"

#include <cmath>
#include <unordered_map>
#include <memory>

#include "search/dijkstra_heuristic.h"
#include "search/min_heap.h"
#include "util/logging.h"
#include "util/rng.h"

namespace rtr {

namespace {

/** Node bookkeeping for the sparse space-time search. */
struct NodeInfo
{
    double g = 0.0;
    std::uint64_t parent = kNoParent;
    bool closed = false;

    static constexpr std::uint64_t kNoParent = ~0ULL;
};

} // namespace

SpacetimePlan
planMovingTarget(const MovingTargetProblem &problem, PhaseProfiler *profiler)
{
    SpacetimePlan result;
    RTR_ASSERT(problem.field, "problem needs a cost field");
    RTR_ASSERT(!problem.target_trajectory.empty(),
               "problem needs a target trajectory");
    const CostGrid2D &field = *problem.field;
    const int w = field.width();
    const int h = field.height();
    const int horizon =
        static_cast<int>(problem.target_trajectory.size()) +
        problem.time_slack;

    if (!field.passable(problem.robot_start.x, problem.robot_start.y))
        return result;

    // Environment-aware heuristic: backward Dijkstra seeded with every
    // cell the target visits. (For the Euclidean ablation the table is
    // skipped and a straight-line estimate is used instead.)
    const bool use_dijkstra =
        problem.heuristic ==
        MovingTargetProblem::Heuristic::BackwardDijkstra;
    std::unique_ptr<DijkstraHeuristic> dijkstra;
    if (use_dijkstra) {
        dijkstra = std::make_unique<DijkstraHeuristic>(
            field, problem.target_trajectory, profiler);
    }
    const Cell2 target_end = problem.target_trajectory.back();
    auto h_value = [&](const Cell2 &c) {
        if (use_dijkstra)
            return dijkstra->costToSource(c);
        double dx = c.x - target_end.x;
        double dy = c.y - target_end.y;
        return std::sqrt(dx * dx + dy * dy);
    };

    auto target_at = [&](int t) {
        const auto &traj = problem.target_trajectory;
        return t < static_cast<int>(traj.size()) ? traj[static_cast<std::size_t>(t)]
                                                 : traj.back();
    };
    auto pack = [w, h](const Cell2 &c, int t) {
        return (static_cast<std::uint64_t>(t) * h + c.y) * w + c.x;
    };
    auto unpack = [w, h](std::uint64_t key) {
        int x = static_cast<int>(key % w);
        int y = static_cast<int>((key / w) % h);
        int t = static_cast<int>(key / (static_cast<std::uint64_t>(w) * h));
        return SpacetimeState{Cell2{x, y}, t};
    };

    ScopedPhase search_phase(profiler, "graph-search");

    std::unordered_map<std::uint64_t, NodeInfo> info;
    MinHeap<std::uint64_t> open;

    const double kSqrt2 = std::sqrt(2.0);
    std::uint64_t start_key = pack(problem.robot_start, 0);
    info[start_key] = NodeInfo{0.0, NodeInfo::kNoParent, false};
    open.push(problem.epsilon *
                  h_value(problem.robot_start),
              start_key);

    while (!open.empty()) {
        auto [key, node_key] = open.pop();
        NodeInfo &node = info[node_key];
        if (node.closed)
            continue;
        node.closed = true;
        ++result.expanded;

        SpacetimeState state = unpack(node_key);
        if (state.cell == target_at(state.time)) {
            result.found = true;
            result.cost = node.g;
            result.catch_time = state.time;
            std::vector<SpacetimeState> reversed;
            for (std::uint64_t cur = node_key;
                 cur != NodeInfo::kNoParent;
                 cur = info[cur].parent) {
                reversed.push_back(unpack(cur));
            }
            result.path.assign(reversed.rbegin(), reversed.rend());
            return result;
        }
        if (state.time >= horizon)
            continue;

        double from_cost = field.cost(state.cell.x, state.cell.y);
        double g_cur = node.g;
        for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
                int nx = state.cell.x + dx;
                int ny = state.cell.y + dy;
                if (!field.passable(nx, ny))
                    continue;
                double step =
                    (dx != 0 && dy != 0) ? kSqrt2 : (dx || dy) ? 1.0 : 1.0;
                double edge = 0.5 * (from_cost + field.cost(nx, ny)) * step;
                std::uint64_t next_key =
                    pack(Cell2{nx, ny}, state.time + 1);
                auto [it, fresh] = info.emplace(next_key, NodeInfo{});
                NodeInfo &ni = it->second;
                double candidate = g_cur + edge;
                if (fresh || (!ni.closed && candidate < ni.g)) {
                    ni.g = candidate;
                    ni.parent = node_key;
                    open.push(candidate +
                                  problem.epsilon *
                                      h_value(Cell2{nx, ny}),
                              next_key);
                }
            }
        }
    }
    return result;
}

std::vector<Cell2>
makeTargetTrajectory(const CostGrid2D &field, const Cell2 &start, int length,
                     std::uint64_t seed)
{
    RTR_ASSERT(field.passable(start.x, start.y),
               "target start must be passable");
    std::vector<Cell2> traj{start};
    Rng rng(seed);
    Cell2 cur = start;
    // Persistent wander direction with occasional turns; fall back to
    // any passable neighbor when blocked.
    int dir_x = 1, dir_y = 0;
    for (int t = 1; t < length; ++t) {
        if (rng.chance(0.15)) {
            int turn = static_cast<int>(rng.intRange(0, 3));
            dir_x = (turn == 0) - (turn == 1);
            dir_y = (turn == 2) - (turn == 3);
        }
        Cell2 next{cur.x + dir_x, cur.y + dir_y};
        if (!field.passable(next.x, next.y)) {
            bool moved = false;
            for (int attempt = 0; attempt < 8 && !moved; ++attempt) {
                int dx = static_cast<int>(rng.intRange(-1, 1));
                int dy = static_cast<int>(rng.intRange(-1, 1));
                if (field.passable(cur.x + dx, cur.y + dy)) {
                    next = Cell2{cur.x + dx, cur.y + dy};
                    dir_x = dx;
                    dir_y = dy;
                    moved = true;
                }
            }
            if (!moved)
                next = cur;  // trapped: wait in place
        }
        cur = next;
        traj.push_back(cur);
    }
    return traj;
}

} // namespace rtr

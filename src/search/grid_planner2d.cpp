#include "search/grid_planner2d.h"

#include <cmath>
#include <limits>

#include "search/min_heap.h"
#include "util/logging.h"

namespace rtr {

namespace {

constexpr double kSqrt2 = 1.41421356237309515;

/** 8-connected move table: dx, dy, step length in cells. */
struct Move
{
    int dx;
    int dy;
    double len;
    double heading;
};

const Move kMoves[8] = {
    {1, 0, 1.0, 0.0},
    {-1, 0, 1.0, 3.14159265358979},
    {0, 1, 1.0, 1.5707963267949},
    {0, -1, 1.0, -1.5707963267949},
    {1, 1, kSqrt2, 0.785398163397448},
    {1, -1, kSqrt2, -0.785398163397448},
    {-1, 1, kSqrt2, 2.35619449019234},
    {-1, -1, kSqrt2, -2.35619449019234},
};

} // namespace

GridPlanner2D::GridPlanner2D(const OccupancyGrid2D &grid,
                             const RectFootprint *footprint)
    : grid_(grid), footprint_(footprint)
{
}

bool
GridPlanner2D::stateValid(const Cell2 &cell, double heading) const
{
    if (!grid_.inBounds(cell.x, cell.y))
        return false;
    if (grid_.occupiedUnchecked(cell.x, cell.y))
        return false;
    if (!footprint_)
        return true;
    Vec2 center = grid_.cellCenter(cell);
    return !footprint_->collides(grid_, Pose2{center.x, center.y, heading});
}

GridPlan2D
GridPlanner2D::plan(const Cell2 &start, const Cell2 &goal, double epsilon,
                    PhaseProfiler *profiler) const
{
    GridPlan2D result;
    const int w = grid_.width();
    const int h = grid_.height();
    const double res = grid_.resolution();
    auto index = [w](const Cell2 &c) {
        return static_cast<std::size_t>(c.y) * w + c.x;
    };

    {
        ScopedPhase phase(profiler, "collision");
        result.collision_checks += 2;
        if (!stateValid(start, 0.0) || !stateValid(goal, 0.0))
            return result;
    }

    const double inf = std::numeric_limits<double>::max();
    std::vector<double> g(static_cast<std::size_t>(w) * h, inf);
    std::vector<std::int32_t> parent(static_cast<std::size_t>(w) * h, -1);
    std::vector<std::uint8_t> closed(static_cast<std::size_t>(w) * h, 0);

    auto heuristic = [&](const Cell2 &c) {
        double dx = (c.x - goal.x) * res;
        double dy = (c.y - goal.y) * res;
        return std::sqrt(dx * dx + dy * dy);
    };

    MinHeap<std::uint32_t> open;
    open.reserve(1024);
    g[index(start)] = 0.0;
    open.push(epsilon * heuristic(start),
              static_cast<std::uint32_t>(index(start)));
    result.peak_open = open.size();

    while (!open.empty()) {
        auto [key, id] = open.pop();
        if (closed[id])
            continue;
        closed[id] = 1;
        ++result.expanded;
        Cell2 cell{static_cast<int>(id % w), static_cast<int>(id / w)};

        if (cell == goal) {
            result.found = true;
            result.cost = g[id];
            std::vector<Cell2> reversed;
            for (std::int32_t cur = static_cast<std::int32_t>(id); cur >= 0;
                 cur = parent[static_cast<std::size_t>(cur)]) {
                reversed.push_back(Cell2{cur % w, cur / w});
            }
            result.path.assign(reversed.rbegin(), reversed.rend());
            return result;
        }

        // Collision-validate all successors in one profiled batch: this
        // is where pp2d spends most of its time.
        bool valid[8];
        {
            ScopedPhase phase(profiler, "collision");
            for (int m = 0; m < 8; ++m) {
                Cell2 next{cell.x + kMoves[m].dx, cell.y + kMoves[m].dy};
                ++result.collision_checks;
                valid[m] = stateValid(next, kMoves[m].heading);
            }
        }

        double g_cur = g[id];
        for (int m = 0; m < 8; ++m) {
            if (!valid[m])
                continue;
            Cell2 next{cell.x + kMoves[m].dx, cell.y + kMoves[m].dy};
            std::size_t next_id = index(next);
            if (closed[next_id])
                continue;
            double candidate = g_cur + kMoves[m].len * res;
            if (candidate < g[next_id]) {
                g[next_id] = candidate;
                parent[next_id] = static_cast<std::int32_t>(id);
                open.push(candidate + epsilon * heuristic(next),
                          static_cast<std::uint32_t>(next_id));
            }
        }
        // The heap only grows inside the successor loop, so sampling
        // once per expansion captures the true peak.
        if (open.size() > result.peak_open)
            result.peak_open = open.size();
    }
    return result;
}

} // namespace rtr

#include "search/graph_search.h"

#include <limits>

#include "search/min_heap.h"
#include "util/logging.h"

namespace rtr {

std::size_t
ExplicitGraph::edgeCount() const
{
    std::size_t half_edges = 0;
    for (const auto &list : adjacency_)
        half_edges += list.size();
    return half_edges / 2;
}

GraphSearchResult
graphAStar(const ExplicitGraph &graph, std::uint32_t start,
           std::uint32_t goal,
           const std::function<double(std::uint32_t)> &heuristic,
           PhaseProfiler *profiler)
{
    ScopedPhase phase(profiler, "graph-search");
    GraphSearchResult result;
    RTR_ASSERT(start < graph.size() && goal < graph.size(),
               "start/goal out of graph");

    const double inf = std::numeric_limits<double>::max();
    std::vector<double> g(graph.size(), inf);
    std::vector<std::int64_t> parent(graph.size(), -1);
    std::vector<std::uint8_t> closed(graph.size(), 0);

    MinHeap<std::uint32_t> open;
    g[start] = 0.0;
    ++result.heuristic_evals;
    open.push(heuristic(start), start);

    while (!open.empty()) {
        auto [key, id] = open.pop();
        if (closed[id])
            continue;
        closed[id] = 1;
        ++result.expanded;

        if (id == goal) {
            result.found = true;
            result.cost = g[id];
            std::vector<std::uint32_t> reversed;
            for (std::int64_t cur = id; cur >= 0; cur = parent[static_cast<std::size_t>(cur)])
                reversed.push_back(static_cast<std::uint32_t>(cur));
            result.path.assign(reversed.rbegin(), reversed.rend());
            return result;
        }

        for (const ExplicitGraph::Edge &edge : graph.neighbors(id)) {
            if (closed[edge.to])
                continue;
            double candidate = g[id] + edge.cost;
            if (candidate < g[edge.to]) {
                g[edge.to] = candidate;
                parent[edge.to] = id;
                ++result.heuristic_evals;
                open.push(candidate + heuristic(edge.to), edge.to);
            }
        }
    }
    return result;
}

} // namespace rtr

/**
 * @file
 * Space-time (x, y, t) planner for catching a moving target — the
 * movtar kernel.
 *
 * The environment is 2-D but planning happens in 3-D with time as the
 * third dimension (paper §V.06, Fig. 7). The robot knows the target's
 * trajectory; the plan minimizes accumulated location cost and is found
 * with Weighted A* over the space-time lattice, guided by a backward-
 * Dijkstra heuristic seeded on the target's trajectory.
 */

#ifndef RTR_SEARCH_SPACETIME_PLANNER_H
#define RTR_SEARCH_SPACETIME_PLANNER_H

#include <cstdint>
#include <vector>

#include "grid/map_gen.h"
#include "grid/occupancy_grid2d.h"
#include "util/profiler.h"

namespace rtr {

/** One step of a space-time plan. */
struct SpacetimeState
{
    Cell2 cell;
    int time = 0;
};

/** Moving-target problem definition. */
struct MovingTargetProblem
{
    /** Heuristic choice (the paper's design point is BackwardDijkstra;
     *  Euclidean is the ablation baseline). */
    enum class Heuristic
    {
        /** Environment-aware backward Dijkstra over the cost field. */
        BackwardDijkstra,
        /** Straight-line distance to the target trajectory's end,
         *  scaled by the minimum cell cost (admissible but blind to
         *  obstacles and cost structure). */
        Euclidean,
    };

    /** Location-cost field the robot pays to traverse. */
    const CostGrid2D *field = nullptr;
    /** Target position at every timestep; it stays at the back() cell
     *  after the trajectory ends. */
    std::vector<Cell2> target_trajectory;
    /** Robot start cell. */
    Cell2 robot_start;
    /** Heuristic inflation factor (WA*'s epsilon; >= 1). */
    double epsilon = 2.0;
    /** Extra timesteps allowed beyond the trajectory's end. */
    int time_slack = 256;
    /** Which heuristic guides the space-time search. */
    Heuristic heuristic = Heuristic::BackwardDijkstra;
};

/** Result of a moving-target plan. */
struct SpacetimePlan
{
    /** Whether the target was caught. */
    bool found = false;
    /** Robot states from start to catch. */
    std::vector<SpacetimeState> path;
    /** Accumulated location cost. */
    double cost = 0.0;
    /** Space-time nodes expanded. */
    std::size_t expanded = 0;
    /** Timestep at which the target is caught. */
    int catch_time = -1;
};

/**
 * Plan to intercept the moving target.
 *
 * @param profiler Optional; accumulates "heuristic" (the backward
 *        Dijkstra) and "graph-search" phases — the two components whose
 *        relative weight the paper's movtar evaluation studies.
 */
SpacetimePlan planMovingTarget(const MovingTargetProblem &problem,
                               PhaseProfiler *profiler = nullptr);

/**
 * Generate a target trajectory through a cost field: a greedy
 * low-cost wander of the given length starting at @p start (passable
 * cells only, deterministic given the seed).
 */
std::vector<Cell2> makeTargetTrajectory(const CostGrid2D &field,
                                        const Cell2 &start, int length,
                                        std::uint64_t seed);

} // namespace rtr

#endif // RTR_SEARCH_SPACETIME_PLANNER_H

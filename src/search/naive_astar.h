/**
 * @file
 * Educational-style A* baseline for the paper's Fig. 21 comparison.
 *
 * The paper benchmarks its pp2d kernel against CppRobotics' a_star.cpp
 * and attributes that library's slowness to "passing large data
 * structures to functions needlessly by value instead of by reference".
 * This baseline reproduces exactly that class of implementation:
 * grid-as-nested-vectors passed by value through helper calls, a
 * std::map-keyed open list, and per-node heap allocation — correct, and
 * deliberately written the way educational code often is. It is the
 * C-Rob column of bench_fig21_scaling.
 */

#ifndef RTR_SEARCH_NAIVE_ASTAR_H
#define RTR_SEARCH_NAIVE_ASTAR_H

#include <map>
#include <memory>
#include <vector>

#include "grid/occupancy_grid2d.h"

namespace rtr {
namespace baseline {

/** Result of a naive plan (mirrors GridPlan2D loosely). */
struct NaivePlan
{
    bool found = false;
    std::vector<Cell2> path;
    double cost = 0.0;
    std::size_t expanded = 0;
};

/**
 * Educational-style A* over an occupancy grid.
 *
 * Functionally equivalent to GridPlanner2D with a point robot; only
 * the implementation style differs (see file comment).
 */
NaivePlan naiveAStar(const OccupancyGrid2D &grid, Cell2 start, Cell2 goal);

} // namespace baseline
} // namespace rtr

#endif // RTR_SEARCH_NAIVE_ASTAR_H

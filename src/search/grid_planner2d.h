/**
 * @file
 * A* / Weighted-A* / Dijkstra planner on 2-D occupancy grids, with
 * optional oriented-footprint collision checking (the pp2d kernel).
 */

#ifndef RTR_SEARCH_GRID_PLANNER2D_H
#define RTR_SEARCH_GRID_PLANNER2D_H

#include <cstdint>
#include <vector>

#include "grid/footprint.h"
#include "grid/occupancy_grid2d.h"
#include "util/profiler.h"

namespace rtr {

/** Result of a 2-D grid plan. */
struct GridPlan2D
{
    /** Whether a path was found. */
    bool found = false;
    /** Cells from start to goal (inclusive). */
    std::vector<Cell2> path;
    /** Path cost in world units. */
    double cost = 0.0;
    /** Nodes expanded. */
    std::size_t expanded = 0;
    /** Footprint / cell collision queries performed. */
    std::size_t collision_checks = 0;
    /** Largest open-list size reached (includes stale lazy entries). */
    std::size_t peak_open = 0;
};

/**
 * 8-connected grid planner.
 *
 * With a footprint, every candidate successor cell is validated by
 * sweeping the oriented rectangle (heading aligned with the motion
 * direction) over the grid — the collision-detection workload that
 * dominates pp2d. Without one, the robot is a point.
 */
class GridPlanner2D
{
  public:
    /**
     * @param grid World to plan in (must outlive the planner).
     * @param footprint Optional robot body; nullptr plans a point robot.
     */
    explicit GridPlanner2D(const OccupancyGrid2D &grid,
                           const RectFootprint *footprint = nullptr);

    /**
     * Plan from start to goal.
     *
     * @param epsilon Heuristic weight: 0 = Dijkstra, 1 = A*, > 1 = WA*.
     * @param profiler Optional profiler; accumulates "collision" and
     *        "search" phases.
     */
    GridPlan2D plan(const Cell2 &start, const Cell2 &goal,
                    double epsilon = 1.0,
                    PhaseProfiler *profiler = nullptr) const;

    /** Whether a cell is a valid robot state (bounds + collision). */
    bool stateValid(const Cell2 &cell, double heading) const;

  private:
    const OccupancyGrid2D &grid_;
    const RectFootprint *footprint_;
};

} // namespace rtr

#endif // RTR_SEARCH_GRID_PLANNER2D_H

/**
 * @file
 * A* over explicit adjacency-list graphs (the PRM roadmap's online
 * query, paper §V.07).
 */

#ifndef RTR_SEARCH_GRAPH_SEARCH_H
#define RTR_SEARCH_GRAPH_SEARCH_H

#include <cstdint>
#include <functional>
#include <vector>

#include "util/profiler.h"

namespace rtr {

/** An undirected weighted graph stored as adjacency lists. */
class ExplicitGraph
{
  public:
    /** One directed half of an undirected edge. */
    struct Edge
    {
        std::uint32_t to;
        double cost;
    };

    /** Append a node; returns its id. */
    std::uint32_t
    addNode()
    {
        adjacency_.emplace_back();
        return static_cast<std::uint32_t>(adjacency_.size() - 1);
    }

    /** Add an undirected edge between two existing nodes. */
    void
    addEdge(std::uint32_t a, std::uint32_t b, double cost)
    {
        adjacency_[a].push_back(Edge{b, cost});
        adjacency_[b].push_back(Edge{a, cost});
    }

    /** Number of nodes. */
    std::size_t size() const { return adjacency_.size(); }

    /** Total undirected edge count. */
    std::size_t edgeCount() const;

    /** Neighbors of a node. */
    const std::vector<Edge> &
    neighbors(std::uint32_t node) const
    {
        return adjacency_[node];
    }

  private:
    std::vector<std::vector<Edge>> adjacency_;
};

/** Result of an explicit-graph search. */
struct GraphSearchResult
{
    /** Whether the goal was reached. */
    bool found = false;
    /** Node ids from start to goal. */
    std::vector<std::uint32_t> path;
    /** Path cost. */
    double cost = 0.0;
    /** Nodes expanded. */
    std::size_t expanded = 0;
    /** Heuristic evaluations performed (the L2-norm count for PRM). */
    std::size_t heuristic_evals = 0;
};

/**
 * A* from start to goal over an explicit graph.
 *
 * @param heuristic Estimated cost-to-goal per node id; pass a function
 *        returning 0 for Dijkstra.
 * @param profiler Optional; the run is one "graph-search" phase.
 */
GraphSearchResult graphAStar(const ExplicitGraph &graph,
                             std::uint32_t start, std::uint32_t goal,
                             const std::function<double(std::uint32_t)>
                                 &heuristic,
                             PhaseProfiler *profiler = nullptr);

} // namespace rtr

#endif // RTR_SEARCH_GRAPH_SEARCH_H

/**
 * @file
 * Probabilistic RoadMap planner (kernel 07.prm).
 *
 * Offline phase: sample collision-free configurations and connect
 * near neighbors into a roadmap (paper Fig. 8-(b)). Online phase:
 * connect start/goal into the roadmap and A* it with the L2 heuristic.
 * Only the online phase is on the robot's critical path.
 */

#ifndef RTR_PLAN_PRM_H
#define RTR_PLAN_PRM_H

#include <cstdint>

#include "arm/workspace.h"
#include "plan/plan_types.h"
#include "pointcloud/nn_engine.h"
#include "search/graph_search.h"
#include "util/profiler.h"
#include "util/rng.h"

namespace rtr {

/** PRM tuning knobs. */
struct PrmConfig
{
    /** Roadmap size (collision-free samples). */
    std::size_t n_samples = 2000;
    /** Connect each sample to up to this many nearest roadmap nodes. */
    std::size_t k_neighbors = 10;
    /** Maximum joint-space length of a roadmap edge (radians, L2). */
    double max_edge_length = 1.0;
    /** Interpolation resolution of motion collision checks (radians). */
    double collision_step = 0.05;
    /** Which NN engine backs the roadmap connection queries (--nn). */
    NnEngine nn_engine = defaultNnEngine();
};

/** Offline roadmap statistics. */
struct PrmBuildStats
{
    /** Samples drawn (including rejected colliding ones). */
    std::size_t samples_drawn = 0;
    /** Nodes kept in the roadmap. */
    std::size_t nodes = 0;
    /** Undirected edges in the roadmap. */
    std::size_t edges = 0;
    /** Configuration collision checks spent building. */
    std::size_t collision_checks = 0;
};

/** PRM planner: build once offline, query many times online. */
class PrmPlanner
{
  public:
    /** Referents must outlive the planner. */
    PrmPlanner(const ConfigSpace &space,
               const ArmCollisionChecker &checker,
               const PrmConfig &config = {});

    /**
     * Offline phase: sample and connect the roadmap.
     *
     * @param profiler Optional; accumulates "sampling" and
     *        "offline-connect" phases.
     */
    PrmBuildStats build(Rng &rng, PhaseProfiler *profiler = nullptr);

    /**
     * Online phase: connect start and goal to the roadmap and search.
     *
     * @param profiler Optional; accumulates "online-connect" and
     *        "graph-search" phases.
     */
    MotionPlan query(const ArmConfig &start, const ArmConfig &goal,
                     PhaseProfiler *profiler = nullptr) const;

    /**
     * Thread-safe online query against a caller-supplied checker.
     *
     * The built roadmap is immutable, so any number of threads may
     * query it concurrently as long as each brings its own collision
     * checker (the checker's FK scratch is not thread-safe) and reads
     * heuristic-eval counts through @p heuristic_evals instead of
     * lastHeuristicEvals(). The service runtime's PrmQuery handler is
     * the primary client.
     */
    MotionPlan query(const ArmConfig &start, const ArmConfig &goal,
                     const ArmCollisionChecker &checker,
                     PhaseProfiler *profiler,
                     std::size_t *heuristic_evals) const;

    /** Roadmap node count (0 before build()). */
    std::size_t roadmapSize() const { return configs_.size(); }

    /** L2-norm evaluations during the last query's graph search. */
    std::size_t lastHeuristicEvals() const { return last_heuristic_evals_; }

  private:
    /** Connect a config to its k nearest roadmap nodes; returns edges. */
    std::size_t connectNode(std::uint32_t id, ExplicitGraph &graph) const;

    const ConfigSpace &space_;
    const ArmCollisionChecker &checker_;
    PrmConfig config_;

    std::vector<ArmConfig> configs_;
    ExplicitGraph graph_;
    mutable std::size_t last_heuristic_evals_ = 0;
};

} // namespace rtr

#endif // RTR_PLAN_PRM_H

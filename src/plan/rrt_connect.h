/**
 * @file
 * RRT-Connect: bidirectional RRT with a greedy connect step.
 *
 * A standard companion of the paper's RRT family (Kuffner & LaValle):
 * two trees grow from start and goal; each iteration extends one tree
 * towards a sample, then greedily extends the other tree towards the
 * new node until blocked or connected. Typically needs far fewer
 * samples than unidirectional RRT in cluttered spaces.
 */

#ifndef RTR_PLAN_RRT_CONNECT_H
#define RTR_PLAN_RRT_CONNECT_H

#include "arm/workspace.h"
#include "plan/plan_types.h"
#include "pointcloud/nn_engine.h"
#include "util/profiler.h"
#include "util/rng.h"

namespace rtr {

/** RRT-Connect tuning knobs. */
struct RrtConnectConfig
{
    /** Maximum joint-space extension per step (radians, L2). */
    double step_size = 0.25;
    /** Sample budget before giving up. */
    std::size_t max_samples = 200000;
    /** Interpolation resolution of motion collision checks (radians). */
    double collision_step = 0.05;
    /** Which NN engine backs the two trees' indexes (--nn). */
    NnEngine nn_engine = defaultNnEngine();
};

/** Bidirectional RRT planner. */
class RrtConnectPlanner
{
  public:
    /** Referents must outlive the planner. */
    RrtConnectPlanner(const ConfigSpace &space,
                      const ArmCollisionChecker &checker,
                      const RrtConnectConfig &config = {});

    /**
     * Plan from start to goal.
     *
     * @param profiler Optional; accumulates "sample", "nn-search",
     *        "collision", and "extend" phases like the other planners.
     */
    MotionPlan plan(const ArmConfig &start, const ArmConfig &goal,
                    Rng &rng, PhaseProfiler *profiler = nullptr) const;

  private:
    const ConfigSpace &space_;
    const ArmCollisionChecker &checker_;
    RrtConnectConfig config_;
};

} // namespace rtr

#endif // RTR_PLAN_RRT_CONNECT_H

#include "plan/rrt_star.h"

#include <limits>

#include "pointcloud/nn_index.h"

namespace rtr {

RrtStarPlanner::RrtStarPlanner(const ConfigSpace &space,
                               const ArmCollisionChecker &checker,
                               const RrtStarConfig &config)
    : space_(space), checker_(checker), config_(config)
{
}

RrtStarPlan
RrtStarPlanner::plan(const ArmConfig &start, const ArmConfig &goal,
                     Rng &rng, PhaseProfiler *profiler) const
{
    RrtStarPlan result;
    std::size_t checks_before = checker_.checksPerformed();

    {
        ScopedPhase phase(profiler, "collision");
        if (checker_.configCollides(start) || checker_.configCollides(goal)) {
            result.collision_checks =
                checker_.checksPerformed() - checks_before;
            return result;
        }
    }

    std::vector<ArmConfig> nodes{start};
    std::vector<std::uint32_t> parents{0};
    std::vector<double> cost_to_come{0.0};
    DynNnIndex tree(space_.dof(), config_.nn_engine);
    tree.insert(start, 0);

    // Neighborhood hits, reused every iteration (the per-iteration
    // radiusSearch allocation used to dominate small-tree iterations).
    std::vector<KdHit> neighbors;

    // Best goal connection found so far: node id + cost through it.
    std::int64_t best_goal_parent = -1;
    double best_goal_cost = std::numeric_limits<double>::max();
    // Samples spent when the first solution appeared (for the
    // refine_factor termination rule).
    double first_solution_samples = 0.0;

    while (result.samples_drawn < config_.max_samples) {
        if (best_goal_parent >= 0 &&
            static_cast<double>(result.samples_drawn) >=
                first_solution_samples * (1.0 + config_.refine_factor))
            break;
        ++result.samples_drawn;

        ArmConfig sample;
        {
            ScopedPhase phase(profiler, "sample");
            sample = rng.chance(config_.goal_bias) ? goal
                                                   : space_.sample(rng);
            if (config_.informed_sampling && best_goal_parent >= 0) {
                // Reject samples that provably cannot shorten the
                // current best path (outside the informed spheroid).
                int guard = 0;
                while (ConfigSpace::distance(start, sample) +
                               ConfigSpace::distance(sample, goal) >
                           best_goal_cost &&
                       guard++ < 64) {
                    sample = space_.sample(rng);
                }
            }
        }

        std::uint32_t near_id;
        {
            ScopedPhase phase(profiler, "nn-search");
            ++result.nn_queries;
            near_id = tree.nearest(sample).id;
        }

        ArmConfig new_config;
        bool blocked;
        {
            ScopedPhase phase(profiler, "collision");
            new_config = ConfigSpace::steer(nodes[near_id], sample,
                                            config_.step_size);
            blocked = checker_.motionCollides(nodes[near_id], new_config,
                                              config_.collision_step);
        }
        if (blocked)
            continue;

        // Neighborhood query for choose-parent and rewiring. Hits
        // arrive sorted by (dist2, id) — the engines' contract — so
        // the choose-parent/rewire scan order is engine-independent.
        {
            ScopedPhase phase(profiler, "nn-search");
            ++result.nn_queries;
            tree.radiusSearchInto(new_config, config_.rewire_radius,
                                  neighbors);
        }

        // Choose-parent: connect through the neighbor minimizing
        // cost-to-come, among collision-free connections.
        std::uint32_t parent = near_id;
        double new_cost =
            cost_to_come[near_id] +
            ConfigSpace::distance(nodes[near_id], new_config);
        {
            ScopedPhase phase(profiler, "collision");
            for (const KdHit &hit : neighbors) {
                double through =
                    cost_to_come[hit.id] +
                    ConfigSpace::distance(nodes[hit.id], new_config);
                if (through < new_cost &&
                    !checker_.motionCollides(nodes[hit.id], new_config,
                                             config_.collision_step)) {
                    parent = hit.id;
                    new_cost = through;
                }
            }
        }

        std::uint32_t new_id;
        {
            ScopedPhase phase(profiler, "extend");
            new_id = static_cast<std::uint32_t>(nodes.size());
            nodes.push_back(new_config);
            parents.push_back(parent);
            cost_to_come.push_back(new_cost);
            tree.insert(new_config, new_id);
        }

        // Rewire: reconnect neighbors through the new node when that
        // shortens their cost-to-come (paper Fig. 11).
        {
            ScopedPhase phase(profiler, "rewire");
            for (const KdHit &hit : neighbors) {
                double through =
                    new_cost +
                    ConfigSpace::distance(new_config, nodes[hit.id]);
                if (through + 1e-12 < cost_to_come[hit.id] &&
                    !checker_.motionCollides(new_config, nodes[hit.id],
                                             config_.collision_step)) {
                    parents[hit.id] = new_id;
                    cost_to_come[hit.id] = through;
                    ++result.rewires;
                }
            }
        }

        // Track the best connection to the goal.
        double goal_dist = ConfigSpace::distance(new_config, goal);
        if (goal_dist <= config_.goal_tolerance) {
            double through = new_cost + goal_dist;
            if (through < best_goal_cost) {
                bool goal_blocked;
                {
                    ScopedPhase phase(profiler, "collision");
                    goal_blocked = checker_.motionCollides(
                        new_config, goal, config_.collision_step);
                }
                if (!goal_blocked) {
                    if (best_goal_parent < 0)
                        first_solution_samples = static_cast<double>(
                            result.samples_drawn);
                    best_goal_parent = new_id;
                    best_goal_cost = through;
                }
            }
        }
    }

    result.tree_size = nodes.size();
    result.collision_checks = checker_.checksPerformed() - checks_before;
    if (best_goal_parent < 0)
        return result;

    std::vector<ArmConfig> reversed{goal};
    std::uint32_t cur = static_cast<std::uint32_t>(best_goal_parent);
    while (true) {
        reversed.push_back(nodes[cur]);
        if (cur == 0)
            break;
        cur = parents[cur];
    }
    result.path.assign(reversed.rbegin(), reversed.rend());
    result.cost = pathCost(result.path);
    result.found = true;
    return result;
}

} // namespace rtr

#include "plan/prm.h"

#include <algorithm>

#include "pointcloud/nn_index.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace rtr {

PrmPlanner::PrmPlanner(const ConfigSpace &space,
                       const ArmCollisionChecker &checker,
                       const PrmConfig &config)
    : space_(space), checker_(checker), config_(config)
{
}

PrmBuildStats
PrmPlanner::build(Rng &rng, PhaseProfiler *profiler)
{
    PrmBuildStats stats;
    std::size_t checks_before = checker_.checksPerformed();

    configs_.clear();
    graph_ = ExplicitGraph();

    {
        ScopedPhase phase(profiler, "sampling");
        while (configs_.size() < config_.n_samples) {
            ++stats.samples_drawn;
            ArmConfig q = space_.sample(rng);
            if (!checker_.configCollides(q)) {
                configs_.push_back(std::move(q));
                graph_.addNode();
            }
            // Pathological workspaces could reject forever; cap the
            // rejection rate at 1000x the target size.
            if (stats.samples_drawn > config_.n_samples * 1000)
                fatal("PRM sampling cannot find free configurations");
        }
    }

    {
        ScopedPhase phase(profiler, "offline-connect");
        // k-nearest connection via a kd-tree over all roadmap configs
        // (bulk-built: every config is known up front).
        DynNnIndex tree(space_.dof(), config_.nn_engine);
        tree.build(configs_);

        // Each node's neighbor query + edge collision checks are
        // independent of every other node's, so chunks of nodes run
        // concurrently. The shared checker's FK scratch is not
        // thread-safe, so each chunk validates edges with its own
        // clone; candidate edges land in per-node lists and are
        // committed to the graph serially in node order, making the
        // roadmap identical at any thread count.
        const std::size_t n_nodes = configs_.size();
        const std::size_t grain = resolveGrain(0, n_nodes, 0);
        std::vector<std::vector<std::pair<std::uint32_t, double>>> edges(
            n_nodes);
        std::vector<std::size_t> chunk_checks(
            chunkCount(0, n_nodes, grain), 0);
        parallelForChunks(0, n_nodes, grain, [&](const ChunkRange &chunk) {
            ArmCollisionChecker local_checker(checker_.arm(),
                                              checker_.workspace());
            std::vector<KdHit> near; // reused across the chunk
            for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
                // Hits arrive sorted by (dist2, id) — the engines'
                // contract — so candidates are tried closest-first.
                tree.radiusSearchInto(configs_[i],
                                      config_.max_edge_length, near);
                std::size_t connected = 0;
                for (const KdHit &hit : near) {
                    if (hit.id <= i)  // undirected: connect upward only
                        continue;
                    if (connected >= config_.k_neighbors)
                        break;
                    if (!local_checker.motionCollides(
                            configs_[i], configs_[hit.id],
                            config_.collision_step)) {
                        edges[i].emplace_back(hit.id,
                                              std::sqrt(hit.dist2));
                        ++connected;
                    }
                }
            }
            chunk_checks[chunk.index] = local_checker.checksPerformed();
        });
        for (std::size_t i = 0; i < n_nodes; ++i) {
            for (const auto &[node, dist] : edges[i])
                graph_.addEdge(static_cast<std::uint32_t>(i), node, dist);
        }
        std::size_t total_checks = 0;
        for (std::size_t checks : chunk_checks)
            total_checks += checks;
        checker_.recordExternalChecks(total_checks);
    }

    stats.nodes = configs_.size();
    stats.edges = graph_.edgeCount();
    stats.collision_checks = checker_.checksPerformed() - checks_before;
    return stats;
}

MotionPlan
PrmPlanner::query(const ArmConfig &start, const ArmConfig &goal,
                  PhaseProfiler *profiler) const
{
    return query(start, goal, checker_, profiler, &last_heuristic_evals_);
}

MotionPlan
PrmPlanner::query(const ArmConfig &start, const ArmConfig &goal,
                  const ArmCollisionChecker &checker,
                  PhaseProfiler *profiler,
                  std::size_t *heuristic_evals) const
{
    MotionPlan result;
    RTR_ASSERT(!configs_.empty(), "query before build()");
    std::size_t checks_before = checker.checksPerformed();

    // Work on a copy of the roadmap so queries are independent.
    ExplicitGraph graph = graph_;
    std::vector<ArmConfig> configs = configs_;

    std::uint32_t start_id, goal_id;
    {
        ScopedPhase phase(profiler, "online-connect");
        if (checker.configCollides(start) ||
            checker.configCollides(goal)) {
            result.collision_checks =
                checker.checksPerformed() - checks_before;
            return result;
        }

        auto attach = [&](const ArmConfig &q) {
            std::uint32_t id = graph.addNode();
            configs.push_back(q);
            // Candidate connections: nearest roadmap nodes by L2.
            std::vector<std::pair<double, std::uint32_t>> order;
            order.reserve(configs_.size());
            for (std::size_t i = 0; i < configs_.size(); ++i) {
                order.emplace_back(
                    ConfigSpace::squaredDistance(q, configs_[i]),
                    static_cast<std::uint32_t>(i));
            }
            std::sort(order.begin(), order.end());
            std::size_t connected = 0;
            for (const auto &[d2, node] : order) {
                if (connected >= config_.k_neighbors)
                    break;
                double dist = std::sqrt(d2);
                if (dist > config_.max_edge_length * 2.0)
                    break;
                if (!checker.motionCollides(q, configs_[node],
                                            config_.collision_step)) {
                    graph.addEdge(id, node, dist);
                    ++connected;
                }
            }
            return id;
        };
        start_id = attach(start);
        goal_id = attach(goal);
    }

    // Online graph search with the L2-to-goal heuristic; these distance
    // evaluations are prm's "frequent L2-norm calculations".
    GraphSearchResult search = graphAStar(
        graph, start_id, goal_id,
        [&](std::uint32_t node) {
            return ConfigSpace::distance(configs[node], goal);
        },
        profiler);
    if (heuristic_evals)
        *heuristic_evals = search.heuristic_evals;

    result.collision_checks = checker.checksPerformed() - checks_before;
    result.tree_size = graph.size();
    if (!search.found)
        return result;

    for (std::uint32_t node : search.path)
        result.path.push_back(configs[node]);
    result.cost = search.cost;
    result.found = true;
    return result;
}

} // namespace rtr

#include "plan/rrt.h"

#include <limits>

#include "pointcloud/nn_index.h"

namespace rtr {

double
pathCost(const std::vector<ArmConfig> &path)
{
    double cost = 0.0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
        cost += ConfigSpace::distance(path[i], path[i + 1]);
    return cost;
}

RrtPlanner::RrtPlanner(const ConfigSpace &space,
                       const ArmCollisionChecker &checker,
                       const RrtConfig &config)
    : space_(space), checker_(checker), config_(config)
{
}

MotionPlan
RrtPlanner::plan(const ArmConfig &start, const ArmConfig &goal, Rng &rng,
                 PhaseProfiler *profiler) const
{
    MotionPlan result;
    std::size_t checks_before = checker_.checksPerformed();

    {
        ScopedPhase phase(profiler, "collision");
        if (checker_.configCollides(start) || checker_.configCollides(goal)) {
            result.collision_checks =
                checker_.checksPerformed() - checks_before;
            return result;
        }
    }

    std::vector<ArmConfig> nodes{start};
    std::vector<std::uint32_t> parents{0};
    DynNnIndex tree(space_.dof(), config_.nn_engine);
    tree.insert(start, 0);

    auto nearest_node = [&](const ArmConfig &q) -> std::uint32_t {
        ++result.nn_queries;
        if (config_.use_kdtree)
            return tree.nearest(q).id;
        std::uint32_t best = 0;
        double best_d2 = std::numeric_limits<double>::max();
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            double d2 = ConfigSpace::squaredDistance(nodes[i], q);
            if (d2 < best_d2) {
                best_d2 = d2;
                best = static_cast<std::uint32_t>(i);
            }
        }
        return best;
    };

    std::int64_t goal_node = -1;
    while (result.samples_drawn < config_.max_samples) {
        ++result.samples_drawn;

        ArmConfig sample;
        {
            ScopedPhase phase(profiler, "sample");
            sample = rng.chance(config_.goal_bias) ? goal
                                                   : space_.sample(rng);
        }

        std::uint32_t near_id;
        {
            ScopedPhase phase(profiler, "nn-search");
            near_id = nearest_node(sample);
        }

        ArmConfig new_config;
        bool blocked;
        {
            ScopedPhase phase(profiler, "collision");
            new_config = ConfigSpace::steer(nodes[near_id], sample,
                                            config_.step_size);
            blocked = checker_.motionCollides(nodes[near_id], new_config,
                                              config_.collision_step);
        }
        if (blocked)
            continue;

        std::uint32_t new_id;
        {
            ScopedPhase phase(profiler, "extend");
            new_id = static_cast<std::uint32_t>(nodes.size());
            nodes.push_back(new_config);
            parents.push_back(near_id);
            if (config_.use_kdtree)
                tree.insert(new_config, new_id);
        }

        if (ConfigSpace::distance(new_config, goal) <=
            config_.goal_tolerance) {
            // Try connecting straight to the goal.
            bool goal_blocked;
            {
                ScopedPhase phase(profiler, "collision");
                goal_blocked = checker_.motionCollides(
                    new_config, goal, config_.collision_step);
            }
            if (!goal_blocked) {
                nodes.push_back(goal);
                parents.push_back(new_id);
                goal_node = static_cast<std::int64_t>(nodes.size()) - 1;
                break;
            }
        }
    }

    result.tree_size = nodes.size();
    result.collision_checks = checker_.checksPerformed() - checks_before;
    if (goal_node < 0)
        return result;

    std::vector<ArmConfig> reversed;
    std::uint32_t cur = static_cast<std::uint32_t>(goal_node);
    while (true) {
        reversed.push_back(nodes[cur]);
        if (cur == 0)
            break;
        cur = parents[cur];
    }
    result.path.assign(reversed.rbegin(), reversed.rend());
    result.cost = pathCost(result.path);
    result.found = true;
    return result;
}

} // namespace rtr

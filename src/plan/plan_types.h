/**
 * @file
 * Shared result types for the sampling-based planners.
 */

#ifndef RTR_PLAN_PLAN_TYPES_H
#define RTR_PLAN_PLAN_TYPES_H

#include <cstddef>
#include <vector>

#include "arm/cspace.h"
#include "arm/planar_arm.h"

namespace rtr {

/** Outcome of a sampling-based motion plan. */
struct MotionPlan
{
    /** Whether a path from start to goal was found. */
    bool found = false;
    /** Waypoint configurations from start to goal. */
    std::vector<ArmConfig> path;
    /** Joint-space path length (sum of L2 segment lengths). */
    double cost = 0.0;
    /** Random samples drawn. */
    std::size_t samples_drawn = 0;
    /** Nodes in the final tree/roadmap. */
    std::size_t tree_size = 0;
    /** Configuration collision checks performed. */
    std::size_t collision_checks = 0;
    /** Nearest-neighbor / radius queries performed. */
    std::size_t nn_queries = 0;
};

/** Joint-space length of a waypoint path. */
double pathCost(const std::vector<ArmConfig> &path);

} // namespace rtr

#endif // RTR_PLAN_PLAN_TYPES_H

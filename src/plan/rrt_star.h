/**
 * @file
 * RRT* planner (kernel 09.rrtstar).
 *
 * RRT plus choose-parent and rewiring within a neighborhood radius
 * (paper Fig. 11), giving asymptotically optimal paths at the price of
 * many more nearest-neighbor and collision operations.
 */

#ifndef RTR_PLAN_RRT_STAR_H
#define RTR_PLAN_RRT_STAR_H

#include "arm/workspace.h"
#include "plan/plan_types.h"
#include "pointcloud/nn_engine.h"
#include "util/profiler.h"
#include "util/rng.h"

namespace rtr {

/** RRT* tuning knobs. */
struct RrtStarConfig
{
    /** Maximum joint-space extension per iteration (radians, L2). */
    double step_size = 0.25;
    /** Probability of sampling the goal instead of uniformly. */
    double goal_bias = 0.05;
    /** Joint-space distance at which the goal counts as reached. */
    double goal_tolerance = 0.05;
    /** Sample budget; RRT* uses the whole budget to keep improving. */
    std::size_t max_samples = 200000;
    /** Interpolation resolution of motion collision checks (radians). */
    double collision_step = 0.05;
    /** Neighborhood radius for choose-parent / rewiring (radians, L2). */
    double rewire_radius = 0.5;
    /**
     * Refinement after the first solution: keep sampling until
     * (1 + refine_factor) x the samples the first solution needed
     * (capped by max_samples), letting rewiring shorten the path.
     * 0 stops at the first solution (RRT's termination rule); a very
     * large value spends the whole max_samples budget.
     */
    double refine_factor = 3.0;
    /**
     * Informed sampling (Gammell et al., cited by the paper as [34]):
     * once a solution exists, only samples inside the prolate
     * hyperspheroid {q : d(start,q) + d(q,goal) <= best_cost} can
     * improve it, so others are rejected before any collision work.
     */
    bool informed_sampling = false;
    /** Which NN engine backs nearest/rewire-radius queries (--nn). */
    NnEngine nn_engine = defaultNnEngine();
};

/** Extra statistics RRT* reports beyond the common MotionPlan. */
struct RrtStarPlan : MotionPlan
{
    /** Rewirings actually applied. */
    std::size_t rewires = 0;
};

/** RRT* planner over a configuration space with a collision checker. */
class RrtStarPlanner
{
  public:
    /** Referents must outlive the planner. */
    RrtStarPlanner(const ConfigSpace &space,
                   const ArmCollisionChecker &checker,
                   const RrtStarConfig &config = {});

    /**
     * Plan from start to goal, consuming the full sample budget and
     * returning the best path found.
     *
     * @param profiler Optional; accumulates "sample", "nn-search",
     *        "collision", "extend", and "rewire" phases.
     */
    RrtStarPlan plan(const ArmConfig &start, const ArmConfig &goal,
                     Rng &rng, PhaseProfiler *profiler = nullptr) const;

  private:
    const ConfigSpace &space_;
    const ArmCollisionChecker &checker_;
    RrtStarConfig config_;
};

} // namespace rtr

#endif // RTR_PLAN_RRT_STAR_H

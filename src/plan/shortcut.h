/**
 * @file
 * Path shortcutting post-processor (kernel 10.rrtpp).
 *
 * Iterates over the waypoints of a path and splices out intermediate
 * nodes whenever two waypoints can be connected directly without
 * collision (paper Fig. 12, triangle inequality), trading a little
 * post-processing time for much of RRT*'s path-quality gain.
 */

#ifndef RTR_PLAN_SHORTCUT_H
#define RTR_PLAN_SHORTCUT_H

#include "arm/workspace.h"
#include "plan/plan_types.h"
#include "util/profiler.h"
#include "util/rng.h"

namespace rtr {

/** Shortcut post-processing knobs. */
struct ShortcutConfig
{
    /** Random shortcut attempts. */
    std::size_t iterations = 200;
    /** Interpolation resolution of motion collision checks (radians). */
    double collision_step = 0.05;
};

/** Statistics of a shortcut pass. */
struct ShortcutStats
{
    /** Path cost before post-processing. */
    double cost_before = 0.0;
    /** Path cost after post-processing. */
    double cost_after = 0.0;
    /** Shortcuts actually applied. */
    std::size_t shortcuts_applied = 0;
    /** Collision checks spent post-processing. */
    std::size_t collision_checks = 0;
};

/**
 * Shortcut a waypoint path in place.
 *
 * Randomly picks waypoint pairs and splices the intermediate waypoints
 * out when the direct motion is collision-free. Deterministic given the
 * Rng seed.
 *
 * @param profiler Optional; the pass is one "shortcut" phase.
 */
ShortcutStats shortcutPath(std::vector<ArmConfig> &path,
                           const ArmCollisionChecker &checker,
                           const ShortcutConfig &config, Rng &rng,
                           PhaseProfiler *profiler = nullptr);

} // namespace rtr

#endif // RTR_PLAN_SHORTCUT_H

/**
 * @file
 * Rapidly-exploring Random Tree planner (kernel 08.rrt).
 *
 * Grows a tree from the start configuration towards random samples
 * (with goal bias); every extension is collision-checked. Nearest
 * neighbors come from an incrementally-built k-d tree, or a brute-force
 * scan when configured (the paper's NN-search ablation).
 */

#ifndef RTR_PLAN_RRT_H
#define RTR_PLAN_RRT_H

#include "arm/workspace.h"
#include "plan/plan_types.h"
#include "pointcloud/nn_engine.h"
#include "util/profiler.h"
#include "util/rng.h"

namespace rtr {

/** RRT tuning knobs (mirrors the kernel's command-line options). */
struct RrtConfig
{
    /** Maximum joint-space extension per iteration (radians, L2). */
    double step_size = 0.25;
    /** Probability of sampling the goal instead of uniformly. */
    double goal_bias = 0.05;
    /** Joint-space distance at which the goal counts as reached. */
    double goal_tolerance = 0.05;
    /** Sample budget before giving up. */
    std::size_t max_samples = 200000;
    /** Interpolation resolution of motion collision checks (radians). */
    double collision_step = 0.05;
    /** Use the k-d tree for NN queries (false = brute force scan). */
    bool use_kdtree = true;
    /** Which NN engine backs the k-d tree queries (--nn). */
    NnEngine nn_engine = defaultNnEngine();
};

/** RRT planner over a configuration space with a collision checker. */
class RrtPlanner
{
  public:
    /** Referents must outlive the planner. */
    RrtPlanner(const ConfigSpace &space,
               const ArmCollisionChecker &checker,
               const RrtConfig &config = {});

    /**
     * Plan from start to goal.
     *
     * @param profiler Optional; accumulates "sample", "nn-search",
     *        "collision", and "extend" phases — the paper's RRT cost
     *        breakdown.
     */
    MotionPlan plan(const ArmConfig &start, const ArmConfig &goal,
                    Rng &rng, PhaseProfiler *profiler = nullptr) const;

  private:
    const ConfigSpace &space_;
    const ArmCollisionChecker &checker_;
    RrtConfig config_;
};

} // namespace rtr

#endif // RTR_PLAN_RRT_H

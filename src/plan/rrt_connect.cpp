#include "plan/rrt_connect.h"

#include "pointcloud/nn_index.h"
#include "util/logging.h"

namespace rtr {

namespace {

/** One of the two trees: nodes, parents, and a kd-tree index. */
struct Tree
{
    std::vector<ArmConfig> nodes;
    std::vector<std::uint32_t> parents;
    DynNnIndex index;

    Tree(std::size_t dof, NnEngine engine, const ArmConfig &root)
        : index(dof, engine)
    {
        nodes.push_back(root);
        parents.push_back(0);
        index.insert(root, 0);
    }

    std::uint32_t
    add(const ArmConfig &q, std::uint32_t parent)
    {
        auto id = static_cast<std::uint32_t>(nodes.size());
        nodes.push_back(q);
        parents.push_back(parent);
        index.insert(q, id);
        return id;
    }

    /** Root-to-node chain. */
    std::vector<ArmConfig>
    chain(std::uint32_t id) const
    {
        std::vector<ArmConfig> reversed;
        std::uint32_t cur = id;
        while (true) {
            reversed.push_back(nodes[cur]);
            if (cur == 0)
                break;
            cur = parents[cur];
        }
        return {reversed.rbegin(), reversed.rend()};
    }
};

} // namespace

RrtConnectPlanner::RrtConnectPlanner(const ConfigSpace &space,
                                     const ArmCollisionChecker &checker,
                                     const RrtConnectConfig &config)
    : space_(space), checker_(checker), config_(config)
{
}

MotionPlan
RrtConnectPlanner::plan(const ArmConfig &start, const ArmConfig &goal,
                        Rng &rng, PhaseProfiler *profiler) const
{
    MotionPlan result;
    std::size_t checks_before = checker_.checksPerformed();

    {
        ScopedPhase phase(profiler, "collision");
        if (checker_.configCollides(start) ||
            checker_.configCollides(goal)) {
            result.collision_checks =
                checker_.checksPerformed() - checks_before;
            return result;
        }
    }

    Tree start_tree(space_.dof(), config_.nn_engine, start);
    Tree goal_tree(space_.dof(), config_.nn_engine, goal);
    Tree *grow = &start_tree;   // tree extended towards the sample
    Tree *chase = &goal_tree;   // tree that then tries to connect
    bool grow_is_start = true;

    // One blocked-aware extension of `tree` towards `target` from its
    // nearest node; returns the new node id or -1.
    auto extend = [&](Tree &tree, const ArmConfig &target) {
        std::uint32_t near_id;
        {
            ScopedPhase phase(profiler, "nn-search");
            ++result.nn_queries;
            near_id = tree.index.nearest(target).id;
        }
        ArmConfig stepped;
        bool blocked;
        {
            ScopedPhase phase(profiler, "collision");
            stepped = ConfigSpace::steer(tree.nodes[near_id], target,
                                         config_.step_size);
            blocked = checker_.motionCollides(tree.nodes[near_id],
                                              stepped,
                                              config_.collision_step);
        }
        if (blocked)
            return static_cast<std::int64_t>(-1);
        ScopedPhase phase(profiler, "extend");
        return static_cast<std::int64_t>(tree.add(stepped, near_id));
    };

    while (result.samples_drawn < config_.max_samples) {
        ++result.samples_drawn;
        ArmConfig sample;
        {
            ScopedPhase phase(profiler, "sample");
            sample = space_.sample(rng);
        }

        std::int64_t new_id = extend(*grow, sample);
        if (new_id >= 0) {
            // Greedy connect: the other tree chases the new node until
            // blocked or reached.
            const ArmConfig &target =
                grow->nodes[static_cast<std::size_t>(new_id)];
            std::int64_t chase_id = -1;
            while (true) {
                std::int64_t stepped = extend(*chase, target);
                if (stepped < 0)
                    break;
                chase_id = stepped;
                if (ConfigSpace::distance(
                        chase->nodes[static_cast<std::size_t>(stepped)],
                        target) < 1e-9) {
                    // Connected: stitch the two chains together.
                    std::vector<ArmConfig> grow_chain = grow->chain(
                        static_cast<std::uint32_t>(new_id));
                    std::vector<ArmConfig> chase_chain = chase->chain(
                        static_cast<std::uint32_t>(chase_id));
                    // chase_chain ends at the meeting point; drop the
                    // duplicate and append reversed.
                    std::vector<ArmConfig> path;
                    if (grow_is_start) {
                        path = grow_chain;
                        for (auto it = chase_chain.rbegin() + 1;
                             it != chase_chain.rend(); ++it)
                            path.push_back(*it);
                    } else {
                        path.assign(chase_chain.begin(),
                                    chase_chain.end());
                        for (auto it = grow_chain.rbegin() + 1;
                             it != grow_chain.rend(); ++it)
                            path.push_back(*it);
                    }
                    result.path = std::move(path);
                    result.cost = pathCost(result.path);
                    result.found = true;
                    result.tree_size =
                        start_tree.nodes.size() + goal_tree.nodes.size();
                    result.collision_checks =
                        checker_.checksPerformed() - checks_before;
                    return result;
                }
            }
        }
        std::swap(grow, chase);
        grow_is_start = !grow_is_start;
    }

    result.tree_size = start_tree.nodes.size() + goal_tree.nodes.size();
    result.collision_checks = checker_.checksPerformed() - checks_before;
    return result;
}

} // namespace rtr

#include "plan/shortcut.h"

namespace rtr {

ShortcutStats
shortcutPath(std::vector<ArmConfig> &path,
             const ArmCollisionChecker &checker,
             const ShortcutConfig &config, Rng &rng,
             PhaseProfiler *profiler)
{
    ScopedPhase phase(profiler, "shortcut");
    ShortcutStats stats;
    stats.cost_before = pathCost(path);
    stats.cost_after = stats.cost_before;
    if (path.size() < 3)
        return stats;

    std::size_t checks_before = checker.checksPerformed();
    for (std::size_t iter = 0; iter < config.iterations; ++iter) {
        if (path.size() < 3)
            break;
        // Pick i < j with at least one waypoint between them.
        std::size_t i = rng.index(path.size() - 2);
        std::size_t j =
            i + 2 + rng.index(path.size() - i - 2);

        // Triangle inequality: the direct edge can only help; apply it
        // when it is collision-free.
        if (!checker.motionCollides(path[i], path[j],
                                    config.collision_step)) {
            path.erase(path.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                       path.begin() + static_cast<std::ptrdiff_t>(j));
            ++stats.shortcuts_applied;
        }
    }
    stats.collision_checks = checker.checksPerformed() - checks_before;
    stats.cost_after = pathCost(path);
    return stats;
}

} // namespace rtr

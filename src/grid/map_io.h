/**
 * @file
 * Moving AI Lab `.map` format reader/writer.
 *
 * The paper's pp2d kernel plans on `Boston_1_1024` from the Moving AI
 * pathfinding benchmark set. This module parses that format so the real
 * file drops in unchanged; the synthetic city generator (map_gen.h)
 * provides the stand-in when it is absent.
 *
 * Format:
 *   type octile
 *   height <H>
 *   width <W>
 *   map
 *   <H rows of W characters>
 *
 * Passable characters: '.', 'G', 'S'. Everything else ('@', 'O', 'T',
 * 'W', ...) is treated as an obstacle.
 */

#ifndef RTR_GRID_MAP_IO_H
#define RTR_GRID_MAP_IO_H

#include <iosfwd>
#include <string>

#include "grid/occupancy_grid2d.h"

namespace rtr {

/** Parse a Moving AI map from a stream; fatal() on malformed input. */
OccupancyGrid2D loadMovingAiMap(std::istream &in, double resolution = 1.0);

/** Parse a Moving AI map from a file path; fatal() if unreadable. */
OccupancyGrid2D loadMovingAiMapFile(const std::string &path,
                                    double resolution = 1.0);

/** Serialize a grid in Moving AI format ('.' free, '@' occupied). */
void saveMovingAiMap(const OccupancyGrid2D &grid, std::ostream &out);

/** Serialize a grid to a file; fatal() if unwritable. */
void saveMovingAiMapFile(const OccupancyGrid2D &grid,
                         const std::string &path);

} // namespace rtr

#endif // RTR_GRID_MAP_IO_H

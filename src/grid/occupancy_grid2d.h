/**
 * @file
 * 2-D occupancy grid.
 *
 * The shared world representation of the perception and planning kernels:
 * pfl ray-casts against it, pp2d/movtar plan over it, and the synthetic
 * map generators in map_gen.h produce instances of it.
 *
 * Occupancy is mirrored into a bit-packed BitPlane (the read path of
 * every hot query — 8x smaller working set than the byte array) and
 * summarized by a multi-level pyramid in which each level-k bit ORs an
 * 8x8 block of level k-1. The pyramid lets traversals (ray-casting,
 * line-of-sight sampling) prove entire macro-blocks empty with one bit
 * probe instead of up to 64^k cell probes. All mirrors are kept in
 * sync by setOccupied, so they are never stale.
 */

#ifndef RTR_GRID_OCCUPANCY_GRID2D_H
#define RTR_GRID_OCCUPANCY_GRID2D_H

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "geom/vec2.h"
#include "grid/bitboard.h"

namespace rtr {

/** Integer cell coordinate in a 2-D grid. */
struct Cell2
{
    int x = 0;
    int y = 0;

    constexpr bool operator==(const Cell2 &o) const = default;
};

/** One cell write in an OccupancyGrid2D::applyEdits batch. */
struct CellEdit
{
    int x = 0;
    int y = 0;
    bool occupied = true;
};

/**
 * A dense 2-D occupancy grid with a metric resolution and world origin.
 *
 * Cell (0,0) covers the world square [origin, origin + resolution)^2;
 * cell centers are at origin + (i + 0.5) * resolution.
 */
class OccupancyGrid2D
{
  public:
    /** Empty grid of the given dimensions; all cells free. */
    OccupancyGrid2D(int width, int height, double resolution = 1.0,
                    Vec2 origin = {0.0, 0.0});

    int width() const { return width_; }
    int height() const { return height_; }
    double resolution() const { return resolution_; }
    Vec2 origin() const { return origin_; }

    /** Whether a cell coordinate lies inside the grid. */
    bool
    inBounds(int x, int y) const
    {
        return x >= 0 && x < width_ && y >= 0 && y < height_;
    }

    /** Whether a cell is occupied; out-of-bounds counts as occupied. */
    bool
    occupied(int x, int y) const
    {
        if (!inBounds(x, y))
            return true;
        return bits_.test(x, y);
    }

    /** Unchecked occupancy test for hot loops; caller guarantees bounds. */
    bool
    occupiedUnchecked(int x, int y) const
    {
        return bits_.test(x, y);
    }

    /**
     * Occupancy probe through the byte array instead of the bitboard;
     * out-of-bounds counts as occupied. This is the pre-bitboard read
     * path, kept (always in sync) so the scalar reference ray-cast
     * engine reproduces the exact memory behaviour the paper profiled:
     * one byte load per traversed cell over the full-size array.
     */
    bool
    occupiedByte(int x, int y) const
    {
        if (!inBounds(x, y))
            return true;
        return cells_[static_cast<std::size_t>(y) * width_ + x] != 0;
    }

    /** Mark a cell occupied/free; out-of-bounds writes are ignored. */
    void setOccupied(int x, int y, bool value = true);

    /**
     * Apply a batch of cell edits in one pass. The result is exactly
     * that of calling setOccupied(e.x, e.y, e.occupied) for each edit
     * in order (out-of-bounds edits ignored, later edits to a cell
     * win), but the cost scales with distinct touched words, not
     * edits: the batch folds into per-word set/clear masks applied
     * with one read-modify-write per bitboard word, and pyramid repair
     * rebuilds only the blocks whose bits actually changed — one write
     * per dirtied summary word per level. This is the intended path
     * for dynamic-obstacle updates (movtar-style), where per-cell
     * clears would otherwise each pay a block rescan per level.
     */
    void applyEdits(std::span<const CellEdit> edits);

    /**
     * Set or clear the in-bounds part of the cell rectangle
     * [x0, x1] x [y0, y1] (inclusive). Equivalent to setOccupied over
     * every covered cell, but writes each bitboard word once per row
     * span and repairs each covered pyramid block once.
     */
    void setRect(int x0, int y0, int x1, int y1, bool value = true);

    /**
     * Whether the world point falls in an occupied (or outside) cell.
     * Inline (like occupied/worldToCell) so per-cell tests in hot loops
     * such as castRay never cross a translation-unit boundary.
     */
    bool
    occupiedWorld(const Vec2 &p) const
    {
        Cell2 c = worldToCell(p);
        return occupied(c.x, c.y);
    }

    /** World point to containing cell (may be out of bounds). */
    Cell2
    worldToCell(const Vec2 &p) const
    {
        return Cell2{
            static_cast<int>(std::floor((p.x - origin_.x) / resolution_)),
            static_cast<int>(std::floor((p.y - origin_.y) / resolution_))};
    }

    /** Center of a cell in world coordinates. */
    Vec2 cellCenter(const Cell2 &c) const;

    /** World-space extent of the grid. */
    double worldWidth() const { return width_ * resolution_; }
    double worldHeight() const { return height_ * resolution_; }

    /** Number of free cells. */
    std::size_t freeCellCount() const;

    /** Fraction of cells that are occupied. */
    double occupancyRatio() const;

    /** Raw cell storage (row-major, y * width + x), 0 free / 1 occupied. */
    const std::vector<std::uint8_t> &cells() const { return cells_; }

    /** log2 of the pyramid branching factor: level-k blocks are 8^k cells. */
    static constexpr int kBlockShift = 3;

    /** Bit-packed occupancy mirror (the hot-query read path). */
    const BitPlane &bits() const { return bits_; }

    /** Number of summary levels above the cell-resolution bitboard. */
    int pyramidLevels() const { return static_cast<int>(pyramid_.size()); }

    /**
     * Summary plane of level @p level in [1, pyramidLevels()]: bit
     * (X, Y) is set iff any cell in the 8^level-cell-wide block
     * [X << 3*level, ...] x [Y << 3*level, ...] is occupied.
     */
    const BitPlane &
    pyramidLevel(int level) const
    {
        return pyramid_[static_cast<std::size_t>(level - 1)];
    }

    /**
     * Largest level whose aligned block containing the (in-bounds) cell
     * is entirely free, or 0 when even the level-1 block holds an
     * occupied cell. A nonzero result proves every in-bounds cell of
     * that block free, which is what lets traversals stride across it
     * without per-cell probes.
     */
    int
    emptyBlockLevel(int x, int y) const
    {
        int level = 0;
        for (const BitPlane &plane : pyramid_) {
            x >>= kBlockShift;
            y >>= kBlockShift;
            if (plane.test(x, y))
                break;
            ++level;
        }
        return level;
    }

  private:
    /**
     * Recompute the pyramid bits of the level-1 blocks named in
     * @p dirty (packed (by << 32) | bx keys, duplicates allowed) and
     * propagate upward, level by level, visiting only blocks whose bit
     * changed. Each summary word is written at most once per level.
     */
    void repairPyramid(std::vector<std::uint64_t> &dirty);

    int width_;
    int height_;
    double resolution_;
    Vec2 origin_;
    std::vector<std::uint8_t> cells_;
    BitPlane bits_;
    std::vector<BitPlane> pyramid_;
};

} // namespace rtr

#endif // RTR_GRID_OCCUPANCY_GRID2D_H

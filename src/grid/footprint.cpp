#include "grid/footprint.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace rtr {

RectFootprint::RectFootprint(double length, double width)
    : length_(length), width_(width)
{
    RTR_ASSERT(length > 0.0 && width > 0.0,
               "footprint dimensions must be positive");
}

bool
RectFootprint::collides(const OccupancyGrid2D &grid, const Pose2 &pose) const
{
    const double res = grid.resolution();
    const double half_l = length_ * 0.5;
    const double half_w = width_ * 0.5;
    // Pad by half the cell diagonal: a cell whose center is just outside
    // the rectangle can still overlap it.
    const double pad = res * 0.5 * std::numbers::sqrt2_v<double>;

    const double cos_t = std::cos(pose.theta);
    const double sin_t = std::sin(pose.theta);

    // Axis-aligned bounding box of the oriented rectangle.
    const double ext_x = std::abs(cos_t) * half_l + std::abs(sin_t) * half_w;
    const double ext_y = std::abs(sin_t) * half_l + std::abs(cos_t) * half_w;

    Cell2 lo = grid.worldToCell({pose.x - ext_x - res, pose.y - ext_y - res});
    Cell2 hi = grid.worldToCell({pose.x + ext_x + res, pose.y + ext_y + res});

    // Project a cell center into the footprint frame and test overlap
    // with the padded rectangle.
    auto inside = [&](int cx, int cy) {
        Vec2 center = grid.cellCenter({cx, cy});
        double dx = center.x - pose.x;
        double dy = center.y - pose.y;
        double local_l = dx * cos_t + dy * sin_t;
        double local_w = -dx * sin_t + dy * cos_t;
        return std::abs(local_l) <= half_l + pad &&
               std::abs(local_w) <= half_w + pad;
    };

    std::size_t checked = 0;
    if (lo.x >= 0 && lo.y >= 0 && hi.x < grid.width() &&
        hi.y < grid.height()) {
        // Pyramid fast accept: when every level-1 block covering the
        // bounding box is certified empty, no cell under the footprint
        // can be occupied — the verdict is false without a single
        // row scan. Valid only in the fully-in-bounds case (outside
        // cells count as occupied but are not in any block).
        if (grid.pyramidLevels() >= 1) {
            const BitPlane &l1 = grid.pyramidLevel(1);
            bool any = false;
            for (int by = lo.y >> 3; by <= (hi.y >> 3) && !any; ++by)
                any = l1.anyInRowSpan(by, lo.x >> 3, hi.x >> 3);
            if (!any) {
                last_cells_checked_ = 0;
                return false;
            }
        }
        // Fully in bounds (the common planner case): scan each row's
        // span on the bitboard and project only the occupied cells —
        // free rows cost a couple of masked word tests and no
        // floating-point work at all. Occupied cells are visited in
        // the same row-major order the dense sweep used, so the
        // collision verdict (and first-hit cell) is identical.
        const BitPlane &bits = grid.bits();
        for (int cy = lo.y; cy <= hi.y; ++cy) {
            int cx = lo.x;
            while ((cx = bits.firstSetInRowSpan(cy, cx, hi.x)) >= 0) {
                ++checked;
                if (inside(cx, cy)) {
                    last_cells_checked_ = checked;
                    return true;
                }
                if (++cx > hi.x)
                    break;
            }
        }
        last_cells_checked_ = checked;
        return false;
    }

    // Bounding box reaches outside the grid: keep the dense sweep, in
    // which out-of-bounds cells count as occupied.
    for (int cy = lo.y; cy <= hi.y; ++cy) {
        for (int cx = lo.x; cx <= hi.x; ++cx) {
            if (!inside(cx, cy))
                continue;
            ++checked;
            if (grid.occupied(cx, cy)) {
                last_cells_checked_ = checked;
                return true;
            }
        }
    }
    last_cells_checked_ = checked;
    return false;
}

bool
pointCollides(const OccupancyGrid2D &grid, const Vec2 &p)
{
    return grid.occupiedWorld(p);
}

} // namespace rtr

#include "grid/map_io.h"

#include <fstream>
#include <sstream>
#include <string>

#include "util/logging.h"

namespace rtr {

namespace {

bool
isPassable(char c)
{
    return c == '.' || c == 'G' || c == 'S';
}

} // namespace

OccupancyGrid2D
loadMovingAiMap(std::istream &in, double resolution)
{
    std::string keyword;
    std::string type_value;
    int width = -1, height = -1;

    // Header: "type X", "height H", "width W" in any order, then "map".
    while (in >> keyword) {
        if (keyword == "type") {
            in >> type_value;
        } else if (keyword == "height") {
            in >> height;
        } else if (keyword == "width") {
            in >> width;
        } else if (keyword == "map") {
            break;
        } else {
            fatal("unexpected token '", keyword, "' in map header");
        }
    }
    if (width <= 0 || height <= 0)
        fatal("map header missing valid width/height");
    in.ignore();  // consume newline after "map"

    OccupancyGrid2D grid(width, height, resolution);
    std::string line;
    // Moving AI rows run top-to-bottom; store row 0 of the file as the
    // highest y so world coordinates keep y-up semantics.
    for (int row = 0; row < height; ++row) {
        if (!std::getline(in, line))
            fatal("map body truncated at row ", row);
        if (static_cast<int>(line.size()) < width)
            fatal("map row ", row, " shorter than declared width");
        int y = height - 1 - row;
        for (int x = 0; x < width; ++x)
            grid.setOccupied(x, y, !isPassable(line[static_cast<size_t>(x)]));
    }
    return grid;
}

OccupancyGrid2D
loadMovingAiMapFile(const std::string &path, double resolution)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open map file '", path, "'");
    return loadMovingAiMap(in, resolution);
}

void
saveMovingAiMap(const OccupancyGrid2D &grid, std::ostream &out)
{
    out << "type octile\n";
    out << "height " << grid.height() << "\n";
    out << "width " << grid.width() << "\n";
    out << "map\n";
    for (int row = 0; row < grid.height(); ++row) {
        int y = grid.height() - 1 - row;
        for (int x = 0; x < grid.width(); ++x)
            out << (grid.occupied(x, y) ? '@' : '.');
        out << "\n";
    }
}

void
saveMovingAiMapFile(const OccupancyGrid2D &grid, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write map file '", path, "'");
    saveMovingAiMap(grid, out);
}

} // namespace rtr

/**
 * @file
 * 3-D occupancy grid for the UAV planning kernel (pp3d).
 *
 * Storage is a bit-packed BitPlane whose rows are (y, z) pairs: one
 * bit per cell instead of one byte, an 8x smaller working set for the
 * collision queries that dominate the kernel, and word-level fills and
 * popcounts for fillBox/freeCellCount.
 */

#ifndef RTR_GRID_OCCUPANCY_GRID3D_H
#define RTR_GRID_OCCUPANCY_GRID3D_H

#include <cstdint>
#include <vector>

#include "geom/vec3.h"
#include "grid/bitboard.h"

namespace rtr {

/** Integer cell coordinate in a 3-D grid. */
struct Cell3
{
    int x = 0;
    int y = 0;
    int z = 0;

    constexpr bool operator==(const Cell3 &o) const = default;
};

/** Dense 3-D occupancy grid; layout is x-fastest, then y, then z. */
class OccupancyGrid3D
{
  public:
    /** Empty grid of the given dimensions; all cells free. */
    OccupancyGrid3D(int width, int height, int depth,
                    double resolution = 1.0);

    int width() const { return width_; }
    int height() const { return height_; }
    int depth() const { return depth_; }
    double resolution() const { return resolution_; }

    /** Whether a cell coordinate lies inside the grid. */
    bool
    inBounds(int x, int y, int z) const
    {
        return x >= 0 && x < width_ && y >= 0 && y < height_ && z >= 0 &&
               z < depth_;
    }

    /** Whether a cell is occupied; out-of-bounds counts as occupied. */
    bool
    occupied(int x, int y, int z) const
    {
        if (!inBounds(x, y, z))
            return true;
        return bits_.test(x, row(y, z));
    }

    /** Unchecked occupancy test for hot loops; caller guarantees bounds. */
    bool
    occupiedUnchecked(int x, int y, int z) const
    {
        return bits_.test(x, row(y, z));
    }

    /** Mark a cell occupied/free; out-of-bounds writes are ignored. */
    void setOccupied(int x, int y, int z, bool value = true);

    /** Mark an axis-aligned solid box of cells occupied. */
    void fillBox(const Cell3 &lo, const Cell3 &hi, bool value = true);

    /** Number of free cells. */
    std::size_t freeCellCount() const;

    /** Center of a cell in world coordinates (origin at zero). */
    Vec3
    cellCenter(const Cell3 &c) const
    {
        return {(c.x + 0.5) * resolution_, (c.y + 0.5) * resolution_,
                (c.z + 0.5) * resolution_};
    }

    /** Bit-packed storage: plane row y + z * height holds row (y, z). */
    const BitPlane &bits() const { return bits_; }

  private:
    int
    row(int y, int z) const
    {
        return z * height_ + y;
    }

    int width_;
    int height_;
    int depth_;
    double resolution_;
    BitPlane bits_;
};

} // namespace rtr

#endif // RTR_GRID_OCCUPANCY_GRID3D_H

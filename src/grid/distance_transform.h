/**
 * @file
 * Chamfer distance transform and obstacle inflation.
 */

#ifndef RTR_GRID_DISTANCE_TRANSFORM_H
#define RTR_GRID_DISTANCE_TRANSFORM_H

#include <vector>

#include "grid/occupancy_grid2d.h"

namespace rtr {

/**
 * Two-pass 3-4 chamfer distance transform. Returns, for every cell, the
 * approximate distance (in world units) to the nearest occupied cell.
 * Occupied cells map to 0.
 */
std::vector<double> distanceTransform(const OccupancyGrid2D &grid);

/**
 * A copy of the grid with every obstacle dilated by @p radius world
 * units; planning for a disc robot on the inflated grid is equivalent to
 * planning with its footprint on the original.
 */
OccupancyGrid2D inflate(const OccupancyGrid2D &grid, double radius);

} // namespace rtr

#endif // RTR_GRID_DISTANCE_TRANSFORM_H

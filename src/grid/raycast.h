/**
 * @file
 * Grid ray-casting (DDA traversal).
 *
 * The paper identifies ray-casting as the dominant cost of particle
 * filter localization (67-78% of execution time): every particle casts
 * one ray per laser beam against the map. This module is that primitive.
 */

#ifndef RTR_GRID_RAYCAST_H
#define RTR_GRID_RAYCAST_H

#include <vector>

#include "geom/vec2.h"
#include "grid/occupancy_grid2d.h"

namespace rtr {

/**
 * Cast a ray from a world-space origin at the given angle and return the
 * distance to the first occupied cell (or max_range if none is hit).
 *
 * Uses Amanatides-Woo DDA so every traversed cell is visited exactly
 * once; the access pattern is the spatially-local streaming walk the
 * paper highlights as acceleration-friendly.
 */
double castRay(const OccupancyGrid2D &grid, const Vec2 &origin, double angle,
               double max_range);

/**
 * Cast a fan of rays (a full simulated laser scan) into @p out, one hit
 * distance per angle in [start_angle, start_angle + fov), evenly
 * spaced. @p out is cleared first (and reserved to n_rays), so callers
 * can reuse one buffer across scans without accumulating stale ranges.
 */
void castScan(const OccupancyGrid2D &grid, const Vec2 &origin,
              double start_angle, double fov, int n_rays, double max_range,
              std::vector<double> &out);

/** Brute-force reference ray-caster (small fixed steps), for testing. */
double castRayReference(const OccupancyGrid2D &grid, const Vec2 &origin,
                        double angle, double max_range);

} // namespace rtr

#endif // RTR_GRID_RAYCAST_H

/**
 * @file
 * Grid ray-casting (DDA traversal with hierarchical empty-region
 * skipping).
 *
 * The paper identifies ray-casting as the dominant cost of particle
 * filter localization (67-78% of execution time): every particle casts
 * one ray per laser beam against the map. This module is that
 * primitive.
 *
 * Two engines share one Amanatides-Woo stepping loop:
 *
 *  - Scalar: probes the occupancy of every traversed cell (the
 *    pre-bitboard behaviour, kept as the identity oracle and as the
 *    paper-faithful profile reproduction).
 *  - Hierarchical: consults the grid's occupancy pyramid; once a cell
 *    lands in a provably-empty 8^k-cell block the traversal keeps
 *    stepping through the block without touching occupancy data at
 *    all. Over the mostly-empty corridor/street maps of the suite
 *    this removes an order of magnitude of cell probes per ray.
 *
 * Both engines execute the exact same floating-point comparisons and
 * accumulations in the same order, so every returned range is bitwise
 * identical between them (asserted by the fuzz suite in
 * tests/test_raycast.cpp).
 */

#ifndef RTR_GRID_RAYCAST_H
#define RTR_GRID_RAYCAST_H

#include <cstdint>
#include <vector>

#include "geom/pose.h"
#include "geom/vec2.h"
#include "grid/occupancy_grid2d.h"

namespace rtr {

/** Which occupancy-query engine a cast uses. */
enum class RayEngine
{
    /** Pyramid-accelerated empty-region skipping (the default). */
    Hierarchical,
    /** Per-cell probing of every traversed cell (identity oracle). */
    Scalar,
};

/** Traversal counters for one or more casts (diagnostics/benchmarks). */
struct RayCastStats
{
    /** DDA boundary crossings (cells entered after the start cell). */
    std::uint64_t steps = 0;
    /** Occupancy-data probes: per-cell tests plus pyramid block tests. */
    std::uint64_t probes = 0;
};

/**
 * Cast a ray from a world-space origin at the given angle and return the
 * distance to the first occupied cell (or max_range if none is hit).
 *
 * Uses Amanatides-Woo DDA so every traversed cell is entered exactly
 * once; the hierarchical engine skips the occupancy probes inside
 * pyramid-certified empty blocks.
 */
double castRay(const OccupancyGrid2D &grid, const Vec2 &origin, double angle,
               double max_range);

/** castRay on the scalar engine: probe every traversed cell. */
double castRayScalar(const OccupancyGrid2D &grid, const Vec2 &origin,
                     double angle, double max_range);

/** castRay with traversal counters accumulated into @p stats. */
double castRayCounted(const OccupancyGrid2D &grid, const Vec2 &origin,
                      double angle, double max_range, RayCastStats &stats);

/** castRayScalar with traversal counters accumulated into @p stats. */
double castRayScalarCounted(const OccupancyGrid2D &grid, const Vec2 &origin,
                            double angle, double max_range,
                            RayCastStats &stats);

/**
 * Cast a fan of rays (a full simulated laser scan) into @p out, one hit
 * distance per angle in [start_angle, start_angle + fov), evenly
 * spaced. @p out is cleared first (and reserved to n_rays), so callers
 * can reuse one buffer across scans without accumulating stale ranges.
 */
void castScan(const OccupancyGrid2D &grid, const Vec2 &origin,
              double start_angle, double fov, int n_rays, double max_range,
              std::vector<double> &out,
              RayEngine engine = RayEngine::Hierarchical);

/**
 * Cast the scans of a whole particle set in one call: for pose i and
 * beam b, out[i * n_beams + b] is the hit distance of the ray from
 * pose i's position at angle theta_i + start_angle + b * (fov /
 * n_beams). Runs the poses through rtr::parallelFor, and every range
 * is a pure function of (grid, pose, beam), so the output is bitwise
 * identical at any thread count and to per-pose castRay calls.
 */
void castScanBatch(const OccupancyGrid2D &grid,
                   const std::vector<Pose2> &poses, double start_angle,
                   double fov, int n_beams, double max_range,
                   std::vector<double> &out,
                   RayEngine engine = RayEngine::Hierarchical);

/** Brute-force reference ray-caster (small fixed steps), for testing. */
double castRayReference(const OccupancyGrid2D &grid, const Vec2 &origin,
                        double angle, double max_range);

} // namespace rtr

#endif // RTR_GRID_RAYCAST_H

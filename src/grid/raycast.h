/**
 * @file
 * Grid ray-casting (DDA traversal with hierarchical empty-region
 * skipping).
 *
 * The paper identifies ray-casting as the dominant cost of particle
 * filter localization (67-78% of execution time): every particle casts
 * one ray per laser beam against the map. This module is that
 * primitive.
 *
 * Three engines share one Amanatides-Woo stepping discipline:
 *
 *  - Scalar: probes the occupancy of every traversed cell (the
 *    pre-bitboard behaviour, kept as the identity oracle and as the
 *    paper-faithful profile reproduction).
 *  - Hierarchical: consults the grid's occupancy pyramid; once a cell
 *    lands in a provably-empty 8^k-cell block the traversal keeps
 *    stepping through the block without touching occupancy data at
 *    all. Over the mostly-empty corridor/street maps of the suite
 *    this removes an order of magnitude of cell probes per ray.
 *  - Packet: scan-level engine — rays binned by octant and traced
 *    kWidth at a time, one ray per rtr::simd::VecD lane, through the
 *    same pyramid. The per-lane DDA advance is lane-parallel
 *    (select(cmpGT) blends instead of branches) but arithmetically
 *    the exact scalar expression shapes, so it breaks the serial
 *    per-ray dependency chain without touching rounding.
 *
 * All engines execute the exact same floating-point comparisons and
 * accumulations in the same order per ray, so every returned range is
 * bitwise identical between them (asserted by the fuzz suites in
 * tests/test_raycast.cpp).
 */

#ifndef RTR_GRID_RAYCAST_H
#define RTR_GRID_RAYCAST_H

#include <cstdint>
#include <string_view>
#include <vector>

#include "geom/pose.h"
#include "geom/vec2.h"
#include "grid/occupancy_grid2d.h"

namespace rtr {

/** Which occupancy-query engine a cast uses. */
enum class RayEngine
{
    /** Pyramid-accelerated empty-region skipping. */
    Hierarchical,
    /** Per-cell probing of every traversed cell (identity oracle). */
    Scalar,
    /** Octant-binned SIMD ray packets over the pyramid. */
    Packet,
};

/** Display name ("packet" / "hier" / "scalar"). */
const char *rayEngineName(RayEngine engine);

/** Parse an engine name; returns false on anything else. */
bool parseRayEngine(std::string_view name, RayEngine &out);

/**
 * Process-wide default engine: hierarchical, unless the RTR_RAYCAST
 * environment variable names another engine (read once). The packet
 * and hier engines both lose wall-clock to scalar on this host's
 * benchmark maps (EXPERIMENTS.md "Ray-cast engine" has the sweep);
 * hier remains the default because its probe elision is the quantity
 * that converts to time on the cache-constrained targets the paper
 * studies. An
 * RTR_RAYCAST value that is not 'packet', 'hier' or 'scalar' is a
 * configuration error and exits with status 2 — a silently ignored
 * typo would quietly benchmark the wrong engine. Explicit --raycast
 * flags override the default per run.
 */
RayEngine defaultRayEngine();

/** Traversal counters for one or more casts (diagnostics/benchmarks). */
struct RayCastStats
{
    /** DDA boundary crossings (cells entered after the start cell). */
    std::uint64_t steps = 0;
    /** Occupancy-data probes: per-cell tests plus pyramid block tests. */
    std::uint64_t probes = 0;
};

/**
 * Cast a ray from a world-space origin at the given angle and return the
 * distance to the first occupied cell (or max_range if none is hit).
 *
 * Uses Amanatides-Woo DDA so every traversed cell is entered exactly
 * once; the hierarchical engine skips the occupancy probes inside
 * pyramid-certified empty blocks.
 */
double castRay(const OccupancyGrid2D &grid, const Vec2 &origin, double angle,
               double max_range);

/** castRay on the scalar engine: probe every traversed cell. */
double castRayScalar(const OccupancyGrid2D &grid, const Vec2 &origin,
                     double angle, double max_range);

/** castRay with traversal counters accumulated into @p stats. */
double castRayCounted(const OccupancyGrid2D &grid, const Vec2 &origin,
                      double angle, double max_range, RayCastStats &stats);

/** castRayScalar with traversal counters accumulated into @p stats. */
double castRayScalarCounted(const OccupancyGrid2D &grid, const Vec2 &origin,
                            double angle, double max_range,
                            RayCastStats &stats);

/**
 * Cast a fan of rays (a full simulated laser scan) into @p out, one hit
 * distance per angle in [start_angle, start_angle + fov), evenly
 * spaced. @p out is cleared first (and reserved to n_rays), so callers
 * can reuse one buffer across scans without accumulating stale ranges.
 * The packet engine bins the scan's rays by octant and traces them
 * kWidth per simd::VecD; out[i] is bitwise identical across engines.
 */
void castScan(const OccupancyGrid2D &grid, const Vec2 &origin,
              double start_angle, double fov, int n_rays, double max_range,
              std::vector<double> &out,
              RayEngine engine = RayEngine::Hierarchical);

/**
 * castScan with traversal counters accumulated into @p stats. The
 * packet engine's counters match the hierarchical engine's exactly
 * (same steps, same probes at the same cells); this is the only
 * counted entry point that can run the packet engine, which exists at
 * scan granularity.
 */
void castScanCounted(const OccupancyGrid2D &grid, const Vec2 &origin,
                     double start_angle, double fov, int n_rays,
                     double max_range, std::vector<double> &out,
                     RayEngine engine, RayCastStats &stats);

/**
 * Cast the scans of a whole particle set in one call: for pose i and
 * beam b, out[i * n_beams + b] is the hit distance of the ray from
 * pose i's position at angle theta_i + start_angle + b * (fov /
 * n_beams). Runs the poses through rtr::parallelFor, and every range
 * is a pure function of (grid, pose, beam), so the output is bitwise
 * identical at any thread count and to per-pose castRay calls.
 */
void castScanBatch(const OccupancyGrid2D &grid,
                   const std::vector<Pose2> &poses, double start_angle,
                   double fov, int n_beams, double max_range,
                   std::vector<double> &out,
                   RayEngine engine = RayEngine::Hierarchical);

/** Brute-force reference ray-caster (small fixed steps), for testing. */
double castRayReference(const OccupancyGrid2D &grid, const Vec2 &origin,
                        double angle, double max_range);

} // namespace rtr

#endif // RTR_GRID_RAYCAST_H

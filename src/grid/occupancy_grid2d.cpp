#include "grid/occupancy_grid2d.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace rtr {

OccupancyGrid2D::OccupancyGrid2D(int width, int height, double resolution,
                                 Vec2 origin)
    : width_(width),
      height_(height),
      resolution_(resolution),
      origin_(origin),
      cells_(static_cast<std::size_t>(width) * height, 0),
      bits_(width, height)
{
    RTR_ASSERT(width > 0 && height > 0, "grid dimensions must be positive");
    RTR_ASSERT(resolution > 0.0, "grid resolution must be positive");
    // Summary levels until one block covers the whole grid. A fresh
    // grid is all-free, so all-zero planes are already consistent.
    int level_w = (width + 7) >> kBlockShift;
    int level_h = (height + 7) >> kBlockShift;
    while (level_w > 1 || level_h > 1) {
        pyramid_.emplace_back(level_w, level_h);
        level_w = (level_w + 7) >> kBlockShift;
        level_h = (level_h + 7) >> kBlockShift;
    }
}

void
OccupancyGrid2D::setOccupied(int x, int y, bool value)
{
    if (!inBounds(x, y))
        return;
    cells_[static_cast<std::size_t>(y) * width_ + x] = value ? 1 : 0;
    if (bits_.test(x, y) == value)
        return;
    bits_.set(x, y, value);
    if (value) {
        // Mark ancestors; stop at the first already-set summary (its
        // ancestors are set by the invariant).
        int bx = x, by = y;
        for (BitPlane &plane : pyramid_) {
            bx >>= kBlockShift;
            by >>= kBlockShift;
            if (plane.test(bx, by))
                break;
            plane.set(bx, by, true);
        }
    } else {
        // Clear ancestors while their child block has just become
        // empty; stop at the first block that still holds a set bit.
        const BitPlane *child = &bits_;
        int bx = x, by = y;
        for (BitPlane &plane : pyramid_) {
            bx >>= kBlockShift;
            by >>= kBlockShift;
            if (!child->blockEmpty8(bx, by))
                break;
            plane.set(bx, by, false);
            child = &plane;
        }
    }
}

namespace {

/** Packed pyramid block key: (by << 32) | bx, both nonnegative. */
inline std::uint64_t
blockKey(int bx, int by)
{
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(by))
            << 32) |
           static_cast<std::uint32_t>(bx);
}

} // namespace

void
OccupancyGrid2D::repairPyramid(std::vector<std::uint64_t> &dirty)
{
    const BitPlane *child = &bits_;
    std::vector<std::uint64_t> next;
    for (BitPlane &plane : pyramid_) {
        if (dirty.empty())
            return;
        // Sorting groups blocks of the same summary word together, so
        // the word's folded masks apply in one read-modify-write.
        std::sort(dirty.begin(), dirty.end());
        dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
        next.clear();
        std::size_t i = 0;
        while (i < dirty.size()) {
            const int bx0 = static_cast<int>(dirty[i] & 0xFFFFFFFFu);
            const int by = static_cast<int>(dirty[i] >> 32);
            const std::size_t widx = plane.wordIndex(bx0, by);
            std::uint64_t set_mask = 0, clear_mask = 0;
            do {
                const int bx = static_cast<int>(dirty[i] & 0xFFFFFFFFu);
                const std::uint64_t bit = std::uint64_t{1} << (bx & 63);
                if (child->blockEmpty8(bx, by))
                    clear_mask |= bit;
                else
                    set_mask |= bit;
                ++i;
            } while (i < dirty.size() &&
                     plane.wordIndex(
                         static_cast<int>(dirty[i] & 0xFFFFFFFFu),
                         static_cast<int>(dirty[i] >> 32)) == widx);
            const std::uint64_t changed =
                plane.updateWord(widx, set_mask, clear_mask);
            if (changed == 0)
                continue;
            const int wx_base = (bx0 >> 6) << 6;
            for (std::uint64_t bits = changed; bits != 0;
                 bits &= bits - 1) {
                const int bx = wx_base + std::countr_zero(bits);
                next.push_back(
                    blockKey(bx >> kBlockShift, by >> kBlockShift));
            }
        }
        dirty.swap(next);
        child = &plane;
    }
}

void
OccupancyGrid2D::applyEdits(std::span<const CellEdit> edits)
{
    // Collect the in-bounds edits as (word, bit, value) triples; the
    // byte mirror takes the writes directly (it has no fold to win).
    struct WordEdit
    {
        std::uint64_t word;
        std::uint64_t bit;
        bool value;
    };
    std::vector<WordEdit> word_edits;
    word_edits.reserve(edits.size());
    for (const CellEdit &e : edits) {
        if (!inBounds(e.x, e.y))
            continue;
        cells_[static_cast<std::size_t>(e.y) * width_ + e.x] =
            e.occupied ? 1 : 0;
        word_edits.push_back({bits_.wordIndex(e.x, e.y),
                              std::uint64_t{1} << (e.x & 63), e.occupied});
    }
    if (word_edits.empty())
        return;
    // Stable sort preserves edit order within a word, so folding the
    // masks front to back keeps last-writer-wins semantics.
    std::stable_sort(word_edits.begin(), word_edits.end(),
                     [](const WordEdit &a, const WordEdit &b) {
                         return a.word < b.word;
                     });
    std::vector<std::uint64_t> dirty;
    std::size_t i = 0;
    while (i < word_edits.size()) {
        const std::uint64_t widx = word_edits[i].word;
        std::uint64_t set_mask = 0, clear_mask = 0;
        do {
            if (word_edits[i].value) {
                set_mask |= word_edits[i].bit;
                clear_mask &= ~word_edits[i].bit;
            } else {
                clear_mask |= word_edits[i].bit;
                set_mask &= ~word_edits[i].bit;
            }
            ++i;
        } while (i < word_edits.size() && word_edits[i].word == widx);
        const std::uint64_t changed =
            bits_.updateWord(widx, set_mask, clear_mask);
        if (changed == 0)
            continue;
        const int y = static_cast<int>(widx / bits_.wordsPerRow());
        const int wx_base =
            static_cast<int>(widx % bits_.wordsPerRow()) << 6;
        for (std::uint64_t bits = changed; bits != 0; bits &= bits - 1) {
            const int x = wx_base + std::countr_zero(bits);
            dirty.push_back(blockKey(x >> kBlockShift, y >> kBlockShift));
        }
    }
    repairPyramid(dirty);
}

void
OccupancyGrid2D::setRect(int x0, int y0, int x1, int y1, bool value)
{
    const int cx0 = std::max(x0, 0);
    const int cy0 = std::max(y0, 0);
    const int cx1 = std::min(x1, width_ - 1);
    const int cy1 = std::min(y1, height_ - 1);
    if (cx0 > cx1 || cy0 > cy1)
        return;
    const std::uint8_t byte = value ? 1 : 0;
    for (int y = cy0; y <= cy1; ++y) {
        std::uint8_t *row = cells_.data() +
                            static_cast<std::size_t>(y) * width_;
        std::fill(row + cx0, row + cx1 + 1, byte);
        bits_.setRowSpan(y, cx0, cx1, value);
    }
    // Every covered block is (possibly) dirty; recomputing a block
    // whose bit did not change is harmless and writes its word once.
    std::vector<std::uint64_t> dirty;
    for (int by = cy0 >> kBlockShift; by <= (cy1 >> kBlockShift); ++by)
        for (int bx = cx0 >> kBlockShift; bx <= (cx1 >> kBlockShift); ++bx)
            dirty.push_back(blockKey(bx, by));
    repairPyramid(dirty);
}

Vec2
OccupancyGrid2D::cellCenter(const Cell2 &c) const
{
    return {origin_.x + (c.x + 0.5) * resolution_,
            origin_.y + (c.y + 0.5) * resolution_};
}

std::size_t
OccupancyGrid2D::freeCellCount() const
{
    // Row padding bits are always zero, so one popcount sweep over the
    // bitboard words counts exactly the occupied cells.
    return static_cast<std::size_t>(width_) * height_ -
           static_cast<std::size_t>(bits_.countSet());
}

double
OccupancyGrid2D::occupancyRatio() const
{
    return 1.0 - static_cast<double>(freeCellCount()) /
                     static_cast<double>(cells_.size());
}

} // namespace rtr

#include "grid/occupancy_grid2d.h"

#include <cmath>

#include "util/logging.h"

namespace rtr {

OccupancyGrid2D::OccupancyGrid2D(int width, int height, double resolution,
                                 Vec2 origin)
    : width_(width),
      height_(height),
      resolution_(resolution),
      origin_(origin),
      cells_(static_cast<std::size_t>(width) * height, 0)
{
    RTR_ASSERT(width > 0 && height > 0, "grid dimensions must be positive");
    RTR_ASSERT(resolution > 0.0, "grid resolution must be positive");
}

void
OccupancyGrid2D::setOccupied(int x, int y, bool value)
{
    if (!inBounds(x, y))
        return;
    cells_[static_cast<std::size_t>(y) * width_ + x] = value ? 1 : 0;
}

Vec2
OccupancyGrid2D::cellCenter(const Cell2 &c) const
{
    return {origin_.x + (c.x + 0.5) * resolution_,
            origin_.y + (c.y + 0.5) * resolution_};
}

std::size_t
OccupancyGrid2D::freeCellCount() const
{
    std::size_t free = 0;
    for (std::uint8_t v : cells_)
        free += (v == 0);
    return free;
}

double
OccupancyGrid2D::occupancyRatio() const
{
    return 1.0 - static_cast<double>(freeCellCount()) /
                     static_cast<double>(cells_.size());
}

} // namespace rtr

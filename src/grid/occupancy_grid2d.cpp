#include "grid/occupancy_grid2d.h"

#include <cmath>

#include "util/logging.h"

namespace rtr {

OccupancyGrid2D::OccupancyGrid2D(int width, int height, double resolution,
                                 Vec2 origin)
    : width_(width),
      height_(height),
      resolution_(resolution),
      origin_(origin),
      cells_(static_cast<std::size_t>(width) * height, 0),
      bits_(width, height)
{
    RTR_ASSERT(width > 0 && height > 0, "grid dimensions must be positive");
    RTR_ASSERT(resolution > 0.0, "grid resolution must be positive");
    // Summary levels until one block covers the whole grid. A fresh
    // grid is all-free, so all-zero planes are already consistent.
    int level_w = (width + 7) >> kBlockShift;
    int level_h = (height + 7) >> kBlockShift;
    while (level_w > 1 || level_h > 1) {
        pyramid_.emplace_back(level_w, level_h);
        level_w = (level_w + 7) >> kBlockShift;
        level_h = (level_h + 7) >> kBlockShift;
    }
}

void
OccupancyGrid2D::setOccupied(int x, int y, bool value)
{
    if (!inBounds(x, y))
        return;
    cells_[static_cast<std::size_t>(y) * width_ + x] = value ? 1 : 0;
    if (bits_.test(x, y) == value)
        return;
    bits_.set(x, y, value);
    if (value) {
        // Mark ancestors; stop at the first already-set summary (its
        // ancestors are set by the invariant).
        int bx = x, by = y;
        for (BitPlane &plane : pyramid_) {
            bx >>= kBlockShift;
            by >>= kBlockShift;
            if (plane.test(bx, by))
                break;
            plane.set(bx, by, true);
        }
    } else {
        // Clear ancestors while their child block has just become
        // empty; stop at the first block that still holds a set bit.
        const BitPlane *child = &bits_;
        int bx = x, by = y;
        for (BitPlane &plane : pyramid_) {
            bx >>= kBlockShift;
            by >>= kBlockShift;
            if (!child->blockEmpty8(bx, by))
                break;
            plane.set(bx, by, false);
            child = &plane;
        }
    }
}

Vec2
OccupancyGrid2D::cellCenter(const Cell2 &c) const
{
    return {origin_.x + (c.x + 0.5) * resolution_,
            origin_.y + (c.y + 0.5) * resolution_};
}

std::size_t
OccupancyGrid2D::freeCellCount() const
{
    // Row padding bits are always zero, so one popcount sweep over the
    // bitboard words counts exactly the occupied cells.
    return static_cast<std::size_t>(width_) * height_ -
           static_cast<std::size_t>(bits_.countSet());
}

double
OccupancyGrid2D::occupancyRatio() const
{
    return 1.0 - static_cast<double>(freeCellCount()) /
                     static_cast<double>(cells_.size());
}

} // namespace rtr

/**
 * @file
 * Bit-packed occupancy planes.
 *
 * The paper attributes most of the map-query cost (ray-casting in pfl,
 * collision sweeps in pp2d/pp3d) to cache-unfriendly walks over large
 * byte-per-cell occupancy arrays. A BitPlane stores the same
 * information at one bit per cell — an 8x smaller working set — and
 * turns whole-row queries (any-occupied-in-span, first-occupied,
 * free-cell counts) into word-level mask/popcount operations. It is
 * the storage substrate of OccupancyGrid2D's occupancy mirror, of
 * every level of its empty-region pyramid, and (with rows indexed by
 * (y, z)) of OccupancyGrid3D.
 */

#ifndef RTR_GRID_BITBOARD_H
#define RTR_GRID_BITBOARD_H

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace rtr {

/**
 * A dense 2-D bit array, row-major, 64 cells per word. Rows start on
 * word boundaries; the padding bits past `width` in each row's last
 * word are always zero, so whole-word scans and popcounts never need
 * per-row masking.
 */
class BitPlane
{
  public:
    BitPlane() = default;

    BitPlane(int width, int height) { reset(width, height); }

    /** Resize to width x height and clear every bit. */
    void
    reset(int width, int height)
    {
        width_ = width;
        height_ = height;
        words_per_row_ = (width + 63) >> 6;
        words_.assign(static_cast<std::size_t>(words_per_row_) * height, 0);
    }

    int width() const { return width_; }
    int height() const { return height_; }
    int wordsPerRow() const { return words_per_row_; }

    /** Read one bit; caller guarantees bounds. */
    bool
    test(int x, int y) const
    {
        return (words_[wordIndex(x, y)] >> (x & 63)) & 1u;
    }

    /** Write one bit; caller guarantees bounds. */
    void
    set(int x, int y, bool value)
    {
        const std::uint64_t mask = std::uint64_t{1} << (x & 63);
        std::uint64_t &word = words_[wordIndex(x, y)];
        if (value)
            word |= mask;
        else
            word &= ~mask;
    }

    /** Set or clear columns [x0, x1] (inclusive, in bounds) of a row. */
    void
    setRowSpan(int y, int x0, int x1, bool value)
    {
        const std::size_t row =
            static_cast<std::size_t>(y) * words_per_row_;
        const int w0 = x0 >> 6;
        const int w1 = x1 >> 6;
        for (int w = w0; w <= w1; ++w) {
            std::uint64_t mask = ~std::uint64_t{0};
            if (w == w0)
                mask &= ~std::uint64_t{0} << (x0 & 63);
            if (w == w1)
                mask &= ~std::uint64_t{0} >> (63 - (x1 & 63));
            if (value)
                words_[row + static_cast<std::size_t>(w)] |= mask;
            else
                words_[row + static_cast<std::size_t>(w)] &= ~mask;
        }
    }

    /** Whether any bit is set in columns [x0, x1] (inclusive) of row y. */
    bool
    anyInRowSpan(int y, int x0, int x1) const
    {
        return firstSetInRowSpan(y, x0, x1) >= 0;
    }

    /**
     * Smallest set column in [x0, x1] (inclusive, in bounds) of row y,
     * or -1 when the whole span is clear.
     */
    int
    firstSetInRowSpan(int y, int x0, int x1) const
    {
        const std::size_t row =
            static_cast<std::size_t>(y) * words_per_row_;
        const int w0 = x0 >> 6;
        const int w1 = x1 >> 6;
        for (int w = w0; w <= w1; ++w) {
            std::uint64_t word = words_[row + static_cast<std::size_t>(w)];
            if (w == w0)
                word &= ~std::uint64_t{0} << (x0 & 63);
            if (w == w1)
                word &= ~std::uint64_t{0} >> (63 - (x1 & 63));
            if (word)
                return (w << 6) + std::countr_zero(word);
        }
        return -1;
    }

    /**
     * Whether the 8x8-aligned block (bx, by) — columns [8bx, 8bx+7],
     * rows [8by, min(8by+7, height-1)] — is entirely clear. Because 8
     * divides 64, the eight columns always live in a single word, and
     * zero padding makes blocks overhanging the right edge behave as
     * if the outside were clear.
     */
    bool
    blockEmpty8(int bx, int by) const
    {
        const int x0 = bx << 3;
        const int y0 = by << 3;
        const int y1 = std::min(y0 + 7, height_ - 1);
        const std::size_t w = static_cast<std::size_t>(x0 >> 6);
        const int shift = x0 & 63;
        // Early exit on the first occupied row: a clear-path pyramid
        // repair asks this of mostly-occupied blocks, where the answer
        // is usually settled by row one of eight.
        for (int y = y0; y <= y1; ++y) {
            const std::uint64_t word =
                words_[static_cast<std::size_t>(y) * words_per_row_ + w];
            if ((word >> shift) & 0xFFu)
                return false;
        }
        return true;
    }

    /** Total number of set bits. */
    std::uint64_t
    countSet() const
    {
        std::uint64_t total = 0;
        for (std::uint64_t word : words_)
            total += static_cast<std::uint64_t>(std::popcount(word));
        return total;
    }

    /** Raw word storage (row-major, wordsPerRow() words per row). */
    const std::vector<std::uint64_t> &words() const { return words_; }

    /** Index into words() of the word holding column x of row y. */
    std::size_t
    wordIndex(int x, int y) const
    {
        return static_cast<std::size_t>(y) * words_per_row_ +
               static_cast<std::size_t>(x >> 6);
    }

    /** Read one raw word by index. */
    std::uint64_t word(std::size_t index) const { return words_[index]; }

    /**
     * Apply a batched edit to one word: clear the bits of @p clear_mask,
     * then set the bits of @p set_mask — one read-modify-write for any
     * number of single-bit edits that folded into the masks. Returns
     * the changed bits (old XOR new), which is what pyramid repair
     * needs to find its dirtied blocks.
     */
    std::uint64_t
    updateWord(std::size_t index, std::uint64_t set_mask,
               std::uint64_t clear_mask)
    {
        const std::uint64_t old = words_[index];
        const std::uint64_t updated = (old & ~clear_mask) | set_mask;
        words_[index] = updated;
        return old ^ updated;
    }

  private:
    int width_ = 0;
    int height_ = 0;
    int words_per_row_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace rtr

#endif // RTR_GRID_BITBOARD_H

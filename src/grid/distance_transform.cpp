#include "grid/distance_transform.h"

#include <algorithm>
#include <limits>

namespace rtr {

std::vector<double>
distanceTransform(const OccupancyGrid2D &grid)
{
    const int w = grid.width();
    const int h = grid.height();
    // Chamfer weights 3 (orthogonal) and 4 (diagonal) approximate
    // Euclidean distance with < 8% error; normalize by 3 at the end.
    const double kBig = std::numeric_limits<double>::max() / 4.0;
    std::vector<double> dist(static_cast<std::size_t>(w) * h, kBig);

    auto at = [&](int x, int y) -> double & {
        return dist[static_cast<std::size_t>(y) * w + x];
    };

    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            if (grid.occupiedUnchecked(x, y))
                at(x, y) = 0.0;
        }
    }

    // Forward pass (bottom-left to top-right).
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            double &d = at(x, y);
            if (x > 0)
                d = std::min(d, at(x - 1, y) + 3.0);
            if (y > 0) {
                d = std::min(d, at(x, y - 1) + 3.0);
                if (x > 0)
                    d = std::min(d, at(x - 1, y - 1) + 4.0);
                if (x + 1 < w)
                    d = std::min(d, at(x + 1, y - 1) + 4.0);
            }
        }
    }
    // Backward pass.
    for (int y = h - 1; y >= 0; --y) {
        for (int x = w - 1; x >= 0; --x) {
            double &d = at(x, y);
            if (x + 1 < w)
                d = std::min(d, at(x + 1, y) + 3.0);
            if (y + 1 < h) {
                d = std::min(d, at(x, y + 1) + 3.0);
                if (x + 1 < w)
                    d = std::min(d, at(x + 1, y + 1) + 4.0);
                if (x > 0)
                    d = std::min(d, at(x - 1, y + 1) + 4.0);
            }
        }
    }

    const double scale = grid.resolution() / 3.0;
    for (double &d : dist)
        d *= scale;
    return dist;
}

OccupancyGrid2D
inflate(const OccupancyGrid2D &grid, double radius)
{
    std::vector<double> dist = distanceTransform(grid);
    OccupancyGrid2D out(grid.width(), grid.height(), grid.resolution(),
                        grid.origin());
    for (int y = 0; y < grid.height(); ++y) {
        for (int x = 0; x < grid.width(); ++x) {
            if (dist[static_cast<std::size_t>(y) * grid.width() + x] <=
                radius)
                out.setOccupied(x, y, true);
        }
    }
    return out;
}

} // namespace rtr

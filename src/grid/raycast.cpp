#include "grid/raycast.h"

#include <algorithm>
#include <array>
#include <bit>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "util/parallel.h"
#include "util/simd.h"

namespace rtr {

namespace {

/** No-op counter so the uninstrumented casts pay nothing. */
struct NullCounter
{
    void step() {}
    void steps(std::uint64_t) {}
    void probe() {}
};

/** Accumulates into a RayCastStats. */
struct StatsCounter
{
    RayCastStats *stats;
    void step() { ++stats->steps; }
    void steps(std::uint64_t n) { stats->steps += n; }
    void probe() { ++stats->probes; }
};

/**
 * The one Amanatides-Woo stepping loop behind every engine. kHier
 * selects the pyramid fast path; the floating-point work (boundary
 * comparisons, t accumulation, the returned t) is textually shared, so
 * both instantiations produce bitwise-identical ranges.
 */
template <bool kHier, typename Counter>
double
castRayImpl(const OccupancyGrid2D &grid, const Vec2 &origin, double angle,
            double max_range, Counter counter)
{
    const double res = grid.resolution();
    const double dir_x = std::cos(angle);
    const double dir_y = std::sin(angle);

    Cell2 cell = grid.worldToCell(origin);
    counter.probe();
    if (kHier ? grid.occupied(cell.x, cell.y)
              : grid.occupiedByte(cell.x, cell.y))
        return 0.0;

    // Traversal setup: t measures world distance along the ray;
    // t_max_* is the distance at which the ray crosses the next cell
    // boundary on each axis; t_delta_* the distance between successive
    // crossings.
    const int step_x = dir_x > 0 ? 1 : (dir_x < 0 ? -1 : 0);
    const int step_y = dir_y > 0 ? 1 : (dir_y < 0 ? -1 : 0);

    const double inf = 1e300;
    double t_max_x = inf, t_delta_x = inf;
    if (step_x != 0) {
        double cell_edge = grid.origin().x +
                           (cell.x + (step_x > 0 ? 1 : 0)) * res;
        t_max_x = (cell_edge - origin.x) / dir_x;
        t_delta_x = res / std::abs(dir_x);
    }
    double t_max_y = inf, t_delta_y = inf;
    if (step_y != 0) {
        double cell_edge = grid.origin().y +
                           (cell.y + (step_y > 0 ? 1 : 0)) * res;
        t_max_y = (cell_edge - origin.y) / dir_y;
        t_delta_y = res / std::abs(dir_y);
    }

    // Hierarchical state: the traversal is certified probe-free until
    // one axis reaches its exit cell (the first cell OUTSIDE the
    // current proven-empty block along that axis' step direction).
    // Because cells advance by +-1, "left the block" is a single
    // equality test on whichever axis just stepped. kUnreachable marks
    // an axis that never steps (its t_max is pinned at infinity).
    constexpr int kUnreachable = INT_MIN;
    [[maybe_unused]] int exit_x =
        step_x != 0 ? cell.x + step_x : kUnreachable;
    [[maybe_unused]] int exit_y =
        step_y != 0 ? cell.y + step_y : kUnreachable;

    // Summary planes, hoisted so per-probe tests touch cached fields
    // instead of re-walking the pyramid vector. The ray-caster uses at
    // most two levels: 8- and 64-cell blocks already cover any sensor
    // range worth skipping.
    [[maybe_unused]] const BitPlane *l1 = nullptr;
    [[maybe_unused]] const BitPlane *l2 = nullptr;
    if constexpr (kHier) {
        if (grid.pyramidLevels() >= 1)
            l1 = &grid.pyramidLevel(1);
        if (grid.pyramidLevels() >= 2)
            l2 = &grid.pyramidLevel(2);
    }

    while (true) {
        double t;
        [[maybe_unused]] bool at_exit;
        if (t_max_x < t_max_y) {
            t = t_max_x;
            cell.x += step_x;
            t_max_x += t_delta_x;
            at_exit = cell.x == exit_x;
        } else {
            t = t_max_y;
            cell.y += step_y;
            t_max_y += t_delta_y;
            at_exit = cell.y == exit_y;
        }
        counter.step();
        if (t > max_range)
            return max_range;
        if constexpr (kHier) {
            if (!at_exit)
                continue;
            counter.probe();
            if (!grid.inBounds(cell.x, cell.y))
                return t;
            int shift = 0;
            if (l1 && !l1->test(cell.x >> 3, cell.y >> 3)) {
                // Level-1 block free; widen to level 2 when that block
                // is free too.
                shift = (l2 && !l2->test(cell.x >> 6, cell.y >> 6)) ? 6
                                                                    : 3;
            } else if (grid.occupiedUnchecked(cell.x, cell.y)) {
                return t;
            }
            if (shift == 0) {
                // No empty block here (or no pyramid at all): probe
                // again on the very next step of either axis.
                if (step_x != 0)
                    exit_x = cell.x + step_x;
                if (step_y != 0)
                    exit_y = cell.y + step_y;
                continue;
            }
            // Exit cells sit just past the block, clamped to the first
            // out-of-bounds coordinate: cells past the grid edge count
            // as occupied, so the ray must stop skipping and probe the
            // moment it leaves the grid.
            const int b0_x = (cell.x >> shift) << shift;
            const int b0_y = (cell.y >> shift) << shift;
            if (step_x > 0)
                exit_x = std::min(b0_x + (1 << shift), grid.width());
            else if (step_x < 0)
                exit_x = std::max(b0_x - 1, -1);
            if (step_y > 0)
                exit_y = std::min(b0_y + (1 << shift), grid.height());
            else if (step_y < 0)
                exit_y = std::max(b0_y - 1, -1);
        } else {
            // The reference engine probes the byte array — the exact
            // pre-bitboard path, so its cost profile (and the paper's
            // Table-I fractions) stay reproducible.
            counter.probe();
            if (grid.occupiedByte(cell.x, cell.y))
                return t;
        }
    }
}

using simd::VecD;

/** Rays per packet: one per simd::VecD lane. */
constexpr std::size_t kLanes = VecD::kWidth;

/** An all-ones lane mask as a double (what a true cmp lane holds). */
inline double
laneMaskOn()
{
    return std::bit_cast<double>(~std::uint64_t{0});
}

/**
 * Octant of a ray direction: sign of dx (bit 0), sign of dy (bit 1),
 * dominant axis (bit 2). Rays of one octant step through the pyramid
 * in the same pattern, so binning a scan by octant keeps packet lanes
 * coherent — shared block establishments, similar retirement times.
 */
inline int
octantKey(double dx, double dy)
{
    return (dx < 0.0 ? 1 : 0) | (dy < 0.0 ? 2 : 0) |
           (std::abs(dy) > std::abs(dx) ? 4 : 0);
}

/** Reusable per-thread buffers for the packet scan driver. */
struct PacketScratch
{
    std::vector<double> dir_x, dir_y;
    std::vector<int> order;
};

/**
 * Streaming ray-packet tracer: all @p n rays of a scan flow through
 * kLanes simd::VecD lanes. The per-lane arithmetic is castRayImpl's,
 * expression by expression — the DDA advance runs lane-parallel with
 * select(cmpGT) blends standing in for the scalar branches (a blend
 * keeps bitwise the value the taken scalar branch would have
 * produced), and cell/exit coordinates ride in lanes as exact small
 * integers in doubles. Two event tiers keep the state register-
 * resident:
 *
 *  - Probe events (a lane reached its block-exit cell): spill only
 *    cells and exits, run castRayImpl's probe/promotion block on the
 *    flagged lanes, reload the exit vectors.
 *  - Retirement (hit, out of bounds, or past max_range): write the
 *    finished lane's range to its output slot and REFILL the lane
 *    with the next ray of the scan (ray-queue style), so one long ray
 *    never leaves its packet mates idle. Only a refill pays the full
 *    state spill/reload, and refills happen once per ray.
 *
 * Rays are consumed in @p scratch.order (octant-binned), results land
 * at out[original index].
 */
template <typename Counter>
void
castPacketStream(const OccupancyGrid2D &grid, const Vec2 &origin,
                 const PacketScratch &scratch, std::size_t n,
                 double max_range, double *out, Counter &counter)
{
    const double res = grid.resolution();
    constexpr int kUnreachable = INT_MIN;
    const Cell2 cell0 = grid.worldToCell(origin);

    // SoA lane state; in memory only around events, register-resident
    // through the advance loop.
    alignas(32) double a_tmx[kLanes], a_tmy[kLanes];
    alignas(32) double a_tdx[kLanes], a_tdy[kLanes];
    alignas(32) double a_cx[kLanes], a_cy[kLanes];
    alignas(32) double a_sx[kLanes], a_sy[kLanes];
    alignas(32) double a_ex[kLanes], a_ey[kLanes];
    alignas(32) double a_act[kLanes];

    std::size_t next = 0;

    // The exact castRayImpl preamble for one ray, into lane l. False
    // when the ray retires at its origin (occupied or outside cell:
    // range 0.0 written immediately).
    auto setupLane = [&](std::size_t l, std::size_t ray) -> bool {
        counter.probe();
        if (grid.occupied(cell0.x, cell0.y)) {
            out[ray] = 0.0;
            return false;
        }
        const double dx = scratch.dir_x[ray];
        const double dy = scratch.dir_y[ray];
        const int step_x = dx > 0 ? 1 : (dx < 0 ? -1 : 0);
        const int step_y = dy > 0 ? 1 : (dy < 0 ? -1 : 0);
        const double inf = 1e300;
        double t_max_x = inf, t_delta_x = inf;
        if (step_x != 0) {
            double cell_edge = grid.origin().x +
                               (cell0.x + (step_x > 0 ? 1 : 0)) * res;
            t_max_x = (cell_edge - origin.x) / dx;
            t_delta_x = res / std::abs(dx);
        }
        double t_max_y = inf, t_delta_y = inf;
        if (step_y != 0) {
            double cell_edge = grid.origin().y +
                               (cell0.y + (step_y > 0 ? 1 : 0)) * res;
            t_max_y = (cell_edge - origin.y) / dy;
            t_delta_y = res / std::abs(dy);
        }
        a_tmx[l] = t_max_x;
        a_tmy[l] = t_max_y;
        a_tdx[l] = t_delta_x;
        a_tdy[l] = t_delta_y;
        a_cx[l] = static_cast<double>(cell0.x);
        a_cy[l] = static_cast<double>(cell0.y);
        a_sx[l] = static_cast<double>(step_x);
        a_sy[l] = static_cast<double>(step_y);
        a_ex[l] = static_cast<double>(
            step_x != 0 ? cell0.x + step_x : kUnreachable);
        a_ey[l] = static_cast<double>(
            step_y != 0 ? cell0.y + step_y : kUnreachable);
        a_act[l] = laneMaskOn();
        return true;
    };

    int lane_ray[kLanes]; // output slot of each lane's ray, -1 = none

    // Pull rays (in octant order) until one survives setup; when the
    // scan runs dry the lane parks with benign state: t_max pinned at
    // 1e300 with zero deltas and steps, exits unreachable — it blends
    // through the advance loop without ever raising an event.
    auto refillLane = [&](std::size_t l) {
        while (next < n) {
            const auto ray =
                static_cast<std::size_t>(scratch.order[next++]);
            if (setupLane(l, ray)) {
                lane_ray[l] = static_cast<int>(ray);
                return;
            }
        }
        lane_ray[l] = -1;
        a_tmx[l] = a_tmy[l] = 1e300;
        a_tdx[l] = a_tdy[l] = 0.0;
        a_cx[l] = a_cy[l] = 0.0;
        a_sx[l] = a_sy[l] = 0.0;
        a_ex[l] = a_ey[l] = static_cast<double>(kUnreachable);
        a_act[l] = 0.0;
    };

    for (std::size_t l = 0; l < kLanes; ++l)
        refillLane(l);

    const BitPlane *l1 = nullptr;
    const BitPlane *l2 = nullptr;
    if (grid.pyramidLevels() >= 1)
        l1 = &grid.pyramidLevel(1);
    if (grid.pyramidLevels() >= 2)
        l2 = &grid.pyramidLevel(2);

    VecD tmx = VecD::load(a_tmx), tmy = VecD::load(a_tmy);
    VecD tdx = VecD::load(a_tdx), tdy = VecD::load(a_tdy);
    VecD cell_x = VecD::load(a_cx), cell_y = VecD::load(a_cy);
    VecD step_x = VecD::load(a_sx), step_y = VecD::load(a_sy);
    VecD exit_x = VecD::load(a_ex), exit_y = VecD::load(a_ey);
    VecD active = VecD::load(a_act);
    const VecD maxr = VecD::broadcast(max_range);

    int act_bits = VecD::signMask(active);
    while (act_bits != 0) {
        // Lane-parallel DDA step. maskX is the scalar `t_max_x <
        // t_max_y` (ties step y, exactly like the scalar else-branch);
        // each blend keeps, per lane, bitwise the value the taken
        // scalar branch computes and leaves the other accumulator
        // untouched. t comes from the pre-increment t_max, like the
        // scalar engine's.
        const VecD maskX = VecD::cmpGT(tmy, tmx);
        const VecD t = VecD::select(maskX, tmx, tmy);
        cell_x = VecD::select(maskX, cell_x + step_x, cell_x);
        cell_y = VecD::select(maskX, cell_y, cell_y + step_y);
        tmx = VecD::select(maskX, tmx + tdx, tmx);
        tmy = VecD::select(maskX, tmy, tmy + tdy);
        counter.steps(static_cast<std::uint64_t>(
            std::popcount(static_cast<unsigned>(act_bits))));

        // Event masks. `over` is the scalar `t > max_range` return
        // (checked before the probe, like the scalar engine); at_exit
        // tests only the axis that just stepped — the same single
        // equality as the scalar fast path.
        const VecD over = VecD::bitAnd(VecD::cmpGT(t, maxr), active);
        const VecD at_exit =
            VecD::select(maskX, VecD::cmpEQ(cell_x, exit_x),
                         VecD::cmpEQ(cell_y, exit_y));
        const VecD event =
            VecD::bitOr(over, VecD::bitAnd(at_exit, active));
        int event_bits = VecD::signMask(event);
        if (event_bits == 0)
            continue;

        // Light spill: the probe block needs cells, exits, and per-
        // lane t. The FP traversal state spills lazily, only when a
        // lane actually retires and a new ray must be seated.
        alignas(32) double l_t[kLanes];
        t.store(l_t);
        cell_x.store(a_cx);
        cell_y.store(a_cy);
        exit_x.store(a_ex);
        exit_y.store(a_ey);
        const int over_bits = VecD::signMask(over);
        bool refilled = false;
        auto retire = [&](std::size_t l, double range) {
            out[static_cast<std::size_t>(lane_ray[l])] = range;
            if (!refilled) {
                tmx.store(a_tmx);
                tmy.store(a_tmy);
                tdx.store(a_tdx);
                tdy.store(a_tdy);
                step_x.store(a_sx);
                step_y.store(a_sy);
                refilled = true;
            }
            refillLane(l);
        };
        while (event_bits != 0) {
            const auto l = static_cast<std::size_t>(
                std::countr_zero(static_cast<unsigned>(event_bits)));
            event_bits &= event_bits - 1;
            if ((over_bits >> l) & 1) {
                retire(l, max_range);
                continue;
            }
            // castRayImpl's probe/promotion block, verbatim.
            counter.probe();
            const int x = static_cast<int>(a_cx[l]);
            const int y = static_cast<int>(a_cy[l]);
            if (!grid.inBounds(x, y)) {
                retire(l, l_t[l]);
                continue;
            }
            int shift = 0;
            if (l1 && !l1->test(x >> 3, y >> 3)) {
                shift = (l2 && !l2->test(x >> 6, y >> 6)) ? 6 : 3;
            } else if (grid.occupiedUnchecked(x, y)) {
                retire(l, l_t[l]);
                continue;
            }
            if (shift == 0) {
                if (a_sx[l] != 0.0)
                    a_ex[l] = a_cx[l] + a_sx[l];
                if (a_sy[l] != 0.0)
                    a_ey[l] = a_cy[l] + a_sy[l];
                continue;
            }
            const int b0_x = (x >> shift) << shift;
            const int b0_y = (y >> shift) << shift;
            if (a_sx[l] > 0.0)
                a_ex[l] = static_cast<double>(
                    std::min(b0_x + (1 << shift), grid.width()));
            else if (a_sx[l] < 0.0)
                a_ex[l] = static_cast<double>(std::max(b0_x - 1, -1));
            if (a_sy[l] > 0.0)
                a_ey[l] = static_cast<double>(
                    std::min(b0_y + (1 << shift), grid.height()));
            else if (a_sy[l] < 0.0)
                a_ey[l] = static_cast<double>(std::max(b0_y - 1, -1));
        }
        exit_x = VecD::load(a_ex);
        exit_y = VecD::load(a_ey);
        if (refilled) {
            tmx = VecD::load(a_tmx);
            tmy = VecD::load(a_tmy);
            tdx = VecD::load(a_tdx);
            tdy = VecD::load(a_tdy);
            cell_x = VecD::load(a_cx);
            cell_y = VecD::load(a_cy);
            step_x = VecD::load(a_sx);
            step_y = VecD::load(a_sy);
            active = VecD::load(a_act);
            act_bits = VecD::signMask(active);
        }
    }
}

/**
 * The packet scan driver: bin @p n_rays rays (shared origin, one
 * angle each) by octant, then stream them through the packet tracer
 * in octant order. Results land in out[i] in original ray order.
 */
template <typename Counter>
void
castScanPacketImpl(const OccupancyGrid2D &grid, const Vec2 &origin,
                   const double *angles, int n_rays, double max_range,
                   double *out, Counter counter, PacketScratch &scratch)
{
    if (n_rays <= 0)
        return;
    const std::size_t n = static_cast<std::size_t>(n_rays);
    scratch.dir_x.resize(n);
    scratch.dir_y.resize(n);
    scratch.order.resize(n);
    int counts[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (std::size_t i = 0; i < n; ++i) {
        // The same cos/sin(angle) castRayImpl evaluates — computed
        // once here, reused for binning and tracing.
        scratch.dir_x[i] = std::cos(angles[i]);
        scratch.dir_y[i] = std::sin(angles[i]);
        ++counts[octantKey(scratch.dir_x[i], scratch.dir_y[i])];
    }
    int offsets[8];
    int running = 0;
    for (int k = 0; k < 8; ++k) {
        offsets[k] = running;
        running += counts[k];
    }
    for (std::size_t i = 0; i < n; ++i) {
        const int key = octantKey(scratch.dir_x[i], scratch.dir_y[i]);
        scratch.order[static_cast<std::size_t>(offsets[key]++)] =
            static_cast<int>(i);
    }
    castPacketStream(grid, origin, scratch, n, max_range, out, counter);
}

} // namespace

double
castRay(const OccupancyGrid2D &grid, const Vec2 &origin, double angle,
        double max_range)
{
    return castRayImpl<true>(grid, origin, angle, max_range, NullCounter{});
}

double
castRayScalar(const OccupancyGrid2D &grid, const Vec2 &origin, double angle,
              double max_range)
{
    return castRayImpl<false>(grid, origin, angle, max_range,
                              NullCounter{});
}

double
castRayCounted(const OccupancyGrid2D &grid, const Vec2 &origin, double angle,
               double max_range, RayCastStats &stats)
{
    return castRayImpl<true>(grid, origin, angle, max_range,
                             StatsCounter{&stats});
}

double
castRayScalarCounted(const OccupancyGrid2D &grid, const Vec2 &origin,
                     double angle, double max_range, RayCastStats &stats)
{
    return castRayImpl<false>(grid, origin, angle, max_range,
                              StatsCounter{&stats});
}

const char *
rayEngineName(RayEngine engine)
{
    switch (engine) {
    case RayEngine::Hierarchical:
        return "hier";
    case RayEngine::Scalar:
        return "scalar";
    case RayEngine::Packet:
        return "packet";
    }
    return "?";
}

bool
parseRayEngine(std::string_view name, RayEngine &out)
{
    if (name == "hier") {
        out = RayEngine::Hierarchical;
        return true;
    }
    if (name == "scalar") {
        out = RayEngine::Scalar;
        return true;
    }
    if (name == "packet") {
        out = RayEngine::Packet;
        return true;
    }
    return false;
}

RayEngine
defaultRayEngine()
{
    static const RayEngine engine = [] {
        // Hierarchical unless RTR_RAYCAST overrides: packet and hier
        // both lose wall-clock to scalar on this host's benchmark
        // maps (prefetcher-fed probes, short pyramid strides — see
        // EXPERIMENTS.md "Ray-cast engine"), and hier is the engine
        // whose probe elision pays on the cache-constrained targets
        // the paper studies.
        const char *env = std::getenv("RTR_RAYCAST");
        if (env == nullptr || *env == '\0')
            return RayEngine::Hierarchical;
        RayEngine parsed;
        if (!parseRayEngine(env, parsed)) {
            // Exit 2 (not fatal()'s 1): a configuration error, not a
            // runtime failure — and a silently ignored typo would
            // quietly benchmark the wrong engine.
            std::cerr << "RTR_RAYCAST=" << env
                      << " is not a ray engine (expected packet, hier or "
                         "scalar)\n";
            std::exit(2);
        }
        return parsed;
    }();
    return engine;
}

void
castScan(const OccupancyGrid2D &grid, const Vec2 &origin, double start_angle,
         double fov, int n_rays, double max_range, std::vector<double> &out,
         RayEngine engine)
{
    out.clear();
    out.resize(static_cast<std::size_t>(n_rays > 0 ? n_rays : 0));
    const double step = n_rays > 1 ? fov / n_rays : 0.0;
    if (engine == RayEngine::Packet) {
        std::vector<double> angles(out.size());
        for (int i = 0; i < n_rays; ++i)
            angles[static_cast<std::size_t>(i)] = start_angle + i * step;
        PacketScratch scratch;
        castScanPacketImpl(grid, origin, angles.data(), n_rays, max_range,
                           out.data(), NullCounter{}, scratch);
    } else if (engine == RayEngine::Hierarchical) {
        for (int i = 0; i < n_rays; ++i)
            out[static_cast<std::size_t>(i)] = castRay(
                grid, origin, start_angle + i * step, max_range);
    } else {
        for (int i = 0; i < n_rays; ++i)
            out[static_cast<std::size_t>(i)] = castRayScalar(
                grid, origin, start_angle + i * step, max_range);
    }
}

void
castScanCounted(const OccupancyGrid2D &grid, const Vec2 &origin,
                double start_angle, double fov, int n_rays, double max_range,
                std::vector<double> &out, RayEngine engine,
                RayCastStats &stats)
{
    out.clear();
    out.resize(static_cast<std::size_t>(n_rays > 0 ? n_rays : 0));
    const double step = n_rays > 1 ? fov / n_rays : 0.0;
    if (engine == RayEngine::Packet) {
        std::vector<double> angles(out.size());
        for (int i = 0; i < n_rays; ++i)
            angles[static_cast<std::size_t>(i)] = start_angle + i * step;
        PacketScratch scratch;
        castScanPacketImpl(grid, origin, angles.data(), n_rays, max_range,
                           out.data(), StatsCounter{&stats}, scratch);
    } else if (engine == RayEngine::Hierarchical) {
        for (int i = 0; i < n_rays; ++i)
            out[static_cast<std::size_t>(i)] = castRayCounted(
                grid, origin, start_angle + i * step, max_range, stats);
    } else {
        for (int i = 0; i < n_rays; ++i)
            out[static_cast<std::size_t>(i)] = castRayScalarCounted(
                grid, origin, start_angle + i * step, max_range, stats);
    }
}

void
castScanBatch(const OccupancyGrid2D &grid, const std::vector<Pose2> &poses,
              double start_angle, double fov, int n_beams, double max_range,
              std::vector<double> &out, RayEngine engine)
{
    const std::size_t beams =
        static_cast<std::size_t>(n_beams > 0 ? n_beams : 0);
    const std::size_t n_poses = poses.size();
    out.resize(n_poses * beams);
    if (beams == 0)
        return;
    const double beam_step =
        n_beams > 1 ? fov / static_cast<double>(n_beams) : 0.0;
    if (engine == RayEngine::Packet) {
        parallelForChunks(0, n_poses, 0, [&](const ChunkRange &chunk) {
            // Per-chunk scratch: the angle buffer and octant ordering
            // are reused across the chunk's poses, never shared across
            // threads.
            PacketScratch scratch;
            std::vector<double> angles(beams);
            for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
                const Pose2 &pose = poses[i];
                for (std::size_t b = 0; b < beams; ++b)
                    angles[b] = pose.theta + start_angle +
                                static_cast<double>(b) * beam_step;
                castScanPacketImpl(grid, pose.position(), angles.data(),
                                   n_beams, max_range,
                                   out.data() + i * beams, NullCounter{},
                                   scratch);
            }
        });
        return;
    }
    parallelForChunks(0, n_poses, 0, [&](const ChunkRange &chunk) {
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
            const Pose2 &pose = poses[i];
            double *ranges = out.data() + i * beams;
            for (std::size_t b = 0; b < beams; ++b) {
                double ray_angle = pose.theta + start_angle +
                                   static_cast<double>(b) * beam_step;
                ranges[b] =
                    engine == RayEngine::Hierarchical
                        ? castRay(grid, pose.position(), ray_angle,
                                  max_range)
                        : castRayScalar(grid, pose.position(), ray_angle,
                                        max_range);
            }
        }
    });
}

double
castRayReference(const OccupancyGrid2D &grid, const Vec2 &origin,
                 double angle, double max_range)
{
    const double step = grid.resolution() * 0.02;
    const Vec2 dir{std::cos(angle), std::sin(angle)};
    for (double t = 0.0; t <= max_range; t += step) {
        if (grid.occupiedWorld(origin + dir * t))
            return t;
    }
    return max_range;
}

} // namespace rtr

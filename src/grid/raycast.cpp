#include "grid/raycast.h"

#include <algorithm>
#include <climits>
#include <cmath>

#include "util/parallel.h"

namespace rtr {

namespace {

/** No-op counter so the uninstrumented casts pay nothing. */
struct NullCounter
{
    void step() {}
    void probe() {}
};

/** Accumulates into a RayCastStats. */
struct StatsCounter
{
    RayCastStats *stats;
    void step() { ++stats->steps; }
    void probe() { ++stats->probes; }
};

/**
 * The one Amanatides-Woo stepping loop behind every engine. kHier
 * selects the pyramid fast path; the floating-point work (boundary
 * comparisons, t accumulation, the returned t) is textually shared, so
 * both instantiations produce bitwise-identical ranges.
 */
template <bool kHier, typename Counter>
double
castRayImpl(const OccupancyGrid2D &grid, const Vec2 &origin, double angle,
            double max_range, Counter counter)
{
    const double res = grid.resolution();
    const double dir_x = std::cos(angle);
    const double dir_y = std::sin(angle);

    Cell2 cell = grid.worldToCell(origin);
    counter.probe();
    if (kHier ? grid.occupied(cell.x, cell.y)
              : grid.occupiedByte(cell.x, cell.y))
        return 0.0;

    // Traversal setup: t measures world distance along the ray;
    // t_max_* is the distance at which the ray crosses the next cell
    // boundary on each axis; t_delta_* the distance between successive
    // crossings.
    const int step_x = dir_x > 0 ? 1 : (dir_x < 0 ? -1 : 0);
    const int step_y = dir_y > 0 ? 1 : (dir_y < 0 ? -1 : 0);

    const double inf = 1e300;
    double t_max_x = inf, t_delta_x = inf;
    if (step_x != 0) {
        double cell_edge = grid.origin().x +
                           (cell.x + (step_x > 0 ? 1 : 0)) * res;
        t_max_x = (cell_edge - origin.x) / dir_x;
        t_delta_x = res / std::abs(dir_x);
    }
    double t_max_y = inf, t_delta_y = inf;
    if (step_y != 0) {
        double cell_edge = grid.origin().y +
                           (cell.y + (step_y > 0 ? 1 : 0)) * res;
        t_max_y = (cell_edge - origin.y) / dir_y;
        t_delta_y = res / std::abs(dir_y);
    }

    // Hierarchical state: the traversal is certified probe-free until
    // one axis reaches its exit cell (the first cell OUTSIDE the
    // current proven-empty block along that axis' step direction).
    // Because cells advance by +-1, "left the block" is a single
    // equality test on whichever axis just stepped. kUnreachable marks
    // an axis that never steps (its t_max is pinned at infinity).
    constexpr int kUnreachable = INT_MIN;
    [[maybe_unused]] int exit_x =
        step_x != 0 ? cell.x + step_x : kUnreachable;
    [[maybe_unused]] int exit_y =
        step_y != 0 ? cell.y + step_y : kUnreachable;

    // Summary planes, hoisted so per-probe tests touch cached fields
    // instead of re-walking the pyramid vector. The ray-caster uses at
    // most two levels: 8- and 64-cell blocks already cover any sensor
    // range worth skipping.
    [[maybe_unused]] const BitPlane *l1 = nullptr;
    [[maybe_unused]] const BitPlane *l2 = nullptr;
    if constexpr (kHier) {
        if (grid.pyramidLevels() >= 1)
            l1 = &grid.pyramidLevel(1);
        if (grid.pyramidLevels() >= 2)
            l2 = &grid.pyramidLevel(2);
    }

    while (true) {
        double t;
        [[maybe_unused]] bool at_exit;
        if (t_max_x < t_max_y) {
            t = t_max_x;
            cell.x += step_x;
            t_max_x += t_delta_x;
            at_exit = cell.x == exit_x;
        } else {
            t = t_max_y;
            cell.y += step_y;
            t_max_y += t_delta_y;
            at_exit = cell.y == exit_y;
        }
        counter.step();
        if (t > max_range)
            return max_range;
        if constexpr (kHier) {
            if (!at_exit)
                continue;
            counter.probe();
            if (!grid.inBounds(cell.x, cell.y))
                return t;
            int shift = 0;
            if (l1 && !l1->test(cell.x >> 3, cell.y >> 3)) {
                // Level-1 block free; widen to level 2 when that block
                // is free too.
                shift = (l2 && !l2->test(cell.x >> 6, cell.y >> 6)) ? 6
                                                                    : 3;
            } else if (grid.occupiedUnchecked(cell.x, cell.y)) {
                return t;
            }
            if (shift == 0) {
                // No empty block here (or no pyramid at all): probe
                // again on the very next step of either axis.
                if (step_x != 0)
                    exit_x = cell.x + step_x;
                if (step_y != 0)
                    exit_y = cell.y + step_y;
                continue;
            }
            // Exit cells sit just past the block, clamped to the first
            // out-of-bounds coordinate: cells past the grid edge count
            // as occupied, so the ray must stop skipping and probe the
            // moment it leaves the grid.
            const int b0_x = (cell.x >> shift) << shift;
            const int b0_y = (cell.y >> shift) << shift;
            if (step_x > 0)
                exit_x = std::min(b0_x + (1 << shift), grid.width());
            else if (step_x < 0)
                exit_x = std::max(b0_x - 1, -1);
            if (step_y > 0)
                exit_y = std::min(b0_y + (1 << shift), grid.height());
            else if (step_y < 0)
                exit_y = std::max(b0_y - 1, -1);
        } else {
            // The reference engine probes the byte array — the exact
            // pre-bitboard path, so its cost profile (and the paper's
            // Table-I fractions) stay reproducible.
            counter.probe();
            if (grid.occupiedByte(cell.x, cell.y))
                return t;
        }
    }
}

} // namespace

double
castRay(const OccupancyGrid2D &grid, const Vec2 &origin, double angle,
        double max_range)
{
    return castRayImpl<true>(grid, origin, angle, max_range, NullCounter{});
}

double
castRayScalar(const OccupancyGrid2D &grid, const Vec2 &origin, double angle,
              double max_range)
{
    return castRayImpl<false>(grid, origin, angle, max_range,
                              NullCounter{});
}

double
castRayCounted(const OccupancyGrid2D &grid, const Vec2 &origin, double angle,
               double max_range, RayCastStats &stats)
{
    return castRayImpl<true>(grid, origin, angle, max_range,
                             StatsCounter{&stats});
}

double
castRayScalarCounted(const OccupancyGrid2D &grid, const Vec2 &origin,
                     double angle, double max_range, RayCastStats &stats)
{
    return castRayImpl<false>(grid, origin, angle, max_range,
                              StatsCounter{&stats});
}

void
castScan(const OccupancyGrid2D &grid, const Vec2 &origin, double start_angle,
         double fov, int n_rays, double max_range, std::vector<double> &out,
         RayEngine engine)
{
    out.clear();
    out.reserve(static_cast<std::size_t>(n_rays > 0 ? n_rays : 0));
    const double step = n_rays > 1 ? fov / n_rays : 0.0;
    if (engine == RayEngine::Hierarchical) {
        for (int i = 0; i < n_rays; ++i)
            out.push_back(castRay(grid, origin, start_angle + i * step,
                                  max_range));
    } else {
        for (int i = 0; i < n_rays; ++i)
            out.push_back(castRayScalar(grid, origin,
                                        start_angle + i * step, max_range));
    }
}

void
castScanBatch(const OccupancyGrid2D &grid, const std::vector<Pose2> &poses,
              double start_angle, double fov, int n_beams, double max_range,
              std::vector<double> &out, RayEngine engine)
{
    const std::size_t beams =
        static_cast<std::size_t>(n_beams > 0 ? n_beams : 0);
    const std::size_t n_poses = poses.size();
    out.resize(n_poses * beams);
    if (beams == 0)
        return;
    const double beam_step =
        n_beams > 1 ? fov / static_cast<double>(n_beams) : 0.0;
    parallelForChunks(0, n_poses, 0, [&](const ChunkRange &chunk) {
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
            const Pose2 &pose = poses[i];
            double *ranges = out.data() + i * beams;
            for (std::size_t b = 0; b < beams; ++b) {
                double ray_angle = pose.theta + start_angle +
                                   static_cast<double>(b) * beam_step;
                ranges[b] =
                    engine == RayEngine::Hierarchical
                        ? castRay(grid, pose.position(), ray_angle,
                                  max_range)
                        : castRayScalar(grid, pose.position(), ray_angle,
                                        max_range);
            }
        }
    });
}

double
castRayReference(const OccupancyGrid2D &grid, const Vec2 &origin,
                 double angle, double max_range)
{
    const double step = grid.resolution() * 0.02;
    const Vec2 dir{std::cos(angle), std::sin(angle)};
    for (double t = 0.0; t <= max_range; t += step) {
        if (grid.occupiedWorld(origin + dir * t))
            return t;
    }
    return max_range;
}

} // namespace rtr

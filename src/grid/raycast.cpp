#include "grid/raycast.h"

#include <cmath>

namespace rtr {

double
castRay(const OccupancyGrid2D &grid, const Vec2 &origin, double angle,
        double max_range)
{
    const double res = grid.resolution();
    const double dir_x = std::cos(angle);
    const double dir_y = std::sin(angle);

    Cell2 cell = grid.worldToCell(origin);
    if (grid.occupied(cell.x, cell.y))
        return 0.0;

    // Amanatides-Woo traversal setup: t measures world distance along
    // the ray; t_max_* is the distance at which the ray crosses the next
    // cell boundary on each axis; t_delta_* the distance between
    // successive crossings.
    const int step_x = dir_x > 0 ? 1 : (dir_x < 0 ? -1 : 0);
    const int step_y = dir_y > 0 ? 1 : (dir_y < 0 ? -1 : 0);

    const double inf = 1e300;
    double t_max_x = inf, t_delta_x = inf;
    if (step_x != 0) {
        double cell_edge = grid.origin().x +
                           (cell.x + (step_x > 0 ? 1 : 0)) * res;
        t_max_x = (cell_edge - origin.x) / dir_x;
        t_delta_x = res / std::abs(dir_x);
    }
    double t_max_y = inf, t_delta_y = inf;
    if (step_y != 0) {
        double cell_edge = grid.origin().y +
                           (cell.y + (step_y > 0 ? 1 : 0)) * res;
        t_max_y = (cell_edge - origin.y) / dir_y;
        t_delta_y = res / std::abs(dir_y);
    }

    while (true) {
        double t;
        if (t_max_x < t_max_y) {
            t = t_max_x;
            cell.x += step_x;
            t_max_x += t_delta_x;
        } else {
            t = t_max_y;
            cell.y += step_y;
            t_max_y += t_delta_y;
        }
        if (t > max_range)
            return max_range;
        if (grid.occupied(cell.x, cell.y))
            return t;
    }
}

void
castScan(const OccupancyGrid2D &grid, const Vec2 &origin, double start_angle,
         double fov, int n_rays, double max_range, std::vector<double> &out)
{
    out.clear();
    out.reserve(static_cast<std::size_t>(n_rays > 0 ? n_rays : 0));
    const double step = n_rays > 1 ? fov / n_rays : 0.0;
    for (int i = 0; i < n_rays; ++i)
        out.push_back(castRay(grid, origin, start_angle + i * step,
                              max_range));
}

double
castRayReference(const OccupancyGrid2D &grid, const Vec2 &origin,
                 double angle, double max_range)
{
    const double step = grid.resolution() * 0.02;
    const Vec2 dir{std::cos(angle), std::sin(angle)};
    for (double t = 0.0; t <= max_range; t += step) {
        if (grid.occupiedWorld(origin + dir * t))
            return t;
    }
    return max_range;
}

} // namespace rtr

#include "grid/map_gen.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace rtr {

namespace {

/** Fill a solid rectangle of cells. */
void
fillRect(OccupancyGrid2D &grid, int x0, int y0, int x1, int y1,
         bool value = true)
{
    grid.setRect(x0, y0, x1, y1, value);
}

/** Draw a 1-cell-thick rectangle outline. */
void
outlineRect(OccupancyGrid2D &grid, int x0, int y0, int x1, int y1)
{
    grid.setRect(x0, y0, x1, y0, true);
    grid.setRect(x0, y1, x1, y1, true);
    grid.setRect(x0, y0, x0, y1, true);
    grid.setRect(x1, y0, x1, y1, true);
}

} // namespace

OccupancyGrid2D
makeIndoorMap(int width, int height, double resolution, std::uint64_t seed)
{
    RTR_ASSERT(width >= 40 && height >= 40, "indoor map too small");
    OccupancyGrid2D grid(width, height, resolution);
    Rng rng(seed);

    outlineRect(grid, 0, 0, width - 1, height - 1);

    // Central horizontal corridor spine.
    const int corridor_half = std::max(2, height / 20);
    const int corridor_lo = height / 2 - corridor_half;
    const int corridor_hi = height / 2 + corridor_half;

    // Rooms along each side of the corridor. The two sides progress
    // independently (misaligned walls) and room geometry varies, so the
    // building is not translationally self-similar — a real floor plan
    // property global localization depends on.
    auto build_side = [&](bool lower) {
        int wall_y = lower ? corridor_lo : corridor_hi;
        int room_lo_y = lower ? 1 : corridor_hi + 1;
        int room_hi_y = lower ? corridor_lo - 1 : height - 2;
        int x = 1;
        while (x < width - 8) {
            int room_w = static_cast<int>(rng.intRange(7, 26));
            int room_end = std::min(x + room_w, width - 2);
            // Variable room depth: an inner back wall.
            int depth =
                static_cast<int>(rng.intRange(4, std::max<std::int64_t>(
                                                     5, room_hi_y -
                                                            room_lo_y)));
            int back_y = lower ? std::max(room_lo_y, wall_y - depth)
                               : std::min(room_hi_y, wall_y + depth);
            for (int cx = x; cx <= room_end; ++cx)
                grid.setOccupied(cx, back_y, true);

            // Wall between this room and the next.
            for (int y = room_lo_y; y <= room_hi_y; ++y)
                grid.setOccupied(room_end, y, true);

            // Wall along the corridor with a door gap of varying width.
            int door = x + static_cast<int>(
                               rng.intRange(2, std::max<std::int64_t>(
                                                   3, room_w - 3)));
            door = std::min(door, room_end - 1);
            int door_half = rng.chance(0.3) ? 2 : 1;
            for (int cx = x; cx <= room_end; ++cx) {
                if (std::abs(cx - door) <= door_half)
                    continue;
                grid.setOccupied(cx, wall_y, true);
            }

            // Occasional pillar clutter inside the room.
            if (rng.chance(0.5)) {
                int px = x + 1 +
                         static_cast<int>(rng.index(std::max(
                             1, room_end - x - 2)));
                int py = std::min(room_lo_y, room_hi_y) + 1 +
                         static_cast<int>(rng.index(std::max(
                             1, std::abs(room_hi_y - room_lo_y) - 2)));
                fillRect(grid, px, py, px + 1, py + 1);
            }
            x = room_end + 1;
        }
    };
    build_side(true);
    build_side(false);

    // A few cross corridors punching through the room banks, placed
    // irregularly — strong global landmarks.
    int n_cross = std::max(2, width / 80);
    for (int c = 0; c < n_cross; ++c) {
        int cx = static_cast<int>(
            rng.intRange(width / 8, width - width / 8));
        int half = std::max(1, height / 50);
        fillRect(grid, cx - half, 1, cx + half, height - 2, false);
        // Keep the outer walls intact.
        for (int dx = -half; dx <= half; ++dx) {
            grid.setOccupied(cx + dx, 0, true);
            grid.setOccupied(cx + dx, height - 1, true);
        }
    }
    return grid;
}

OccupancyGrid2D
makeCityMap(int size, double resolution, std::uint64_t seed)
{
    RTR_ASSERT(size >= 64, "city map too small");
    OccupancyGrid2D grid(size, size, resolution);
    Rng rng(seed);

    // Street grid: free lanes at randomized intervals; buildings fill
    // the blocks with random insets so facades are irregular like a real
    // city snapshot.
    std::vector<int> x_streets{0};
    int pos = 0;
    while (pos < size) {
        pos += static_cast<int>(rng.intRange(24, 48));
        if (pos < size)
            x_streets.push_back(pos);
    }
    std::vector<int> y_streets{0};
    pos = 0;
    while (pos < size) {
        pos += static_cast<int>(rng.intRange(24, 48));
        if (pos < size)
            y_streets.push_back(pos);
    }
    // Streets are ~4 m wide in world units regardless of grid size, so
    // a car-sized footprint always fits.
    const int street_w =
        std::max(4, static_cast<int>(std::ceil(4.0 / resolution)));

    for (std::size_t bi = 0; bi + 1 <= x_streets.size(); ++bi) {
        int bx0 = x_streets[bi] + street_w;
        int bx1 = (bi + 1 < x_streets.size() ? x_streets[bi + 1]
                                             : size) - 1;
        if (bx0 >= bx1)
            continue;
        for (std::size_t bj = 0; bj + 1 <= y_streets.size(); ++bj) {
            int by0 = y_streets[bj] + street_w;
            int by1 = (bj + 1 < y_streets.size() ? y_streets[bj + 1]
                                                 : size) - 1;
            if (by0 >= by1)
                continue;
            if (rng.chance(0.1))
                continue;  // park / plaza: leave the block open
            // Between one and four buildings per block with insets.
            int n_buildings = static_cast<int>(rng.intRange(1, 4));
            for (int b = 0; b < n_buildings; ++b) {
                int w = bx1 - bx0, h = by1 - by0;
                if (w < 6 || h < 6)
                    break;
                int ox = bx0 + static_cast<int>(rng.index(std::max(1, w / 2)));
                int oy = by0 + static_cast<int>(rng.index(std::max(1, h / 2)));
                int bw = static_cast<int>(rng.intRange(4, std::max<std::int64_t>(5, w - 2)));
                int bh = static_cast<int>(rng.intRange(4, std::max<std::int64_t>(5, h - 2)));
                fillRect(grid, ox, oy, std::min(ox + bw, bx1),
                         std::min(oy + bh, by1));
            }
        }
    }
    return grid;
}

OccupancyGrid2D
makePRobMap(int scale)
{
    RTR_ASSERT(scale >= 1, "scale must be >= 1");
    // Native environment: coordinates -10..60 (71 cells at 1m), border
    // walls, one wall at x=20 rising from the bottom to y=40, another at
    // x=40 descending from the top to y=20 (the classic a_star.py demo).
    const int n = 71;
    OccupancyGrid2D base(n, n, 1.0, Vec2{-10.0, -10.0});
    for (int i = 0; i < n; ++i) {
        base.setOccupied(i, 0, true);
        base.setOccupied(i, n - 1, true);
        base.setOccupied(0, i, true);
        base.setOccupied(n - 1, i, true);
    }
    for (int y = 0; y <= 50; ++y)          // world y in -10..40
        base.setOccupied(30, y, true);     // world x = 20
    for (int y = 30; y < n; ++y)           // world y in 20..60
        base.setOccupied(50, y, true);     // world x = 40
    if (scale == 1)
        return base;
    return scaleMap(base, scale);
}

OccupancyGrid2D
makeRandomObstacleMap(int width, int height, double density,
                      std::uint64_t seed)
{
    OccupancyGrid2D grid(width, height, 1.0);
    Rng rng(seed);
    outlineRect(grid, 0, 0, width - 1, height - 1);

    double target = density * width * height;
    double placed = 0;
    while (placed < target) {
        int w = static_cast<int>(rng.intRange(1, std::max(2, width / 16)));
        int h = static_cast<int>(rng.intRange(1, std::max(2, height / 16)));
        int x = static_cast<int>(rng.index(std::max(1, width - w)));
        int y = static_cast<int>(rng.index(std::max(1, height - h)));
        fillRect(grid, x, y, x + w - 1, y + h - 1);
        placed += w * h;
    }
    return grid;
}

OccupancyGrid2D
scaleMap(const OccupancyGrid2D &grid, int factor)
{
    RTR_ASSERT(factor >= 1, "scale factor must be >= 1");
    OccupancyGrid2D out(grid.width() * factor, grid.height() * factor,
                        grid.resolution() / factor, grid.origin());
    for (int y = 0; y < grid.height(); ++y) {
        for (int x = 0; x < grid.width(); ++x) {
            if (!grid.occupiedUnchecked(x, y))
                continue;
            out.setRect(x * factor, y * factor, x * factor + factor - 1,
                        y * factor + factor - 1, true);
        }
    }
    return out;
}

OccupancyGrid3D
makeCampus3D(int width, int height, int depth, double resolution,
             std::uint64_t seed)
{
    RTR_ASSERT(width >= 32 && height >= 32 && depth >= 8,
               "campus volume too small");
    OccupancyGrid3D grid(width, height, depth, resolution);
    Rng rng(seed);

    // Ground plane.
    grid.fillBox({0, 0, 0}, {width - 1, height - 1, 0});

    // Buildings: boxes of varying footprint and height.
    int n_buildings = std::max(6, width * height / 600);
    std::vector<Cell3> roofs;
    for (int b = 0; b < n_buildings; ++b) {
        int w = static_cast<int>(rng.intRange(6, std::max<std::int64_t>(7, width / 6)));
        int h = static_cast<int>(rng.intRange(6, std::max<std::int64_t>(7, height / 6)));
        int z = static_cast<int>(rng.intRange(depth / 4, depth - 2));
        int x = static_cast<int>(rng.index(std::max(1, width - w)));
        int y = static_cast<int>(rng.index(std::max(1, height - h)));
        grid.fillBox({x, y, 1}, {x + w - 1, y + h - 1, z});
        roofs.push_back({x + w / 2, y + h / 2, z});
    }

    // Trees: trunk columns with a canopy box near the top.
    int n_trees = std::max(10, width * height / 300);
    for (int t = 0; t < n_trees; ++t) {
        int x = static_cast<int>(rng.index(width));
        int y = static_cast<int>(rng.index(height));
        int top = static_cast<int>(rng.intRange(2, std::max<std::int64_t>(3, depth / 3)));
        grid.fillBox({x, y, 1}, {x, y, top});
        grid.fillBox({x - 1, y - 1, top - 1}, {x + 1, y + 1, top});
    }

    // Elevated walkways between building roofs: bars at height that
    // leave free space underneath (the underpasses that make 3-D search
    // interesting).
    for (std::size_t i = 0; i + 1 < roofs.size() && i < 4; ++i) {
        const Cell3 &a = roofs[i];
        const Cell3 &b = roofs[i + 1];
        int z = std::min({a.z, b.z, depth - 2});
        int x0 = std::min(a.x, b.x), x1 = std::max(a.x, b.x);
        grid.fillBox({x0, a.y, z}, {x1, a.y + 1, z});
        int y0 = std::min(a.y, b.y), y1 = std::max(a.y, b.y);
        grid.fillBox({b.x, y0, z}, {b.x + 1, y1, z});
    }
    return grid;
}

CostGrid2D::CostGrid2D(int width, int height, double initial)
    : width_(width),
      height_(height),
      cost_(static_cast<std::size_t>(width) * height, initial)
{
    RTR_ASSERT(width > 0 && height > 0, "cost grid dims must be positive");
}

void
CostGrid2D::set(int x, int y, double c)
{
    RTR_ASSERT(x >= 0 && x < width_ && y >= 0 && y < height_,
               "cost grid index out of bounds");
    cost_[static_cast<std::size_t>(y) * width_ + x] = c;
}

CostGrid2D
makeCostField(int width, int height, std::uint64_t seed, double min_cost,
              double max_cost, double obstacle_density)
{
    CostGrid2D field(width, height, min_cost);
    Rng rng(seed);

    // Value noise: random lattice values, bilinear interpolation, three
    // octaves.
    auto lattice_noise = [&](int cells) {
        std::vector<double> lattice(static_cast<std::size_t>(cells + 2) *
                                    (cells + 2));
        for (double &v : lattice)
            v = rng.uniform();
        return lattice;
    };

    struct Octave
    {
        int cells;
        double weight;
        std::vector<double> lattice;
    };
    std::vector<Octave> octaves;
    for (int cells : {4, 8, 16})
        octaves.push_back({cells, 1.0 / cells * 4.0, lattice_noise(cells)});

    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            double noise = 0.0, total_w = 0.0;
            for (const Octave &oct : octaves) {
                double fx = static_cast<double>(x) / width * oct.cells;
                double fy = static_cast<double>(y) / height * oct.cells;
                int ix = static_cast<int>(fx), iy = static_cast<int>(fy);
                double tx = fx - ix, ty = fy - iy;
                auto at = [&](int lx, int ly) {
                    return oct.lattice[static_cast<std::size_t>(ly) *
                                           (oct.cells + 2) +
                                       lx];
                };
                double v = at(ix, iy) * (1 - tx) * (1 - ty) +
                           at(ix + 1, iy) * tx * (1 - ty) +
                           at(ix, iy + 1) * (1 - tx) * ty +
                           at(ix + 1, iy + 1) * tx * ty;
                noise += v * oct.weight;
                total_w += oct.weight;
            }
            noise /= total_w;
            field.set(x, y, min_cost + noise * (max_cost - min_cost));
        }
    }

    // Impassable blocks.
    double target = obstacle_density * width * height;
    double placed = 0;
    while (placed < target) {
        int w = static_cast<int>(rng.intRange(2, std::max(3, width / 12)));
        int h = static_cast<int>(rng.intRange(2, std::max(3, height / 12)));
        int x0 = static_cast<int>(rng.index(std::max(1, width - w)));
        int y0 = static_cast<int>(rng.index(std::max(1, height - h)));
        for (int y = y0; y < y0 + h; ++y) {
            for (int x = x0; x < x0 + w; ++x)
                field.set(x, y, CostGrid2D::kImpassable);
        }
        placed += w * h;
    }
    return field;
}

} // namespace rtr

/**
 * @file
 * Robot-footprint collision detection on occupancy grids.
 *
 * The paper's pp2d kernel spends >65% of its time here: "checking
 * whether the robot would collide with obstacles in the environment if
 * it were in a particular state". The check is a streaming sweep over
 * the grid cells covered by the oriented rectangular body — the
 * fine-grained, spatially-local pattern the paper calls out.
 */

#ifndef RTR_GRID_FOOTPRINT_H
#define RTR_GRID_FOOTPRINT_H

#include "geom/pose.h"
#include "grid/occupancy_grid2d.h"

namespace rtr {

/**
 * Oriented rectangular robot footprint (e.g. the paper's 4.8 x 1.8 m
 * car), centered on the robot pose, length along the heading.
 */
class RectFootprint
{
  public:
    /** @param length Extent along the heading. @param width Across it. */
    RectFootprint(double length, double width);

    double length() const { return length_; }
    double width() const { return width_; }

    /**
     * Whether the footprint at @p pose overlaps any occupied cell.
     *
     * Sweeps the cells inside the footprint's axis-aligned bounding box
     * and tests each cell center against the oriented rectangle
     * (conservatively padded by half a cell diagonal so grazing contact
     * is detected). When the bounding box lies fully inside the grid,
     * the sweep runs as masked word scans over the occupancy bitboard,
     * projecting only occupied cells into the footprint frame; the
     * verdict is identical to the dense sweep.
     */
    bool collides(const OccupancyGrid2D &grid, const Pose2 &pose) const;

    /**
     * Number of cell probes the last collides() call performed: cells
     * projected into the footprint frame (dense sweep) or occupied
     * candidate cells surfaced by the bitboard scan (fast path) — 0
     * when word scans proved the whole bounding box free.
     */
    std::size_t lastCellsChecked() const { return last_cells_checked_; }

  private:
    double length_;
    double width_;
    mutable std::size_t last_cells_checked_ = 0;
};

/** Point-robot collision: is the world point in an occupied cell? */
bool pointCollides(const OccupancyGrid2D &grid, const Vec2 &p);

} // namespace rtr

#endif // RTR_GRID_FOOTPRINT_H

/**
 * @file
 * Deterministic synthetic environment generators.
 *
 * These stand in for the datasets the paper evaluates on but that are not
 * redistributable here (CMU Wean Hall for pfl, Moving AI Boston_1_1024
 * for pp2d, the Freiburg campus scan for pp3d). Each generator is seeded
 * and produces obstacle statistics of the same class as the original
 * (see DESIGN.md, "Substitutions").
 */

#ifndef RTR_GRID_MAP_GEN_H
#define RTR_GRID_MAP_GEN_H

#include <cstdint>
#include <vector>

#include "grid/occupancy_grid2d.h"
#include "grid/occupancy_grid3d.h"

namespace rtr {

/**
 * Indoor building map: perimeter walls, a central corridor spine, rooms
 * with door gaps, and occasional pillars. Stands in for the Wean Hall
 * floor plan used by 01.pfl.
 */
OccupancyGrid2D makeIndoorMap(int width, int height, double resolution,
                              std::uint64_t seed);

/**
 * City map: a street grid with buildings of randomized footprints
 * filling the blocks. Stands in for Boston_1_1024 used by 04.pp2d.
 */
OccupancyGrid2D makeCityMap(int size, double resolution, std::uint64_t seed);

/**
 * The PythonRobotics a_star.py demo environment (Fig. 21-(a)): a square
 * boundary with two interior walls. @p scale refines the resolution by
 * an integer factor, exactly like the paper's Fig. 21 scaling study.
 */
OccupancyGrid2D makePRobMap(int scale = 1);

/** Uniformly scattered rectangular obstacles (for property tests). */
OccupancyGrid2D makeRandomObstacleMap(int width, int height, double density,
                                      std::uint64_t seed);

/** Upsample a grid by an integer factor (each cell becomes factor^2). */
OccupancyGrid2D scaleMap(const OccupancyGrid2D &grid, int factor);

/**
 * Outdoor campus volume: buildings of varying heights, tree columns with
 * canopies, and elevated walkways that create underpasses. Stands in for
 * the fr_campus scan used by 05.pp3d.
 */
OccupancyGrid3D makeCampus3D(int width, int height, int depth,
                             double resolution, std::uint64_t seed);

/**
 * Scalar traversal-cost field over a grid (for 06.movtar, Fig. 7: "every
 * location in the environment has a particular cost for the robot").
 */
class CostGrid2D
{
  public:
    /** Uniform-cost field of the given dimensions. */
    CostGrid2D(int width, int height, double initial = 1.0);

    int width() const { return width_; }
    int height() const { return height_; }

    /** Traversal cost of a cell; out-of-bounds cells are impassable. */
    double
    cost(int x, int y) const
    {
        if (x < 0 || x >= width_ || y < 0 || y >= height_)
            return kImpassable;
        return cost_[static_cast<std::size_t>(y) * width_ + x];
    }

    /** Set a cell's traversal cost. */
    void set(int x, int y, double c);

    /** Whether a cell can be traversed at all. */
    bool
    passable(int x, int y) const
    {
        return cost(x, y) < kImpassable;
    }

    /** Sentinel cost marking an impassable cell. */
    static constexpr double kImpassable = 1e18;

  private:
    int width_;
    int height_;
    std::vector<double> cost_;
};

/**
 * Smooth multi-octave value-noise cost field in [min_cost, max_cost] with
 * a sprinkling of impassable obstacle blocks.
 */
CostGrid2D makeCostField(int width, int height, std::uint64_t seed,
                         double min_cost = 1.0, double max_cost = 10.0,
                         double obstacle_density = 0.05);

} // namespace rtr

#endif // RTR_GRID_MAP_GEN_H

#include "grid/occupancy_grid3d.h"

#include <algorithm>

#include "util/logging.h"

namespace rtr {

OccupancyGrid3D::OccupancyGrid3D(int width, int height, int depth,
                                 double resolution)
    : width_(width),
      height_(height),
      depth_(depth),
      resolution_(resolution),
      bits_(width, height * depth)
{
    RTR_ASSERT(width > 0 && height > 0 && depth > 0,
               "grid dimensions must be positive");
    RTR_ASSERT(resolution > 0.0, "grid resolution must be positive");
}

void
OccupancyGrid3D::setOccupied(int x, int y, int z, bool value)
{
    if (!inBounds(x, y, z))
        return;
    bits_.set(x, row(y, z), value);
}

void
OccupancyGrid3D::fillBox(const Cell3 &lo, const Cell3 &hi, bool value)
{
    int x0 = std::max(0, std::min(lo.x, hi.x));
    int y0 = std::max(0, std::min(lo.y, hi.y));
    int z0 = std::max(0, std::min(lo.z, hi.z));
    int x1 = std::min(width_ - 1, std::max(lo.x, hi.x));
    int y1 = std::min(height_ - 1, std::max(lo.y, hi.y));
    int z1 = std::min(depth_ - 1, std::max(lo.z, hi.z));
    if (x0 > x1)
        return;
    for (int z = z0; z <= z1; ++z) {
        for (int y = y0; y <= y1; ++y)
            bits_.setRowSpan(row(y, z), x0, x1, value);
    }
}

std::size_t
OccupancyGrid3D::freeCellCount() const
{
    // Row padding bits are always zero, so popcount counts exactly the
    // occupied cells.
    return static_cast<std::size_t>(width_) * height_ * depth_ -
           static_cast<std::size_t>(bits_.countSet());
}

} // namespace rtr

/**
 * @file
 * Axis-aligned bounding boxes in 2-D and 3-D.
 */

#ifndef RTR_GEOM_AABB_H
#define RTR_GEOM_AABB_H

#include <algorithm>

#include "geom/vec2.h"
#include "geom/vec3.h"

namespace rtr {

/** Axis-aligned rectangle given by min/max corners. */
struct Aabb2
{
    Vec2 lo;
    Vec2 hi;

    /** Whether a point lies inside or on the boundary. */
    constexpr bool
    contains(const Vec2 &p) const
    {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
    }

    /** Whether two rectangles overlap (boundary contact counts). */
    constexpr bool
    overlaps(const Aabb2 &o) const
    {
        return lo.x <= o.hi.x && hi.x >= o.lo.x && lo.y <= o.hi.y &&
               hi.y >= o.lo.y;
    }

    /** Rectangle center. */
    constexpr Vec2 center() const { return (lo + hi) * 0.5; }

    /** Width (x extent). */
    constexpr double width() const { return hi.x - lo.x; }

    /** Height (y extent). */
    constexpr double height() const { return hi.y - lo.y; }
};

/** Axis-aligned box given by min/max corners. */
struct Aabb3
{
    Vec3 lo;
    Vec3 hi;

    /** Whether a point lies inside or on the boundary. */
    constexpr bool
    contains(const Vec3 &p) const
    {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
               p.z >= lo.z && p.z <= hi.z;
    }

    /** Box center. */
    constexpr Vec3 center() const { return (lo + hi) * 0.5; }

    /**
     * Slab-test ray intersection.
     *
     * @param origin Ray origin.
     * @param dir Ray direction (need not be normalized).
     * @param t_out First nonnegative hit parameter (distance in units of
     *              |dir|), set only on a hit.
     * @return Whether the ray hits the box at t >= 0.
     */
    bool
    intersectRay(const Vec3 &origin, const Vec3 &dir, double *t_out) const
    {
        double t_min = 0.0;
        double t_max = 1e300;
        const double o[3] = {origin.x, origin.y, origin.z};
        const double d[3] = {dir.x, dir.y, dir.z};
        const double l[3] = {lo.x, lo.y, lo.z};
        const double h[3] = {hi.x, hi.y, hi.z};
        for (int axis = 0; axis < 3; ++axis) {
            if (d[axis] == 0.0) {
                if (o[axis] < l[axis] || o[axis] > h[axis])
                    return false;
                continue;
            }
            double inv = 1.0 / d[axis];
            double t0 = (l[axis] - o[axis]) * inv;
            double t1 = (h[axis] - o[axis]) * inv;
            if (t0 > t1)
                std::swap(t0, t1);
            t_min = std::max(t_min, t0);
            t_max = std::min(t_max, t1);
            if (t_min > t_max)
                return false;
        }
        if (t_out)
            *t_out = t_min;
        return true;
    }
};

} // namespace rtr

#endif // RTR_GEOM_AABB_H

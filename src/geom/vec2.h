/**
 * @file
 * 2-D double-precision vector.
 */

#ifndef RTR_GEOM_VEC2_H
#define RTR_GEOM_VEC2_H

#include <cmath>

namespace rtr {

/** A 2-D point/vector with the usual arithmetic. */
struct Vec2
{
    double x = 0.0;
    double y = 0.0;

    constexpr Vec2() = default;
    constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

    constexpr Vec2 operator+(const Vec2 &o) const { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator-(const Vec2 &o) const { return {x - o.x, y - o.y}; }
    constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
    constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
    constexpr Vec2 operator-() const { return {-x, -y}; }

    Vec2 &operator+=(const Vec2 &o) { x += o.x; y += o.y; return *this; }
    Vec2 &operator-=(const Vec2 &o) { x -= o.x; y -= o.y; return *this; }
    Vec2 &operator*=(double s) { x *= s; y *= s; return *this; }

    constexpr bool operator==(const Vec2 &o) const = default;

    /** Dot product. */
    constexpr double dot(const Vec2 &o) const { return x * o.x + y * o.y; }

    /** Scalar (z-component of the 3-D) cross product. */
    constexpr double cross(const Vec2 &o) const { return x * o.y - y * o.x; }

    /** Euclidean length. */
    double norm() const { return std::sqrt(x * x + y * y); }

    /** Squared Euclidean length. */
    constexpr double squaredNorm() const { return x * x + y * y; }

    /** Unit vector in this direction (undefined for the zero vector). */
    Vec2
    normalized() const
    {
        double n = norm();
        return {x / n, y / n};
    }

    /** Vector rotated counter-clockwise by the given angle (radians). */
    Vec2
    rotated(double angle) const
    {
        double c = std::cos(angle), s = std::sin(angle);
        return {c * x - s * y, s * x + c * y};
    }

    /** Euclidean distance to another point. */
    double distanceTo(const Vec2 &o) const { return (*this - o).norm(); }
};

/** Scalar-on-the-left multiplication. */
constexpr Vec2
operator*(double s, const Vec2 &v)
{
    return v * s;
}

} // namespace rtr

#endif // RTR_GEOM_VEC2_H

#include "geom/segment.h"

#include <algorithm>
#include <cmath>

namespace rtr {

namespace {

/** Orientation sign of the triangle (a, b, c): +1 ccw, -1 cw, 0 colinear. */
int
orientation(const Vec2 &a, const Vec2 &b, const Vec2 &c)
{
    double cross = (b - a).cross(c - a);
    constexpr double eps = 1e-12;
    if (cross > eps)
        return 1;
    if (cross < -eps)
        return -1;
    return 0;
}

/** Whether colinear point p lies within the bounding box of segment ab. */
bool
onSegment(const Vec2 &a, const Vec2 &b, const Vec2 &p)
{
    return p.x <= std::max(a.x, b.x) && p.x >= std::min(a.x, b.x) &&
           p.y <= std::max(a.y, b.y) && p.y >= std::min(a.y, b.y);
}

} // namespace

bool
segmentsIntersect(const Segment2 &s, const Segment2 &t)
{
    int o1 = orientation(s.a, s.b, t.a);
    int o2 = orientation(s.a, s.b, t.b);
    int o3 = orientation(t.a, t.b, s.a);
    int o4 = orientation(t.a, t.b, s.b);

    if (o1 != o2 && o3 != o4)
        return true;

    if (o1 == 0 && onSegment(s.a, s.b, t.a))
        return true;
    if (o2 == 0 && onSegment(s.a, s.b, t.b))
        return true;
    if (o3 == 0 && onSegment(t.a, t.b, s.a))
        return true;
    if (o4 == 0 && onSegment(t.a, t.b, s.b))
        return true;
    return false;
}

bool
segmentIntersectsAabb(const Segment2 &s, const Aabb2 &box)
{
    if (box.contains(s.a) || box.contains(s.b))
        return true;

    const Vec2 corners[4] = {
        box.lo, {box.hi.x, box.lo.y}, box.hi, {box.lo.x, box.hi.y}};
    for (int i = 0; i < 4; ++i) {
        Segment2 edge{corners[i], corners[(i + 1) % 4]};
        if (segmentsIntersect(s, edge))
            return true;
    }
    return false;
}

double
pointSegmentDistance(const Vec2 &p, const Segment2 &s)
{
    Vec2 ab = s.b - s.a;
    double len2 = ab.squaredNorm();
    if (len2 == 0.0)
        return p.distanceTo(s.a);
    double t = std::clamp((p - s.a).dot(ab) / len2, 0.0, 1.0);
    return p.distanceTo(s.at(t));
}

} // namespace rtr

/**
 * @file
 * 3-D double-precision vector.
 */

#ifndef RTR_GEOM_VEC3_H
#define RTR_GEOM_VEC3_H

#include <cmath>

namespace rtr {

/** A 3-D point/vector with the usual arithmetic. */
struct Vec3
{
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    constexpr Vec3() = default;
    constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

    constexpr Vec3
    operator+(const Vec3 &o) const
    {
        return {x + o.x, y + o.y, z + o.z};
    }

    constexpr Vec3
    operator-(const Vec3 &o) const
    {
        return {x - o.x, y - o.y, z - o.z};
    }

    constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
    constexpr Vec3 operator-() const { return {-x, -y, -z}; }

    Vec3 &operator+=(const Vec3 &o) { x += o.x; y += o.y; z += o.z; return *this; }
    Vec3 &operator-=(const Vec3 &o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
    Vec3 &operator*=(double s) { x *= s; y *= s; z *= s; return *this; }

    constexpr bool operator==(const Vec3 &o) const = default;

    /** Dot product. */
    constexpr double
    dot(const Vec3 &o) const
    {
        return x * o.x + y * o.y + z * o.z;
    }

    /** Cross product. */
    constexpr Vec3
    cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }

    /** Euclidean length. */
    double norm() const { return std::sqrt(squaredNorm()); }

    /** Squared Euclidean length. */
    constexpr double squaredNorm() const { return x * x + y * y + z * z; }

    /** Unit vector in this direction (undefined for the zero vector). */
    Vec3
    normalized() const
    {
        double n = norm();
        return {x / n, y / n, z / n};
    }

    /** Euclidean distance to another point. */
    double distanceTo(const Vec3 &o) const { return (*this - o).norm(); }
};

/** Scalar-on-the-left multiplication. */
constexpr Vec3
operator*(double s, const Vec3 &v)
{
    return v * s;
}

} // namespace rtr

#endif // RTR_GEOM_VEC3_H

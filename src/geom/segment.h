/**
 * @file
 * 2-D line segments and intersection predicates.
 *
 * Used by the planar-arm collision checker (arm links are segments tested
 * against workspace obstacle rectangles).
 */

#ifndef RTR_GEOM_SEGMENT_H
#define RTR_GEOM_SEGMENT_H

#include "geom/aabb.h"
#include "geom/vec2.h"

namespace rtr {

/** A 2-D line segment between two endpoints. */
struct Segment2
{
    Vec2 a;
    Vec2 b;

    /** Segment length. */
    double length() const { return a.distanceTo(b); }

    /** Point at parameter t in [0,1] along the segment. */
    Vec2 at(double t) const { return a + (b - a) * t; }
};

/** Whether two segments intersect (touching endpoints count). */
bool segmentsIntersect(const Segment2 &s, const Segment2 &t);

/** Whether a segment intersects (or is contained in) a rectangle. */
bool segmentIntersectsAabb(const Segment2 &s, const Aabb2 &box);

/** Shortest distance from a point to a segment. */
double pointSegmentDistance(const Vec2 &p, const Segment2 &s);

} // namespace rtr

#endif // RTR_GEOM_SEGMENT_H

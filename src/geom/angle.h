/**
 * @file
 * Angle arithmetic helpers (radians everywhere).
 */

#ifndef RTR_GEOM_ANGLE_H
#define RTR_GEOM_ANGLE_H

#include <cmath>
#include <numbers>

namespace rtr {

/** Pi as a double, spelled once. */
inline constexpr double kPi = std::numbers::pi_v<double>;

/** Two pi. */
inline constexpr double kTwoPi = 2.0 * kPi;

/** Degrees to radians. */
constexpr double
deg2rad(double deg)
{
    return deg * kPi / 180.0;
}

/** Radians to degrees. */
constexpr double
rad2deg(double rad)
{
    return rad * 180.0 / kPi;
}

/** Normalize an angle into (-pi, pi]. */
inline double
normalizeAngle(double angle)
{
    angle = std::fmod(angle, kTwoPi);
    if (angle <= -kPi)
        angle += kTwoPi;
    else if (angle > kPi)
        angle -= kTwoPi;
    return angle;
}

/** Signed smallest difference a - b, normalized into (-pi, pi]. */
inline double
angleDiff(double a, double b)
{
    return normalizeAngle(a - b);
}

} // namespace rtr

#endif // RTR_GEOM_ANGLE_H

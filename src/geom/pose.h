/**
 * @file
 * Planar robot pose (x, y, heading).
 */

#ifndef RTR_GEOM_POSE_H
#define RTR_GEOM_POSE_H

#include "geom/angle.h"
#include "geom/vec2.h"

namespace rtr {

/** A 2-D pose: position plus heading angle in radians. */
struct Pose2
{
    double x = 0.0;
    double y = 0.0;
    double theta = 0.0;

    constexpr Pose2() = default;
    constexpr Pose2(double x_, double y_, double theta_)
        : x(x_), y(y_), theta(theta_)
    {
    }

    /** Position component as a vector. */
    constexpr Vec2 position() const { return {x, y}; }

    /** Unit heading vector. */
    Vec2 heading() const { return {std::cos(theta), std::sin(theta)}; }

    /** Transform a point from this pose's local frame to the world frame. */
    Vec2
    transform(const Vec2 &local) const
    {
        return position() + local.rotated(theta);
    }

    /** Pose with the heading normalized into (-pi, pi]. */
    Pose2
    normalized() const
    {
        return {x, y, normalizeAngle(theta)};
    }
};

} // namespace rtr

#endif // RTR_GEOM_POSE_H

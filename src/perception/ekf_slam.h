/**
 * @file
 * EKF-SLAM with range-bearing landmark measurements (kernel 02.ekfslam).
 *
 * The joint state is the robot pose plus every observed landmark's
 * position; predict/update steps are the dense matrix operations the
 * paper identifies as >85% of the kernel's execution time (paper
 * Fig. 3: green landmark estimates, blue robot estimates, uncertainty
 * ellipses).
 */

#ifndef RTR_PERCEPTION_EKF_SLAM_H
#define RTR_PERCEPTION_EKF_SLAM_H

#include <vector>

#include "geom/pose.h"
#include "linalg/matrix.h"
#include "util/profiler.h"
#include "util/rng.h"

namespace rtr {

/** One range-bearing observation of an identified landmark. */
struct RangeBearing
{
    /** Landmark identity (known data association). */
    int landmark_id = 0;
    /** Distance to the landmark. */
    double range = 0.0;
    /** Angle to the landmark relative to the robot heading. */
    double bearing = 0.0;
};

/** EKF process/measurement noise parameters. */
struct EkfNoise
{
    /** Linear velocity process noise (per unit velocity). */
    double velocity = 0.1;
    /** Angular velocity process noise. */
    double omega = 0.05;
    /** Range measurement noise stddev. */
    double range = 0.1;
    /** Bearing measurement noise stddev. */
    double bearing = 0.02;
};

/** EKF-SLAM filter over robot pose + landmark map. */
class EkfSlam
{
  public:
    /** @param max_landmarks Capacity of the landmark map. */
    explicit EkfSlam(int max_landmarks, EkfNoise noise = {});

    /**
     * Velocity-model prediction step. Profiled as "matrix-ops".
     *
     * @param v Linear velocity, @param omega angular velocity,
     * @param dt timestep.
     */
    void predict(double v, double omega, double dt,
                 PhaseProfiler *profiler = nullptr);

    /**
     * Measurement update for a batch of observations. New landmark ids
     * are initialized from the observation; known ones tighten the
     * estimate. Profiled as "matrix-ops".
     */
    void update(const std::vector<RangeBearing> &observations,
                PhaseProfiler *profiler = nullptr);

    /** Current robot pose estimate. */
    Pose2 robotEstimate() const;

    /** Whether a landmark id has been initialized. */
    bool landmarkKnown(int id) const;

    /** Estimated position of a known landmark. */
    Vec2 landmarkEstimate(int id) const;

    /** Robot position 2x2 covariance block (uncertainty ellipse). */
    Matrix robotCovariance() const;

    /** Full covariance trace (an overall-uncertainty scalar). */
    double covarianceTrace() const { return sigma_.trace(); }

    /** Number of initialized landmarks. */
    int landmarkCount() const { return n_landmarks_; }

  private:
    std::size_t stateSize() const
    {
        return 3 + 2 * static_cast<std::size_t>(n_landmarks_);
    }

    int max_landmarks_;
    EkfNoise noise_;
    int n_landmarks_ = 0;
    std::vector<int> landmark_slot_;  // id -> slot (-1 = unknown)
    Matrix mu_;     // (3 + 2N) x 1 mean
    Matrix sigma_;  // (3 + 2N) x (3 + 2N) covariance

    // Update-step workspaces fed to the fused linalg entry points
    // (gemm/multiplyTransposed/symmetricSandwich). Their heap blocks
    // are reused across observations, so the inner loop stops
    // allocating once the state has reached its final size.
    Matrix h_;          // 2 x n measurement Jacobian
    Matrix s_;          // 2 x 2 innovation covariance
    Matrix hp_work_;    // 2 x n sandwich workspace (H Σ)
    Matrix pht_;        // n x 2 cross covariance (Σ Hᵀ)
    Matrix k_;          // n x 2 Kalman gain
    Matrix kh_;         // n x n gain-times-Jacobian
    Matrix sigma_tmp_;  // n x n covariance correction
    Matrix innovation_; // 2 x 1
};

/**
 * Synthetic SLAM world (stand-in for the paper's six-landmark setting,
 * Fig. 3-(a)): landmarks on a ring, the robot driving a circle through
 * them with Gaussian sensor/odometry noise.
 */
struct SlamWorld
{
    /** True landmark positions. */
    std::vector<Vec2> landmarks;
    /** Sensing range limit. */
    double sensor_range = 12.0;

    /** Build the canonical world with n landmarks. */
    static SlamWorld make(int n_landmarks, std::uint64_t seed);

    /** True noisy observations from a pose. */
    std::vector<RangeBearing> observe(const Pose2 &pose, EkfNoise noise,
                                      Rng &rng) const;
};

} // namespace rtr

#endif // RTR_PERCEPTION_EKF_SLAM_H

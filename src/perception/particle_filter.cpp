#include "perception/particle_filter.h"

#include <algorithm>
#include <cmath>

#include "grid/raycast.h"
#include "perception/batch_pfl.h"
#include "telemetry/trace.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace rtr {

ParticleFilter::ParticleFilter(const OccupancyGrid2D &map,
                               std::size_t n_particles,
                               MotionNoise motion_noise,
                               BeamSensorModel sensor_model)
    : map_(map),
      motion_noise_(motion_noise),
      sensor_model_(sensor_model),
      particles_(n_particles)
{
    RTR_ASSERT(n_particles >= 1, "need at least one particle");
}

Pose2
ParticleFilter::sampleFreePose(Rng &rng) const
{
    const Vec2 origin = map_.origin();
    // Rejection-sample free cells.
    while (true) {
        double x = origin.x + rng.uniform(0.0, map_.worldWidth());
        double y = origin.y + rng.uniform(0.0, map_.worldHeight());
        if (!map_.occupiedWorld({x, y}))
            return Pose2{x, y, rng.uniform(-kPi, kPi)};
    }
}

void
ParticleFilter::initializeUniform(Rng &rng)
{
    for (Particle &p : particles_) {
        p.pose = sampleFreePose(rng);
        p.weight = 1.0 / static_cast<double>(particles_.size());
    }
}

void
ParticleFilter::initializeRegion(const Pose2 &guess, double radius,
                                 double heading_window, Rng &rng)
{
    for (Particle &p : particles_) {
        while (true) {
            double angle = rng.uniform(-kPi, kPi);
            double r = radius * std::sqrt(rng.uniform());
            Vec2 pos{guess.x + r * std::cos(angle),
                     guess.y + r * std::sin(angle)};
            if (!map_.occupiedWorld(pos)) {
                p.pose = Pose2{pos.x, pos.y,
                               normalizeAngle(
                                   guess.theta +
                                   rng.uniform(-heading_window,
                                               heading_window))};
                break;
            }
        }
        p.weight = 1.0 / static_cast<double>(particles_.size());
    }
}

void
ParticleFilter::initializeGaussian(const Pose2 &mean, double pos_stddev,
                                   double ang_stddev, Rng &rng)
{
    for (Particle &p : particles_) {
        p.pose = Pose2{mean.x + rng.normal(0.0, pos_stddev),
                       mean.y + rng.normal(0.0, pos_stddev),
                       normalizeAngle(mean.theta +
                                      rng.normal(0.0, ang_stddev))};
        p.weight = 1.0 / static_cast<double>(particles_.size());
    }
}

void
ParticleFilter::motionUpdate(const OdometryReading &odom, Rng &rng,
                             PhaseProfiler *profiler)
{
    ScopedPhase phase(profiler, "motion-update");
    const MotionNoise &n = motion_noise_;
    if (motion_engine_ == BatchEngine::Scalar) {
        // Preserved serial reference: draw and step one hypothesis at
        // a time.
        for (Particle &p : particles_) {
            double rot1 = odom.rot1 +
                          rng.normal(0.0, n.a1 * std::abs(odom.rot1) +
                                              n.a2 * odom.trans);
            double trans =
                odom.trans +
                rng.normal(0.0, n.a3 * odom.trans +
                                    n.a4 * (std::abs(odom.rot1) +
                                            std::abs(odom.rot2)));
            double rot2 = odom.rot2 +
                          rng.normal(0.0, n.a1 * std::abs(odom.rot2) +
                                              n.a2 * odom.trans);
            double heading = p.pose.theta + rot1;
            p.pose.x += trans * std::cos(heading);
            p.pose.y += trans * std::sin(heading);
            p.pose.theta = normalizeAngle(heading + rot2);
        }
        return;
    }

    telemetry::TraceSpan span("batch-motion");
    const std::size_t count = particles_.size();
    // The per-noise sigmas depend only on the odometry reading — the
    // same sums the reference forms inside each rng.normal call.
    const double sig_rot1 =
        n.a1 * std::abs(odom.rot1) + n.a2 * odom.trans;
    const double sig_trans =
        n.a3 * odom.trans +
        n.a4 * (std::abs(odom.rot1) + std::abs(odom.rot2));
    const double sig_rot2 =
        n.a1 * std::abs(odom.rot2) + n.a2 * odom.trans;

    // RNG staging contract: draw all noise from the caller's stream in
    // the reference's particle-major order (rot1, trans, rot2 per
    // particle) before any lane work, so the stream position after
    // this update is engine-independent.
    noise_rot1_.resize(count);
    noise_trans_.resize(count);
    noise_rot2_.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
        noise_rot1_[i] = rng.normal(0.0, sig_rot1);
        noise_trans_[i] = rng.normal(0.0, sig_trans);
        noise_rot2_[i] = rng.normal(0.0, sig_rot2);
    }

    soa_x_.resize(count);
    soa_y_.resize(count);
    soa_theta_.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
        soa_x_[i] = particles_[i].pose.x;
        soa_y_[i] = particles_[i].pose.y;
        soa_theta_[i] = particles_[i].pose.theta;
    }

    // Chunks advance disjoint particle ranges; each range is pure in
    // its staged noise, so any thread count produces the same poses.
    parallelForChunks(0, count, 0, [&](const ChunkRange &chunk) {
        motionModelSoa(soa_x_.data() + chunk.begin,
                       soa_y_.data() + chunk.begin,
                       soa_theta_.data() + chunk.begin,
                       noise_rot1_.data() + chunk.begin,
                       noise_trans_.data() + chunk.begin,
                       noise_rot2_.data() + chunk.begin, odom,
                       chunk.end - chunk.begin);
    });

    for (std::size_t i = 0; i < count; ++i) {
        particles_[i].pose.x = soa_x_[i];
        particles_[i].pose.y = soa_y_[i];
        particles_[i].pose.theta = soa_theta_[i];
    }
}

void
ParticleFilter::measurementUpdate(const LaserScan &scan,
                                  PhaseProfiler *profiler)
{
    const std::size_t n_beams = scan.ranges.size();
    RTR_ASSERT(n_beams >= 1, "scan needs >= 1 beam");
    const std::size_t n_particles = particles_.size();
    log_weight_scratch_.resize(n_particles);
    std::vector<double> &log_weights = log_weight_scratch_;

    // Ray-casting: match every hypothesis against the map in one batch
    // cast. This is the dominant phase of the kernel; castScanBatch
    // runs the particles through the parallel runtime and each range
    // is a pure function of (map, pose, beam), so the expected scans
    // are bitwise-identical at any thread count.
    pose_scratch_.resize(n_particles);
    for (std::size_t i = 0; i < n_particles; ++i)
        pose_scratch_[i] = particles_[i].pose;
    {
        ScopedPhase phase(profiler, "raycast");
        castScanBatch(map_, pose_scratch_, scan.start_angle, scan.fov,
                      static_cast<int>(n_beams), scan.max_range,
                      expected_scratch_, ray_engine_);
    }

    // Score each particle's match under the beam mixture model: each
    // chunk is one SoA batch (soa engine) or the serial reference loop
    // (scalar engine); chunks write disjoint log_weights slots.
    {
        ScopedPhase phase(profiler, "weight");
        telemetry::TraceSpan span("batch-sensor");
        parallelForChunks(
            0, n_particles, 0, [&](const ChunkRange &chunk) {
                beamLogWeights(
                    expected_scratch_.data() + chunk.begin * n_beams,
                    chunk.end - chunk.begin, n_beams, scan.ranges.data(),
                    sensor_model_, scan.max_range,
                    log_weights.data() + chunk.begin, weight_engine_);
            });
    }
    rays_cast_ += n_beams * n_particles;

    double max_log_weight = -1e300;
    for (double log_w : log_weights) {
        if (log_w > max_log_weight)
            max_log_weight = log_w;
    }

    // Normalize in a numerically safe way.
    double total = 0.0;
    for (std::size_t i = 0; i < particles_.size(); ++i) {
        particles_[i].weight =
            particles_[i].weight *
            std::exp(log_weights[i] - max_log_weight);
        total += particles_[i].weight;
    }
    if (total <= 0.0) {
        // Degenerate: reset to uniform weights.
        for (Particle &p : particles_)
            p.weight = 1.0 / static_cast<double>(particles_.size());
        return;
    }
    for (Particle &p : particles_)
        p.weight /= total;
}

void
ParticleFilter::resample(Rng &rng, PhaseProfiler *profiler)
{
    ScopedPhase phase(profiler, "resample");
    const std::size_t n = particles_.size();
    std::vector<Particle> &next = resample_scratch_;
    next.clear();
    next.reserve(n);

    // Low-variance (systematic) resampling.
    double step = 1.0 / static_cast<double>(n);
    double pointer = rng.uniform(0.0, step);
    double cumulative = particles_[0].weight;
    std::size_t index = 0;
    for (std::size_t i = 0; i < n; ++i) {
        double target = pointer + static_cast<double>(i) * step;
        while (cumulative < target && index + 1 < n) {
            ++index;
            cumulative += particles_[index].weight;
        }
        Particle p = particles_[index];
        p.weight = step;
        next.push_back(p);
    }

    // Augmented-MCL recovery: re-seed a small fraction uniformly.
    auto inject =
        static_cast<std::size_t>(random_injection_ * static_cast<double>(n));
    for (std::size_t i = 0; i < inject; ++i) {
        std::size_t victim = rng.index(n);
        next[victim].pose = sampleFreePose(rng);
        next[victim].weight = step;
    }
    std::swap(particles_, next);
}

Pose2
ParticleFilter::estimate() const
{
    double x = 0.0, y = 0.0, sin_sum = 0.0, cos_sum = 0.0, total = 0.0;
    for (const Particle &p : particles_) {
        x += p.weight * p.pose.x;
        y += p.weight * p.pose.y;
        sin_sum += p.weight * std::sin(p.pose.theta);
        cos_sum += p.weight * std::cos(p.pose.theta);
        total += p.weight;
    }
    if (total <= 0.0)
        return {};
    return Pose2{x / total, y / total, std::atan2(sin_sum, cos_sum)};
}

double
ParticleFilter::spread() const
{
    Pose2 mean = estimate();
    double sum = 0.0, total = 0.0;
    for (const Particle &p : particles_) {
        double dx = p.pose.x - mean.x;
        double dy = p.pose.y - mean.y;
        sum += p.weight * (dx * dx + dy * dy);
        total += p.weight;
    }
    return total > 0.0 ? std::sqrt(sum / total) : 0.0;
}

double
ParticleFilter::effectiveSampleSize() const
{
    double sum = 0.0, sum_sq = 0.0;
    for (const Particle &p : particles_) {
        sum += p.weight;
        sum_sq += p.weight * p.weight;
    }
    if (sum_sq <= 0.0)
        return 0.0;
    // Normalize first so unnormalized weights do not skew the measure.
    return (sum * sum) / sum_sq;
}

bool
ParticleFilter::resampleIfNeeded(Rng &rng, double threshold_fraction,
                                 PhaseProfiler *profiler)
{
    if (effectiveSampleSize() >=
        threshold_fraction * static_cast<double>(particles_.size()))
        return false;
    resample(rng, profiler);
    return true;
}

double
ParticleFilter::coreSpread(double fraction) const
{
    Pose2 mean = estimate();
    std::vector<double> d2;
    d2.reserve(particles_.size());
    for (const Particle &p : particles_) {
        double dx = p.pose.x - mean.x;
        double dy = p.pose.y - mean.y;
        d2.push_back(dx * dx + dy * dy);
    }
    std::sort(d2.begin(), d2.end());
    auto keep = static_cast<std::size_t>(fraction *
                                         static_cast<double>(d2.size()));
    keep = std::max<std::size_t>(keep, 1);
    double sum = 0.0;
    for (std::size_t i = 0; i < keep; ++i)
        sum += d2[i];
    return std::sqrt(sum / static_cast<double>(keep));
}

OdometryReading
odometryBetween(const Pose2 &from, const Pose2 &to)
{
    OdometryReading odom;
    double dx = to.x - from.x;
    double dy = to.y - from.y;
    odom.trans = std::sqrt(dx * dx + dy * dy);
    double direction = odom.trans > 1e-9 ? std::atan2(dy, dx) : from.theta;
    odom.rot1 = angleDiff(direction, from.theta);
    odom.rot2 = angleDiff(to.theta, direction);
    return odom;
}

LaserScan
simulateScan(const OccupancyGrid2D &map, const Pose2 &pose, int n_beams,
             double max_range, double noise_stddev, Rng &rng)
{
    LaserScan scan;
    scan.max_range = max_range;
    scan.ranges.reserve(static_cast<std::size_t>(n_beams));
    double beam_step = n_beams > 1 ? scan.fov / n_beams : 0.0;
    for (int b = 0; b < n_beams; ++b) {
        double angle = pose.theta + scan.start_angle + b * beam_step;
        double range = castRay(map, pose.position(), angle, max_range);
        if (range < max_range)
            range = std::max(0.0, range + rng.normal(0.0, noise_stddev));
        scan.ranges.push_back(range);
    }
    return scan;
}

} // namespace rtr

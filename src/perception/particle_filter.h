/**
 * @file
 * Particle filter localization (kernel 01.pfl).
 *
 * Monte Carlo localization on a known occupancy grid: particles carry
 * pose hypotheses, odometry updates propagate them with noise, laser
 * scans re-weight them by ray-casting each hypothesis against the map
 * (the paper's 67-78% bottleneck), and low-variance resampling
 * concentrates them on the true pose (paper Fig. 2).
 */

#ifndef RTR_PERCEPTION_PARTICLE_FILTER_H
#define RTR_PERCEPTION_PARTICLE_FILTER_H

#include <vector>

#include "geom/pose.h"
#include "grid/occupancy_grid2d.h"
#include "grid/raycast.h"
#include "util/batch_engine.h"
#include "util/profiler.h"
#include "util/rng.h"

namespace rtr {

/** One localization hypothesis. */
struct Particle
{
    Pose2 pose;
    double weight = 1.0;
};

/** Odometry step in the standard rot1-trans-rot2 decomposition. */
struct OdometryReading
{
    double rot1 = 0.0;
    double trans = 0.0;
    double rot2 = 0.0;
};

/** A (simulated) laser scan: evenly spaced beams relative to heading. */
struct LaserScan
{
    /** Measured ranges, one per beam. */
    std::vector<double> ranges;
    /** Angle of the first beam relative to the robot heading. */
    double start_angle = -2.0;
    /** Angular extent of the scan. */
    double fov = 4.0;
    /** Sensor saturation range. */
    double max_range = 20.0;
};

/** Odometry noise coefficients (alpha1..alpha4 of the standard model). */
struct MotionNoise
{
    double a1 = 0.05;
    double a2 = 0.05;
    double a3 = 0.02;
    double a4 = 0.02;
};

/** Beam sensor model: Gaussian hit + uniform random mixture. */
struct BeamSensorModel
{
    /** Gaussian measurement noise. */
    double sigma = 0.35;
    /** Mixture weight of the Gaussian hit component. */
    double z_hit = 0.9;
    /** Mixture weight of the uniform random component. */
    double z_rand = 0.1;
    /**
     * Likelihood tempering: log-weights are divided by this, softening
     * the (unrealistically independent) per-beam product so a single
     * scan cannot collapse the filter onto one aliased hypothesis.
     */
    double temperature = 4.0;
};

/** Monte Carlo localization filter. */
class ParticleFilter
{
  public:
    /**
     * @param map Known occupancy grid; must outlive the filter.
     * @param n_particles Hypothesis count.
     */
    ParticleFilter(const OccupancyGrid2D &map, std::size_t n_particles,
                   MotionNoise motion_noise = {},
                   BeamSensorModel sensor_model = {});

    /** Scatter particles uniformly over free space (paper Fig. 2-(a)). */
    void initializeUniform(Rng &rng);

    /**
     * Regional initialization: particles uniform over the free space of
     * a disk around a rough position guess, headings within
     * +-heading_window of a compass prior. The usual deployment mode
     * when wheel-drop position is roughly known; converges reliably
     * with benchmark-scale particle counts.
     */
    void initializeRegion(const Pose2 &guess, double radius,
                          double heading_window, Rng &rng);

    /** Concentrate particles around a pose guess. */
    void initializeGaussian(const Pose2 &mean, double pos_stddev,
                            double ang_stddev, Rng &rng);

    /**
     * Propagate every particle through a noisy odometry step.
     * Profiled as "motion-update".
     */
    void motionUpdate(const OdometryReading &odom, Rng &rng,
                      PhaseProfiler *profiler = nullptr);

    /**
     * Re-weight particles against a laser scan. All particles' beams
     * are cast in one castScanBatch call ("raycast" phase), then each
     * particle scores its match under the beam model ("weight" phase);
     * both phases run on the parallel runtime and produce weights
     * bitwise identical at any thread count and under either ray-cast
     * engine.
     */
    void measurementUpdate(const LaserScan &scan,
                           PhaseProfiler *profiler = nullptr);

    /**
     * Select the occupancy-query engine for measurement updates. The
     * default comes from defaultRayEngine() (hier, or the RTR_RAYCAST
     * override); packet traces octant-binned SIMD ray packets through
     * the same pyramid, and scalar probes every traversed cell (the
     * paper-faithful cost profile). Ranges, and therefore weights, are
     * bitwise identical under every engine.
     */
    void setRayEngine(RayEngine engine) { ray_engine_ = engine; }

    RayEngine rayEngine() const { return ray_engine_; }

    /**
     * Select the batched-model engine for *both* the motion and weight
     * updates: soa advances simd::VecD lanes of particles in lockstep
     * through perception/batch_pfl.h, scalar runs the serial reference
     * loops. Poses and weights are bitwise identical either way (the
     * noise draws are staged from the caller's stream in scalar order
     * under both engines — DESIGN.md "Batched environments").
     *
     * This is the full-override entry point (--batch /
     * RTR_BATCH_ENGINE). Left alone, the phases pick their own
     * defaults: motion is SoA, weight is scalar (the sensor-model leg
     * is exp/log-bound and measured 0.92-0.94x under SoA — see
     * defaultPflWeightEngine()).
     */
    void
    setBatchEngine(BatchEngine engine)
    {
        motion_engine_ = engine;
        weight_engine_ = engine;
    }

    /** Engine of the motion phase alone. */
    void setMotionEngine(BatchEngine engine) { motion_engine_ = engine; }

    /** Engine of the weight (sensor-model) phase alone. */
    void setWeightEngine(BatchEngine engine) { weight_engine_ = engine; }

    BatchEngine motionEngine() const { return motion_engine_; }

    BatchEngine weightEngine() const { return weight_engine_; }

    /**
     * Low-variance resampling ("resample" phase). A small fraction of
     * particles (see setRandomInjection) is replaced by fresh uniform
     * hypotheses so the filter can recover from premature convergence
     * (augmented MCL).
     */
    void resample(Rng &rng, PhaseProfiler *profiler = nullptr);

    /** Fraction of particles re-seeded uniformly at each resample. */
    void setRandomInjection(double fraction)
    {
        random_injection_ = fraction;
    }

    /**
     * Effective sample size of the current weights,
     * 1 / sum(w_i^2) in [1, n]: low values mean weight degeneracy.
     */
    double effectiveSampleSize() const;

    /**
     * Adaptive resampling: resample only when the effective sample
     * size drops below @p threshold_fraction of the particle count
     * (the standard ESS rule). @return whether a resample happened.
     */
    bool resampleIfNeeded(Rng &rng, double threshold_fraction = 0.5,
                          PhaseProfiler *profiler = nullptr);

    /** Weighted mean pose estimate. */
    Pose2 estimate() const;

    /** RMS particle distance from the mean (Fig. 2 convergence metric). */
    double spread() const;

    /**
     * Robust spread: RMS distance of the closest @p fraction of
     * particles to the mean. Ignores the uniformly re-injected recovery
     * particles, which otherwise dominate the plain RMS after
     * convergence.
     */
    double coreSpread(double fraction = 0.9) const;

    const std::vector<Particle> &particles() const { return particles_; }

    /** Rays cast since construction. */
    std::size_t raysCast() const { return rays_cast_; }

  private:
    /** Uniform random pose over free space. */
    Pose2 sampleFreePose(Rng &rng) const;

    const OccupancyGrid2D &map_;
    MotionNoise motion_noise_;
    BeamSensorModel sensor_model_;
    std::vector<Particle> particles_;
    RayEngine ray_engine_ = defaultRayEngine();
    BatchEngine motion_engine_ = defaultBatchEngine();
    BatchEngine weight_engine_ = defaultPflWeightEngine();
    std::size_t rays_cast_ = 0;
    double random_injection_ = 0.02;

    // Per-update workspaces: the filter runs thousands of updates per
    // benchmark, so the pose/scan/weight scratch and the SoA state and
    // staged-noise arrays keep their capacity across calls instead of
    // reallocating per particle or per update.
    std::vector<Pose2> pose_scratch_;
    std::vector<double> expected_scratch_;
    std::vector<double> log_weight_scratch_;
    std::vector<double> soa_x_, soa_y_, soa_theta_;
    std::vector<double> noise_rot1_, noise_trans_, noise_rot2_;
    std::vector<Particle> resample_scratch_;
};

/**
 * Simulate the odometry reading between two true poses (exact; callers
 * add noise via the filter's motion model).
 */
OdometryReading odometryBetween(const Pose2 &from, const Pose2 &to);

/**
 * Simulate a noisy laser scan from a true pose against the map.
 */
LaserScan simulateScan(const OccupancyGrid2D &map, const Pose2 &pose,
                       int n_beams, double max_range, double noise_stddev,
                       Rng &rng);

} // namespace rtr

#endif // RTR_PERCEPTION_PARTICLE_FILTER_H

#include "perception/ekf_slam.h"

#include <cmath>

#include "geom/angle.h"
#include "linalg/decomp.h"
#include "util/logging.h"

namespace rtr {

EkfSlam::EkfSlam(int max_landmarks, EkfNoise noise)
    : max_landmarks_(max_landmarks),
      noise_(noise),
      landmark_slot_(static_cast<std::size_t>(max_landmarks), -1),
      mu_(3, 1),
      sigma_(3, 3)
{
    RTR_ASSERT(max_landmarks >= 1, "need landmark capacity >= 1");
    // The robot starts at the origin with certainty.
}

void
EkfSlam::predict(double v, double omega, double dt, PhaseProfiler *profiler)
{
    ScopedPhase phase(profiler, "matrix-ops");
    const std::size_t n = stateSize();
    double theta = mu_(2, 0);

    // Motion: unicycle forward Euler.
    double dx = v * dt * std::cos(theta);
    double dy = v * dt * std::sin(theta);
    mu_(0, 0) += dx;
    mu_(1, 0) += dy;
    mu_(2, 0) = normalizeAngle(mu_(2, 0) + omega * dt);

    // The motion Jacobian is G = I + g02·e0e2ᵀ + g12·e1e2ᵀ, so
    // Σ ← G Σ Gᵀ reduces to two row updates followed by two column
    // updates — O(n) in place of the seed's two dense n³ products.
    // (The old zero-skip branch in operator* exploited G's sparsity
    // implicitly; this exploits its *structure* explicitly.)
    const double g02 = -v * dt * std::sin(theta);
    const double g12 = v * dt * std::cos(theta);
    double *s = sigma_.data();
    for (std::size_t j = 0; j < n; ++j) {
        s[0 * n + j] += g02 * s[2 * n + j];
        s[1 * n + j] += g12 * s[2 * n + j];
    }
    for (std::size_t i = 0; i < n; ++i) {
        s[i * n + 0] += g02 * s[i * n + 2];
        s[i * n + 1] += g12 * s[i * n + 2];
    }

    // Process noise on the pose block.
    double sv = noise_.velocity * std::abs(v) * dt + 1e-4;
    double sw = noise_.omega * std::abs(omega) * dt + 1e-4;
    s[0 * n + 0] += sv * sv;
    s[1 * n + 1] += sv * sv;
    s[2 * n + 2] += sw * sw;
}

void
EkfSlam::update(const std::vector<RangeBearing> &observations,
                PhaseProfiler *profiler)
{
    for (const RangeBearing &obs : observations) {
        RTR_ASSERT(obs.landmark_id >= 0 && obs.landmark_id < max_landmarks_,
                   "landmark id out of range");

        if (landmark_slot_[static_cast<std::size_t>(obs.landmark_id)] < 0) {
            // First sighting: initialize the landmark from the
            // observation and grow the state.
            ScopedPhase phase(profiler, "matrix-ops");
            int slot = n_landmarks_++;
            landmark_slot_[static_cast<std::size_t>(obs.landmark_id)] = slot;

            double theta = mu_(2, 0);
            double lx = mu_(0, 0) +
                        obs.range * std::cos(theta + obs.bearing);
            double ly = mu_(1, 0) +
                        obs.range * std::sin(theta + obs.bearing);

            std::size_t n_old = 3 + 2 * static_cast<std::size_t>(slot);
            Matrix mu_new(n_old + 2, 1);
            mu_new.setBlock(0, 0, mu_);
            mu_new(n_old, 0) = lx;
            mu_new(n_old + 1, 0) = ly;
            mu_ = std::move(mu_new);

            Matrix sigma_new(n_old + 2, n_old + 2);
            sigma_new.setBlock(0, 0, sigma_);
            // Large initial uncertainty on the new landmark.
            sigma_new(n_old, n_old) = 1e3;
            sigma_new(n_old + 1, n_old + 1) = 1e3;
            sigma_ = std::move(sigma_new);
        }

        ScopedPhase phase(profiler, "matrix-ops");
        const std::size_t n = stateSize();
        int slot = landmark_slot_[static_cast<std::size_t>(obs.landmark_id)];
        std::size_t li = 3 + 2 * static_cast<std::size_t>(slot);

        double dx = mu_(li, 0) - mu_(0, 0);
        double dy = mu_(li + 1, 0) - mu_(1, 0);
        double q = dx * dx + dy * dy;
        double sqrt_q = std::sqrt(q);
        if (sqrt_q < 1e-9)
            continue;

        // Expected measurement and Jacobian H (2 x n, sparse in the
        // pose and landmark columns).
        double expected_range = sqrt_q;
        double expected_bearing =
            normalizeAngle(std::atan2(dy, dx) - mu_(2, 0));

        h_.resize(2, n);
        h_(0, 0) = -dx / sqrt_q;
        h_(0, 1) = -dy / sqrt_q;
        h_(0, 2) = 0.0;
        h_(0, li) = dx / sqrt_q;
        h_(0, li + 1) = dy / sqrt_q;
        h_(1, 0) = dy / q;
        h_(1, 1) = -dx / q;
        h_(1, 2) = -1.0;
        h_(1, li) = -dy / q;
        h_(1, li + 1) = dx / q;

        // S = H Σ Hᵀ + Q and K = Σ Hᵀ S⁻¹ through the fused workspace
        // entry points — no n-sized temporaries, and Hᵀ is never
        // materialised.
        symmetricSandwich(h_, sigma_, s_, hp_work_);
        s_(0, 0) += noise_.range * noise_.range;
        s_(1, 1) += noise_.bearing * noise_.bearing;
        multiplyTransposed(sigma_, h_, pht_);
        Matrix s_inv = inverse(s_); // 2x2
        gemm(pht_, s_inv, k_, 1.0, 0.0);

        innovation_.resize(2, 1);
        innovation_(0, 0) = obs.range - expected_range;
        innovation_(1, 0) =
            normalizeAngle(obs.bearing - expected_bearing);

        gemm(k_, innovation_, mu_, 1.0, 1.0); // μ += K ν
        mu_(2, 0) = normalizeAngle(mu_(2, 0));
        // Σ ← Σ - (K H) Σ (algebraically the seed's (I - K H) Σ,
        // without building the identity).
        gemm(k_, h_, kh_, 1.0, 0.0);
        gemm(kh_, sigma_, sigma_tmp_, 1.0, 0.0);
        sigma_ -= sigma_tmp_;
    }
}

Pose2
EkfSlam::robotEstimate() const
{
    return Pose2{mu_(0, 0), mu_(1, 0), mu_(2, 0)};
}

bool
EkfSlam::landmarkKnown(int id) const
{
    return id >= 0 && id < max_landmarks_ &&
           landmark_slot_[static_cast<std::size_t>(id)] >= 0;
}

Vec2
EkfSlam::landmarkEstimate(int id) const
{
    RTR_ASSERT(landmarkKnown(id), "landmark ", id, " not initialized");
    std::size_t li =
        3 + 2 * static_cast<std::size_t>(
                    landmark_slot_[static_cast<std::size_t>(id)]);
    return Vec2{mu_(li, 0), mu_(li + 1, 0)};
}

Matrix
EkfSlam::robotCovariance() const
{
    return sigma_.block(0, 0, 2, 2);
}

SlamWorld
SlamWorld::make(int n_landmarks, std::uint64_t seed)
{
    RTR_ASSERT(n_landmarks >= 1, "need >= 1 landmark");
    SlamWorld world;
    Rng rng(seed);
    // Landmarks on a ring of radius ~10 with jitter (the paper's
    // synthetic six-landmark environment).
    for (int i = 0; i < n_landmarks; ++i) {
        double angle = kTwoPi * i / n_landmarks;
        double radius = 10.0 + rng.uniform(-2.0, 2.0);
        world.landmarks.push_back(
            Vec2{radius * std::cos(angle), radius * std::sin(angle)});
    }
    return world;
}

std::vector<RangeBearing>
SlamWorld::observe(const Pose2 &pose, EkfNoise noise, Rng &rng) const
{
    std::vector<RangeBearing> observations;
    for (std::size_t i = 0; i < landmarks.size(); ++i) {
        double dx = landmarks[i].x - pose.x;
        double dy = landmarks[i].y - pose.y;
        double range = std::sqrt(dx * dx + dy * dy);
        if (range > sensor_range)
            continue;
        RangeBearing obs;
        obs.landmark_id = static_cast<int>(i);
        obs.range = range + rng.normal(0.0, noise.range);
        obs.bearing = normalizeAngle(std::atan2(dy, dx) - pose.theta +
                                     rng.normal(0.0, noise.bearing));
        observations.push_back(obs);
    }
    return observations;
}

} // namespace rtr

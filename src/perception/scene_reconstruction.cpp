#include "perception/scene_reconstruction.h"

namespace rtr {

SceneReconstructor::SceneReconstructor(const SceneRecConfig &config)
    : config_(config)
{
}

RigidTransform3
SceneReconstructor::addScan(const PointCloud &scan, PhaseProfiler *profiler)
{
    if (model_.empty()) {
        // First scan defines the world frame.
        ScopedPhase phase(profiler, "merge");
        model_ = scan;
        poses_.push_back(RigidTransform3{});
        last_rmse_ = 0.0;
        return poses_.back();
    }

    // Surface normals of the current model (point-to-plane ICP target).
    // The camera stays near the model centroid's side; orienting
    // towards the previous camera position is sufficient.
    std::vector<Vec3> normals =
        estimateNormals(model_, 10, poses_.back().translation, profiler,
                        config_.icp.nn_engine);

    // Constant-velocity seed: extrapolate the previous inter-frame
    // motion, as a visual-odometry front end would.
    RigidTransform3 seed = last_delta_.compose(poses_.back());
    PointCloud seeded = scan.transformed(seed);
    IcpResult icp =
        icpPointToPlane(seeded, model_, normals, config_.icp, profiler);
    last_rmse_ = icp.rmse;

    RigidTransform3 pose = icp.transform.compose(seed);
    last_delta_ = pose.compose(poses_.back().inverted());
    poses_.push_back(pose);

    {
        ScopedPhase phase(profiler, "merge");
        model_.append(scan.transformed(pose));
        if (++scans_since_downsample_ >= config_.downsample_interval) {
            model_ = model_.voxelDownsampled(config_.voxel_size);
            scans_since_downsample_ = 0;
        }
    }
    return pose;
}

} // namespace rtr

/**
 * @file
 * Incremental 3-D scene reconstruction via ICP (kernel 03.srec).
 *
 * Point-based fusion in the style the paper builds on: each incoming
 * depth scan is registered against the accumulated model cloud with
 * ICP, transformed into the world frame, merged, and the model is kept
 * bounded by voxel downsampling (paper Fig. 4).
 */

#ifndef RTR_PERCEPTION_SCENE_RECONSTRUCTION_H
#define RTR_PERCEPTION_SCENE_RECONSTRUCTION_H

#include <vector>

#include "pointcloud/icp.h"
#include "pointcloud/point_cloud.h"
#include "util/profiler.h"

namespace rtr {

/** Reconstruction tuning knobs. */
struct SceneRecConfig
{
    /** ICP parameters for per-frame registration. */
    IcpConfig icp;
    /** Model resolution (voxel edge, world units). */
    double voxel_size = 0.05;
    /** Downsample the model every this many merged scans. */
    int downsample_interval = 4;

    SceneRecConfig()
    {
        icp.max_iterations = 30;
        icp.max_correspondence_distance = 0.4;
        icp.trim_fraction = 1.0;
    }
};

/** Incremental reconstructor. */
class SceneReconstructor
{
  public:
    explicit SceneReconstructor(const SceneRecConfig &config = {});

    /**
     * Register a new scan (camera-frame points) against the model and
     * merge it.
     *
     * The first scan defines the world frame. Profiled phases: "icp-nn"
     * and "icp-solve" (inside ICP) plus "merge".
     *
     * @return Estimated world-from-camera transform of this scan.
     */
    RigidTransform3 addScan(const PointCloud &scan,
                            PhaseProfiler *profiler = nullptr);

    /** Accumulated world-frame model cloud. */
    const PointCloud &model() const { return model_; }

    /** Estimated camera poses, one per added scan. */
    const std::vector<RigidTransform3> &poses() const { return poses_; }

    /** RMSE of the most recent registration. */
    double lastRmse() const { return last_rmse_; }

    /** Number of scans merged. */
    std::size_t scanCount() const { return poses_.size(); }

  private:
    SceneRecConfig config_;
    PointCloud model_;
    std::vector<RigidTransform3> poses_;
    /** Last inter-frame motion, for constant-velocity seeding. */
    RigidTransform3 last_delta_;
    double last_rmse_ = 0.0;
    int scans_since_downsample_ = 0;
};

} // namespace rtr

#endif // RTR_PERCEPTION_SCENE_RECONSTRUCTION_H

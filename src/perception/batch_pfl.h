/**
 * @file
 * Batched particle-filter models (DESIGN.md "Batched environments").
 *
 * Every particle of the pfl kernel is an independent environment: the
 * odometry motion model and the beam sensor model apply the same
 * arithmetic chain to each hypothesis. The batch engine keeps particle
 * state in structure-of-arrays form and advances one simd::VecD lane
 * of particles per instruction, under the same bitwise-identity rules
 * as control/batch_env.h: no FMA, reference accumulation order per
 * particle, expression shapes mirroring the scalar source, and
 * transcendentals (cos/sin/exp/log, normalizeAngle's fmod) staying
 * scalar libm calls per lane element. Stochastic draws are staged from
 * the caller's stream in scalar order *before* any lane work — the
 * RNG staging contract — so the stream position after a batched
 * update equals the serial reference's. Remainder particles
 * (count % kWidth) finish on the scalar reference path.
 */

#ifndef RTR_PERCEPTION_BATCH_PFL_H
#define RTR_PERCEPTION_BATCH_PFL_H

#include <cstddef>

#include "perception/particle_filter.h"
#include "util/batch_engine.h"

namespace rtr {

/**
 * Scalar reference of the odometry motion model over pre-staged noise:
 * particle e applies rot1 = odom.rot1 + noise_rot1[e] (likewise trans,
 * rot2), then the standard heading/translate/normalize step, exactly
 * as ParticleFilter::motionUpdate's serial loop does after its three
 * rng.normal draws.
 */
void motionModelScalar(double *x, double *y, double *theta,
                       const double *noise_rot1, const double *noise_trans,
                       const double *noise_rot2,
                       const OdometryReading &odom, std::size_t count);

/**
 * SoA motion model: full simd::VecD tiles advance in lockstep (cos/sin
 * and normalizeAngle per lane element stay scalar libm), the remainder
 * runs through motionModelScalar. Bitwise identical to the scalar
 * reference for every particle.
 */
void motionModelSoa(double *x, double *y, double *theta,
                    const double *noise_rot1, const double *noise_trans,
                    const double *noise_rot2, const OdometryReading &odom,
                    std::size_t count);

/**
 * Beam-mixture log-weights for @p count particles whose expected scans
 * are stored contiguously (particle e's beams at
 * expected[e*n_beams .. e*n_beams+n_beams-1]). log_weights[e] receives
 * the tempered log-likelihood exactly as
 * ParticleFilter::measurementUpdate's weight loop computes it. The soa
 * engine evaluates beams across a lane of particles at a time (exp/log
 * scalar per lane element); the scalar engine is the verbatim
 * reference loop. Bitwise identical either way.
 */
void beamLogWeights(const double *expected, std::size_t count,
                    std::size_t n_beams, const double *scan_ranges,
                    const BeamSensorModel &model, double max_range,
                    double *log_weights, BatchEngine engine);

} // namespace rtr

#endif // RTR_PERCEPTION_BATCH_PFL_H

#include "perception/batch_pfl.h"

#include <cmath>

#include "geom/angle.h"
#include "util/simd.h"

namespace rtr {

using simd::VecD;

namespace {

constexpr std::size_t kW = VecD::kWidth;

/** Verbatim weight loop of ParticleFilter::measurementUpdate. */
void
beamLogWeightsScalar(const double *expected, std::size_t count,
                     std::size_t n_beams, const double *scan_ranges,
                     const BeamSensorModel &model, double inv_sigma2,
                     double gauss_norm, double rand_density,
                     double *log_weights)
{
    for (std::size_t i = 0; i < count; ++i) {
        const double *ranges = expected + i * n_beams;
        double log_w = 0.0;
        for (std::size_t b = 0; b < n_beams; ++b) {
            double diff = scan_ranges[b] - ranges[b];
            double density = model.z_hit * gauss_norm *
                                 std::exp(-diff * diff * inv_sigma2) +
                             model.z_rand * rand_density;
            log_w += std::log(density + 1e-300);
        }
        log_w /= model.temperature;
        log_weights[i] = log_w;
    }
}

} // namespace

void
motionModelScalar(double *x, double *y, double *theta,
                  const double *noise_rot1, const double *noise_trans,
                  const double *noise_rot2, const OdometryReading &odom,
                  std::size_t count)
{
    for (std::size_t e = 0; e < count; ++e) {
        double rot1 = odom.rot1 + noise_rot1[e];
        double trans = odom.trans + noise_trans[e];
        double rot2 = odom.rot2 + noise_rot2[e];
        double heading = theta[e] + rot1;
        x[e] += trans * std::cos(heading);
        y[e] += trans * std::sin(heading);
        theta[e] = normalizeAngle(heading + rot2);
    }
}

void
motionModelSoa(double *x, double *y, double *theta,
               const double *noise_rot1, const double *noise_trans,
               const double *noise_rot2, const OdometryReading &odom,
               std::size_t count)
{
    const VecD r1v = VecD::broadcast(odom.rot1);
    const VecD trv = VecD::broadcast(odom.trans);
    const VecD r2v = VecD::broadcast(odom.rot2);

    std::size_t e = 0;
    for (; e + kW <= count; e += kW) {
        const VecD rot1v = r1v + VecD::load(noise_rot1 + e);
        const VecD transv = trv + VecD::load(noise_trans + e);
        const VecD rot2v = r2v + VecD::load(noise_rot2 + e);
        const VecD headv = VecD::load(theta + e) + rot1v;

        // cos/sin of the heading stay scalar libm per lane element.
        double head[kW], cb[kW], sb[kW];
        headv.store(head);
        for (std::size_t l = 0; l < kW; ++l) {
            cb[l] = std::cos(head[l]);
            sb[l] = std::sin(head[l]);
        }
        VecD::mulAdd(VecD::load(x + e), transv, VecD::load(cb))
            .store(x + e);
        VecD::mulAdd(VecD::load(y + e), transv, VecD::load(sb))
            .store(y + e);

        double hr[kW];
        (headv + rot2v).store(hr);
        for (std::size_t l = 0; l < kW; ++l)
            theta[e + l] = normalizeAngle(hr[l]);
    }
    motionModelScalar(x + e, y + e, theta + e, noise_rot1 + e,
                      noise_trans + e, noise_rot2 + e, odom, count - e);
}

void
beamLogWeights(const double *expected, std::size_t count,
               std::size_t n_beams, const double *scan_ranges,
               const BeamSensorModel &model, double max_range,
               double *log_weights, BatchEngine engine)
{
    // The same three constants measurementUpdate's weight phase forms.
    const double inv_sigma2 = 1.0 / (2.0 * model.sigma * model.sigma);
    const double gauss_norm = 1.0 / (model.sigma * std::sqrt(2.0 * kPi));
    const double rand_density = 1.0 / max_range;

    if (engine == BatchEngine::Scalar) {
        beamLogWeightsScalar(expected, count, n_beams, scan_ranges, model,
                             inv_sigma2, gauss_norm, rand_density,
                             log_weights);
        return;
    }

    // Single multiplies the scalar expression performs left-to-right.
    const VecD hitv = VecD::broadcast(model.z_hit * gauss_norm);
    const VecD randv = VecD::broadcast(model.z_rand * rand_density);
    const VecD inv2v = VecD::broadcast(inv_sigma2);
    const VecD tinyv = VecD::broadcast(1e-300);
    const VecD tempv = VecD::broadcast(model.temperature);

    std::size_t e = 0;
    for (; e + kW <= count; e += kW) {
        VecD lwv = VecD::zero();
        for (std::size_t b = 0; b < n_beams; ++b) {
            double lane[kW];
            for (std::size_t l = 0; l < kW; ++l)
                lane[l] = expected[(e + l) * n_beams + b];
            const VecD diffv =
                VecD::broadcast(scan_ranges[b]) - VecD::load(lane);
            // neg() is the sign-bit flip scalar -diff performs, so even
            // a NaN range carries the same bits through both engines.
            const VecD argv = (VecD::neg(diffv) * diffv) * inv2v;
            argv.store(lane);
            for (std::size_t l = 0; l < kW; ++l)
                lane[l] = std::exp(lane[l]);
            const VecD densv = (hitv * VecD::load(lane)) + randv;
            (densv + tinyv).store(lane);
            for (std::size_t l = 0; l < kW; ++l)
                lane[l] = std::log(lane[l]);
            lwv = lwv + VecD::load(lane);
        }
        (lwv / tempv).store(log_weights + e);
    }
    beamLogWeightsScalar(expected + e * n_beams, count - e, n_beams,
                         scan_ranges, model, inv_sigma2, gauss_norm,
                         rand_density, log_weights + e);
}

} // namespace rtr

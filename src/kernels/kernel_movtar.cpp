#include "kernels/kernel_movtar.h"


#include <algorithm>
#include "grid/map_gen.h"
#include "search/spacetime_planner.h"
#include "util/logging.h"
#include "util/roi.h"
#include "util/stopwatch.h"

namespace rtr {

namespace {

/** Nearest passable cell to an anchor point. */
Cell2
findPassable(const CostGrid2D &field, double fx, double fy)
{
    Cell2 anchor{static_cast<int>(field.width() * fx),
                 static_cast<int>(field.height() * fy)};
    for (int radius = 0; radius < std::max(field.width(), field.height());
         ++radius) {
        for (int dy = -radius; dy <= radius; ++dy) {
            for (int dx = -radius; dx <= radius; ++dx) {
                if (std::max(std::abs(dx), std::abs(dy)) != radius)
                    continue;
                Cell2 c{anchor.x + dx, anchor.y + dy};
                if (field.passable(c.x, c.y))
                    return c;
            }
        }
    }
    fatal("no passable cell in the cost field");
}

} // namespace

void
MovtarKernel::addOptions(ArgParser &parser) const
{
    parser.addOption("env-size", "160", "Environment side (cells)");
    parser.addOption("trajectory-steps", "220",
                     "Known target trajectory length");
    parser.addOption("epsilon", "2.0", "WA* heuristic inflation");
    parser.addOption("seed", "1", "Random seed");
}

KernelReport
MovtarKernel::run(const ArgParser &args) const
{
    KernelReport report;
    const int size = static_cast<int>(args.getInt("env-size"));
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed"));

    // ---- Input generation (outside the ROI) ----
    CostGrid2D field = makeCostField(size, size, seed);
    Cell2 target_start = findPassable(field, 0.75, 0.75);
    MovingTargetProblem problem;
    problem.field = &field;
    problem.target_trajectory = makeTargetTrajectory(
        field, target_start,
        static_cast<int>(args.getInt("trajectory-steps")), seed * 13 + 7);
    problem.robot_start = findPassable(field, 0.1, 0.1);
    problem.epsilon = args.getDouble("epsilon");

    // ---- Planning, including the heuristic build (the ROI) ----
    Stopwatch roi_timer;
    SpacetimePlan plan;
    {
        ScopedRoi roi;
        plan = planMovingTarget(problem, &report.profiler);
    }
    report.roi_seconds = roi_timer.elapsedSec();

    report.success = plan.found;
    report.metrics["heuristic_fraction"] =
        report.phaseFraction("heuristic");
    report.metrics["search_fraction"] =
        report.phaseFraction("graph-search");
    report.metrics["expanded"] = static_cast<double>(plan.expanded);
    report.metrics["catch_time"] = plan.catch_time;
    report.metrics["plan_cost"] = plan.cost;
    return report;
}

} // namespace rtr

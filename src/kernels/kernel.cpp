#include "kernels/kernel.h"

#include <fstream>

#include "linalg/matrix.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace rtr {

void
addThreadsOption(ArgParser &parser)
{
    parser.addOption("threads", "0",
                     "Worker threads (0 = all hardware threads, "
                     "1 = sequential)");
}

void
applyThreadsOption(const ArgParser &args)
{
    const std::int64_t n = args.getInt("threads");
    if (n < 0)
        fatal("--threads must be >= 0");
    setParallelThreads(static_cast<std::size_t>(n));
}

void
addSimdOption(ArgParser &parser)
{
    parser.addOption("simd", "1",
                     "Dense-linalg kernels: 1 = SIMD micro-kernels, "
                     "0 = scalar reference (bitwise-identical results)");
}

void
applySimdOption(const ArgParser &args)
{
    setSimdKernelsEnabled(args.getInt("simd") != 0);
}

void
addNnOption(ArgParser &parser)
{
    parser.addOption("nn", nnEngineName(defaultNnEngine()),
                     "NN engine: bucket = leaf-bucketed SoA k-d tree, "
                     "node = reference tree (identical results)");
}

NnEngine
nnEngineFromArgs(const ArgParser &args)
{
    NnEngine engine = defaultNnEngine();
    const std::string name = args.get("nn");
    if (!parseNnEngine(name, engine))
        fatal("--nn must be 'bucket' or 'node', got '", name, "'");
    return engine;
}

void
addBatchOption(ArgParser &parser)
{
    parser.addOption("batch", batchEngineName(defaultBatchEngine()),
                     "Rollout engine: soa = SIMD across environments, "
                     "scalar = reference (identical results)");
}

BatchEngine
batchEngineFromArgs(const ArgParser &args)
{
    BatchEngine engine = defaultBatchEngine();
    const std::string name = args.get("batch");
    if (!parseBatchEngine(name, engine))
        fatal("--batch must be 'soa' or 'scalar', got '", name, "'");
    return engine;
}

void
writeReportFile(const KernelReport &report, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write report file '", path, "'");
    out << "section,key,value\n";
    out << "run,success," << (report.success ? 1 : 0) << "\n";
    out << "run,roi_seconds," << report.roi_seconds << "\n";
    for (const auto &phase : report.profiler.phases()) {
        out << "phase_ns," << phase.name << "," << phase.ns << "\n";
        out << "phase_count," << phase.name << "," << phase.count
            << "\n";
    }
    for (const auto &[key, value] : report.metrics)
        out << "metric," << key << "," << value << "\n";
    for (const auto &[name, series] : report.series) {
        out << "series," << name << ",";
        for (std::size_t i = 0; i < series.size(); ++i) {
            if (i)
                out << ";";
            out << series[i];
        }
        out << "\n";
    }
}

std::string
stageName(Stage stage)
{
    switch (stage) {
      case Stage::Perception:
        return "Perception";
      case Stage::Planning:
        return "Planning";
      case Stage::Control:
        return "Control";
    }
    panic("unknown stage");
}

KernelReport
Kernel::runWithDefaults(const std::vector<std::string> &overrides) const
{
    ArgParser parser(name());
    addOptions(parser);
    parser.parse(overrides);
    return run(parser);
}

} // namespace rtr

/**
 * @file
 * Kernel 14.mpc — model predictive control (paper §V.14).
 */

#ifndef RTR_KERNELS_KERNEL_MPC_H
#define RTR_KERNELS_KERNEL_MPC_H

#include "kernels/kernel.h"

namespace rtr {

/**
 * A self-driving car (unicycle model) follows a long reference
 * trajectory with receding-horizon MPC under velocity/acceleration
 * constraints (paper Fig. 16).
 *
 * Key metrics: optimize_fraction (paper: > 0.80), tracking error,
 * constraint satisfaction.
 */
class MpcKernel : public Kernel
{
  public:
    std::string name() const override { return "mpc"; }
    Stage stage() const override { return Stage::Control; }
    std::string
    description() const override
    {
        return "MPC trajectory tracking with a unicycle model";
    }
    void addOptions(ArgParser &parser) const override;
    KernelReport run(const ArgParser &args) const override;
};

} // namespace rtr

#endif // RTR_KERNELS_KERNEL_MPC_H

#include "kernels/kernel_prm.h"

#include "kernels/kernel_arm_common.h"
#include "plan/prm.h"
#include "util/roi.h"
#include "util/stopwatch.h"

namespace rtr {

void
PrmKernel::addOptions(ArgParser &parser) const
{
    addArmOptions(parser);
    parser.addOption("samples", "3000", "Roadmap samples");
    parser.addOption("neighbors", "10", "k nearest connections/sample");
    parser.addOption("edge-length", "1.2", "Max edge length (rad, L2)");
    addThreadsOption(parser);
    addNnOption(parser);
}

KernelReport
PrmKernel::run(const ArgParser &args) const
{
    KernelReport report;
    applyThreadsOption(args);
    ArmProblem problem = makeArmProblem(args);

    PrmConfig config;
    config.n_samples = static_cast<std::size_t>(args.getInt("samples"));
    config.k_neighbors =
        static_cast<std::size_t>(args.getInt("neighbors"));
    config.max_edge_length = args.getDouble("edge-length");
    config.nn_engine = nnEngineFromArgs(args);

    PrmPlanner planner(problem.space, *problem.checker, config);

    // ---- Offline phase (outside the ROI) ----
    Rng build_rng(static_cast<std::uint64_t>(args.getInt("seed")));
    PhaseProfiler offline_profiler;
    Stopwatch offline_timer;
    PrmBuildStats build = planner.build(build_rng, &offline_profiler);
    double offline_seconds = offline_timer.elapsedSec();

    // ---- Online query (the ROI) ----
    Stopwatch roi_timer;
    MotionPlan plan;
    {
        ScopedRoi roi;
        plan = planner.query(problem.start, problem.goal,
                             &report.profiler);
    }
    report.roi_seconds = roi_timer.elapsedSec();

    report.success = plan.found;
    report.metrics["graph_search_fraction"] =
        report.phaseFraction("graph-search");
    report.metrics["online_connect_fraction"] =
        report.phaseFraction("online-connect");
    report.metrics["l2_norm_evals"] =
        static_cast<double>(planner.lastHeuristicEvals());
    report.metrics["path_cost_rad"] = plan.cost;
    report.metrics["roadmap_nodes"] = static_cast<double>(build.nodes);
    report.metrics["roadmap_edges"] = static_cast<double>(build.edges);
    report.metrics["offline_seconds"] = offline_seconds;
    report.metrics["offline_collision_checks"] =
        static_cast<double>(build.collision_checks);
    return report;
}

} // namespace rtr

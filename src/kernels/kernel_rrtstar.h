/**
 * @file
 * Kernel 09.rrtstar — asymptotically-optimal RRT* (paper §V.09).
 */

#ifndef RTR_KERNELS_KERNEL_RRTSTAR_H
#define RTR_KERNELS_KERNEL_RRTSTAR_H

#include "kernels/kernel.h"

namespace rtr {

/**
 * RRT* rewires the tree as it grows (paper Fig. 11), paying more
 * nearest-neighbor and collision work for shorter paths. The paper
 * reports up to 8x RRT's time and ~1.6x shorter paths on average; the
 * bench_09_rrtstar harness reproduces that comparison.
 *
 * Key metrics: collision_fraction, nn_fraction (paper: up to 0.49),
 * rewires, path cost.
 */
class RrtStarKernel : public Kernel
{
  public:
    std::string name() const override { return "rrtstar"; }
    Stage stage() const override { return Stage::Planning; }
    std::string
    description() const override
    {
        return "RRT* arm motion planning with tree rewiring";
    }
    void addOptions(ArgParser &parser) const override;
    KernelReport run(const ArgParser &args) const override;
};

} // namespace rtr

#endif // RTR_KERNELS_KERNEL_RRTSTAR_H

/**
 * @file
 * Kernel 04.pp2d — 2-D path planning with footprint collision
 * detection (paper §V.04).
 */

#ifndef RTR_KERNELS_KERNEL_PP2D_H
#define RTR_KERNELS_KERNEL_PP2D_H

#include "kernels/kernel.h"

namespace rtr {

/**
 * A 4.8 m x 1.8 m car plans a long route across a 1024x1024 city map
 * (the Boston_1_1024 stand-in; pass --map to plan on a real Moving AI
 * file instead) with A* and oriented-footprint collision checks.
 *
 * Key metrics: collision_fraction (paper: > 0.65), expansions,
 * collision checks, path length.
 */
class Pp2dKernel : public Kernel
{
  public:
    std::string name() const override { return "pp2d"; }
    Stage stage() const override { return Stage::Planning; }
    std::string
    description() const override
    {
        return "A* car path planning on a city occupancy grid";
    }
    void addOptions(ArgParser &parser) const override;
    KernelReport run(const ArgParser &args) const override;
};

} // namespace rtr

#endif // RTR_KERNELS_KERNEL_PP2D_H

#include "kernels/kernel_dmp.h"

#include <cmath>

#include "control/dmp.h"
#include "util/roi.h"
#include "util/stopwatch.h"

namespace rtr {

void
DmpKernel::addOptions(ArgParser &parser) const
{
    parser.addOption("basis", "25", "Gaussian basis functions");
    parser.addOption("demo-samples", "200", "Demonstration samples");
    parser.addOption("dt", "0.01", "Integration timestep (s)");
    parser.addOption("rollouts", "200",
                     "Rollouts executed (control-loop repetitions)");
}

KernelReport
DmpKernel::run(const ArgParser &args) const
{
    KernelReport report;
    const int demo_samples =
        static_cast<int>(args.getInt("demo-samples"));
    const double dt = args.getDouble("dt");
    const int rollouts = static_cast<int>(args.getInt("rollouts"));

    // ---- Demonstration (outside the ROI) ----
    std::vector<std::vector<double>> demo =
        makeDemoTrajectory(demo_samples, dt);

    DmpConfig config;
    config.n_basis = static_cast<int>(args.getInt("basis"));
    DmpND dmp(2, config);

    // ---- Fit + repeated rollout (the ROI) ----
    std::vector<DmpTrajectory> trajs;
    Stopwatch roi_timer;
    {
        ScopedRoi roi;
        dmp.fit(demo, dt, &report.profiler);
        for (int r = 0; r < rollouts; ++r)
            trajs = dmp.rollout(demo_samples, dt, &report.profiler);
    }
    report.roi_seconds = roi_timer.elapsedSec();

    // Tracking error against the demonstration (Fig. 15's black-vs-
    // orange agreement).
    double err = 0.0;
    for (int t = 0; t < demo_samples; ++t) {
        double dx = trajs[0].position[static_cast<std::size_t>(t)] -
                    demo[0][static_cast<std::size_t>(t)];
        double dy = trajs[1].position[static_cast<std::size_t>(t)] -
                    demo[1][static_cast<std::size_t>(t)];
        err += std::sqrt(dx * dx + dy * dy);
    }
    err /= demo_samples;

    const double steps_total =
        static_cast<double>(rollouts) * demo_samples * 2.0;
    report.success = err < 0.5;
    report.metrics["tracking_error_m"] = err;
    report.metrics["rollout_fraction"] =
        report.phaseFraction("rollout");
    report.metrics["fit_fraction"] = report.phaseFraction("fit");
    report.metrics["ns_per_step"] =
        static_cast<double>(report.profiler.phaseNs("rollout")) /
        steps_total;
    report.series["traj_x"] = trajs[0].position;
    report.series["traj_y"] = trajs[1].position;
    report.series["vel_x"] = trajs[0].velocity;
    report.series["vel_y"] = trajs[1].velocity;
    return report;
}

} // namespace rtr

/**
 * @file
 * Kernel 05.pp3d — 3-D UAV path planning (paper §V.05).
 */

#ifndef RTR_KERNELS_KERNEL_PP3D_H
#define RTR_KERNELS_KERNEL_PP3D_H

#include "kernels/kernel.h"

namespace rtr {

/**
 * A small UAV plans a long route through a 3-D campus volume (the
 * fr_campus stand-in) with A* over the 26-connected lattice.
 *
 * Key metrics: collision_fraction and the graph-search share,
 * expansions, path cost.
 */
class Pp3dKernel : public Kernel
{
  public:
    std::string name() const override { return "pp3d"; }
    Stage stage() const override { return Stage::Planning; }
    std::string
    description() const override
    {
        return "A* UAV path planning in a 3-D campus volume";
    }
    void addOptions(ArgParser &parser) const override;
    KernelReport run(const ArgParser &args) const override;
};

} // namespace rtr

#endif // RTR_KERNELS_KERNEL_PP3D_H

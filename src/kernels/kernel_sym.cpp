#include "kernels/kernel_sym.h"

#include "symbolic/blocks_world.h"
#include "symbolic/firefight.h"
#include "symbolic/planner.h"
#include "util/roi.h"
#include "util/stopwatch.h"

namespace rtr {

namespace {

/** Shared execution path of both symbolic kernels. */
KernelReport
runSymbolic(const SymbolicProblem &problem, const ArgParser &args)
{
    KernelReport report;
    SymbolicPlannerConfig config;
    config.epsilon = args.getDouble("epsilon");
    config.heuristic = args.get("heuristic") == "goal-count"
                           ? SymbolicPlannerConfig::Heuristic::GoalCount
                           : SymbolicPlannerConfig::Heuristic::HAdd;

    SymbolicPlanner planner(problem, config);

    Stopwatch roi_timer;
    SymbolicPlanResult result;
    {
        ScopedRoi roi;
        result = planner.plan(&report.profiler);
    }
    report.roi_seconds = roi_timer.elapsedSec();

    report.success = result.found;
    // Node expansion (applicability tests, effect application) and the
    // heuristic's relaxed-reachability fixpoint are both set/string
    // manipulation over the node's atoms — together they are the
    // paper's "graph search, string manipulation" bottleneck. "expand"
    // includes the nested heuristic evaluations.
    double expand = report.phaseFraction("expand");
    double heuristic = report.phaseFraction("heuristic");
    report.metrics["string_ops_fraction"] = std::max(expand, heuristic);
    report.metrics["heuristic_fraction"] = heuristic;
    report.metrics["plan_length"] = result.cost;
    report.metrics["expanded"] = static_cast<double>(result.expanded);
    report.metrics["generated"] = static_cast<double>(result.generated);
    report.metrics["ground_actions"] =
        static_cast<double>(result.ground_action_count);
    report.metrics["branching_factor"] = result.avg_applicable_actions;
    return report;
}

} // namespace

void
SymBlkwKernel::addOptions(ArgParser &parser) const
{
    parser.addOption("blocks", "6", "Number of blocks");
    parser.addOption("epsilon", "1.5", "Heuristic inflation (WA*)");
    parser.addOption("heuristic", "hadd",
                     "Heuristic: hadd or goal-count");
    parser.addOption("seed", "1", "Random seed");
}

KernelReport
SymBlkwKernel::run(const ArgParser &args) const
{
    SymbolicProblem problem = makeBlocksWorld(
        static_cast<int>(args.getInt("blocks")),
        static_cast<std::uint64_t>(args.getInt("seed")));
    return runSymbolic(problem, args);
}

void
SymFextKernel::addOptions(ArgParser &parser) const
{
    parser.addOption("waypoints", "12", "Waypoint locations");
    parser.addOption("epsilon", "1.5", "Heuristic inflation (WA*)");
    parser.addOption("heuristic", "hadd",
                     "Heuristic: hadd or goal-count");
    parser.addOption("seed", "1", "Random seed");
}

KernelReport
SymFextKernel::run(const ArgParser &args) const
{
    SymbolicProblem problem =
        makeFirefight(static_cast<int>(args.getInt("waypoints")));
    return runSymbolic(problem, args);
}

} // namespace rtr

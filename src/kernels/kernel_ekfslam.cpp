#include "kernels/kernel_ekfslam.h"

#include <cmath>

#include "geom/angle.h"
#include "perception/ekf_slam.h"
#include "util/roi.h"
#include "util/stopwatch.h"

namespace rtr {

void
EkfSlamKernel::addOptions(ArgParser &parser) const
{
    parser.addOption("landmarks", "6", "Number of landmarks");
    parser.addOption("steps", "400", "Simulation steps");
    parser.addOption("dt", "0.1", "Timestep (s)");
    parser.addOption("velocity", "1.2", "Robot linear velocity (m/s)");
    parser.addOption("omega", "0.18", "Robot angular velocity (rad/s)");
    parser.addOption("seed", "1", "Random seed");
    addSimdOption(parser);
}

KernelReport
EkfSlamKernel::run(const ArgParser &args) const
{
    KernelReport report;
    applySimdOption(args);
    const int n_landmarks = static_cast<int>(args.getInt("landmarks"));
    const int steps = static_cast<int>(args.getInt("steps"));
    const double dt = args.getDouble("dt");
    const double v = args.getDouble("velocity");
    const double omega = args.getDouble("omega");
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed"));

    // ---- Input generation (outside the ROI) ----
    SlamWorld world = SlamWorld::make(n_landmarks, seed);
    EkfNoise noise;
    Rng world_rng(seed * 104729 + 3);

    // Ground-truth circular drive starting on the ring's inside.
    std::vector<Pose2> truth;
    Pose2 pose{6.0, 0.0, kPi / 2.0};
    truth.push_back(pose);
    for (int t = 1; t < steps; ++t) {
        pose.x += v * dt * std::cos(pose.theta);
        pose.y += v * dt * std::sin(pose.theta);
        pose.theta = normalizeAngle(pose.theta + omega * dt);
        truth.push_back(pose);
    }
    std::vector<std::vector<RangeBearing>> observations;
    std::vector<std::pair<double, double>> controls;
    for (int t = 0; t < steps; ++t) {
        observations.push_back(world.observe(
            truth[static_cast<std::size_t>(t)], noise, world_rng));
        // Noisy odometry controls.
        controls.emplace_back(v + world_rng.normal(0.0, 0.05),
                              omega + world_rng.normal(0.0, 0.01));
    }

    // ---- Filter execution (the ROI) ----
    EkfSlam slam(n_landmarks, noise);
    std::vector<double> cov_trace_series;
    std::vector<double> pose_error_series;

    Stopwatch roi_timer;
    {
        ScopedRoi roi;
        // Align the filter's frame with the truth's initial pose.
        slam.predict(0.0, 0.0, 0.0, &report.profiler);
        for (int t = 0; t < steps; ++t) {
            if (t > 0)
                slam.predict(controls[static_cast<std::size_t>(t)].first,
                             controls[static_cast<std::size_t>(t)].second,
                             dt, &report.profiler);
            slam.update(observations[static_cast<std::size_t>(t)],
                        &report.profiler);
            cov_trace_series.push_back(slam.covarianceTrace());
            Pose2 est = slam.robotEstimate();
            const Pose2 &gt = truth[static_cast<std::size_t>(t)];
            // The filter starts at the origin; truth starts at (6,0)
            // facing +y. Compare in the filter frame.
            double gx = gt.x - truth.front().x;
            double gy = gt.y - truth.front().y;
            double c = std::cos(-truth.front().theta);
            double s = std::sin(-truth.front().theta);
            double fx = c * gx - s * gy;
            double fy = s * gx + c * gy;
            double dx = est.x - fx;
            double dy = est.y - fy;
            pose_error_series.push_back(std::sqrt(dx * dx + dy * dy));
        }
    }
    report.roi_seconds = roi_timer.elapsedSec();

    // Landmark mapping error (in the filter frame).
    double landmark_error = 0.0;
    int known = 0;
    for (int id = 0; id < n_landmarks; ++id) {
        if (!slam.landmarkKnown(id))
            continue;
        Vec2 est = slam.landmarkEstimate(id);
        double gx = world.landmarks[static_cast<std::size_t>(id)].x -
                    truth.front().x;
        double gy = world.landmarks[static_cast<std::size_t>(id)].y -
                    truth.front().y;
        double c = std::cos(-truth.front().theta);
        double s = std::sin(-truth.front().theta);
        double fx = c * gx - s * gy;
        double fy = s * gx + c * gy;
        landmark_error += std::hypot(est.x - fx, est.y - fy);
        ++known;
    }
    if (known > 0)
        landmark_error /= known;

    report.success = known == n_landmarks && pose_error_series.back() < 1.0;
    report.metrics["matrix_ops_fraction"] =
        report.phaseFraction("matrix-ops");
    report.metrics["final_pose_error_m"] = pose_error_series.back();
    report.metrics["mean_landmark_error_m"] = landmark_error;
    report.metrics["landmarks_mapped"] = known;
    report.metrics["final_cov_trace"] = cov_trace_series.back();
    report.series["cov_trace"] = std::move(cov_trace_series);
    report.series["pose_error"] = std::move(pose_error_series);
    return report;
}

} // namespace rtr

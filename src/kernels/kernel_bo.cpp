#include "kernels/kernel_bo.h"

#include "control/ball_throw.h"
#include "control/bayes_opt.h"
#include "util/roi.h"
#include "util/stopwatch.h"

namespace rtr {

void
BoKernel::addOptions(ArgParser &parser) const
{
    parser.addOption("iterations", "45", "Learning iterations");
    parser.addOption("candidates", "25000",
                     "Acquisition candidates per iteration");
    parser.addOption("kappa", "2.0", "UCB exploration weight");
    parser.addOption("goal", "5.0", "Throw goal distance (m)");
    parser.addOption("seed", "1", "Random seed");
    addThreadsOption(parser);
    addSimdOption(parser);
    addBatchOption(parser);
}

KernelReport
BoKernel::run(const ArgParser &args) const
{
    KernelReport report;
    applyThreadsOption(args);
    applySimdOption(args);
    BallThrowEnv env(args.getDouble("goal"));

    BoConfig config;
    config.iterations = static_cast<int>(args.getInt("iterations"));
    config.candidates_per_iteration =
        static_cast<int>(args.getInt("candidates"));
    config.ucb_kappa = args.getDouble("kappa");
    config.batch_engine = batchEngineFromArgs(args);
    BayesOpt optimizer(config);

    Rng rng(static_cast<std::uint64_t>(args.getInt("seed")));
    auto reward = [&env](const std::vector<double> &params) {
        return env.evaluate(params);
    };
    auto trace = [&env](const std::vector<double> &params) {
        return env.flightTrace(params);
    };

    // ---- Learning (the ROI) ----
    BoResult result;
    Stopwatch roi_timer;
    {
        ScopedRoi roi;
        result = optimizer.optimize(reward, env.lowerBounds(),
                                    env.upperBounds(), rng,
                                    &report.profiler, trace);
    }
    report.roi_seconds = roi_timer.elapsedSec();

    report.success = result.best_reward > -0.25;
    report.metrics["sort_fraction"] = report.phaseFraction("sort");
    report.metrics["acquisition_fraction"] =
        report.phaseFraction("acquisition");
    report.metrics["gp_fit_fraction"] = report.phaseFraction("gp-fit");
    report.metrics["best_reward"] = result.best_reward;
    report.metrics["acquisition_evals"] =
        static_cast<double>(result.acquisition_evals);
    report.metrics["sort_ns_total"] =
        static_cast<double>(report.profiler.phaseNs("sort"));
    report.series["reward"] = std::move(result.reward_history);
    return report;
}

} // namespace rtr

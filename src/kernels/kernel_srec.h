/**
 * @file
 * Kernel 03.srec — 3-D scene reconstruction via ICP (paper §V.03).
 */

#ifndef RTR_KERNELS_KERNEL_SREC_H
#define RTR_KERNELS_KERNEL_SREC_H

#include "kernels/kernel.h"

namespace rtr {

/**
 * Depth scans of a synthetic living room (the ICL-NUIM stand-in) are
 * registered and fused frame by frame.
 *
 * Key metrics: pointcloud_fraction (nearest-neighbor correspondence +
 * merge; the paper's memory-bound >68%), matrix_ops_fraction (transform
 * estimation), and the trajectory error against ground truth.
 */
class SrecKernel : public Kernel
{
  public:
    std::string name() const override { return "srec"; }
    Stage stage() const override { return Stage::Perception; }
    std::string
    description() const override
    {
        return "ICP scene reconstruction from synthetic depth scans";
    }
    void addOptions(ArgParser &parser) const override;
    KernelReport run(const ArgParser &args) const override;
};

} // namespace rtr

#endif // RTR_KERNELS_KERNEL_SREC_H

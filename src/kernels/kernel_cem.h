/**
 * @file
 * Kernel 15.cem — cross-entropy method policy learning (paper §V.15).
 */

#ifndef RTR_KERNELS_KERNEL_CEM_H
#define RTR_KERNELS_KERNEL_CEM_H

#include "kernels/kernel.h"

namespace rtr {

/**
 * A ball-throwing robot (paper Fig. 17) learns throw parameters with
 * CEM: five iterations of fifteen samples, sorting each batch by
 * reward.
 *
 * Key metrics: sort_fraction (paper: ~1/3 of time), best reward, and
 * the per-sample reward series (Fig. 18).
 */
class CemKernel : public Kernel
{
  public:
    std::string name() const override { return "cem"; }
    Stage stage() const override { return Stage::Control; }
    std::string
    description() const override
    {
        return "CEM reinforcement learning for a ball-throwing robot";
    }
    void addOptions(ArgParser &parser) const override;
    KernelReport run(const ArgParser &args) const override;
};

} // namespace rtr

#endif // RTR_KERNELS_KERNEL_CEM_H

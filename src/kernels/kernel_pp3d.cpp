#include "kernels/kernel_pp3d.h"


#include <algorithm>
#include "grid/map_gen.h"
#include "search/grid_planner3d.h"
#include "util/logging.h"
#include "util/roi.h"
#include "util/stopwatch.h"

namespace rtr {

namespace {

/** Nearest free cell to an anchor, scanning shells outward. */
Cell3
findFreeCell(const OccupancyGrid3D &grid, double fx, double fy, double fz)
{
    Cell3 anchor{static_cast<int>(grid.width() * fx),
                 static_cast<int>(grid.height() * fy),
                 static_cast<int>(grid.depth() * fz)};
    int max_radius =
        std::max({grid.width(), grid.height(), grid.depth()});
    for (int radius = 0; radius < max_radius; ++radius) {
        for (int dz = -radius; dz <= radius; ++dz) {
            for (int dy = -radius; dy <= radius; ++dy) {
                for (int dx = -radius; dx <= radius; ++dx) {
                    if (std::max({std::abs(dx), std::abs(dy),
                                  std::abs(dz)}) != radius)
                        continue;
                    Cell3 c{anchor.x + dx, anchor.y + dy, anchor.z + dz};
                    if (!grid.occupied(c.x, c.y, c.z))
                        return c;
                }
            }
        }
    }
    fatal("no free cell near the requested anchor");
}

} // namespace

void
Pp3dKernel::addOptions(ArgParser &parser) const
{
    parser.addOption("map-size", "192", "Volume footprint (cells/side)");
    parser.addOption("map-depth", "24", "Volume height (cells)");
    parser.addOption("resolution", "1.0", "Resolution (m/cell)");
    parser.addOption("epsilon", "1.0", "Heuristic weight (1 = A*)");
    parser.addOption("seed", "1", "Random seed");
}

KernelReport
Pp3dKernel::run(const ArgParser &args) const
{
    KernelReport report;

    // ---- Input generation (outside the ROI) ----
    OccupancyGrid3D map = makeCampus3D(
        static_cast<int>(args.getInt("map-size")),
        static_cast<int>(args.getInt("map-size")),
        static_cast<int>(args.getInt("map-depth")),
        args.getDouble("resolution"),
        static_cast<std::uint64_t>(args.getInt("seed")));

    // Long diagonal at low altitude, forcing flight among buildings.
    Cell3 start = findFreeCell(map, 0.03, 0.03, 0.15);
    Cell3 goal = findFreeCell(map, 0.97, 0.97, 0.15);

    GridPlanner3D planner(map);

    // ---- Planning (the ROI) ----
    Stopwatch roi_timer;
    GridPlan3D plan;
    {
        ScopedRoi roi;
        plan = planner.plan(start, goal, args.getDouble("epsilon"),
                            &report.profiler);
    }
    report.roi_seconds = roi_timer.elapsedSec();

    report.success = plan.found;
    report.metrics["collision_fraction"] =
        report.phaseFraction("collision");
    report.metrics["expanded"] = static_cast<double>(plan.expanded);
    report.metrics["collision_checks"] =
        static_cast<double>(plan.collision_checks);
    report.metrics["path_cost_m"] = plan.cost;
    report.metrics["peak_open_list"] =
        static_cast<double>(plan.peak_open);
    return report;
}

} // namespace rtr

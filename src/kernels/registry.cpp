#include "kernels/registry.h"

#include "kernels/kernel_bo.h"
#include "kernels/kernel_cem.h"
#include "kernels/kernel_dmp.h"
#include "kernels/kernel_ekfslam.h"
#include "kernels/kernel_movtar.h"
#include "kernels/kernel_mpc.h"
#include "kernels/kernel_pfl.h"
#include "kernels/kernel_pp2d.h"
#include "kernels/kernel_pp3d.h"
#include "kernels/kernel_prm.h"
#include "kernels/kernel_rrt.h"
#include "kernels/kernel_rrtpp.h"
#include "kernels/kernel_rrtstar.h"
#include "kernels/kernel_srec.h"
#include "kernels/kernel_sym.h"
#include "util/logging.h"

namespace rtr {

const std::vector<std::string> &
kernelNames()
{
    static const std::vector<std::string> names = {
        "pfl",     "ekfslam", "srec",     "pp2d",
        "pp3d",    "movtar",  "prm",      "rrt",
        "rrtstar", "rrtpp",   "sym-blkw", "sym-fext",
        "dmp",     "mpc",     "cem",      "bo",
    };
    return names;
}

std::unique_ptr<Kernel>
makeKernel(const std::string &name)
{
    if (name == "pfl")
        return std::make_unique<PflKernel>();
    if (name == "ekfslam")
        return std::make_unique<EkfSlamKernel>();
    if (name == "srec")
        return std::make_unique<SrecKernel>();
    if (name == "pp2d")
        return std::make_unique<Pp2dKernel>();
    if (name == "pp3d")
        return std::make_unique<Pp3dKernel>();
    if (name == "movtar")
        return std::make_unique<MovtarKernel>();
    if (name == "prm")
        return std::make_unique<PrmKernel>();
    if (name == "rrt")
        return std::make_unique<RrtKernel>();
    if (name == "rrtstar")
        return std::make_unique<RrtStarKernel>();
    if (name == "rrtpp")
        return std::make_unique<RrtPpKernel>();
    if (name == "sym-blkw")
        return std::make_unique<SymBlkwKernel>();
    if (name == "sym-fext")
        return std::make_unique<SymFextKernel>();
    if (name == "dmp")
        return std::make_unique<DmpKernel>();
    if (name == "mpc")
        return std::make_unique<MpcKernel>();
    if (name == "cem")
        return std::make_unique<CemKernel>();
    if (name == "bo")
        return std::make_unique<BoKernel>();
    fatal("unknown kernel '", name, "'");
}

std::vector<std::unique_ptr<Kernel>>
makeAllKernels()
{
    std::vector<std::unique_ptr<Kernel>> kernels;
    for (const std::string &name : kernelNames())
        kernels.push_back(makeKernel(name));
    return kernels;
}

} // namespace rtr

/**
 * @file
 * Shared setup of the arm-manipulation kernels (07.prm - 10.rrtpp):
 * the 5-DoF planar arm in the paper's Map-C / Map-F workspaces
 * (Fig. 9) plus deterministic start/goal configuration sampling.
 */

#ifndef RTR_KERNELS_KERNEL_ARM_COMMON_H
#define RTR_KERNELS_KERNEL_ARM_COMMON_H

#include <cstdint>
#include <memory>
#include <string>

#include "arm/cspace.h"
#include "arm/planar_arm.h"
#include "arm/workspace.h"
#include "geom/angle.h"
#include "util/args.h"
#include "util/logging.h"
#include "util/rng.h"

namespace rtr {

/**
 * Everything the sampling-based kernels need to plan. Arm and workspace
 * are heap-held so the checker's references stay valid when the problem
 * object is moved.
 */
struct ArmProblem
{
    std::unique_ptr<PlanarArm> arm;
    std::unique_ptr<Workspace> workspace;
    ConfigSpace space;
    std::unique_ptr<ArmCollisionChecker> checker;
    ArmConfig start;
    ArmConfig goal;
};

/** Register the options shared by all four arm kernels. */
inline void
addArmOptions(ArgParser &parser)
{
    parser.addOption("dof", "5", "Arm degrees of freedom");
    parser.addOption("map", "C", "Workspace: C (cluttered) or F (free)");
    parser.addOption("seed", "1", "Random seed (planner sampling)");
    parser.addOption("instance-seed", "1",
                     "Random seed for the start/goal instance");
}

/** Build the problem from parsed options. */
inline ArmProblem
makeArmProblem(const ArgParser &args)
{
    const auto dof = static_cast<std::size_t>(args.getInt("dof"));
    RTR_ASSERT(dof >= 2, "arm kernels need dof >= 2");
    const std::string map = args.get("map");
    if (map != "F" && map != "C")
        fatal("--map must be C or F, got '", map, "'");

    ArmProblem problem{
        std::make_unique<PlanarArm>(
            PlanarArm::uniform(Vec2{0.25, 0.0}, dof, 0.45)),
        std::make_unique<Workspace>(map == "F" ? makeMapF() : makeMapC()),
        ConfigSpace(dof, -kPi, kPi),
        nullptr,
        {},
        {},
    };
    problem.checker = std::make_unique<ArmCollisionChecker>(
        *problem.arm, *problem.workspace);

    // Deterministic, well-separated, collision-free endpoints. The
    // instance seed is independent of the planner seed so seed sweeps
    // compare planners on the same problem.
    Rng rng(static_cast<std::uint64_t>(args.getInt("instance-seed")) *
                2654435761ULL +
            99);
    auto sample_free = [&]() -> ArmConfig {
        for (int attempt = 0; attempt < 100000; ++attempt) {
            ArmConfig q = problem.space.sample(rng);
            if (!problem.checker->configCollides(q))
                return q;
        }
        fatal("could not sample a collision-free configuration");
    };
    problem.start = sample_free();
    do {
        problem.goal = sample_free();
    } while (ConfigSpace::distance(problem.start, problem.goal) < 1.5);
    problem.checker->resetCounter();
    return problem;
}

} // namespace rtr

#endif // RTR_KERNELS_KERNEL_ARM_COMMON_H

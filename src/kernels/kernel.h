/**
 * @file
 * Common interface of the 16 RTRBench kernels.
 *
 * Every kernel builds its (synthetic) inputs outside the region of
 * interest, runs its algorithm inside it with phase profiling, and
 * reports timing fractions plus algorithm-specific metrics and series
 * (the data behind the paper's figures).
 */

#ifndef RTR_KERNELS_KERNEL_H
#define RTR_KERNELS_KERNEL_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pointcloud/nn_engine.h"
#include "util/args.h"
#include "util/batch_engine.h"
#include "util/profiler.h"

namespace rtr {

/** Robot software pipeline stage (paper Fig. 1). */
enum class Stage
{
    Perception,
    Planning,
    Control,
};

/** Stage to display string. */
std::string stageName(Stage stage);

/**
 * Register the standard --threads option shared by the parallelized
 * kernels (pfl, srec, prm, mpc, cem): 0 = hardware concurrency
 * (the default), 1 = exact sequential execution. Results are bitwise-
 * identical at every setting; only wall-clock time changes.
 */
void addThreadsOption(ArgParser &parser);

/** Apply a parsed --threads value to the parallel runtime. */
void applyThreadsOption(const ArgParser &args);

/**
 * Register the standard --simd option shared by the dense-linalg-bound
 * kernels (ekfslam, bo, srec): 1 = SIMD micro-kernels (the default),
 * 0 = the preserved scalar reference paths. The two are bitwise
 * identical for GEMM/factorization (DESIGN.md "Dense linear algebra");
 * the switch exists for scalar/SIMD A/B timing on one binary.
 */
void addSimdOption(ArgParser &parser);

/** Apply a parsed --simd value to the linalg dispatch flag. */
void applySimdOption(const ArgParser &args);

/**
 * Register the standard --nn option shared by the nearest-neighbor-bound
 * kernels (srec, prm, rrt, rrtstar, rrtpp): "bucket" = leaf-bucketed SoA
 * k-d tree (the default), "node" = the preserved one-point-per-node
 * reference tree. Both return exactly identical hits under the
 * (dist2, id) tie-break (DESIGN.md "Nearest-neighbor engine"); the
 * switch exists for engine A/B timing on one binary.
 */
void addNnOption(ArgParser &parser);

/** Parse the --nn value to an engine; fatal() on anything unknown. */
NnEngine nnEngineFromArgs(const ArgParser &args);

/**
 * Register the standard --batch option shared by the Monte-Carlo
 * rollout kernels (cem, mpc, bo, pfl): "soa" = SIMD-across-environments
 * batch engine (the default), "scalar" = the preserved one-environment-
 * at-a-time reference. Rewards, traces, states and particle weights
 * are bitwise identical either way (DESIGN.md "Batched environments");
 * the switch exists for engine A/B timing on one binary.
 */
void addBatchOption(ArgParser &parser);

/** Parse the --batch value to an engine; fatal() on anything unknown. */
BatchEngine batchEngineFromArgs(const ArgParser &args);

/** Result of one kernel run. */
struct KernelReport
{
    /** Whether the kernel accomplished its task. */
    bool success = false;
    /** Wall-clock seconds inside the region of interest. */
    double roi_seconds = 0.0;
    /** Phase timing accumulated inside the ROI. */
    PhaseProfiler profiler;
    /** Kernel-specific scalar metrics (error, path cost, counts, ...). */
    std::map<std::string, double> metrics;
    /** Kernel-specific series (the paper's figure data). */
    std::map<std::string, std::vector<double>> series;

    /** Fraction of ROI time spent in a phase. */
    double
    phaseFraction(const std::string &phase) const
    {
        return profiler.fractionOf(phase,
                                   static_cast<std::int64_t>(
                                       roi_seconds * 1e9));
    }
};

/**
 * Serialize a report to a file (CSV sections: phases, metrics, series)
 * so runs can be archived and plotted; fatal() if unwritable. The
 * per-kernel tools expose this as --output (paper Fig. 20).
 */
void writeReportFile(const KernelReport &report, const std::string &path);

/** Abstract kernel. */
class Kernel
{
  public:
    virtual ~Kernel() = default;

    /** Kernel identifier, e.g. "pfl". */
    virtual std::string name() const = 0;

    /** Pipeline stage (Table I column 2). */
    virtual Stage stage() const = 0;

    /** One-line description. */
    virtual std::string description() const = 0;

    /** Register this kernel's options (with defaults) on a parser. */
    virtual void addOptions(ArgParser &parser) const = 0;

    /** Execute with the parsed configuration. */
    virtual KernelReport run(const ArgParser &args) const = 0;

    /**
     * Convenience: run with default options, optionally overridden by
     * "--name value" pairs.
     */
    KernelReport runWithDefaults(
        const std::vector<std::string> &overrides = {}) const;
};

} // namespace rtr

#endif // RTR_KERNELS_KERNEL_H

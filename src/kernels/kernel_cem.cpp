#include "kernels/kernel_cem.h"

#include "control/ball_throw.h"
#include "control/batch_env.h"
#include "control/cem.h"
#include "util/roi.h"
#include "util/stopwatch.h"

namespace rtr {

void
CemKernel::addOptions(ArgParser &parser) const
{
    parser.addOption("iterations", "5", "Learning iterations");
    parser.addOption("samples", "15", "Samples per iteration");
    parser.addOption("elites", "4", "Elite samples kept per iteration");
    parser.addOption("goal", "5.0", "Throw goal distance (m)");
    parser.addOption("repeats", "2000",
                     "Learning episodes (for measurable timing)");
    parser.addOption("seed", "1", "Random seed");
    addThreadsOption(parser);
    addBatchOption(parser);
}

KernelReport
CemKernel::run(const ArgParser &args) const
{
    KernelReport report;
    applyThreadsOption(args);
    BallThrowEnv env(args.getDouble("goal"));

    CemConfig config;
    config.iterations = static_cast<int>(args.getInt("iterations"));
    config.samples_per_iteration =
        static_cast<int>(args.getInt("samples"));
    config.elites = static_cast<int>(args.getInt("elites"));
    CemOptimizer optimizer(config);

    const int repeats = static_cast<int>(args.getInt("repeats"));
    Rng rng(static_cast<std::uint64_t>(args.getInt("seed")));

    // Samples are scored through the batched throw evaluator (traces
    // included, as the paper's sort carries them); --batch selects the
    // SoA lanes or the preserved one-throw-at-a-time reference.
    ThrowSampleEvaluator evaluator(env, /*with_trace=*/true,
                                   batchEngineFromArgs(args));

    // ---- Learning (the ROI). One episode is tiny (75 evaluations);
    // repeat it to produce stable timing, exactly as a robot re-learning
    // across trials would. ----
    CemResult result;
    Stopwatch roi_timer;
    {
        ScopedRoi roi;
        for (int r = 0; r < repeats; ++r)
            result = optimizer.optimize(evaluator, env.lowerBounds(),
                                        env.upperBounds(), rng,
                                        &report.profiler);
    }
    report.roi_seconds = roi_timer.elapsedSec();

    report.success = result.best_reward > -0.25;
    report.metrics["sort_fraction"] = report.phaseFraction("sort");
    report.metrics["evaluate_fraction"] =
        report.phaseFraction("evaluate");
    report.metrics["best_reward"] = result.best_reward;
    report.metrics["evaluations_per_episode"] =
        static_cast<double>(result.evaluations);
    report.metrics["sort_ns_per_episode"] =
        static_cast<double>(report.profiler.phaseNs("sort")) / repeats;
    report.series["reward"] = std::move(result.reward_history);
    return report;
}

} // namespace rtr

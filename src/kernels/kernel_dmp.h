/**
 * @file
 * Kernel 13.dmp — dynamic movement primitives (paper §V.13).
 */

#ifndef RTR_KERNELS_KERNEL_DMP_H
#define RTR_KERNELS_KERNEL_DMP_H

#include "kernels/kernel.h"

namespace rtr {

/**
 * Fits a planar DMP to a demonstrated trajectory and rolls it out
 * (paper Fig. 15). The rollout's incremental integration is the
 * serialized, low-ILP computation the paper highlights.
 *
 * Key metrics: rollout ns/step (the serialization proxy), tracking
 * error vs the demonstration, and the trajectory/velocity series.
 */
class DmpKernel : public Kernel
{
  public:
    std::string name() const override { return "dmp"; }
    Stage stage() const override { return Stage::Control; }
    std::string
    description() const override
    {
        return "DMP trajectory generation from a demonstration";
    }
    void addOptions(ArgParser &parser) const override;
    KernelReport run(const ArgParser &args) const override;
};

} // namespace rtr

#endif // RTR_KERNELS_KERNEL_DMP_H

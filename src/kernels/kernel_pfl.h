/**
 * @file
 * Kernel 01.pfl — particle filter localization (paper §V.01).
 */

#ifndef RTR_KERNELS_KERNEL_PFL_H
#define RTR_KERNELS_KERNEL_PFL_H

#include "kernels/kernel.h"

namespace rtr {

/**
 * A robot with an odometer and a laser rangefinder localizes on a known
 * indoor building map. The run simulates the ground-truth trajectory
 * and sensor data, then executes the filter inside the ROI.
 *
 * Key metrics: raycast_fraction (paper: 0.67-0.78), final_error,
 * and the "spread" series (Fig. 2 convergence).
 */
class PflKernel : public Kernel
{
  public:
    std::string name() const override { return "pfl"; }
    Stage stage() const override { return Stage::Perception; }
    std::string
    description() const override
    {
        return "Particle filter localization on a known indoor map";
    }
    void addOptions(ArgParser &parser) const override;
    KernelReport run(const ArgParser &args) const override;
};

} // namespace rtr

#endif // RTR_KERNELS_KERNEL_PFL_H

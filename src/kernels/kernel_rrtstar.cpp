#include "kernels/kernel_rrtstar.h"

#include "kernels/kernel_arm_common.h"
#include "plan/rrt_star.h"
#include "util/roi.h"
#include "util/stopwatch.h"

namespace rtr {

void
RrtStarKernel::addOptions(ArgParser &parser) const
{
    addArmOptions(parser);
    parser.addOption("samples", "200000", "Sample budget");
    parser.addOption("epsilon", "0.25", "Epsilon (minimum movement)");
    parser.addOption("bias", "0.05", "Random number generation bias");
    parser.addOption("radius", "0.6", "Neighborhood distance");
    parser.addFlag("refine",
                   "Spend the full sample budget refining the path "
                   "instead of stopping at the first solution");
    addNnOption(parser);
}

KernelReport
RrtStarKernel::run(const ArgParser &args) const
{
    KernelReport report;
    ArmProblem problem = makeArmProblem(args);

    RrtStarConfig config;
    config.max_samples = static_cast<std::size_t>(args.getInt("samples"));
    config.step_size = args.getDouble("epsilon");
    config.goal_bias = args.getDouble("bias");
    config.rewire_radius = args.getDouble("radius");
    config.nn_engine = nnEngineFromArgs(args);
    if (args.getFlag("refine"))
        config.refine_factor = 1e18;

    RrtStarPlanner planner(problem.space, *problem.checker, config);
    Rng rng(static_cast<std::uint64_t>(args.getInt("seed")));

    // ---- Planning (the ROI) ----
    Stopwatch roi_timer;
    RrtStarPlan plan;
    {
        ScopedRoi roi;
        plan = planner.plan(problem.start, problem.goal, rng,
                            &report.profiler);
    }
    report.roi_seconds = roi_timer.elapsedSec();

    report.success = plan.found;
    report.metrics["collision_fraction"] =
        report.phaseFraction("collision");
    report.metrics["nn_fraction"] = report.phaseFraction("nn-search") +
                                    report.phaseFraction("rewire");
    report.metrics["rewires"] = static_cast<double>(plan.rewires);
    report.metrics["samples"] = static_cast<double>(plan.samples_drawn);
    report.metrics["tree_size"] = static_cast<double>(plan.tree_size);
    report.metrics["collision_checks"] =
        static_cast<double>(plan.collision_checks);
    report.metrics["path_cost_rad"] = plan.cost;
    return report;
}

} // namespace rtr

#include "kernels/kernel_pp2d.h"


#include <algorithm>
#include "grid/map_gen.h"
#include "grid/map_io.h"
#include "search/grid_planner2d.h"
#include "util/logging.h"
#include "util/roi.h"
#include "util/stopwatch.h"

namespace rtr {

namespace {

/**
 * Find a footprint-valid cell near a target fraction of the map, by
 * scanning outward row-major from the anchor point.
 */
Cell2
findValidCell(const GridPlanner2D &planner, const OccupancyGrid2D &grid,
              double fx, double fy)
{
    Cell2 anchor{static_cast<int>(grid.width() * fx),
                 static_cast<int>(grid.height() * fy)};
    for (int radius = 0; radius < std::max(grid.width(), grid.height());
         ++radius) {
        for (int dy = -radius; dy <= radius; ++dy) {
            for (int dx = -radius; dx <= radius; ++dx) {
                if (std::max(std::abs(dx), std::abs(dy)) != radius)
                    continue;
                Cell2 c{anchor.x + dx, anchor.y + dy};
                if (planner.stateValid(c, 0.0))
                    return c;
            }
        }
    }
    fatal("no footprint-valid cell near (", fx, ", ", fy, ")");
}

} // namespace

void
Pp2dKernel::addOptions(ArgParser &parser) const
{
    parser.addOption("map", "", "Moving AI .map file (empty = synthetic)");
    parser.addOption("map-size", "1024", "Synthetic map size (cells)");
    parser.addOption("resolution", "0.5", "Map resolution (m/cell)");
    parser.addOption("car-length", "4.8", "Car length (m)");
    parser.addOption("car-width", "1.8", "Car width (m)");
    parser.addOption("epsilon", "1.0", "Heuristic weight (1 = A*)");
    parser.addOption("seed", "1", "Random seed");
}

KernelReport
Pp2dKernel::run(const ArgParser &args) const
{
    KernelReport report;
    const double resolution = args.getDouble("resolution");

    // ---- Input generation (outside the ROI) ----
    OccupancyGrid2D map =
        args.get("map").empty()
            ? makeCityMap(static_cast<int>(args.getInt("map-size")),
                          resolution,
                          static_cast<std::uint64_t>(args.getInt("seed")))
            : loadMovingAiMapFile(args.get("map"), resolution);

    RectFootprint footprint(args.getDouble("car-length"),
                            args.getDouble("car-width"));
    GridPlanner2D planner(map, &footprint);

    // Long diagonal route: "the car traverses a long distance,
    // observing different obstacle patterns".
    Cell2 start = findValidCell(planner, map, 0.03, 0.03);
    Cell2 goal = findValidCell(planner, map, 0.97, 0.97);

    // ---- Planning (the ROI) ----
    Stopwatch roi_timer;
    GridPlan2D plan;
    {
        ScopedRoi roi;
        plan = planner.plan(start, goal, args.getDouble("epsilon"),
                            &report.profiler);
    }
    report.roi_seconds = roi_timer.elapsedSec();

    report.success = plan.found;
    report.metrics["collision_fraction"] =
        report.phaseFraction("collision");
    report.metrics["expanded"] = static_cast<double>(plan.expanded);
    report.metrics["collision_checks"] =
        static_cast<double>(plan.collision_checks);
    report.metrics["path_cost_m"] = plan.cost;
    report.metrics["path_cells"] = static_cast<double>(plan.path.size());
    report.metrics["peak_open_list"] =
        static_cast<double>(plan.peak_open);
    return report;
}

} // namespace rtr

/**
 * @file
 * Kernel 10.rrtpp — RRT with shortcut post-processing (paper §V.10).
 */

#ifndef RTR_KERNELS_KERNEL_RRTPP_H
#define RTR_KERNELS_KERNEL_RRTPP_H

#include "kernels/kernel.h"

namespace rtr {

/**
 * Baseline RRT followed by triangle-inequality shortcutting (paper
 * Fig. 12), landing between RRT and RRT* in both runtime and path cost.
 *
 * Key metrics: collision/nn fractions, shortcut_fraction, cost before
 * and after post-processing.
 */
class RrtPpKernel : public Kernel
{
  public:
    std::string name() const override { return "rrtpp"; }
    Stage stage() const override { return Stage::Planning; }
    std::string
    description() const override
    {
        return "RRT arm planning plus shortcut post-processing";
    }
    void addOptions(ArgParser &parser) const override;
    KernelReport run(const ArgParser &args) const override;
};

} // namespace rtr

#endif // RTR_KERNELS_KERNEL_RRTPP_H

#include "kernels/kernel_srec.h"

#include <cmath>

#include "perception/scene_reconstruction.h"
#include "pointcloud/scene_gen.h"
#include "util/roi.h"
#include "util/stopwatch.h"

namespace rtr {

void
SrecKernel::addOptions(ArgParser &parser) const
{
    parser.addOption("frames", "14", "Depth frames to fuse");
    parser.addOption("scan-width", "100", "Horizontal rays per frame");
    parser.addOption("scan-height", "75", "Vertical rays per frame");
    parser.addOption("voxel", "0.04", "Model voxel size (m)");
    parser.addOption("icp-iterations", "25", "Max ICP iterations/frame");
    parser.addOption("seed", "1", "Random seed");
    addThreadsOption(parser);
    addSimdOption(parser);
    addNnOption(parser);
}

KernelReport
SrecKernel::run(const ArgParser &args) const
{
    KernelReport report;
    applyThreadsOption(args);
    applySimdOption(args);
    const int frames = static_cast<int>(args.getInt("frames"));
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed"));

    // ---- Input generation (outside the ROI) ----
    IndoorScene scene = IndoorScene::livingRoom(seed);
    DepthCamera camera;
    camera.width = static_cast<int>(args.getInt("scan-width"));
    camera.height = static_cast<int>(args.getInt("scan-height"));
    std::vector<CameraPose> trajectory = makeTrajectory(scene, frames);

    Rng scan_rng(seed * 31 + 5);
    std::vector<PointCloud> scans;
    scans.reserve(static_cast<std::size_t>(frames));
    for (const CameraPose &pose : trajectory)
        scans.push_back(simulateScan(scene, pose, camera, scan_rng));

    SceneRecConfig config;
    config.voxel_size = args.getDouble("voxel");
    config.icp.max_iterations =
        static_cast<int>(args.getInt("icp-iterations"));
    config.icp.max_correspondence_distance = 0.5;
    config.icp.nn_engine = nnEngineFromArgs(args);

    // ---- Reconstruction (the ROI) ----
    SceneReconstructor reconstructor(config);
    std::vector<double> rmse_series;
    Stopwatch roi_timer;
    {
        ScopedRoi roi;
        for (const PointCloud &scan : scans) {
            reconstructor.addScan(scan, &report.profiler);
            rmse_series.push_back(reconstructor.lastRmse());
        }
    }
    report.roi_seconds = roi_timer.elapsedSec();

    // Trajectory error: estimated camera positions vs ground truth,
    // both relative to the first frame.
    double pose_error = 0.0;
    const RigidTransform3 world_from_first =
        trajectory.front().worldFromCamera();
    for (int f = 0; f < frames; ++f) {
        // Ground-truth pose of frame f expressed in frame 0.
        RigidTransform3 gt = world_from_first.inverted().compose(
            trajectory[static_cast<std::size_t>(f)].worldFromCamera());
        const Vec3 est =
            reconstructor.poses()[static_cast<std::size_t>(f)]
                .translation;
        pose_error += (est - gt.translation).norm();
    }
    pose_error /= frames;

    // Point-cloud operations: correspondence search, neighborhood
    // gathering, transform application, model merging — the irregular
    // memory traffic the paper identifies. Matrix operations: the
    // per-iteration 6x6 solves plus the per-point covariance
    // eigendecompositions of normal estimation.
    double nn = report.phaseFraction("icp-nn") +
                report.phaseFraction("icp-nn-build");
    double solve = report.phaseFraction("icp-solve");
    double apply = report.phaseFraction("icp-apply");
    double merge = report.phaseFraction("merge");
    double normals_nn = report.phaseFraction("normals-nn") +
                        report.phaseFraction("normals-nn-build");
    double normals_eigen = report.phaseFraction("normals-eigen");

    report.success = pose_error < 0.10;
    report.metrics["pointcloud_fraction"] =
        nn + merge + apply + normals_nn;
    report.metrics["matrix_ops_fraction"] = solve + normals_eigen;
    report.metrics["mean_pose_error_m"] = pose_error;
    report.metrics["final_rmse_m"] = rmse_series.back();
    report.metrics["model_points"] =
        static_cast<double>(reconstructor.model().size());
    report.series["icp_rmse"] = std::move(rmse_series);
    return report;
}

} // namespace rtr

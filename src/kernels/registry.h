/**
 * @file
 * Kernel registry: every RTRBench kernel by name, in Table I order.
 */

#ifndef RTR_KERNELS_REGISTRY_H
#define RTR_KERNELS_REGISTRY_H

#include <memory>
#include <string>
#include <vector>

#include "kernels/kernel.h"

namespace rtr {

/** All 16 kernel names in Table I order ("pfl", "ekfslam", ...). */
const std::vector<std::string> &kernelNames();

/** Instantiate a kernel by name; fatal() on unknown names. */
std::unique_ptr<Kernel> makeKernel(const std::string &name);

/** Instantiate every kernel in Table I order. */
std::vector<std::unique_ptr<Kernel>> makeAllKernels();

} // namespace rtr

#endif // RTR_KERNELS_REGISTRY_H

#include "kernels/kernel_rrtpp.h"

#include "kernels/kernel_arm_common.h"
#include "plan/rrt.h"
#include "plan/shortcut.h"
#include "util/roi.h"
#include "util/stopwatch.h"

namespace rtr {

void
RrtPpKernel::addOptions(ArgParser &parser) const
{
    addArmOptions(parser);
    parser.addOption("samples", "200000", "Maximum samples");
    parser.addOption("epsilon", "0.25", "Epsilon (minimum movement)");
    parser.addOption("bias", "0.05", "Random number generation bias");
    parser.addOption("shortcut-iterations", "200",
                     "Shortcut attempts in post-processing");
    addNnOption(parser);
}

KernelReport
RrtPpKernel::run(const ArgParser &args) const
{
    KernelReport report;
    ArmProblem problem = makeArmProblem(args);

    RrtConfig config;
    config.max_samples = static_cast<std::size_t>(args.getInt("samples"));
    config.step_size = args.getDouble("epsilon");
    config.goal_bias = args.getDouble("bias");
    config.nn_engine = nnEngineFromArgs(args);

    ShortcutConfig shortcut_config;
    shortcut_config.iterations =
        static_cast<std::size_t>(args.getInt("shortcut-iterations"));

    RrtPlanner planner(problem.space, *problem.checker, config);
    Rng rng(static_cast<std::uint64_t>(args.getInt("seed")));

    // ---- Planning + post-processing (the ROI) ----
    Stopwatch roi_timer;
    MotionPlan plan;
    ShortcutStats shortcut;
    {
        ScopedRoi roi;
        plan = planner.plan(problem.start, problem.goal, rng,
                            &report.profiler);
        if (plan.found)
            shortcut = shortcutPath(plan.path, *problem.checker,
                                    shortcut_config, rng,
                                    &report.profiler);
    }
    report.roi_seconds = roi_timer.elapsedSec();

    report.success = plan.found;
    report.metrics["collision_fraction"] =
        report.phaseFraction("collision");
    report.metrics["nn_fraction"] = report.phaseFraction("nn-search");
    report.metrics["shortcut_fraction"] =
        report.phaseFraction("shortcut");
    report.metrics["samples"] = static_cast<double>(plan.samples_drawn);
    report.metrics["cost_before_rad"] = shortcut.cost_before;
    report.metrics["cost_after_rad"] = shortcut.cost_after;
    report.metrics["shortcuts_applied"] =
        static_cast<double>(shortcut.shortcuts_applied);
    report.metrics["path_cost_rad"] = shortcut.cost_after;
    return report;
}

} // namespace rtr

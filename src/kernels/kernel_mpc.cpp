#include "kernels/kernel_mpc.h"

#include "control/mpc.h"

#include <cmath>
#include "util/roi.h"
#include "util/stopwatch.h"

namespace rtr {

void
MpcKernel::addOptions(ArgParser &parser) const
{
    parser.addOption("ref-points", "150", "Reference trajectory length");
    parser.addOption("spacing", "0.15", "Reference point spacing (m)");
    parser.addOption("horizon", "15", "MPC horizon (steps)");
    parser.addOption("opt-iterations", "40",
                     "Optimizer iterations per solve");
    parser.addOption("v-max", "2.0", "Velocity limit (m/s)");
    parser.addOption("a-max", "1.5", "Acceleration limit (m/s^2)");
    addThreadsOption(parser);
    addBatchOption(parser);
}

KernelReport
MpcKernel::run(const ArgParser &args) const
{
    KernelReport report;
    applyThreadsOption(args);

    // ---- Reference generation (outside the ROI) ----
    std::vector<Vec2> reference = makeReferenceTrajectory(
        static_cast<int>(args.getInt("ref-points")),
        args.getDouble("spacing"));

    MpcConfig config;
    config.horizon = static_cast<int>(args.getInt("horizon"));
    config.opt_iterations =
        static_cast<int>(args.getInt("opt-iterations"));
    config.v_max = args.getDouble("v-max");
    config.a_max = args.getDouble("a-max");
    config.batch_engine = batchEngineFromArgs(args);
    MpcController controller(config);

    // Start on the reference, aligned with it and at cruise speed, as
    // after a hand-off from the planner.
    UnicycleState start;
    start.x = reference.front().x;
    start.y = reference.front().y;
    Vec2 first_step = reference[1] - reference[0];
    start.theta = std::atan2(first_step.y, first_step.x);
    start.v = first_step.norm() / config.dt;

    // ---- Tracking (the ROI) ----
    Stopwatch roi_timer;
    TrackingResult tracking;
    {
        ScopedRoi roi;
        tracking =
            trackTrajectory(controller, reference, start, &report.profiler);
    }
    report.roi_seconds = roi_timer.elapsedSec();

    report.success = tracking.avg_error < 0.5 &&
                     tracking.max_velocity <= config.v_max + 1e-9;
    report.metrics["optimize_fraction"] =
        report.phaseFraction("optimize");
    report.metrics["avg_tracking_error_m"] = tracking.avg_error;
    report.metrics["max_tracking_error_m"] = tracking.max_error;
    report.metrics["max_velocity"] = tracking.max_velocity;
    report.metrics["cost_evals"] =
        static_cast<double>(tracking.cost_evals);
    return report;
}

} // namespace rtr

/**
 * @file
 * Kernel 07.prm — Probabilistic RoadMap arm planning (paper §V.07).
 */

#ifndef RTR_KERNELS_KERNEL_PRM_H
#define RTR_KERNELS_KERNEL_PRM_H

#include "kernels/kernel.h"

namespace rtr {

/**
 * A 5-DoF arm plans in Map-C/Map-F via PRM. The roadmap build is the
 * offline phase; the ROI is the online query (start/goal attachment +
 * graph search with L2 heuristics), matching the paper's observation
 * that only the online search is on the critical path.
 *
 * Key metrics: online graph-search fraction, L2-norm evaluation count,
 * path cost.
 */
class PrmKernel : public Kernel
{
  public:
    std::string name() const override { return "prm"; }
    Stage stage() const override { return Stage::Planning; }
    std::string
    description() const override
    {
        return "PRM arm motion planning (offline roadmap, online query)";
    }
    void addOptions(ArgParser &parser) const override;
    KernelReport run(const ArgParser &args) const override;
};

} // namespace rtr

#endif // RTR_KERNELS_KERNEL_PRM_H

/**
 * @file
 * Kernels 11.sym-blkw and 12.sym-fext — symbolic planning
 * (paper §V.11-12).
 */

#ifndef RTR_KERNELS_KERNEL_SYM_H
#define RTR_KERNELS_KERNEL_SYM_H

#include "kernels/kernel.h"

namespace rtr {

/**
 * Blocks-world solved by the symbolic planner (paper Fig. 13).
 *
 * Key metrics: expand_fraction (string manipulation), heuristic
 * fraction, plan length, branching factor.
 */
class SymBlkwKernel : public Kernel
{
  public:
    std::string name() const override { return "sym-blkw"; }
    Stage stage() const override { return Stage::Planning; }
    std::string
    description() const override
    {
        return "Symbolic planner solving blocks world";
    }
    void addOptions(ArgParser &parser) const override;
    KernelReport run(const ArgParser &args) const override;
};

/**
 * Firefighting robots solved by the same planner (paper Fig. 14); more
 * valid actions per state than blocks world (~3.2x in the paper),
 * i.e. more node-level parallelism.
 */
class SymFextKernel : public Kernel
{
  public:
    std::string name() const override { return "sym-fext"; }
    Stage stage() const override { return Stage::Planning; }
    std::string
    description() const override
    {
        return "Symbolic planner solving the firefighting problem";
    }
    void addOptions(ArgParser &parser) const override;
    KernelReport run(const ArgParser &args) const override;
};

} // namespace rtr

#endif // RTR_KERNELS_KERNEL_SYM_H

/**
 * @file
 * Kernel 08.rrt — RRT arm planning in dynamic environments
 * (paper §V.08).
 */

#ifndef RTR_KERNELS_KERNEL_RRT_H
#define RTR_KERNELS_KERNEL_RRT_H

#include "kernels/kernel.h"

namespace rtr {

/**
 * RRT grows a tree online (no offline phase, unlike prm), so collision
 * detection and nearest-neighbor search sit on the critical path.
 *
 * Key metrics: collision_fraction (paper: up to 0.62), nn_fraction
 * (paper: up to 0.31), samples, tree size, path cost.
 */
class RrtKernel : public Kernel
{
  public:
    std::string name() const override { return "rrt"; }
    Stage stage() const override { return Stage::Planning; }
    std::string
    description() const override
    {
        return "RRT arm motion planning (online tree construction)";
    }
    void addOptions(ArgParser &parser) const override;
    KernelReport run(const ArgParser &args) const override;
};

} // namespace rtr

#endif // RTR_KERNELS_KERNEL_RRT_H

#include "kernels/kernel_rrt.h"

#include "kernels/kernel_arm_common.h"
#include "plan/rrt.h"
#include "util/roi.h"
#include "util/stopwatch.h"

namespace rtr {

void
RrtKernel::addOptions(ArgParser &parser) const
{
    addArmOptions(parser);
    parser.addOption("samples", "200000", "Maximum samples");
    parser.addOption("epsilon", "0.25", "Epsilon (minimum movement)");
    parser.addOption("bias", "0.05", "Random number generation bias");
    parser.addOption("no-kdtree", "0",
                     "1 = brute-force nearest neighbors");
    addNnOption(parser);
}

KernelReport
RrtKernel::run(const ArgParser &args) const
{
    KernelReport report;
    ArmProblem problem = makeArmProblem(args);

    RrtConfig config;
    config.max_samples = static_cast<std::size_t>(args.getInt("samples"));
    config.step_size = args.getDouble("epsilon");
    config.goal_bias = args.getDouble("bias");
    config.use_kdtree = args.getInt("no-kdtree") == 0;
    config.nn_engine = nnEngineFromArgs(args);

    RrtPlanner planner(problem.space, *problem.checker, config);
    Rng rng(static_cast<std::uint64_t>(args.getInt("seed")));

    // ---- Planning (the ROI; everything is online for RRT) ----
    Stopwatch roi_timer;
    MotionPlan plan;
    {
        ScopedRoi roi;
        plan = planner.plan(problem.start, problem.goal, rng,
                            &report.profiler);
    }
    report.roi_seconds = roi_timer.elapsedSec();

    report.success = plan.found;
    report.metrics["collision_fraction"] =
        report.phaseFraction("collision");
    report.metrics["nn_fraction"] = report.phaseFraction("nn-search");
    report.metrics["samples"] = static_cast<double>(plan.samples_drawn);
    report.metrics["tree_size"] = static_cast<double>(plan.tree_size);
    report.metrics["collision_checks"] =
        static_cast<double>(plan.collision_checks);
    report.metrics["path_cost_rad"] = plan.cost;
    return report;
}

} // namespace rtr

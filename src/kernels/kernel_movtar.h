/**
 * @file
 * Kernel 06.movtar — catching a moving target (paper §V.06).
 */

#ifndef RTR_KERNELS_KERNEL_MOVTAR_H
#define RTR_KERNELS_KERNEL_MOVTAR_H

#include "kernels/kernel.h"

namespace rtr {

/**
 * Weighted A* in (x, y, t) over a synthetic location-cost field, with a
 * backward-Dijkstra heuristic, intercepting a target of known
 * trajectory (paper Fig. 7).
 *
 * Key metrics: heuristic_fraction vs search_fraction (the paper's
 * observation that the heuristic dominates in small environments, up to
 * 62%), expansions, catch time, plan cost.
 */
class MovtarKernel : public Kernel
{
  public:
    std::string name() const override { return "movtar"; }
    Stage stage() const override { return Stage::Planning; }
    std::string
    description() const override
    {
        return "Moving-target interception with WA* over (x, y, t)";
    }
    void addOptions(ArgParser &parser) const override;
    KernelReport run(const ArgParser &args) const override;
};

} // namespace rtr

#endif // RTR_KERNELS_KERNEL_MOVTAR_H

/**
 * @file
 * Per-kernel command-line driver (the paper's kernel binaries,
 * Fig. 20): each tool executable compiles this file with
 * RTR_KERNEL_NAME set, exposes every configuration parameter as a
 * --option, and prints the run's metrics.
 */

#include <iostream>

#include "kernels/registry.h"
#include "util/table.h"

#ifndef RTR_KERNEL_NAME
#error "compile with -DRTR_KERNEL_NAME=\"<kernel>\""
#endif

int
main(int argc, char **argv)
{
    auto kernel = rtr::makeKernel(RTR_KERNEL_NAME);
    rtr::ArgParser parser(std::string(RTR_KERNEL_NAME) + ".out");
    kernel->addOptions(parser);
    parser.addOption("output", "", "Output report file (CSV)");
    parser.parse(argc, argv);

    rtr::KernelReport report = kernel->run(parser);
    if (!parser.get("output").empty())
        rtr::writeReportFile(report, parser.get("output"));

    std::cout << kernel->name() << " (" << rtr::stageName(kernel->stage())
              << "): " << kernel->description() << "\n";
    std::cout << "success: " << (report.success ? "yes" : "no")
              << "   roi: " << rtr::Table::num(report.roi_seconds * 1e3, 2)
              << " ms\n\n";

    rtr::Table phases({"phase", "time (ms)", "share of ROI", "count"});
    for (const auto &phase : report.profiler.phases()) {
        phases.addRow({phase.name, rtr::Table::num(phase.ns / 1e6, 2),
                       rtr::Table::pct(report.phaseFraction(phase.name)),
                       rtr::Table::count(phase.count)});
    }
    phases.print();
    std::cout << "\n";

    rtr::Table metrics({"metric", "value"});
    for (const auto &[name, value] : report.metrics)
        metrics.addRow({name, rtr::Table::num(value, 4)});
    metrics.print();
    return report.success ? 0 : 1;
}

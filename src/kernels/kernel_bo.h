/**
 * @file
 * Kernel 16.bo — Bayesian optimization policy learning (paper §V.16).
 */

#ifndef RTR_KERNELS_KERNEL_BO_H
#define RTR_KERNELS_KERNEL_BO_H

#include "kernels/kernel.h"

namespace rtr {

/**
 * The ball-throwing task learned with GP-UCB Bayesian optimization: 45
 * learning iterations, each scoring a large candidate batch with the
 * acquisition function and sorting it (paper: BO's sort is ~6x costlier
 * than CEM's, and it runs ~15000x more (acquisition) iterations).
 *
 * Key metrics: sort_fraction, acquisition_evals, best reward, and the
 * per-iteration reward series (Fig. 19).
 */
class BoKernel : public Kernel
{
  public:
    std::string name() const override { return "bo"; }
    Stage stage() const override { return Stage::Control; }
    std::string
    description() const override
    {
        return "Bayesian optimization for a ball-throwing robot";
    }
    void addOptions(ArgParser &parser) const override;
    KernelReport run(const ArgParser &args) const override;
};

} // namespace rtr

#endif // RTR_KERNELS_KERNEL_BO_H

#include "kernels/kernel_pfl.h"

#include <cmath>

#include "geom/angle.h"
#include "grid/map_gen.h"
#include "grid/raycast.h"
#include "perception/particle_filter.h"
#include "util/logging.h"
#include "util/roi.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace rtr {

namespace {

/**
 * Ground-truth corridor walk: the robot traverses the building's main
 * corridor left-to-right, starting in one of five regions (the paper
 * evaluates pfl "in five different parts of the building").
 */
std::vector<Pose2>
makeTruePath(const OccupancyGrid2D &map, int region, int steps,
             double step_len, Rng &rng)
{
    double corridor_y = map.origin().y + map.worldHeight() / 2.0;
    double span = map.worldWidth();
    double start_x = map.origin().x + span * (0.08 + 0.17 * region);

    std::vector<Pose2> path;
    Pose2 pose{start_x, corridor_y, 0.0};
    path.push_back(pose);
    for (int i = 1; i < steps; ++i) {
        // Walk along the corridor with small heading jitter, bouncing
        // off obstacles by steering away when the lookahead ray is
        // short.
        double lookahead =
            castRay(map, pose.position(), pose.theta, 3.0);
        if (lookahead < step_len * 2.5) {
            pose.theta = normalizeAngle(pose.theta + kPi / 2.0 +
                                        rng.uniform(-0.3, 0.3));
        } else {
            pose.theta = normalizeAngle(
                pose.theta + rng.uniform(-0.08, 0.08));
        }
        Pose2 next{pose.x + step_len * std::cos(pose.theta),
                   pose.y + step_len * std::sin(pose.theta), pose.theta};
        if (!map.occupiedWorld(next.position()))
            pose = next;
        else
            pose.theta = normalizeAngle(pose.theta + kPi / 2.0);
        path.push_back(pose);
    }
    return path;
}

} // namespace

void
PflKernel::addOptions(ArgParser &parser) const
{
    parser.addOption("particles", "1000", "Number of particles");
    parser.addOption("beams", "60", "Laser beams per scan");
    parser.addOption("steps", "60", "Trajectory steps");
    parser.addOption("region", "2", "Building region (0-4)");
    parser.addOption("map-width", "240", "Map width (cells)");
    parser.addOption("map-height", "160", "Map height (cells)");
    parser.addOption("resolution", "0.25", "Map resolution (m/cell)");
    parser.addOption("max-range", "10.0", "Laser max range (m)");
    parser.addOption("init-radius", "5.0",
                     "Initial position uncertainty radius (m)");
    parser.addOption("seed", "1", "Random seed");
    parser.addOption("raycast", rayEngineName(defaultRayEngine()),
                     "Ray-cast engine: packet (octant-binned SIMD "
                     "packets), hier (pyramid empty-region skipping) or "
                     "scalar (probe every cell); ranges and weights are "
                     "bitwise identical across engines. Default honours "
                     "RTR_RAYCAST");
    parser.addFlag("global", "Initialize uniformly over the whole map");
    addThreadsOption(parser);
    addBatchOption(parser);
}

KernelReport
PflKernel::run(const ArgParser &args) const
{
    KernelReport report;
    applyThreadsOption(args);
    const auto n_particles =
        static_cast<std::size_t>(args.getInt("particles"));
    const int n_beams = static_cast<int>(args.getInt("beams"));
    const int steps = static_cast<int>(args.getInt("steps"));
    const int region = static_cast<int>(args.getInt("region"));
    const double max_range = args.getDouble("max-range");
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed"));

    // ---- Input generation (outside the ROI) ----
    OccupancyGrid2D map = makeIndoorMap(
        static_cast<int>(args.getInt("map-width")),
        static_cast<int>(args.getInt("map-height")),
        args.getDouble("resolution"), seed);
    Rng world_rng(seed * 7919 + 17);
    std::vector<Pose2> truth =
        makeTruePath(map, region, steps, 0.3, world_rng);

    std::vector<OdometryReading> odometry;
    std::vector<LaserScan> scans;
    for (int t = 0; t < steps; ++t) {
        if (t > 0)
            odometry.push_back(odometryBetween(
                truth[static_cast<std::size_t>(t - 1)],
                truth[static_cast<std::size_t>(t)]));
        scans.push_back(simulateScan(map,
                                     truth[static_cast<std::size_t>(t)],
                                     n_beams, max_range, 0.05, world_rng));
    }

    // ---- Filter execution (the ROI) ----
    ParticleFilter filter(map, n_particles);
    RayEngine ray_engine;
    if (!parseRayEngine(args.get("raycast"), ray_engine))
        fatal("--raycast must be 'packet', 'hier' or 'scalar'");
    filter.setRayEngine(ray_engine);
    // --batch / RTR_BATCH_ENGINE force one engine for both phases;
    // otherwise each phase keeps its own default (motion SoA, weight
    // scalar — the sensor-model SoA leg measured below 1x).
    if (args.isSet("batch") || batchEngineOverridden())
        filter.setBatchEngine(batchEngineFromArgs(args));
    Rng filter_rng(seed);
    if (args.getFlag("global"))
        filter.initializeUniform(filter_rng);
    else
        filter.initializeRegion(truth.front(),
                                args.getDouble("init-radius"), 0.5,
                                filter_rng);

    std::vector<double> spread_series;
    spread_series.push_back(filter.coreSpread());
    Stopwatch roi_timer;
    {
        ScopedRoi roi;
        filter.measurementUpdate(scans[0], &report.profiler);
        filter.resample(filter_rng, &report.profiler);
        spread_series.push_back(filter.coreSpread());
        for (int t = 1; t < steps; ++t) {
            filter.motionUpdate(odometry[static_cast<std::size_t>(t - 1)],
                                filter_rng, &report.profiler);
            filter.measurementUpdate(scans[static_cast<std::size_t>(t)],
                                     &report.profiler);
            filter.resample(filter_rng, &report.profiler);
            spread_series.push_back(filter.coreSpread());
        }
    }
    report.roi_seconds = roi_timer.elapsedSec();

    Pose2 estimate = filter.estimate();
    const Pose2 &final_truth = truth.back();
    double dx = estimate.x - final_truth.x;
    double dy = estimate.y - final_truth.y;

    report.success = std::sqrt(dx * dx + dy * dy) < 1.5;
    report.metrics["final_error_m"] = std::sqrt(dx * dx + dy * dy);
    report.metrics["final_spread_m"] = filter.spread();
    report.metrics["initial_spread_m"] = spread_series.front();
    report.metrics["rays_cast"] =
        static_cast<double>(filter.raysCast());
    report.metrics["raycast_fraction"] =
        report.phaseFraction("raycast");

    // Traversal diagnostics (outside the ROI): re-cast the final
    // estimate's scan with counted engines to report how many cells
    // each engine actually touches per ray on this map.
    {
        RayCastStats hier, scalar;
        const double beam_step =
            n_beams > 1 ? scans[0].fov / static_cast<double>(n_beams)
                        : 0.0;
        for (int b = 0; b < n_beams; ++b) {
            double angle = estimate.theta + scans[0].start_angle +
                           static_cast<double>(b) * beam_step;
            double fast = castRayCounted(map, estimate.position(), angle,
                                         max_range, hier);
            double slow = castRayScalarCounted(map, estimate.position(),
                                               angle, max_range, scalar);
            RTR_ASSERT(fast == slow,
                       "ray-cast engines must agree bitwise");
        }
        RayCastStats packet;
        std::vector<double> packet_ranges;
        castScanCounted(map, estimate.position(),
                        estimate.theta + scans[0].start_angle,
                        scans[0].fov, n_beams, max_range, packet_ranges,
                        RayEngine::Packet, packet);
        for (int b = 0; b < n_beams; ++b) {
            double angle = estimate.theta + scans[0].start_angle +
                           static_cast<double>(b) * beam_step;
            RTR_ASSERT(packet_ranges[static_cast<std::size_t>(b)] ==
                           castRay(map, estimate.position(), angle,
                                   max_range),
                       "packet engine must agree bitwise");
        }
        const double rays = static_cast<double>(n_beams > 0 ? n_beams : 1);
        report.metrics["probes_per_ray_hier"] =
            static_cast<double>(hier.probes) / rays;
        report.metrics["probes_per_ray_scalar"] =
            static_cast<double>(scalar.probes) / rays;
        report.metrics["probes_per_ray_packet"] =
            static_cast<double>(packet.probes) / rays;
    }
    report.series["spread"] = std::move(spread_series);
    return report;
}

} // namespace rtr

/**
 * @file
 * Kernel 02.ekfslam — EKF simultaneous localization and mapping
 * (paper §V.02).
 */

#ifndef RTR_KERNELS_KERNEL_EKFSLAM_H
#define RTR_KERNELS_KERNEL_EKFSLAM_H

#include "kernels/kernel.h"

namespace rtr {

/**
 * A robot circles a synthetic landmark field (paper Fig. 3), fusing
 * noisy range-bearing measurements with EKF-SLAM.
 *
 * Key metrics: matrix_ops_fraction (paper: > 0.85), final pose and
 * landmark estimation errors, and the covariance-trace series
 * (the shrinking uncertainty ellipses of Fig. 3-(b)).
 */
class EkfSlamKernel : public Kernel
{
  public:
    std::string name() const override { return "ekfslam"; }
    Stage stage() const override { return Stage::Perception; }
    std::string
    description() const override
    {
        return "EKF-SLAM with range-bearing landmark measurements";
    }
    void addOptions(ArgParser &parser) const override;
    KernelReport run(const ArgParser &args) const override;
};

} // namespace rtr

#endif // RTR_KERNELS_KERNEL_EKFSLAM_H

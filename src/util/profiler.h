/**
 * @file
 * Named-phase execution profiler.
 *
 * RTRBench's evaluation attributes execution time to algorithmic phases
 * ("67-78% of the entire execution time is spent in ray-casting"). The
 * PhaseProfiler reproduces that methodology on a real machine: substrate
 * code brackets coarse-grained phases (one scope per batch of work, never
 * per innermost operation, to keep timer overhead negligible) and the
 * benchmark harness reports each phase's share of the ROI.
 */

#ifndef RTR_UTIL_PROFILER_H
#define RTR_UTIL_PROFILER_H

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rtr {

/**
 * Accumulates inclusive nanoseconds and entry counts per phase name.
 *
 * Phases may nest (each open scope accumulates its own inclusive time);
 * a phase name maps to a single accumulator regardless of nesting depth.
 * Re-entering a phase that is already open on the stack is a library bug.
 *
 * When the global tracer (telemetry/trace.h) is enabled, every closed
 * phase is additionally mirrored into it as a complete span, so an
 * exported trace shows the exact same phase timeline the profiler
 * aggregates; with tracing disabled the mirror costs one relaxed load
 * per end().
 */
class PhaseProfiler
{
  public:
    using Clock = std::chrono::steady_clock;

    /** One phase's accumulated totals. */
    struct PhaseTotal
    {
        std::string name;
        std::int64_t ns = 0;
        std::int64_t count = 0;
    };

    /** Begin a named phase; must be matched by end(). */
    void begin(std::string_view name);

    /** End the innermost open phase. */
    void end();

    /** Total accumulated nanoseconds for a phase (0 if never entered). */
    std::int64_t phaseNs(std::string_view name) const;

    /** Number of times a phase was entered. */
    std::int64_t phaseCount(std::string_view name) const;

    /** Fraction of the given total attributable to the phase. */
    double
    fractionOf(std::string_view name, std::int64_t total_ns) const
    {
        return total_ns > 0
                   ? static_cast<double>(phaseNs(name)) / total_ns
                   : 0.0;
    }

    /** All phases in first-entered order. */
    const std::vector<PhaseTotal> &phases() const { return totals_; }

    /** Drop all accumulated data. */
    void reset();

    /** Merge another profiler's totals into this one. */
    void merge(const PhaseProfiler &other);

  private:
    struct OpenScope
    {
        std::size_t index;
        Clock::time_point start;
    };

    std::size_t indexOf(std::string_view name);

    std::vector<PhaseTotal> totals_;
    std::vector<OpenScope> stack_;
};

/**
 * RAII helper that brackets one profiler phase.
 *
 * Accepts a null profiler so library code can be instrumented
 * unconditionally while un-profiled callers pay (almost) nothing.
 */
class ScopedPhase
{
  public:
    ScopedPhase(PhaseProfiler *profiler, std::string_view name)
        : profiler_(profiler)
    {
        if (profiler_)
            profiler_->begin(name);
    }

    ~ScopedPhase()
    {
        if (profiler_)
            profiler_->end();
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    PhaseProfiler *profiler_;
};

} // namespace rtr

#endif // RTR_UTIL_PROFILER_H

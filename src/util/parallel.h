/**
 * @file
 * Deterministic task-parallel runtime.
 *
 * RTRBench's dominant kernels spend most of their time in
 * embarrassingly-parallel inner loops (per-particle ray-casting,
 * per-point correspondence search, per-sample rollout scoring,
 * per-node edge validation). This runtime lets those loops use every
 * core while keeping results bitwise-identical at any thread count:
 *
 *  - The iteration range is split into chunks by a *grain* that never
 *    depends on the thread count, so the work decomposition is a pure
 *    function of the problem size.
 *  - Chunks write to disjoint outputs; reductions combine per-chunk
 *    results (or per-item values) in chunk/index order, never in
 *    completion order. Work-stealing completion order therefore cannot
 *    leak into floating-point results.
 *  - Stochastic loops draw from per-chunk RNG sub-streams derived by
 *    seed-splitting (Rng::split), so random sequences are a function of
 *    the chunk index, not of which thread ran the chunk.
 *
 * A lazily-initialized persistent pool of workers executes chunks; the
 * calling thread participates. `setParallelThreads(1)` (or a nested
 * call from inside a parallel region) runs everything inline on the
 * caller, reproducing sequential execution exactly. Loop bodies must
 * not throw.
 */

#ifndef RTR_UTIL_PARALLEL_H
#define RTR_UTIL_PARALLEL_H

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace rtr {

/** Number of hardware execution contexts (always >= 1). */
std::size_t hardwareThreads();

/** Current worker-thread setting (>= 1); 1 means fully sequential. */
std::size_t parallelThreads();

/**
 * Set the number of threads used by parallelFor and friends. 0 selects
 * hardware concurrency. Takes effect at the next parallel region; must
 * not be called from inside one.
 */
void setParallelThreads(std::size_t n);

/** One contiguous chunk of a partitioned iteration range. */
struct ChunkRange
{
    std::size_t begin = 0;
    std::size_t end = 0;
    /** Chunk ordinal in [0, chunkCount); stable across thread counts. */
    std::size_t index = 0;
};

/**
 * Resolve the effective grain for [begin, end): an explicit positive
 * grain is used as-is; grain 0 selects a default that bounds the chunk
 * fan-out. The result depends only on the range, never on the thread
 * count, so chunk decomposition is reproducible.
 */
std::size_t resolveGrain(std::size_t begin, std::size_t end,
                         std::size_t grain);

/** Number of chunks [begin, end) splits into at the given grain. */
std::size_t chunkCount(std::size_t begin, std::size_t end,
                       std::size_t grain);

/**
 * Run @p body once per chunk of [begin, end), possibly concurrently.
 * Chunk-to-thread assignment is unspecified; everything a body writes
 * must be disjoint per chunk (or per index). Safe to call reentrantly
 * (nested regions run inline) and with empty ranges.
 */
void parallelForChunks(std::size_t begin, std::size_t end,
                       std::size_t grain,
                       const std::function<void(const ChunkRange &)> &body);

/** Per-index convenience wrapper over parallelForChunks. */
void parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t)> &body);

/**
 * parallelForChunks with a deterministic per-chunk RNG: chunk i draws
 * from base.split(i), so the random stream consumed by each chunk is a
 * function of the chunk index alone.
 */
void parallelForRng(std::size_t begin, std::size_t end, std::size_t grain,
                    const Rng &base,
                    const std::function<void(const ChunkRange &, Rng &)>
                        &body);

/**
 * Deterministic map/reduce: @p map produces one value per chunk
 * (possibly concurrently); the partial results are folded with
 * @p combine in ascending chunk order, so the result is identical for
 * any thread count (including 1).
 */
template <typename T, typename MapFn, typename CombineFn>
T
parallelReduce(std::size_t begin, std::size_t end, std::size_t grain,
               T init, MapFn &&map, CombineFn &&combine)
{
    const std::size_t g = resolveGrain(begin, end, grain);
    const std::size_t n_chunks = chunkCount(begin, end, g);
    if (n_chunks == 0)
        return init;
    std::vector<T> partial(n_chunks);
    parallelForChunks(begin, end, g, [&](const ChunkRange &chunk) {
        partial[chunk.index] = map(chunk.begin, chunk.end);
    });
    T acc = std::move(init);
    for (T &p : partial)
        acc = combine(std::move(acc), std::move(p));
    return acc;
}

} // namespace rtr

#endif // RTR_UTIL_PARALLEL_H

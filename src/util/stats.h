/**
 * @file
 * Small statistics helpers for benchmark reporting.
 */

#ifndef RTR_UTIL_STATS_H
#define RTR_UTIL_STATS_H

#include <cstddef>
#include <vector>

namespace rtr {

/**
 * Online accumulator for mean / variance / extrema (Welford's method).
 */
class RunningStat
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Number of samples seen so far. */
    std::size_t count() const { return count_; }

    /** Sample mean (0 when empty). */
    double mean() const { return mean_; }

    /** Unbiased sample variance (0 with fewer than two samples). */
    double variance() const;

    /** Unbiased sample standard deviation. */
    double stddev() const;

    /** Smallest sample seen (0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }

    /** Largest sample seen (0 when empty). */
    double max() const { return count_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * The q-th quantile (q in [0,1]) of a sample set by linear interpolation.
 * The input is copied; it does not need to be sorted.
 */
double quantile(std::vector<double> samples, double q);

/** Arithmetic mean of a sample set (0 when empty). */
double mean(const std::vector<double> &samples);

} // namespace rtr

#endif // RTR_UTIL_STATS_H

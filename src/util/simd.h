/**
 * @file
 * Portable SIMD vector of doubles (rtr::simd::VecD).
 *
 * One backend is selected at compile time:
 *
 *   AVX2 (width 4)  when the translation unit is compiled with -mavx2
 *   SSE2 (width 2)  on any x86-64 target (SSE2 is baseline)
 *   NEON (width 2)  on AArch64
 *   scalar (width 1) everywhere else, or when RTR_FORCE_SCALAR_SIMD is
 *                    defined (the CMake option of the same name; the CI
 *                    matrix builds one tree with it so the fallback
 *                    cannot rot on x86 hosts)
 *
 * Design rule: every operation maps to exactly one IEEE-754 double
 * operation per lane — there is deliberately NO fused-multiply-add.
 * mulAdd()/mulSub() are a separate multiply followed by a separate
 * add/subtract in every backend, so a vectorized loop produces bitwise
 * the same values as the equivalent scalar loop (compiled with fp
 * contraction off, as src/linalg/ is). That property is what lets the
 * dense-linalg micro-kernels guarantee bitwise identity against their
 * preserved scalar reference paths.
 *
 * Branches vectorize through cmpGT/select: cmpGT yields a per-lane
 * all-ones/all-zeros bit mask and select is a pure bitwise blend, so
 * `select(cmpGT(a, b), x, y)` is bitwise the scalar `a > b ? x : y`
 * in every lane — including the sign of zero and NaN payloads, which
 * an arithmetic masking trick (adding a masked 0.0) would not preserve.
 * select requires each mask lane to be such a cmp result (all-ones or
 * all-zeros); feeding it arbitrary doubles is undefined by contract.
 */

#ifndef RTR_UTIL_SIMD_H
#define RTR_UTIL_SIMD_H

#include <cstddef>

#if !defined(RTR_FORCE_SCALAR_SIMD)
#  if defined(__AVX2__)
#    define RTR_SIMD_BACKEND_AVX2 1
#  elif defined(__SSE2__) || defined(_M_X64) || \
      (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#    define RTR_SIMD_BACKEND_SSE2 1
#  elif defined(__aarch64__) && defined(__ARM_NEON)
#    define RTR_SIMD_BACKEND_NEON 1
#  endif
#endif

#if defined(RTR_SIMD_BACKEND_AVX2) || defined(RTR_SIMD_BACKEND_SSE2)
#  include <immintrin.h>
#elif defined(RTR_SIMD_BACKEND_NEON)
#  include <arm_neon.h>
#else
#  include <bit>
#  include <cmath>
#  include <cstdint>
#endif

namespace rtr {
namespace simd {

#if defined(RTR_SIMD_BACKEND_AVX2)

inline constexpr const char *kBackendName = "avx2";

/** Vector of 4 doubles (one AVX2 ymm register). */
struct VecD
{
    static constexpr std::size_t kWidth = 4;
    __m256d v;

    static VecD zero() { return {_mm256_setzero_pd()}; }
    static VecD broadcast(double x) { return {_mm256_set1_pd(x)}; }
    static VecD load(const double *p) { return {_mm256_loadu_pd(p)}; }
    void store(double *p) const { _mm256_storeu_pd(p, v); }

    friend VecD operator+(VecD a, VecD b) { return {_mm256_add_pd(a.v, b.v)}; }
    friend VecD operator-(VecD a, VecD b) { return {_mm256_sub_pd(a.v, b.v)}; }
    friend VecD operator*(VecD a, VecD b) { return {_mm256_mul_pd(a.v, b.v)}; }
    friend VecD operator/(VecD a, VecD b) { return {_mm256_div_pd(a.v, b.v)}; }

    /** acc + a*b as a separate multiply and add (never an FMA). */
    static VecD mulAdd(VecD acc, VecD a, VecD b)
    {
        return {_mm256_add_pd(acc.v, _mm256_mul_pd(a.v, b.v))};
    }
    /** acc - a*b as a separate multiply and subtract (never an FMA). */
    static VecD mulSub(VecD acc, VecD a, VecD b)
    {
        return {_mm256_sub_pd(acc.v, _mm256_mul_pd(a.v, b.v))};
    }
    static VecD min(VecD a, VecD b) { return {_mm256_min_pd(a.v, b.v)}; }
    static VecD max(VecD a, VecD b) { return {_mm256_max_pd(a.v, b.v)}; }
    static VecD sqrt(VecD a) { return {_mm256_sqrt_pd(a.v)}; }

    /** Lane mask: all-ones where a > b, all-zeros elsewhere. */
    static VecD cmpGT(VecD a, VecD b)
    {
        return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)};
    }
    /** Lane mask: all-ones where a == b, all-zeros elsewhere. */
    static VecD cmpEQ(VecD a, VecD b)
    {
        return {_mm256_cmp_pd(a.v, b.v, _CMP_EQ_OQ)};
    }
    /** Bitwise a & b (mask combination). */
    static VecD bitAnd(VecD a, VecD b)
    {
        return {_mm256_and_pd(a.v, b.v)};
    }
    /** Bitwise a | b (mask combination). */
    static VecD bitOr(VecD a, VecD b)
    {
        return {_mm256_or_pd(a.v, b.v)};
    }
    /** Bitwise ~a & b (clear b's lanes where the a mask is set). */
    static VecD andNot(VecD a, VecD b)
    {
        return {_mm256_andnot_pd(a.v, b.v)};
    }
    /** One bit per lane (bit i = lane i's sign/mask bit). */
    static int signMask(VecD a) { return _mm256_movemask_pd(a.v); }
    /** Bitwise blend: lanes of a where mask is all-ones, else b. */
    static VecD select(VecD mask, VecD a, VecD b)
    {
        return {_mm256_blendv_pd(b.v, a.v, mask.v)};
    }
    /** |a| per lane (clears the sign bit, NaN payloads intact). */
    static VecD abs(VecD a)
    {
        return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
    }
    /** -a per lane (flips the sign bit, exactly like scalar -x). */
    static VecD neg(VecD a)
    {
        return {_mm256_xor_pd(_mm256_set1_pd(-0.0), a.v)};
    }
};

#elif defined(RTR_SIMD_BACKEND_SSE2)

inline constexpr const char *kBackendName = "sse2";

/** Vector of 2 doubles (one SSE2 xmm register). */
struct VecD
{
    static constexpr std::size_t kWidth = 2;
    __m128d v;

    static VecD zero() { return {_mm_setzero_pd()}; }
    static VecD broadcast(double x) { return {_mm_set1_pd(x)}; }
    static VecD load(const double *p) { return {_mm_loadu_pd(p)}; }
    void store(double *p) const { _mm_storeu_pd(p, v); }

    friend VecD operator+(VecD a, VecD b) { return {_mm_add_pd(a.v, b.v)}; }
    friend VecD operator-(VecD a, VecD b) { return {_mm_sub_pd(a.v, b.v)}; }
    friend VecD operator*(VecD a, VecD b) { return {_mm_mul_pd(a.v, b.v)}; }
    friend VecD operator/(VecD a, VecD b) { return {_mm_div_pd(a.v, b.v)}; }

    static VecD mulAdd(VecD acc, VecD a, VecD b)
    {
        return {_mm_add_pd(acc.v, _mm_mul_pd(a.v, b.v))};
    }
    static VecD mulSub(VecD acc, VecD a, VecD b)
    {
        return {_mm_sub_pd(acc.v, _mm_mul_pd(a.v, b.v))};
    }
    static VecD min(VecD a, VecD b) { return {_mm_min_pd(a.v, b.v)}; }
    static VecD max(VecD a, VecD b) { return {_mm_max_pd(a.v, b.v)}; }
    static VecD sqrt(VecD a) { return {_mm_sqrt_pd(a.v)}; }

    /** Lane mask: all-ones where a > b, all-zeros elsewhere. */
    static VecD cmpGT(VecD a, VecD b)
    {
        return {_mm_cmpgt_pd(a.v, b.v)};
    }
    /** Lane mask: all-ones where a == b, all-zeros elsewhere. */
    static VecD cmpEQ(VecD a, VecD b)
    {
        return {_mm_cmpeq_pd(a.v, b.v)};
    }
    /** Bitwise a & b (mask combination). */
    static VecD bitAnd(VecD a, VecD b) { return {_mm_and_pd(a.v, b.v)}; }
    /** Bitwise a | b (mask combination). */
    static VecD bitOr(VecD a, VecD b) { return {_mm_or_pd(a.v, b.v)}; }
    /** Bitwise ~a & b (clear b's lanes where the a mask is set). */
    static VecD andNot(VecD a, VecD b)
    {
        return {_mm_andnot_pd(a.v, b.v)};
    }
    /** One bit per lane (bit i = lane i's sign/mask bit). */
    static int signMask(VecD a) { return _mm_movemask_pd(a.v); }
    /** Bitwise blend: lanes of a where mask is all-ones, else b. */
    static VecD select(VecD mask, VecD a, VecD b)
    {
        return {_mm_or_pd(_mm_and_pd(mask.v, a.v),
                          _mm_andnot_pd(mask.v, b.v))};
    }
    /** |a| per lane (clears the sign bit, NaN payloads intact). */
    static VecD abs(VecD a)
    {
        return {_mm_andnot_pd(_mm_set1_pd(-0.0), a.v)};
    }
    /** -a per lane (flips the sign bit, exactly like scalar -x). */
    static VecD neg(VecD a)
    {
        return {_mm_xor_pd(_mm_set1_pd(-0.0), a.v)};
    }
};

#elif defined(RTR_SIMD_BACKEND_NEON)

inline constexpr const char *kBackendName = "neon";

/** Vector of 2 doubles (one AArch64 NEON q register). */
struct VecD
{
    static constexpr std::size_t kWidth = 2;
    float64x2_t v;

    static VecD zero() { return {vdupq_n_f64(0.0)}; }
    static VecD broadcast(double x) { return {vdupq_n_f64(x)}; }
    static VecD load(const double *p) { return {vld1q_f64(p)}; }
    void store(double *p) const { vst1q_f64(p, v); }

    friend VecD operator+(VecD a, VecD b) { return {vaddq_f64(a.v, b.v)}; }
    friend VecD operator-(VecD a, VecD b) { return {vsubq_f64(a.v, b.v)}; }
    friend VecD operator*(VecD a, VecD b) { return {vmulq_f64(a.v, b.v)}; }
    friend VecD operator/(VecD a, VecD b) { return {vdivq_f64(a.v, b.v)}; }

    // vmlaq_f64 fuses on most cores; keep multiply and add separate.
    static VecD mulAdd(VecD acc, VecD a, VecD b)
    {
        return {vaddq_f64(acc.v, vmulq_f64(a.v, b.v))};
    }
    static VecD mulSub(VecD acc, VecD a, VecD b)
    {
        return {vsubq_f64(acc.v, vmulq_f64(a.v, b.v))};
    }
    static VecD min(VecD a, VecD b) { return {vminq_f64(a.v, b.v)}; }
    static VecD max(VecD a, VecD b) { return {vmaxq_f64(a.v, b.v)}; }
    static VecD sqrt(VecD a) { return {vsqrtq_f64(a.v)}; }

    /** Lane mask: all-ones where a > b, all-zeros elsewhere. */
    static VecD cmpGT(VecD a, VecD b)
    {
        return {vreinterpretq_f64_u64(vcgtq_f64(a.v, b.v))};
    }
    /** Lane mask: all-ones where a == b, all-zeros elsewhere. */
    static VecD cmpEQ(VecD a, VecD b)
    {
        return {vreinterpretq_f64_u64(vceqq_f64(a.v, b.v))};
    }
    /** Bitwise a & b (mask combination). */
    static VecD bitAnd(VecD a, VecD b)
    {
        return {vreinterpretq_f64_u64(
            vandq_u64(vreinterpretq_u64_f64(a.v),
                      vreinterpretq_u64_f64(b.v)))};
    }
    /** Bitwise a | b (mask combination). */
    static VecD bitOr(VecD a, VecD b)
    {
        return {vreinterpretq_f64_u64(
            vorrq_u64(vreinterpretq_u64_f64(a.v),
                      vreinterpretq_u64_f64(b.v)))};
    }
    /** Bitwise ~a & b (clear b's lanes where the a mask is set). */
    static VecD andNot(VecD a, VecD b)
    {
        return {vreinterpretq_f64_u64(
            vbicq_u64(vreinterpretq_u64_f64(b.v),
                      vreinterpretq_u64_f64(a.v)))};
    }
    /** One bit per lane (bit i = lane i's sign/mask bit). */
    static int signMask(VecD a)
    {
        const uint64x2_t u = vreinterpretq_u64_f64(a.v);
        return static_cast<int>((vgetq_lane_u64(u, 0) >> 63) |
                                ((vgetq_lane_u64(u, 1) >> 63) << 1));
    }
    /** Bitwise blend: lanes of a where mask is all-ones, else b. */
    static VecD select(VecD mask, VecD a, VecD b)
    {
        return {vbslq_f64(vreinterpretq_u64_f64(mask.v), a.v, b.v)};
    }
    /** |a| per lane (clears the sign bit, NaN payloads intact). */
    static VecD abs(VecD a) { return {vabsq_f64(a.v)}; }
    /** -a per lane (flips the sign bit, exactly like scalar -x). */
    static VecD neg(VecD a) { return {vnegq_f64(a.v)}; }
};

#else

inline constexpr const char *kBackendName = "scalar";

/** Scalar fallback: a "vector" of one double. */
struct VecD
{
    static constexpr std::size_t kWidth = 1;
    double v;

    static VecD zero() { return {0.0}; }
    static VecD broadcast(double x) { return {x}; }
    static VecD load(const double *p) { return {*p}; }
    void store(double *p) const { *p = v; }

    friend VecD operator+(VecD a, VecD b) { return {a.v + b.v}; }
    friend VecD operator-(VecD a, VecD b) { return {a.v - b.v}; }
    friend VecD operator*(VecD a, VecD b) { return {a.v * b.v}; }
    friend VecD operator/(VecD a, VecD b) { return {a.v / b.v}; }

    static VecD mulAdd(VecD acc, VecD a, VecD b)
    {
        double p = a.v * b.v;
        return {acc.v + p};
    }
    static VecD mulSub(VecD acc, VecD a, VecD b)
    {
        double p = a.v * b.v;
        return {acc.v - p};
    }
    static VecD min(VecD a, VecD b) { return {b.v < a.v ? b.v : a.v}; }
    static VecD max(VecD a, VecD b) { return {a.v < b.v ? b.v : a.v}; }
    static VecD sqrt(VecD a) { return {std::sqrt(a.v)}; }

    /** Lane mask: all-ones where a > b, all-zeros elsewhere. */
    static VecD cmpGT(VecD a, VecD b)
    {
        return {std::bit_cast<double>(
            a.v > b.v ? ~std::uint64_t{0} : std::uint64_t{0})};
    }
    /** Lane mask: all-ones where a == b, all-zeros elsewhere. */
    static VecD cmpEQ(VecD a, VecD b)
    {
        return {std::bit_cast<double>(
            a.v == b.v ? ~std::uint64_t{0} : std::uint64_t{0})};
    }
    /** Bitwise a & b (mask combination). */
    static VecD bitAnd(VecD a, VecD b)
    {
        return {std::bit_cast<double>(std::bit_cast<std::uint64_t>(a.v) &
                                      std::bit_cast<std::uint64_t>(b.v))};
    }
    /** Bitwise a | b (mask combination). */
    static VecD bitOr(VecD a, VecD b)
    {
        return {std::bit_cast<double>(std::bit_cast<std::uint64_t>(a.v) |
                                      std::bit_cast<std::uint64_t>(b.v))};
    }
    /** Bitwise ~a & b (clear b's lanes where the a mask is set). */
    static VecD andNot(VecD a, VecD b)
    {
        return {std::bit_cast<double>(~std::bit_cast<std::uint64_t>(a.v) &
                                      std::bit_cast<std::uint64_t>(b.v))};
    }
    /** One bit per lane (bit i = lane i's sign/mask bit). */
    static int signMask(VecD a)
    {
        return static_cast<int>(std::bit_cast<std::uint64_t>(a.v) >> 63);
    }
    /** Bitwise blend: lanes of a where mask is all-ones, else b. */
    static VecD select(VecD mask, VecD a, VecD b)
    {
        const std::uint64_t m = std::bit_cast<std::uint64_t>(mask.v);
        return {std::bit_cast<double>(
            (std::bit_cast<std::uint64_t>(a.v) & m) |
            (std::bit_cast<std::uint64_t>(b.v) & ~m))};
    }
    /** |a| per lane (clears the sign bit, NaN payloads intact). */
    static VecD abs(VecD a) { return {std::fabs(a.v)}; }
    /** -a per lane (flips the sign bit, exactly like scalar -x). */
    static VecD neg(VecD a)
    {
        return {std::bit_cast<double>(
            std::bit_cast<std::uint64_t>(a.v) ^
            (std::uint64_t{1} << 63))};
    }
};

#endif

} // namespace simd
} // namespace rtr

#endif // RTR_UTIL_SIMD_H

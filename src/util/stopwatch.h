/**
 * @file
 * Minimal monotonic wall-clock stopwatch.
 */

#ifndef RTR_UTIL_STOPWATCH_H
#define RTR_UTIL_STOPWATCH_H

#include <chrono>
#include <cstdint>

namespace rtr {

/** A restartable stopwatch over the steady (monotonic) clock. */
class Stopwatch
{
  public:
    using Clock = std::chrono::steady_clock;

    Stopwatch() : start_(Clock::now()) {}

    /** Restart timing from now. */
    void restart() { start_ = Clock::now(); }

    /** Nanoseconds elapsed since construction or the last restart(). */
    std::int64_t
    elapsedNs() const
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - start_)
            .count();
    }

    /** Seconds elapsed since construction or the last restart(). */
    double elapsedSec() const { return elapsedNs() * 1e-9; }

  private:
    Clock::time_point start_;
};

} // namespace rtr

#endif // RTR_UTIL_STOPWATCH_H

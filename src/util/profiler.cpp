#include "util/profiler.h"

#include "telemetry/trace.h"
#include "util/logging.h"

namespace rtr {

void
PhaseProfiler::begin(std::string_view name)
{
    std::size_t index = indexOf(name);
    for (const OpenScope &open : stack_) {
        RTR_ASSERT(open.index != index, "phase '", std::string(name),
                   "' re-entered while already open");
    }
    stack_.push_back(OpenScope{index, Clock::now()});
}

void
PhaseProfiler::end()
{
    RTR_ASSERT(!stack_.empty(), "PhaseProfiler::end() with no open phase");
    const OpenScope open = stack_.back();
    stack_.pop_back();
    const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             Clock::now() - open.start)
                             .count();
    totals_[open.index].ns += elapsed;
    totals_[open.index].count += 1;
    // Mirror the closed phase into the tracer as a complete span.
    // Both use the steady clock, so the profiler's own timestamps are
    // the span; one relaxed load when tracing is off.
    if (telemetry::Tracer::global().enabled()) {
        telemetry::completeSpan(
            totals_[open.index].name, telemetry::Category::Phase,
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                open.start.time_since_epoch())
                .count(),
            elapsed);
    }
}

std::int64_t
PhaseProfiler::phaseNs(std::string_view name) const
{
    for (const PhaseTotal &total : totals_) {
        if (total.name == name)
            return total.ns;
    }
    return 0;
}

std::int64_t
PhaseProfiler::phaseCount(std::string_view name) const
{
    for (const PhaseTotal &total : totals_) {
        if (total.name == name)
            return total.count;
    }
    return 0;
}

void
PhaseProfiler::reset()
{
    totals_.clear();
    stack_.clear();
}

void
PhaseProfiler::merge(const PhaseProfiler &other)
{
    for (const PhaseTotal &total : other.totals_) {
        std::size_t index = indexOf(total.name);
        totals_[index].ns += total.ns;
        totals_[index].count += total.count;
    }
}

std::size_t
PhaseProfiler::indexOf(std::string_view name)
{
    for (std::size_t i = 0; i < totals_.size(); ++i) {
        if (totals_[i].name == name)
            return i;
    }
    totals_.push_back(PhaseTotal{std::string(name), 0, 0});
    return totals_.size() - 1;
}

} // namespace rtr

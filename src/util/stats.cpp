#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace rtr {

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
quantile(std::vector<double> samples, double q)
{
    RTR_ASSERT(!samples.empty(), "quantile of empty sample set");
    RTR_ASSERT(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]");
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1)
        return samples.front();
    double pos = q * static_cast<double>(samples.size() - 1);
    auto lo = static_cast<std::size_t>(pos);
    std::size_t hi = std::min(lo + 1, samples.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double
mean(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    double sum = 0.0;
    for (double s : samples)
        sum += s;
    return sum / static_cast<double>(samples.size());
}

} // namespace rtr

#include "util/parallel.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "telemetry/trace.h"
#include "util/logging.h"

namespace rtr {

namespace {

/**
 * True on any thread currently executing inside a parallel region
 * (workers permanently, the caller for the region's duration). Nested
 * regions detect this and run inline, which makes reentrant use safe
 * and keeps the chunk decomposition of the outer region authoritative.
 */
thread_local bool tl_in_parallel_region = false;

/** Default fan-out when grain 0 is requested: at most this many chunks. */
constexpr std::size_t kDefaultMaxChunks = 64;

/** One published parallel region. */
struct Job
{
    const std::function<void(const ChunkRange &)> *body = nullptr;
    std::size_t begin = 0;
    std::size_t grain = 1;
    std::size_t n_chunks = 0;
    /** Next chunk ticket; workers race on this but outputs are per-chunk. */
    std::atomic<std::size_t> next{0};
};

/** Drain chunks from @p job until every ticket is taken. */
void
drainChunks(Job &job)
{
    while (true) {
        const std::size_t i =
            job.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.n_chunks)
            return;
        ChunkRange chunk;
        chunk.index = i;
        chunk.begin = job.begin + i * job.grain;
        chunk.end = chunk.begin + job.grain;
        // The body clamps the final chunk's end to the range end.
        (*job.body)(chunk);
    }
}

/**
 * Lazily-initialized persistent worker pool. Workers sleep between
 * regions; a region bumps the generation counter and wakes them. The
 * calling thread always participates, so a pool configured for T
 * threads keeps T-1 workers.
 */
class ThreadPool
{
  public:
    static ThreadPool &
    instance()
    {
        static ThreadPool pool;
        return pool;
    }

    std::size_t
    threads() const
    {
        return desired_threads_.load(std::memory_order_relaxed);
    }

    void
    setThreads(std::size_t n)
    {
        desired_threads_.store(n == 0 ? hardwareThreads() : n,
                               std::memory_order_relaxed);
    }

    void
    run(Job &job)
    {
        const std::size_t n = threads();
        ensureWorkers((n == 0 ? hardwareThreads() : n) - 1);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            job_ = &job;
            ++generation_;
        }
        work_cv_.notify_all();
        drainChunks(job);
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [&] { return active_workers_ == 0; });
        job_ = nullptr;
    }

    ~ThreadPool() { stopWorkers(); }

  private:
    ThreadPool() = default;

    void
    ensureWorkers(std::size_t n_workers)
    {
        if (workers_.size() == n_workers)
            return;
        stopWorkers();
        workers_.reserve(n_workers);
        for (std::size_t i = 0; i < n_workers; ++i)
            workers_.emplace_back([this, i] { workerLoop(i); });
    }

    void
    stopWorkers()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
            ++generation_;
        }
        work_cv_.notify_all();
        for (std::thread &worker : workers_)
            worker.join();
        workers_.clear();
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = false;
    }

    void
    workerLoop(std::size_t worker_index)
    {
        tl_in_parallel_region = true;
        // Name this worker's track in exported traces; harmless (one
        // registration) when tracing is never enabled.
        telemetry::Tracer::global().registerCurrentThread(
            "rtr-worker-" + std::to_string(worker_index + 1));
        std::uint64_t seen = 0;
        std::unique_lock<std::mutex> lock(mutex_);
        while (true) {
            work_cv_.wait(lock,
                          [&] { return stop_ || generation_ != seen; });
            seen = generation_;
            if (stop_)
                return;
            Job *job = job_;
            if (!job)
                continue;  // region already finished without us
            ++active_workers_;
            lock.unlock();
            drainChunks(*job);
            lock.lock();
            if (--active_workers_ == 0)
                done_cv_.notify_all();
        }
    }

    std::atomic<std::size_t> desired_threads_{0};
    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    std::vector<std::thread> workers_;
    Job *job_ = nullptr;
    std::uint64_t generation_ = 0;
    std::size_t active_workers_ = 0;
    bool stop_ = false;
};

} // namespace

std::size_t
hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
}

std::size_t
parallelThreads()
{
    const std::size_t n = ThreadPool::instance().threads();
    return n == 0 ? hardwareThreads() : n;
}

void
setParallelThreads(std::size_t n)
{
    RTR_ASSERT(!tl_in_parallel_region,
               "setParallelThreads inside a parallel region");
    ThreadPool::instance().setThreads(n);
}

std::size_t
resolveGrain(std::size_t begin, std::size_t end, std::size_t grain)
{
    if (grain > 0)
        return grain;
    const std::size_t n = end > begin ? end - begin : 0;
    if (n == 0)
        return 1;
    return (n + kDefaultMaxChunks - 1) / kDefaultMaxChunks;
}

std::size_t
chunkCount(std::size_t begin, std::size_t end, std::size_t grain)
{
    const std::size_t n = end > begin ? end - begin : 0;
    const std::size_t g = resolveGrain(begin, end, grain);
    return (n + g - 1) / g;
}

void
parallelForChunks(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(const ChunkRange &)> &body)
{
    if (end <= begin)
        return;
    const std::size_t g = resolveGrain(begin, end, grain);
    const std::size_t n_chunks = chunkCount(begin, end, g);

    auto clamped = [&](const ChunkRange &chunk) {
        ChunkRange c = chunk;
        if (c.end > end)
            c.end = end;
        body(c);
    };

    const std::size_t threads = parallelThreads();
    if (threads <= 1 || n_chunks <= 1 || tl_in_parallel_region) {
        // Sequential path: identical chunk decomposition, same thread.
        for (std::size_t i = 0; i < n_chunks; ++i) {
            ChunkRange chunk;
            chunk.index = i;
            chunk.begin = begin + i * g;
            chunk.end = chunk.begin + g;
            clamped(chunk);
        }
        return;
    }

    std::function<void(const ChunkRange &)> run_chunk = clamped;
    Job job;
    job.body = &run_chunk;
    job.begin = begin;
    job.grain = g;
    job.n_chunks = n_chunks;

    tl_in_parallel_region = true;
    ThreadPool::instance().run(job);
    tl_in_parallel_region = false;
}

void
parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
            const std::function<void(std::size_t)> &body)
{
    parallelForChunks(begin, end, grain, [&](const ChunkRange &chunk) {
        for (std::size_t i = chunk.begin; i < chunk.end; ++i)
            body(i);
    });
}

void
parallelForRng(std::size_t begin, std::size_t end, std::size_t grain,
               const Rng &base,
               const std::function<void(const ChunkRange &, Rng &)> &body)
{
    parallelForChunks(begin, end, grain, [&](const ChunkRange &chunk) {
        Rng rng = base.split(chunk.index);
        body(chunk, rng);
    });
}

} // namespace rtr

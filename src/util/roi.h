/**
 * @file
 * Region-of-interest (ROI) hooks in the spirit of zsim's magic ops.
 *
 * The paper integrates every kernel with the zsim micro-architectural
 * simulator and marks the region of interest with hooks. Outside a
 * simulator — as in this reproduction — the hooks must be "safely
 * executed: no effect on correctness and virtually zero effect on
 * performance" (paper §VI). We honor that contract: the hooks compile to
 * a compiler barrier plus a process-local flag, and a port to a real
 * simulator only needs to re-implement these two functions with the
 * target simulator's magic instructions.
 */

#ifndef RTR_UTIL_ROI_H
#define RTR_UTIL_ROI_H

#include <atomic>

#include "telemetry/hooks.h"

namespace rtr {

namespace detail {
/**
 * Relaxed atomic so inRoi() queried from pool worker threads is
 * race-free (TSan-clean); ordering with respect to the ROI body is
 * still provided by the compiler barriers in roiBegin/roiEnd, exactly
 * as before the flag became atomic.
 */
inline std::atomic<bool> roi_active{false};
} // namespace detail

/**
 * Mark the beginning of the region of interest. Under zsim this would
 * issue the zsim_roi_begin magic op; here it is a barrier + flag, plus
 * a telemetry notification (trace instant event, armed perf-counter
 * group enable) that is a no-op unless observability was requested.
 */
inline void
roiBegin()
{
    asm volatile("" ::: "memory");
    detail::roi_active.store(true, std::memory_order_relaxed);
    telemetry::notifyRoiBegin();
}

/** Mark the end of the region of interest. */
inline void
roiEnd()
{
    telemetry::notifyRoiEnd();
    asm volatile("" ::: "memory");
    detail::roi_active.store(false, std::memory_order_relaxed);
}

/** Whether execution is currently inside the ROI. */
inline bool
inRoi()
{
    return detail::roi_active.load(std::memory_order_relaxed);
}

/** RAII ROI marker: begins on construction, ends on destruction. */
class ScopedRoi
{
  public:
    ScopedRoi() { roiBegin(); }
    ~ScopedRoi() { roiEnd(); }

    ScopedRoi(const ScopedRoi &) = delete;
    ScopedRoi &operator=(const ScopedRoi &) = delete;
};

} // namespace rtr

#endif // RTR_UTIL_ROI_H

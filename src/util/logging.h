/**
 * @file
 * Status and error reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (a library bug); aborts.
 * fatal()  — the user supplied an impossible configuration; exits cleanly.
 * warn()   — something is suspicious but execution can continue.
 * inform() — plain status output for the user.
 */

#ifndef RTR_UTIL_LOGGING_H
#define RTR_UTIL_LOGGING_H

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string_view>

namespace rtr {

namespace detail {

/** Concatenate a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/**
 * Report an internal invariant violation and abort.
 *
 * Use for conditions that indicate a bug in this library, never for bad
 * user input.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::cerr << "panic: " << detail::concat(std::forward<Args>(args)...)
              << std::endl;
    std::abort();
}

/**
 * Report an unrecoverable user error (bad configuration, bad input file)
 * and exit with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::cerr << "fatal: " << detail::concat(std::forward<Args>(args)...)
              << std::endl;
    std::exit(1);
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    std::cerr << "warn: " << detail::concat(std::forward<Args>(args)...)
              << std::endl;
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    std::cout << detail::concat(std::forward<Args>(args)...) << std::endl;
}

/** panic() unless the condition holds. */
#define RTR_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::rtr::panic("assertion '", #cond, "' failed at ", __FILE__,    \
                         ":", __LINE__, " ", ##__VA_ARGS__);                \
        }                                                                   \
    } while (0)

} // namespace rtr

#endif // RTR_UTIL_LOGGING_H

/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component in RTRBench (particle filters, sampling-based
 * planners, CEM, Bayesian optimization, synthetic input generators) draws
 * from an explicitly seeded Rng so that benchmark runs and tests are
 * reproducible bit-for-bit across runs on the same platform.
 */

#ifndef RTR_UTIL_RNG_H
#define RTR_UTIL_RNG_H

#include <cstdint>
#include <random>

namespace rtr {

/**
 * Derive an independent sub-stream seed from a (seed, stream) pair via
 * the SplitMix64 finalizer. Used by the parallel runtime to give every
 * chunk of a parallel loop its own reproducible random stream: the
 * derived seed depends only on the base seed and the stream index,
 * never on thread scheduling.
 */
constexpr std::uint64_t
splitSeed(std::uint64_t seed, std::uint64_t stream)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * A seeded pseudo-random source wrapping std::mt19937_64.
 *
 * The wrapper exists so that call sites read as intent
 * (uniform/normal/index) and so the engine choice is centralized.
 */
class Rng
{
  public:
    /** Construct with an explicit seed; identical seeds replay streams. */
    explicit Rng(std::uint64_t seed = 1) : seed_(seed), engine_(seed) {}

    /** Re-seed, restarting the stream. */
    void
    seed(std::uint64_t s)
    {
        seed_ = s;
        engine_.seed(s);
    }

    /** The seed this stream was (last) started from. */
    std::uint64_t initialSeed() const { return seed_; }

    /**
     * An independent sub-stream keyed by @p stream: split(i) always
     * yields the same stream for the same seed and i, regardless of how
     * much of this stream has been consumed.
     */
    Rng split(std::uint64_t stream) const
    {
        return Rng(splitSeed(seed_, stream));
    }

    /** Uniform real in [lo, hi). */
    double
    uniform(double lo = 0.0, double hi = 1.0)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Normal (Gaussian) with the given mean and standard deviation. */
    double
    normal(double mean = 0.0, double stddev = 1.0)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /** Uniform integer in the closed range [lo, hi]. */
    std::int64_t
    intRange(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /** Uniform index in [0, n), n must be positive. */
    std::size_t
    index(std::size_t n)
    {
        return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
    }

    /** Bernoulli draw that is true with probability p. */
    bool chance(double p) { return uniform() < p; }

    /** Access the underlying engine (for std::shuffle and friends). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::uint64_t seed_;
    std::mt19937_64 engine_;
};

} // namespace rtr

#endif // RTR_UTIL_RNG_H

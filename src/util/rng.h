/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component in RTRBench (particle filters, sampling-based
 * planners, CEM, Bayesian optimization, synthetic input generators) draws
 * from an explicitly seeded Rng so that benchmark runs and tests are
 * reproducible bit-for-bit across runs on the same platform.
 */

#ifndef RTR_UTIL_RNG_H
#define RTR_UTIL_RNG_H

#include <cstdint>
#include <random>

namespace rtr {

/**
 * A seeded pseudo-random source wrapping std::mt19937_64.
 *
 * The wrapper exists so that call sites read as intent
 * (uniform/normal/index) and so the engine choice is centralized.
 */
class Rng
{
  public:
    /** Construct with an explicit seed; identical seeds replay streams. */
    explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

    /** Re-seed, restarting the stream. */
    void seed(std::uint64_t s) { engine_.seed(s); }

    /** Uniform real in [lo, hi). */
    double
    uniform(double lo = 0.0, double hi = 1.0)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Normal (Gaussian) with the given mean and standard deviation. */
    double
    normal(double mean = 0.0, double stddev = 1.0)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /** Uniform integer in the closed range [lo, hi]. */
    std::int64_t
    intRange(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /** Uniform index in [0, n), n must be positive. */
    std::size_t
    index(std::size_t n)
    {
        return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
    }

    /** Bernoulli draw that is true with probability p. */
    bool chance(double p) { return uniform() < p; }

    /** Access the underlying engine (for std::shuffle and friends). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace rtr

#endif // RTR_UTIL_RNG_H

/**
 * @file
 * Bounded lock-free multi-producer/multi-consumer queue.
 *
 * The request spine of the planning service (service/service.h): any
 * number of client threads push work while any number of workers pop
 * it, with no mutex on either side. The implementation is Vyukov's
 * classic bounded MPMC ring: every cell carries a sequence number that
 * encodes, relative to the head/tail tickets, whether the cell is
 * empty, full, or in transit, so producers and consumers claim cells
 * with one CAS each and publish payloads with one release store.
 *
 * Properties the service relies on:
 *  - bounded by construction: tryPush on a full ring fails instead of
 *    allocating, which is the backpressure signal (the caller decides
 *    whether to retry, drop, or block);
 *  - per-cell handoff: a popped value was fully written by its
 *    producer (acquire on the cell sequence pairs with the producer's
 *    release), so payloads need no atomics of their own;
 *  - FIFO per producer, and globally FIFO in the ticket order the CAS
 *    hands out. Completion order is therefore *not* deterministic
 *    under concurrency — anything that must be reproducible (the
 *    service's determinism contract) must depend only on the popped
 *    item itself, never on pop order.
 *
 * The queue stores trivially-copyable-ish values (the service uses raw
 * slot pointers); values are copied in and moved out.
 */

#ifndef RTR_UTIL_MPMC_QUEUE_H
#define RTR_UTIL_MPMC_QUEUE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace rtr {

/** Bounded lock-free MPMC ring (Vyukov). Capacity rounds up to a
 *  power of two and is at least 2. */
template <typename T>
class MpmcQueue
{
  public:
    explicit MpmcQueue(std::size_t capacity)
        : cells_(roundUpPow2(capacity)), mask_(cells_.size() - 1)
    {
        for (std::size_t i = 0; i < cells_.size(); ++i)
            cells_[i].seq.store(i, std::memory_order_relaxed);
    }

    MpmcQueue(const MpmcQueue &) = delete;
    MpmcQueue &operator=(const MpmcQueue &) = delete;

    /** Usable capacity (the rounded-up power of two). */
    std::size_t capacity() const { return cells_.size(); }

    /**
     * Enqueue a copy of @p value. Returns false when the ring is full
     * (the bounded-queue backpressure signal); the queue is unchanged.
     */
    bool
    tryPush(const T &value)
    {
        Cell *cell;
        std::size_t pos = tail_.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            const std::size_t seq =
                cell->seq.load(std::memory_order_acquire);
            const auto diff = static_cast<std::intptr_t>(seq) -
                              static_cast<std::intptr_t>(pos);
            if (diff == 0) {
                // Cell is empty at our ticket; claim it.
                if (tail_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                    break;
            } else if (diff < 0) {
                return false; // full: consumer has not freed this cell
            } else {
                pos = tail_.load(std::memory_order_relaxed);
            }
        }
        cell->value = value;
        cell->seq.store(pos + 1, std::memory_order_release);
        return true;
    }

    /**
     * Dequeue into @p out. Returns false when the ring is empty at the
     * moment of the attempt (transient under concurrency).
     */
    bool
    tryPop(T &out)
    {
        Cell *cell;
        std::size_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            const std::size_t seq =
                cell->seq.load(std::memory_order_acquire);
            const auto diff = static_cast<std::intptr_t>(seq) -
                              static_cast<std::intptr_t>(pos + 1);
            if (diff == 0) {
                // Cell holds a published value at our ticket; claim it.
                if (head_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                    break;
            } else if (diff < 0) {
                return false; // empty: producer has not filled this cell
            } else {
                pos = head_.load(std::memory_order_relaxed);
            }
        }
        out = std::move(cell->value);
        cell->seq.store(pos + mask_ + 1, std::memory_order_release);
        return true;
    }

    /**
     * Approximate occupancy (producers and consumers may be mid-flight;
     * exact only when the queue is quiescent). For stats/telemetry, not
     * for control flow.
     */
    std::size_t
    sizeApprox() const
    {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        const std::size_t head = head_.load(std::memory_order_relaxed);
        return tail > head ? tail - head : 0;
    }

  private:
    struct Cell
    {
        std::atomic<std::size_t> seq{0};
        T value{};
    };

    static std::size_t
    roundUpPow2(std::size_t n)
    {
        RTR_ASSERT(n >= 1, "MpmcQueue capacity must be >= 1");
        std::size_t p = 2;
        while (p < n)
            p <<= 1;
        return p;
    }

    // Head and tail tickets on separate cache lines so producers and
    // consumers do not false-share.
    alignas(64) std::atomic<std::size_t> tail_{0};
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::vector<Cell> cells_;
    std::size_t mask_;
};

} // namespace rtr

#endif // RTR_UTIL_MPMC_QUEUE_H

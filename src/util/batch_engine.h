/**
 * @file
 * Runtime selection of the batched-environment engine.
 *
 * Two engines implement the Monte-Carlo rollout/particle updates of the
 * cem, mpc, bo and pfl kernels (DESIGN.md "Batched environments"):
 *
 *   soa     structure-of-arrays batch: one contiguous array per state
 *           component, simd::VecD lanes advancing kWidth environments
 *           per instruction (the default);
 *   scalar  one environment at a time — the preserved reference path.
 *
 * Both produce bitwise-identical rewards, traces, states and particle
 * weights at every environment count and thread count, so the switch is
 * a pure performance A/B: kernels expose it as --batch {soa,scalar} in
 * the same style as --nn/--raycast/--simd, and the RTR_BATCH_ENGINE
 * environment variable flips the default so the full test suite can run
 * against either engine (scripts/check.sh "batch-scalar" leg).
 */

#ifndef RTR_UTIL_BATCH_ENGINE_H
#define RTR_UTIL_BATCH_ENGINE_H

#include <cstdlib>
#include <string_view>

namespace rtr {

/** Which engine runs batched environment rollouts. */
enum class BatchEngine
{
    Soa,    ///< SIMD-across-environments SoA batch (the default).
    Scalar, ///< One environment at a time (preserved reference).
};

/** Display name ("soa" / "scalar"). */
inline const char *
batchEngineName(BatchEngine engine)
{
    return engine == BatchEngine::Soa ? "soa" : "scalar";
}

/** Parse an engine name; returns false on anything else. */
inline bool
parseBatchEngine(std::string_view name, BatchEngine &out)
{
    if (name == "soa") {
        out = BatchEngine::Soa;
        return true;
    }
    if (name == "scalar") {
        out = BatchEngine::Scalar;
        return true;
    }
    return false;
}

/**
 * Process-wide default engine: soa, unless RTR_BATCH_ENGINE=scalar is
 * set in the environment (read once). Config structs capture this
 * default at construction; explicit --batch flags override it per run.
 */
inline BatchEngine
defaultBatchEngine()
{
    static const BatchEngine def = [] {
        const char *env = std::getenv("RTR_BATCH_ENGINE");
        BatchEngine parsed = BatchEngine::Soa;
        if (env)
            parseBatchEngine(env, parsed);
        return parsed;
    }();
    return def;
}

/**
 * Whether RTR_BATCH_ENGINE names a valid engine — i.e. the user asked
 * for one engine *everywhere*. Per-phase defaults (see
 * defaultPflWeightEngine) yield to this, exactly like an explicit
 * --batch flag, so the check.sh batch-scalar leg and A/B runs still
 * pin every phase to one engine.
 */
inline bool
batchEngineOverridden()
{
    static const bool overridden = [] {
        const char *env = std::getenv("RTR_BATCH_ENGINE");
        BatchEngine parsed = BatchEngine::Soa;
        return env != nullptr && parseBatchEngine(env, parsed);
    }();
    return overridden;
}

/**
 * Default engine for the pfl *weight* (beam sensor-model) phase:
 * scalar, unless RTR_BATCH_ENGINE overrides. The SoA leg of this phase
 * measured 0.92-0.94x — it is exp/log-bound, and the lane shuffle
 * costs more than the vectorization buys (EXPERIMENTS.md "Batched
 * rollouts") — so unlike the motion phase it defaults to the
 * reference loop.
 */
inline BatchEngine
defaultPflWeightEngine()
{
    return batchEngineOverridden() ? defaultBatchEngine()
                                   : BatchEngine::Scalar;
}

} // namespace rtr

#endif // RTR_UTIL_BATCH_ENGINE_H

/**
 * @file
 * Fixed-width console table rendering for benchmark output.
 *
 * Benchmark binaries print the rows/series the paper's tables and figures
 * report; this helper keeps that output aligned and diff-friendly.
 */

#ifndef RTR_UTIL_TABLE_H
#define RTR_UTIL_TABLE_H

#include <string>
#include <vector>

namespace rtr {

/** Column-aligned text table with a header row. */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; it must have as many cells as there are headers. */
    void addRow(std::vector<std::string> row);

    /** Render the table with a separator under the header. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** Format helper: fixed-precision double. */
    static std::string num(double value, int precision = 2);

    /** Format helper: percentage with % suffix. */
    static std::string pct(double fraction, int precision = 1);

    /** Format helper: integer with thousands separators. */
    static std::string count(long long value);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rtr

#endif // RTR_UTIL_TABLE_H

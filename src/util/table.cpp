#include "util/table.h"

#include <iomanip>
#include <iostream>
#include <sstream>

#include "util/logging.h"

namespace rtr {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    RTR_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    RTR_ASSERT(row.size() == headers_.size(), "row width ", row.size(),
               " != header width ", headers_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row,
                        std::ostringstream &oss) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << "  " << std::left << std::setw(static_cast<int>(widths[c]))
                << row[c];
        }
        oss << "\n";
    };

    std::ostringstream oss;
    emit_row(headers_, oss);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    oss << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row, oss);
    return oss.str();
}

void
Table::print() const
{
    std::cout << render() << std::flush;
}

std::string
Table::num(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
Table::pct(double fraction, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << fraction * 100.0
        << "%";
    return oss.str();
}

std::string
Table::count(long long value)
{
    std::string digits = std::to_string(value < 0 ? -value : value);
    std::string out;
    int since_sep = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (since_sep == 3) {
            out.push_back(',');
            since_sep = 0;
        }
        out.push_back(*it);
        ++since_sep;
    }
    if (value < 0)
        out.push_back('-');
    return std::string(out.rbegin(), out.rend());
}

} // namespace rtr

#include "util/args.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "util/logging.h"

namespace rtr {

ArgParser::ArgParser(std::string prog_name) : progName_(std::move(prog_name))
{
}

void
ArgParser::addOption(const std::string &name, const std::string &def,
                     const std::string &help)
{
    RTR_ASSERT(!findOption(name), "duplicate option --", name);
    options_.push_back(Option{name, def, help, false});
}

void
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    RTR_ASSERT(!findFlag(name), "duplicate flag --", name);
    flags_.push_back(Flag{name, help, false});
}

void
ArgParser::parse(int argc, const char *const *argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i)
        args.emplace_back(argv[i]);
    parse(args);
}

void
ArgParser::parse(const std::vector<std::string> &args)
{
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--help" || arg == "-h") {
            std::cout << usage();
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected positional argument '", arg, "'");

        std::string name = arg.substr(2);
        std::string inline_value;
        bool has_inline = false;
        if (auto eq = name.find('='); eq != std::string::npos) {
            inline_value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_inline = true;
        }

        if (Flag *flag = findFlag(name)) {
            if (has_inline)
                fatal("flag --", name, " does not take a value");
            flag->present = true;
            continue;
        }

        Option *opt = findOption(name);
        if (!opt)
            fatal("unknown argument --", name, "; try --help");
        if (has_inline) {
            opt->value = inline_value;
        } else {
            if (i + 1 >= args.size())
                fatal("option --", name, " expects a value");
            opt->value = args[++i];
        }
        opt->set = true;
    }
}

std::string
ArgParser::get(const std::string &name) const
{
    const Option *opt = findOption(name);
    RTR_ASSERT(opt, "option --", name, " was never registered");
    return opt->value;
}

double
ArgParser::getDouble(const std::string &name) const
{
    const std::string value = get(name);
    char *end = nullptr;
    double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        fatal("option --", name, " expects a number, got '", value, "'");
    return parsed;
}

std::int64_t
ArgParser::getInt(const std::string &name) const
{
    const std::string value = get(name);
    char *end = nullptr;
    long long parsed = std::strtoll(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        fatal("option --", name, " expects an integer, got '", value, "'");
    return static_cast<std::int64_t>(parsed);
}

bool
ArgParser::getFlag(const std::string &name) const
{
    const Flag *flag = findFlag(name);
    RTR_ASSERT(flag, "flag --", name, " was never registered");
    return flag->present;
}

bool
ArgParser::isSet(const std::string &name) const
{
    const Option *opt = findOption(name);
    RTR_ASSERT(opt, "option --", name, " was never registered");
    return opt->set;
}

std::string
ArgParser::usage() const
{
    std::ostringstream oss;
    oss << "USAGE:\n    ./" << progName_ << " [OPTIONS] [FLAGS]\n";
    if (!options_.empty()) {
        oss << "OPTIONS:\n";
        for (const Option &opt : options_) {
            std::string lhs = "--" + opt.name + " <val>";
            oss << "    " << lhs;
            for (std::size_t pad = lhs.size(); pad < 24; ++pad)
                oss << ' ';
            oss << opt.help << " [default: " << opt.value << "]\n";
        }
    }
    oss << "FLAGS:\n";
    for (const Flag &flag : flags_) {
        std::string lhs = "--" + flag.name;
        oss << "    " << lhs;
        for (std::size_t pad = lhs.size(); pad < 24; ++pad)
            oss << ' ';
        oss << flag.help << "\n";
    }
    std::string lhs = "--help, -h";
    oss << "    " << lhs;
    for (std::size_t pad = lhs.size(); pad < 24; ++pad)
        oss << ' ';
    oss << "Print help message\n";
    return oss.str();
}

ArgParser::Option *
ArgParser::findOption(const std::string &name)
{
    auto it = std::find_if(options_.begin(), options_.end(),
                           [&](const Option &o) { return o.name == name; });
    return it == options_.end() ? nullptr : &*it;
}

const ArgParser::Option *
ArgParser::findOption(const std::string &name) const
{
    return const_cast<ArgParser *>(this)->findOption(name);
}

ArgParser::Flag *
ArgParser::findFlag(const std::string &name)
{
    auto it = std::find_if(flags_.begin(), flags_.end(),
                           [&](const Flag &f) { return f.name == name; });
    return it == flags_.end() ? nullptr : &*it;
}

const ArgParser::Flag *
ArgParser::findFlag(const std::string &name) const
{
    return const_cast<ArgParser *>(this)->findFlag(name);
}

} // namespace rtr

/**
 * @file
 * Command line argument parsing for kernel binaries.
 *
 * Every RTRBench kernel executable exposes its configuration on the
 * command line and prints a usage message with --help, mirroring Fig. 20
 * of the paper:
 *
 *   $ ./rrt.out --help
 *   USAGE:
 *       ./rrt.out [OPTIONS] [FLAGS]
 *   OPTIONS:
 *       --bias <val>     Random number generation bias
 *       ...
 */

#ifndef RTR_UTIL_ARGS_H
#define RTR_UTIL_ARGS_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rtr {

/**
 * Declarative option/flag parser.
 *
 * Options take a value (--samples 1000 or --samples=1000) and carry a
 * default; flags are boolean (--verbose). Unknown arguments are a fatal
 * user error. --help/-h prints the usage message and exits 0.
 */
class ArgParser
{
  public:
    /** @param prog_name The binary name shown in the usage message. */
    explicit ArgParser(std::string prog_name);

    /** Register a string-valued option with a default. */
    void addOption(const std::string &name, const std::string &def,
                   const std::string &help);

    /** Register a boolean flag (false unless present). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv. Calls fatal() on malformed or unknown arguments and
     * exits after printing usage when --help is given.
     */
    void parse(int argc, const char *const *argv);

    /** Parse a pre-split argument vector (excluding argv[0]). */
    void parse(const std::vector<std::string> &args);

    /** Value of an option (its default if never set on the command line). */
    std::string get(const std::string &name) const;

    /** Option value converted to double. */
    double getDouble(const std::string &name) const;

    /** Option value converted to int64. */
    std::int64_t getInt(const std::string &name) const;

    /** Whether a flag was present. */
    bool getFlag(const std::string &name) const;

    /** Whether an option was explicitly set by the user. */
    bool isSet(const std::string &name) const;

    /** Render the --help text. */
    std::string usage() const;

  private:
    struct Option
    {
        std::string name;
        std::string value;
        std::string help;
        bool set = false;
    };

    struct Flag
    {
        std::string name;
        std::string help;
        bool present = false;
    };

    Option *findOption(const std::string &name);
    const Option *findOption(const std::string &name) const;
    Flag *findFlag(const std::string &name);
    const Flag *findFlag(const std::string &name) const;

    std::string progName_;
    std::vector<Option> options_;
    std::vector<Flag> flags_;
};

} // namespace rtr

#endif // RTR_UTIL_ARGS_H

/**
 * @file
 * Iterative Closest Point (point-to-point) registration.
 *
 * The registration core of the scene-reconstruction kernel (03.srec),
 * following the classic KinectFusion-style pipeline the paper builds on:
 * per iteration, correspondences via nearest-neighbor search, then the
 * closed-form optimal rigid motion via Horn's quaternion method.
 */

#ifndef RTR_POINTCLOUD_ICP_H
#define RTR_POINTCLOUD_ICP_H

#include <memory>

#include "pointcloud/nn_engine.h"
#include "pointcloud/point_cloud.h"
#include "util/profiler.h"

namespace rtr {

/** ICP tuning knobs. */
struct IcpConfig
{
    /** Maximum outer iterations. */
    int max_iterations = 30;
    /** Which NN engine backs the correspondence search (--nn). */
    NnEngine nn_engine = defaultNnEngine();
    /** Stop when RMSE improves by less than this between iterations. */
    double convergence_delta = 1e-6;
    /** Reject correspondences farther apart than this (0 = keep all). */
    double max_correspondence_distance = 0.0;
    /**
     * Trimmed ICP: keep only this fraction of correspondences (the
     * closest ones) each iteration. Guards the estimate against the
     * partial-overlap bias of scan regions absent from the target.
     */
    double trim_fraction = 1.0;
};

/** ICP outcome. */
struct IcpResult
{
    /** Estimated transform mapping source points onto the target. */
    RigidTransform3 transform;
    /** Root-mean-square correspondence error after the final iteration. */
    double rmse = 0.0;
    /** Outer iterations actually executed. */
    int iterations = 0;
    /** Whether the convergence threshold was reached (vs. iteration cap). */
    bool converged = false;
};

/**
 * Register @p source onto @p target.
 *
 * @param profiler Optional phase profiler; accumulates "icp-nn-build"
 *        (target index construction), "icp-nn" (correspondence search)
 *        and "icp-solve" (transform estimation) phases, matching the
 *        paper's breakdown of srec into point-cloud operations and
 *        matrix operations.
 */
IcpResult icpRegister(const PointCloud &source, const PointCloud &target,
                      const IcpConfig &config = {},
                      PhaseProfiler *profiler = nullptr);

/**
 * Prebuilt immutable target for icpRegister: the target cloud plus its
 * nearest-neighbor index, built once and shared by any number of
 * registrations (and any number of threads — queries are const). This
 * is the amortized path for serving workloads where many scans
 * register against one reference model: per-call icpRegister pays the
 * "icp-nn-build" phase every time, this class pays it once.
 *
 * The results are bitwise identical to the per-call overload with the
 * same @p engine: both run the same core loop over the same index.
 */
class IcpTargetIndex
{
  public:
    IcpTargetIndex(const PointCloud &target,
                   NnEngine engine = defaultNnEngine());
    ~IcpTargetIndex();
    IcpTargetIndex(const IcpTargetIndex &) = delete;
    IcpTargetIndex &operator=(const IcpTargetIndex &) = delete;

    /** The indexed target cloud (the copy the index refers into). */
    const PointCloud &target() const;

  private:
    friend IcpResult icpRegister(const PointCloud &,
                                 const IcpTargetIndex &,
                                 const IcpConfig &, PhaseProfiler *);
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Register @p source onto a prebuilt target index. Identical results
 * to the cloud overload; the index's NN engine is used (the value in
 * @p config.nn_engine is ignored) and no "icp-nn-build" phase runs.
 */
IcpResult icpRegister(const PointCloud &source,
                      const IcpTargetIndex &target,
                      const IcpConfig &config = {},
                      PhaseProfiler *profiler = nullptr);

/**
 * Closed-form optimal rigid motion (Horn's quaternion method) mapping
 * the source points onto the paired target points. Exposed for testing
 * and for the matrix-operation microbenchmarks.
 */
RigidTransform3 bestRigidTransform(const std::vector<Vec3> &source,
                                   const std::vector<Vec3> &target);

/**
 * Per-point surface normals by local PCA: the smallest-eigenvalue
 * eigenvector of each point's k-neighborhood covariance. Orientation is
 * disambiguated towards @p viewpoint.
 *
 * @param profiler Optional; accumulates "normals-nn-build" (index
 *        construction), "normals-nn" (the irregular neighborhood
 *        gathering) and "normals-eigen" (the per-point covariance
 *        eigendecompositions — matrix operations).
 * @param nn_engine Which NN engine gathers the neighborhoods (--nn).
 */
std::vector<Vec3> estimateNormals(const PointCloud &cloud, int k,
                                  const Vec3 &viewpoint,
                                  PhaseProfiler *profiler = nullptr,
                                  NnEngine nn_engine = defaultNnEngine());

/**
 * Point-to-plane ICP: minimizes sum((R p + t - q) . n)^2 by solving the
 * linearized 6x6 normal equations each iteration. The registration
 * method of the KinectFusion-style pipeline the paper's srec kernel
 * builds on; unlike point-to-point it does not slide along planar
 * structure.
 *
 * @param target_normals One unit normal per target point.
 */
IcpResult icpPointToPlane(const PointCloud &source,
                          const PointCloud &target,
                          const std::vector<Vec3> &target_normals,
                          const IcpConfig &config = {},
                          PhaseProfiler *profiler = nullptr);

} // namespace rtr

#endif // RTR_POINTCLOUD_ICP_H

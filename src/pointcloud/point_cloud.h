/**
 * @file
 * 3-D point cloud container.
 */

#ifndef RTR_POINTCLOUD_POINT_CLOUD_H
#define RTR_POINTCLOUD_POINT_CLOUD_H

#include <vector>

#include "geom/vec3.h"
#include "linalg/matrix.h"

namespace rtr {

/** A rigid-body transform: p' = R p + t. */
struct RigidTransform3
{
    /** 3x3 rotation matrix (defaults to identity). */
    Matrix rotation = Matrix::identity(3);
    /** Translation vector. */
    Vec3 translation;

    /** Apply to one point. */
    Vec3 apply(const Vec3 &p) const;

    /** Composition: (this ∘ other)(p) = this(other(p)). */
    RigidTransform3 compose(const RigidTransform3 &other) const;

    /** Inverse transform. */
    RigidTransform3 inverted() const;
};

/** A bag of 3-D points with rigid-transform helpers. */
class PointCloud
{
  public:
    PointCloud() = default;

    /** Construct from points. */
    explicit PointCloud(std::vector<Vec3> points)
        : points_(std::move(points))
    {
    }

    std::size_t size() const { return points_.size(); }
    bool empty() const { return points_.empty(); }

    /** Point access. */
    const Vec3 &operator[](std::size_t i) const { return points_[i]; }
    Vec3 &operator[](std::size_t i) { return points_[i]; }

    const std::vector<Vec3> &points() const { return points_; }

    /** Append a point. */
    void add(const Vec3 &p) { points_.push_back(p); }

    /** Append all points of another cloud. */
    void append(const PointCloud &other);

    /** In-place rigid transform of all points. */
    void transform(const RigidTransform3 &t);

    /** Transformed copy. */
    PointCloud transformed(const RigidTransform3 &t) const;

    /** Mean of all points (zero when empty). */
    Vec3 centroid() const;

    /**
     * Downsample by keeping one representative (the centroid of the
     * members) per voxel of the given size. Bounds the model cloud's
     * growth during incremental reconstruction.
     */
    PointCloud voxelDownsampled(double voxel_size) const;

  private:
    std::vector<Vec3> points_;
};

/** Rotation matrix about the z axis. */
Matrix rotationZ(double angle);

/** Rotation matrix from a unit quaternion (w, x, y, z). */
Matrix rotationFromQuaternion(double w, double x, double y, double z);

} // namespace rtr

#endif // RTR_POINTCLOUD_POINT_CLOUD_H

/**
 * @file
 * Cache-conscious leaf-bucketed k-d tree (the "bucket" NN engine).
 *
 * The reference trees (kdtree.h / dyn_kdtree.h) store one point per
 * node, so every traversal step is a dependent cache miss — exactly the
 * memory-bound behavior the paper attributes to the NN-heavy kernels
 * (31-49% of RRT, RRT-star and RRT-Connect; the srec correspondences).
 * This engine restructures the same search for the memory hierarchy:
 *
 *  - points live in leaves of up to kLeafCapacity entries, stored SoA
 *    (coordinate-major) in one flat arena per block, so a leaf scan is
 *    a handful of contiguous streams that rtr::simd::VecD consumes at
 *    full width;
 *  - inner nodes are pointer-free records (split value + child indices
 *    in a flat array) built by iterative median split, ~n/16 of them
 *    instead of n, so the upper tree fits in L1/L2;
 *  - incremental insert (the RRT workload) uses the logarithmic
 *    rebuild method: points buffer in a small pending array, flush
 *    into bulk-built blocks whose sizes follow a binary counter, and
 *    equal-level blocks merge by rebuild — every point takes part in
 *    O(log n) rebuilds, so inserts cost amortized O(log n) while all
 *    queries run against bulk-built (balanced, SoA) layouts.
 *
 * Exactness contract (DESIGN.md "Nearest-neighbor engine"): hits are
 * ordered by (dist2, id) lexicographically; nearest returns the
 * minimum under that order, kNearest the k smallest (sorted), and
 * radiusSearch every hit with dist2 <= radius^2 (sorted). Distances
 * accumulate dimension-by-dimension in index order with no FMA, so
 * dist2 values are bitwise identical to the scalar reference engine
 * and results match it exactly — including on duplicate points.
 */

#ifndef RTR_POINTCLOUD_BUCKET_KDTREE_H
#define RTR_POINTCLOUD_BUCKET_KDTREE_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "pointcloud/kdtree.h"
#include "util/logging.h"

namespace rtr {

namespace detail {

/**
 * Dimension-agnostic engine core. Points are passed as raw
 * point-major double spans; the fixed- and runtime-dimension wrappers
 * below adapt their point types onto it.
 */
class BucketKdCore
{
  public:
    /** Points per leaf bucket (also the pending-buffer flush size). */
    static constexpr std::uint32_t kLeafCapacity = 32;

    explicit BucketKdCore(std::size_t dim);

    std::size_t dim() const { return dim_; }
    std::size_t size() const { return total_; }
    bool empty() const { return total_ == 0; }

    /** Remove all points (keeps the dimension). */
    void clear();

    /** Bulk-build from n point-major points with ids 0..n-1. */
    void bulkBuild(const double *pts, std::size_t n);

    /** Insert one point; may trigger an amortized partial rebuild. */
    void insert(const double *p, std::uint32_t id);

    /** Best hit under the (dist2, id) order; empty tree returns the
     *  sentinel KdHit (id 0, dist2 = max). */
    KdHit nearest(const double *q) const;

    /** The k best hits, sorted by (dist2, id), into a reusable buffer
     *  (cleared first; fewer than k when the tree is smaller). */
    void kNearestInto(const double *q, std::size_t k,
                      std::vector<KdHit> &out) const;

    /** All hits with dist2 <= radius^2, sorted by (dist2, id), into a
     *  reusable buffer (cleared first). */
    void radiusSearchInto(const double *q, double radius,
                          std::vector<KdHit> &out) const;

    /** One nearest() per point-major query, parallel over chunks.
     *  Deterministic: out[i] depends only on query i. */
    void nearestBatch(const double *queries, std::size_t n_queries,
                      KdHit *out) const;

    /**
     * k hits per query into out[i*k .. i*k+k), parallel over chunks.
     * When the tree holds fewer than k points the tail of a query's
     * slots repeats its last real hit (the padding the normal-
     * estimation consumer wants). Tree must be non-empty.
     */
    void kNearestBatch(const double *queries, std::size_t n_queries,
                       std::size_t k, KdHit *out) const;

  private:
    /** Flat, pointer-free tree node. Leaves have left < 0 and own the
     *  arena range [lo, hi); inner nodes split on axis at split. */
    struct Node
    {
        double split = 0.0;
        std::int32_t left = -1;
        std::int32_t right = -1;
        std::uint32_t lo = 0;
        std::uint32_t hi = 0;
        std::uint32_t axis = 0;
    };

    /** One bulk-built static tree of the logarithmic forest. */
    struct Block
    {
        std::vector<Node> nodes;
        /** Coordinate-major coordinates: soa[d * count + i]. */
        std::vector<double> soa;
        std::vector<std::uint32_t> ids;
        std::uint32_t count = 0;
        /** Binary-counter level: floor(log2(count / kLeafCapacity)). */
        std::uint32_t level = 0;
    };

    static constexpr int kMaxDepth = 64;

    std::uint32_t levelFor(std::size_t count) const;
    Block buildBlock(const std::vector<double> &pts,
                     const std::vector<std::uint32_t> &ids) const;
    void appendBlockPoints(const Block &block, std::vector<double> &pts,
                           std::vector<std::uint32_t> &ids) const;
    void flushPending();

    template <typename LeafFn, typename KeepFn>
    void traverseBlock(const Block &block, const double *q, LeafFn &&leaf,
                       KeepFn &&keep) const;
    template <typename Visit>
    void scanLeaf(const Block &block, std::uint32_t lo, std::uint32_t hi,
                  const double *q, Visit &&visit) const;
    template <typename Visit>
    void scanPending(const double *q, Visit &&visit) const;

    void blockNearest(const Block &block, const double *q,
                      KdHit &best) const;
    void blockKNearest(const Block &block, const double *q, std::size_t k,
                       std::vector<KdHit> &heap) const;
    void blockRadius(const Block &block, const double *q, double radius2,
                     std::vector<KdHit> &out) const;

    std::size_t dim_;
    std::size_t total_ = 0;
    std::vector<Block> blocks_;
    /** Point-major coordinates of not-yet-flushed inserts. */
    std::vector<double> pending_;
    std::vector<std::uint32_t> pending_ids_;
};

} // namespace detail

/**
 * Leaf-bucketed k-d tree over R^Dim (compile-time dimension), the
 * bucket-engine counterpart of KdTree<Dim>. Same query results under
 * the documented (dist2, id) tie-break; see the file comment.
 */
template <std::size_t Dim>
class BucketKdTree
{
  public:
    using Point = std::array<double, Dim>;
    static_assert(sizeof(Point) == Dim * sizeof(double),
                  "Point rows must be dense for point-major access");

    BucketKdTree() : core_(Dim) {}

    std::size_t size() const { return core_.size(); }
    bool empty() const { return core_.empty(); }
    void clear() { core_.clear(); }

    /** Bulk-build a balanced tree (discards existing contents). */
    void
    build(const std::vector<Point> &points)
    {
        core_.bulkBuild(points.empty() ? nullptr : points.front().data(),
                        points.size());
    }

    /** Insert one point (amortized-logarithmic partial rebuilds). */
    void
    insert(const Point &p, std::uint32_t id)
    {
        core_.insert(p.data(), id);
    }

    /** Nearest stored point; tree must be non-empty. */
    KdHit
    nearest(const Point &query) const
    {
        RTR_ASSERT(!empty(), "nearest() on empty kd-tree");
        return core_.nearest(query.data());
    }

    /** The k nearest points, sorted by (dist2, id). */
    std::vector<KdHit>
    kNearest(const Point &query, std::size_t k) const
    {
        std::vector<KdHit> hits;
        core_.kNearestInto(query.data(), k, hits);
        return hits;
    }

    /** kNearest into a reusable buffer (cleared first). */
    void
    kNearestInto(const Point &query, std::size_t k,
                 std::vector<KdHit> &out) const
    {
        core_.kNearestInto(query.data(), k, out);
    }

    /** All points within radius, sorted by (dist2, id). */
    std::vector<KdHit>
    radiusSearch(const Point &query, double radius) const
    {
        std::vector<KdHit> hits;
        core_.radiusSearchInto(query.data(), radius, hits);
        return hits;
    }

    /** radiusSearch into a reusable buffer (cleared first). */
    void
    radiusSearchInto(const Point &query, double radius,
                     std::vector<KdHit> &out) const
    {
        core_.radiusSearchInto(query.data(), radius, out);
    }

    /** Batched nearest over parallelForChunks; out is resized. */
    void
    nearestBatch(const std::vector<Point> &queries,
                 std::vector<KdHit> &out) const
    {
        out.resize(queries.size());
        if (queries.empty())
            return;
        RTR_ASSERT(!empty(), "nearestBatch() on empty kd-tree");
        core_.nearestBatch(queries.front().data(), queries.size(),
                           out.data());
    }

    /**
     * Batched kNearest: k hits per query in out[i*k .. i*k+k), padded
     * by repeating the last real hit when size() < k; out is resized.
     */
    void
    kNearestBatch(const std::vector<Point> &queries, std::size_t k,
                  std::vector<KdHit> &out) const
    {
        out.resize(queries.size() * k);
        if (queries.empty() || k == 0)
            return;
        RTR_ASSERT(!empty(), "kNearestBatch() on empty kd-tree");
        core_.kNearestBatch(queries.front().data(), queries.size(), k,
                            out.data());
    }

  private:
    detail::BucketKdCore core_;
};

/**
 * Leaf-bucketed k-d tree with runtime dimensionality, the bucket-engine
 * counterpart of DynKdTree (the arm planners' DoF is a command-line
 * parameter). Same query results under the (dist2, id) tie-break.
 */
class DynBucketKdTree
{
  public:
    explicit DynBucketKdTree(std::size_t dim) : core_(dim)
    {
        RTR_ASSERT(dim >= 1, "kd-tree dimension must be >= 1");
    }

    std::size_t dim() const { return core_.dim(); }
    std::size_t size() const { return core_.size(); }
    bool empty() const { return core_.empty(); }
    void clear() { core_.clear(); }

    /** Insert a point (length dim()) with a payload id. */
    void
    insert(const std::vector<double> &p, std::uint32_t id)
    {
        RTR_ASSERT(p.size() == dim(), "point dimension mismatch");
        core_.insert(p.data(), id);
    }

    /** Bulk-build from n points with ids 0..n-1 (discards contents). */
    void
    build(const std::vector<std::vector<double>> &points)
    {
        std::vector<double> flat;
        flat.reserve(points.size() * dim());
        for (const std::vector<double> &p : points) {
            RTR_ASSERT(p.size() == dim(), "point dimension mismatch");
            flat.insert(flat.end(), p.begin(), p.end());
        }
        core_.bulkBuild(flat.data(), points.size());
    }

    /** Nearest stored point; tree must be non-empty. */
    KdHit
    nearest(const std::vector<double> &query) const
    {
        RTR_ASSERT(!empty(), "nearest() on empty kd-tree");
        return core_.nearest(query.data());
    }

    /** The k nearest points, sorted by (dist2, id). */
    std::vector<KdHit>
    kNearest(const std::vector<double> &query, std::size_t k) const
    {
        std::vector<KdHit> hits;
        core_.kNearestInto(query.data(), k, hits);
        return hits;
    }

    /** kNearest into a reusable buffer (cleared first). */
    void
    kNearestInto(const std::vector<double> &query, std::size_t k,
                 std::vector<KdHit> &out) const
    {
        core_.kNearestInto(query.data(), k, out);
    }

    /** All points within radius, sorted by (dist2, id). */
    std::vector<KdHit>
    radiusSearch(const std::vector<double> &query, double radius) const
    {
        std::vector<KdHit> hits;
        core_.radiusSearchInto(query.data(), radius, hits);
        return hits;
    }

    /** radiusSearch into a reusable buffer (cleared first). */
    void
    radiusSearchInto(const std::vector<double> &query, double radius,
                     std::vector<KdHit> &out) const
    {
        core_.radiusSearchInto(query.data(), radius, out);
    }

  private:
    detail::BucketKdCore core_;
};

} // namespace rtr

#endif // RTR_POINTCLOUD_BUCKET_KDTREE_H

/**
 * @file
 * Synthetic indoor scene and depth-scan simulator.
 *
 * Stands in for the ICL-NUIM living_room RGB-D sequence used by 03.srec:
 * a room shell with box furniture is ray-scanned from a sequence of
 * camera poses, producing partially-overlapping point clouds with known
 * ground-truth poses (so tests can verify that ICP recovers them).
 */

#ifndef RTR_POINTCLOUD_SCENE_GEN_H
#define RTR_POINTCLOUD_SCENE_GEN_H

#include <cstdint>
#include <vector>

#include "geom/aabb.h"
#include "pointcloud/point_cloud.h"
#include "util/rng.h"

namespace rtr {

/** A camera pose: position plus yaw about the z (up) axis. */
struct CameraPose
{
    Vec3 position;
    double yaw = 0.0;

    /** World-from-camera transform. */
    RigidTransform3 worldFromCamera() const;
};

/** A rectangular room populated with box-shaped furniture. */
class IndoorScene
{
  public:
    /**
     * Build the canonical living-room scene: a room of the given extent
     * with deterministic, seed-controlled furniture boxes.
     */
    static IndoorScene livingRoom(std::uint64_t seed);

    /** Room interior (camera and scan targets live inside it). */
    const Aabb3 &room() const { return room_; }

    /** Furniture boxes. */
    const std::vector<Aabb3> &furniture() const { return furniture_; }

    /**
     * Distance from a ray origin (inside the room) to the first surface
     * in the given direction: the nearest furniture hit or the room
     * shell. Returns max_range when nothing is closer.
     */
    double raycast(const Vec3 &origin, const Vec3 &dir,
                   double max_range) const;

  private:
    Aabb3 room_;
    std::vector<Aabb3> furniture_;
};

/** Depth-camera intrinsics for scan simulation. */
struct DepthCamera
{
    /** Horizontal field of view (radians). */
    double h_fov = 1.9;
    /** Vertical field of view (radians). */
    double v_fov = 1.2;
    /** Horizontal ray count. */
    int width = 80;
    /** Vertical ray count. */
    int height = 60;
    /** Maximum sensing range (world units). */
    double max_range = 12.0;
    /** Gaussian depth-noise standard deviation. */
    double noise_stddev = 0.005;
};

/**
 * Simulate one depth scan: rays through a pinhole grid, returning the
 * hit points in the *camera* frame. Ground truth is the pose itself.
 */
PointCloud simulateScan(const IndoorScene &scene, const CameraPose &pose,
                        const DepthCamera &camera, Rng &rng);

/**
 * A smooth camera trajectory through the room: @p n_poses poses along an
 * ellipse with gently varying yaw, suitable for frame-to-frame ICP.
 */
std::vector<CameraPose> makeTrajectory(const IndoorScene &scene,
                                       int n_poses);

} // namespace rtr

#endif // RTR_POINTCLOUD_SCENE_GEN_H

/**
 * @file
 * k-d tree for nearest-neighbor search in fixed-dimension spaces.
 *
 * This is the nearest-neighbor substrate of ICP (3-D correspondences)
 * and of the sampling-based planners (RRT/RRT* neighbor queries in joint
 * space — the paper attributes up to 31-49% of their time to this
 * operation). Supports both bulk median-split construction and the
 * incremental insertion RRT needs.
 *
 * This one-point-per-node tree is the preserved reference ("node") NN
 * engine; bucket_kdtree.h is the cache-conscious production engine.
 * Both implement the exactness contract documented in DESIGN.md
 * ("Nearest-neighbor engine"): hits are totally ordered by (dist2, id)
 * lexicographically, nearest returns the minimum under that order,
 * kNearest the k smallest (sorted), radiusSearch every hit with
 * dist2 <= radius^2 (sorted). The tie-break makes results independent
 * of tree structure, so the engines agree exactly even on duplicate
 * points.
 */

#ifndef RTR_POINTCLOUD_KDTREE_H
#define RTR_POINTCLOUD_KDTREE_H

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/logging.h"

namespace rtr {

/** A query hit: stored item id plus squared distance to the query. */
struct KdHit
{
    std::uint32_t id = 0;
    double dist2 = std::numeric_limits<double>::max();
};

/**
 * The documented total order on hits: (dist2, id) lexicographic
 * ascending. Every NN engine ranks candidates with this comparator, so
 * query results do not depend on tree structure or traversal order.
 */
inline bool
kdHitLess(const KdHit &a, const KdHit &b)
{
    return a.dist2 < b.dist2 || (a.dist2 == b.dist2 && a.id < b.id);
}

/** Whether candidate (d2, id) beats `than` under the (dist2, id) order. */
inline bool
kdHitBetter(double d2, std::uint32_t id, const KdHit &than)
{
    return d2 < than.dist2 || (d2 == than.dist2 && id < than.id);
}

/**
 * k-d tree over points in R^Dim with uint32 payload ids.
 *
 * @tparam Dim Compile-time dimensionality (3 for clouds, DoF for arms).
 */
template <std::size_t Dim>
class KdTree
{
  public:
    using Point = std::array<double, Dim>;

    /** Number of stored points. */
    std::size_t size() const { return nodes_.size(); }

    /** Whether the tree is empty. */
    bool empty() const { return nodes_.empty(); }

    /** Remove all points. */
    void
    clear()
    {
        nodes_.clear();
        root_ = kNull;
    }

    /**
     * Insert one point (id is the caller's handle, typically an index
     * into a parallel array). Splitting dimension cycles with depth, so
     * randomly-ordered inserts stay balanced in expectation.
     */
    void
    insert(const Point &p, std::uint32_t id)
    {
        std::int32_t node = allocNode(p, id);
        if (root_ == kNull) {
            root_ = node;
            return;
        }
        std::int32_t cur = root_;
        std::size_t axis = 0;
        while (true) {
            Node &n = nodes_[static_cast<std::size_t>(cur)];
            std::int32_t &child =
                p[axis] < n.point[axis] ? n.left : n.right;
            if (child == kNull) {
                child = node;
                return;
            }
            cur = child;
            axis = (axis + 1) % Dim;
        }
    }

    /** Bulk-build a balanced tree (discards existing contents). */
    void
    build(const std::vector<Point> &points)
    {
        clear();
        nodes_.reserve(points.size());
        std::vector<std::uint32_t> order(points.size());
        for (std::size_t i = 0; i < points.size(); ++i)
            order[i] = static_cast<std::uint32_t>(i);
        root_ = buildRange(points, order, 0, points.size(), 0);
    }

    /** Nearest stored point to the query; tree must be non-empty. */
    KdHit
    nearest(const Point &query) const
    {
        RTR_ASSERT(!empty(), "nearest() on empty kd-tree");
        KdHit best;
        nearestRec(root_, query, 0, best);
        return best;
    }

    /**
     * The k nearest stored points, sorted by (dist2, id). Returns fewer
     * than k when the tree is smaller.
     */
    std::vector<KdHit>
    kNearest(const Point &query, std::size_t k) const
    {
        std::vector<KdHit> heap;
        kNearestInto(query, k, heap);
        return heap;
    }

    /** kNearest into a reusable buffer (cleared first). */
    void
    kNearestInto(const Point &query, std::size_t k,
                 std::vector<KdHit> &out) const
    {
        out.clear();
        if (k == 0)
            return;
        // Max-heap of the best k candidates found so far.
        out.reserve(k + 1);
        kNearestRec(root_, query, 0, k, out);
        std::sort(out.begin(), out.end(), kdHitLess);
    }

    /** All stored points within the radius, sorted by (dist2, id). */
    std::vector<KdHit>
    radiusSearch(const Point &query, double radius) const
    {
        std::vector<KdHit> hits;
        radiusSearchInto(query, radius, hits);
        return hits;
    }

    /** radiusSearch into a reusable buffer (cleared first). */
    void
    radiusSearchInto(const Point &query, double radius,
                     std::vector<KdHit> &out) const
    {
        out.clear();
        radiusRec(root_, query, 0, radius * radius, out);
        std::sort(out.begin(), out.end(), kdHitLess);
    }

  private:
    static constexpr std::int32_t kNull = -1;

    struct Node
    {
        Point point;
        std::uint32_t id;
        std::int32_t left = kNull;
        std::int32_t right = kNull;
    };

    static double
    squaredDistance(const Point &a, const Point &b)
    {
        double sum = 0.0;
        for (std::size_t d = 0; d < Dim; ++d) {
            double diff = a[d] - b[d];
            sum += diff * diff;
        }
        return sum;
    }

    std::int32_t
    allocNode(const Point &p, std::uint32_t id)
    {
        nodes_.push_back(Node{p, id, kNull, kNull});
        return static_cast<std::int32_t>(nodes_.size() - 1);
    }

    std::int32_t
    buildRange(const std::vector<Point> &points,
               std::vector<std::uint32_t> &order, std::size_t lo,
               std::size_t hi, std::size_t axis)
    {
        if (lo >= hi)
            return kNull;
        std::size_t mid = lo + (hi - lo) / 2;
        std::nth_element(order.begin() + lo, order.begin() + mid,
                         order.begin() + hi,
                         [&](std::uint32_t a, std::uint32_t b) {
                             return points[a][axis] < points[b][axis];
                         });
        std::int32_t node = allocNode(points[order[mid]], order[mid]);
        std::size_t next = (axis + 1) % Dim;
        // Note: children must be assigned via index, not reference, since
        // recursion may reallocate the node arena.
        std::int32_t left = buildRange(points, order, lo, mid, next);
        std::int32_t right = buildRange(points, order, mid + 1, hi, next);
        nodes_[static_cast<std::size_t>(node)].left = left;
        nodes_[static_cast<std::size_t>(node)].right = right;
        return node;
    }

    void
    nearestRec(std::int32_t node, const Point &query, std::size_t axis,
               KdHit &best) const
    {
        if (node == kNull)
            return;
        const Node &n = nodes_[static_cast<std::size_t>(node)];
        double d2 = squaredDistance(n.point, query);
        if (kdHitBetter(d2, n.id, best))
            best = KdHit{n.id, d2};

        double delta = query[axis] - n.point[axis];
        std::size_t next = (axis + 1) % Dim;
        std::int32_t near_child = delta < 0 ? n.left : n.right;
        std::int32_t far_child = delta < 0 ? n.right : n.left;
        nearestRec(near_child, query, next, best);
        // <= so a far-subtree point at exactly best.dist2 with a
        // smaller id still gets visited (the (dist2, id) tie-break).
        if (delta * delta <= best.dist2)
            nearestRec(far_child, query, next, best);
    }

    void
    kNearestRec(std::int32_t node, const Point &query, std::size_t axis,
                std::size_t k, std::vector<KdHit> &heap) const
    {
        if (node == kNull)
            return;
        const Node &n = nodes_[static_cast<std::size_t>(node)];
        double d2 = squaredDistance(n.point, query);
        if (heap.size() < k) {
            heap.push_back(KdHit{n.id, d2});
            std::push_heap(heap.begin(), heap.end(), kdHitLess);
        } else if (kdHitBetter(d2, n.id, heap.front())) {
            std::pop_heap(heap.begin(), heap.end(), kdHitLess);
            heap.back() = KdHit{n.id, d2};
            std::push_heap(heap.begin(), heap.end(), kdHitLess);
        }

        double delta = query[axis] - n.point[axis];
        std::size_t next = (axis + 1) % Dim;
        std::int32_t near_child = delta < 0 ? n.left : n.right;
        std::int32_t far_child = delta < 0 ? n.right : n.left;
        kNearestRec(near_child, query, next, k, heap);
        double worst = heap.size() < k
                           ? std::numeric_limits<double>::max()
                           : heap.front().dist2;
        // <= for the same tie-break reason as nearestRec.
        if (delta * delta <= worst)
            kNearestRec(far_child, query, next, k, heap);
    }

    void
    radiusRec(std::int32_t node, const Point &query, std::size_t axis,
              double radius2, std::vector<KdHit> &hits) const
    {
        if (node == kNull)
            return;
        const Node &n = nodes_[static_cast<std::size_t>(node)];
        double d2 = squaredDistance(n.point, query);
        if (d2 <= radius2)
            hits.push_back(KdHit{n.id, d2});

        double delta = query[axis] - n.point[axis];
        std::size_t next = (axis + 1) % Dim;
        std::int32_t near_child = delta < 0 ? n.left : n.right;
        std::int32_t far_child = delta < 0 ? n.right : n.left;
        radiusRec(near_child, query, next, radius2, hits);
        if (delta * delta <= radius2)
            radiusRec(far_child, query, next, radius2, hits);
    }

    std::vector<Node> nodes_;
    std::int32_t root_ = kNull;
};

/**
 * Brute-force linear-scan nearest neighbor; the baseline the KD-tree
 * ablation benchmark compares against, and the oracle the kd-tree tests
 * check against.
 */
template <std::size_t Dim>
KdHit
bruteForceNearest(const std::vector<std::array<double, Dim>> &points,
                  const std::array<double, Dim> &query)
{
    RTR_ASSERT(!points.empty(), "bruteForceNearest on empty set");
    KdHit best;
    for (std::size_t i = 0; i < points.size(); ++i) {
        double sum = 0.0;
        for (std::size_t d = 0; d < Dim; ++d) {
            double diff = points[i][d] - query[d];
            sum += diff * diff;
        }
        if (sum < best.dist2)
            best = KdHit{static_cast<std::uint32_t>(i), sum};
    }
    return best;
}

} // namespace rtr

#endif // RTR_POINTCLOUD_KDTREE_H

/**
 * @file
 * Runtime selection of the nearest-neighbor engine.
 *
 * Two engines implement the same exact-NN contract (DESIGN.md
 * "Nearest-neighbor engine"):
 *
 *   bucket  leaf-bucketed SoA k-d tree (bucket_kdtree.h) — the
 *           cache-conscious default;
 *   node    one-point-per-node k-d tree (kdtree.h / dyn_kdtree.h) —
 *           the preserved reference engine.
 *
 * Both return bitwise-identical hits under the documented (dist2, id)
 * tie-break, so the switch is a pure performance A/B: kernels expose it
 * as --nn {bucket,node} in the same style as --raycast/--simd, and the
 * RTR_NN_ENGINE environment variable flips the default so the full test
 * suite can run against either engine (scripts/check.sh "node" leg).
 */

#ifndef RTR_POINTCLOUD_NN_ENGINE_H
#define RTR_POINTCLOUD_NN_ENGINE_H

#include <cstdlib>
#include <string_view>

namespace rtr {

/** Which nearest-neighbor engine backs an index. */
enum class NnEngine
{
    Bucket, ///< Leaf-bucketed SoA k-d tree (cache-conscious default).
    Node,   ///< One-point-per-node reference k-d tree.
};

/** Display name ("bucket" / "node"). */
inline const char *
nnEngineName(NnEngine engine)
{
    return engine == NnEngine::Bucket ? "bucket" : "node";
}

/** Parse an engine name; returns false on anything else. */
inline bool
parseNnEngine(std::string_view name, NnEngine &out)
{
    if (name == "bucket") {
        out = NnEngine::Bucket;
        return true;
    }
    if (name == "node") {
        out = NnEngine::Node;
        return true;
    }
    return false;
}

/**
 * Process-wide default engine: bucket, unless RTR_NN_ENGINE=node is set
 * in the environment (read once). Config structs capture this default
 * at construction; explicit --nn flags override it per kernel run.
 */
inline NnEngine
defaultNnEngine()
{
    static const NnEngine def = [] {
        const char *env = std::getenv("RTR_NN_ENGINE");
        NnEngine parsed = NnEngine::Bucket;
        if (env)
            parseNnEngine(env, parsed);
        return parsed;
    }();
    return def;
}

} // namespace rtr

#endif // RTR_POINTCLOUD_NN_ENGINE_H

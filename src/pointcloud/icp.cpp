#include "pointcloud/icp.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "linalg/decomp.h"
#include "linalg/eigen.h"
#include "pointcloud/bucket_kdtree.h"
#include "pointcloud/kdtree.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace rtr {

namespace {

/**
 * The 3-D target index of ICP / normal estimation under either NN
 * engine. Both engines implement the (dist2, id) contract, so every
 * query below returns identical hits regardless of the choice.
 */
struct TargetIndex3
{
    NnEngine engine;
    KdTree<3> node;
    BucketKdTree<3> bucket;

    explicit TargetIndex3(NnEngine engine) : engine(engine) {}

    void
    build(const PointCloud &cloud)
    {
        std::vector<std::array<double, 3>> pts;
        pts.reserve(cloud.size());
        for (const Vec3 &p : cloud.points())
            pts.push_back({p.x, p.y, p.z});
        if (engine == NnEngine::Bucket)
            bucket.build(pts);
        else
            node.build(pts);
    }

    /** One nearest() per query, parallel over chunks. */
    void
    nearestAll(const std::vector<std::array<double, 3>> &queries,
               std::vector<KdHit> &hits) const
    {
        if (engine == NnEngine::Bucket) {
            bucket.nearestBatch(queries, hits);
            return;
        }
        hits.resize(queries.size());
        parallelFor(0, queries.size(), 0, [&](std::size_t i) {
            hits[i] = node.nearest(queries[i]);
        });
    }
};

/** Refill the reusable point-major query buffer from the cloud. */
void
fillQueries(const PointCloud &cloud,
            std::vector<std::array<double, 3>> &out)
{
    out.resize(cloud.size());
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        const Vec3 &p = cloud[i];
        out[i] = {p.x, p.y, p.z};
    }
}

} // namespace

RigidTransform3
bestRigidTransform(const std::vector<Vec3> &source,
                   const std::vector<Vec3> &target)
{
    RTR_ASSERT(source.size() == target.size() && source.size() >= 3,
               "need >= 3 paired points");
    const double n = static_cast<double>(source.size());

    Vec3 cs, ct;
    for (std::size_t i = 0; i < source.size(); ++i) {
        cs += source[i];
        ct += target[i];
    }
    cs = cs / n;
    ct = ct / n;

    // Cross-covariance M = sum (s - cs)(t - ct)^T.
    double m[3][3] = {};
    for (std::size_t i = 0; i < source.size(); ++i) {
        Vec3 s = source[i] - cs;
        Vec3 t = target[i] - ct;
        const double sv[3] = {s.x, s.y, s.z};
        const double tv[3] = {t.x, t.y, t.z};
        for (int r = 0; r < 3; ++r) {
            for (int c = 0; c < 3; ++c)
                m[r][c] += sv[r] * tv[c];
        }
    }

    // Horn's symmetric 4x4 quaternion matrix; its dominant eigenvector
    // is the optimal rotation as a quaternion (w, x, y, z).
    const double sxx = m[0][0], sxy = m[0][1], sxz = m[0][2];
    const double syx = m[1][0], syy = m[1][1], syz = m[1][2];
    const double szx = m[2][0], szy = m[2][1], szz = m[2][2];
    Matrix nmat{{sxx + syy + szz, syz - szy, szx - sxz, sxy - syx},
                {syz - szy, sxx - syy - szz, sxy + syx, szx + sxz},
                {szx - sxz, sxy + syx, -sxx + syy - szz, syz + szy},
                {sxy - syx, szx + sxz, syz + szy, -sxx - syy + szz}};

    SymmetricEigen eig = symmetricEigen(nmat);
    double w = eig.vectors(0, 0);
    double x = eig.vectors(1, 0);
    double y = eig.vectors(2, 0);
    double z = eig.vectors(3, 0);

    RigidTransform3 out;
    out.rotation = rotationFromQuaternion(w, x, y, z);
    RigidTransform3 rot_only{out.rotation, Vec3{}};
    out.translation = ct - rot_only.apply(cs);
    return out;
}

namespace {

/**
 * The iteration loop of point-to-point ICP against an already-built
 * target index. Shared by the per-call overload (which builds the
 * index first) and the IcpTargetIndex overload (which reuses one), so
 * the two are bitwise identical by construction.
 */
IcpResult
icpRegisterCore(const PointCloud &source, const PointCloud &target,
                const TargetIndex3 &tree, const IcpConfig &config,
                PhaseProfiler *profiler)
{
    RTR_ASSERT(source.size() >= 3 && target.size() >= 3,
               "ICP needs >= 3 points in each cloud");
    IcpResult result;

    PointCloud moved = source;
    std::vector<std::array<double, 3>> queries; // reused per iteration
    std::vector<KdHit> hits;                    // reused per iteration
    double prev_rmse = std::numeric_limits<double>::max();
    const double max_d2 =
        config.max_correspondence_distance > 0.0
            ? config.max_correspondence_distance *
                  config.max_correspondence_distance
            : std::numeric_limits<double>::max();

    for (int iter = 0; iter < config.max_iterations; ++iter) {
        result.iterations = iter + 1;

        std::vector<Vec3> src_pts, tgt_pts;
        std::vector<double> dist2;
        double err_sum = 0.0;
        {
            ScopedPhase phase(profiler, "icp-nn");
            // Parallel map: the kd-tree queries (the expensive,
            // irregular-access part) fill a per-point hit table; the
            // cheap compaction below then runs serially in point
            // order, so err_sum accumulates in exactly the sequential
            // order at any thread count.
            const std::size_t n_moved = moved.size();
            fillQueries(moved, queries);
            tree.nearestAll(queries, hits);
            src_pts.reserve(n_moved);
            tgt_pts.reserve(n_moved);
            dist2.reserve(n_moved);
            for (std::size_t i = 0; i < n_moved; ++i) {
                const KdHit &hit = hits[i];
                if (hit.dist2 > max_d2)
                    continue;
                src_pts.push_back(moved[i]);
                tgt_pts.push_back(target[hit.id]);
                dist2.push_back(hit.dist2);
                err_sum += hit.dist2;
            }
        }
        if (src_pts.size() < 3)
            break;

        if (config.trim_fraction < 1.0 && src_pts.size() > 16) {
            // Trimmed ICP: drop the worst-matching correspondences.
            auto keep = static_cast<std::size_t>(
                config.trim_fraction *
                static_cast<double>(src_pts.size()));
            keep = std::max<std::size_t>(keep, 16);
            std::vector<std::size_t> order(src_pts.size());
            std::iota(order.begin(), order.end(), 0);
            std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(keep),
                             order.end(),
                             [&](std::size_t a, std::size_t b) {
                                 return dist2[a] < dist2[b];
                             });
            std::vector<Vec3> src_keep, tgt_keep;
            src_keep.reserve(keep);
            tgt_keep.reserve(keep);
            err_sum = 0.0;
            for (std::size_t i = 0; i < keep; ++i) {
                src_keep.push_back(src_pts[order[i]]);
                tgt_keep.push_back(tgt_pts[order[i]]);
                err_sum += dist2[order[i]];
            }
            src_pts = std::move(src_keep);
            tgt_pts = std::move(tgt_keep);
        }
        result.rmse =
            std::sqrt(err_sum / static_cast<double>(src_pts.size()));

        if (std::abs(prev_rmse - result.rmse) < config.convergence_delta) {
            result.converged = true;
            break;
        }
        prev_rmse = result.rmse;

        RigidTransform3 step;
        {
            ScopedPhase phase(profiler, "icp-solve");
            step = bestRigidTransform(src_pts, tgt_pts);
        }
        {
            ScopedPhase phase(profiler, "icp-apply");
            moved.transform(step);
            result.transform = step.compose(result.transform);
        }
    }
    return result;
}

} // namespace

IcpResult
icpRegister(const PointCloud &source, const PointCloud &target,
            const IcpConfig &config, PhaseProfiler *profiler)
{
    // Build the target index once; correspondences re-query it every
    // iteration with the moving source points (the irregular-access
    // pattern the paper identifies as the memory bottleneck of srec).
    TargetIndex3 tree(config.nn_engine);
    {
        ScopedPhase phase(profiler, "icp-nn-build");
        tree.build(target);
    }
    return icpRegisterCore(source, target, tree, config, profiler);
}

struct IcpTargetIndex::Impl
{
    PointCloud target;
    TargetIndex3 tree;

    Impl(const PointCloud &cloud, NnEngine engine)
        : target(cloud), tree(engine)
    {
        tree.build(target);
    }
};

IcpTargetIndex::IcpTargetIndex(const PointCloud &target, NnEngine engine)
    : impl_(std::make_unique<Impl>(target, engine))
{
}

IcpTargetIndex::~IcpTargetIndex() = default;

const PointCloud &
IcpTargetIndex::target() const
{
    return impl_->target;
}

IcpResult
icpRegister(const PointCloud &source, const IcpTargetIndex &target,
            const IcpConfig &config, PhaseProfiler *profiler)
{
    return icpRegisterCore(source, target.impl_->target,
                           target.impl_->tree, config, profiler);
}

std::vector<Vec3>
estimateNormals(const PointCloud &cloud, int k, const Vec3 &viewpoint,
                PhaseProfiler *profiler, NnEngine nn_engine)
{
    RTR_ASSERT(k >= 3, "normal estimation needs k >= 3");
    const auto n_points = cloud.size();
    const auto kk = static_cast<std::size_t>(k);

    // Pass 1 (irregular memory): build the index and gather every
    // point's neighborhood.
    std::vector<std::uint32_t> neighbor_ids(n_points * kk);
    TargetIndex3 tree(nn_engine);
    {
        ScopedPhase phase(profiler, "normals-nn-build");
        tree.build(cloud);
    }
    {
        ScopedPhase phase(profiler, "normals-nn");
        std::vector<std::array<double, 3>> queries;
        fillQueries(cloud, queries);
        if (nn_engine == NnEngine::Bucket) {
            // Batched k-NN; each query's k slots are padded by
            // repeating its last hit when the cloud is smaller than k,
            // matching the scalar path below.
            std::vector<KdHit> hits;
            tree.bucket.kNearestBatch(queries, kk, hits);
            for (std::size_t i = 0; i < n_points * kk; ++i)
                neighbor_ids[i] = hits[i].id;
        } else {
            parallelForChunks(
                0, n_points, 0, [&](const ChunkRange &chunk) {
                    std::vector<KdHit> nbrs; // reused across the chunk
                    for (std::size_t i = chunk.begin; i < chunk.end;
                         ++i) {
                        tree.node.kNearestInto(queries[i], kk, nbrs);
                        for (std::size_t j = 0; j < kk; ++j)
                            neighbor_ids[i * kk + j] =
                                nbrs[std::min(j, nbrs.size() - 1)].id;
                    }
                });
        }
    }

    // Pass 2 (matrix operations): per-point covariance eigensolve.
    std::vector<Vec3> normals(n_points);
    {
        ScopedPhase phase(profiler, "normals-eigen");
        parallelFor(0, n_points, 0, [&](std::size_t i) {
            const Vec3 &p = cloud[i];
            Vec3 mean;
            for (std::size_t j = 0; j < kk; ++j)
                mean += cloud[neighbor_ids[i * kk + j]];
            mean = mean / static_cast<double>(kk);
            double c[3][3] = {};
            for (std::size_t j = 0; j < kk; ++j) {
                Vec3 d = cloud[neighbor_ids[i * kk + j]] - mean;
                const double v[3] = {d.x, d.y, d.z};
                for (int r = 0; r < 3; ++r) {
                    for (int col = 0; col < 3; ++col)
                        c[r][col] += v[r] * v[col];
                }
            }
            Matrix cov{{c[0][0], c[0][1], c[0][2]},
                       {c[1][0], c[1][1], c[1][2]},
                       {c[2][0], c[2][1], c[2][2]}};
            SymmetricEigen eig = symmetricEigen(cov);
            // Smallest-eigenvalue eigenvector = surface normal.
            Vec3 n{eig.vectors(0, 2), eig.vectors(1, 2),
                   eig.vectors(2, 2)};
            if (n.dot(viewpoint - p) < 0.0)
                n = -n;
            normals[i] = n;
        });
    }
    return normals;
}

namespace {

/** Rotation from small Euler angles (Rz * Ry * Rx). */
Matrix
rotationFromEuler(double ax, double ay, double az)
{
    double cx = std::cos(ax), sx = std::sin(ax);
    double cy = std::cos(ay), sy = std::sin(ay);
    double cz = std::cos(az), sz = std::sin(az);
    Matrix rx{{1, 0, 0}, {0, cx, -sx}, {0, sx, cx}};
    Matrix ry{{cy, 0, sy}, {0, 1, 0}, {-sy, 0, cy}};
    Matrix rz{{cz, -sz, 0}, {sz, cz, 0}, {0, 0, 1}};
    return rz * ry * rx;
}

} // namespace

IcpResult
icpPointToPlane(const PointCloud &source, const PointCloud &target,
                const std::vector<Vec3> &target_normals,
                const IcpConfig &config, PhaseProfiler *profiler)
{
    RTR_ASSERT(target_normals.size() == target.size(),
               "one normal per target point required");
    RTR_ASSERT(source.size() >= 6 && target.size() >= 6,
               "point-to-plane ICP needs >= 6 points");
    IcpResult result;

    TargetIndex3 tree(config.nn_engine);
    {
        ScopedPhase phase(profiler, "icp-nn-build");
        tree.build(target);
    }

    PointCloud moved = source;
    std::vector<std::array<double, 3>> queries; // reused per iteration
    std::vector<KdHit> hits;                    // reused per iteration
    double prev_rmse = std::numeric_limits<double>::max();
    const double max_d2 =
        config.max_correspondence_distance > 0.0
            ? config.max_correspondence_distance *
                  config.max_correspondence_distance
            : std::numeric_limits<double>::max();

    for (int iter = 0; iter < config.max_iterations; ++iter) {
        result.iterations = iter + 1;

        // Accumulate the 6x6 normal equations A x = b over the
        // correspondences; x = (ax, ay, az, tx, ty, tz).
        double a[6][6] = {};
        double b[6] = {};
        double err_sum = 0.0;
        std::size_t pairs = 0;
        {
            ScopedPhase phase(profiler, "icp-nn");
            // Same parallel-map / ordered-serial-reduce split as
            // icpRegister: concurrent kd-tree queries, then the 6x6
            // normal-equation accumulation in sequential point order.
            const std::size_t n_moved = moved.size();
            fillQueries(moved, queries);
            tree.nearestAll(queries, hits);
            for (std::size_t i = 0; i < n_moved; ++i) {
                const KdHit &hit = hits[i];
                if (hit.dist2 > max_d2)
                    continue;
                const Vec3 &p = moved[i];
                const Vec3 &q = target[hit.id];
                const Vec3 &n = target_normals[hit.id];
                double r = (p - q).dot(n);
                Vec3 cxn = p.cross(n);
                const double j[6] = {cxn.x, cxn.y, cxn.z, n.x, n.y, n.z};
                for (int row = 0; row < 6; ++row) {
                    for (int col = row; col < 6; ++col)
                        a[row][col] += j[row] * j[col];
                    b[row] -= j[row] * r;
                }
                err_sum += r * r;
                ++pairs;
            }
        }
        if (pairs < 6)
            break;
        result.rmse = std::sqrt(err_sum / static_cast<double>(pairs));
        if (std::abs(prev_rmse - result.rmse) <
            config.convergence_delta) {
            result.converged = true;
            break;
        }
        prev_rmse = result.rmse;

        RigidTransform3 step;
        {
            ScopedPhase phase(profiler, "icp-solve");
            Matrix amat(6, 6);
            Matrix bvec(6, 1);
            for (int row = 0; row < 6; ++row) {
                for (int col = 0; col < 6; ++col)
                    amat(static_cast<std::size_t>(row),
                         static_cast<std::size_t>(col)) =
                        a[std::min(row, col)][std::max(row, col)];
                bvec(static_cast<std::size_t>(row), 0) = b[row];
            }
            // Levenberg damping keeps the step well-posed when the
            // correspondences under-constrain a direction.
            for (int d = 0; d < 6; ++d)
                amat(static_cast<std::size_t>(d),
                     static_cast<std::size_t>(d)) += 1e-9;
            LuDecomposition lu(amat);
            if (lu.singular())
                break;
            Matrix x = lu.solve(bvec);
            step.rotation = rotationFromEuler(x(0, 0), x(1, 0), x(2, 0));
            step.translation = Vec3{x(3, 0), x(4, 0), x(5, 0)};
        }
        {
            ScopedPhase phase(profiler, "icp-apply");
            moved.transform(step);
            result.transform = step.compose(result.transform);
        }
    }
    return result;
}

} // namespace rtr

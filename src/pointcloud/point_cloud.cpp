#include "pointcloud/point_cloud.h"

#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "linalg/decomp.h"
#include "util/logging.h"

namespace rtr {

Vec3
RigidTransform3::apply(const Vec3 &p) const
{
    const Matrix &r = rotation;
    return {r(0, 0) * p.x + r(0, 1) * p.y + r(0, 2) * p.z + translation.x,
            r(1, 0) * p.x + r(1, 1) * p.y + r(1, 2) * p.z + translation.y,
            r(2, 0) * p.x + r(2, 1) * p.y + r(2, 2) * p.z + translation.z};
}

RigidTransform3
RigidTransform3::compose(const RigidTransform3 &other) const
{
    RigidTransform3 out;
    out.rotation = rotation * other.rotation;
    out.translation = apply(other.translation);
    return out;
}

RigidTransform3
RigidTransform3::inverted() const
{
    RigidTransform3 out;
    out.rotation = rotation.transposed();
    Vec3 t = translation;
    const Matrix &rt = out.rotation;
    out.translation = {-(rt(0, 0) * t.x + rt(0, 1) * t.y + rt(0, 2) * t.z),
                       -(rt(1, 0) * t.x + rt(1, 1) * t.y + rt(1, 2) * t.z),
                       -(rt(2, 0) * t.x + rt(2, 1) * t.y + rt(2, 2) * t.z)};
    return out;
}

void
PointCloud::append(const PointCloud &other)
{
    points_.insert(points_.end(), other.points_.begin(),
                   other.points_.end());
}

void
PointCloud::transform(const RigidTransform3 &t)
{
    for (Vec3 &p : points_)
        p = t.apply(p);
}

PointCloud
PointCloud::transformed(const RigidTransform3 &t) const
{
    PointCloud out = *this;
    out.transform(t);
    return out;
}

Vec3
PointCloud::centroid() const
{
    if (points_.empty())
        return {};
    Vec3 sum;
    for (const Vec3 &p : points_)
        sum += p;
    return sum / static_cast<double>(points_.size());
}

PointCloud
PointCloud::voxelDownsampled(double voxel_size) const
{
    RTR_ASSERT(voxel_size > 0.0, "voxel size must be positive");
    struct Accum
    {
        Vec3 sum;
        std::size_t count = 0;
    };
    std::unordered_map<std::uint64_t, Accum> voxels;
    voxels.reserve(points_.size());
    for (const Vec3 &p : points_) {
        // 21-bit signed packing per axis; fine for clouds within +-10^6
        // voxels of the origin.
        auto quantize = [&](double v) {
            return static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(std::floor(v / voxel_size)) +
                       (1 << 20)) &
                   0x1FFFFF;
        };
        std::uint64_t key = (quantize(p.x) << 42) | (quantize(p.y) << 21) |
                            quantize(p.z);
        Accum &a = voxels[key];
        a.sum += p;
        a.count += 1;
    }
    PointCloud out;
    for (const auto &[key, a] : voxels)
        out.add(a.sum / static_cast<double>(a.count));
    return out;
}

Matrix
rotationZ(double angle)
{
    double c = std::cos(angle), s = std::sin(angle);
    return Matrix{{c, -s, 0.0}, {s, c, 0.0}, {0.0, 0.0, 1.0}};
}

Matrix
rotationFromQuaternion(double w, double x, double y, double z)
{
    double n = std::sqrt(w * w + x * x + y * y + z * z);
    RTR_ASSERT(n > 0.0, "zero quaternion");
    w /= n;
    x /= n;
    y /= n;
    z /= n;
    return Matrix{
        {1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)},
        {2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)},
        {2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)}};
}

} // namespace rtr

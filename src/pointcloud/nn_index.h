/**
 * @file
 * Engine-dispatching nearest-neighbor indexes.
 *
 * Thin wrappers that hold either the bucket engine (bucket_kdtree.h) or
 * the reference node engine (kdtree.h / dyn_kdtree.h) and forward each
 * call to whichever the caller selected at construction. Because both
 * engines implement the exact (dist2, id) contract, consumers can treat
 * the choice as a pure performance knob (--nn {bucket,node}).
 *
 * The dispatch is one predictable branch per query — noise next to the
 * traversal itself — which keeps the planners' code free of engine
 * template parameters (the arm planners pick the engine at runtime from
 * their config structs).
 */

#ifndef RTR_POINTCLOUD_NN_INDEX_H
#define RTR_POINTCLOUD_NN_INDEX_H

#include <cstdint>
#include <vector>

#include "pointcloud/bucket_kdtree.h"
#include "pointcloud/dyn_kdtree.h"
#include "pointcloud/kdtree.h"
#include "pointcloud/nn_engine.h"

namespace rtr {

/**
 * Runtime-dimension NN index for the sampling-based arm planners
 * (joint-space queries where DoF is a command-line parameter).
 */
class DynNnIndex
{
  public:
    DynNnIndex(std::size_t dim, NnEngine engine)
        : engine_(engine), node_(dim), bucket_(dim)
    {
    }

    NnEngine engine() const { return engine_; }
    std::size_t dim() const { return bucket_.dim(); }

    std::size_t
    size() const
    {
        return engine_ == NnEngine::Bucket ? bucket_.size()
                                           : node_.size();
    }

    bool empty() const { return size() == 0; }

    void
    clear()
    {
        if (engine_ == NnEngine::Bucket)
            bucket_.clear();
        else
            node_.clear();
    }

    /** Insert a point (length dim()) with a payload id. */
    void
    insert(const std::vector<double> &p, std::uint32_t id)
    {
        if (engine_ == NnEngine::Bucket)
            bucket_.insert(p, id);
        else
            node_.insert(p, id);
    }

    /** Bulk-build from n points with ids 0..n-1 (discards contents). */
    void
    build(const std::vector<std::vector<double>> &points)
    {
        if (engine_ == NnEngine::Bucket) {
            bucket_.build(points);
            return;
        }
        node_.clear();
        for (std::size_t i = 0; i < points.size(); ++i)
            node_.insert(points[i], static_cast<std::uint32_t>(i));
    }

    /** Nearest stored point; index must be non-empty. */
    KdHit
    nearest(const std::vector<double> &query) const
    {
        return engine_ == NnEngine::Bucket ? bucket_.nearest(query)
                                           : node_.nearest(query);
    }

    /** The k nearest points, sorted by (dist2, id). */
    std::vector<KdHit>
    kNearest(const std::vector<double> &query, std::size_t k) const
    {
        return engine_ == NnEngine::Bucket ? bucket_.kNearest(query, k)
                                           : node_.kNearest(query, k);
    }

    /** kNearest into a reusable buffer (cleared first). */
    void
    kNearestInto(const std::vector<double> &query, std::size_t k,
                 std::vector<KdHit> &out) const
    {
        if (engine_ == NnEngine::Bucket)
            bucket_.kNearestInto(query, k, out);
        else
            node_.kNearestInto(query, k, out);
    }

    /** All points within the radius, sorted by (dist2, id). */
    std::vector<KdHit>
    radiusSearch(const std::vector<double> &query, double radius) const
    {
        return engine_ == NnEngine::Bucket
                   ? bucket_.radiusSearch(query, radius)
                   : node_.radiusSearch(query, radius);
    }

    /** radiusSearch into a reusable buffer (cleared first). */
    void
    radiusSearchInto(const std::vector<double> &query, double radius,
                     std::vector<KdHit> &out) const
    {
        if (engine_ == NnEngine::Bucket)
            bucket_.radiusSearchInto(query, radius, out);
        else
            node_.radiusSearchInto(query, radius, out);
    }

  private:
    NnEngine engine_;
    DynKdTree node_;
    DynBucketKdTree bucket_;
};

} // namespace rtr

#endif // RTR_POINTCLOUD_NN_INDEX_H
